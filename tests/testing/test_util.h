#ifndef CLAPF_TESTS_TESTING_TEST_UTIL_H_
#define CLAPF_TESTS_TESTING_TEST_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"

namespace clapf {
namespace testing {

/// Builds a dataset from explicit pairs with the given dimensions.
Dataset MakeDataset(int32_t num_users, int32_t num_items,
                    const std::vector<std::pair<UserId, ItemId>>& pairs);

/// A small but learnable synthetic dataset: `num_users` × `num_items` with a
/// planted block structure (even users like low item ids, odd users like high
/// item ids, plus noise). Pairwise rankers reach AUC well above 0.5 on the
/// held-out half quickly.
Dataset MakeLearnableDataset(int32_t num_users, int32_t num_items,
                             int32_t items_per_user, uint64_t seed);

/// A FactorModel whose scores equal `scores[u][i]` exactly (1 factor:
/// U_u = 1, V_i = 0, b_i impossible per-user — so uses num_users factors).
/// Only practical for tiny test matrices.
FactorModel MakeExactModel(const std::vector<std::vector<double>>& scores);

/// A model whose item factors form `num_centers` tight Gaussian bundles
/// (center + `noise`-scaled jitter) with small random biases, and random
/// Gaussian user factors. Real catalogs cluster like this, and it is the
/// regime where IVF retrieval's measured-recall contract is meaningful —
/// isotropic random items are the adversarial worst case instead.
FactorModel MakeClusteredItemModel(int32_t num_users, int32_t num_items,
                                   int32_t num_factors, int32_t num_centers,
                                   double noise, uint64_t seed);

/// Writes `content` to a unique temp file and returns its path.
std::string WriteTempFile(const std::string& name, const std::string& content);

}  // namespace testing
}  // namespace clapf

#endif  // CLAPF_TESTS_TESTING_TEST_UTIL_H_
