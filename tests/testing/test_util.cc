#include "testing/test_util.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "clapf/data/dataset_builder.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"

namespace clapf {
namespace testing {

Dataset MakeDataset(int32_t num_users, int32_t num_items,
                    const std::vector<std::pair<UserId, ItemId>>& pairs) {
  DatasetBuilder builder(num_users, num_items);
  CLAPF_CHECK_OK(builder.AddAll(pairs));
  return builder.Build();
}

Dataset MakeLearnableDataset(int32_t num_users, int32_t num_items,
                             int32_t items_per_user, uint64_t seed) {
  Rng rng(seed);
  DatasetBuilder builder(num_users, num_items);
  const int32_t half = num_items / 2;
  for (UserId u = 0; u < num_users; ++u) {
    const bool likes_low = (u % 2) == 0;
    int32_t added = 0;
    int32_t guard = 0;
    while (added < items_per_user && guard < 100 * items_per_user) {
      ++guard;
      ItemId i;
      if (rng.Bernoulli(0.9)) {
        // In-block item.
        i = likes_low
                ? static_cast<ItemId>(rng.Uniform(half))
                : static_cast<ItemId>(half + rng.Uniform(num_items - half));
      } else {
        i = static_cast<ItemId>(rng.Uniform(num_items));
      }
      CLAPF_CHECK_OK(builder.Add(u, i));
      ++added;
    }
  }
  return builder.Build();
}

FactorModel MakeExactModel(const std::vector<std::vector<double>>& scores) {
  const int32_t n = static_cast<int32_t>(scores.size());
  CLAPF_CHECK(n > 0);
  const int32_t m = static_cast<int32_t>(scores[0].size());
  // One factor per user: U_u = e_u, V_i[u] = scores[u][i].
  FactorModel model(n, m, n, /*use_item_bias=*/false);
  for (int32_t u = 0; u < n; ++u) {
    CLAPF_CHECK(static_cast<int32_t>(scores[u].size()) == m);
    model.UserFactors(u)[static_cast<size_t>(u)] = 1.0;
    for (int32_t i = 0; i < m; ++i) {
      model.ItemFactors(i)[static_cast<size_t>(u)] = scores[u][i];
    }
  }
  return model;
}

FactorModel MakeClusteredItemModel(int32_t num_users, int32_t num_items,
                                   int32_t num_factors, int32_t num_centers,
                                   double noise, uint64_t seed) {
  CLAPF_CHECK(num_centers > 0);
  FactorModel model(num_users, num_items, num_factors);
  Rng rng(seed);
  std::vector<double> centers(static_cast<size_t>(num_centers) *
                              static_cast<size_t>(num_factors));
  for (double& c : centers) c = rng.NextGaussian() * 0.5;
  for (UserId u = 0; u < num_users; ++u) {
    auto uf = model.UserFactors(u);
    for (int32_t f = 0; f < num_factors; ++f) {
      uf[static_cast<size_t>(f)] = rng.NextGaussian() * 0.5;
    }
  }
  for (ItemId i = 0; i < num_items; ++i) {
    const double* center =
        centers.data() +
        static_cast<size_t>(i % num_centers) * static_cast<size_t>(num_factors);
    auto vf = model.ItemFactors(i);
    for (int32_t f = 0; f < num_factors; ++f) {
      vf[static_cast<size_t>(f)] =
          center[static_cast<size_t>(f)] + rng.NextGaussian() * noise;
    }
    model.ItemBias(i) = rng.NextGaussian() * noise;
  }
  return model;
}

std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  CLAPF_CHECK(static_cast<bool>(out)) << "cannot write " << path;
  out << content;
  return path;
}

}  // namespace testing
}  // namespace clapf
