#ifndef CLAPF_TESTS_TESTING_FAULT_SCHEDULE_H_
#define CLAPF_TESTS_TESTING_FAULT_SCHEDULE_H_

#include <initializer_list>
#include <utility>

#include "clapf/util/fault_injection.h"

namespace clapf {
namespace testing {

/// RAII fault schedule for tests: arms the listed fault points on
/// construction and resets the process-wide injector on destruction, so a
/// failing (or early-returning) test cannot leak an armed fault into the next
/// one.
///
///   ScopedFaultSchedule faults({
///       {FaultPoint::kSgdStepNan, {.trigger_at_hit = 100}},
///       {FaultPoint::kModelWriteShort, {.trigger_at_hit = 2}},
///   });
class ScopedFaultSchedule {
 public:
  ScopedFaultSchedule() = default;
  ScopedFaultSchedule(
      std::initializer_list<std::pair<FaultPoint, FaultSpec>> faults) {
    for (const auto& [point, spec] : faults) Arm(point, spec);
  }
  ~ScopedFaultSchedule() { FaultInjector::Instance().Reset(); }

  ScopedFaultSchedule(const ScopedFaultSchedule&) = delete;
  ScopedFaultSchedule& operator=(const ScopedFaultSchedule&) = delete;

  /// Arms (or re-arms) one point mid-test.
  void Arm(FaultPoint point, FaultSpec spec = {}) {
    FaultInjector::Instance().Arm(point, spec);
  }

  /// Disarms one point, keeping its counters readable.
  void Disarm(FaultPoint point) { FaultInjector::Instance().Disarm(point); }

  /// Counter pass-throughs for assertions.
  int64_t hits(FaultPoint point) const {
    return FaultInjector::Instance().hits(point);
  }
  int64_t fires(FaultPoint point) const {
    return FaultInjector::Instance().fires(point);
  }
};

}  // namespace testing
}  // namespace clapf

#endif  // CLAPF_TESTS_TESTING_FAULT_SCHEDULE_H_
