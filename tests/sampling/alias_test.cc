#include "clapf/sampling/alias.h"

#include <gtest/gtest.h>

#include <vector>

namespace clapf {
namespace {

TEST(AliasTableTest, UniformWeights) {
  AliasTable table({1.0, 1.0, 1.0, 1.0});
  Rng rng(1);
  std::vector<int> hits(4, 0);
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++hits[table.Sample(rng)];
  for (int h : hits) EXPECT_NEAR(h / static_cast<double>(draws), 0.25, 0.02);
}

TEST(AliasTableTest, SkewedWeightsMatchFrequencies) {
  AliasTable table({1.0, 2.0, 7.0});
  Rng rng(2);
  std::vector<int> hits(3, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++hits[table.Sample(rng)];
  EXPECT_NEAR(hits[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(draws), 0.2, 0.015);
  EXPECT_NEAR(hits[2] / static_cast<double>(draws), 0.7, 0.02);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({1.0, 0.0, 1.0});
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.Sample(rng), 1u);
}

TEST(AliasTableTest, SingleElement) {
  AliasTable table({42.0});
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, ReconstructedProbabilitiesSumToOne) {
  std::vector<double> weights{3.0, 0.5, 0.0, 2.5, 9.0, 1.0};
  AliasTable table(weights);
  double total = 0.0, wsum = 0.0;
  for (double w : weights) wsum += w;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double p = table.ProbabilityOf(i);
    EXPECT_NEAR(p, weights[i] / wsum, 1e-9) << i;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AliasTableDeathTest, RejectsInvalidWeights) {
  EXPECT_DEATH(AliasTable({0.0, 0.0}), "zero");
  EXPECT_DEATH(AliasTable({1.0, -0.5}), "negative");
}

}  // namespace
}  // namespace clapf
