#include <gtest/gtest.h>

#include "clapf/data/synthetic.h"
#include "clapf/sampling/aobpr_sampler.h"
#include "clapf/sampling/dns_sampler.h"
#include "clapf/sampling/uniform_sampler.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

Dataset MediumData() {
  SyntheticConfig cfg;
  cfg.num_users = 25;
  cfg.num_items = 100;
  cfg.num_interactions = 500;
  cfg.seed = 31;
  return *GenerateSynthetic(cfg);
}

FactorModel WarmModel(const Dataset& ds, uint64_t seed) {
  FactorModel model(ds.num_users(), ds.num_items(), 4);
  Rng rng(seed);
  model.InitGaussian(rng, 0.5);
  return model;
}

TEST(DnsPairSamplerTest, PairsAreValid) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 1);
  DnsPairSampler sampler(&ds, &model, 5, 7);
  for (int n = 0; n < 1000; ++n) {
    PairSample p = sampler.Sample();
    EXPECT_TRUE(ds.IsObserved(p.u, p.i));
    EXPECT_FALSE(ds.IsObserved(p.u, p.j));
  }
}

TEST(DnsPairSamplerTest, PicksHarderNegativesThanUniform) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 2);
  DnsPairSampler dns(&ds, &model, 8, 11);
  UniformPairSampler uniform(&ds, 11);
  double dns_sum = 0.0, uni_sum = 0.0;
  const int draws = 3000;
  for (int n = 0; n < draws; ++n) {
    PairSample pd = dns.Sample();
    PairSample pu = uniform.Sample();
    dns_sum += model.Score(pd.u, pd.j);
    uni_sum += model.Score(pu.u, pu.j);
  }
  EXPECT_GT(dns_sum, uni_sum);
}

TEST(DnsPairSamplerTest, OneCandidateEqualsUniformBehaviour) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 3);
  DnsPairSampler sampler(&ds, &model, 1, 13);
  // With a single candidate there is no selection pressure; just validity.
  for (int n = 0; n < 200; ++n) {
    PairSample p = sampler.Sample();
    EXPECT_FALSE(ds.IsObserved(p.u, p.j));
  }
}

TEST(AobprPairSamplerTest, PairsAreValid) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 4);
  AobprPairSampler::Options opts;
  AobprPairSampler sampler(&ds, &model, opts, 17);
  for (int n = 0; n < 1000; ++n) {
    PairSample p = sampler.Sample();
    EXPECT_TRUE(ds.IsObserved(p.u, p.i));
    EXPECT_FALSE(ds.IsObserved(p.u, p.j));
  }
}

TEST(AobprPairSamplerTest, OversamplesHighScoredNegatives) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 5);
  AobprPairSampler::Options opts;
  opts.tail_fraction = 0.03;
  AobprPairSampler aobpr(&ds, &model, opts, 19);
  UniformPairSampler uniform(&ds, 19);
  double ao_sum = 0.0, uni_sum = 0.0;
  const int draws = 4000;
  for (int n = 0; n < draws; ++n) {
    PairSample pa = aobpr.Sample();
    PairSample pu = uniform.Sample();
    ao_sum += model.Score(pa.u, pa.j);
    uni_sum += model.Score(pu.u, pu.j);
  }
  EXPECT_GT(ao_sum / draws, uni_sum / draws);
}

TEST(AobprPairSamplerTest, DeterministicGivenSeed) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 6);
  AobprPairSampler::Options opts;
  AobprPairSampler a(&ds, &model, opts, 23);
  AobprPairSampler b(&ds, &model, opts, 23);
  for (int n = 0; n < 100; ++n) {
    PairSample pa = a.Sample();
    PairSample pb = b.Sample();
    EXPECT_EQ(pa.u, pb.u);
    EXPECT_EQ(pa.i, pb.i);
    EXPECT_EQ(pa.j, pb.j);
  }
}

}  // namespace
}  // namespace clapf
