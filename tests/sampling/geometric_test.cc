#include "clapf/sampling/geometric.h"

#include <gtest/gtest.h>

#include <vector>

namespace clapf {
namespace {

TEST(GeometricRankSamplerTest, StaysInRange) {
  GeometricRankSampler sampler(0.1);
  Rng rng(1);
  for (size_t size : {1ul, 2ul, 10ul, 1000ul}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(sampler.Sample(size, rng), size);
    }
  }
}

TEST(GeometricRankSamplerTest, SizeOneAlwaysZero) {
  GeometricRankSampler sampler(0.5);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.Sample(1, rng), 0u);
}

TEST(GeometricRankSamplerTest, HeadIsHeavierThanTail) {
  GeometricRankSampler sampler(0.05);
  Rng rng(3);
  const size_t size = 1000;
  size_t head = 0, tail = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    size_t pos = sampler.Sample(size, rng);
    if (pos < 100) ++head;
    if (pos >= 900) ++tail;
  }
  EXPECT_GT(head, 10 * std::max<size_t>(tail, 1));
}

TEST(GeometricRankSamplerTest, SmallerTailFractionConcentratesMore) {
  Rng rng1(4), rng2(4);
  GeometricRankSampler aggressive(0.01);
  GeometricRankSampler mild(0.5);
  const size_t size = 1000;
  const int draws = 10000;
  double mean_aggressive = 0.0, mean_mild = 0.0;
  for (int i = 0; i < draws; ++i) {
    mean_aggressive += static_cast<double>(aggressive.Sample(size, rng1));
    mean_mild += static_cast<double>(mild.Sample(size, rng2));
  }
  EXPECT_LT(mean_aggressive / draws, mean_mild / draws);
}

TEST(GeometricRankSamplerTest, EveryPositionReachableForSmallLists) {
  GeometricRankSampler sampler(0.3);
  Rng rng(5);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) ++hits[sampler.Sample(5, rng)];
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(GeometricRankSamplerDeathTest, RejectsBadTailFraction) {
  EXPECT_DEATH(GeometricRankSampler(0.0), "Check failed");
  EXPECT_DEATH(GeometricRankSampler(1.5), "Check failed");
}

}  // namespace
}  // namespace clapf
