#include "clapf/sampling/rank_list.h"

#include <gtest/gtest.h>

#include "clapf/util/random.h"

namespace clapf {
namespace {

TEST(FactorRankListTest, RanksDescendingPerFactor) {
  FactorModel model(1, 4, 2);
  // Factor 0 values: item0=0.1, item1=0.9, item2=0.5, item3=-0.3.
  model.ItemFactors(0)[0] = 0.1;
  model.ItemFactors(1)[0] = 0.9;
  model.ItemFactors(2)[0] = 0.5;
  model.ItemFactors(3)[0] = -0.3;
  FactorRankList list(&model);

  EXPECT_EQ(list.ItemAt(0, 0, false), 1);
  EXPECT_EQ(list.ItemAt(0, 1, false), 2);
  EXPECT_EQ(list.ItemAt(0, 2, false), 0);
  EXPECT_EQ(list.ItemAt(0, 3, false), 3);
}

TEST(FactorRankListTest, ReversedReadsBottomUp) {
  FactorModel model(1, 3, 1);
  model.ItemFactors(0)[0] = 1.0;
  model.ItemFactors(1)[0] = 2.0;
  model.ItemFactors(2)[0] = 3.0;
  FactorRankList list(&model);
  EXPECT_EQ(list.ItemAt(0, 0, true), 0);   // lowest value first
  EXPECT_EQ(list.ItemAt(0, 2, true), 2);
}

TEST(FactorRankListTest, RefreshTracksModelChanges) {
  FactorModel model(1, 2, 1);
  model.ItemFactors(0)[0] = 1.0;
  model.ItemFactors(1)[0] = 0.0;
  FactorRankList list(&model);
  EXPECT_EQ(list.ItemAt(0, 0, false), 0);

  model.ItemFactors(1)[0] = 5.0;  // stale until refresh
  EXPECT_EQ(list.ItemAt(0, 0, false), 0);
  list.Refresh();
  EXPECT_EQ(list.ItemAt(0, 0, false), 1);
  EXPECT_EQ(list.refresh_count(), 2);  // constructor + explicit
}

TEST(FactorRankListTest, TiesBrokenByItemId) {
  FactorModel model(1, 3, 1);
  // All equal factor values.
  FactorRankList list(&model);
  EXPECT_EQ(list.ItemAt(0, 0, false), 0);
  EXPECT_EQ(list.ItemAt(0, 1, false), 1);
  EXPECT_EQ(list.ItemAt(0, 2, false), 2);
}

TEST(FactorRankListTest, EachFactorIndependentlyRanked) {
  FactorModel model(1, 2, 2);
  model.ItemFactors(0)[0] = 1.0;  // factor 0: item0 > item1
  model.ItemFactors(1)[0] = 0.0;
  model.ItemFactors(0)[1] = 0.0;  // factor 1: item1 > item0
  model.ItemFactors(1)[1] = 1.0;
  FactorRankList list(&model);
  EXPECT_EQ(list.ItemAt(0, 0, false), 0);
  EXPECT_EQ(list.ItemAt(1, 0, false), 1);
}

}  // namespace
}  // namespace clapf
