#include "clapf/sampling/uniform_sampler.h"

#include <gtest/gtest.h>

#include <set>

#include "testing/test_util.h"

namespace clapf {
namespace {

Dataset TinyData() {
  // 3 users over 6 items, one user inactive.
  return testing::MakeDataset(
      3, 6, {{0, 0}, {0, 1}, {0, 2}, {2, 3}, {2, 5}});
}

TEST(TrainableUsersTest, SkipsInactiveAndSaturatedUsers) {
  Dataset ds = testing::MakeDataset(3, 2, {{0, 0}, {1, 0}, {1, 1}});
  auto users = TrainableUsers(ds);
  // User 0 trainable; user 1 has all items observed; user 2 inactive.
  ASSERT_EQ(users.size(), 1u);
  EXPECT_EQ(users[0], 0);
}

TEST(SampleUnobservedUniformTest, NeverReturnsObserved) {
  Dataset ds = TinyData();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    ItemId j = SampleUnobservedUniform(ds, 0, rng);
    EXPECT_FALSE(ds.IsObserved(0, j));
  }
}

TEST(SampleUnobservedUniformTest, CoversAllUnobserved) {
  Dataset ds = TinyData();
  Rng rng(2);
  std::set<ItemId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(SampleUnobservedUniform(ds, 0, rng));
  EXPECT_EQ(seen, (std::set<ItemId>{3, 4, 5}));
}

TEST(UniformTripleSamplerTest, TriplesAreValid) {
  Dataset ds = TinyData();
  UniformTripleSampler sampler(&ds, 7);
  for (int n = 0; n < 1000; ++n) {
    Triple t = sampler.Sample();
    EXPECT_TRUE(ds.IsObserved(t.u, t.i));
    EXPECT_TRUE(ds.IsObserved(t.u, t.k));
    EXPECT_FALSE(ds.IsObserved(t.u, t.j));
  }
}

TEST(UniformTripleSamplerTest, OnlyActiveUsersSampled) {
  Dataset ds = TinyData();
  UniformTripleSampler sampler(&ds, 8);
  for (int n = 0; n < 200; ++n) {
    Triple t = sampler.Sample();
    EXPECT_NE(t.u, 1);  // user 1 has no items
  }
}

TEST(UniformTripleSamplerTest, DeterministicGivenSeed) {
  Dataset ds = TinyData();
  UniformTripleSampler a(&ds, 42), b(&ds, 42);
  for (int n = 0; n < 100; ++n) {
    Triple ta = a.Sample();
    Triple tb = b.Sample();
    EXPECT_EQ(ta.u, tb.u);
    EXPECT_EQ(ta.i, tb.i);
    EXPECT_EQ(ta.k, tb.k);
    EXPECT_EQ(ta.j, tb.j);
  }
}

TEST(UniformTripleSamplerTest, SingleItemUserYieldsKEqualsI) {
  Dataset ds = testing::MakeDataset(1, 3, {{0, 1}});
  UniformTripleSampler sampler(&ds, 5);
  for (int n = 0; n < 50; ++n) {
    Triple t = sampler.Sample();
    EXPECT_EQ(t.i, 1);
    EXPECT_EQ(t.k, 1);
    EXPECT_NE(t.j, 1);
  }
}

TEST(UniformTripleSamplerDeathTest, EmptyDatasetAborts) {
  Dataset ds = testing::MakeDataset(2, 2, {});
  EXPECT_DEATH(UniformTripleSampler(&ds, 1), "Check failed");
}

TEST(UniformPairSamplerTest, PairsAreValid) {
  Dataset ds = TinyData();
  UniformPairSampler sampler(&ds, 9);
  for (int n = 0; n < 1000; ++n) {
    PairSample p = sampler.Sample();
    EXPECT_TRUE(ds.IsObserved(p.u, p.i));
    EXPECT_FALSE(ds.IsObserved(p.u, p.j));
  }
}

TEST(UniformPairSamplerTest, EventuallyCoversAllPositives) {
  Dataset ds = TinyData();
  UniformPairSampler sampler(&ds, 10);
  std::set<std::pair<UserId, ItemId>> seen;
  for (int n = 0; n < 2000; ++n) {
    PairSample p = sampler.Sample();
    seen.emplace(p.u, p.i);
  }
  EXPECT_EQ(seen.size(), 5u);  // all observed pairs
}

}  // namespace
}  // namespace clapf
