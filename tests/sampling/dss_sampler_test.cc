#include "clapf/sampling/dss_sampler.h"

#include <gtest/gtest.h>

#include "clapf/data/synthetic.h"
#include "clapf/sampling/uniform_sampler.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

// A model with informative structure so adaptivity is measurable.
FactorModel MakeWarmModel(const Dataset& ds, uint64_t seed) {
  FactorModel model(ds.num_users(), ds.num_items(), 4);
  Rng rng(seed);
  model.InitGaussian(rng, 0.5);
  return model;
}

Dataset MediumData() {
  SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 120;
  cfg.num_interactions = 600;
  cfg.seed = 21;
  return *GenerateSynthetic(cfg);
}

TEST(DssSamplerTest, TriplesAreValid) {
  Dataset ds = MediumData();
  FactorModel model = MakeWarmModel(ds, 1);
  DssOptions opts;
  DssSampler sampler(&ds, &model, opts, 7);
  for (int n = 0; n < 2000; ++n) {
    Triple t = sampler.Sample();
    EXPECT_TRUE(ds.IsObserved(t.u, t.i));
    EXPECT_TRUE(ds.IsObserved(t.u, t.k));
    EXPECT_FALSE(ds.IsObserved(t.u, t.j));
  }
}

TEST(DssSamplerTest, DeterministicGivenSeed) {
  Dataset ds = MediumData();
  FactorModel model = MakeWarmModel(ds, 2);
  DssOptions opts;
  DssSampler a(&ds, &model, opts, 42);
  DssSampler b(&ds, &model, opts, 42);
  for (int n = 0; n < 200; ++n) {
    Triple ta = a.Sample();
    Triple tb = b.Sample();
    EXPECT_EQ(ta.u, tb.u);
    EXPECT_EQ(ta.i, tb.i);
    EXPECT_EQ(ta.k, tb.k);
    EXPECT_EQ(ta.j, tb.j);
  }
}

TEST(DssSamplerTest, NegativeOversamplingPicksHigherScoredJ) {
  // DSS draws j from the head of factor rankings, so the sampled negatives
  // should score higher under the model than uniform negatives.
  Dataset ds = MediumData();
  FactorModel model = MakeWarmModel(ds, 3);
  DssOptions opts;
  opts.variant = ClapfVariant::kMrr;
  DssSampler dss(&ds, &model, opts, 11);
  UniformTripleSampler uniform(&ds, 11);

  double dss_sum = 0.0, uni_sum = 0.0;
  const int draws = 4000;
  for (int n = 0; n < draws; ++n) {
    Triple td = dss.Sample();
    Triple tu = uniform.Sample();
    dss_sum += model.Score(td.u, td.j);
    uni_sum += model.Score(tu.u, tu.j);
  }
  EXPECT_GT(dss_sum / draws, uni_sum / draws);
}

TEST(DssSamplerTest, MapVariantPicksLowScoredCompanion) {
  // CLAPF-MAP draws k from the bottom of the observed ranking; CLAPF-MRR
  // from the top. Compare mean model scores of the sampled k.
  Dataset ds = MediumData();
  FactorModel model = MakeWarmModel(ds, 4);
  DssOptions map_opts;
  map_opts.variant = ClapfVariant::kMap;
  DssOptions mrr_opts;
  mrr_opts.variant = ClapfVariant::kMrr;
  DssSampler map_sampler(&ds, &model, map_opts, 13);
  DssSampler mrr_sampler(&ds, &model, mrr_opts, 13);

  double map_sum = 0.0, mrr_sum = 0.0;
  const int draws = 4000;
  for (int n = 0; n < draws; ++n) {
    Triple tm = map_sampler.Sample();
    Triple tr = mrr_sampler.Sample();
    map_sum += model.Score(tm.u, tm.k);
    mrr_sum += model.Score(tr.u, tr.k);
  }
  EXPECT_LT(map_sum / draws, mrr_sum / draws);
}

TEST(DssSamplerTest, PartialModesDegradeGracefully) {
  Dataset ds = MediumData();
  FactorModel model = MakeWarmModel(ds, 5);

  DssOptions pos_only;
  pos_only.adaptive_negative = false;
  DssSampler positive(&ds, &model, pos_only, 17);
  EXPECT_STREQ(positive.name(), "PositiveSampling");

  DssOptions neg_only;
  neg_only.adaptive_positive = false;
  DssSampler negative(&ds, &model, neg_only, 17);
  EXPECT_STREQ(negative.name(), "NegativeSampling");

  DssOptions full;
  DssSampler dss(&ds, &model, full, 17);
  EXPECT_STREQ(dss.name(), "DSS");

  for (int n = 0; n < 500; ++n) {
    for (DssSampler* s : {&positive, &negative, &dss}) {
      Triple t = s->Sample();
      EXPECT_TRUE(ds.IsObserved(t.u, t.i));
      EXPECT_TRUE(ds.IsObserved(t.u, t.k));
      EXPECT_FALSE(ds.IsObserved(t.u, t.j));
    }
  }
}

TEST(DssSamplerTest, RefreshHappensOnSchedule) {
  Dataset ds = MediumData();
  FactorModel model = MakeWarmModel(ds, 6);
  DssOptions opts;
  opts.refresh_interval = 100;
  DssSampler sampler(&ds, &model, opts, 19);
  const int64_t initial = sampler.refresh_count();
  for (int n = 0; n < 350; ++n) sampler.Sample();
  EXPECT_EQ(sampler.refresh_count(), initial + 3);
}

TEST(DssSamplerTest, SingleItemUserStillSamples) {
  Dataset ds = testing::MakeDataset(1, 10, {{0, 4}});
  FactorModel model = MakeWarmModel(ds, 7);
  DssOptions opts;
  DssSampler sampler(&ds, &model, opts, 23);
  for (int n = 0; n < 100; ++n) {
    Triple t = sampler.Sample();
    EXPECT_EQ(t.i, 4);
    EXPECT_EQ(t.k, 4);
    EXPECT_NE(t.j, 4);
  }
}

}  // namespace
}  // namespace clapf
