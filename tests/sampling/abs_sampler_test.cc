#include "clapf/sampling/abs_sampler.h"

#include <gtest/gtest.h>

#include "clapf/data/synthetic.h"
#include "clapf/sampling/uniform_sampler.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

Dataset MediumData() {
  SyntheticConfig cfg;
  cfg.num_users = 25;
  cfg.num_items = 100;
  cfg.num_interactions = 500;
  cfg.seed = 31;
  return *GenerateSynthetic(cfg);
}

FactorModel WarmModel(const Dataset& ds, uint64_t seed) {
  FactorModel model(ds.num_users(), ds.num_items(), 4);
  Rng rng(seed);
  model.InitGaussian(rng, 0.5);
  return model;
}

TEST(AbsPairSamplerTest, PairsAreValid) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 1);
  AbsPairSampler::Options opts;
  AbsPairSampler sampler(&ds, &model, opts, 7);
  for (int n = 0; n < 1000; ++n) {
    PairSample p = sampler.Sample();
    EXPECT_TRUE(ds.IsObserved(p.u, p.i));
    EXPECT_FALSE(ds.IsObserved(p.u, p.j));
  }
}

TEST(AbsPairSamplerTest, PureAlphaActsLikeDns) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 2);
  AbsPairSampler::Options opts;
  opts.alpha = 1.0;
  opts.beta = 0.0;
  AbsPairSampler abs(&ds, &model, opts, 11);
  UniformPairSampler uniform(&ds, 11);
  double abs_sum = 0.0, uni_sum = 0.0;
  const int draws = 3000;
  for (int n = 0; n < draws; ++n) {
    PairSample pa = abs.Sample();
    PairSample pu = uniform.Sample();
    abs_sum += model.Score(pa.u, pa.j);
    uni_sum += model.Score(pu.u, pu.j);
  }
  EXPECT_GT(abs_sum / draws, uni_sum / draws);
}

TEST(AbsPairSamplerTest, PureBetaFavorsPopularNegatives) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 3);
  AbsPairSampler::Options opts;
  opts.alpha = 0.0;
  opts.beta = 1.0;
  AbsPairSampler abs(&ds, &model, opts, 13);
  UniformPairSampler uniform(&ds, 13);
  auto pop = ds.ItemPopularity();
  double abs_pop = 0.0, uni_pop = 0.0;
  const int draws = 4000;
  for (int n = 0; n < draws; ++n) {
    abs_pop += static_cast<double>(pop[abs.Sample().j]);
    uni_pop += static_cast<double>(pop[uniform.Sample().j]);
  }
  EXPECT_GT(abs_pop / draws, uni_pop / draws);
}

TEST(AbsPairSamplerTest, DeterministicGivenSeed) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 4);
  AbsPairSampler::Options opts;
  AbsPairSampler a(&ds, &model, opts, 17);
  AbsPairSampler b(&ds, &model, opts, 17);
  for (int n = 0; n < 200; ++n) {
    PairSample pa = a.Sample();
    PairSample pb = b.Sample();
    EXPECT_EQ(pa.u, pb.u);
    EXPECT_EQ(pa.i, pb.i);
    EXPECT_EQ(pa.j, pb.j);
  }
}

TEST(AbsPairSamplerDeathTest, RejectsBadMixture) {
  Dataset ds = MediumData();
  FactorModel model = WarmModel(ds, 5);
  AbsPairSampler::Options opts;
  opts.alpha = 0.8;
  opts.beta = 0.5;  // sum > 1
  EXPECT_DEATH(AbsPairSampler(&ds, &model, opts, 1), "Check failed");
}

}  // namespace
}  // namespace clapf
