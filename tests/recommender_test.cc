#include "clapf/recommender.h"

#include <gtest/gtest.h>

#include "clapf/model/model_io.h"
#include "clapf/util/logging.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

// Scores: user 0 prefers item order 3 > 2 > 1 > 0; user 1 reversed. User 2
// is cold (no history) in most tests.
Recommender MakeRecommender(const Dataset& history) {
  FactorModel model = testing::MakeExactModel({{0.0, 1.0, 2.0, 3.0},
                                               {3.0, 2.0, 1.0, 0.0},
                                               {0.5, 0.5, 0.5, 0.5}});
  auto rec = Recommender::Create(std::move(model), history);
  CLAPF_CHECK_OK(rec.status());
  return *std::move(rec);
}

TEST(RecommenderTest, ExcludesHistory) {
  Dataset history = testing::MakeDataset(3, 4, {{0, 3}, {1, 0}});
  Recommender rec = MakeRecommender(history);
  auto top = rec.Recommend(0, 2, {});
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].item, 2);  // item 3 is history
  EXPECT_EQ((*top)[1].item, 1);
}

TEST(RecommenderTest, ExplicitExclusionList) {
  Dataset history = testing::MakeDataset(3, 4, {{0, 3}});
  Recommender rec = MakeRecommender(history);
  QueryOptions options;
  options.exclude = {2};
  auto top = rec.Recommend(0, 2, options);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)[0].item, 1);
  // Out-of-range exclusions are ignored, not an error.
  options.exclude = {99, -5};
  auto top2 = rec.Recommend(0, 1, options);
  ASSERT_TRUE(top2.ok());
  EXPECT_EQ((*top2)[0].item, 2);
}

TEST(RecommenderTest, ColdUserFallsBackToPopularity) {
  // Item 1 is most popular in history; user 2 has no history.
  Dataset history =
      testing::MakeDataset(3, 4, {{0, 1}, {1, 1}, {0, 3}});
  Recommender rec = MakeRecommender(history);
  auto top = rec.Recommend(2, 1, {});
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)[0].item, 1);  // by popularity, not the flat 0.5 scores
}

TEST(RecommenderTest, UnknownUserIsOutOfRange) {
  Dataset history = testing::MakeDataset(3, 4, {{0, 0}});
  Recommender rec = MakeRecommender(history);
  EXPECT_EQ(rec.Recommend(7, 3, {}).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(rec.Recommend(-1, 3, {}).status().code(), StatusCode::kOutOfRange);
}

TEST(RecommenderTest, ScoreChecksBothIds) {
  Dataset history = testing::MakeDataset(3, 4, {{0, 0}});
  Recommender rec = MakeRecommender(history);
  auto s = rec.Score(0, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 3.0);
  EXPECT_EQ(rec.Score(9, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(rec.Score(0, 9).status().code(), StatusCode::kOutOfRange);
}

TEST(RecommenderTest, KZeroReturnsEmpty) {
  Dataset history = testing::MakeDataset(3, 4, {});
  Recommender rec = MakeRecommender(history);
  auto top = rec.Recommend(0, 0, {});
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->empty());
}

TEST(RecommenderTest, DimensionMismatchRejected) {
  FactorModel model(2, 3, 1);
  Dataset history = testing::MakeDataset(2, 4, {});
  EXPECT_EQ(Recommender::Create(std::move(model), history).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RecommenderTest, SaveLoadRoundTrip) {
  Dataset history = testing::MakeDataset(3, 4, {{0, 3}});
  Recommender rec = MakeRecommender(history);
  std::string path = ::testing::TempDir() + "recommender_model.clpf";
  ASSERT_TRUE(rec.Save(path).ok());

  auto loaded = Recommender::Load(path, history);
  ASSERT_TRUE(loaded.ok());
  auto a = rec.Recommend(0, 3, {});
  auto b = loaded->Recommend(0, 3, {});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].item, (*b)[i].item);
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

TEST(RecommenderTest, LoadMissingModelFails) {
  Dataset history = testing::MakeDataset(1, 1, {});
  EXPECT_EQ(Recommender::Load("/no/such/model.clpf", history).status().code(),
            StatusCode::kIoError);
}

TEST(RecommenderTest, KBeyondCatalogIsClampedNotError) {
  Dataset history = testing::MakeDataset(3, 4, {{0, 3}});
  Recommender rec = MakeRecommender(history);
  // Warm user: the full rankable catalog is 4 items minus 1 history entry.
  auto warm = rec.Recommend(0, 1000, QueryOptions{});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->size(), 3u);
  // Cold user on the popularity fallback clamps the same way.
  auto cold = rec.Recommend(2, 1000, QueryOptions{});
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->size(), 4u);
}

TEST(RecommenderTest, AllItemsExcludedYieldsEmptyNotError) {
  Dataset history = testing::MakeDataset(3, 4, {{0, 0}, {0, 1}});
  Recommender rec = MakeRecommender(history);
  QueryOptions options;
  options.exclude = {2, 3};  // history covers 0 and 1 — nothing rankable
  auto top = rec.Recommend(0, 2, options);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_TRUE(top->empty());
}

TEST(RecommenderTest, ColdUserWithEverythingExcludedYieldsEmptyNotError) {
  Dataset history = testing::MakeDataset(3, 4, {{0, 1}});
  Recommender rec = MakeRecommender(history);
  QueryOptions options;
  options.exclude = {0, 1, 2, 3};
  // User 2 is cold: the popularity fallback also has nothing left to rank.
  auto top = rec.Recommend(2, 2, options);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_TRUE(top->empty());
}

TEST(RecommenderTest, MinScoreFilteringEverythingYieldsEmptyNotError) {
  Dataset history = testing::MakeDataset(3, 4, {});
  Recommender rec = MakeRecommender(history);
  QueryOptions options;
  options.min_score = 1000.0;  // above every score in the model
  auto warm = rec.Recommend(0, 3, options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->empty());
  auto cold = rec.Recommend(2, 3, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold->empty());
}

}  // namespace
}  // namespace clapf
