#include "clapf/core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "clapf/util/fs.h"
#include "clapf/util/random.h"
#include "testing/fault_schedule.h"

namespace clapf {
namespace {

using clapf::testing::ScopedFaultSchedule;

// A fresh, empty checkpoint directory for one test.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

FactorModel ModelWithSeed(uint64_t seed) {
  FactorModel model(5, 8, 3, /*use_item_bias=*/true);
  Rng rng(seed);
  model.InitGaussian(rng, 0.2);
  return model;
}

TrainerCheckpointState StateAt(int64_t iteration) {
  TrainerCheckpointState state;
  state.iteration = iteration;
  state.seed = 42;
  state.lr_scale = 0.5;
  state.guard_retries = 1;
  state.loss_acc = 12.5;
  state.loss_count = iteration;
  return state;
}

TEST(CheckpointManagerTest, DisabledWithoutDirOrInterval) {
  CheckpointManager no_dir(CheckpointOptions{});
  EXPECT_FALSE(no_dir.enabled());
  EXPECT_TRUE(no_dir.Init().ok());  // no-op

  CheckpointOptions dir_only;
  dir_only.dir = FreshDir("disabled");
  CheckpointManager no_interval(dir_only);
  EXPECT_FALSE(no_interval.enabled());
  EXPECT_EQ(no_interval.Write(ModelWithSeed(1), StateAt(1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointManagerTest, WriteThenLoadLatestRoundTrips) {
  CheckpointOptions opts;
  opts.dir = FreshDir("roundtrip");
  opts.interval = 10;
  CheckpointManager manager(opts);
  ASSERT_TRUE(manager.Init().ok());

  FactorModel model = ModelWithSeed(3);
  ASSERT_TRUE(manager.Write(model, StateAt(10)).ok());

  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->state.iteration, 10);
  EXPECT_EQ(loaded->state.seed, 42u);
  EXPECT_DOUBLE_EQ(loaded->state.lr_scale, 0.5);
  EXPECT_EQ(loaded->state.guard_retries, 1);
  EXPECT_DOUBLE_EQ(loaded->state.loss_acc, 12.5);
  EXPECT_EQ(loaded->state.loss_count, 10);
  EXPECT_EQ(loaded->model.user_factor_data(), model.user_factor_data());
  EXPECT_EQ(loaded->model.item_factor_data(), model.item_factor_data());
  EXPECT_EQ(loaded->model.item_bias_data(), model.item_bias_data());
}

TEST(CheckpointManagerTest, RecoveryAcrossManagerInstances) {
  CheckpointOptions opts;
  opts.dir = FreshDir("recovery");
  opts.interval = 10;
  {
    CheckpointManager writer(opts);
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.Write(ModelWithSeed(1), StateAt(10)).ok());
    ASSERT_TRUE(writer.Write(ModelWithSeed(2), StateAt(20)).ok());
  }
  CheckpointManager reader(opts);
  ASSERT_TRUE(reader.Init().ok());
  ASSERT_EQ(reader.entries().size(), 2u);
  auto loaded = reader.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.iteration, 20);
  EXPECT_EQ(loaded->model.user_factor_data(),
            ModelWithSeed(2).user_factor_data());
}

TEST(CheckpointManagerTest, PrunesBeyondKeepLast) {
  CheckpointOptions opts;
  opts.dir = FreshDir("prune");
  opts.interval = 1;
  opts.keep_last = 2;
  CheckpointManager manager(opts);
  ASSERT_TRUE(manager.Init().ok());
  for (int64_t it = 1; it <= 5; ++it) {
    ASSERT_TRUE(manager.Write(ModelWithSeed(static_cast<uint64_t>(it)),
                              StateAt(it)).ok());
  }
  EXPECT_EQ(manager.entries().size(), 2u);

  // Only the two newest checkpoint files remain on disk.
  auto names = ListDir(opts.dir);
  ASSERT_TRUE(names.ok());
  int ckpt_files = 0;
  for (const std::string& name : *names) {
    if (name.starts_with("ckpt-")) ++ckpt_files;
  }
  EXPECT_EQ(ckpt_files, 2);

  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.iteration, 5);
}

TEST(CheckpointManagerTest, LostManifestFallsBackToDirectoryScan) {
  CheckpointOptions opts;
  opts.dir = FreshDir("lost_manifest");
  opts.interval = 10;
  {
    CheckpointManager writer(opts);
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.Write(ModelWithSeed(1), StateAt(10)).ok());
    ASSERT_TRUE(writer.Write(ModelWithSeed(2), StateAt(20)).ok());
  }
  ASSERT_TRUE(RemoveFileIfExists(opts.dir + "/MANIFEST").ok());

  CheckpointManager reader(opts);
  ASSERT_TRUE(reader.Init().ok());
  ASSERT_EQ(reader.entries().size(), 2u);
  auto loaded = reader.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.iteration, 20);
}

TEST(CheckpointManagerTest, LoadLatestSkipsByteCorruptedNewest) {
  CheckpointOptions opts;
  opts.dir = FreshDir("skip_corrupt");
  opts.interval = 10;
  CheckpointManager manager(opts);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.Write(ModelWithSeed(1), StateAt(10)).ok());
  ASSERT_TRUE(manager.Write(ModelWithSeed(2), StateAt(20)).ok());

  // Flip one byte in the middle of the newest checkpoint (lands in the
  // parameter arrays; only the CRC can catch it).
  const std::string newest = opts.dir + "/" + manager.entries().back();
  auto contents = ReadFileToString(newest);
  ASSERT_TRUE(contents.ok());
  std::string damaged = *contents;
  damaged[damaged.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(newest, damaged).ok());

  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->state.iteration, 10);
  EXPECT_EQ(loaded->model.user_factor_data(),
            ModelWithSeed(1).user_factor_data());
}

TEST(CheckpointManagerTest, ShortWriteCheckpointIsSkippedOnRecovery) {
  CheckpointOptions opts;
  opts.dir = FreshDir("short_write");
  opts.interval = 10;
  CheckpointManager manager(opts);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.Write(ModelWithSeed(1), StateAt(10)).ok());
  {
    // The second write is torn in half before it reaches disk.
    ScopedFaultSchedule faults(
        {{FaultPoint::kModelWriteShort, {.trigger_at_hit = 1}}});
    ASSERT_TRUE(manager.Write(ModelWithSeed(2), StateAt(20)).ok());
  }
  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.iteration, 10);
}

TEST(CheckpointManagerTest, RenameFailureLeavesPreviousCheckpointIntact) {
  CheckpointOptions opts;
  opts.dir = FreshDir("rename_fail");
  opts.interval = 10;
  CheckpointManager manager(opts);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.Write(ModelWithSeed(1), StateAt(10)).ok());
  {
    ScopedFaultSchedule faults({{FaultPoint::kModelRename, {}}});
    Status s = manager.Write(ModelWithSeed(2), StateAt(20));
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
  // The failed write never made it into the manifest.
  EXPECT_EQ(manager.entries().size(), 1u);
  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->state.iteration, 10);
}

TEST(CheckpointManagerTest, EmptyDirectoryIsNotFound) {
  CheckpointOptions opts;
  opts.dir = FreshDir("empty");
  opts.interval = 10;
  CheckpointManager manager(opts);
  ASSERT_TRUE(manager.Init().ok());
  EXPECT_EQ(manager.LoadLatest().status().code(), StatusCode::kNotFound);
}

TEST(CheckpointManagerTest, ReadCheckpointFileRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "garbage.ckpt";
  std::ofstream(path) << "this is not a checkpoint";
  EXPECT_EQ(CheckpointManager::ReadCheckpointFile(path).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace clapf
