// Online-lifecycle drills: the OnlineTrainer determinism contract, the
// ContinuousDeployer's ingest → train → publish loop, and the crash-resume
// handshake. The load-bearing properties:
//
//   * Determinism — trainer state is a pure function of (options, record
//     sequence, increment boundaries), so a crash-resumed deployer is
//     bit-consistent with an uninterrupted run over the same WAL.
//   * No unvetted snapshot ever serves — every publish (live, recovery,
//     post-rollback) goes through the ModelServer canary gate, and a refusal
//     rolls the trainer back to the last published-good bits.
//   * The day-replay drill at the bottom is the acceptance test: a full
//     simulated day with a mid-append kill, a corrupted WAL segment, a
//     divergent increment, and an injected publish regression — the system
//     must recover from all four and end healthy.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "clapf/data/split.h"
#include "clapf/obs/metrics.h"
#include "clapf/online/continuous_deployer.h"
#include "clapf/online/online_trainer.h"
#include "clapf/online/wal.h"
#include "clapf/serving/model_server.h"
#include "clapf/util/logging.h"
#include "clapf/util/status.h"
#include "testing/fault_schedule.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

using clapf::testing::ScopedFaultSchedule;

constexpr int32_t kUsers = 24;
constexpr int32_t kItems = 32;

Dataset Envelope() {
  return testing::MakeLearnableDataset(kUsers, kItems, 10, 3);
}

// A fresh WAL + checkpoint directory pair for one test.
struct Dirs {
  std::string wal;
  std::string ckpt;
};

Dirs FreshDirs(const std::string& name) {
  Dirs dirs;
  dirs.wal = ::testing::TempDir() + "online_" + name + "_wal";
  dirs.ckpt = ::testing::TempDir() + "online_" + name + "_ckpt";
  std::filesystem::remove_all(dirs.wal);
  std::filesystem::remove_all(dirs.ckpt);
  return dirs;
}

ServerOptions Serving(double min_auc = 0.0) {
  ServerOptions options;
  options.num_threads = 2;
  options.canary.min_auc = min_auc;
  return options;
}

DeployerOptions Deploying(const Dirs& dirs,
                          MetricsRegistry* metrics = nullptr) {
  DeployerOptions options;
  options.wal.dir = dirs.wal;
  options.checkpoint_dir = dirs.ckpt;
  options.trainer.sgd.num_factors = 8;
  options.trainer.sgd.learning_rate = 0.1;
  options.trainer.sgd.seed = 5;
  options.trainer.sgd.divergence.policy = DivergencePolicy::kHalt;
  options.trainer.epochs_per_increment = 4;
  options.trainer.reservoir_capacity = 256;
  options.min_increment_records = 6;
  options.metrics = metrics;
  return options;
}

// The deterministic in-envelope arrival at stream position p.
std::pair<UserId, ItemId> ArrivalAt(int64_t p) {
  return {static_cast<UserId>((p * 7 + 1) % kUsers),
          static_cast<ItemId>((p * 5 + 2) % kItems)};
}

void ExpectSameBits(const FactorModel& a, const FactorModel& b,
                    const std::string& context) {
  ASSERT_EQ(a.num_users(), b.num_users()) << context;
  ASSERT_EQ(a.num_items(), b.num_items()) << context;
  // operator== on the vectors: bit-identity, not tolerance.
  EXPECT_EQ(a.user_factor_data(), b.user_factor_data()) << context;
  EXPECT_EQ(a.item_factor_data(), b.item_factor_data()) << context;
  EXPECT_EQ(a.item_bias_data(), b.item_bias_data()) << context;
}

int CountEvents(const FlightRecorder& recorder, FlightEventKind kind) {
  int n = 0;
  for (const FlightEvent& e : recorder.Snapshot()) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string EventDetail(const FlightRecorder& recorder, FlightEventKind kind) {
  for (const FlightEvent& e : recorder.Snapshot()) {
    if (e.kind == kind) return e.detail;
  }
  return "";
}

// ---------------------------------------------------------------------------
// OnlineTrainer

TEST(OnlineTrainerTest, SameStreamSameBoundariesIsBitIdentical) {
  Dataset bootstrap = testing::MakeDataset(4, 6, {{0, 1}, {1, 2}, {2, 3}});
  OnlineTrainerOptions options;
  options.sgd.num_factors = 4;
  options.sgd.seed = 9;
  options.reservoir_capacity = 32;

  OnlineTrainer a(bootstrap, options);
  OnlineTrainer b(bootstrap, options);
  for (int64_t p = 0; p < 20; ++p) {
    // Ids past the bootstrap dimensions grow the model on the fly.
    auto [u, i] = std::pair<UserId, ItemId>{static_cast<UserId>(p % 7),
                                            static_cast<ItemId>(p % 9)};
    a.Ingest(u, i);
    b.Ingest(u, i);
    if ((p + 1) % 5 == 0) {
      const uint64_t seed = 100 + static_cast<uint64_t>(p);
      ASSERT_TRUE(a.TrainIncrement(seed).ok());
      ASSERT_TRUE(b.TrainIncrement(seed).ok());
    }
  }
  EXPECT_EQ(a.num_users(), 7);
  EXPECT_EQ(a.num_items(), 9);
  EXPECT_EQ(a.increments(), 4);
  ExpectSameBits(a.model(), b.model(), "independent identical streams");
}

TEST(OnlineTrainerTest, DivergenceHaltRestoresTheModelAndKeepsTheTail) {
  Dataset bootstrap = testing::MakeLearnableDataset(8, 12, 4, 1);
  OnlineTrainerOptions options;
  options.sgd.num_factors = 4;
  options.sgd.seed = 2;
  options.sgd.divergence.policy = DivergencePolicy::kHalt;
  OnlineTrainer trainer(bootstrap, options);
  for (int64_t p = 0; p < 6; ++p) trainer.Ingest(p % 8, p % 12);
  const FactorModel before = trainer.model();

  ScopedFaultSchedule faults(
      {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 1}}});
  Status halted = trainer.TrainIncrement(7);
  EXPECT_FALSE(halted.ok());
  // The halted increment left no trace on the parameters, and the tail is
  // kept for the caller to retry or discard.
  ExpectSameBits(trainer.model(), before, "after halted increment");
  EXPECT_EQ(trainer.tail_size(), 6);
  EXPECT_EQ(trainer.increments(), 0);
  faults.Disarm(FaultPoint::kSgdStepNan);

  ASSERT_TRUE(trainer.TrainIncrement(7).ok());
  EXPECT_EQ(trainer.tail_size(), 0);
  EXPECT_EQ(trainer.increments(), 1);
}

// ---------------------------------------------------------------------------
// ContinuousDeployer basics

TEST(DeployerTest, LifecyclePublishesThroughTheGate) {
  Dataset envelope = Envelope();
  TrainTestSplit split = SplitRandom(envelope, 0.5, 1);
  MetricsRegistry metrics;
  ModelServer server(envelope, Serving());
  ContinuousDeployer deployer(&server, split.train,
                              Deploying(FreshDirs("lifecycle"), &metrics));
  ASSERT_TRUE(deployer.Start().ok());
  EXPECT_EQ(deployer.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(server.degraded());  // nothing published yet
  EXPECT_EQ(CountEvents(deployer.flight_recorder(),
                        FlightEventKind::kWalRecovery),
            1);

  // Below the increment threshold: logged but not trained.
  for (int64_t p = 0; p < 4; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(deployer.Ingest(u, i).ok());
  }
  auto idle = deployer.RunCycle();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(*idle);
  EXPECT_EQ(deployer.wal_position(), 4);
  EXPECT_EQ(deployer.trained_position(), 0);

  for (int64_t p = 4; p < 6; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(deployer.Ingest(u, i).ok());
  }
  auto cycled = deployer.RunCycle();
  ASSERT_TRUE(cycled.ok());
  EXPECT_TRUE(*cycled);
  EXPECT_EQ(deployer.trained_position(), 6);
  EXPECT_EQ(deployer.published_version(), 1);
  EXPECT_EQ(server.version(), 1);
  EXPECT_FALSE(server.degraded());
  EXPECT_EQ(CountEvents(deployer.flight_recorder(),
                        FlightEventKind::kOnlinePublish),
            1);
  EXPECT_EQ(metrics.GetCounter("online.ingested_total")->Value(), 6);
  EXPECT_EQ(metrics.GetCounter("online.publishes_total")->Value(), 1);

  // The published snapshot is padded to the serving envelope: any user in
  // the universe is answerable, trained or not.
  EXPECT_TRUE(server.Recommend(0, 5).ok());
  EXPECT_TRUE(server.Recommend(kUsers - 1, 5).ok());

  // `force` flushes a tail below the threshold — the end-of-day drain.
  auto [u, i] = ArrivalAt(6);
  ASSERT_TRUE(deployer.Ingest(u, i).ok());
  auto forced = deployer.RunCycle(/*force=*/true);
  ASSERT_TRUE(forced.ok());
  EXPECT_TRUE(*forced);
  EXPECT_EQ(deployer.trained_position(), 7);
  EXPECT_EQ(server.version(), 2);
}

TEST(DeployerTest, RefusesUnstartedCallsAndOutOfEnvelopeArrivals) {
  Dataset envelope = Envelope();
  MetricsRegistry metrics;
  ModelServer server(envelope, Serving());
  ContinuousDeployer deployer(&server, envelope,
                              Deploying(FreshDirs("refuse"), &metrics));
  EXPECT_EQ(deployer.Ingest(0, 0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(deployer.RunCycle().status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(deployer.Start().ok());
  EXPECT_EQ(deployer.Ingest(kUsers, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(deployer.Ingest(0, kItems).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(deployer.Ingest(-1, 0).code(), StatusCode::kInvalidArgument);
  // A refused arrival is neither logged nor counted as ingested.
  EXPECT_EQ(deployer.wal_position(), 0);
  EXPECT_EQ(metrics.GetCounter("online.ingest_rejected_total")->Value(), 3);
  EXPECT_EQ(metrics.GetCounter("online.ingested_total")->Value(), 0);
}

TEST(DeployerTest, WithoutCheckpointsRecoveryRetrainsTheWholeWal) {
  Dataset envelope = Envelope();
  TrainTestSplit split = SplitRandom(envelope, 0.5, 1);
  Dirs dirs = FreshDirs("no_ckpt");
  DeployerOptions options = Deploying(dirs);
  options.checkpoint_dir.clear();  // crash recovery = full replay

  {
    ModelServer server(envelope, Serving());
    ContinuousDeployer deployer(&server, split.train, options);
    ASSERT_TRUE(deployer.Start().ok());
    for (int64_t p = 0; p < 12; ++p) {
      auto [u, i] = ArrivalAt(p);
      ASSERT_TRUE(deployer.Ingest(u, i).ok());
      ASSERT_TRUE(deployer.RunCycle().ok());
    }
    EXPECT_EQ(deployer.trained_position(), 12);
  }  // crash

  ModelServer server(envelope, Serving());
  ContinuousDeployer deployer(&server, split.train, options);
  ASSERT_TRUE(deployer.Start().ok());
  // No checkpoint to restore: nothing trained yet, nothing republished —
  // the whole log is fresh tail again.
  EXPECT_EQ(deployer.trained_position(), 0);
  EXPECT_EQ(deployer.published_version(), 0);
  EXPECT_EQ(deployer.wal_position(), 12);
  auto cycled = deployer.RunCycle();
  ASSERT_TRUE(cycled.ok());
  EXPECT_TRUE(*cycled);
  EXPECT_EQ(deployer.trained_position(), 12);
  EXPECT_EQ(server.version(), 1);
}

// ---------------------------------------------------------------------------
// Rollback paths

TEST(DeployerTest, RefusedPublishRollsTheTrainerBackToLastGood) {
  Dataset envelope = Envelope();
  TrainTestSplit split = SplitRandom(envelope, 0.5, 1);
  Dirs dirs = FreshDirs("gate_rollback");
  MetricsRegistry metrics;
  DeployerOptions options = Deploying(dirs, &metrics);
  options.flight_dump_path = dirs.wal + "/incident.json";
  ModelServer server(envelope, Serving());
  ContinuousDeployer deployer(&server, split.train, options);
  ASSERT_TRUE(deployer.Start().ok());

  for (int64_t p = 0; p < 6; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(deployer.Ingest(u, i).ok());
  }
  ASSERT_TRUE(deployer.RunCycle().ok());
  ASSERT_EQ(server.version(), 1);
  const FactorModel last_good = deployer.trainer().model();

  // The next cycle's candidate is poisoned before the gate: the gate must
  // refuse it and the trainer must forget it ever trained that increment.
  for (int64_t p = 6; p < 12; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(deployer.Ingest(u, i).ok());
  }
  ScopedFaultSchedule faults(
      {{FaultPoint::kServeCorruptCandidate, {.trigger_at_hit = 1}}});
  auto cycled = deployer.RunCycle();
  ASSERT_TRUE(cycled.ok());
  EXPECT_TRUE(*cycled);
  faults.Disarm(FaultPoint::kServeCorruptCandidate);

  // Nothing unvetted reached traffic and the regression did not stick.
  EXPECT_EQ(server.version(), 1);
  EXPECT_EQ(deployer.published_version(), 1);
  ExpectSameBits(deployer.trainer().model(), last_good,
                 "trainer after refused publish");
  EXPECT_EQ(deployer.trained_position(), 12);  // the records stay consumed
  EXPECT_EQ(metrics.GetCounter("online.publish_rollbacks_total")->Value(), 1);
  EXPECT_EQ(CountEvents(deployer.flight_recorder(),
                        FlightEventKind::kAucRegressionRollback),
            1);
  // The incident black box was dumped automatically.
  EXPECT_TRUE(std::filesystem::exists(options.flight_dump_path));

  // The loop is not wedged: the next clean increment publishes.
  for (int64_t p = 12; p < 18; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(deployer.Ingest(u, i).ok());
  }
  ASSERT_TRUE(deployer.RunCycle().ok());
  EXPECT_EQ(server.version(), 2);
}

TEST(DeployerTest, DivergentIncrementRollsBackAndStillAdvances) {
  Dataset envelope = Envelope();
  TrainTestSplit split = SplitRandom(envelope, 0.5, 1);
  MetricsRegistry metrics;
  ModelServer server(envelope, Serving());
  ContinuousDeployer deployer(&server, split.train,
                              Deploying(FreshDirs("diverge"), &metrics));
  ASSERT_TRUE(deployer.Start().ok());

  for (int64_t p = 0; p < 6; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(deployer.Ingest(u, i).ok());
  }
  ASSERT_TRUE(deployer.RunCycle().ok());
  ASSERT_EQ(server.version(), 1);
  const FactorModel before = deployer.trainer().model();

  for (int64_t p = 6; p < 12; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(deployer.Ingest(u, i).ok());
  }
  ScopedFaultSchedule faults(
      {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 1}}});
  auto cycled = deployer.RunCycle();
  ASSERT_TRUE(cycled.ok());
  EXPECT_TRUE(*cycled);  // handled internally, not surfaced
  faults.Disarm(FaultPoint::kSgdStepNan);

  // The divergent step never reached the model or the server, but its
  // records are consumed — a deterministic divergence must not re-fire on
  // every future cycle (or on crash replay: the checkpoint advanced too).
  ExpectSameBits(deployer.trainer().model(), before,
                 "trainer after divergent increment");
  EXPECT_EQ(server.version(), 1);
  EXPECT_EQ(deployer.trained_position(), 12);
  EXPECT_EQ(metrics.GetCounter("online.increment_rollbacks_total")->Value(),
            1);
  EXPECT_EQ(CountEvents(deployer.flight_recorder(),
                        FlightEventKind::kInternalError),
            1);

  for (int64_t p = 12; p < 18; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(deployer.Ingest(u, i).ok());
  }
  ASSERT_TRUE(deployer.RunCycle().ok());
  EXPECT_EQ(server.version(), 2);
}

// ---------------------------------------------------------------------------
// Crash resume

// The determinism contract end to end: a deployer killed mid-append and
// resumed from its WAL + checkpoint must converge to the SAME bits as one
// that ran the day uninterrupted — same arrivals, same cycle boundaries.
TEST(DeployerTest, CrashResumeIsBitConsistentWithAnUninterruptedRun) {
  Dataset envelope = Envelope();
  TrainTestSplit split = SplitRandom(envelope, 0.5, 1);
  constexpr int64_t kArrivals = 24;
  constexpr int64_t kCrashAt = 15;  // mid-increment: after cycles at 6, 12

  // Reference run: the whole day, no interruptions.
  Dirs dirs_a = FreshDirs("resume_a");
  ModelServer server_a(envelope, Serving());
  ContinuousDeployer uninterrupted(&server_a, split.train,
                                   Deploying(dirs_a));
  ASSERT_TRUE(uninterrupted.Start().ok());
  for (int64_t p = 0; p < kArrivals; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(uninterrupted.Ingest(u, i).ok());
    ASSERT_TRUE(uninterrupted.RunCycle().ok());
  }

  // Crashing run: same dirs across both incarnations.
  Dirs dirs_b = FreshDirs("resume_b");
  {
    ModelServer server(envelope, Serving());
    ContinuousDeployer deployer(&server, split.train, Deploying(dirs_b));
    ASSERT_TRUE(deployer.Start().ok());
    for (int64_t p = 0; p < kCrashAt; ++p) {
      auto [u, i] = ArrivalAt(p);
      ASSERT_TRUE(deployer.Ingest(u, i).ok());
      ASSERT_TRUE(deployer.RunCycle().ok());
    }
    // The kill lands mid-append: arrival kCrashAt tears its WAL frame and
    // the writer dies. The record was never logged, so it was never
    // ingested either — the resumed run must re-send it.
    ScopedFaultSchedule faults(
        {{FaultPoint::kWalAppendTorn, {.trigger_at_hit = 1}}});
    auto [u, i] = ArrivalAt(kCrashAt);
    EXPECT_EQ(deployer.Ingest(u, i).code(), StatusCode::kIoError);
  }  // the process is gone

  ModelServer server_b(envelope, Serving());
  ContinuousDeployer resumed(&server_b, split.train, Deploying(dirs_b));
  ASSERT_TRUE(resumed.Start().ok());
  // Recovery: torn tail truncated, checkpoint at position 12 restored, the
  // untrained suffix [12, 15) replayed into the tail, and the recovered
  // model republished through the gate.
  EXPECT_EQ(resumed.wal_position(), kCrashAt);
  EXPECT_EQ(resumed.trained_position(), 12);
  EXPECT_EQ(resumed.trainer().tail_size(), kCrashAt - 12);
  EXPECT_EQ(server_b.version(), 1);
  EXPECT_EQ(resumed.published_version(), 1);
  EXPECT_FALSE(server_b.degraded());
  EXPECT_EQ(CountEvents(resumed.flight_recorder(),
                        FlightEventKind::kWalRecovery),
            1);

  for (int64_t p = kCrashAt; p < kArrivals; ++p) {
    auto [u, i] = ArrivalAt(p);
    ASSERT_TRUE(resumed.Ingest(u, i).ok());
    ASSERT_TRUE(resumed.RunCycle().ok());
  }
  EXPECT_EQ(resumed.trained_position(), kArrivals);
  ExpectSameBits(resumed.trainer().model(), uninterrupted.trainer().model(),
                 "crash-resumed vs uninterrupted");
}

// ---------------------------------------------------------------------------
// Ingest-while-serving (the Tsan drill for deployer/server concurrency)

TEST(DeployerTest, IngestAndPublishRaceServingTraffic) {
  Dataset envelope = Envelope();
  TrainTestSplit split = SplitRandom(envelope, 0.5, 1);
  MetricsRegistry metrics;
  DeployerOptions options = Deploying(FreshDirs("race"), &metrics);
  options.min_increment_records = 4;
  options.trainer.epochs_per_increment = 1;  // keep increments quick
  ModelServer server(envelope, Serving());
  ContinuousDeployer deployer(&server, split.train, options);
  ASSERT_TRUE(deployer.Start().ok());

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (int64_t p = 0; p < 64; ++p) {
      auto [u, i] = ArrivalAt(p);
      CLAPF_CHECK_OK(deployer.Ingest(u, i));
      auto cycled = deployer.RunCycle();
      CLAPF_CHECK_OK(cycled.status());
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  std::atomic<int64_t> answered{0};
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      int64_t q = 0;
      while (!done.load()) {
        auto got = server.Recommend((t * 7 + q++) % kUsers, 5);
        // Degraded (pre-first-publish) answers and real answers are both
        // fine; what must never happen is a crash or a torn snapshot.
        if (got.ok()) answered.fetch_add(1);
      }
    });
  }
  producer.join();
  for (auto& r : readers) r.join();

  auto flushed = deployer.RunCycle(/*force=*/true);
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(deployer.trained_position(), 64);
  EXPECT_GE(server.version(), 1);
  EXPECT_TRUE(server.Recommend(0, 5).ok());
  EXPECT_GT(answered.load(), 0);
}

// ---------------------------------------------------------------------------
// The day-replay acceptance drill

// One simulated day against a real canary floor, with every injected
// failure from the issue: a kill mid-WAL-append, a corrupted segment, a
// divergent increment, and a poisoned candidate. Invariants: no unvetted
// snapshot ever serves (the deployer's published version always equals the
// server's), every regression rolls back automatically, and the day ends
// with a healthy model above the AUC floor.
TEST(DeployerDayDrillTest, SurvivesAFullDayOfInjectedFaults) {
  constexpr double kAucFloor = 0.55;
  Dataset envelope = Envelope();
  TrainTestSplit split = SplitRandom(envelope, 0.5, 1);
  // The day's traffic: the held-out half of the planted-structure history,
  // user-major — learnable, so training genuinely clears the floor.
  std::vector<std::pair<UserId, ItemId>> day;
  for (UserId u = 0; u < split.test.num_users(); ++u) {
    for (ItemId i : split.test.ItemsOf(u)) day.emplace_back(u, i);
  }
  ASSERT_GT(day.size(), 40u);

  Dirs dirs = FreshDirs("day_drill");
  MetricsRegistry metrics;
  DeployerOptions options = Deploying(dirs, &metrics);
  options.min_increment_records = 8;
  options.wal.segment_bytes = 20 + 16 * 8;  // 8 records/segment: many files
  options.flight_dump_path = dirs.wal + "/incident.json";

  // Morning to evening: ingest the day, cycling as records accumulate.
  // Early candidates may be refused by the AUC floor — that is the gate
  // doing its job; the trainer keeps learning until it clears it.
  {
    ModelServer server(envelope, Serving(kAucFloor));
    ContinuousDeployer deployer(&server, split.train, options);
    ASSERT_TRUE(deployer.Start().ok());
    for (const auto& [u, i] : day) {
      ASSERT_TRUE(deployer.Ingest(u, i).ok());
      ASSERT_TRUE(deployer.RunCycle().ok());
      // Nothing unvetted ever serves, at every step of the day.
      ASSERT_EQ(deployer.published_version(), server.version());
    }
    auto flushed = deployer.RunCycle(/*force=*/true);
    ASSERT_TRUE(flushed.ok());
    // By close of day the model clears the floor and serves.
    ASSERT_GT(deployer.published_version(), 0);
    ASSERT_EQ(deployer.published_version(), server.version());
    ASSERT_FALSE(server.degraded());

    // The kill: one more arrival tears its append mid-frame.
    ScopedFaultSchedule faults(
        {{FaultPoint::kWalAppendTorn, {.trigger_at_hit = 1}}});
    EXPECT_EQ(deployer.Ingest(day[0].first, day[0].second).code(),
              StatusCode::kIoError);
  }  // lights out

  // Silent media corruption while the process is down: a payload byte in an
  // early segment flips (the last segment stays clean for the writer).
  {
    const std::string segment0 =
        dirs.wal + "/" + InteractionWal::SegmentFileName(0);
    std::fstream f(segment0,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(20 + 16 + 8);  // second frame's payload
    char byte = 0x7F;
    f.write(&byte, 1);
  }

  // Recovery: reopen over the same WAL + checkpoints. The torn tail is
  // truncated, the corrupt segment is skipped (and reported), and the
  // checkpointed model goes back through the same canary gate — recovery
  // never skips vetting, and the recovered AUC is within the floor.
  ModelServer server(envelope, Serving(kAucFloor));
  ContinuousDeployer deployer(&server, split.train, options);
  ASSERT_TRUE(deployer.Start().ok());
  EXPECT_EQ(server.version(), 1);
  EXPECT_EQ(deployer.published_version(), 1);
  EXPECT_FALSE(server.degraded());
  const std::string recovery =
      EventDetail(deployer.flight_recorder(), FlightEventKind::kWalRecovery);
  EXPECT_NE(recovery.find("corrupt_segments=1"), std::string::npos)
      << recovery;

  // Afternoon incident #1: a divergent increment. Rolled back, consumed,
  // never served.
  {
    ScopedFaultSchedule faults(
        {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 1}}});
    ASSERT_TRUE(deployer.Ingest(day[0].first, day[0].second).ok());
    ASSERT_TRUE(deployer.Ingest(day[1].first, day[1].second).ok());
    auto cycled = deployer.RunCycle(/*force=*/true);
    ASSERT_TRUE(cycled.ok());
    EXPECT_TRUE(*cycled);
  }
  EXPECT_EQ(server.version(), 1);
  EXPECT_EQ(metrics.GetCounter("online.increment_rollbacks_total")->Value(),
            1);

  // Afternoon incident #2: an injected regression at the gate. Refused,
  // trainer rolled back, incident recorded and dumped.
  {
    ScopedFaultSchedule faults(
        {{FaultPoint::kServeCorruptCandidate, {.trigger_at_hit = 1}}});
    ASSERT_TRUE(deployer.Ingest(day[2].first, day[2].second).ok());
    ASSERT_TRUE(deployer.Ingest(day[3].first, day[3].second).ok());
    auto cycled = deployer.RunCycle(/*force=*/true);
    ASSERT_TRUE(cycled.ok());
    EXPECT_TRUE(*cycled);
  }
  EXPECT_EQ(server.version(), 1);
  EXPECT_EQ(deployer.published_version(), 1);
  EXPECT_GE(CountEvents(deployer.flight_recorder(),
                        FlightEventKind::kAucRegressionRollback),
            1);
  EXPECT_TRUE(std::filesystem::exists(options.flight_dump_path));

  // Evening: a clean increment publishes and the day ends healthy.
  for (size_t p = 4; p < 12; ++p) {
    ASSERT_TRUE(deployer.Ingest(day[p].first, day[p].second).ok());
  }
  auto evening = deployer.RunCycle(/*force=*/true);
  ASSERT_TRUE(evening.ok());
  EXPECT_TRUE(*evening);
  EXPECT_EQ(server.version(), 2);
  EXPECT_EQ(deployer.published_version(), 2);
  EXPECT_FALSE(server.degraded());
  EXPECT_TRUE(server.Recommend(0, 5).ok());
}

}  // namespace
}  // namespace clapf
