// Interaction-WAL crash drills. The contract under test is RocksDB-style
// log recovery: positions are assigned by segment headers (stable under any
// corruption), a torn frame at the tail of the last segment is truncated on
// reopen (the mid-append crash), a CRC-corrupt record drops the rest of its
// segment only, and an unreadable segment header loses that segment alone —
// replay always resumes at the next header, reporting every loss in its
// stats instead of failing.
#include "clapf/online/wal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "clapf/obs/metrics.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/status.h"
#include "testing/fault_schedule.h"

namespace clapf {
namespace {

using clapf::testing::ScopedFaultSchedule;

// On-disk layout constants the drills depend on (mirrors wal.cc): a segment
// header is 20 bytes, a record frame is 8 (crc + len) + 8 (payload).
constexpr int64_t kHeaderBytes = 20;
constexpr int64_t kFrameBytes = 16;

// A fresh, empty WAL directory for one test.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "wal_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

WalOptions Options(const std::string& dir,
                   int64_t segment_bytes = 1 << 20) {
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = segment_bytes;
  return options;
}

std::unique_ptr<InteractionWal> OpenOrDie(const WalOptions& options) {
  auto wal = InteractionWal::Open(options);
  CLAPF_CHECK_OK(wal.status());
  return std::move(wal.value());
}

// The deterministic record at position p, so replay assertions can verify
// payloads without bookkeeping.
WalRecord RecordAt(int64_t p) {
  return WalRecord{static_cast<UserId>(p * 2 + 1),
                   static_cast<ItemId>(p * 3 + 2)};
}

void AppendN(InteractionWal* wal, int64_t from, int64_t count) {
  for (int64_t p = from; p < from + count; ++p) {
    ASSERT_TRUE(wal->Append(RecordAt(p)).ok()) << "append at position " << p;
  }
}

struct Replayed {
  WalReplayStats stats;
  std::vector<std::pair<int64_t, WalRecord>> records;
};

Replayed ReplayAll(const InteractionWal& wal, int64_t from = 0) {
  Replayed out;
  auto stats = wal.Replay(from, [&](int64_t position, const WalRecord& r) {
    out.records.emplace_back(position, r);
  });
  CLAPF_CHECK_OK(stats.status());
  out.stats = *stats;
  return out;
}

// Expects the replayed (position, record) list to be exactly `positions`,
// each carrying RecordAt(position)'s payload.
void ExpectPositions(const Replayed& got,
                     const std::vector<int64_t>& positions) {
  ASSERT_EQ(got.records.size(), positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(got.records[i].first, positions[i]) << "at replay index " << i;
    EXPECT_EQ(got.records[i].second.user, RecordAt(positions[i]).user);
    EXPECT_EQ(got.records[i].second.item, RecordAt(positions[i]).item);
  }
}

// Flips one byte at `offset` in `path` — silent media corruption.
void CorruptByteAt(const std::string& path, int64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(offset);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xFF);
  f.seekp(offset);
  f.write(&byte, 1);
}

std::string SegmentPath(const std::string& dir, int64_t seq) {
  return dir + "/" + InteractionWal::SegmentFileName(seq);
}

// ---------------------------------------------------------------------------
// Append / replay basics

TEST(WalTest, AppendsAssignPositionsAndReplayRoundTrips) {
  auto wal = OpenOrDie(Options(FreshDir("roundtrip")));
  EXPECT_EQ(wal->next_index(), 0);
  AppendN(wal.get(), 0, 10);
  EXPECT_EQ(wal->next_index(), 10);

  Replayed got = ReplayAll(*wal);
  ExpectPositions(got, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(got.stats.segments_scanned, 1);
  EXPECT_EQ(got.stats.records_delivered, 10);
  EXPECT_EQ(got.stats.torn_tail_bytes, 0);
  EXPECT_EQ(got.stats.corrupt_segments, 0);
  EXPECT_EQ(got.stats.dropped_records, 0);
}

TEST(WalTest, RejectsBadOptions) {
  EXPECT_EQ(InteractionWal::Open(Options("")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(InteractionWal::Open(Options(FreshDir("tiny"), kHeaderBytes))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(WalTest, ReplayFromIndexSkipsTheTrainedPrefix) {
  auto wal = OpenOrDie(Options(FreshDir("from_index")));
  AppendN(wal.get(), 0, 10);
  Replayed got = ReplayAll(*wal, /*from=*/7);
  ExpectPositions(got, {7, 8, 9});
  EXPECT_EQ(got.stats.records_delivered, 3);
}

TEST(WalTest, RotatesSegmentsAndReplaysAcrossThem) {
  const std::string dir = FreshDir("rotate");
  // Two records fill a segment exactly; the third append rotates.
  auto wal = OpenOrDie(Options(dir, kHeaderBytes + 2 * kFrameBytes));
  AppendN(wal.get(), 0, 7);

  EXPECT_EQ(InteractionWal::SegmentFileName(0), "wal-000000000000.log");
  for (int64_t seq = 0; seq <= 3; ++seq) {
    EXPECT_TRUE(std::filesystem::exists(SegmentPath(dir, seq)))
        << "segment " << seq;
  }
  Replayed got = ReplayAll(*wal);
  ExpectPositions(got, {0, 1, 2, 3, 4, 5, 6});
  EXPECT_EQ(got.stats.segments_scanned, 4);
}

TEST(WalTest, ReopenContinuesWhereTheLastRunStopped) {
  const std::string dir = FreshDir("reopen");
  {
    auto wal = OpenOrDie(Options(dir));
    AppendN(wal.get(), 0, 5);
  }
  auto wal = OpenOrDie(Options(dir));
  EXPECT_EQ(wal->next_index(), 5);
  AppendN(wal.get(), 5, 3);
  ExpectPositions(ReplayAll(*wal), {0, 1, 2, 3, 4, 5, 6, 7});
}

TEST(WalTest, MetricsCountAppendsFsyncsAndRotations) {
  MetricsRegistry metrics;
  WalOptions options = Options(FreshDir("metrics"),
                               kHeaderBytes + 2 * kFrameBytes);
  options.fsync_every = 2;
  options.metrics = &metrics;
  auto wal = OpenOrDie(options);
  AppendN(wal.get(), 0, 4);  // one rotation (its fsync) + two policy fsyncs
  EXPECT_EQ(metrics.GetCounter("online.wal.appends_total")->Value(), 4);
  EXPECT_EQ(metrics.GetCounter("online.wal.rotations_total")->Value(), 1);
  EXPECT_GE(metrics.GetCounter("online.wal.fsyncs_total")->Value(), 2);
}

// ---------------------------------------------------------------------------
// The mid-append crash (torn tail)

TEST(WalTest, TornAppendPoisonsTheWriterUntilReopen) {
  const std::string dir = FreshDir("torn");
  auto wal = OpenOrDie(Options(dir));
  AppendN(wal.get(), 0, 4);

  ScopedFaultSchedule faults(
      {{FaultPoint::kWalAppendTorn, {.trigger_at_hit = 1}}});
  EXPECT_EQ(wal->Append(RecordAt(4)).code(), StatusCode::kIoError);
  // The "process" is dead: every further write is refused, like the crashed
  // writer it simulates.
  EXPECT_EQ(wal->Append(RecordAt(4)).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal->Sync().code(), StatusCode::kFailedPrecondition);
  // The torn record never got a position.
  EXPECT_EQ(wal->next_index(), 4);

  // Replay before recovery sees the intact prefix and reports the torn
  // half-frame; it is never an error.
  Replayed before = ReplayAll(*wal);
  ExpectPositions(before, {0, 1, 2, 3});
  EXPECT_EQ(before.stats.torn_tail_bytes, kFrameBytes / 2);

  // Reopen = crash recovery: the torn bytes are truncated and the append
  // position continues exactly where durability ended.
  wal.reset();
  auto reopened = OpenOrDie(Options(dir));
  EXPECT_EQ(reopened->next_index(), 4);
  AppendN(reopened.get(), 4, 1);
  Replayed after = ReplayAll(*reopened);
  ExpectPositions(after, {0, 1, 2, 3, 4});
  EXPECT_EQ(after.stats.torn_tail_bytes, 0);
}

TEST(WalTest, GenuinelyTruncatedTailIsCutBackToAFrameBoundary) {
  const std::string dir = FreshDir("truncate");
  {
    auto wal = OpenOrDie(Options(dir));
    AppendN(wal.get(), 0, 3);
  }
  // Cut the last frame in half on disk (the crash happened mid-write).
  std::filesystem::resize_file(SegmentPath(dir, 0),
                               kHeaderBytes + 2 * kFrameBytes + 5);
  auto wal = OpenOrDie(Options(dir));
  EXPECT_EQ(wal->next_index(), 2);
  AppendN(wal.get(), 2, 2);
  ExpectPositions(ReplayAll(*wal), {0, 1, 2, 3});
}

// ---------------------------------------------------------------------------
// CRC corruption

TEST(WalTest, CorruptRecordDropsTheRestOfItsSegmentOnly) {
  const std::string dir = FreshDir("corrupt_record");
  auto wal = OpenOrDie(Options(dir, kHeaderBytes + 2 * kFrameBytes));
  AppendN(wal.get(), 0, 6);  // segments: {0,1} {2,3} {4,5}

  // Flip a payload byte of position 1 (second frame of segment 0). The rest
  // of that segment is lost, but positions come from the headers, so replay
  // resumes at position 2 with the gap accounted, not renumbered.
  CorruptByteAt(SegmentPath(dir, 0),
                kHeaderBytes + kFrameBytes + /*frame header*/ 8);
  Replayed got = ReplayAll(*wal);
  ExpectPositions(got, {0, 2, 3, 4, 5});
  EXPECT_EQ(got.stats.corrupt_segments, 1);
  EXPECT_EQ(got.stats.dropped_records, 1);
  EXPECT_EQ(got.stats.segments_scanned, 3);
}

TEST(WalTest, CorruptSegmentHeaderLosesThatSegmentAlone) {
  const std::string dir = FreshDir("corrupt_header");
  auto wal = OpenOrDie(Options(dir, kHeaderBytes + 2 * kFrameBytes));
  AppendN(wal.get(), 0, 6);

  CorruptByteAt(SegmentPath(dir, 1), 0);  // smash the magic of segment 1
  Replayed got = ReplayAll(*wal);
  ExpectPositions(got, {0, 1, 4, 5});
  EXPECT_EQ(got.stats.corrupt_segments, 1);
  EXPECT_EQ(got.stats.dropped_records, 2);
}

TEST(WalTest, OpenRefusesACorruptLastSegmentHeader) {
  const std::string dir = FreshDir("corrupt_last_header");
  {
    auto wal = OpenOrDie(Options(dir));
    AppendN(wal.get(), 0, 2);
  }
  CorruptByteAt(SegmentPath(dir, 0), 0);
  EXPECT_EQ(InteractionWal::Open(Options(dir)).status().code(),
            StatusCode::kCorruption);
}

TEST(WalTest, InjectedReadTimeCorruptionDropsTheSegmentTail) {
  auto wal = OpenOrDie(Options(FreshDir("replay_fault")));
  AppendN(wal.get(), 0, 6);

  ScopedFaultSchedule faults(
      {{FaultPoint::kWalReplayCorrupt, {.trigger_at_hit = 3}}});
  Replayed got = ReplayAll(*wal);
  ExpectPositions(got, {0, 1});
  EXPECT_EQ(got.stats.corrupt_segments, 1);
  faults.Disarm(FaultPoint::kWalReplayCorrupt);

  // The bits on disk were never damaged: a clean replay sees everything.
  ExpectPositions(ReplayAll(*wal), {0, 1, 2, 3, 4, 5});
}

// ---------------------------------------------------------------------------
// Fsync / rotation failures

TEST(WalTest, FsyncFailureSurfacesButTheRecordKeepsItsPosition) {
  auto wal = OpenOrDie(Options(FreshDir("fsync_fail")));
  ScopedFaultSchedule faults(
      {{FaultPoint::kWalFsyncFail, {.trigger_at_hit = 1}}});
  // The write landed, the durability fsync did not: the caller is told
  // (persistence is uncertain) but the writer is not poisoned.
  EXPECT_EQ(wal->Append(RecordAt(0)).code(), StatusCode::kIoError);
  EXPECT_EQ(wal->next_index(), 1);
  AppendN(wal.get(), 1, 2);
  ExpectPositions(ReplayAll(*wal), {0, 1, 2});
}

TEST(WalTest, FailedRotationDegradesToAnOversizedSegment) {
  const std::string dir = FreshDir("rotate_fail");
  auto wal = OpenOrDie(Options(dir, kHeaderBytes + 2 * kFrameBytes));
  AppendN(wal.get(), 0, 2);  // fills segment 0 exactly

  ScopedFaultSchedule faults(
      {{FaultPoint::kWalRotateFail, {.trigger_at_hit = 1}}});
  // Rotation is due and fails before anything is written: no data loss, no
  // position consumed.
  EXPECT_EQ(wal->Append(RecordAt(2)).code(), StatusCode::kIoError);
  EXPECT_EQ(wal->next_index(), 2);
  EXPECT_FALSE(std::filesystem::exists(SegmentPath(dir, 1)));

  // The next append retries the rotation and succeeds.
  AppendN(wal.get(), 2, 1);
  EXPECT_TRUE(std::filesystem::exists(SegmentPath(dir, 1)));
  ExpectPositions(ReplayAll(*wal), {0, 1, 2});
}

// ---------------------------------------------------------------------------
// Concurrency: replay observes a clean prefix while appends run (the Tsan
// drill for the WAL's locking).

TEST(WalTest, ReplayRunsConcurrentlyWithAppendsAndSeesAPrefix) {
  auto wal = OpenOrDie(Options(FreshDir("concurrent"),
                               kHeaderBytes + 8 * kFrameBytes));
  constexpr int64_t kRecords = 200;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    AppendN(wal.get(), 0, kRecords);
    done.store(true);
  });
  while (!done.load()) {
    Replayed got = ReplayAll(*wal);
    // Every observed record is a clean prefix entry: position == index. (A
    // mid-rotation read may transiently skip a header-less new segment; it
    // holds no delivered records yet, so the prefix property still holds.)
    for (size_t i = 0; i < got.records.size(); ++i) {
      ASSERT_EQ(got.records[i].first, static_cast<int64_t>(i));
    }
  }
  writer.join();
  ASSERT_EQ(wal->next_index(), kRecords);
  Replayed settled = ReplayAll(*wal);
  ASSERT_EQ(settled.stats.records_delivered, kRecords);
  ASSERT_EQ(settled.stats.corrupt_segments, 0);
}

}  // namespace
}  // namespace clapf
