// Adaptive-governor and flight-recorder drills: the control loop must move
// every knob only inside its declared bounds, recover once pressure clears,
// and leave a deterministic incident narrative in the flight recorder. The
// acceptance drill at the bottom is the ISSUE's bar: under fault-injected
// overload, an adaptive policy keeps the deadline-miss rate below the static
// `performance` baseline by shedding early instead of serving doomed
// queries.
//
// This suite is also the Tsan acceptance gate for the governor ticker thread
// and the lock-free flight-recorder ring (see the *RaceFree drills).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "clapf/obs/metrics.h"
#include "clapf/serving/flight_recorder.h"
#include "clapf/serving/governor.h"
#include "clapf/serving/model_server.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"
#include "testing/fault_schedule.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

using clapf::testing::ScopedFaultSchedule;

constexpr int32_t kUsers = 30;
constexpr int32_t kItems = 40;

Dataset History() {
  return testing::MakeLearnableDataset(kUsers, kItems, 8, 7);
}

// Structurally valid, untrained model — clears the default canary gate.
FactorModel RandomModel(uint64_t seed) {
  FactorModel model(kUsers, kItems, 8);
  Rng rng(seed);
  model.InitGaussian(rng);
  return model;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// --- Flight recorder ------------------------------------------------------

TEST(FlightRecorderTest, RetainsNewestEventsAndCountsDrops) {
  FlightRecorder recorder(8);
  ASSERT_EQ(recorder.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    recorder.Record(FlightEventKind::kShed, "event " + std::to_string(i), i);
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.dropped(), 12u);

  auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);  // oldest retained first
    EXPECT_EQ(events[i].a, static_cast<int64_t>(12 + i));
    EXPECT_EQ(std::string(events[i].detail),
              "event " + std::to_string(12 + i));
  }
}

TEST(FlightRecorderTest, DumpWithoutTimestampsIsDeterministic) {
  FlightRecorder recorder(8);
  recorder.Record(FlightEventKind::kBreakerTrip, "breaker fired", 3, 0, 0.75);
  recorder.Record(FlightEventKind::kRollback, "rolled back", 3, 2);
  recorder.Record(FlightEventKind::kGovernorAdjust, "queue_depth pressure",
                  64, 2);

  FlightDumpOptions stable;
  stable.include_timestamps = false;
  const std::string first = recorder.DumpJson(stable);
  const std::string second = recorder.DumpJson(stable);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"kind\":\"breaker-trip\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"rollback\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"governor-adjust\""), std::string::npos);
  EXPECT_NE(first.find("\"x\":0.75"), std::string::npos);
  EXPECT_NE(first.find("\"elapsed_us\":0"), std::string::npos);
}

TEST(FlightRecorderTest, OversizedDetailIsTruncatedNotOverflowed) {
  FlightRecorder recorder(8);
  recorder.Record(FlightEventKind::kCanaryReject,
                  std::string(500, 'x'));
  auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].detail),
            std::string(kFlightEventDetailBytes - 1, 'x'));
}

TEST(FlightRecorderTest, ConcurrentWritersAndReadersSeeNoTornEvents) {
  // Writers stamp every word of the payload with the same value; a torn
  // read (mixed slots or a half-written event) would break the invariant.
  FlightRecorder recorder(32);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const FlightEvent& e : recorder.Snapshot()) {
          if (e.a != e.b || e.x != static_cast<double>(e.a)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int64_t v = static_cast<int64_t>(w) * kPerWriter + i;
        recorder.Record(FlightEventKind::kShed, "concurrent", v, v,
                        static_cast<double>(v));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  // A quiescent ring yields exactly capacity() consistent events.
  EXPECT_EQ(recorder.Snapshot().size(), recorder.capacity());
}

// --- Governor policy plumbing --------------------------------------------

TEST(GovernorPolicyTest, ParseRoundTripsAndRejectsUnknown) {
  for (GovernorPolicy p : {GovernorPolicy::kPerformance,
                           GovernorPolicy::kOndemand,
                           GovernorPolicy::kSchedutil}) {
    auto parsed = ParseGovernorPolicy(GovernorPolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(ParseGovernorPolicy("turbo").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GovernorHistogramTest, QuantileUpperBoundFromDelta) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h", LatencyBucketsUs());
  for (int i = 0; i < 100; ++i) h->Record(90.0);  // bucket bound 100
  HistogramSnapshot before = h->Snapshot();
  for (int i = 0; i < 100; ++i) h->Record(40000.0);  // bucket bound 5e4
  HistogramSnapshot after = h->Snapshot();

  // Cumulative p99 straddles both bursts, the delta sees only the second.
  EXPECT_DOUBLE_EQ(HistogramQuantileUpperBound(after, 0.5), 100.0);
  HistogramSnapshot delta = HistogramDelta(before, after);
  EXPECT_EQ(delta.count, 100);
  EXPECT_DOUBLE_EQ(HistogramQuantileUpperBound(delta, 0.99), 5e4);
  EXPECT_DOUBLE_EQ(HistogramQuantileUpperBound(HistogramDelta(after, after),
                                               0.99),
                   -1.0);
}

TEST(ServingGovernorTest, OndemandClampsToDeclaredBoundsAndPropagates) {
  MetricsRegistry registry;
  AdmissionQueue queue(1, 16, &registry);
  FlightRecorder recorder(32);
  GovernorOptions options;
  options.policy = GovernorPolicy::kOndemand;
  options.interval_us = 0;  // manual ticks only
  options.bounds.min_queue_depth = 2;
  options.bounds.min_deadline_budget_us = 2000;
  ServingGovernor governor(options, 16, &registry, &queue, &recorder);

  EXPECT_EQ(governor.knobs().max_queue_depth, 16);
  EXPECT_EQ(governor.knobs().deadline_budget_us, 0);
  EXPECT_FALSE(governor.knobs().force_packed);

  // One shed since the last tick is pressure by itself.
  registry.GetCounter("serving.shed_total")->Inc();
  governor.Tick();

  GovernorKnobs knobs = governor.knobs();
  EXPECT_EQ(knobs.max_queue_depth, 2);
  EXPECT_EQ(knobs.deadline_budget_us, 2000);
  EXPECT_TRUE(knobs.force_packed);
  EXPECT_EQ(queue.max_depth(), 2);  // propagated to the admission gate
  EXPECT_GE(governor.adjustments(), 3);

  // ApplyToQuery: an unbounded query inherits the budget, a tighter client
  // deadline is kept, and the packed override sticks.
  QueryOptions unbounded;
  governor.ApplyToQuery(&unbounded);
  EXPECT_EQ(unbounded.deadline, std::chrono::microseconds(2000));
  EXPECT_TRUE(unbounded.use_packed);
  QueryOptions tight;
  tight.deadline = std::chrono::microseconds(500);
  governor.ApplyToQuery(&tight);
  EXPECT_EQ(tight.deadline, std::chrono::microseconds(500));

  // Every knob movement landed in the flight recorder.
  int adjust_events = 0;
  for (const FlightEvent& e : recorder.Snapshot()) {
    if (e.kind == FlightEventKind::kGovernorAdjust) ++adjust_events;
  }
  EXPECT_EQ(adjust_events, governor.adjustments());
}

TEST(ServingGovernorTest, OndemandDecaysBackToRestAfterCalm) {
  MetricsRegistry registry;
  AdmissionQueue queue(1, 16, &registry);
  FlightRecorder recorder(64);
  GovernorOptions options;
  options.policy = GovernorPolicy::kOndemand;
  options.interval_us = 0;
  options.decay_ticks = 1;  // one calm tick per relaxation step
  options.bounds.min_queue_depth = 2;
  options.bounds.min_deadline_budget_us = 2000;
  ServingGovernor governor(options, 16, &registry, &queue, &recorder);

  registry.GetCounter("serving.shed_total")->Inc();
  governor.Tick();
  ASSERT_EQ(governor.knobs().max_queue_depth, 2);

  // Calm ticks relax one step each: depth doubles to rest, then the budget
  // doubles out the top, then the packed override drops. Bounds must hold
  // at every intermediate step.
  for (int i = 0; i < 20; ++i) {
    governor.Tick();
    GovernorKnobs knobs = governor.knobs();
    EXPECT_GE(knobs.max_queue_depth, governor.bounds().min_queue_depth);
    EXPECT_LE(knobs.max_queue_depth, governor.bounds().max_queue_depth);
    if (knobs.deadline_budget_us != 0) {
      EXPECT_GE(knobs.deadline_budget_us,
                governor.bounds().min_deadline_budget_us);
    }
  }
  GovernorKnobs rest = governor.knobs();
  EXPECT_EQ(rest.max_queue_depth, 16);
  EXPECT_EQ(rest.deadline_budget_us, 0);
  EXPECT_FALSE(rest.force_packed);
  EXPECT_EQ(queue.max_depth(), 16);
}

TEST(ServingGovernorTest, SchedutilTracksLatencyTarget) {
  MetricsRegistry registry;
  AdmissionQueue queue(1, 64, &registry);
  FlightRecorder recorder(64);
  GovernorOptions options;
  options.policy = GovernorPolicy::kSchedutil;
  options.interval_us = 0;
  options.latency_target_ms = 5.0;  // 5000 us
  options.bounds.min_queue_depth = 2;
  ServingGovernor governor(options, 64, &registry, &queue, &recorder);

  Histogram* latency =
      registry.GetHistogram("serving.query.latency_us", LatencyBucketsUs());

  // Far over target: p99 lands in the 5e4 bucket, err = 9 — shrink the
  // admission bound, cap budgets at 2x target, force the packed path.
  for (int i = 0; i < 100; ++i) latency->Record(40000.0);
  governor.Tick();
  GovernorKnobs over = governor.knobs();
  EXPECT_LT(over.max_queue_depth, 64);
  EXPECT_GE(over.max_queue_depth, 2);
  EXPECT_EQ(over.deadline_budget_us, 10000);
  EXPECT_TRUE(over.force_packed);

  // Far under target: err = -0.98 — grow back and release the degradations.
  const int64_t shrunk = over.max_queue_depth;
  for (int i = 0; i < 200; ++i) latency->Record(90.0);
  governor.Tick();
  GovernorKnobs under = governor.knobs();
  EXPECT_GT(under.max_queue_depth, shrunk);
  EXPECT_EQ(under.deadline_budget_us, 0);
  EXPECT_FALSE(under.force_packed);
}

// --- ModelServer integration ---------------------------------------------

ServerOptions GovernorDrillOptions(GovernorPolicy policy) {
  ServerOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 64;
  options.governor.policy = policy;
  options.governor.interval_us = 0;  // drills tick manually
  options.governor.decay_ticks = 1;
  options.governor.bounds.min_queue_depth = 2;
  options.governor.bounds.min_deadline_budget_us = 2000;
  return options;
}

TEST(ModelServerGovernorTest, PerformancePolicyNeverMovesKnobs) {
  ModelServer server(History(), GovernorDrillOptions(
                                    GovernorPolicy::kPerformance));
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  // Even under recorded pressure, the static policy holds every knob at
  // rest — it is byte-for-byte the pre-governor configuration.
  server.mutable_metrics()->GetCounter("serving.shed_total")->Inc();
  for (int i = 0; i < 5; ++i) {
    server.TickGovernor();
    auto got = server.Recommend(i % kUsers, 5);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
  }
  GovernorKnobs knobs = server.governor().knobs();
  EXPECT_EQ(knobs.max_queue_depth, 64);
  EXPECT_EQ(knobs.deadline_budget_us, 0);
  EXPECT_FALSE(knobs.force_packed);
  EXPECT_EQ(server.governor().adjustments(), 0);
  EXPECT_EQ(server.governor().ticks(), 5);
}

TEST(ModelServerGovernorTest, KnobGaugesAreExported) {
  ModelServer server(History(),
                     GovernorDrillOptions(GovernorPolicy::kOndemand));
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  server.mutable_metrics()->GetCounter("serving.shed_total")->Inc();
  server.TickGovernor();

  double depth_gauge = -1.0, packed_gauge = -1.0;
  for (const MetricSnapshot& m : server.metrics().Snapshot()) {
    if (m.name == "serving.governor.queue_depth") depth_gauge = m.gauge;
    if (m.name == "serving.governor.force_packed") packed_gauge = m.gauge;
  }
  EXPECT_EQ(depth_gauge, 2.0);
  EXPECT_EQ(packed_gauge, 1.0);
}

// The ISSUE's acceptance drill: under fault-injected overload with a tight
// client deadline, the static performance baseline serves every query into
// its doom (miss rate 1.0), while ondemand sheds at admission once pressure
// is visible — sheds are Unavailable, not deadline misses, so its miss rate
// must land strictly below the baseline. Knobs must stay inside bounds.
TEST(ModelServerGovernorTest, OndemandKeepsMissRateBelowStaticBaseline) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 25;

  auto drill = [](GovernorPolicy policy, bool tick) {
    ModelServer server(History(), GovernorDrillOptions(policy));
    CLAPF_CHECK_OK(server.PublishModel(RandomModel(1)));
    // Every scoring block stalls 2ms; a 500us budget cannot survive one.
    ScopedFaultSchedule faults({{FaultPoint::kServeSlowBlock,
                                 {.trigger_at_hit = 1, .max_fires = -1}}});
    QueryOptions options;
    options.deadline = std::chrono::microseconds(500);

    // Prime the control loop: two doomed queries, then one tick. For the
    // adaptive policy the 100% miss rate is pressure and the admission
    // bound clamps to 2 before the burst.
    for (int i = 0; i < 2; ++i) {
      (void)server.Recommend(i, 5, options);
    }
    if (tick) server.TickGovernor();

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i) {
          (void)server.Recommend((c * kPerClient + i) % kUsers, 5, options);
        }
      });
    }
    for (auto& t : clients) t.join();
    if (tick) server.TickGovernor();

    const GovernorKnobs knobs = server.governor().knobs();
    const auto& bounds = server.governor().bounds();
    EXPECT_GE(knobs.max_queue_depth, bounds.min_queue_depth);
    EXPECT_LE(knobs.max_queue_depth, bounds.max_queue_depth);
    return server.stats();
  };

  ServingStatsSnapshot baseline = drill(GovernorPolicy::kPerformance, true);
  ServingStatsSnapshot adaptive = drill(GovernorPolicy::kOndemand, true);

  // Static baseline: nothing sheds (depth 64 >> 4 clients), every served
  // query misses its deadline.
  EXPECT_EQ(baseline.shed, 0);
  EXPECT_EQ(baseline.deadline_exceeded, baseline.queries);

  // Adaptive: the clamped admission bound converts doomed queries into
  // typed sheds, so the miss rate drops strictly below the baseline's 1.0.
  EXPECT_GT(adaptive.shed, 0);
  const double baseline_miss_rate =
      static_cast<double>(baseline.deadline_exceeded) /
      static_cast<double>(baseline.queries);
  const double adaptive_miss_rate =
      static_cast<double>(adaptive.deadline_exceeded) /
      static_cast<double>(adaptive.queries);
  EXPECT_EQ(baseline_miss_rate, 1.0);
  EXPECT_LT(adaptive_miss_rate, baseline_miss_rate);
}

// --- Breaker trips, dumps, and half-open recovery -------------------------

ServerOptions BreakerDrillOptions() {
  ServerOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 8;
  options.breaker.min_samples = 4;
  options.breaker.window = 8;
  options.breaker.error_threshold = 0.5;
  options.breaker.cooldown_queries = 4;
  options.breaker.probe_window = 4;
  return options;
}

// Runs `n` queries that the armed kServeScoreNan fault turns into Internal
// errors (breaker food).
void RunPoisonedQueries(ModelServer* server, int n) {
  for (int i = 0; i < n; ++i) {
    auto got = server->Recommend(i % kUsers, 5);
    EXPECT_EQ(got.status().code(), StatusCode::kInternal)
        << got.status().ToString();
  }
}

void RunHealthyQueries(ModelServer* server, int n) {
  for (int i = 0; i < n; ++i) {
    auto got = server->Recommend(i % kUsers, 5);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
  }
}

TEST(ModelServerGovernorTest, BreakerTripAutoDumpsFlightRecorder) {
  const std::string dump_path =
      ::testing::TempDir() + "governor_trip_dump.json";
  std::remove(dump_path.c_str());

  ServerOptions options = BreakerDrillOptions();
  options.flight_dump_path = dump_path;
  ModelServer server(History(), options);
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  ASSERT_TRUE(server.PublishModel(RandomModel(2)).ok());

  {
    ScopedFaultSchedule faults({{FaultPoint::kServeScoreNan,
                                 {.trigger_at_hit = 1, .max_fires = -1}}});
    RunPoisonedQueries(&server, 4);
  }
  EXPECT_EQ(server.stats().breaker_trips, 1);
  EXPECT_EQ(server.version(), 1);  // rolled back

  // The incident black box was written by the trip itself, and it tells the
  // whole story in order: errors, the trip, and the rollback.
  const std::string dump = ReadFile(dump_path);
  ASSERT_FALSE(dump.empty());
  EXPECT_EQ(CountOccurrences(dump, "\"kind\":\"internal-error\""), 4);
  EXPECT_EQ(CountOccurrences(dump, "\"kind\":\"breaker-trip\""), 1);
  EXPECT_EQ(CountOccurrences(dump, "\"kind\":\"rollback\""), 1);
  EXPECT_LT(dump.find("\"kind\":\"breaker-trip\""),
            dump.find("\"kind\":\"rollback\""));

  // Replayable: two timestamp-free dumps of the same recorder state are
  // byte-identical.
  const std::string stable_a = ::testing::TempDir() + "governor_dump_a.json";
  const std::string stable_b = ::testing::TempDir() + "governor_dump_b.json";
  FlightDumpOptions stable;
  stable.include_timestamps = false;
  ASSERT_TRUE(server.DumpFlightRecorder(stable_a, stable).ok());
  ASSERT_TRUE(server.DumpFlightRecorder(stable_b, stable).ok());
  EXPECT_EQ(ReadFile(stable_a), ReadFile(stable_b));
  EXPECT_NE(ReadFile(stable_a), dump);  // timestamps were zeroed
}

TEST(ModelServerGovernorTest, HalfOpenProbeReinstatesRecoveredSnapshot) {
  ModelServer server(History(), BreakerDrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  ASSERT_TRUE(server.PublishModel(RandomModel(2)).ok());
  ASSERT_EQ(server.version(), 2);

  {
    // Four poisoned queries trip the breaker; the fault then disarms, so
    // the "bad" snapshot is healthy again by probe time (a transient
    // incident, the case half-open recovery exists for).
    ScopedFaultSchedule faults({{FaultPoint::kServeScoreNan,
                                 {.trigger_at_hit = 1, .max_fires = -1}}});
    RunPoisonedQueries(&server, 4);
  }
  EXPECT_EQ(server.stats().breaker_trips, 1);
  EXPECT_EQ(server.version(), 1);

  // Cooldown: four fallback-served queries, the last of which opens the
  // probe and re-admits v2.
  RunHealthyQueries(&server, 4);
  EXPECT_EQ(server.stats().probes, 1);
  EXPECT_EQ(server.version(), 2);

  // Probe window: four clean queries reinstate the snapshot for good.
  RunHealthyQueries(&server, 4);
  EXPECT_EQ(server.stats().probe_recoveries, 1);
  EXPECT_EQ(server.stats().probe_failures, 0);
  EXPECT_EQ(server.version(), 2);

  // Recovery also restored the rollback chain: a fresh trip rolls back to
  // v1 again instead of degrading dark.
  {
    ScopedFaultSchedule faults({{FaultPoint::kServeScoreNan,
                                 {.trigger_at_hit = 1, .max_fires = -1}}});
    RunPoisonedQueries(&server, 4);
  }
  EXPECT_EQ(server.stats().breaker_trips, 2);
  EXPECT_EQ(server.version(), 1);
  EXPECT_FALSE(server.degraded());
}

TEST(ModelServerGovernorTest, HalfOpenProbeFailureRevertsToFallback) {
  ModelServer server(History(), BreakerDrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  ASSERT_TRUE(server.PublishModel(RandomModel(2)).ok());

  ScopedFaultSchedule faults({{FaultPoint::kServeScoreNan,
                               {.trigger_at_hit = 1, .max_fires = -1}}});
  RunPoisonedQueries(&server, 4);  // trip, roll back to v1
  EXPECT_EQ(server.version(), 1);
  faults.Disarm(FaultPoint::kServeScoreNan);

  RunHealthyQueries(&server, 4);  // cooldown; probe opens on v2
  EXPECT_EQ(server.stats().probes, 1);
  EXPECT_EQ(server.version(), 2);

  // Still poisoned at probe time: the probe window fails and the server
  // reverts to the rollback target without counting a second trip.
  faults.Arm(FaultPoint::kServeScoreNan,
             {.trigger_at_hit = 1, .max_fires = -1});
  RunPoisonedQueries(&server, 4);
  EXPECT_EQ(server.stats().probe_failures, 1);
  EXPECT_EQ(server.stats().probe_recoveries, 0);
  EXPECT_EQ(server.stats().breaker_trips, 1);
  EXPECT_EQ(server.version(), 1);
  faults.Disarm(FaultPoint::kServeScoreNan);

  // The discarded snapshot is gone for good: healthy traffic does not
  // reopen a probe.
  RunHealthyQueries(&server, 12);
  EXPECT_EQ(server.stats().probes, 1);
  EXPECT_EQ(server.version(), 1);

  // The narrative is in the recorder: probe-start then probe-failed.
  FlightDumpOptions stable;
  stable.include_timestamps = false;
  const std::string dump = server.flight_recorder().DumpJson(stable);
  EXPECT_EQ(CountOccurrences(dump, "\"kind\":\"probe-start\""), 1);
  EXPECT_EQ(CountOccurrences(dump, "\"kind\":\"probe-failed\""), 1);
  EXPECT_EQ(CountOccurrences(dump, "\"kind\":\"probe-recovered\""), 0);
}

TEST(ModelServerGovernorTest, PublishCancelsPendingProbe) {
  ModelServer server(History(), BreakerDrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  ASSERT_TRUE(server.PublishModel(RandomModel(2)).ok());
  {
    ScopedFaultSchedule faults({{FaultPoint::kServeScoreNan,
                                 {.trigger_at_hit = 1, .max_fires = -1}}});
    RunPoisonedQueries(&server, 4);
  }
  EXPECT_EQ(server.version(), 1);

  // The operator ships a fix mid-cooldown: the stashed v2 is superseded and
  // no probe ever opens for it.
  ASSERT_TRUE(server.PublishModel(RandomModel(3)).ok());
  EXPECT_EQ(server.version(), 3);
  RunHealthyQueries(&server, 16);
  EXPECT_EQ(server.stats().probes, 0);
  EXPECT_EQ(server.version(), 3);
}

// --- Concurrency (the Tsan gate for the governor ticker) ------------------

TEST(ModelServerGovernorTest, TickerThreadRacesQueriesPublishesAndReaders) {
  ServerOptions options = GovernorDrillOptions(GovernorPolicy::kOndemand);
  options.governor.interval_us = 200;  // aggressive ticker
  options.slow_query_us = 1;           // exercise the slow-query hook too
  ModelServer server(History(), options);
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());

  // Stalled workers keep the queue visibly deep so the ticker has real
  // pressure to react to while clients, a publisher, and metric readers all
  // run concurrently.
  ScopedFaultSchedule faults({{FaultPoint::kServeQueueStall,
                               {.trigger_at_hit = 1, .max_fires = -1}}});

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int i = 0; i < 3; ++i) {
      (void)server.PublishModel(RandomModel(10 + i));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)server.governor().knobs();
      (void)server.flight_recorder().Snapshot();
      (void)server.metrics().Snapshot();
      (void)server.stats();
    }
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      QueryOptions q;
      q.deadline = std::chrono::milliseconds(50);
      for (int i = 0; i < 50; ++i) {
        (void)server.Recommend((c + i) % kUsers, 5, q);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  reader.join();

  auto stats = server.stats();
  EXPECT_EQ(stats.queries, 200);
  // The ticker ran and every knob respected its bounds.
  EXPECT_GT(server.governor().ticks(), 0);
  const GovernorKnobs knobs = server.governor().knobs();
  const auto& bounds = server.governor().bounds();
  EXPECT_GE(knobs.max_queue_depth, bounds.min_queue_depth);
  EXPECT_LE(knobs.max_queue_depth, bounds.max_queue_depth);
}

}  // namespace
}  // namespace clapf
