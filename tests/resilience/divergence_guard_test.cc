#include "clapf/core/divergence_guard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "clapf/baselines/bpr.h"
#include "clapf/baselines/climf.h"
#include "clapf/baselines/mpr.h"
#include "clapf/baselines/wmf.h"
#include "clapf/util/random.h"
#include "testing/fault_schedule.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

using clapf::testing::ScopedFaultSchedule;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

FactorModel SmallModel() {
  FactorModel model(3, 4, 2, /*use_item_bias=*/true);
  Rng rng(7);
  model.InitGaussian(rng, 0.1);
  return model;
}

TEST(DivergenceGuardTest, OffPolicyIgnoresEverything) {
  FactorModel model = SmallModel();
  DivergenceOptions opts;  // policy defaults to kOff
  DivergenceGuard guard(opts, &model);
  EXPECT_EQ(guard.Observe(1, kNaN), DivergenceGuard::Action::kProceed);
  EXPECT_EQ(guard.Observe(2, 1e18), DivergenceGuard::Action::kProceed);
}

TEST(DivergenceGuardTest, HaltOnNaNMargin) {
  FactorModel model = SmallModel();
  DivergenceOptions opts;
  opts.policy = DivergencePolicy::kHalt;
  DivergenceGuard guard(opts, &model);
  EXPECT_EQ(guard.Observe(1, 0.5), DivergenceGuard::Action::kProceed);
  EXPECT_EQ(guard.Observe(2, kNaN), DivergenceGuard::Action::kHalt);
  EXPECT_EQ(guard.status().code(), StatusCode::kInternal);
  EXPECT_NE(guard.status().message().find("iteration 2"), std::string::npos);
}

TEST(DivergenceGuardTest, HaltOnExplodedMargin) {
  FactorModel model = SmallModel();
  DivergenceOptions opts;
  opts.policy = DivergencePolicy::kHalt;
  opts.max_abs_margin = 100.0;
  DivergenceGuard guard(opts, &model);
  EXPECT_EQ(guard.Observe(1, -99.0), DivergenceGuard::Action::kProceed);
  EXPECT_EQ(guard.Observe(2, -101.0), DivergenceGuard::Action::kHalt);
}

TEST(DivergenceGuardTest, PeriodicScanCatchesPoisonedFactor) {
  FactorModel model = SmallModel();
  DivergenceOptions opts;
  opts.policy = DivergencePolicy::kHalt;
  opts.check_interval = 2;
  opts.max_abs_factor = 10.0;
  DivergenceGuard guard(opts, &model);
  model.UserFactors(1)[0] = 1e9;  // silent corruption between margins
  EXPECT_EQ(guard.Observe(1, 0.0), DivergenceGuard::Action::kProceed);
  EXPECT_EQ(guard.Observe(2, 0.0), DivergenceGuard::Action::kHalt);
  EXPECT_NE(guard.status().message().find("factor scan"), std::string::npos);
}

TEST(DivergenceGuardTest, RollbackRestoresSnapshotAndBacksOffLr) {
  FactorModel model = SmallModel();
  const std::vector<double> initial = model.user_factor_data();
  DivergenceOptions opts;
  opts.policy = DivergencePolicy::kRollback;
  opts.lr_backoff = 0.5;
  DivergenceGuard guard(opts, &model);  // snapshots the initial parameters

  model.UserFactors(0)[0] = 42.0;  // the update that will be rolled back
  EXPECT_EQ(guard.Observe(1, kNaN), DivergenceGuard::Action::kSkipUpdate);
  EXPECT_EQ(model.user_factor_data(), initial);
  EXPECT_DOUBLE_EQ(guard.lr_scale(), 0.5);
  EXPECT_EQ(guard.rollbacks(), 1);

  EXPECT_EQ(guard.Observe(2, kNaN), DivergenceGuard::Action::kSkipUpdate);
  EXPECT_DOUBLE_EQ(guard.lr_scale(), 0.25);
  EXPECT_EQ(guard.rollbacks(), 2);
}

TEST(DivergenceGuardTest, RollbackGivesUpAfterMaxRetries) {
  FactorModel model = SmallModel();
  DivergenceOptions opts;
  opts.policy = DivergencePolicy::kRollback;
  opts.max_retries = 2;
  DivergenceGuard guard(opts, &model);
  EXPECT_EQ(guard.Observe(1, kNaN), DivergenceGuard::Action::kSkipUpdate);
  EXPECT_EQ(guard.Observe(2, kNaN), DivergenceGuard::Action::kSkipUpdate);
  EXPECT_EQ(guard.Observe(3, kNaN), DivergenceGuard::Action::kHalt);
  EXPECT_NE(guard.status().message().find("giving up"), std::string::npos);
}

TEST(DivergenceGuardTest, RollbackSnapshotRefreshesOnHealthyScan) {
  FactorModel model = SmallModel();
  DivergenceOptions opts;
  opts.policy = DivergencePolicy::kRollback;
  opts.check_interval = 1;  // refresh the snapshot every healthy iteration
  DivergenceGuard guard(opts, &model);

  model.UserFactors(0)[0] = 3.0;  // a healthy update
  EXPECT_EQ(guard.Observe(1, 0.0), DivergenceGuard::Action::kProceed);
  const std::vector<double> after_progress = model.user_factor_data();

  model.UserFactors(0)[0] = kNaN;
  EXPECT_EQ(guard.Observe(2, kNaN), DivergenceGuard::Action::kSkipUpdate);
  // Rolled back to the refreshed snapshot, not all the way to initialization.
  EXPECT_EQ(model.user_factor_data(), after_progress);
}

TEST(DivergenceGuardTest, ClampZeroesNonFiniteAndClampsRest) {
  FactorModel model = SmallModel();
  DivergenceOptions opts;
  opts.policy = DivergencePolicy::kClamp;
  opts.max_abs_factor = 1.0;
  DivergenceGuard guard(opts, &model);
  model.UserFactors(0)[0] = kNaN;
  model.UserFactors(0)[1] = -7.0;
  model.ItemBias(2) = std::numeric_limits<double>::infinity();
  EXPECT_EQ(guard.Observe(1, kNaN), DivergenceGuard::Action::kSkipUpdate);
  EXPECT_EQ(guard.clamps(), 1);
  EXPECT_DOUBLE_EQ(model.UserFactors(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(model.UserFactors(0)[1], -1.0);
  EXPECT_DOUBLE_EQ(model.ItemBias(2), 0.0);
  for (double v : model.user_factor_data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LE(std::fabs(v), 1.0);
  }
}

TEST(DivergenceGuardTest, RestoreBackoffContinuesCheckpointedSchedule) {
  FactorModel model = SmallModel();
  DivergenceOptions opts;
  opts.policy = DivergencePolicy::kRollback;
  opts.max_retries = 3;
  DivergenceGuard guard(opts, &model);
  guard.RestoreBackoff(0.25, 2);
  EXPECT_DOUBLE_EQ(guard.lr_scale(), 0.25);
  // One retry left before the guard halts.
  EXPECT_EQ(guard.Observe(1, kNaN), DivergenceGuard::Action::kSkipUpdate);
  EXPECT_EQ(guard.Observe(2, kNaN), DivergenceGuard::Action::kHalt);
}

// --- Trainer integration -------------------------------------------------

TEST(TrainerGuardTest, BprHaltsOnInjectedNan) {
  Dataset train = testing::MakeLearnableDataset(20, 30, 6, 11);
  BprOptions opts;
  opts.sgd.iterations = 500;
  opts.sgd.num_factors = 4;
  opts.sgd.divergence.policy = DivergencePolicy::kHalt;
  ScopedFaultSchedule faults(
      {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 100}}});
  BprTrainer trainer(opts);
  Status s = trainer.Train(train);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("iteration 100"), std::string::npos);
}

TEST(TrainerGuardTest, MprHaltsOnInjectedNan) {
  Dataset train = testing::MakeLearnableDataset(20, 30, 6, 11);
  MprOptions opts;
  opts.sgd.iterations = 500;
  opts.sgd.num_factors = 4;
  opts.sgd.divergence.policy = DivergencePolicy::kHalt;
  ScopedFaultSchedule faults(
      {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 50}}});
  MprTrainer trainer(opts);
  EXPECT_EQ(trainer.Train(train).code(), StatusCode::kInternal);
}

TEST(TrainerGuardTest, ClimfHaltsOnInjectedNan) {
  Dataset train = testing::MakeLearnableDataset(20, 30, 6, 11);
  ClimfOptions opts;
  opts.epochs = 5;
  opts.sgd.num_factors = 4;
  opts.sgd.divergence.policy = DivergencePolicy::kHalt;
  ScopedFaultSchedule faults(
      {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 30}}});
  ClimfTrainer trainer(opts);
  EXPECT_EQ(trainer.Train(train).code(), StatusCode::kInternal);
}

TEST(TrainerGuardTest, WmfRollbackHaltsWithRestoredFiniteModel) {
  Dataset train = testing::MakeLearnableDataset(15, 20, 5, 13);
  WmfOptions opts;
  opts.num_factors = 4;
  opts.sweeps = 6;
  opts.divergence.policy = DivergencePolicy::kRollback;
  ScopedFaultSchedule faults(
      {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 3}}});
  WmfTrainer trainer(opts);
  Status s = trainer.Train(train);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("sweep 3"), std::string::npos);
  // The published model was restored to the last healthy sweep.
  ASSERT_NE(trainer.model(), nullptr);
  for (double v : trainer.model()->user_factor_data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(TrainerGuardTest, WmfClampKeepsSweeping) {
  Dataset train = testing::MakeLearnableDataset(15, 20, 5, 13);
  WmfOptions opts;
  opts.num_factors = 4;
  opts.sweeps = 6;
  opts.divergence.policy = DivergencePolicy::kClamp;
  ScopedFaultSchedule faults(
      {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 3}}});
  WmfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  for (double v : trainer.model()->user_factor_data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  for (double v : trainer.model()->item_factor_data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

// Acceptance scenario: a learning rate that destabilizes plain BPR recovers
// to a finite model under the rollback policy.
TEST(TrainerGuardTest, BprRecoversFromDestabilizingLearningRate) {
  Dataset train = testing::MakeLearnableDataset(30, 40, 8, 17);
  BprOptions opts;
  opts.sgd.iterations = 4000;
  opts.sgd.num_factors = 8;
  opts.sgd.learning_rate = 5.0;  // wildly too large: factors explode
  opts.sgd.divergence.policy = DivergencePolicy::kRollback;
  opts.sgd.divergence.check_interval = 64;
  opts.sgd.divergence.max_abs_factor = 5.0;
  opts.sgd.divergence.lr_backoff = 0.5;
  opts.sgd.divergence.max_retries = 20;
  BprTrainer trainer(opts);
  Status s = trainer.Train(train);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (double v : trainer.model()->user_factor_data()) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LE(std::fabs(v), 5.0);
  }
  for (double v : trainer.model()->item_factor_data()) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LE(std::fabs(v), 5.0);
  }
}

}  // namespace
}  // namespace clapf
