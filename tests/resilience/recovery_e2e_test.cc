// End-to-end crash/recovery drills: a training run is killed by an injected
// fault (poisoned gradient, torn checkpoint, failed rename), restarted with
// the same options, and must reproduce the uninterrupted run bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "clapf/core/checkpoint.h"
#include "clapf/core/clapf_trainer.h"
#include "clapf/model/model_io.h"
#include "clapf/recommender.h"
#include "clapf/util/fs.h"
#include "clapf/util/logging.h"
#include "testing/fault_schedule.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

using clapf::testing::ScopedFaultSchedule;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "e2e_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A shared config: uniform sampler (so resume is bit-exact), modest size.
ClapfOptions BaseOptions() {
  ClapfOptions opts;
  opts.sgd.iterations = 3000;
  opts.sgd.num_factors = 8;
  opts.sgd.seed = 99;
  opts.sampler = ClapfSamplerKind::kUniform;
  return opts;
}

Dataset TrainData() { return testing::MakeLearnableDataset(30, 40, 8, 23); }

// Reference: the same options trained start-to-finish with no checkpointing
// and no faults.
FactorModel UninterruptedRun(double* avg_loss) {
  ClapfTrainer trainer(BaseOptions());
  CLAPF_CHECK_OK(trainer.Train(TrainData()));
  if (avg_loss != nullptr) *avg_loss = trainer.last_average_loss();
  return *trainer.model();
}

TEST(RecoveryE2eTest, ResumeAfterCrashIsBitIdentical) {
  double ref_loss = 0.0;
  const FactorModel reference = UninterruptedRun(&ref_loss);

  ClapfOptions opts = BaseOptions();
  opts.checkpoint.dir = FreshDir("bit_identical");
  opts.checkpoint.interval = 500;

  {
    // "Crash" at iteration 2750 via a poisoned gradient + halt policy. The
    // newest surviving checkpoint is the one from iteration 2500.
    ClapfOptions crash = opts;
    crash.sgd.divergence.policy = DivergencePolicy::kHalt;
    ScopedFaultSchedule faults(
        {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 2750}}});
    ClapfTrainer trainer(crash);
    Status s = trainer.Train(TrainData());
    ASSERT_EQ(s.code(), StatusCode::kInternal) << s.ToString();
  }

  // Restart with the same options: resumes from iteration 2500, replays the
  // consumed sampler draws, and finishes the remaining 500 iterations.
  ClapfTrainer resumed(opts);
  ASSERT_TRUE(resumed.Train(TrainData()).ok());

  EXPECT_EQ(resumed.model()->user_factor_data(),
            reference.user_factor_data());
  EXPECT_EQ(resumed.model()->item_factor_data(),
            reference.item_factor_data());
  EXPECT_EQ(resumed.model()->item_bias_data(), reference.item_bias_data());
  // Loss accumulators ride along in the checkpoint, so even the diagnostic
  // average matches exactly.
  EXPECT_DOUBLE_EQ(resumed.last_average_loss(), ref_loss);
}

// The headline acceptance drill: one checkpoint is torn by a short write, a
// later iteration produces NaN, and recovery must fall back past the corrupt
// snapshot to the newest VALID one — still ending bit-identical.
TEST(RecoveryE2eTest, ResumeSkipsTornCheckpoint) {
  const FactorModel reference = UninterruptedRun(nullptr);

  ClapfOptions opts = BaseOptions();
  opts.checkpoint.dir = FreshDir("torn_ckpt");
  opts.checkpoint.interval = 500;

  {
    // The 5th checkpoint write (iteration 2500) is torn in half on disk;
    // the run then dies at iteration 2750.
    ClapfOptions crash = opts;
    crash.sgd.divergence.policy = DivergencePolicy::kHalt;
    ScopedFaultSchedule faults({
        {FaultPoint::kModelWriteShort, {.trigger_at_hit = 5}},
        {FaultPoint::kSgdStepNan, {.trigger_at_hit = 2750}},
    });
    ClapfTrainer trainer(crash);
    ASSERT_EQ(trainer.Train(TrainData()).code(), StatusCode::kInternal);
  }

  // Sanity: the torn checkpoint really is unreadable.
  EXPECT_EQ(CheckpointManager::ReadCheckpointFile(opts.checkpoint.dir +
                                                  "/ckpt-000000002500.ckpt")
                .status()
                .code(),
            StatusCode::kCorruption);

  // Recovery skips iteration 2500's snapshot and resumes from 2000.
  ClapfTrainer resumed(opts);
  ASSERT_TRUE(resumed.Train(TrainData()).ok());
  EXPECT_EQ(resumed.model()->user_factor_data(),
            reference.user_factor_data());
  EXPECT_EQ(resumed.model()->item_factor_data(),
            reference.item_factor_data());
  EXPECT_EQ(resumed.model()->item_bias_data(), reference.item_bias_data());
}

TEST(RecoveryE2eTest, IncompatibleCheckpointIsIgnored) {
  ClapfOptions opts = BaseOptions();
  opts.sgd.iterations = 600;
  opts.checkpoint.dir = FreshDir("incompatible");
  opts.checkpoint.interval = 200;
  {
    ClapfTrainer first(opts);
    ASSERT_TRUE(first.Train(TrainData()).ok());
  }
  // A different seed must not adopt the other run's snapshots.
  ClapfOptions other = opts;
  other.sgd.seed = 7;
  ClapfTrainer trainer(other);
  ASSERT_TRUE(trainer.Train(TrainData()).ok());

  ClapfOptions fresh = other;
  fresh.checkpoint = CheckpointOptions{};
  ClapfTrainer scratch(fresh);
  ASSERT_TRUE(scratch.Train(TrainData()).ok());
  // Wrote checkpoints under its own seed, but trained from scratch exactly
  // like a run with no checkpoint directory at all.
  EXPECT_EQ(trainer.model()->user_factor_data(),
            scratch.model()->user_factor_data());
}

TEST(RecoveryE2eTest, ResumeDisabledTrainsFromScratch) {
  ClapfOptions opts = BaseOptions();
  opts.sgd.iterations = 600;
  opts.checkpoint.dir = FreshDir("no_resume");
  opts.checkpoint.interval = 200;
  {
    ClapfTrainer first(opts);
    ASSERT_TRUE(first.Train(TrainData()).ok());
  }
  ClapfOptions no_resume = opts;
  no_resume.checkpoint.resume = false;
  ClapfTrainer trainer(no_resume);
  ASSERT_TRUE(trainer.Train(TrainData()).ok());

  ClapfOptions fresh = opts;
  fresh.checkpoint = CheckpointOptions{};
  ClapfTrainer scratch(fresh);
  ASSERT_TRUE(scratch.Train(TrainData()).ok());
  EXPECT_EQ(trainer.model()->user_factor_data(),
            scratch.model()->user_factor_data());
}

// Serving-side degradation: a corrupt model file must fail loudly at load so
// the caller can fall back (examples/serving.cpp demonstrates the PopRank
// fallback), and a valid checkpoint lets the service reload a recovered model.
TEST(RecoveryE2eTest, CorruptModelFileFailsLoadButCheckpointRecovers) {
  ClapfOptions opts = BaseOptions();
  opts.sgd.iterations = 1000;
  opts.checkpoint.dir = FreshDir("serving");
  opts.checkpoint.interval = 250;
  ClapfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(TrainData()).ok());

  const std::string model_path = ::testing::TempDir() + "e2e_served.clpf";
  ASSERT_TRUE(SaveModelAtomic(*trainer.model(), model_path).ok());

  // Bit rot hits the served model file.
  auto contents = ReadFileToString(model_path);
  ASSERT_TRUE(contents.ok());
  std::string damaged = *contents;
  damaged[damaged.size() / 2] ^= 0x04;
  ASSERT_TRUE(WriteStringToFile(model_path, damaged).ok());

  auto broken = Recommender::Load(model_path, TrainData());
  EXPECT_EQ(broken.status().code(), StatusCode::kCorruption);

  // The newest checkpoint still holds a healthy model.
  CheckpointManager manager(opts.checkpoint);
  ASSERT_TRUE(manager.Init().ok());
  auto recovered = manager.LoadLatest();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->state.iteration, 1000);
  EXPECT_EQ(recovered->model.user_factor_data(),
            trainer.model()->user_factor_data());

  auto serving = Recommender::Create(std::move(recovered->model), TrainData());
  ASSERT_TRUE(serving.ok());
  auto recs = serving->Recommend(0, 5, QueryOptions{});
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(recs->size(), 5u);
}

}  // namespace
}  // namespace clapf
