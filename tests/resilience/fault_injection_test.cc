#include "clapf/util/fault_injection.h"

#include <gtest/gtest.h>

#include <string>

#include "testing/fault_schedule.h"

namespace clapf {
namespace {

using clapf::testing::ScopedFaultSchedule;

TEST(FaultInjectorTest, UnarmedPointNeverFires) {
  ScopedFaultSchedule faults;  // nothing armed; destructor still resets
  FaultInjector& fi = FaultInjector::Instance();
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.ShouldFire(FaultPoint::kSgdStepNan));
  EXPECT_EQ(fi.hits(FaultPoint::kSgdStepNan), 0);
  EXPECT_EQ(fi.fires(FaultPoint::kSgdStepNan), 0);
}

TEST(FaultInjectorTest, FiresExactlyAtTriggerHit) {
  ScopedFaultSchedule faults(
      {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 3, .max_fires = 1}}});
  FaultInjector& fi = FaultInjector::Instance();
  EXPECT_TRUE(fi.armed());
  EXPECT_FALSE(fi.ShouldFire(FaultPoint::kSgdStepNan));  // hit 1
  EXPECT_FALSE(fi.ShouldFire(FaultPoint::kSgdStepNan));  // hit 2
  EXPECT_TRUE(fi.ShouldFire(FaultPoint::kSgdStepNan));   // hit 3: fires
  EXPECT_FALSE(fi.ShouldFire(FaultPoint::kSgdStepNan));  // max_fires spent
  EXPECT_EQ(faults.hits(FaultPoint::kSgdStepNan), 4);
  EXPECT_EQ(faults.fires(FaultPoint::kSgdStepNan), 1);
}

TEST(FaultInjectorTest, NegativeMaxFiresMeansEveryHit) {
  ScopedFaultSchedule faults(
      {{FaultPoint::kLoaderBadLine, {.trigger_at_hit = 2, .max_fires = -1}}});
  FaultInjector& fi = FaultInjector::Instance();
  EXPECT_FALSE(fi.ShouldFire(FaultPoint::kLoaderBadLine));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fi.ShouldFire(FaultPoint::kLoaderBadLine));
  }
  EXPECT_EQ(faults.fires(FaultPoint::kLoaderBadLine), 5);
}

TEST(FaultInjectorTest, PointsAreIndependent) {
  ScopedFaultSchedule faults({{FaultPoint::kModelRename, {}}});
  FaultInjector& fi = FaultInjector::Instance();
  // An armed injector still reports false for every unarmed point.
  EXPECT_FALSE(fi.ShouldFire(FaultPoint::kSgdStepNan));
  EXPECT_TRUE(fi.ShouldFire(FaultPoint::kModelRename));
}

TEST(FaultInjectorTest, DisarmStopsFiringButKeepsCounters) {
  ScopedFaultSchedule faults(
      {{FaultPoint::kSgdStepNan, {.trigger_at_hit = 1, .max_fires = -1}}});
  FaultInjector& fi = FaultInjector::Instance();
  EXPECT_TRUE(fi.ShouldFire(FaultPoint::kSgdStepNan));
  faults.Disarm(FaultPoint::kSgdStepNan);
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.ShouldFire(FaultPoint::kSgdStepNan));
  // Counters survive disarm for post-mortem assertions.
  EXPECT_EQ(faults.hits(FaultPoint::kSgdStepNan), 1);
  EXPECT_EQ(faults.fires(FaultPoint::kSgdStepNan), 1);
}

TEST(FaultInjectorTest, ScopedScheduleResetsOnDestruction) {
  {
    ScopedFaultSchedule faults({{FaultPoint::kModelWriteShort, {}}});
    EXPECT_TRUE(FaultInjector::Instance().armed());
  }
  FaultInjector& fi = FaultInjector::Instance();
  EXPECT_FALSE(fi.armed());
  EXPECT_EQ(fi.hits(FaultPoint::kModelWriteShort), 0);
}

TEST(FaultInjectorTest, ShortWriteTruncatesPayloadToHalf) {
  ScopedFaultSchedule faults({{FaultPoint::kModelWriteShort, {}}});
  std::string payload(100, 'x');
  FaultInjector::Instance().MutateModelPayload(&payload);
  EXPECT_EQ(payload.size(), 50u);
}

TEST(FaultInjectorTest, BitFlipChangesExactlyOneBit) {
  ScopedFaultSchedule faults({{FaultPoint::kModelWriteBitFlip, {}}});
  std::string payload(100, 'x');
  const std::string original = payload;
  FaultInjector::Instance().MutateModelPayload(&payload);
  ASSERT_EQ(payload.size(), original.size());
  int differing_bits = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(payload[i] ^ original[i]);
    while (diff != 0) {
      differing_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);
}

TEST(FaultInjectorTest, EveryPointHasAName) {
  for (int p = 0; p < static_cast<int>(FaultPoint::kNumFaultPoints); ++p) {
    EXPECT_STRNE(FaultPointName(static_cast<FaultPoint>(p)), "unknown");
  }
}

}  // namespace
}  // namespace clapf
