// Serving resilience drills: deadline enforcement, admission-control load
// shedding, canary-gated hot reload with rollback, and the post-publish
// circuit breaker — each failure mode provoked by an injected fault and
// required to surface as a typed Status, never a crash or a garbage ranking.
//
// This suite is the Tsan acceptance gate for the serving layer: the
// concurrent drills (hot swap during queries, multi-client overload) must
// run race-free under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "clapf/core/clapf_trainer.h"
#include "clapf/model/model_io.h"
#include "clapf/serving/model_server.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"
#include "testing/fault_schedule.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

using clapf::testing::ScopedFaultSchedule;

constexpr int32_t kUsers = 30;
constexpr int32_t kItems = 40;

Dataset History() { return testing::MakeLearnableDataset(kUsers, kItems, 8, 7); }

// A structurally valid but untrained model: finite factors, AUC ~0.5.
FactorModel RandomModel(uint64_t seed) {
  FactorModel model(kUsers, kItems, 8);
  Rng rng(seed);
  model.InitGaussian(rng);
  return model;
}

// A model actually trained on History() — clears any sane AUC floor.
FactorModel TrainedModel(uint64_t seed) {
  ClapfOptions opts;
  opts.sgd.iterations = 3000;
  opts.sgd.num_factors = 8;
  opts.sgd.seed = seed;
  ClapfTrainer trainer(opts);
  CLAPF_CHECK_OK(trainer.Train(History()));
  return *trainer.model();
}

// Default server for drills: tiny pool, canary on but no AUC probe (the
// probe-floor drills opt in explicitly), touchy breaker so trips are cheap
// to provoke.
ServerOptions DrillOptions() {
  ServerOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 4;
  options.breaker.min_samples = 4;
  options.breaker.window = 8;
  options.breaker.error_threshold = 0.5;
  return options;
}

TEST(ModelServerTest, ServesPopularityFallbackBeforeFirstPublish) {
  ModelServer server(History(), DrillOptions());
  EXPECT_TRUE(server.degraded());
  EXPECT_EQ(server.version(), 0);

  auto got = server.Recommend(3, 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 5u);
  // Popularity order: scores must be non-increasing.
  for (size_t i = 1; i < got->size(); ++i) {
    EXPECT_GE((*got)[i - 1].score, (*got)[i].score);
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.queries, 1);
  EXPECT_EQ(stats.degraded, 1);
  EXPECT_EQ(stats.ok, 1);
}

TEST(ModelServerTest, PublishThenServe) {
  ModelServer server(History(), DrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  EXPECT_FALSE(server.degraded());
  EXPECT_EQ(server.version(), 1);

  auto got = server.Recommend(0, 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 5u);

  // Batch through the server answers every user.
  std::vector<UserId> users = {0, 1, 2, 3};
  auto reply = server.RecommendBatch(users, 3);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->num_complete, users.size());
  EXPECT_FALSE(reply->deadline_exceeded);

  auto stats = server.stats();
  EXPECT_EQ(stats.publishes, 1);
  EXPECT_EQ(stats.ok, 2);
  EXPECT_EQ(stats.degraded, 0);
}

TEST(ModelServerTest, BadUserIdIsClientErrorNotBreakerFood) {
  ModelServer server(History(), DrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  for (int i = 0; i < 8; ++i) {
    auto got = server.Recommend(kUsers + 100, 5);
    EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.client_errors, 8);
  EXPECT_EQ(stats.internal_errors, 0);
  EXPECT_EQ(stats.breaker_trips, 0);  // client mistakes never trip it
  EXPECT_EQ(server.version(), 1);
}

// --- Deadline drills ------------------------------------------------------

TEST(ModelServerTest, DeadlineExpiryIsTypedNotUnbounded) {
  ModelServer server(History(), DrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());

  // Every scoring block stalls 2ms; a 50us budget cannot survive even one.
  ScopedFaultSchedule faults(
      {{FaultPoint::kServeSlowBlock, {.trigger_at_hit = 1, .max_fires = -1}}});
  QueryOptions options;
  options.deadline = std::chrono::microseconds(50);
  auto got = server.Recommend(0, 5, options);
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
      << got.status().ToString();
  EXPECT_EQ(server.stats().deadline_exceeded, 1);

  // Disarmed, the same query with the same budget-bearing options succeeds:
  // the deadline machinery itself costs far less than the budget.
  faults.Disarm(FaultPoint::kServeSlowBlock);
  options.deadline = std::chrono::seconds(10);
  auto retry = server.Recommend(0, 5, options);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(ModelServerTest, ExpiredBatchReturnsCompletedPrefixFlagged) {
  ModelServer server(History(), DrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());

  ScopedFaultSchedule faults(
      {{FaultPoint::kServeSlowBlock, {.trigger_at_hit = 1, .max_fires = -1}}});
  std::vector<UserId> users(static_cast<size_t>(kUsers));
  for (int32_t u = 0; u < kUsers; ++u) users[static_cast<size_t>(u)] = u;

  QueryOptions options;
  options.deadline = std::chrono::microseconds(100);
  auto reply = server.RecommendBatch(users, 5, options);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->deadline_exceeded);
  EXPECT_LT(reply->num_complete, users.size());

  // Flags and payloads agree: finished users carry results, unfinished
  // users carry an empty list — never a half-scored ranking.
  size_t flagged = 0;
  for (size_t i = 0; i < users.size(); ++i) {
    if (reply->complete[i] != 0) {
      ++flagged;
      EXPECT_EQ(reply->results[i].size(), 5u);
    } else {
      EXPECT_TRUE(reply->results[i].empty());
    }
  }
  EXPECT_EQ(flagged, reply->num_complete);
  EXPECT_EQ(server.stats().deadline_exceeded, 1);
}

// --- Overload drill -------------------------------------------------------

TEST(ModelServerTest, OverloadShedsWithTypedErrorsNotCrash) {
  ServerOptions options = DrillOptions();
  options.num_threads = 2;
  options.max_queue_depth = 2;
  ModelServer server(History(), options);
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());

  // Every admitted task parks 20ms before serving, so a burst of clients
  // piles up against the depth-2 admission bound.
  ScopedFaultSchedule faults(
      {{FaultPoint::kServeQueueStall, {.trigger_at_hit = 1, .max_fires = -1}}});

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 4;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &ok, &shed, &other, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        auto got = server.Recommend(c, 5);
        if (got.ok()) {
          ok.fetch_add(1);
        } else if (got.status().code() == StatusCode::kUnavailable) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every request resolved to success or a typed shed — nothing else.
  EXPECT_EQ(ok.load() + shed.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);    // the server kept serving under overload
  EXPECT_GT(shed.load(), 0);  // and the bound actually shed something
  auto stats = server.stats();
  EXPECT_EQ(stats.shed, shed.load());
  EXPECT_EQ(stats.ok, ok.load());
}

// --- Hot reload gate drills ----------------------------------------------

TEST(ModelServerTest, CorruptCandidateRejectedPrePublish) {
  ModelServer server(History(), DrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  ASSERT_EQ(server.version(), 1);

  // The injected fault poisons the candidate's factors in flight; the
  // canary's finite scan must catch it before the swap.
  {
    ScopedFaultSchedule faults({{FaultPoint::kServeCorruptCandidate, {}}});
    Status published = server.PublishModel(RandomModel(2));
    EXPECT_EQ(published.code(), StatusCode::kCorruption)
        << published.ToString();
  }

  // The rejection left v1 serving, untouched.
  EXPECT_EQ(server.version(), 1);
  EXPECT_FALSE(server.degraded());
  auto got = server.Recommend(0, 5);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(server.stats().canary_rejects, 1);

  // With the fault gone the same candidate publishes cleanly.
  EXPECT_TRUE(server.PublishModel(RandomModel(2)).ok());
  EXPECT_EQ(server.version(), 2);
}

TEST(ModelServerTest, CorruptCandidateFileRejectedByCrc) {
  ModelServer server(History(), DrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());

  const std::string path =
      ::testing::TempDir() + "serving_candidate_corrupt.clapf";
  ASSERT_TRUE(SaveModel(RandomModel(2), path).ok());
  {
    // Flip one payload byte; the wire format's CRC must refuse the load.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-9, std::ios::end);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(-9, std::ios::end);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  Status published = server.PublishModel(path);
  EXPECT_FALSE(published.ok());
  EXPECT_EQ(server.version(), 1);  // prior snapshot kept serving
  EXPECT_EQ(server.stats().canary_rejects, 1);
}

TEST(ModelServerTest, AucFloorRejectsUntrainedModelAcceptsTrained) {
  ServerOptions options = DrillOptions();
  options.canary.min_auc = 0.58;
  ModelServer server(History(), options);

  // A random model ranks the probe at ~0.5 AUC: below the floor, rejected.
  Status rejected = server.PublishModel(RandomModel(1));
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition)
      << rejected.ToString();
  EXPECT_TRUE(server.degraded());
  EXPECT_EQ(server.stats().canary_rejects, 1);

  // A genuinely trained model clears it.
  Status accepted = server.PublishModel(TrainedModel(11));
  EXPECT_TRUE(accepted.ok()) << accepted.ToString();
  EXPECT_EQ(server.version(), 1);
}

TEST(ModelServerTest, DimensionMismatchRejectedEvenWithCanaryDisabled) {
  ServerOptions options = DrillOptions();
  options.canary.enabled = false;
  ModelServer server(History(), options);
  FactorModel wrong(kUsers + 1, kItems, 8);
  EXPECT_EQ(server.PublishModel(std::move(wrong)).code(),
            StatusCode::kInvalidArgument);
}

// --- Circuit breaker drills -----------------------------------------------

TEST(ModelServerTest, BreakerTripRollsBackThenRecovers) {
  ModelServer server(History(), DrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  ASSERT_TRUE(server.PublishModel(RandomModel(2)).ok());
  ASSERT_EQ(server.version(), 2);

  // Every serve poisons a score; the serve-time finite check turns each
  // into Internal, and with a 100% error rate the breaker trips as soon as
  // the window holds min_samples.
  ScopedFaultSchedule faults(
      {{FaultPoint::kServeScoreNan, {.trigger_at_hit = 1, .max_fires = -1}}});
  int internal_seen = 0;
  for (int i = 0; i < 16 && server.stats().breaker_trips == 0; ++i) {
    auto got = server.Recommend(0, 5);
    if (got.status().code() == StatusCode::kInternal) ++internal_seen;
  }
  ASSERT_GE(internal_seen, 1);
  auto stats = server.stats();
  ASSERT_GE(stats.breaker_trips, 1);
  EXPECT_GE(stats.rollbacks, 1);
  EXPECT_EQ(server.version(), 1);  // rolled back to the previous snapshot
  EXPECT_FALSE(server.degraded());

  // Fault cleared: the rolled-back snapshot serves cleanly again.
  faults.Disarm(FaultPoint::kServeScoreNan);
  auto got = server.Recommend(0, 5);
  EXPECT_TRUE(got.ok()) << got.status().ToString();

  // And a fresh publish moves forward normally.
  ASSERT_TRUE(server.PublishModel(RandomModel(3)).ok());
  EXPECT_EQ(server.version(), 3);
}

TEST(ModelServerTest, BreakerDegradesWhenNoRollbackTargetExists) {
  ModelServer server(History(), DrillOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());  // v1, no previous

  ScopedFaultSchedule faults(
      {{FaultPoint::kServeScoreNan, {.trigger_at_hit = 1, .max_fires = -1}}});
  for (int i = 0; i < 16 && server.stats().breaker_trips == 0; ++i) {
    (void)server.Recommend(0, 5);
  }
  ASSERT_GE(server.stats().breaker_trips, 1);
  EXPECT_EQ(server.stats().rollbacks, 0);  // nothing to roll back to
  EXPECT_TRUE(server.degraded());
  EXPECT_EQ(server.version(), 0);

  // Degraded serving is immune to the score fault (it never touches the
  // model) — the server answers from popularity instead of going dark.
  auto got = server.Recommend(0, 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 5u);
}

// --- Concurrency drill (the Tsan acceptance case) -------------------------

TEST(ModelServerTest, HotSwapDuringConcurrentQueriesIsRaceFree) {
  ServerOptions options = DrillOptions();
  options.max_queue_depth = 64;  // no shedding: this drill is about races
  ModelServer server(History(), options);
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());

  constexpr int kPublishes = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> served{0};
  std::atomic<int> failed{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&server, &stop, &served, &failed, t] {
      std::vector<UserId> users = {0, 1, 2};
      while (!stop.load(std::memory_order_relaxed)) {
        auto one = server.Recommend((t * 7) % kUsers, 5);
        auto batch = server.RecommendBatch(users, 3);
        if (one.ok() && batch.ok()) {
          served.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }

  // The writer hot-swaps through the full gate while readers hammer away.
  for (int v = 2; v <= 1 + kPublishes; ++v) {
    ASSERT_TRUE(server.PublishModel(RandomModel(static_cast<uint64_t>(v))).ok());
  }
  // Let the readers overlap the final snapshot too, then stop them.
  while (served.load() < 5) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(server.version(), 1 + kPublishes);
  EXPECT_EQ(server.stats().publishes, 1 + kPublishes);
  EXPECT_EQ(server.stats().internal_errors, 0);
}

}  // namespace
}  // namespace clapf
