// Sharded scatter-gather serving drills. The load-bearing property is
// BIT-IDENTITY: a ShardedModelServer must answer every query exactly like
// the monolithic path — same scores, same order, same smaller-id tie-break
// — for any shard count, on both the packed and the exact kernels. On top
// of that, the per-shard failure domains: targeted hot reload, per-shard
// canary gates, shard-attributed breaker trips and rollbacks, tenant
// isolation and quotas, and deterministic stats aggregation.
//
// This suite is the Tsan acceptance gate for the sharded serving layer: the
// hot-reload-under-load drill publishes into single shards while query
// threads scatter across all of them.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "clapf/serving/model_server.h"
#include "clapf/serving/sharded_server.h"
#include "clapf/serving/shard_map.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"
#include "testing/fault_schedule.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

using clapf::testing::ScopedFaultSchedule;

constexpr int32_t kUsers = 20;
constexpr int32_t kItems = 56;  // 7 packed blocks: uneven across 2/3/5 shards

Dataset History() {
  return testing::MakeLearnableDataset(kUsers, kItems, 9, 11);
}

// A structurally valid but untrained model — finite factors, deterministic.
FactorModel RandomModel(uint64_t seed) {
  FactorModel model(kUsers, kItems, 8);
  Rng rng(seed);
  model.InitGaussian(rng);
  return model;
}

// Tie-heavy exact model: every score is one of three values, so almost every
// adjacent pair in a ranking is a tie the smaller-id rule must break.
FactorModel TieModel() {
  std::vector<std::vector<double>> scores(
      kUsers, std::vector<double>(kItems, 0.0));
  for (int32_t u = 0; u < kUsers; ++u) {
    for (int32_t i = 0; i < kItems; ++i) {
      scores[static_cast<size_t>(u)][static_cast<size_t>(i)] =
          static_cast<double>((u + i) % 3);
    }
  }
  return testing::MakeExactModel(scores);
}

ServerOptions DrillOptions(int32_t num_shards) {
  ServerOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 16;
  options.num_shards = num_shards;
  options.scatter_threads = 2;
  options.breaker.min_samples = 4;
  options.breaker.window = 8;
  options.breaker.error_threshold = 0.5;
  return options;
}

void ExpectSameRanking(const std::vector<ScoredItem>& got,
                       const std::vector<ScoredItem>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item)
        << context << " diverges at rank " << i;
    // EXPECT_EQ, not NEAR: sharded serving promises bit-identical scores.
    EXPECT_EQ(got[i].score, want[i].score)
        << context << " score differs at rank " << i;
  }
}

// ---------------------------------------------------------------------------
// ShardMap

TEST(ShardMapTest, AlignsBoundariesToPackedBlocksAndCoversCatalog) {
  ShardMap map = ShardMap::Create(kItems, 3);
  ASSERT_EQ(map.num_shards(), 3);
  EXPECT_EQ(map.begin(0), 0);
  EXPECT_EQ(map.end(map.num_shards() - 1), kItems);
  for (int32_t s = 0; s < map.num_shards(); ++s) {
    EXPECT_GT(map.size(s), 0);
    if (s + 1 < map.num_shards()) {
      EXPECT_EQ(map.end(s), map.begin(s + 1));    // contiguous
      EXPECT_EQ(map.end(s) % 8, 0) << map.ToString();  // block-aligned
    }
  }
  for (ItemId i = 0; i < kItems; ++i) {
    const int32_t s = map.ShardOfItem(i);
    EXPECT_GE(i, map.begin(s));
    EXPECT_LT(i, map.end(s));
  }
}

TEST(ShardMapTest, ClampsShardCountToBlockCount) {
  // 10 items = 2 packed blocks: asking for 50 shards yields 2.
  EXPECT_EQ(ShardMap::Create(10, 50).num_shards(), 2);
  EXPECT_EQ(ShardMap::Create(10, 0).num_shards(), 1);
  ShardMap empty = ShardMap::Create(0, 4);
  EXPECT_EQ(empty.num_shards(), 1);
  EXPECT_EQ(empty.num_items(), 0);
}

// ---------------------------------------------------------------------------
// Unified publish API

TEST(ShardedServerTest, PublishRequestRoutingIsValidated) {
  ShardedModelServer server(History(), DrillOptions(3));
  EXPECT_EQ(server
                .PublishModel(PublishRequest(RandomModel(1)).WithShard(7))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server
                .PublishModel(PublishRequest(RandomModel(1)).WithTenant(""))
                .code(),
            StatusCode::kInvalidArgument);
  // Both a model and a path, or neither, is a malformed request.
  PublishRequest both(RandomModel(1));
  both.path = "/tmp/nonexistent.clapf";
  EXPECT_EQ(server.PublishModel(std::move(both)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.PublishModel(PublishRequest()).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedServerTest, MonolithicServerRefusesShardAndTenantRouting) {
  ModelServer server(History(), DrillOptions(1));
  EXPECT_EQ(server
                .PublishModel(PublishRequest(RandomModel(1)).WithShard(1))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server
                .PublishModel(
                    PublishRequest(RandomModel(1)).WithTenant("alpha"))
                .code(),
            StatusCode::kInvalidArgument);
  // The default routing is the classic publish.
  EXPECT_TRUE(server.PublishModel(RandomModel(1)).ok());
  EXPECT_EQ(server.version(), 1);
}

// ---------------------------------------------------------------------------
// Cross-shard merge determinism: the drill ISSUE calls for. Sharded answers
// must be bit-identical to the monolithic server for every user, shard
// count, and kernel, including the smaller-id tie-break.

TEST(ShardedDeterminismTest, PackedShardedMatchesMonolithicBitForBit) {
  Dataset history = History();
  for (int32_t shards : {1, 2, 3, 5}) {
    ModelServer mono(history, DrillOptions(1));
    ASSERT_TRUE(mono.PublishModel(RandomModel(3)).ok());
    ShardedModelServer sharded(history, DrillOptions(shards));
    ASSERT_TRUE(sharded.PublishModel(RandomModel(3)).ok());
    for (UserId u = 0; u < kUsers; ++u) {
      auto want = mono.Recommend(u, 10);
      auto got = sharded.RecommendOne(u, 10);
      ASSERT_TRUE(want.ok() && got.ok());
      ExpectSameRanking(*got, *want,
                        "packed shards=" + std::to_string(shards) +
                            " user=" + std::to_string(u));
    }
  }
}

TEST(ShardedDeterminismTest, ExactShardedMatchesMonolithicBitForBit) {
  Dataset history = History();
  for (int32_t shards : {2, 3, 5}) {
    ServerOptions exact = DrillOptions(shards);
    exact.packed = false;
    ServerOptions mono_exact = DrillOptions(1);
    mono_exact.packed = false;
    ModelServer mono(history, mono_exact);
    ASSERT_TRUE(mono.PublishModel(RandomModel(5)).ok());
    ShardedModelServer sharded(history, exact);
    ASSERT_TRUE(sharded.PublishModel(RandomModel(5)).ok());
    for (UserId u = 0; u < kUsers; ++u) {
      auto want = mono.Recommend(u, 12);
      auto got = sharded.RecommendOne(u, 12);
      ASSERT_TRUE(want.ok() && got.ok());
      ExpectSameRanking(*got, *want,
                        "exact shards=" + std::to_string(shards) +
                            " user=" + std::to_string(u));
    }
  }
}

TEST(ShardedDeterminismTest, TieBreakIsSmallerIdAcrossShardBoundaries) {
  Dataset history = History();
  for (int32_t shards : {3, 5}) {
    ModelServer mono(history, DrillOptions(1));
    ASSERT_TRUE(mono.PublishModel(TieModel()).ok());
    ShardedModelServer sharded(history, DrillOptions(shards));
    ASSERT_TRUE(sharded.PublishModel(TieModel()).ok());
    for (UserId u = 0; u < kUsers; ++u) {
      auto want = mono.Recommend(u, kItems);
      auto got = sharded.RecommendOne(u, kItems);
      ASSERT_TRUE(want.ok() && got.ok());
      ExpectSameRanking(*got, *want,
                        "ties shards=" + std::to_string(shards) +
                            " user=" + std::to_string(u));
      // The merged ranking itself must break ties by ascending item id even
      // where the tied items live in different shards.
      for (size_t i = 1; i < got->size(); ++i) {
        if ((*got)[i - 1].score == (*got)[i].score) {
          EXPECT_LT((*got)[i - 1].item, (*got)[i].item);
        }
      }
    }
  }
}

TEST(ShardedDeterminismTest, ExclusionsMinScoreAndColdStartMatchMonolithic) {
  Dataset history = History();
  ModelServer mono(history, DrillOptions(1));
  ASSERT_TRUE(mono.PublishModel(RandomModel(7)).ok());
  ShardedModelServer sharded(history, DrillOptions(3));
  ASSERT_TRUE(sharded.PublishModel(RandomModel(7)).ok());

  QueryOptions options;
  options.exclude = {0, 9, 23, 55, 999, -4};  // spans shards; bad ids ignored
  options.min_score = 0.0;
  for (UserId u = 0; u < kUsers; ++u) {
    auto want = mono.Recommend(u, 10, options);
    auto got = sharded.RecommendOne(u, 10, options);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSameRanking(*got, *want, "filtered user=" + std::to_string(u));
  }

  // Batch surface, same contract.
  std::vector<UserId> users = {0, 3, 7, 12};
  auto want_batch = mono.RecommendBatch(users, 8);
  auto got_batch = sharded.RecommendBatch(users, 8);
  ASSERT_TRUE(want_batch.ok() && got_batch.ok());
  ASSERT_EQ(got_batch->num_complete, users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    ExpectSameRanking(got_batch->results[i], want_batch->results[i],
                      "batch user=" + std::to_string(users[i]));
  }
}

TEST(ShardedDeterminismTest, ColdStartIsAGlobalDecision) {
  // User kUsers-1 owns no interactions: globally cold, so it must get the
  // popularity ranking — not a per-shard mix where warm shards answer from
  // the model. Every warm user must be served by the model in EVERY shard
  // even where that user has no local history.
  std::vector<std::pair<UserId, ItemId>> pairs;
  for (ItemId i = 0; i < 8; ++i) pairs.push_back({0, i});  // shard 0 only
  for (ItemId i = 1; i < 6; ++i) pairs.push_back({1, i});  // shard 0 only
  Dataset history = testing::MakeDataset(3, kItems, pairs);
  ModelServer mono(history, DrillOptions(1));
  ShardedModelServer sharded(history, DrillOptions(3));
  FactorModel model(3, kItems, 4);
  Rng rng(9);
  model.InitGaussian(rng);
  ASSERT_TRUE(mono.PublishModel(model).ok());
  ASSERT_TRUE(sharded.PublishModel(model).ok());
  for (UserId u = 0; u < 3; ++u) {
    auto want = mono.Recommend(u, 10);
    auto got = sharded.RecommendOne(u, 10);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSameRanking(*got, *want, "cold drill user=" + std::to_string(u));
  }
}

// ---------------------------------------------------------------------------
// Deadlines

TEST(ShardedServerTest, BatchDeadlineReturnsCompletedPrefix) {
  ShardedModelServer server(History(), DrillOptions(3));
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  // Every scoring block stalls 2ms; with a 1ms budget the batch cannot
  // finish, and the reply must carry the completed prefix, not an error.
  ScopedFaultSchedule faults(
      {{FaultPoint::kServeSlowBlock, {.trigger_at_hit = 1, .max_fires = -1}}});
  std::vector<UserId> users = {0, 1, 2, 3, 4, 5, 6, 7};
  QueryOptions options;
  options.deadline = std::chrono::microseconds(1000);
  auto reply = server.RecommendBatch(users, 5, options);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->deadline_exceeded);
  EXPECT_LT(reply->num_complete, users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    if (!reply->complete[i]) {
      EXPECT_TRUE(reply->results[i].empty());
    }
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.total.deadline_exceeded, 1);
  // The expiry is attributed to the shard whose scan hit the wall.
  int64_t attributed = 0;
  for (const auto& shard : stats.shards) attributed += shard.deadline_exceeded;
  EXPECT_EQ(attributed, 1);
}

// ---------------------------------------------------------------------------
// Per-shard hot reload

TEST(ShardedServerTest, TargetedPublishReloadsOnlyThatShard) {
  Dataset history = History();
  ServerOptions options = DrillOptions(3);
  options.packed = false;  // exact doubles make the hybrid check trivial
  ShardedModelServer server(history, options);
  FactorModel a = RandomModel(21);
  FactorModel b = RandomModel(22);
  ASSERT_TRUE(server.PublishModel(a).ok());
  ASSERT_TRUE(
      server.PublishModel(PublishRequest(b).WithShard(1)).ok());
  EXPECT_EQ(server.shard_versions(), (std::vector<int64_t>{1, 2, 1}));
  EXPECT_FALSE(server.degraded());

  // The served catalog is now a stitch: shard 1's items score under model b,
  // the rest under model a. Verify against a brute-force stitched ranking.
  const ShardMap& map = server.shard_map();
  for (UserId u = 0; u < kUsers; ++u) {
    std::vector<bool> seen(static_cast<size_t>(kItems), false);
    for (ItemId i : history.ItemsOf(u)) seen[static_cast<size_t>(i)] = true;
    std::vector<ScoredItem> expected;
    for (ItemId i = 0; i < kItems; ++i) {
      if (seen[static_cast<size_t>(i)]) continue;
      const FactorModel& src = map.ShardOfItem(i) == 1 ? b : a;
      expected.push_back({i, src.Score(u, i)});
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const ScoredItem& lhs, const ScoredItem& rhs) {
                       if (lhs.score != rhs.score) return lhs.score > rhs.score;
                       return lhs.item < rhs.item;
                     });
    expected.resize(std::min<size_t>(expected.size(), 10));
    auto got = server.RecommendOne(u, 10);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameRanking(*got, expected, "stitched user=" + std::to_string(u));
  }

  auto stats = server.stats();
  EXPECT_EQ(stats.shards[0].publishes, 1);
  EXPECT_EQ(stats.shards[1].publishes, 2);
  EXPECT_EQ(stats.shards[2].publishes, 1);
}

TEST(ShardedServerTest, PerShardCanaryRejectsOnlyTheCorruptSlice) {
  ShardedModelServer server(History(), DrillOptions(3));
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());

  // Poison one item factor owned by shard 1: shard 1's gate must refuse the
  // slice while shard 0's gate (whose slice excludes that item) clears it.
  FactorModel poisoned = RandomModel(2);
  const ItemId victim = server.shard_map().begin(1);
  poisoned.mutable_item_factor_data()[static_cast<size_t>(victim) *
                                      poisoned.num_factors()] =
      std::numeric_limits<double>::quiet_NaN();

  Status refused =
      server.PublishModel(PublishRequest(poisoned).WithShard(1));
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(server.shard_versions(), (std::vector<int64_t>{1, 1, 1}));
  EXPECT_TRUE(
      server.PublishModel(PublishRequest(poisoned).WithShard(0)).ok());
  EXPECT_EQ(server.shard_versions(), (std::vector<int64_t>{2, 1, 1}));

  auto stats = server.stats();
  EXPECT_EQ(stats.total.canary_rejects, 1);
  EXPECT_EQ(stats.shards[1].canary_rejects, 1);
  EXPECT_EQ(stats.shards[0].canary_rejects, 0);
  // The reject is visible in shard 1's scoped flight stream, not shard 2's.
  bool shard1_saw_reject = false;
  for (const FlightEvent& e : server.shard_flight_recorder(1).Snapshot()) {
    if (e.kind == FlightEventKind::kCanaryReject) shard1_saw_reject = true;
  }
  EXPECT_TRUE(shard1_saw_reject);
  for (const FlightEvent& e : server.shard_flight_recorder(2).Snapshot()) {
    EXPECT_NE(e.kind, FlightEventKind::kCanaryReject);
  }
}

TEST(ShardedServerTest, PartiallyPublishedTenantServesHealthyShardsFromModel) {
  // A fresh tenant published into shard 0 only: shard 0 answers from the
  // model, shards 1-2 from their popularity slices — degraded but alive.
  ShardedModelServer server(History(), DrillOptions(3));
  ASSERT_TRUE(server
                  .PublishModel(PublishRequest(RandomModel(1))
                                    .WithShard(0)
                                    .WithTenant("canary-tenant"))
                  .ok());
  EXPECT_TRUE(server.degraded("canary-tenant"));
  EXPECT_EQ(server.shard_versions("canary-tenant"),
            (std::vector<int64_t>{1, 0, 0}));
  auto got = server.RecommendOne(0, 10, {}, "canary-tenant");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 10u);
  auto stats = server.stats();
  EXPECT_GT(stats.shards[1].degraded + stats.shards[2].degraded, 0);
  EXPECT_EQ(stats.shards[0].degraded, 0);
}

// ---------------------------------------------------------------------------
// Shard-attributed breaker

TEST(ShardedServerTest, BreakerTripsAndRollsBackOnlyTheBlamedShard) {
  ShardedModelServer server(History(), DrillOptions(3));
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());  // v1
  ASSERT_TRUE(server.PublishModel(RandomModel(2)).ok());  // v2, rollback to v1

  // Every query's merged top score goes NaN; the same user always blames the
  // same shard (the one owning their deterministic top item).
  ScopedFaultSchedule faults(
      {{FaultPoint::kServeScoreNan, {.trigger_at_hit = 1, .max_fires = -1}}});
  int32_t blamed = -1;
  for (int i = 0; i < 4; ++i) {
    auto got = server.RecommendOne(0, 5);
    ASSERT_EQ(got.status().code(), StatusCode::kInternal);
  }
  faults.Disarm(FaultPoint::kServeScoreNan);

  auto stats = server.stats();
  EXPECT_EQ(stats.total.internal_errors, 4);
  EXPECT_EQ(stats.total.breaker_trips, 1);
  EXPECT_EQ(stats.total.rollbacks, 1);
  for (const auto& shard : stats.shards) {
    if (shard.breaker_trips > 0) {
      ASSERT_EQ(blamed, -1) << "two shards tripped";
      blamed = shard.shard;
      EXPECT_EQ(shard.internal_errors, 4);
      EXPECT_EQ(shard.rollbacks, 1);
    } else {
      EXPECT_EQ(shard.internal_errors, 0);
      EXPECT_EQ(shard.rollbacks, 0);
    }
  }
  ASSERT_NE(blamed, -1);

  // Only the blamed shard rolled back to v1; the others still serve v2.
  std::vector<int64_t> versions = server.shard_versions();
  for (int32_t s = 0; s < server.num_shards(); ++s) {
    EXPECT_EQ(versions[static_cast<size_t>(s)], s == blamed ? 1 : 2);
  }
  EXPECT_FALSE(server.degraded());
  // And with the fault gone the server answers cleanly again.
  auto recovered = server.RecommendOne(0, 5);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

TEST(ShardedServerTest, BreakerDegradesShardWithoutRollbackTarget) {
  ShardedModelServer server(History(), DrillOptions(2));
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());  // v1, no previous
  ScopedFaultSchedule faults(
      {{FaultPoint::kServeScoreNan, {.trigger_at_hit = 1, .max_fires = -1}}});
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(server.RecommendOne(0, 5).status().code(),
              StatusCode::kInternal);
  }
  faults.Disarm(FaultPoint::kServeScoreNan);
  // One shard went dark (no previous slice → popularity); the tenant is
  // degraded but queries still answer, with the healthy shard on the model.
  EXPECT_TRUE(server.degraded());
  auto got = server.RecommendOne(0, 5);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  auto stats = server.stats();
  EXPECT_EQ(stats.total.breaker_trips, 1);
  EXPECT_EQ(stats.total.rollbacks, 0);
}

// ---------------------------------------------------------------------------
// Tenancy

TEST(ShardedServerTest, TenantsServeIndependentModels) {
  Dataset history = History();
  ShardedModelServer server(history, DrillOptions(3));
  FactorModel alpha = RandomModel(31);
  FactorModel beta = RandomModel(32);
  ASSERT_TRUE(
      server.PublishModel(PublishRequest(alpha).WithTenant("alpha")).ok());
  ASSERT_TRUE(
      server.PublishModel(PublishRequest(beta).WithTenant("beta")).ok());
  EXPECT_EQ(server.tenants(), (std::vector<std::string>{"alpha", "beta"}));

  // Each tenant's answers match a monolithic server of its own model.
  ModelServer mono_alpha(history, DrillOptions(1));
  ModelServer mono_beta(history, DrillOptions(1));
  ASSERT_TRUE(mono_alpha.PublishModel(alpha).ok());
  ASSERT_TRUE(mono_beta.PublishModel(beta).ok());
  for (UserId u : {0, 5, 11}) {
    auto got_a = server.RecommendOne(u, 8, {}, "alpha");
    auto got_b = server.RecommendOne(u, 8, {}, "beta");
    auto want_a = mono_alpha.Recommend(u, 8);
    auto want_b = mono_beta.Recommend(u, 8);
    ASSERT_TRUE(got_a.ok() && got_b.ok() && want_a.ok() && want_b.ok());
    ExpectSameRanking(*got_a, *want_a, "tenant alpha");
    ExpectSameRanking(*got_b, *want_b, "tenant beta");
  }

  // An unknown tenant is degraded (popularity), never an error.
  EXPECT_TRUE(server.degraded("ghost"));
  auto ghost = server.RecommendOne(0, 5, {}, "ghost");
  ASSERT_TRUE(ghost.ok());
  EXPECT_GT(server.stats().total.degraded, 0);
}

TEST(ShardedServerTest, TenantQuotaShedsTheNoisyTenantOnly) {
  ServerOptions options = DrillOptions(2);
  options.num_threads = 1;
  options.per_tenant_quota = 1;
  ShardedModelServer server(History(), options);
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());

  // Park the single worker 20ms per admitted task so tenant "noisy"'s first
  // query is still in flight when its second arrives.
  ScopedFaultSchedule faults(
      {{FaultPoint::kServeQueueStall, {.trigger_at_hit = 1, .max_fires = -1}}});
  std::thread first([&server] {
    auto got = server.RecommendOne(0, 5, {}, "noisy");
    EXPECT_TRUE(got.ok()) << got.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(8));
  auto second = server.RecommendOne(1, 5, {}, "noisy");
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  first.join();
  EXPECT_EQ(server.stats().total.shed, 1);

  // A quiet tenant is admitted even while the noisy one is over quota.
  faults.Disarm(FaultPoint::kServeQueueStall);
  auto quiet = server.RecommendOne(0, 5, {}, "quiet");
  EXPECT_TRUE(quiet.ok()) << quiet.status().ToString();
}

// ---------------------------------------------------------------------------
// Deterministic stats aggregation

TEST(ShardedServerTest, StatsSnapshotRendersDeterministically) {
  ShardedModelServer server(History(), DrillOptions(3));
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());
  for (UserId u = 0; u < 6; ++u) {
    ASSERT_TRUE(server.RecommendOne(u, 5).ok());
  }
  ShardedStatsSnapshot a = server.stats();
  ShardedStatsSnapshot b = server.stats();
  EXPECT_EQ(a.ToString(), b.ToString());
  ASSERT_EQ(a.shards.size(), 3u);
  for (size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].shard, static_cast<int32_t>(s));  // ascending ids
    EXPECT_EQ(a.shards[s].queries, 6);  // broadcast: every shard consulted
  }
  // The rendering carries the total line plus one line per shard.
  const std::string text = a.ToString();
  EXPECT_NE(text.find("queries=6"), std::string::npos);
  EXPECT_NE(text.find("shard=0"), std::string::npos);
  EXPECT_NE(text.find("shard=2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Hot reload under load: the Tsan drill. Query threads scatter across every
// shard while a publisher hot-swaps single shards; every query must come
// back typed (ok or shed), the server must never crash or serve garbage,
// and under -DCMAKE_CXX_FLAGS=-fsanitize=thread the interleavings must be
// race-free.

TEST(ShardedServerTest, PerShardHotReloadUnderLoadStaysConsistent) {
  ServerOptions options = DrillOptions(3);
  options.max_queue_depth = 32;
  ShardedModelServer server(History(), options);
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> ok{0}, shed{0}, unexpected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&server, &stop, &ok, &shed, &unexpected, c] {
      UserId u = c;
      while (!stop.load(std::memory_order_relaxed)) {
        auto got = server.RecommendOne(u, 5);
        if (got.ok()) {
          ok.fetch_add(1);
          // A consistent cut never serves a half-published catalog: scores
          // are finite and the ranking is sorted with the id tie-break.
          for (size_t i = 1; i < got->size(); ++i) {
            const ScoredItem& prev = (*got)[i - 1];
            const ScoredItem& cur = (*got)[i];
            if (prev.score < cur.score ||
                (prev.score == cur.score && prev.item >= cur.item)) {
              unexpected.fetch_add(1);
            }
          }
        } else if (got.status().code() == StatusCode::kUnavailable) {
          shed.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
        u = (u + 3) % kUsers;
      }
    });
  }

  // 30 targeted publishes, round-robin across shards, alternating models.
  for (int p = 0; p < 30; ++p) {
    FactorModel next = RandomModel(static_cast<uint64_t>(100 + (p % 2)));
    ASSERT_TRUE(server
                    .PublishModel(PublishRequest(std::move(next))
                                      .WithShard(p % server.num_shards()))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_FALSE(server.degraded());
  // 1 all-shard + 30 targeted publishes all cleared their gates.
  EXPECT_EQ(server.stats().total.publishes, 31);
  std::vector<int64_t> versions = server.shard_versions();
  for (int64_t v : versions) EXPECT_GT(v, 0);
}

// ---------------------------------------------------------------------------
// Per-shard half-open recovery: a tripped shard's slice is kept aside, and
// after a cooldown it is re-admitted for a probe window scoped to that
// shard's failure domain alone — the other shards never notice.

ServerOptions HalfOpenOptions() {
  ServerOptions options = DrillOptions(3);
  options.breaker.cooldown_queries = 4;
  options.breaker.probe_window = 4;
  return options;
}

// Trips one shard, then counts events by kind in its flight recorder.
int CountShardEvents(const ShardedModelServer& server, int32_t shard,
                     FlightEventKind kind) {
  int n = 0;
  for (const FlightEvent& e :
       server.shard_flight_recorder(shard).Snapshot()) {
    if (e.kind == kind) ++n;
  }
  return n;
}

// Drives the breaker to a trip on whatever shard the NaN fault blames;
// returns that shard. On exit the blamed shard serves v1, the rest v2.
int32_t TripOneShard(ShardedModelServer* server) {
  ScopedFaultSchedule faults(
      {{FaultPoint::kServeScoreNan, {.trigger_at_hit = 1, .max_fires = -1}}});
  for (int i = 0; i < 4; ++i) {
    auto got = server->RecommendOne(0, 5);
    EXPECT_EQ(got.status().code(), StatusCode::kInternal);
  }
  faults.Disarm(FaultPoint::kServeScoreNan);
  int32_t blamed = -1;
  for (const auto& shard : server->stats().shards) {
    if (shard.breaker_trips > 0) blamed = shard.shard;
  }
  EXPECT_NE(blamed, -1) << "no shard tripped";
  return blamed;
}

TEST(ShardedHalfOpenTest, CooldownProbeReinstatesTheHealthySlice) {
  ShardedModelServer server(History(), HalfOpenOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());  // v1
  ASSERT_TRUE(server.PublishModel(RandomModel(2)).ok());  // v2
  const int32_t blamed = TripOneShard(&server);
  EXPECT_EQ(server.shard_versions()[static_cast<size_t>(blamed)], 1);

  // Four clean queries serve out the cooldown on the fallback, then four
  // more fill the probe window against the re-admitted slice. The fault is
  // gone (it was a transient), so the probe passes and v2 is reinstated —
  // with no republish, and without touching the other shards.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(server.RecommendOne(0, 5).ok()) << "clean query " << i;
  }
  std::vector<int64_t> versions = server.shard_versions();
  for (int32_t s = 0; s < server.num_shards(); ++s) {
    EXPECT_EQ(versions[static_cast<size_t>(s)], 2) << "shard " << s;
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.total.probes, 1);
  EXPECT_EQ(stats.total.probe_recoveries, 1);
  EXPECT_EQ(stats.total.probe_failures, 0);
  for (const auto& shard : stats.shards) {
    if (shard.shard == blamed) {
      EXPECT_EQ(shard.probes, 1);
      EXPECT_EQ(shard.probe_recoveries, 1);
    } else {
      EXPECT_EQ(shard.probes, 0);
    }
  }
  EXPECT_EQ(CountShardEvents(server, blamed, FlightEventKind::kProbeStart),
            1);
  EXPECT_EQ(
      CountShardEvents(server, blamed, FlightEventKind::kProbeRecovered), 1);

  // The reinstated shard is a full citizen again: a later trip rolls it
  // back to the restored previous slice, not into degraded mode.
  const int32_t again = TripOneShard(&server);
  EXPECT_EQ(again, blamed);
  EXPECT_EQ(server.shard_versions()[static_cast<size_t>(blamed)], 1);
  EXPECT_FALSE(server.degraded());
}

TEST(ShardedHalfOpenTest, FailedProbeRevertsAndDiscardsTheSlice) {
  ShardedModelServer server(History(), HalfOpenOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());  // v1
  ASSERT_TRUE(server.PublishModel(RandomModel(2)).ok());  // v2
  const int32_t blamed = TripOneShard(&server);

  // Cooldown on the fallback is clean...
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.RecommendOne(0, 5).ok());
  }
  // ...but the probed slice is still broken: every probe query errors, so
  // the window fails and the shard reverts to its fallback for good.
  {
    ScopedFaultSchedule faults(
        {{FaultPoint::kServeScoreNan,
          {.trigger_at_hit = 1, .max_fires = -1}}});
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(server.RecommendOne(0, 5).status().code(),
                StatusCode::kInternal);
    }
  }
  EXPECT_EQ(server.shard_versions()[static_cast<size_t>(blamed)], 1);
  auto stats = server.stats();
  EXPECT_EQ(stats.total.probes, 1);
  EXPECT_EQ(stats.total.probe_recoveries, 0);
  EXPECT_EQ(stats.total.probe_failures, 1);
  EXPECT_EQ(CountShardEvents(server, blamed, FlightEventKind::kProbeFailed),
            1);
  // The discarded slice stays gone: clean traffic does not re-open a probe.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(server.RecommendOne(0, 5).ok());
  }
  EXPECT_EQ(server.stats().total.probes, 1);
  EXPECT_EQ(server.shard_versions()[static_cast<size_t>(blamed)], 1);
}

TEST(ShardedHalfOpenTest, PublishSupersedesAPendingProbe) {
  ShardedModelServer server(History(), HalfOpenOptions());
  ASSERT_TRUE(server.PublishModel(RandomModel(1)).ok());  // v1
  ASSERT_TRUE(server.PublishModel(RandomModel(2)).ok());  // v2
  const int32_t blamed = TripOneShard(&server);

  // A fresh publish lands during the cooldown: the stashed slice is
  // superseded and no probe should ever run against it.
  ASSERT_TRUE(server.PublishModel(RandomModel(3)).ok());  // v3, all shards
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(server.RecommendOne(0, 5).ok());
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.total.probes, 0);
  EXPECT_EQ(stats.total.probe_recoveries, 0);
  EXPECT_EQ(stats.total.probe_failures, 0);
  EXPECT_EQ(CountShardEvents(server, blamed, FlightEventKind::kProbeStart),
            0);
  std::vector<int64_t> versions = server.shard_versions();
  for (int32_t s = 0; s < server.num_shards(); ++s) {
    EXPECT_EQ(versions[static_cast<size_t>(s)], 3) << "shard " << s;
  }
}

}  // namespace
}  // namespace clapf
