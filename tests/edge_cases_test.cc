// Edge-case regression tests that cut across modules: boundary sizes,
// degenerate datasets, extreme parameters.

#include <gtest/gtest.h>

#include <cmath>

#include "clapf/clapf.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(EdgeCaseTest, TopKLargerThanCatalog) {
  FactorModel model = testing::MakeExactModel({{3.0, 1.0, 2.0}});
  auto top = model.TopKForUser(0, 10, nullptr);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 0);
  EXPECT_EQ(top[1].item, 2);
  EXPECT_EQ(top[2].item, 1);
}

TEST(EdgeCaseTest, TopKWithEverythingExcluded) {
  FactorModel model = testing::MakeExactModel({{3.0, 1.0}});
  Dataset all = testing::MakeDataset(1, 2, {{0, 0}, {0, 1}});
  auto top = model.TopKForUser(0, 5, &all);
  EXPECT_TRUE(top.empty());
}

TEST(EdgeCaseTest, SingleUserSingleItemTraining) {
  // The smallest trainable problem: 1 user, 2 items, 1 observation.
  Dataset train = testing::MakeDataset(1, 2, {{0, 0}});
  ClapfOptions opts;
  opts.sgd.num_factors = 2;
  opts.sgd.iterations = 500;
  ClapfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  // The observed item must outrank the unobserved one.
  EXPECT_GT(trainer.model()->Score(0, 0), trainer.model()->Score(0, 1));
}

TEST(EdgeCaseTest, SmoothedRrApproachesHalfForDominantSingleItem) {
  // Eq. (6)'s product runs over every observed k including k = i, whose
  // factor is 1 − σ(0) = 0.5. With one dominant observed item the smoothed
  // RR therefore approaches σ(f)·0.5 = 0.5, not 1.
  Dataset data = testing::MakeDataset(1, 3, {{0, 1}});
  FactorModel model = testing::MakeExactModel({{-50.0, 50.0, -50.0}});
  EXPECT_NEAR(SmoothedReciprocalRank(model, data, 0), 0.5, 1e-9);
}

TEST(EdgeCaseTest, SmoothedApZeroWithoutObservations) {
  Dataset data = testing::MakeDataset(1, 3, {});
  FactorModel model(1, 3, 2);
  EXPECT_DOUBLE_EQ(SmoothedAveragePrecision(model, data, 0), 0.0);
  EXPECT_DOUBLE_EQ(SmoothedReciprocalRank(model, data, 0), 0.0);
}

TEST(EdgeCaseTest, ZeroIterationTrainingLeavesInitialModel) {
  Dataset train = testing::MakeDataset(2, 4, {{0, 0}, {1, 1}});
  BprOptions opts;
  opts.sgd.iterations = 0;
  opts.sgd.num_factors = 3;
  BprTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  // Bias starts at zero under Gaussian init.
  EXPECT_DOUBLE_EQ(trainer.model()->ItemBias(0), 0.0);
}

TEST(EdgeCaseTest, EvaluatorWithEmptyTestSet) {
  Dataset train = testing::MakeDataset(2, 4, {{0, 0}});
  Dataset test = testing::MakeDataset(2, 4, {});
  FactorModel model(2, 4, 2);
  Evaluator eval(&train, &test);
  EvalSummary summary = eval.Evaluate(model, {5});
  EXPECT_EQ(summary.users_evaluated, 0);
  EXPECT_DOUBLE_EQ(summary.map, 0.0);
}

TEST(EdgeCaseTest, RandomWalkZeroRestart) {
  Dataset train = testing::MakeDataset(2, 3, {{0, 0}, {1, 0}, {1, 1}});
  RandomWalkOptions opts;
  opts.restart_probability = 0.0;
  opts.reachable_threshold = 1;
  RandomWalkTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  std::vector<double> scores;
  trainer.ScoreItems(0, &scores);
  EXPECT_GT(scores[1], 0.0);  // reachable through shared item 0
}

TEST(EdgeCaseTest, GeneratorWithOneItemPerUser) {
  SyntheticConfig cfg;
  cfg.num_users = 20;
  cfg.num_items = 40;
  cfg.num_interactions = 20;  // exactly one per user
  cfg.seed = 3;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_interactions(), 20);
  for (UserId u = 0; u < 20; ++u) EXPECT_EQ(data->NumItemsOf(u), 1);
}

TEST(EdgeCaseTest, ClapfLambdaBoundariesTrain) {
  Dataset train = testing::MakeLearnableDataset(20, 30, 5, 7);
  for (double lambda : {0.0, 1.0}) {
    ClapfOptions opts;
    opts.lambda = lambda;
    opts.sgd.num_factors = 4;
    opts.sgd.iterations = 2000;
    ClapfTrainer trainer(opts);
    EXPECT_TRUE(trainer.Train(train).ok()) << "lambda=" << lambda;
  }
}

TEST(EdgeCaseTest, WmfOnSingleInteraction) {
  Dataset train = testing::MakeDataset(1, 2, {{0, 0}});
  WmfOptions opts;
  opts.num_factors = 2;
  opts.sweeps = 3;
  WmfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  EXPECT_GT(trainer.model()->Score(0, 0), trainer.model()->Score(0, 1));
}

TEST(EdgeCaseTest, RecommenderOnFullyColdDataset) {
  Dataset history = testing::MakeDataset(2, 3, {});
  FactorModel model(2, 3, 2);
  auto rec = Recommender::Create(std::move(model), history);
  ASSERT_TRUE(rec.ok());
  auto top = rec->Recommend(0, 2, QueryOptions{});
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 2u);  // popularity fallback over all-zero counts
}

}  // namespace
}  // namespace clapf
