// End-to-end telemetry regression: trains BPR and CLAPF-MAP for exactly
// three epochs on a fixed synthetic dataset with num_threads = 1 (the
// bit-reproducible serial path) and requires the emitted training metrics —
// epoch loss, update counts, sampler rebuild/draw statistics — to match a
// checked-in snapshot byte-for-byte.
//
// If an intentional change shifts the telemetry (new metric, changed loss
// sampling, different sampler draw sequence), regenerate the goldens with
//
//   CLAPF_UPDATE_GOLDEN=1 ctest -R TelemetryGolden
//
// and review the diff like any other behavioral change.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "clapf/baselines/bpr.h"
#include "clapf/core/clapf_trainer.h"
#include "clapf/data/synthetic.h"
#include "clapf/obs/exporter.h"
#include "clapf/obs/metrics.h"

#ifndef CLAPF_TEST_GOLDEN_DIR
#error "CLAPF_TEST_GOLDEN_DIR must be defined by the build"
#endif

namespace clapf {
namespace {

// The fixed training workload: small enough to train in milliseconds, big
// enough that every instrumented path (epoch boundaries, loss sampling, DSS
// rebuilds) fires many times.
Dataset MakeGoldenDataset() {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 40;
  cfg.num_interactions = 600;
  cfg.seed = 42;
  return *GenerateSynthetic(cfg);
}

// Keeps only the training-telemetry series (sgd.* and sampler.*) from a
// Prometheus export; serving/eval metrics are absent here anyway, but the
// filter makes the goldens robust to unrelated registry additions.
std::string FilterTrainingMetrics(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    std::string name = line;
    if (name.rfind("# TYPE ", 0) == 0) name = name.substr(7);
    if (name.rfind("clapf_sgd_", 0) == 0 ||
        name.rfind("clapf_sampler_", 0) == 0) {
      out << line << '\n';
    }
  }
  return out.str();
}

bool UpdateGoldenRequested() {
  const char* env = std::getenv("CLAPF_UPDATE_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

void CompareOrBless(const std::string& golden_name,
                    const std::string& actual) {
  const std::string path =
      std::string(CLAPF_TEST_GOLDEN_DIR) + "/" + golden_name;
  if (UpdateGoldenRequested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — generate it with CLAPF_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "telemetry drifted from " << path
      << " — if intentional, regenerate with CLAPF_UPDATE_GOLDEN=1";
}

TEST(TelemetryGoldenTest, BprUniformThreeEpochs) {
  Dataset train = MakeGoldenDataset();
  MetricsRegistry registry;

  BprOptions options;
  options.sgd.iterations = 3 * train.num_interactions();  // 3 exact epochs
  options.sgd.num_threads = 1;
  options.sgd.seed = 7;
  options.sgd.metrics = &registry;
  BprTrainer trainer(options);
  ASSERT_TRUE(trainer.Train(train).ok());

  const std::string actual =
      FilterTrainingMetrics(ExportPrometheusText(registry));
  ASSERT_FALSE(actual.empty());
  EXPECT_NE(actual.find("clapf_sgd_epochs_total 3\n"), std::string::npos);
  CompareOrBless("telemetry_bpr.txt", actual);
}

TEST(TelemetryGoldenTest, ClapfMapDssThreeEpochs) {
  Dataset train = MakeGoldenDataset();
  MetricsRegistry registry;

  ClapfOptions options;  // defaults: CLAPF-MAP variant
  options.sampler = ClapfSamplerKind::kDss;
  options.sgd.iterations = 3 * train.num_interactions();  // 3 exact epochs
  options.sgd.num_threads = 1;
  options.sgd.seed = 7;
  options.sgd.metrics = &registry;
  ClapfTrainer trainer(options);
  ASSERT_TRUE(trainer.Train(train).ok());

  const std::string actual =
      FilterTrainingMetrics(ExportPrometheusText(registry));
  ASSERT_FALSE(actual.empty());
  EXPECT_NE(actual.find("clapf_sgd_epochs_total 3\n"), std::string::npos);
  // The DSS sampler must have reported draws and at least one rebuild.
  EXPECT_NE(actual.find("clapf_sampler_dss_draws_total"), std::string::npos);
  EXPECT_NE(actual.find("clapf_sampler_dss_rebuilds_total"),
            std::string::npos);
  CompareOrBless("telemetry_clapf_map.txt", actual);
}

// The same workload run twice in one process must produce byte-identical
// telemetry — the determinism claim the goldens rest on.
TEST(TelemetryGoldenTest, TelemetryIsDeterministicWithinProcess) {
  Dataset train = MakeGoldenDataset();
  std::string exports[2];
  for (int run = 0; run < 2; ++run) {
    MetricsRegistry registry;
    BprOptions options;
    options.sgd.iterations = 3 * train.num_interactions();
    options.sgd.num_threads = 1;
    options.sgd.seed = 7;
    options.sgd.metrics = &registry;
    BprTrainer trainer(options);
    ASSERT_TRUE(trainer.Train(train).ok());
    exports[run] = FilterTrainingMetrics(ExportPrometheusText(registry));
  }
  EXPECT_EQ(exports[0], exports[1]);
}

}  // namespace
}  // namespace clapf
