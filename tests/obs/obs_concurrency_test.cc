// Concurrency stress for the metrics registry — the TSan target. Eight
// threads hammer shared counters, gauges, and histograms (including
// registration races through GetCounter/GetHistogram) while a reader thread
// snapshots and exports concurrently. Assertions check the exact final
// totals; under ThreadSanitizer this also proves the relaxed-atomic shard
// design is race-free.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "clapf/obs/exporter.h"
#include "clapf/obs/metrics.h"
#include "clapf/obs/trace_span.h"

namespace clapf {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20000;

TEST(ObsConcurrencyTest, ConcurrentCountersAreExact) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve inside the thread: registration itself must be thread-safe.
      Counter* c = registry.GetCounter("stress.ops_total");
      for (int i = 0; i < kOpsPerThread; ++i) c->Inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.GetCounter("stress.ops_total")->Value(),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsConcurrencyTest, ConcurrentHistogramCountsAreExact) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {10.0, 100.0, 1000.0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &bounds, t] {
      Histogram* h = registry.GetHistogram("stress.latency_us", bounds);
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Deterministic per-thread value stream covering all buckets.
        h->Record(static_cast<double>((t * 31 + i * 7) % 2000));
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot snap =
      registry.GetHistogram("stress.latency_us", bounds)->Snapshot();
  EXPECT_EQ(snap.count, static_cast<int64_t>(kThreads) * kOpsPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsConcurrencyTest, SnapshotWhileWritingIsSafe) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      Counter* c = registry.GetCounter("mixed.ops_total");
      Gauge* g = registry.GetGauge("mixed.gauge");
      Histogram* h =
          registry.GetHistogram("mixed.latency_us", LatencyBucketsUs());
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c->Inc();
        g->Set(static_cast<double>(t));
        {
          TraceSpan span(h);
        }
        ++i;
      }
      // Leave a per-thread record of how many increments landed.
      registry.GetCounter("mixed.done_" + std::to_string(t) + "_total")
          ->Inc(i);
    });
  }

  // Reader: snapshot + export concurrently with the writers. The values
  // observed are torn-in-time but must always be internally consistent
  // (monotone counter, parseable exports).
  int64_t last_counter = 0;
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<MetricSnapshot> snap = registry.Snapshot();
    const std::string text = ExportPrometheusText(snap);
    const std::string json = ExportJson(snap);
    EXPECT_FALSE(json.empty());
    for (const MetricSnapshot& m : snap) {
      if (m.name == "mixed.ops_total") {
        EXPECT_GE(m.counter, last_counter);
        last_counter = m.counter;
      }
    }
    (void)text;
  }
  stop.store(true);
  for (auto& th : writers) th.join();

  // After joining, the shared counter equals the sum of per-thread tallies.
  int64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected +=
        registry.GetCounter("mixed.done_" + std::to_string(t) + "_total")
            ->Value();
  }
  EXPECT_EQ(registry.GetCounter("mixed.ops_total")->Value(), expected);
}

TEST(ObsConcurrencyTest, RegistrationRaceYieldsOneEntry) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  std::vector<Counter*> handles(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &handles, t] {
      handles[static_cast<size_t>(t)] = registry.GetCounter("race.one_total");
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.size(), 1u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[static_cast<size_t>(t)], handles[0]);
  }
}

}  // namespace
}  // namespace clapf
