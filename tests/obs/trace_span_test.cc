// TraceSpan semantics: records exactly once, Stop is idempotent, Cancel
// suppresses the recording, and a null histogram is inert.

#include "clapf/obs/trace_span.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "clapf/obs/metrics.h"

namespace clapf {
namespace {

TEST(TraceSpanTest, RecordsOnceAtScopeExit) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("span.latency_us", LatencyBucketsUs());
  {
    TraceSpan span(h);
  }
  EXPECT_EQ(h->Snapshot().count, 1);
}

TEST(TraceSpanTest, StopIsIdempotentAndDisarmsDestructor) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("span.latency_us", LatencyBucketsUs());
  {
    TraceSpan span(h);
    span.Stop();
    span.Stop();  // second Stop must not record again
  }  // neither must the destructor
  EXPECT_EQ(h->Snapshot().count, 1);
}

TEST(TraceSpanTest, CancelSuppressesRecording) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("span.latency_us", LatencyBucketsUs());
  {
    TraceSpan span(h);
    span.Cancel();
    span.Stop();  // Stop after Cancel is a no-op too
  }
  EXPECT_EQ(h->Snapshot().count, 0);
}

TEST(TraceSpanTest, NullHistogramIsInert) {
  TraceSpan span(nullptr);
  span.Stop();
  span.Cancel();
  EXPECT_GE(span.ElapsedMicros(), 0.0);
  // Destructor must not crash; nothing else to assert.
}

TEST(TraceSpanTest, MeasuresElapsedTime) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("span.latency_us", LatencyBucketsUs());
  {
    TraceSpan span(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 1);
  // Slept >= 2ms, so the recorded value must be >= 2000us.
  EXPECT_GE(snap.sum, 2000.0);
}

TEST(TraceSpanTest, ElapsedMicrosIsMonotone) {
  TraceSpan span(nullptr);
  const double a = span.ElapsedMicros();
  const double b = span.ElapsedMicros();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace clapf
