// MetricsRegistry unit + property tests: counter/gauge/histogram semantics,
// handle identity, snapshot determinism, and the shard-merge invariants the
// exporters and golden tests rely on.

#include "clapf/obs/metrics.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "clapf/util/random.h"

namespace clapf {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter_total");
  EXPECT_EQ(c->Value(), 0);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->Value(), 42);
  c->Reset();
  EXPECT_EQ(c->Value(), 0);
}

TEST(CounterTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.counter_total");
  Counter* b = registry.GetCounter("test.counter_total");
  EXPECT_EQ(a, b);
  a->Inc(7);
  EXPECT_EQ(b->Value(), 7);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(GaugeTest, SetOverwrites) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  EXPECT_EQ(g->Value(), 0.0);
  g->Set(3.5);
  g->Set(-1.25);
  EXPECT_EQ(g->Value(), -1.25);
  g->Reset();
  EXPECT_EQ(g->Value(), 0.0);
}

TEST(HistogramTest, BucketSemanticsAreLeInclusive) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {1.0, 2.0, 5.0};
  Histogram* h = registry.GetHistogram("test.hist", bounds);
  h->Record(0.5);  // <= 1       -> bucket 0
  h->Record(1.0);  // == bound 0 -> bucket 0 (le-inclusive)
  h->Record(1.5);  // <= 2       -> bucket 1
  h->Record(5.0);  // == bound 2 -> bucket 2
  h->Record(9.0);  // > 5        -> overflow
  HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 5.0 + 9.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {1.0, 2.0};
  Histogram* h = registry.GetHistogram("test.hist", bounds);
  h->Record(0.5);
  h->Record(10.0);
  h->Reset();
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0.0);
  for (int64_t c : snap.counts) EXPECT_EQ(c, 0);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {1.0};
  registry.GetCounter("zebra.count_total");
  registry.GetGauge("alpha.gauge");
  registry.GetHistogram("middle.hist", bounds);
  std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha.gauge");
  EXPECT_EQ(snap[1].name, "middle.hist");
  EXPECT_EQ(snap[2].name, "zebra.count_total");
}

TEST(RegistryTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {1.0};
  registry.GetCounter("a_total")->Inc(5);
  registry.GetGauge("b")->Set(2.0);
  registry.GetHistogram("c", bounds)->Record(0.5);
  registry.ResetValues();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.GetCounter("a_total")->Value(), 0);
  EXPECT_EQ(registry.GetGauge("b")->Value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("c", bounds)->Snapshot().count, 0);
}

TEST(RegistryTest, DefaultIsASingleton) {
  MetricsRegistry* a = &MetricsRegistry::Default();
  MetricsRegistry* b = &MetricsRegistry::Default();
  EXPECT_EQ(a, b);
}

// Property: for any sequence of recorded values, per-bucket counts sum to
// the total count, and the bucket assignment matches a reference
// implementation computed directly from the bounds.
TEST(HistogramPropertyTest, BucketCountsSumToTotalAndMatchReference) {
  MetricsRegistry registry;
  const std::span<const double> bounds = LatencyBucketsUs();
  Histogram* h = registry.GetHistogram("prop.hist", bounds);

  Rng rng(20260805);
  constexpr int kSamples = 20000;
  std::vector<int64_t> reference(bounds.size() + 1, 0);
  double ref_sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    // Log-uniform over ~7 decades so every bucket (and the overflow) is hit.
    const double v = std::exp(rng.NextDouble() * 16.0);
    h->Record(v);
    ref_sum += v;
    size_t b = 0;
    while (b < bounds.size() && v > bounds[b]) ++b;
    ++reference[b];
  }

  HistogramSnapshot snap = h->Snapshot();
  int64_t bucket_total = 0;
  for (size_t b = 0; b < snap.counts.size(); ++b) {
    EXPECT_EQ(snap.counts[b], reference[b]) << "bucket " << b;
    bucket_total += snap.counts[b];
  }
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.count, kSamples);
  EXPECT_NEAR(snap.sum, ref_sum, std::abs(ref_sum) * 1e-12);
}

// Property: recording a value set sharded across 8 threads yields exactly
// the per-bucket counts of recording it serially — the shard merge loses
// nothing. (The sum is compared with a tolerance: atomic adds from
// different threads reassociate the floating-point accumulation.)
TEST(HistogramPropertyTest, ShardedRecordingEqualsSerial) {
  const std::vector<double> bounds = {1.0, 10.0, 100.0, 1000.0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  // Pre-generate one deterministic value set.
  std::vector<double> values;
  values.reserve(kThreads * kPerThread);
  Rng rng(77);
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    values.push_back(std::exp(rng.NextDouble() * 8.0));
  }

  MetricsRegistry serial_registry;
  Histogram* serial = serial_registry.GetHistogram("h", bounds);
  for (double v : values) serial->Record(v);

  MetricsRegistry sharded_registry;
  Histogram* sharded = sharded_registry.GetHistogram("h", bounds);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&values, sharded, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sharded->Record(values[static_cast<size_t>(t * kPerThread + i)]);
      }
    });
  }
  for (auto& th : threads) th.join();

  HistogramSnapshot a = serial->Snapshot();
  HistogramSnapshot b = sharded->Snapshot();
  ASSERT_EQ(a.counts.size(), b.counts.size());
  for (size_t i = 0; i < a.counts.size(); ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << "bucket " << i;
  }
  EXPECT_EQ(a.count, b.count);
  EXPECT_NEAR(a.sum, b.sum, std::abs(a.sum) * 1e-9);
}

// Property: counters sharded across threads merge to the exact serial total.
TEST(CounterPropertyTest, ShardedIncrementsMergeExactly) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("prop.counter_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), static_cast<int64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace clapf
