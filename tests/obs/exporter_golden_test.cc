// Golden tests pinning the exact exporter output byte-for-byte. If one of
// these fails, the export format changed — that is a breaking change for
// anything scraping the files, so update the goldens deliberately.

#include "clapf/obs/exporter.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "clapf/obs/metrics.h"

namespace clapf {
namespace {

TEST(FormatMetricValueTest, ShortestRoundTrip) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(1.0), "1");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(0.5), "0.5");
  EXPECT_EQ(FormatMetricValue(0.1), "0.1");
  EXPECT_EQ(FormatMetricValue(-1.25), "-1.25");
  EXPECT_EQ(FormatMetricValue(1e6), "1e+06");
}

TEST(FormatMetricValueTest, NonFinite) {
  EXPECT_EQ(FormatMetricValue(std::numeric_limits<double>::quiet_NaN()),
            "nan");
  EXPECT_EQ(FormatMetricValue(std::numeric_limits<double>::infinity()),
            "inf");
  EXPECT_EQ(FormatMetricValue(-std::numeric_limits<double>::infinity()),
            "-inf");
}

// One registry covering all three metric kinds, with values chosen so every
// formatting path (integer counter, fractional gauge, fractional bucket
// bound, cumulative bucket counts, overflow bucket) appears in the output.
void PopulateRegistry(MetricsRegistry* registry) {
  registry->GetCounter("sgd.updates_total")->Inc(42);
  registry->GetGauge("sgd.epoch_loss")->Set(0.5);
  const std::vector<double> bounds = {1.0, 2.5, 10.0};
  Histogram* h = registry->GetHistogram("serving.query.latency_us", bounds);
  h->Record(0.5);    // bucket le="1"
  h->Record(2.5);    // bucket le="2.5" (inclusive)
  h->Record(100.0);  // overflow
  // The ANN shortlist-depth family as the serving layer registers it:
  // power-of-two draw-depth buckets, one recording per ANN query.
  Histogram* s =
      registry->GetHistogram("ann.shortlist_size", DrawDepthBuckets());
  s->Record(3.0);    // bucket le="4"
  s->Record(200.0);  // bucket le="256"
}

// Snapshot order is sorted by raw name: "ann..." < "serving..." < "sgd...".
constexpr char kGoldenPrometheus[] =
    "# TYPE clapf_ann_shortlist_size histogram\n"
    "clapf_ann_shortlist_size_bucket{le=\"1\"} 0\n"
    "clapf_ann_shortlist_size_bucket{le=\"2\"} 0\n"
    "clapf_ann_shortlist_size_bucket{le=\"4\"} 1\n"
    "clapf_ann_shortlist_size_bucket{le=\"8\"} 1\n"
    "clapf_ann_shortlist_size_bucket{le=\"16\"} 1\n"
    "clapf_ann_shortlist_size_bucket{le=\"32\"} 1\n"
    "clapf_ann_shortlist_size_bucket{le=\"64\"} 1\n"
    "clapf_ann_shortlist_size_bucket{le=\"128\"} 1\n"
    "clapf_ann_shortlist_size_bucket{le=\"256\"} 2\n"
    "clapf_ann_shortlist_size_bucket{le=\"512\"} 2\n"
    "clapf_ann_shortlist_size_bucket{le=\"1024\"} 2\n"
    "clapf_ann_shortlist_size_bucket{le=\"2048\"} 2\n"
    "clapf_ann_shortlist_size_bucket{le=\"4096\"} 2\n"
    "clapf_ann_shortlist_size_bucket{le=\"8192\"} 2\n"
    "clapf_ann_shortlist_size_bucket{le=\"16384\"} 2\n"
    "clapf_ann_shortlist_size_bucket{le=\"32768\"} 2\n"
    "clapf_ann_shortlist_size_bucket{le=\"65536\"} 2\n"
    "clapf_ann_shortlist_size_bucket{le=\"+Inf\"} 2\n"
    "clapf_ann_shortlist_size_sum 203\n"
    "clapf_ann_shortlist_size_count 2\n"
    "# TYPE clapf_serving_query_latency_us histogram\n"
    "clapf_serving_query_latency_us_bucket{le=\"1\"} 1\n"
    "clapf_serving_query_latency_us_bucket{le=\"2.5\"} 2\n"
    "clapf_serving_query_latency_us_bucket{le=\"10\"} 2\n"
    "clapf_serving_query_latency_us_bucket{le=\"+Inf\"} 3\n"
    "clapf_serving_query_latency_us_sum 103\n"
    "clapf_serving_query_latency_us_count 3\n"
    "# TYPE clapf_sgd_epoch_loss gauge\n"
    "clapf_sgd_epoch_loss 0.5\n"
    "# TYPE clapf_sgd_updates_total counter\n"
    "clapf_sgd_updates_total 42\n";

constexpr char kGoldenJson[] =
    "{\"counters\":{\"sgd.updates_total\":42},"
    "\"gauges\":{\"sgd.epoch_loss\":0.5},"
    "\"histograms\":{\"ann.shortlist_size\":{"
    "\"buckets\":[{\"le\":1,\"count\":0},{\"le\":2,\"count\":0},"
    "{\"le\":4,\"count\":1},{\"le\":8,\"count\":0},"
    "{\"le\":16,\"count\":0},{\"le\":32,\"count\":0},"
    "{\"le\":64,\"count\":0},{\"le\":128,\"count\":0},"
    "{\"le\":256,\"count\":1},{\"le\":512,\"count\":0},"
    "{\"le\":1024,\"count\":0},{\"le\":2048,\"count\":0},"
    "{\"le\":4096,\"count\":0},{\"le\":8192,\"count\":0},"
    "{\"le\":16384,\"count\":0},{\"le\":32768,\"count\":0},"
    "{\"le\":65536,\"count\":0},{\"le\":\"+Inf\",\"count\":0}],"
    "\"count\":2,\"sum\":203},"
    "\"serving.query.latency_us\":{"
    "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2.5,\"count\":1},"
    "{\"le\":10,\"count\":0},{\"le\":\"+Inf\",\"count\":1}],"
    "\"count\":3,\"sum\":103}}}";

TEST(ExporterGoldenTest, PrometheusTextMatchesExactly) {
  MetricsRegistry registry;
  PopulateRegistry(&registry);
  EXPECT_EQ(ExportPrometheusText(registry), kGoldenPrometheus);
}

TEST(ExporterGoldenTest, JsonMatchesExactly) {
  MetricsRegistry registry;
  PopulateRegistry(&registry);
  EXPECT_EQ(ExportJson(registry), kGoldenJson);
}

TEST(ExporterGoldenTest, ExportIsDeterministicAcrossCalls) {
  MetricsRegistry registry;
  PopulateRegistry(&registry);
  EXPECT_EQ(ExportPrometheusText(registry), ExportPrometheusText(registry));
  EXPECT_EQ(ExportJson(registry), ExportJson(registry));
}

TEST(ExporterGoldenTest, EmptyRegistryExports) {
  MetricsRegistry registry;
  EXPECT_EQ(ExportPrometheusText(registry), "");
  EXPECT_EQ(ExportJson(registry),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(ExporterGoldenTest, WriteMetricsJsonFileRoundTrips) {
  MetricsRegistry registry;
  PopulateRegistry(&registry);
  const std::string path = ::testing::TempDir() + "/metrics_dump.json";
  ASSERT_TRUE(WriteMetricsJsonFile(registry, path).ok());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), std::string(kGoldenJson) + "\n");
}

}  // namespace
}  // namespace clapf
