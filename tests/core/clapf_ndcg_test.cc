#include <gtest/gtest.h>

#include "clapf/core/clapf_trainer.h"
#include "clapf/core/smoothing.h"
#include "clapf/core/trainer_factory.h"
#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TrainTestSplit LearnableSplit(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_interactions = 2400;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = seed;
  return SplitRandom(*GenerateSynthetic(cfg), 0.5, seed + 1);
}

TEST(ClapfNdcgTest, NameReflectsVariant) {
  ClapfOptions opts;
  opts.variant = ClapfVariant::kNdcg;
  EXPECT_EQ(ClapfTrainer(opts).name(), "CLAPF-NDCG");
  opts.sampler = ClapfSamplerKind::kDss;
  EXPECT_EQ(ClapfTrainer(opts).name(), "CLAPF+-NDCG");
}

TEST(ClapfNdcgTest, MarginSharesMrrForm) {
  EXPECT_DOUBLE_EQ(
      ClapfMargin(ClapfVariant::kNdcg, 0.3, 1.0, 2.0, -0.5),
      ClapfMargin(ClapfVariant::kMrr, 0.3, 1.0, 2.0, -0.5));
}

TEST(ClapfNdcgTest, LearnsAboveChance) {
  auto split = LearnableSplit(1001);
  ClapfOptions opts;
  opts.variant = ClapfVariant::kNdcg;
  opts.lambda = 0.2;
  opts.sgd.num_factors = 8;
  opts.sgd.iterations = 30000;
  opts.sgd.seed = 5;
  ClapfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.58);
}

TEST(ClapfNdcgTest, FactorySupportsExtensionMethods) {
  auto extended = AllMethodsWithExtensions();
  EXPECT_EQ(extended.size(), AllMethods().size() + 2);
  EXPECT_TRUE(ParseMethodName("CLAPF-NDCG").ok());
  EXPECT_TRUE(ParseMethodName("gbpr").ok());

  MethodConfig config;
  auto ndcg = MakeTrainer(MethodKind::kClapfNdcg, config);
  EXPECT_EQ(ndcg->name(), "CLAPF-NDCG");
  auto gbpr = MakeTrainer(MethodKind::kGbpr, config);
  EXPECT_EQ(gbpr->name(), "GBPR");
}

TEST(ClapfNdcgTest, ExtensionMethodsTrainViaFactory) {
  auto split = LearnableSplit(1003);
  MethodConfig config;
  config.sgd.num_factors = 4;
  config.sgd.iterations = 3000;
  for (MethodKind kind : {MethodKind::kClapfNdcg, MethodKind::kGbpr}) {
    auto trainer = MakeTrainer(kind, config);
    ASSERT_TRUE(trainer->Train(split.train).ok()) << MethodName(kind);
    Evaluator eval(&split.train, &split.test);
    auto summary = eval.Evaluate(*trainer, {5});
    EXPECT_GT(summary.users_evaluated, 0);
  }
}

TEST(ClapfNdcgTest, DssOrientationMatchesMrr) {
  // The NDCG variant samples its companion from the top, like MRR.
  Dataset ds = *[] {
    SyntheticConfig cfg;
    cfg.num_users = 30;
    cfg.num_items = 120;
    cfg.num_interactions = 600;
    cfg.seed = 21;
    return GenerateSynthetic(cfg);
  }();
  FactorModel model(ds.num_users(), ds.num_items(), 4);
  Rng rng(3);
  model.InitGaussian(rng, 0.5);

  DssOptions ndcg_opts;
  ndcg_opts.variant = ClapfVariant::kNdcg;
  DssOptions map_opts;
  map_opts.variant = ClapfVariant::kMap;
  DssSampler ndcg_sampler(&ds, &model, ndcg_opts, 13);
  DssSampler map_sampler(&ds, &model, map_opts, 13);

  double ndcg_sum = 0.0, map_sum = 0.0;
  const int draws = 3000;
  for (int n = 0; n < draws; ++n) {
    Triple tn = ndcg_sampler.Sample();
    Triple tm = map_sampler.Sample();
    ndcg_sum += model.Score(tn.u, tn.k);
    map_sum += model.Score(tm.u, tm.k);
  }
  EXPECT_GT(ndcg_sum / draws, map_sum / draws);
}

}  // namespace
}  // namespace clapf
