// Tests for the shared SGD execution engine.
//
// The serial golden tests pin the exact doubles the pre-executor trainer
// loops produced on a fixed synthetic dataset: the num_threads=1 path is a
// compatibility contract, not an approximation, so these use EXPECT_EQ on
// bit-exact values. The parallel tests assert statistical equivalence
// (HogWild runs are not bit-reproducible) plus the executor's coordination
// behaviour: barrier checkpoints and guard halts.

#include "clapf/core/sgd_executor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "clapf/baselines/bpr.h"
#include "clapf/baselines/climf.h"
#include "clapf/baselines/mpr.h"
#include "clapf/core/clapf_trainer.h"
#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "clapf/util/fs.h"

namespace clapf {
namespace {

Dataset GoldenData() {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_interactions = 2400;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = 42;
  return *GenerateSynthetic(cfg);
}

SgdOptions GoldenSgd() {
  SgdOptions sgd;
  sgd.num_factors = 8;
  sgd.iterations = 20000;
  sgd.learning_rate = 0.05;
  sgd.seed = 7;
  return sgd;
}

struct ModelDigest {
  double u00, v00, b0, sum_u, sum_v, sum_b;
};

ModelDigest Digest(const FactorModel& m) {
  ModelDigest d{m.UserFactors(0)[0], m.ItemFactors(0)[0], m.ItemBias(0),
                0.0, 0.0, 0.0};
  for (double x : m.user_factor_data()) d.sum_u += x;
  for (double x : m.item_factor_data()) d.sum_v += x;
  for (double x : m.item_bias_data()) d.sum_b += x;
  return d;
}

// --- Serial bit-identity against pre-executor golden values -----------------

TEST(SgdExecutorGolden, BprSerialMatchesPreRefactorBitForBit) {
  Dataset data = GoldenData();
  BprOptions o;
  o.sgd = GoldenSgd();
  BprTrainer t(o);
  ASSERT_TRUE(t.Train(data).ok());
  ModelDigest d = Digest(*t.model());
  EXPECT_EQ(d.u00, 0.028710839393284324);
  EXPECT_EQ(d.v00, -0.0031423750526448847);
  EXPECT_EQ(d.b0, -0.79234736590742849);
  EXPECT_EQ(d.sum_u, 0.41332834917795014);
  EXPECT_EQ(d.sum_v, -0.32214138322982161);
  EXPECT_EQ(d.sum_b, -2.2660173649485786);
}

TEST(SgdExecutorGolden, ClapfSerialMatchesPreRefactorBitForBit) {
  Dataset data = GoldenData();
  ClapfOptions o;
  o.sgd = GoldenSgd();
  o.lambda = 0.4;
  ClapfTrainer t(o);
  ASSERT_TRUE(t.Train(data).ok());
  ModelDigest d = Digest(*t.model());
  EXPECT_EQ(d.u00, -0.0035764114004317236);
  EXPECT_EQ(d.v00, 0.0089574420802860568);
  EXPECT_EQ(d.b0, -0.83158194913875472);
  EXPECT_EQ(d.sum_u, 0.42840595466144343);
  EXPECT_EQ(d.sum_v, -0.32177632962122543);
  EXPECT_EQ(d.sum_b, -7.4608538712410226);
}

TEST(SgdExecutorGolden, MprSerialMatchesPreRefactorBitForBit) {
  Dataset data = GoldenData();
  MprOptions o;
  o.sgd = GoldenSgd();
  MprTrainer t(o);
  ASSERT_TRUE(t.Train(data).ok());
  ModelDigest d = Digest(*t.model());
  EXPECT_EQ(d.u00, 0.0050980262260215169);
  EXPECT_EQ(d.v00, 0.0070860456378481511);
  EXPECT_EQ(d.b0, -0.98240011244226089);
  EXPECT_EQ(d.sum_u, 0.5311565869638728);
  EXPECT_EQ(d.sum_v, -0.29503488267151734);
  EXPECT_EQ(d.sum_b, -5.2140470032189681);
}

TEST(SgdExecutorGolden, ClimfSerialMatchesPreRefactorBitForBit) {
  Dataset data = GoldenData();
  ClimfOptions o;
  o.sgd = GoldenSgd();
  o.epochs = 10;
  ClimfTrainer t(o);
  ASSERT_TRUE(t.Train(data).ok());
  ModelDigest d = Digest(*t.model());
  EXPECT_EQ(d.u00, -0.0011495436407867397);
  EXPECT_EQ(d.v00, 0.0061774143027270439);
  EXPECT_EQ(d.b0, 0.123023382731365);
  EXPECT_EQ(d.sum_u, -0.21985533100780746);
  EXPECT_EQ(d.sum_v, -0.36405899841737993);
  EXPECT_EQ(d.sum_b, 13.517989602256419);
}

// --- Parallel statistical equivalence ---------------------------------------

TEST(SgdExecutorParallel, BprFourThreadsReachesSerialQuality) {
  Dataset data = GoldenData();
  TrainTestSplit split = SplitRandom(data, 0.5, 13);
  Evaluator eval(&split.train, &split.test);

  BprOptions serial;
  serial.sgd = GoldenSgd();
  BprTrainer st(serial);
  ASSERT_TRUE(st.Train(split.train).ok());
  const double serial_auc = eval.Evaluate(*st.model(), {5}).auc;

  BprOptions par = serial;
  par.sgd.num_threads = 4;
  BprTrainer pt(par);
  ASSERT_TRUE(pt.Train(split.train).ok());
  const double par_auc = eval.Evaluate(*pt.model(), {5}).auc;

  // HogWild with a handful of threads on this tiny problem should land
  // within noise of the serial optimum, and both must have actually learned.
  EXPECT_GT(serial_auc, 0.55);
  EXPECT_GT(par_auc, 0.55);
  EXPECT_NEAR(par_auc, serial_auc, 0.05);
}

TEST(SgdExecutorParallel, ClapfTwoThreadsTrainsAndReportsLoss) {
  Dataset data = GoldenData();
  ClapfOptions o;
  o.sgd = GoldenSgd();
  o.sgd.iterations = 5000;
  o.sgd.num_threads = 2;
  ClapfTrainer t(o);
  ASSERT_TRUE(t.Train(data).ok());
  // Both workers' loss slots must contribute: 5000 steps of -ln σ(·) give a
  // strictly positive finite average.
  EXPECT_GT(t.last_average_loss(), 0.0);
  EXPECT_TRUE(std::isfinite(t.last_average_loss()));
}

TEST(SgdExecutorParallel, InvalidThreadCountIsRejected) {
  Dataset data = GoldenData();
  BprOptions o;
  o.sgd = GoldenSgd();
  o.sgd.num_threads = 0;
  BprTrainer t(o);
  Status s = t.Train(data);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// --- Parallel checkpointing --------------------------------------------------

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SgdExecutorParallel, CheckpointsAtBarriersAndResumes) {
  ScopedTempDir dir("clapf_parallel_ckpt_test");
  Dataset data = GoldenData();

  ClapfOptions o;
  o.sgd = GoldenSgd();
  o.sgd.iterations = 10000;
  o.sgd.num_threads = 2;
  o.checkpoint.dir = dir.path();
  o.checkpoint.interval = 5000;
  o.checkpoint.keep_last = 3;

  {
    ClapfTrainer t(o);
    ASSERT_TRUE(t.Train(data).ok());
  }
  CheckpointManager mgr(o.checkpoint);
  ASSERT_TRUE(mgr.Init().ok());
  auto latest = mgr.LoadLatest();
  ASSERT_TRUE(latest.ok());
  // Parallel mode checkpoints at worker barriers, which the executor aligns
  // with the checkpoint interval, so the final snapshot lands exactly on T.
  EXPECT_EQ(latest->state.iteration, 10000);

  // A longer run resumes from that snapshot instead of restarting.
  o.sgd.iterations = 20000;
  o.checkpoint.resume = true;
  {
    ClapfTrainer t(o);
    ASSERT_TRUE(t.Train(data).ok());
    EXPECT_GT(t.last_average_loss(), 0.0);
  }
  // LoadLatest walks the entry list cached at Init(); re-scan to see the
  // snapshots the resumed run appended (and its pruning of the oldest).
  ASSERT_TRUE(mgr.Init().ok());
  auto resumed = mgr.LoadLatest();
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->state.iteration, 20000);
  // The resumed run continued the crashed run's loss statistics.
  EXPECT_GE(resumed->state.loss_count, 20000);
}

// --- Divergence guard through the parallel path ------------------------------

TEST(SgdExecutorParallel, GuardHaltStopsAllWorkersAtBarrier) {
  Dataset data = GoldenData();
  BprOptions o;
  o.sgd = GoldenSgd();
  o.sgd.num_threads = 2;
  o.sgd.divergence.policy = DivergencePolicy::kHalt;
  // Every finite margin exceeds this floor, so each worker flags its very
  // first step and the run must halt at the first barrier.
  o.sgd.divergence.max_abs_margin = 1e-300;
  BprTrainer t(o);
  Status s = t.Train(data);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace clapf
