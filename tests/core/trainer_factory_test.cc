#include "clapf/core/trainer_factory.h"

#include <gtest/gtest.h>

#include <set>

namespace clapf {
namespace {

TEST(TrainerFactoryTest, AllMethodsHaveTable2Order) {
  auto methods = AllMethods();
  ASSERT_EQ(methods.size(), 13u);
  EXPECT_EQ(methods.front(), MethodKind::kPopRank);
  EXPECT_EQ(methods.back(), MethodKind::kClapfPlusMrr);
}

TEST(TrainerFactoryTest, NamesAreUniqueAndPaperStyle) {
  std::set<std::string> names;
  for (MethodKind kind : AllMethods()) names.insert(MethodName(kind));
  EXPECT_EQ(names.size(), AllMethods().size());
  EXPECT_TRUE(names.count("BPR"));
  EXPECT_TRUE(names.count("CLiMF"));
  EXPECT_TRUE(names.count("CLAPF-MAP"));
  EXPECT_TRUE(names.count("CLAPF+-MRR"));
}

TEST(TrainerFactoryTest, ParseRoundTripsEveryName) {
  for (MethodKind kind : AllMethods()) {
    auto parsed = ParseMethodName(MethodName(kind));
    ASSERT_TRUE(parsed.ok()) << MethodName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(ParseMethodName("bpr").ok());
  EXPECT_TRUE(ParseMethodName("clapf-map").ok());
  EXPECT_FALSE(ParseMethodName("svd++").ok());
}

TEST(TrainerFactoryTest, MakeTrainerInstantiatesEveryKind) {
  MethodConfig config;
  for (MethodKind kind : AllMethods()) {
    auto trainer = MakeTrainer(kind, config);
    ASSERT_NE(trainer, nullptr) << MethodName(kind);
    // Factory-produced trainer names match the registry names, except the
    // CLAPF family where the trainer renders its own variant/sampler name.
    if (kind == MethodKind::kClapfPlusMap) {
      EXPECT_EQ(trainer->name(), "CLAPF+-MAP");
    } else if (kind == MethodKind::kClapfPlusMrr) {
      EXPECT_EQ(trainer->name(), "CLAPF+-MRR");
    } else {
      EXPECT_EQ(trainer->name(), MethodName(kind));
    }
  }
}

TEST(TrainerFactoryTest, ConfigPropagatesToClapf) {
  MethodConfig config;
  config.clapf_lambda = 0.7;
  auto trainer = MakeTrainer(MethodKind::kClapfMap, config);
  auto* clapf = dynamic_cast<ClapfTrainer*>(trainer.get());
  ASSERT_NE(clapf, nullptr);
  EXPECT_DOUBLE_EQ(clapf->options().lambda, 0.7);
  EXPECT_EQ(clapf->options().variant, ClapfVariant::kMap);
  EXPECT_EQ(clapf->options().sampler, ClapfSamplerKind::kUniform);

  auto plus = MakeTrainer(MethodKind::kClapfPlusMrr, config);
  auto* clapf_plus = dynamic_cast<ClapfTrainer*>(plus.get());
  ASSERT_NE(clapf_plus, nullptr);
  EXPECT_EQ(clapf_plus->options().variant, ClapfVariant::kMrr);
  EXPECT_EQ(clapf_plus->options().sampler, ClapfSamplerKind::kDss);
}

}  // namespace
}  // namespace clapf
