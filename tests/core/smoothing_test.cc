#include "clapf/core/smoothing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clapf/util/math.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

FactorModel RandomModel(int32_t n, int32_t m, uint64_t seed) {
  FactorModel model(n, m, 4);
  Rng rng(seed);
  model.InitGaussian(rng, 0.8);
  return model;
}

TEST(ClapfMarginTest, MapFormulaMatchesEq16) {
  const double f_ui = 1.0, f_uk = 2.0, f_uj = -0.5, lambda = 0.3;
  const double expected =
      lambda * (f_uk - f_ui) + (1 - lambda) * (f_ui - f_uj);
  EXPECT_DOUBLE_EQ(ClapfMargin(ClapfVariant::kMap, lambda, f_ui, f_uk, f_uj),
                   expected);
}

TEST(ClapfMarginTest, MrrFormulaMatchesEq19) {
  const double f_ui = 1.0, f_uk = 2.0, f_uj = -0.5, lambda = 0.3;
  const double expected =
      lambda * (f_ui - f_uk) + (1 - lambda) * (f_ui - f_uj);
  EXPECT_DOUBLE_EQ(ClapfMargin(ClapfVariant::kMrr, lambda, f_ui, f_uk, f_uj),
                   expected);
}

TEST(ClapfMarginTest, LambdaZeroReducesToBpr) {
  // λ = 0 must recover BPR's margin f_ui − f_uj for both variants.
  for (auto variant : {ClapfVariant::kMap, ClapfVariant::kMrr}) {
    EXPECT_DOUBLE_EQ(ClapfMargin(variant, 0.0, 1.2, 99.0, 0.4), 1.2 - 0.4);
  }
}

TEST(ClapfMarginTest, LambdaOneIsPureListwise) {
  EXPECT_DOUBLE_EQ(ClapfMargin(ClapfVariant::kMap, 1.0, 1.0, 3.0, -100.0),
                   3.0 - 1.0);
  EXPECT_DOUBLE_EQ(ClapfMargin(ClapfVariant::kMrr, 1.0, 1.0, 3.0, -100.0),
                   1.0 - 3.0);
}

TEST(ClapfTripleLossTest, IsNegativeLogSigmoidOfMargin) {
  const double loss =
      ClapfTripleLoss(ClapfVariant::kMap, 0.4, 0.5, 1.0, -0.2);
  const double margin = ClapfMargin(ClapfVariant::kMap, 0.4, 0.5, 1.0, -0.2);
  EXPECT_NEAR(loss, -std::log(Sigmoid(margin)), 1e-12);
  EXPECT_GT(loss, 0.0);
}

TEST(SmoothedRrTest, BoundedByOne) {
  Dataset data = testing::MakeLearnableDataset(10, 20, 5, 3);
  FactorModel model = RandomModel(10, 20, 5);
  for (UserId u = 0; u < 10; ++u) {
    double rr = SmoothedReciprocalRank(model, data, u);
    EXPECT_GE(rr, 0.0);
    // Each product term ≤ σ(f) Π(1−σ) ≤ 1; the sum telescopes below 1 when
    // ranks are distinct, but can exceed it slightly for the smooth version.
    EXPECT_LT(rr, static_cast<double>(data.NumItemsOf(u)) + 1.0);
  }
}

TEST(SmoothedApTest, NonNegative) {
  Dataset data = testing::MakeLearnableDataset(10, 20, 5, 7);
  FactorModel model = RandomModel(10, 20, 7);
  for (UserId u = 0; u < 10; ++u) {
    EXPECT_GE(SmoothedAveragePrecision(model, data, u), 0.0);
  }
}

TEST(MapLowerBoundTest, JensenStepHolds) {
  // The first (rigorous) step of the paper's Eq. (11) derivation: by
  // concavity of ln with weights Y_ui / n_u⁺,
  //   ln(AP_u) >= (1/n_u⁺) Σ_i ln( σ(f_ui) Σ_k σ(f_uk − f_ui) ).
  Dataset data = testing::MakeLearnableDataset(12, 25, 6, 11);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    FactorModel model = RandomModel(12, 25, 100 + seed);
    for (UserId u = 0; u < 12; ++u) {
      auto items = data.ItemsOf(u);
      if (items.empty()) continue;
      const double n_u = static_cast<double>(items.size());
      double jensen = 0.0;
      for (ItemId i : items) {
        const double f_ui = model.Score(u, i);
        double inner = 0.0;
        for (ItemId k : items) inner += Sigmoid(model.Score(u, k) - f_ui);
        jensen += std::log(Sigmoid(f_ui) * inner);
      }
      jensen /= n_u;
      const double smoothed = SmoothedAveragePrecision(model, data, u);
      EXPECT_GE(std::log(smoothed) + 1e-9, jensen)
          << "user " << u << " seed " << seed;
    }
  }
}

TEST(MapLowerBoundTest, AlwaysNonPositive) {
  // Every term is ln σ(·) < 0, so the Eq. (12) objective is negative.
  Dataset data = testing::MakeLearnableDataset(8, 16, 4, 13);
  FactorModel model = RandomModel(8, 16, 13);
  for (UserId u = 0; u < 8; ++u) {
    if (data.NumItemsOf(u) == 0) continue;
    EXPECT_LT(MapLowerBound(model, data, u), 0.0);
    EXPECT_LT(ClimfLowerBound(model, data, u), 0.0);
  }
}

TEST(ClimfVsMapBoundTest, DifferOnlyInPairOrientation) {
  // Eq. (7) has ln σ(f_ui − f_uk); Eq. (12) has ln σ(f_uk − f_ui). For a
  // two-item user the off-diagonal terms are symmetric, so the two bounds
  // coincide; verify on the full double sum.
  Dataset data = testing::MakeDataset(1, 5, {{0, 1}, {0, 3}});
  FactorModel model = RandomModel(1, 5, 17);
  EXPECT_NEAR(ClimfLowerBound(model, data, 0), MapLowerBound(model, data, 0),
              1e-12);
}

TEST(ClimfVsMapBoundTest, FullDoubleSumsCoincide) {
  // Summed over all ordered pairs, every (i,k) term of Eq. (7) appears as
  // the (k,i) term of Eq. (12), so the *full* objectives coincide; the two
  // criteria differ only once a single ordered pair is sampled and fused
  // with the pairwise term (CLAPF-MAP vs CLAPF-MRR). This pins both
  // implementations to ordered-pair summation.
  Dataset data = testing::MakeDataset(1, 6, {{0, 0}, {0, 2}, {0, 4}});
  FactorModel model = RandomModel(1, 6, 19);
  EXPECT_NEAR(ClimfLowerBound(model, data, 0), MapLowerBound(model, data, 0),
              1e-12);
}

TEST(ExactClapfLogLikelihoodTest, IsNegativeAndFiniteAndLambdaSensitive) {
  Dataset data = testing::MakeDataset(2, 6, {{0, 0}, {0, 1}, {1, 2}, {1, 3}});
  FactorModel model = RandomModel(2, 6, 23);
  const double ll_map =
      ExactClapfLogLikelihood(model, data, ClapfVariant::kMap, 0.4);
  EXPECT_TRUE(std::isfinite(ll_map));
  EXPECT_LT(ll_map, 0.0);  // log of probabilities

  const double ll_map_l0 =
      ExactClapfLogLikelihood(model, data, ClapfVariant::kMap, 0.0);
  EXPECT_NE(ll_map, ll_map_l0);
}

TEST(ExactClapfLogLikelihoodTest, MapAndMrrAgreeAtLambdaZero) {
  Dataset data = testing::MakeDataset(2, 5, {{0, 0}, {0, 1}, {1, 3}});
  FactorModel model = RandomModel(2, 5, 29);
  EXPECT_NEAR(ExactClapfLogLikelihood(model, data, ClapfVariant::kMap, 0.0),
              ExactClapfLogLikelihood(model, data, ClapfVariant::kMrr, 0.0),
              1e-9);
}

}  // namespace
}  // namespace clapf
