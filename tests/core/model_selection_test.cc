#include "clapf/core/model_selection.h"

#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

Dataset LearnableData(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 80;
  cfg.num_interactions = 1800;
  cfg.affinity_sharpness = 8.0;
  cfg.seed = seed;
  return *GenerateSynthetic(cfg);
}

ClapfOptions FastBase() {
  ClapfOptions base;
  base.sgd.num_factors = 8;
  base.sgd.iterations = 8000;
  base.sgd.seed = 5;
  return base;
}

TEST(SelectClapfOptionsTest, PicksHighestValidationScore) {
  Dataset data = LearnableData(901);
  // A real config against a deliberately crippled one (zero iterations).
  ClapfOptions good = FastBase();
  ClapfOptions bad = FastBase();
  bad.sgd.iterations = 0;
  auto result = SelectClapfOptions(data, {bad, good},
                                   SelectionMetric::kNdcgAt5, 7);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->best_index, 1u);
  ASSERT_EQ(result->trials.size(), 2u);
  EXPECT_GT(result->trials[1].validation_score,
            result->trials[0].validation_score);
}

TEST(SelectClapfOptionsTest, EmptyCandidatesRejected) {
  Dataset data = LearnableData(903);
  EXPECT_EQ(
      SelectClapfOptions(data, {}, SelectionMetric::kMap, 1).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(SelectClapfOptionsTest, NoValidationPairsRejected) {
  // Every user has one item: nothing can be held out.
  Dataset data = testing::MakeDataset(3, 5, {{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(SelectClapfOptions(data, {FastBase()}, SelectionMetric::kMap, 1)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(SelectLambdaTest, SweepsAllLambdas) {
  Dataset data = LearnableData(907);
  auto result = SelectLambda(data, FastBase(), {0.0, 0.4, 0.8},
                             SelectionMetric::kNdcgAt5, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->trials.size(), 3u);
  EXPECT_DOUBLE_EQ(result->trials[0].options.lambda, 0.0);
  EXPECT_DOUBLE_EQ(result->trials[1].options.lambda, 0.4);
  EXPECT_DOUBLE_EQ(result->trials[2].options.lambda, 0.8);
  EXPECT_GE(result->best_options.lambda, 0.0);
}

TEST(SelectIterationsTest, SweepsBudgets) {
  Dataset data = LearnableData(911);
  auto result = SelectIterations(data, FastBase(), {1000, 10000},
                                 SelectionMetric::kMrr, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->trials.size(), 2u);
  EXPECT_EQ(result->trials[0].options.sgd.iterations, 1000);
  EXPECT_EQ(result->trials[1].options.sgd.iterations, 10000);
}

TEST(SelectClapfOptionsTest, DeterministicGivenSeed) {
  Dataset data = LearnableData(913);
  auto a = SelectLambda(data, FastBase(), {0.0, 0.2, 0.4},
                        SelectionMetric::kNdcgAt5, 11);
  auto b = SelectLambda(data, FastBase(), {0.0, 0.2, 0.4},
                        SelectionMetric::kNdcgAt5, 11);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->best_index, b->best_index);
  for (size_t i = 0; i < a->trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->trials[i].validation_score,
                     b->trials[i].validation_score);
  }
}

TEST(SelectionMetricTest, AllMetricsExtractable) {
  Dataset data = LearnableData(917);
  for (SelectionMetric metric :
       {SelectionMetric::kNdcgAt5, SelectionMetric::kMap,
        SelectionMetric::kMrr, SelectionMetric::kPrecisionAt5}) {
    auto result = SelectClapfOptions(data, {FastBase()}, metric, 1);
    ASSERT_TRUE(result.ok()) << SelectionMetricName(metric);
    EXPECT_GE(result->trials[0].validation_score, 0.0);
  }
}

TEST(SelectionMetricTest, NamesAreDistinct) {
  EXPECT_STREQ(SelectionMetricName(SelectionMetric::kNdcgAt5), "NDCG@5");
  EXPECT_STREQ(SelectionMetricName(SelectionMetric::kMap), "MAP");
  EXPECT_STREQ(SelectionMetricName(SelectionMetric::kMrr), "MRR");
  EXPECT_STREQ(SelectionMetricName(SelectionMetric::kPrecisionAt5), "Prec@5");
}

}  // namespace
}  // namespace clapf
