#include "clapf/core/clapf_trainer.h"

#include <gtest/gtest.h>

#include "clapf/core/smoothing.h"
#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TrainTestSplit LearnableSplit(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_interactions = 2400;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = seed;
  Dataset data = *GenerateSynthetic(cfg);
  return SplitRandom(data, 0.5, seed + 1);
}

ClapfOptions FastOptions() {
  ClapfOptions opts;
  opts.sgd.num_factors = 8;
  opts.sgd.iterations = 30000;
  opts.sgd.learning_rate = 0.05;
  opts.sgd.seed = 5;
  return opts;
}

TEST(ClapfTrainerTest, RejectsBadConfigs) {
  Dataset train = testing::MakeDataset(2, 4, {{0, 0}, {1, 1}});

  ClapfOptions bad_lambda = FastOptions();
  bad_lambda.lambda = 1.5;
  EXPECT_EQ(ClapfTrainer(bad_lambda).Train(train).code(),
            StatusCode::kInvalidArgument);

  ClapfOptions bad_factors = FastOptions();
  bad_factors.sgd.num_factors = 0;
  EXPECT_EQ(ClapfTrainer(bad_factors).Train(train).code(),
            StatusCode::kInvalidArgument);

  ClapfOptions bad_iters = FastOptions();
  bad_iters.sgd.iterations = -1;
  EXPECT_EQ(ClapfTrainer(bad_iters).Train(train).code(),
            StatusCode::kInvalidArgument);

  Dataset empty = testing::MakeDataset(2, 4, {});
  EXPECT_EQ(ClapfTrainer(FastOptions()).Train(empty).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ClapfTrainerTest, NamesFollowPaperConventions) {
  ClapfOptions opts;
  opts.variant = ClapfVariant::kMap;
  EXPECT_EQ(ClapfTrainer(opts).name(), "CLAPF-MAP");
  opts.variant = ClapfVariant::kMrr;
  EXPECT_EQ(ClapfTrainer(opts).name(), "CLAPF-MRR");
  opts.sampler = ClapfSamplerKind::kDss;
  EXPECT_EQ(ClapfTrainer(opts).name(), "CLAPF+-MRR");
  opts.sampler = ClapfSamplerKind::kPositiveOnly;
  opts.variant = ClapfVariant::kMap;
  EXPECT_EQ(ClapfTrainer(opts).name(), "CLAPF-MAP(pos)");
}

TEST(ClapfTrainerTest, TrainingBeatsRandomRanking) {
  auto split = LearnableSplit(101);
  ClapfTrainer trainer(FastOptions());
  ASSERT_TRUE(trainer.Train(split.train).ok());

  Evaluator eval(&split.train, &split.test);
  auto summary = eval.Evaluate(*trainer.model(), {5});
  // Random ranking has AUC 0.5; a trained model must be clearly above.
  EXPECT_GT(summary.auc, 0.58);
  EXPECT_GT(summary.map, 0.02);
}

TEST(ClapfTrainerTest, TrainingImprovesExactObjective) {
  // The sampled SGD must increase the exact Eq. (18) log-likelihood. Use a
  // small dataset to keep the exact O(n·n_u²·m) computation cheap.
  SyntheticConfig small;
  small.num_users = 10;
  small.num_items = 30;
  small.num_interactions = 100;
  small.seed = 11;
  Dataset tiny = *GenerateSynthetic(small);

  ClapfOptions tiny_opts = FastOptions();
  tiny_opts.sgd.iterations = 0;
  ClapfTrainer t0(tiny_opts);
  ASSERT_TRUE(t0.Train(tiny).ok());
  const double ll_before = ExactClapfLogLikelihood(
      *t0.model(), tiny, tiny_opts.variant, tiny_opts.lambda);

  tiny_opts.sgd.iterations = 20000;
  ClapfTrainer t1(tiny_opts);
  ASSERT_TRUE(t1.Train(tiny).ok());
  const double ll_after = ExactClapfLogLikelihood(
      *t1.model(), tiny, tiny_opts.variant, tiny_opts.lambda);
  EXPECT_GT(ll_after, ll_before);
}

TEST(ClapfTrainerTest, DeterministicGivenSeed) {
  auto split = LearnableSplit(107);
  ClapfOptions opts = FastOptions();
  opts.sgd.iterations = 5000;
  ClapfTrainer a(opts), b(opts);
  ASSERT_TRUE(a.Train(split.train).ok());
  ASSERT_TRUE(b.Train(split.train).ok());
  EXPECT_EQ(a.model()->user_factor_data(), b.model()->user_factor_data());
  EXPECT_EQ(a.model()->item_factor_data(), b.model()->item_factor_data());
}

TEST(ClapfTrainerTest, SeedChangesResult) {
  auto split = LearnableSplit(109);
  ClapfOptions opts = FastOptions();
  opts.sgd.iterations = 2000;
  ClapfTrainer a(opts);
  opts.sgd.seed = 6;
  ClapfTrainer b(opts);
  ASSERT_TRUE(a.Train(split.train).ok());
  ASSERT_TRUE(b.Train(split.train).ok());
  EXPECT_NE(a.model()->user_factor_data(), b.model()->user_factor_data());
}

TEST(ClapfTrainerTest, MrrVariantAlsoLearns) {
  auto split = LearnableSplit(113);
  ClapfOptions opts = FastOptions();
  opts.variant = ClapfVariant::kMrr;
  opts.lambda = 0.2;
  ClapfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.58);
}

TEST(ClapfTrainerTest, DssSamplerVariantLearns) {
  auto split = LearnableSplit(127);
  ClapfOptions opts = FastOptions();
  opts.sampler = ClapfSamplerKind::kDss;
  opts.sgd.iterations = 15000;
  ClapfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.58);
}

TEST(ClapfTrainerTest, ProbeFiresAtInterval) {
  auto split = LearnableSplit(131);
  ClapfOptions opts = FastOptions();
  opts.sgd.iterations = 1000;
  ClapfTrainer trainer(opts);
  int64_t calls = 0;
  int64_t last_iter = 0;
  trainer.SetProbe(250, [&](int64_t iter, const Trainer&) {
    ++calls;
    last_iter = iter;
  });
  ASSERT_TRUE(trainer.Train(split.train).ok());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(last_iter, 1000);
}

TEST(ClapfTrainerTest, AverageLossIsFinitePositive) {
  auto split = LearnableSplit(137);
  ClapfOptions opts = FastOptions();
  opts.sgd.iterations = 2000;
  ClapfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  EXPECT_GT(trainer.last_average_loss(), 0.0);
  EXPECT_LT(trainer.last_average_loss(), 10.0);
}

TEST(ClapfTrainerTest, ScoreItemsMatchesModel) {
  auto split = LearnableSplit(139);
  ClapfOptions opts = FastOptions();
  opts.sgd.iterations = 1000;
  ClapfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  std::vector<double> scores;
  trainer.ScoreItems(3, &scores);
  ASSERT_EQ(scores.size(), static_cast<size_t>(split.train.num_items()));
  for (ItemId i = 0; i < split.train.num_items(); ++i) {
    EXPECT_DOUBLE_EQ(scores[static_cast<size_t>(i)],
                     trainer.model()->Score(3, i));
  }
}

// Property: λ = 0 reduces CLAPF to BPR — with identical seeds, the CLAPF
// trainer at λ=0 and a BPR-equivalent margin produce the same objective
// value class; we check the learned models rank similarly by comparing AUC.
class LambdaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(LambdaSweepTest, AllLambdasLearnAboveChance) {
  auto split = LearnableSplit(211);
  ClapfOptions opts = FastOptions();
  opts.lambda = GetParam();
  opts.sgd.iterations = 15000;
  ClapfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  auto summary = eval.Evaluate(*trainer.model(), {5});
  if (GetParam() >= 1.0) {
    // Pure listwise: only observed items are compared, still not random.
    EXPECT_GT(summary.auc, 0.4);
  } else {
    EXPECT_GT(summary.auc, 0.58) << "lambda=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaSweepTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace clapf
