#include "clapf/nn/embedding.h"

#include <gtest/gtest.h>

#include <cmath>

namespace clapf {
namespace {

TEST(EmbeddingTest, InitFillsTable) {
  Embedding emb(10, 4, AdamConfig{});
  Rng rng(1);
  emb.Init(rng, 0.1);
  bool any_nonzero = false;
  for (int32_t r = 0; r < 10; ++r) {
    for (double x : emb.Row(r)) any_nonzero |= x != 0.0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(EmbeddingTest, RowsAreIndependent) {
  Embedding emb(3, 2, AdamConfig{});
  Rng rng(2);
  emb.Init(rng, 0.1);
  auto before_row1 = std::vector<double>(emb.Row(1).begin(), emb.Row(1).end());
  std::vector<double> grad{1.0, 1.0};
  emb.ApplyGradient(0, grad);
  EXPECT_EQ(std::vector<double>(emb.Row(1).begin(), emb.Row(1).end()),
            before_row1);
}

TEST(EmbeddingTest, GradientDescendsScalarObjective) {
  // Drive row 0 toward target vector t by the gradient of ||row - t||^2.
  Embedding emb(1, 3, AdamConfig{.learning_rate = 0.05});
  Rng rng(3);
  emb.Init(rng, 0.01);
  const std::vector<double> target{1.0, -2.0, 0.5};
  for (int step = 0; step < 1000; ++step) {
    auto row = emb.Row(0);
    std::vector<double> grad(3);
    for (int f = 0; f < 3; ++f) grad[f] = 2.0 * (row[f] - target[f]);
    emb.ApplyGradient(0, grad);
  }
  auto row = emb.Row(0);
  for (int f = 0; f < 3; ++f) EXPECT_NEAR(row[f], target[f], 0.05) << f;
}

TEST(EmbeddingTest, MutableRowWritesThrough) {
  Embedding emb(2, 2, AdamConfig{});
  emb.MutableRow(1)[0] = 7.0;
  EXPECT_DOUBLE_EQ(emb.Row(1)[0], 7.0);
}

}  // namespace
}  // namespace clapf
