#include "clapf/nn/activation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace clapf {
namespace {

TEST(ActivationTest, IdentityPassesThrough) {
  EXPECT_DOUBLE_EQ(ApplyActivation(Activation::kIdentity, 3.7), 3.7);
  EXPECT_DOUBLE_EQ(
      ActivationDerivative(Activation::kIdentity, 3.7, 3.7), 1.0);
}

TEST(ActivationTest, ReluClampsNegatives) {
  EXPECT_DOUBLE_EQ(ApplyActivation(Activation::kRelu, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(ApplyActivation(Activation::kRelu, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(ActivationDerivative(Activation::kRelu, -2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ActivationDerivative(Activation::kRelu, 2.0, 2.0), 1.0);
}

TEST(ActivationTest, SigmoidRange) {
  EXPECT_DOUBLE_EQ(ApplyActivation(Activation::kSigmoid, 0.0), 0.5);
  EXPECT_GT(ApplyActivation(Activation::kSigmoid, 5.0), 0.99);
  EXPECT_LT(ApplyActivation(Activation::kSigmoid, -5.0), 0.01);
}

TEST(ActivationTest, TanhRange) {
  EXPECT_DOUBLE_EQ(ApplyActivation(Activation::kTanh, 0.0), 0.0);
  EXPECT_NEAR(ApplyActivation(Activation::kTanh, 100.0), 1.0, 1e-12);
}

// Property: analytic derivative matches a central difference for all smooth
// activations across a range of points.
class ActivationGradTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradTest, MatchesNumericDerivative) {
  const Activation act = GetParam();
  const double h = 1e-6;
  for (double x : {-3.0, -1.0, -0.25, 0.1, 0.5, 2.0}) {
    const double y = ApplyActivation(act, x);
    const double numeric =
        (ApplyActivation(act, x + h) - ApplyActivation(act, x - h)) / (2 * h);
    EXPECT_NEAR(ActivationDerivative(act, x, y), numeric, 1e-5)
        << ActivationName(act) << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Smooth, ActivationGradTest,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kSigmoid,
                                           Activation::kTanh));

TEST(ActivationTest, Names) {
  EXPECT_STREQ(ActivationName(Activation::kRelu), "relu");
  EXPECT_STREQ(ActivationName(Activation::kSigmoid), "sigmoid");
}

}  // namespace
}  // namespace clapf
