#include "clapf/nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace clapf {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize f(x) = (x - 3)^2 from x = 0.
  AdamConfig cfg;
  cfg.learning_rate = 0.1;
  AdamOptimizer opt(1, 1, cfg);
  std::vector<double> x{0.0};
  for (int step = 0; step < 500; ++step) {
    std::vector<double> grad{2.0 * (x[0] - 3.0)};
    opt.Update(0, grad, x);
  }
  EXPECT_NEAR(x[0], 3.0, 0.05);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // With bias correction, the very first Adam step ≈ lr * sign(grad).
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  AdamOptimizer opt(1, 1, cfg);
  std::vector<double> x{1.0};
  std::vector<double> grad{123.0};
  opt.Update(0, grad, x);
  EXPECT_NEAR(x[0], 1.0 - 0.01, 1e-6);
}

TEST(AdamTest, SparseSlicesHaveIndependentState) {
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  AdamOptimizer opt(4, 2, cfg);  // two slices of size 2
  std::vector<double> a{0.0, 0.0};
  std::vector<double> g{1.0, 1.0};
  // Update slice 0 many times; slice 1 never.
  for (int i = 0; i < 10; ++i) opt.Update(0, g, a);
  // A first update to slice 1 still behaves like a first Adam step.
  std::vector<double> b{1.0, 1.0};
  opt.Update(2, g, b);
  EXPECT_NEAR(b[0], 1.0 - 0.01, 1e-6);
  EXPECT_NEAR(b[1], 1.0 - 0.01, 1e-6);
}

TEST(AdamTest, WeightDecayShrinksParams) {
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  cfg.weight_decay = 1.0;
  AdamOptimizer opt(1, 1, cfg);
  std::vector<double> x{5.0};
  std::vector<double> zero_grad{0.0};
  for (int i = 0; i < 200; ++i) opt.Update(0, zero_grad, x);
  EXPECT_LT(std::abs(x[0]), 5.0);
}

TEST(SgdStepTest, MovesAgainstGradient) {
  std::vector<double> x{1.0, -1.0};
  std::vector<double> g{0.5, -0.5};
  SgdStep(0.1, 0.0, g, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0 - 0.05);
  EXPECT_DOUBLE_EQ(x[1], -1.0 + 0.05);
}

TEST(SgdStepTest, L2PullsTowardZero) {
  std::vector<double> x{2.0};
  std::vector<double> g{0.0};
  SgdStep(0.1, 0.5, g, x);
  EXPECT_DOUBLE_EQ(x[0], 2.0 - 0.1 * 0.5 * 2.0);
}

}  // namespace
}  // namespace clapf
