#include "clapf/nn/mlp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace clapf {
namespace {

TEST(MlpTest, ShapesAreWired) {
  Mlp mlp({8, 4, 2, 1}, Activation::kRelu, Activation::kIdentity,
          AdamConfig{});
  EXPECT_EQ(mlp.input_dim(), 8);
  EXPECT_EQ(mlp.output_dim(), 1);
  EXPECT_EQ(mlp.num_layers(), 3u);
  EXPECT_EQ(mlp.layer(0).activation(), Activation::kRelu);
  EXPECT_EQ(mlp.layer(2).activation(), Activation::kIdentity);
}

TEST(MlpTest, ForwardProducesOutput) {
  Mlp mlp({3, 4, 2}, Activation::kTanh, Activation::kIdentity, AdamConfig{});
  Rng rng(1);
  mlp.Init(rng);
  std::vector<double> x{0.1, -0.2, 0.3};
  auto y = mlp.Forward(x);
  EXPECT_EQ(y.size(), 2u);
}

TEST(MlpGradCheck, InputGradientMatchesNumeric) {
  AdamConfig cfg;
  cfg.learning_rate = 0.0;  // freeze params during the check
  Mlp mlp({4, 5, 3, 1}, Activation::kTanh, Activation::kIdentity, cfg);
  Rng rng(3);
  mlp.Init(rng);

  std::vector<double> x{0.5, -0.4, 0.2, 0.9};
  auto loss_at = [&](const std::vector<double>& input) {
    return mlp.Forward(input)[0];
  };

  mlp.Forward(x);
  double one = 1.0;
  auto grad_in = mlp.BackwardAndStep(std::span<const double>(&one, 1));

  const double h = 1e-6;
  for (size_t i = 0; i < x.size(); ++i) {
    auto xp = x;
    xp[i] += h;
    auto xm = x;
    xm[i] -= h;
    double numeric = (loss_at(xp) - loss_at(xm)) / (2 * h);
    EXPECT_NEAR(grad_in[i], numeric, 1e-5) << "input " << i;
  }
}

TEST(MlpTest, LearnsXorWithTanhHidden) {
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  Mlp mlp({2, 8, 1}, Activation::kTanh, Activation::kIdentity, cfg);
  Rng rng(7);
  mlp.Init(rng);

  const std::vector<std::pair<std::vector<double>, double>> data{
      {{0.0, 0.0}, 0.0}, {{0.0, 1.0}, 1.0}, {{1.0, 0.0}, 1.0},
      {{1.0, 1.0}, 0.0}};
  for (int epoch = 0; epoch < 3000; ++epoch) {
    for (const auto& [x, t] : data) {
      double y = mlp.Forward(x)[0];
      double dloss = 2.0 * (y - t);
      mlp.BackwardAndStep(std::span<const double>(&dloss, 1));
    }
  }
  for (const auto& [x, t] : data) {
    EXPECT_NEAR(mlp.Forward(x)[0], t, 0.2)
        << "(" << x[0] << "," << x[1] << ")";
  }
}

}  // namespace
}  // namespace clapf
