#include "clapf/nn/dense_layer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace clapf {
namespace {

TEST(DenseLayerTest, ForwardComputesAffineTransform) {
  AdamConfig cfg;
  DenseLayer layer(2, 1, Activation::kIdentity, cfg);
  // Weights default to zero → output is the (zero) bias.
  std::vector<double> x{1.0, 2.0};
  auto y = layer.Forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

TEST(DenseLayerTest, GlorotInitBounded) {
  AdamConfig cfg;
  DenseLayer layer(100, 50, Activation::kRelu, cfg);
  Rng rng(5);
  layer.Init(rng);
  const double limit = std::sqrt(6.0 / 150.0);
  for (double w : layer.weights()) {
    EXPECT_GE(w, -limit);
    EXPECT_LE(w, limit);
  }
  for (double b : layer.biases()) EXPECT_DOUBLE_EQ(b, 0.0);
}

// Numeric gradient check: dLoss/dInput from Backward matches central
// differences of the forward pass, for each activation.
class DenseLayerGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(DenseLayerGradCheck, InputGradientMatchesNumeric) {
  const Activation act = GetParam();
  // Use a no-op learning rate so BackwardAndStep doesn't perturb params
  // before we finish the check.
  AdamConfig cfg;
  cfg.learning_rate = 0.0;
  DenseLayer layer(3, 2, act, cfg);
  Rng rng(11);
  layer.Init(rng);

  std::vector<double> x{0.3, -0.7, 1.1};
  // Scalar loss L = Σ c_o * y_o with fixed coefficients.
  std::vector<double> coeff{0.9, -1.3};

  auto loss_at = [&](const std::vector<double>& input) {
    auto y = layer.Forward(input);
    double loss = 0.0;
    for (size_t o = 0; o < y.size(); ++o) loss += coeff[o] * y[o];
    return loss;
  };

  // Analytic gradient.
  layer.Forward(x);
  std::vector<double> grad_in = layer.BackwardAndStep(coeff);

  const double h = 1e-6;
  for (size_t i = 0; i < x.size(); ++i) {
    auto xp = x;
    xp[i] += h;
    auto xm = x;
    xm[i] -= h;
    double numeric = (loss_at(xp) - loss_at(xm)) / (2 * h);
    EXPECT_NEAR(grad_in[i], numeric, 1e-5)
        << ActivationName(act) << " input " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, DenseLayerGradCheck,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kSigmoid,
                                           Activation::kTanh,
                                           Activation::kRelu));

TEST(DenseLayerTest, LearnsLinearMap) {
  // Teach y = 2*x0 - x1 with squared loss.
  AdamConfig cfg;
  cfg.learning_rate = 0.02;
  DenseLayer layer(2, 1, Activation::kIdentity, cfg);
  Rng rng(13);
  layer.Init(rng);
  Rng data_rng(17);
  for (int step = 0; step < 4000; ++step) {
    std::vector<double> x{data_rng.NextGaussian(), data_rng.NextGaussian()};
    double target = 2.0 * x[0] - x[1];
    double y = layer.Forward(x)[0];
    double dloss = 2.0 * (y - target);
    layer.BackwardAndStep(std::span<const double>(&dloss, 1));
  }
  EXPECT_NEAR(layer.weights()[0], 2.0, 0.1);
  EXPECT_NEAR(layer.weights()[1], -1.0, 0.1);
}

}  // namespace
}  // namespace clapf
