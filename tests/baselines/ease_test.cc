#include "clapf/baselines/ease.h"

#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(EaseTest, DiagonalOfBIsZero) {
  Dataset train =
      testing::MakeDataset(3, 4, {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 3}});
  EaseOptions opts;
  opts.l2 = 1.0;
  EaseTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  for (ItemId i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(trainer.Weight(i, i), 0.0) << i;
  }
}

TEST(EaseTest, CooccurringItemsGetPositiveWeight) {
  // Items 0 and 1 always co-occur; item 3 never co-occurs with them.
  Dataset train = testing::MakeDataset(
      4, 4, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 3}});
  EaseOptions opts;
  opts.l2 = 0.5;
  EaseTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  EXPECT_GT(trainer.Weight(0, 1), trainer.Weight(0, 3));
  EXPECT_GT(trainer.Weight(0, 1), 0.0);
}

TEST(EaseTest, ScoresPredictHeldOutCooccurrence) {
  Dataset train = testing::MakeDataset(
      4, 4, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {3, 2}});
  EaseOptions opts;
  opts.l2 = 0.5;
  EaseTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  // User 2 has item 0; item 1 co-occurs with 0, items 2/3 do not.
  std::vector<double> scores;
  trainer.ScoreItems(2, &scores);
  EXPECT_GT(scores[1], scores[2]);
  EXPECT_GT(scores[1], scores[3]);
}

TEST(EaseTest, LearnsAboveChance) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_interactions = 2400;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = 1201;
  auto split = SplitRandom(*GenerateSynthetic(cfg), 0.5, 1202);
  EaseTrainer trainer(EaseOptions{});
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(trainer, {5}).auc, 0.6);
}

TEST(EaseTest, RejectsBadConfigAndOversizedCatalogs) {
  Dataset data = testing::MakeDataset(1, 2, {{0, 0}});
  EaseOptions opts;
  opts.l2 = 0.0;
  EXPECT_EQ(EaseTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);

  opts = EaseOptions{};
  opts.max_items = 1;
  EXPECT_EQ(EaseTrainer(opts).Train(data).code(),
            StatusCode::kFailedPrecondition);

  Dataset empty = testing::MakeDataset(1, 2, {});
  EXPECT_EQ(EaseTrainer(EaseOptions{}).Train(empty).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace clapf
