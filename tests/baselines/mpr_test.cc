#include "clapf/baselines/mpr.h"

#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TrainTestSplit LearnableSplit(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_interactions = 2400;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = seed;
  return SplitRandom(*GenerateSynthetic(cfg), 0.5, seed + 1);
}

MprOptions FastOptions() {
  MprOptions opts;
  opts.sgd.num_factors = 8;
  opts.sgd.iterations = 25000;
  opts.sgd.learning_rate = 0.05;
  opts.sgd.seed = 3;
  return opts;
}

TEST(MprTrainerTest, LearnsAboveChance) {
  auto split = LearnableSplit(401);
  MprTrainer trainer(FastOptions());
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.58);
}

TEST(MprTrainerTest, RejectsBadRho) {
  Dataset data = testing::MakeDataset(1, 3, {{0, 0}});
  MprOptions opts = FastOptions();
  opts.rho = -0.1;
  EXPECT_EQ(MprTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  opts.rho = 1.1;
  EXPECT_EQ(MprTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
}

TEST(MprTrainerTest, RejectsEmptyData) {
  Dataset empty = testing::MakeDataset(2, 2, {});
  EXPECT_EQ(MprTrainer(FastOptions()).Train(empty).code(),
            StatusCode::kFailedPrecondition);
}

TEST(MprTrainerTest, DeterministicGivenSeed) {
  auto split = LearnableSplit(403);
  MprOptions opts = FastOptions();
  opts.sgd.iterations = 3000;
  MprTrainer a(opts), b(opts);
  ASSERT_TRUE(a.Train(split.train).ok());
  ASSERT_TRUE(b.Train(split.train).ok());
  EXPECT_EQ(a.model()->item_factor_data(), b.model()->item_factor_data());
}

// The ρ tradeoff spans pure first-pair to pure second-pair criteria; all
// should learn.
class MprRhoSweep : public ::testing::TestWithParam<double> {};

TEST_P(MprRhoSweep, LearnsAboveChance) {
  auto split = LearnableSplit(407);
  MprOptions opts = FastOptions();
  opts.rho = GetParam();
  opts.sgd.iterations = 15000;
  MprTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.58)
      << "rho=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rhos, MprRhoSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace clapf
