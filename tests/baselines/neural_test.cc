#include <gtest/gtest.h>

#include "clapf/baselines/deep_icf.h"
#include "clapf/baselines/neu_mf.h"
#include "clapf/baselines/neu_pr.h"
#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TrainTestSplit LearnableSplit(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 120;
  cfg.num_interactions = 1800;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = seed;
  return SplitRandom(*GenerateSynthetic(cfg), 0.5, seed + 1);
}

TEST(NeuMfTest, LearnsAboveChance) {
  auto split = LearnableSplit(701);
  NeuMfOptions opts;
  opts.embedding_dim = 8;
  opts.epochs = 10;
  opts.seed = 2;
  NeuMfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(trainer, {5}).auc, 0.55);
}

TEST(NeuMfTest, RejectsBadConfig) {
  Dataset data = testing::MakeDataset(1, 2, {{0, 0}});
  NeuMfOptions opts;
  opts.embedding_dim = 0;
  EXPECT_EQ(NeuMfTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  Dataset empty = testing::MakeDataset(1, 2, {});
  EXPECT_EQ(NeuMfTrainer(NeuMfOptions{}).Train(empty).code(),
            StatusCode::kFailedPrecondition);
}

TEST(NeuMfDeathTest, ScoreBeforeTrainAborts) {
  NeuMfTrainer trainer(NeuMfOptions{});
  std::vector<double> scores;
  EXPECT_DEATH(trainer.ScoreItems(0, &scores), "Train");
}

TEST(NeuPrTest, LearnsAboveChance) {
  auto split = LearnableSplit(703);
  NeuPrOptions opts;
  opts.embedding_dim = 8;
  opts.iterations = 60000;
  opts.seed = 2;
  NeuPrTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(trainer, {5}).auc, 0.55);
}

TEST(NeuPrTest, RejectsBadConfig) {
  Dataset empty = testing::MakeDataset(1, 2, {});
  EXPECT_EQ(NeuPrTrainer(NeuPrOptions{}).Train(empty).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DeepIcfTest, LearnsAboveChance) {
  auto split = LearnableSplit(707);
  DeepIcfOptions opts;
  opts.embedding_dim = 8;
  opts.epochs = 10;
  opts.seed = 2;
  DeepIcfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(trainer, {5}).auc, 0.55);
}

TEST(DeepIcfTest, ScoresDependOnUserHistory) {
  auto split = LearnableSplit(709);
  DeepIcfOptions opts;
  opts.embedding_dim = 4;
  opts.epochs = 2;
  opts.seed = 3;
  DeepIcfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  // Two users with different histories should get different score vectors.
  std::vector<double> s0, s1;
  trainer.ScoreItems(0, &s0);
  trainer.ScoreItems(1, &s1);
  EXPECT_NE(s0, s1);
}

TEST(DeepIcfTest, RejectsBadConfig) {
  Dataset empty = testing::MakeDataset(1, 2, {});
  EXPECT_EQ(DeepIcfTrainer(DeepIcfOptions{}).Train(empty).code(),
            StatusCode::kFailedPrecondition);
  Dataset data = testing::MakeDataset(1, 2, {{0, 0}});
  DeepIcfOptions opts;
  opts.embedding_dim = -2;
  EXPECT_EQ(DeepIcfTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
}

TEST(NeuralNamesTest, MatchPaper) {
  EXPECT_EQ(NeuMfTrainer(NeuMfOptions{}).name(), "NeuMF");
  EXPECT_EQ(NeuPrTrainer(NeuPrOptions{}).name(), "NeuPR");
  EXPECT_EQ(DeepIcfTrainer(DeepIcfOptions{}).name(), "DeepICF");
}

}  // namespace
}  // namespace clapf
