#include "clapf/baselines/wmf.h"

#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TrainTestSplit LearnableSplit(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_interactions = 2400;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = seed;
  return SplitRandom(*GenerateSynthetic(cfg), 0.5, seed + 1);
}

WmfOptions FastOptions() {
  WmfOptions opts;
  opts.num_factors = 8;
  opts.sweeps = 8;
  opts.alpha = 10.0;
  opts.reg = 10.0;
  opts.seed = 3;
  return opts;
}

// Weighted square loss the ALS minimizes, computed exactly.
double WmfLoss(const FactorModel& model, const Dataset& data, double alpha,
               double reg) {
  double loss = 0.0;
  for (UserId u = 0; u < data.num_users(); ++u) {
    for (ItemId i = 0; i < data.num_items(); ++i) {
      const bool observed = data.IsObserved(u, i);
      const double c = observed ? 1.0 + alpha : 1.0;
      const double p = observed ? 1.0 : 0.0;
      const double e = p - model.Score(u, i);
      loss += c * e * e;
    }
  }
  return loss + reg * model.SquaredNorm();
}

TEST(WmfTrainerTest, AlsDecreasesWeightedLoss) {
  auto split = LearnableSplit(601);
  WmfOptions zero = FastOptions();
  zero.sweeps = 0;
  WmfTrainer before(zero);
  ASSERT_TRUE(before.Train(split.train).ok());

  WmfOptions one = FastOptions();
  one.sweeps = 1;
  WmfTrainer mid(one);
  ASSERT_TRUE(mid.Train(split.train).ok());

  WmfTrainer after(FastOptions());
  ASSERT_TRUE(after.Train(split.train).ok());

  const double l0 = WmfLoss(*before.model(), split.train, 10.0, 10.0);
  const double l1 = WmfLoss(*mid.model(), split.train, 10.0, 10.0);
  const double l8 = WmfLoss(*after.model(), split.train, 10.0, 10.0);
  EXPECT_LT(l1, l0);
  EXPECT_LE(l8, l1 + 1e-6);
}

TEST(WmfTrainerTest, LearnsAboveChance) {
  auto split = LearnableSplit(603);
  WmfTrainer trainer(FastOptions());
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  // WMF is the weakest personalized baseline in the paper too.
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.55);
}

TEST(WmfTrainerTest, RejectsBadConfig) {
  Dataset data = testing::MakeDataset(1, 2, {{0, 0}});
  WmfOptions opts = FastOptions();
  opts.num_factors = 0;
  EXPECT_EQ(WmfTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  opts = FastOptions();
  opts.sweeps = -1;
  EXPECT_EQ(WmfTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  Dataset empty = testing::MakeDataset(1, 2, {});
  EXPECT_EQ(WmfTrainer(FastOptions()).Train(empty).code(),
            StatusCode::kFailedPrecondition);
}

TEST(WmfTrainerTest, DeterministicGivenSeed) {
  auto split = LearnableSplit(607);
  WmfOptions opts = FastOptions();
  opts.sweeps = 2;
  WmfTrainer a(opts), b(opts);
  ASSERT_TRUE(a.Train(split.train).ok());
  ASSERT_TRUE(b.Train(split.train).ok());
  EXPECT_EQ(a.model()->item_factor_data(), b.model()->item_factor_data());
}

TEST(WmfTrainerTest, ModelHasNoItemBias) {
  auto split = LearnableSplit(611);
  WmfTrainer trainer(FastOptions());
  ASSERT_TRUE(trainer.Train(split.train).ok());
  EXPECT_FALSE(trainer.model()->use_item_bias());
}

}  // namespace
}  // namespace clapf
