#include "clapf/baselines/pop_rank.h"

#include <gtest/gtest.h>

#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(PopRankTest, ScoresEqualPopularity) {
  Dataset train =
      testing::MakeDataset(3, 3, {{0, 0}, {1, 0}, {2, 0}, {0, 1}});
  PopRankTrainer trainer;
  ASSERT_TRUE(trainer.Train(train).ok());
  std::vector<double> scores;
  trainer.ScoreItems(0, &scores);
  EXPECT_EQ(scores, (std::vector<double>{3.0, 1.0, 0.0}));
}

TEST(PopRankTest, SameRankingForAllUsers) {
  Dataset train = testing::MakeDataset(2, 4, {{0, 2}, {1, 2}, {0, 3}});
  PopRankTrainer trainer;
  ASSERT_TRUE(trainer.Train(train).ok());
  std::vector<double> s0, s1;
  trainer.ScoreItems(0, &s0);
  trainer.ScoreItems(1, &s1);
  EXPECT_EQ(s0, s1);
}

TEST(PopRankTest, RecommendsPopularItemInEvaluation) {
  // Item 1 popular in training; user 2 holds it in test.
  Dataset train = testing::MakeDataset(3, 3, {{0, 1}, {1, 1}, {2, 0}});
  Dataset test = testing::MakeDataset(3, 3, {{2, 1}});
  PopRankTrainer trainer;
  ASSERT_TRUE(trainer.Train(train).ok());
  Evaluator eval(&train, &test);
  auto summary = eval.Evaluate(trainer, {1});
  EXPECT_DOUBLE_EQ(summary.AtK(1).precision, 1.0);
}

TEST(PopRankTest, NameIsPaperName) {
  EXPECT_EQ(PopRankTrainer().name(), "PopRank");
}

}  // namespace
}  // namespace clapf
