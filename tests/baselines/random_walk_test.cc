#include "clapf/baselines/random_walk.h"

#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(RandomWalkTest, RejectsBadConfig) {
  Dataset data = testing::MakeDataset(1, 2, {{0, 0}});
  RandomWalkOptions opts;
  opts.walk_length = 0;
  EXPECT_EQ(RandomWalkTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  opts = RandomWalkOptions{};
  opts.restart_probability = 1.0;
  EXPECT_EQ(RandomWalkTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
}

TEST(RandomWalkTest, PropagatesPreferenceThroughSharedItems) {
  // Users 0 and 1 share item 0; user 1 also likes item 1. The walk from
  // user 0 should reach user 1 and score item 1 above item 2 (liked by the
  // unreachable user 2 only... here user 2 shares nothing).
  Dataset train = testing::MakeDataset(
      3, 4, {{0, 0}, {1, 0}, {1, 1}, {2, 2}});
  RandomWalkOptions opts;
  opts.reachable_threshold = 1;
  RandomWalkTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());

  std::vector<double> scores;
  trainer.ScoreItems(0, &scores);
  EXPECT_GT(scores[1], scores[2]);
  EXPECT_GT(scores[1], scores[3]);
}

TEST(RandomWalkTest, ThresholdCutsWeakEdges) {
  // Item 0 is shared by only one pair of users; with threshold 3 no item
  // creates an edge, so nothing propagates.
  Dataset train = testing::MakeDataset(2, 3, {{0, 0}, {1, 0}, {1, 1}});
  RandomWalkOptions opts;
  opts.reachable_threshold = 3;
  RandomWalkTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  std::vector<double> scores;
  trainer.ScoreItems(0, &scores);
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(RandomWalkTest, BetterThanNothingOnLearnableData) {
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 60;
  cfg.num_interactions = 1200;
  cfg.seed = 71;
  auto split = SplitRandom(*GenerateSynthetic(cfg), 0.5, 72);
  RandomWalkOptions opts;
  opts.reachable_threshold = 1;
  opts.walk_length = 10;
  RandomWalkTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(trainer, {5}).auc, 0.55);
}

TEST(RandomWalkDeathTest, ScoreBeforeTrainAborts) {
  RandomWalkTrainer trainer(RandomWalkOptions{});
  std::vector<double> scores;
  EXPECT_DEATH(trainer.ScoreItems(0, &scores), "Train");
}

}  // namespace
}  // namespace clapf
