#include "clapf/baselines/gbpr.h"

#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TrainTestSplit LearnableSplit(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_interactions = 2400;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = seed;
  return SplitRandom(*GenerateSynthetic(cfg), 0.5, seed + 1);
}

GbprOptions FastOptions() {
  GbprOptions opts;
  opts.sgd.num_factors = 8;
  opts.sgd.iterations = 25000;
  opts.sgd.learning_rate = 0.05;
  opts.sgd.seed = 3;
  return opts;
}

TEST(GbprTrainerTest, LearnsAboveChance) {
  auto split = LearnableSplit(801);
  GbprTrainer trainer(FastOptions());
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.58);
}

TEST(GbprTrainerTest, RejectsBadConfig) {
  Dataset data = testing::MakeDataset(1, 3, {{0, 0}});
  GbprOptions opts = FastOptions();
  opts.rho = 1.5;
  EXPECT_EQ(GbprTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  opts = FastOptions();
  opts.group_size = 0;
  EXPECT_EQ(GbprTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  Dataset empty = testing::MakeDataset(2, 2, {});
  EXPECT_EQ(GbprTrainer(FastOptions()).Train(empty).code(),
            StatusCode::kFailedPrecondition);
}

TEST(GbprTrainerTest, DeterministicGivenSeed) {
  auto split = LearnableSplit(803);
  GbprOptions opts = FastOptions();
  opts.sgd.iterations = 3000;
  GbprTrainer a(opts), b(opts);
  ASSERT_TRUE(a.Train(split.train).ok());
  ASSERT_TRUE(b.Train(split.train).ok());
  EXPECT_EQ(a.model()->item_factor_data(), b.model()->item_factor_data());
}

TEST(GbprTrainerTest, RhoZeroStillLearns) {
  // ρ = 0 degenerates toward plain BPR (no group influence).
  auto split = LearnableSplit(807);
  GbprOptions opts = FastOptions();
  opts.rho = 0.0;
  GbprTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.58);
}

TEST(GbprTrainerTest, GroupSizeOneIsIndividual) {
  auto split = LearnableSplit(809);
  GbprOptions opts = FastOptions();
  opts.group_size = 1;
  opts.sgd.iterations = 5000;
  GbprTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  EXPECT_NE(trainer.model(), nullptr);
}

}  // namespace
}  // namespace clapf
