#include "clapf/baselines/climf.h"

#include <gtest/gtest.h>

#include "clapf/core/smoothing.h"
#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TrainTestSplit LearnableSplit(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 80;
  cfg.num_interactions = 1500;
  cfg.affinity_sharpness = 8.0;
  cfg.seed = seed;
  return SplitRandom(*GenerateSynthetic(cfg), 0.5, seed + 1);
}

ClimfOptions FastOptions() {
  ClimfOptions opts;
  opts.sgd.num_factors = 8;
  opts.sgd.learning_rate = 0.05;
  opts.sgd.seed = 3;
  opts.epochs = 30;
  return opts;
}

TEST(ClimfTrainerTest, IncreasesItsOwnObjective) {
  auto split = LearnableSplit(501);

  ClimfOptions zero = FastOptions();
  zero.epochs = 0;
  ClimfTrainer before(zero);
  ASSERT_TRUE(before.Train(split.train).ok());

  ClimfTrainer after(FastOptions());
  ASSERT_TRUE(after.Train(split.train).ok());

  double obj_before = 0.0, obj_after = 0.0;
  for (UserId u = 0; u < split.train.num_users(); ++u) {
    obj_before += ClimfLowerBound(*before.model(), split.train, u);
    obj_after += ClimfLowerBound(*after.model(), split.train, u);
  }
  EXPECT_GT(obj_after, obj_before);
}

TEST(ClimfTrainerTest, PromotesObservedItems) {
  // CLiMF never sees unobserved items, but pushing observed scores up still
  // ranks them above the (unmoved) unobserved ones on the training data.
  auto split = LearnableSplit(503);
  ClimfTrainer trainer(FastOptions());
  ASSERT_TRUE(trainer.Train(split.train).ok());

  double observed_mean = 0.0;
  int64_t observed_count = 0;
  double baseline_mean = 0.0;
  int64_t baseline_count = 0;
  for (UserId u = 0; u < split.train.num_users(); ++u) {
    for (ItemId i : split.train.ItemsOf(u)) {
      observed_mean += trainer.model()->Score(u, i);
      ++observed_count;
    }
    for (ItemId i = 0; i < split.train.num_items(); i += 7) {
      if (!split.train.IsObserved(u, i)) {
        baseline_mean += trainer.model()->Score(u, i);
        ++baseline_count;
      }
    }
  }
  ASSERT_GT(observed_count, 0);
  ASSERT_GT(baseline_count, 0);
  EXPECT_GT(observed_mean / observed_count, baseline_mean / baseline_count);
}

TEST(ClimfTrainerTest, RejectsBadConfig) {
  Dataset data = testing::MakeDataset(1, 2, {{0, 0}});
  ClimfOptions opts = FastOptions();
  opts.epochs = -1;
  EXPECT_EQ(ClimfTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  Dataset empty = testing::MakeDataset(1, 2, {});
  EXPECT_EQ(ClimfTrainer(FastOptions()).Train(empty).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ClimfTrainerTest, DeterministicGivenSeed) {
  auto split = LearnableSplit(507);
  ClimfOptions opts = FastOptions();
  opts.epochs = 5;
  ClimfTrainer a(opts), b(opts);
  ASSERT_TRUE(a.Train(split.train).ok());
  ASSERT_TRUE(b.Train(split.train).ok());
  EXPECT_EQ(a.model()->item_factor_data(), b.model()->item_factor_data());
}

TEST(ClimfTrainerTest, BetterThanRandomOnTestMrr) {
  auto split = LearnableSplit(509);
  ClimfTrainer trainer(FastOptions());
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  auto summary = eval.Evaluate(*trainer.model(), {5});
  // Random MRR over ~80 candidates is roughly sum(1/k)/m ≈ 0.06.
  EXPECT_GT(summary.mrr, 0.1);
}

}  // namespace
}  // namespace clapf
