#include "clapf/baselines/item_knn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(ItemKnnTest, SimilarityHandComputed) {
  // Items 0 and 1 co-occur for both users; item 2 only with user 1's set.
  Dataset train =
      testing::MakeDataset(2, 3, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}});
  ItemKnnOptions opts;
  opts.shrinkage = 0.0;
  ItemKnnTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());

  // sim(0,1) = 2 / (sqrt(2)*sqrt(2)) = 1.0.
  const auto& n0 = trainer.NeighborsOf(0);
  ASSERT_FALSE(n0.empty());
  EXPECT_EQ(n0[0].first, 1);
  EXPECT_NEAR(n0[0].second, 1.0, 1e-12);
  // sim(0,2) = 1 / (sqrt(2)*sqrt(1)) ≈ 0.707.
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[1].first, 2);
  EXPECT_NEAR(n0[1].second, 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(ItemKnnTest, ShrinkageDampsRareCooccurrence) {
  Dataset train = testing::MakeDataset(2, 3, {{0, 0}, {0, 1}, {1, 1}});
  ItemKnnOptions no_shrink;
  no_shrink.shrinkage = 0.0;
  ItemKnnOptions shrunk;
  shrunk.shrinkage = 5.0;
  ItemKnnTrainer a(no_shrink), b(shrunk);
  ASSERT_TRUE(a.Train(train).ok());
  ASSERT_TRUE(b.Train(train).ok());
  EXPECT_GT(a.NeighborsOf(0)[0].second, b.NeighborsOf(0)[0].second);
}

TEST(ItemKnnTest, NeighborTruncation) {
  // Item 0 co-occurs with 4 other items; keep only top 2.
  Dataset train = testing::MakeDataset(
      4, 5,
      {{0, 0}, {0, 1}, {1, 0}, {1, 2}, {2, 0}, {2, 3}, {3, 0}, {3, 4}});
  ItemKnnOptions opts;
  opts.neighbors = 2;
  ItemKnnTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  EXPECT_LE(trainer.NeighborsOf(0).size(), 2u);
}

TEST(ItemKnnTest, ScoresAccumulateFromHistory) {
  Dataset train =
      testing::MakeDataset(2, 3, {{0, 0}, {0, 1}, {1, 0}, {1, 2}});
  ItemKnnOptions opts;
  opts.shrinkage = 0.0;
  ItemKnnTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(train).ok());
  std::vector<double> scores;
  trainer.ScoreItems(0, &scores);
  // Item 2 co-occurs with item 0 (user 1), so it gets positive mass.
  EXPECT_GT(scores[2], 0.0);
}

TEST(ItemKnnTest, LearnsAboveChance) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_interactions = 2400;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = 1101;
  auto split = SplitRandom(*GenerateSynthetic(cfg), 0.5, 1102);
  ItemKnnTrainer trainer(ItemKnnOptions{});
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(trainer, {5}).auc, 0.6);
}

TEST(ItemKnnTest, RejectsBadConfig) {
  Dataset data = testing::MakeDataset(1, 2, {{0, 0}});
  ItemKnnOptions opts;
  opts.neighbors = -1;
  EXPECT_EQ(ItemKnnTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  opts = ItemKnnOptions{};
  opts.shrinkage = -1.0;
  EXPECT_EQ(ItemKnnTrainer(opts).Train(data).code(),
            StatusCode::kInvalidArgument);
  Dataset empty = testing::MakeDataset(1, 2, {});
  EXPECT_EQ(ItemKnnTrainer(ItemKnnOptions{}).Train(empty).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace clapf
