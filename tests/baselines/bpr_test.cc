#include "clapf/baselines/bpr.h"

#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TrainTestSplit LearnableSplit(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 100;
  cfg.num_interactions = 2400;
  cfg.affinity_sharpness = 8.0;
  cfg.popularity_mix = 0.2;
  cfg.seed = seed;
  return SplitRandom(*GenerateSynthetic(cfg), 0.5, seed + 1);
}

BprOptions FastOptions() {
  BprOptions opts;
  opts.sgd.num_factors = 8;
  opts.sgd.iterations = 25000;
  opts.sgd.learning_rate = 0.05;
  opts.sgd.seed = 3;
  return opts;
}

TEST(BprTrainerTest, LearnsAboveChance) {
  auto split = LearnableSplit(301);
  BprTrainer trainer(FastOptions());
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.58);
}

TEST(BprTrainerTest, RejectsEmptyData) {
  Dataset empty = testing::MakeDataset(3, 3, {});
  BprTrainer trainer(FastOptions());
  EXPECT_EQ(trainer.Train(empty).code(), StatusCode::kFailedPrecondition);
}

TEST(BprTrainerTest, RejectsBadFactors) {
  Dataset data = testing::MakeDataset(1, 2, {{0, 0}});
  BprOptions opts = FastOptions();
  opts.sgd.num_factors = -1;
  BprTrainer trainer(opts);
  EXPECT_EQ(trainer.Train(data).code(), StatusCode::kInvalidArgument);
}

TEST(BprTrainerTest, DeterministicGivenSeed) {
  auto split = LearnableSplit(303);
  BprOptions opts = FastOptions();
  opts.sgd.iterations = 3000;
  BprTrainer a(opts), b(opts);
  ASSERT_TRUE(a.Train(split.train).ok());
  ASSERT_TRUE(b.Train(split.train).ok());
  EXPECT_EQ(a.model()->item_factor_data(), b.model()->item_factor_data());
}

TEST(BprTrainerTest, SamplerVariantsHaveDistinctNames) {
  BprOptions opts;
  EXPECT_EQ(BprTrainer(opts).name(), "BPR");
  opts.sampler = PairSamplerKind::kDns;
  EXPECT_EQ(BprTrainer(opts).name(), "BPR-DNS");
  opts.sampler = PairSamplerKind::kAobpr;
  EXPECT_EQ(BprTrainer(opts).name(), "AoBPR");
}

// The adaptive samplers must also train successfully end-to-end.
class BprSamplerSweep : public ::testing::TestWithParam<PairSamplerKind> {};

TEST_P(BprSamplerSweep, LearnsAboveChance) {
  auto split = LearnableSplit(307);
  BprOptions opts = FastOptions();
  opts.sampler = GetParam();
  opts.sgd.iterations = 15000;
  BprTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split.train).ok());
  Evaluator eval(&split.train, &split.test);
  EXPECT_GT(eval.Evaluate(*trainer.model(), {5}).auc, 0.58);
}

INSTANTIATE_TEST_SUITE_P(Samplers, BprSamplerSweep,
                         ::testing::Values(PairSamplerKind::kUniform,
                                           PairSamplerKind::kDns,
                                           PairSamplerKind::kAobpr));

TEST(BprTrainerTest, ProbeFires) {
  auto split = LearnableSplit(311);
  BprOptions opts = FastOptions();
  opts.sgd.iterations = 100;
  BprTrainer trainer(opts);
  int calls = 0;
  trainer.SetProbe(50, [&](int64_t, const Trainer&) { ++calls; });
  ASSERT_TRUE(trainer.Train(split.train).ok());
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace clapf
