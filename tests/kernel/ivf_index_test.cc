// ANN-vs-exact agreement drills for the IVF retrieval layer: shortlist +
// re-rank must equal the exact fused scan bit-for-bit (ids, order, and the
// smaller-id tie-break) when every cluster is probed, clear the measured
// recall contract at the default probe width, build deterministically across
// rebuilds and thread counts, and survive the degenerate catalog shapes
// (k > shortlist, empty clusters, one cluster, catalog < nclusters, nprobe
// clamping). Part of the `ann` ctest label.
#include "clapf/model/ivf_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "clapf/model/factor_model.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/model/score_kernel.h"
#include "clapf/recommender.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/random.h"
#include "clapf/util/top_k.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

// Every test leaves kernel dispatch in its default (auto) state and the
// fault registry disarmed.
class IvfIndexTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ClearScoreKernelOverride();
    FaultInjector::Instance().Reset();
  }
};

FactorModel MakeRandomModel(int32_t num_users, int32_t num_items,
                            int32_t num_factors, uint64_t seed) {
  FactorModel model(num_users, num_items, num_factors);
  Rng rng(seed);
  model.InitGaussian(rng, 0.5);
  for (ItemId i = 0; i < num_items; ++i) {
    model.ItemBias(i) = rng.NextDouble() - 0.5;
  }
  return model;
}

// A model drowning in exact score ties: factors are quantized to a handful
// of values, so whole runs of items share one score and the ranking is
// decided by the smaller-id tie-break alone.
FactorModel MakeTieHeavyModel(int32_t num_users, int32_t num_items,
                              int32_t num_factors, uint64_t seed) {
  FactorModel model(num_users, num_items, num_factors);
  Rng rng(seed);
  for (UserId u = 0; u < num_users; ++u) {
    auto uf = model.UserFactors(u);
    for (int32_t f = 0; f < num_factors; ++f) {
      uf[static_cast<size_t>(f)] = 1.0;
    }
  }
  for (ItemId i = 0; i < num_items; ++i) {
    auto vf = model.ItemFactors(i);
    for (int32_t f = 0; f < num_factors; ++f) {
      vf[static_cast<size_t>(f)] =
          std::floor(rng.NextDouble() * 3.0);  // 0, 1, or 2
    }
    model.ItemBias(i) = std::floor(rng.NextDouble() * 2.0);  // 0 or 1
  }
  return model;
}

// Exact fused full-scan top-k over the base-order snapshot: the ground
// truth every ANN result is held against.
std::vector<ScoredItem> ExactTopK(const PackedSnapshot& snap, UserId u,
                                  size_t k) {
  TopKAccumulator acc(k);
  ScoreBlocksTopK(snap, u, 0, snap.num_items(), nullptr, &acc);
  return acc.Take();
}

// ANN top-k through the index's own probe + mapped re-rank machinery, the
// same call sequence the serving path runs.
std::vector<ScoredItem> AnnTopK(const IvfIndex& index, UserId u, size_t k,
                                int32_t nprobe) {
  std::vector<IvfProbeRange> probes;
  index.SelectProbes(u, nprobe, k, &probes, nullptr);
  TopKAccumulator acc(k);
  for (const IvfProbeRange& range : probes) {
    ScoreBlocksTopKMapped(index.packed(), u, range.begin, range.end,
                          index.local_to_global_data(), nullptr, &acc);
  }
  return acc.Take();
}

TEST_F(IvfIndexTest, FullProbeEqualsExactScanAcrossDimsAndKernels) {
  // nprobe = num_clusters degenerates to the exact scan: the shortlist is a
  // permutation of the whole catalog and per-lane packed scores are
  // bit-identical regardless of block position, so ids, order, AND scores
  // must match the base-order fused scan exactly — on both kernels and for
  // a narrow and a wide factor dimension.
  for (int32_t d : {16, 64}) {
    const auto model = MakeRandomModel(12, 500, d, 1000 + d);
    const PackedSnapshot exact = PackedSnapshot::Build(model);
    IvfOptions opts;
    opts.num_clusters = 20;
    const IvfIndex index = IvfIndex::Build(model, opts);
    ASSERT_TRUE(index.VerifyStructure("test").ok());

    for (ScoreKernel kernel : {ScoreKernel::kPortable, ScoreKernel::kAvx2}) {
      if (!ScoreKernelSupported(kernel)) continue;
      ForceScoreKernel(kernel);
      for (UserId u = 0; u < 12; ++u) {
        const auto want = ExactTopK(exact, u, 10);
        const auto got = AnnTopK(index, u, 10, index.num_clusters());
        ASSERT_EQ(want.size(), got.size()) << "d=" << d << " user " << u;
        for (size_t x = 0; x < want.size(); ++x) {
          EXPECT_EQ(want[x].item, got[x].item)
              << "d=" << d << " kernel " << ScoreKernelName(kernel)
              << " user " << u << " rank " << x;
          EXPECT_EQ(want[x].score, got[x].score)
              << "d=" << d << " user " << u << " rank " << x;
        }
      }
    }
  }
}

TEST_F(IvfIndexTest, FullProbeHonorsSmallerIdTieBreakOnTieHeavyModel) {
  const auto model = MakeTieHeavyModel(8, 300, 4, 7);
  const PackedSnapshot exact = PackedSnapshot::Build(model);
  IvfOptions opts;
  opts.num_clusters = 12;
  const IvfIndex index = IvfIndex::Build(model, opts);

  for (ScoreKernel kernel : {ScoreKernel::kPortable, ScoreKernel::kAvx2}) {
    if (!ScoreKernelSupported(kernel)) continue;
    ForceScoreKernel(kernel);
    for (UserId u = 0; u < 8; ++u) {
      const auto want = ExactTopK(exact, u, 25);
      const auto got = AnnTopK(index, u, 25, index.num_clusters());
      ASSERT_EQ(want.size(), got.size());
      for (size_t x = 0; x < want.size(); ++x) {
        // The permuted scan pushes GLOBAL ids, so equal scores must still
        // resolve to the smaller global id, exactly like the base scan.
        EXPECT_EQ(want[x].item, got[x].item)
            << "kernel " << ScoreKernelName(kernel) << " user " << u
            << " rank " << x;
        EXPECT_EQ(want[x].score, got[x].score);
      }
    }
  }
}

TEST_F(IvfIndexTest, MeasuredRecallClearsContractAtDefaultNprobe) {
  // The serving contract: recall@{1,10,50} >= 0.95 at the index's default
  // probe width, for a narrow and a wide factor dimension. Deterministic
  // seeds, so this is a regression gate rather than a flaky sample.
  // Isotropic random items are IVF's adversarial worst case (top-k spreads
  // over every direction); the contract is stated — and measured — on a
  // catalog with directional structure, like real catalogs have.
  for (int32_t d : {16, 64}) {
    const auto model =
        testing::MakeClusteredItemModel(32, 2000, d, /*num_centers=*/16,
                                        /*noise=*/0.05, 42 + d);
    const PackedSnapshot exact = PackedSnapshot::Build(model);
    IvfOptions opts;
    opts.num_clusters = 16;
    opts.default_nprobe = 8;
    const IvfIndex index = IvfIndex::Build(model, opts);
    for (size_t k : {size_t{1}, size_t{10}, size_t{50}}) {
      const double recall =
          MeasureIvfRecall(exact, index, /*sample_users=*/32, k,
                           /*nprobe=*/0);
      EXPECT_GE(recall, 0.95) << "d=" << d << " k=" << k;
    }
    EXPECT_TRUE(VerifyIvfRecall(exact, index, 32, 10, 0, 0.95, "test").ok());
  }
}

TEST_F(IvfIndexTest, BuildIsBitIdenticalAcrossRebuildsAndThreadCounts) {
  const auto model = MakeRandomModel(6, 700, 12, 77);
  IvfOptions base;
  base.num_clusters = 24;

  IvfOptions threaded = base;
  threaded.build_threads = 4;
  const IvfIndex a = IvfIndex::Build(model, base);
  const IvfIndex b = IvfIndex::Build(model, base);      // same-thread rebuild
  const IvfIndex c = IvfIndex::Build(model, threaded);  // 4-way build

  for (const IvfIndex* other : {&b, &c}) {
    ASSERT_EQ(a.num_clusters(), other->num_clusters());
    for (ItemId i = 0; i < a.num_items(); ++i) {
      ASSERT_EQ(a.ClusterOf(i), other->ClusterOf(i)) << "item " << i;
      ASSERT_EQ(a.ToGlobal(i), other->ToGlobal(i)) << "local " << i;
    }
    // The cluster-ordered repack must match to the byte: same permutation,
    // same float lanes, same pad lanes.
    ASSERT_EQ(a.packed().num_blocks(), other->packed().num_blocks());
    EXPECT_EQ(std::memcmp(a.packed().block_data(),
                          other->packed().block_data(),
                          static_cast<size_t>(a.packed().num_blocks()) *
                              a.packed().block_stride() * sizeof(float)),
              0);
  }
}

TEST_F(IvfIndexTest, CatalogSmallerThanRequestedClustersClamps) {
  const auto model = MakeRandomModel(4, 5, 8, 11);
  IvfOptions opts;
  opts.num_clusters = 64;  // > catalog: must clamp to 5
  const IvfIndex index = IvfIndex::Build(model, opts);
  EXPECT_EQ(index.num_clusters(), 5);
  EXPECT_TRUE(index.VerifyStructure("test").ok());

  const PackedSnapshot exact = PackedSnapshot::Build(model);
  for (UserId u = 0; u < 4; ++u) {
    const auto want = ExactTopK(exact, u, 5);
    const auto got = AnnTopK(index, u, 5, index.num_clusters());
    ASSERT_EQ(want.size(), got.size());
    for (size_t x = 0; x < want.size(); ++x) {
      EXPECT_EQ(want[x].item, got[x].item);
    }
  }
}

TEST_F(IvfIndexTest, SingleClusterCatalogIsAlwaysExact) {
  const auto model = MakeRandomModel(4, 100, 8, 13);
  IvfOptions opts;
  opts.num_clusters = 1;
  const IvfIndex index = IvfIndex::Build(model, opts);
  EXPECT_EQ(index.num_clusters(), 1);

  const PackedSnapshot exact = PackedSnapshot::Build(model);
  for (UserId u = 0; u < 4; ++u) {
    const auto want = ExactTopK(exact, u, 10);
    const auto got = AnnTopK(index, u, 10, /*nprobe=*/1);
    ASSERT_EQ(want.size(), got.size());
    for (size_t x = 0; x < want.size(); ++x) {
      EXPECT_EQ(want[x].item, got[x].item);
      EXPECT_EQ(want[x].score, got[x].score);
    }
  }
}

TEST_F(IvfIndexTest, EmptyClustersAreSkippedAndHarmless) {
  // Three distinct item points but 8 requested clusters: at least five
  // clusters end up empty. Probe selection must skip them and full-probe
  // agreement must still hold.
  FactorModel model(3, 48, 4);
  Rng rng(19);
  for (UserId u = 0; u < 3; ++u) {
    auto uf = model.UserFactors(u);
    for (int32_t f = 0; f < 4; ++f) {
      uf[static_cast<size_t>(f)] = rng.NextDouble() - 0.5;
    }
  }
  for (ItemId i = 0; i < 48; ++i) {
    auto vf = model.ItemFactors(i);
    for (int32_t f = 0; f < 4; ++f) {
      vf[static_cast<size_t>(f)] = (i % 3 == f % 3) ? 1.0 : -1.0;
    }
    model.ItemBias(i) = static_cast<double>(i % 3);
  }
  IvfOptions opts;
  opts.num_clusters = 8;
  const IvfIndex index = IvfIndex::Build(model, opts);
  EXPECT_TRUE(index.VerifyStructure("test").ok());

  const PackedSnapshot exact = PackedSnapshot::Build(model);
  for (UserId u = 0; u < 3; ++u) {
    const auto want = ExactTopK(exact, u, 12);
    const auto got = AnnTopK(index, u, 12, index.num_clusters());
    ASSERT_EQ(want.size(), got.size());
    for (size_t x = 0; x < want.size(); ++x) {
      EXPECT_EQ(want[x].item, got[x].item);
    }
  }
}

TEST_F(IvfIndexTest, NprobeIsClampedAtBothEnds) {
  const auto model = MakeRandomModel(2, 200, 8, 23);
  IvfOptions opts;
  opts.num_clusters = 10;
  const IvfIndex index = IvfIndex::Build(model, opts);

  std::vector<IvfProbeRange> probes;
  int32_t used = 0;
  // Oversized nprobe clamps to num_clusters: the whole catalog is covered.
  index.SelectProbes(0, 1 << 20, /*min_items=*/1, &probes, &used);
  EXPECT_EQ(used, index.num_clusters());
  EXPECT_EQ(IvfIndex::CoveredItems(probes), 200u);
  // Zero/negative fall back to the index default.
  index.SelectProbes(0, 0, 1, &probes, &used);
  EXPECT_EQ(used, index.default_nprobe());
  index.SelectProbes(0, -3, 1, &probes, &used);
  EXPECT_EQ(used, index.default_nprobe());
}

TEST_F(IvfIndexTest, MinItemsWidensProbesUntilKIsServable) {
  // k larger than any single cluster: SelectProbes must widen past nprobe=1
  // until the shortlist can fill k slots.
  const auto model = MakeRandomModel(2, 400, 8, 29);
  IvfOptions opts;
  opts.num_clusters = 16;
  const IvfIndex index = IvfIndex::Build(model, opts);

  std::vector<IvfProbeRange> probes;
  int32_t used = 0;
  index.SelectProbes(0, /*nprobe=*/1, /*min_items=*/300, &probes, &used);
  EXPECT_GT(used, 1);
  EXPECT_GE(IvfIndex::CoveredItems(probes), 300u);
}

TEST_F(IvfIndexTest, RebuildDirtyReassignsOnlyChangedItems) {
  auto model = MakeRandomModel(4, 600, 8, 31);
  IvfOptions opts;
  opts.num_clusters = 20;
  const IvfIndex first = IvfIndex::Build(model, opts);

  // No parameter change: a no-op rebuild, bit-identical to its seed.
  int64_t reassigned = -1;
  auto same = IvfIndex::RebuildDirty(first, model, opts, &reassigned);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(reassigned, 0);
  for (ItemId i = 0; i < 600; ++i) {
    EXPECT_EQ(first.ClusterOf(i), same->ClusterOf(i));
    EXPECT_EQ(first.ToGlobal(i), same->ToGlobal(i));
  }

  // Perturb 3 items: exactly those go back through assignment, and the
  // result still binds to the new model.
  for (ItemId i : {ItemId{5}, ItemId{250}, ItemId{599}}) {
    model.ItemFactors(i)[0] += 2.0;
  }
  auto dirty = IvfIndex::RebuildDirty(first, model, opts, &reassigned);
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(reassigned, 3);
  EXPECT_TRUE(VerifyIvfBinding(model, *dirty, "test").ok());
  // The stale seed no longer binds.
  EXPECT_EQ(VerifyIvfBinding(model, first, "test").code(),
            StatusCode::kFailedPrecondition);

  // Incompatible options refuse instead of silently rebuilding.
  IvfOptions other = opts;
  other.seed = 999;
  EXPECT_EQ(IvfIndex::RebuildDirty(first, model, other, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IvfIndexTest, DesyncedIndexPassesStructureButFailsRecallGate) {
  // The canonical corruption: assignments desynced from V while still a
  // bijection. Structure alone cannot see it; the measured recall gate
  // against the independent base-order ground truth must.
  const auto model = testing::MakeClusteredItemModel(
      16, 800, 16, /*num_centers=*/16, /*noise=*/0.05, 37);
  const PackedSnapshot exact = PackedSnapshot::Build(model);
  IvfOptions opts;
  opts.num_clusters = 16;
  opts.default_nprobe = 8;
  IvfIndex index = IvfIndex::Build(model, opts);
  ASSERT_TRUE(VerifyIvfRecall(exact, index, 16, 10, 0, 0.95, "test").ok());

  index.DesyncForTesting();
  EXPECT_TRUE(index.VerifyStructure("test").ok());  // still a bijection
  const Status gate = VerifyIvfRecall(exact, index, 16, 10, 0, 0.95, "test");
  EXPECT_EQ(gate.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(gate.message().find("recall"), std::string::npos);
}

TEST_F(IvfIndexTest, AnnQueryRespectsExcludeMinScoreAndHistory) {
  const auto history = testing::MakeLearnableDataset(10, 300, 6, 41);
  auto rec = Recommender::Create(MakeRandomModel(10, 300, 16, 41), history);
  ASSERT_TRUE(rec.ok());
  IvfOptions opts;
  opts.num_clusters = 12;
  ASSERT_TRUE(rec->EnableIvf(opts, /*verify_sample_users=*/10,
                             /*verify_recall_floor=*/0.5)
                  .ok());

  QueryOptions ann;
  ann.ann = true;
  ann.ann_nprobe = 12;  // full probe: ANN ranking == exact ranking
  ann.exclude = {0, 1, 2, 3, 4, 5, 6, 7};
  auto got = rec->Recommend(0, 50, ann);
  ASSERT_TRUE(got.ok());
  for (const ScoredItem& item : *got) {
    EXPECT_GT(item.item, 7) << "excluded item served through ANN";
    EXPECT_FALSE(history.IsObserved(0, item.item))
        << "history item served through ANN";
  }

  // min_score keeps the surviving prefix of the same ANN ranking.
  QueryOptions floored = ann;
  floored.min_score = (*got)[got->size() / 2].score;
  auto filtered = rec->Recommend(0, 50, floored);
  ASSERT_TRUE(filtered.ok());
  ASSERT_LE(filtered->size(), got->size());
  for (size_t x = 0; x < filtered->size(); ++x) {
    EXPECT_EQ((*filtered)[x].item, (*got)[x].item) << "rank " << x;
    EXPECT_GE((*filtered)[x].score, *floored.min_score);
  }
}

TEST_F(IvfIndexTest, KBeyondShortlistStillFillsFromWidenedProbes) {
  // k = whole catalog with nprobe=1: the widening guarantee must deliver
  // every servable item, matching the exact path's result count and order.
  const auto history = testing::MakeLearnableDataset(6, 120, 5, 43);
  auto rec = Recommender::Create(MakeRandomModel(6, 120, 8, 43), history);
  ASSERT_TRUE(rec.ok());
  IvfOptions opts;
  opts.num_clusters = 10;
  ASSERT_TRUE(rec->EnableIvf(opts).ok());

  QueryOptions exact_opts;  // packed full scan
  QueryOptions ann;
  ann.ann = true;
  ann.ann_nprobe = 1;
  for (UserId u = 0; u < 6; ++u) {
    auto want = rec->Recommend(u, 120, exact_opts);
    auto got = rec->Recommend(u, 120, ann);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    // Widening covers the entire catalog, so even "nprobe=1" is exact here.
    ASSERT_EQ(want->size(), got->size());
    for (size_t x = 0; x < want->size(); ++x) {
      EXPECT_EQ((*want)[x].item, (*got)[x].item) << "user " << u;
      EXPECT_EQ((*want)[x].score, (*got)[x].score);
    }
  }
}

TEST_F(IvfIndexTest, DeadlineExpiryUnderAnnReturnsDeadlineExceeded) {
  const auto history = testing::MakeLearnableDataset(4, 3000, 5, 47);
  auto rec = Recommender::Create(MakeRandomModel(4, 3000, 8, 47), history);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->EnableIvf({}).ok());

  // Every ANN chunk stalls 2ms; a 1ms budget must expire mid-shortlist.
  FaultInjector::Instance().Arm(FaultPoint::kServeSlowBlock,
                                {/*trigger_at_hit=*/1, /*max_fires=*/-1});
  QueryOptions ann;
  ann.ann = true;
  ann.deadline = std::chrono::microseconds(1000);
  auto got = rec->Recommend(0, 10, ann);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(got.status().message().find("ann"), std::string::npos);
}

TEST_F(IvfIndexTest, BatchPartialPrefixUnderAnnMatchesUnboundedAnswers) {
  // A deadline that expires mid-batch hands back the completed prefix; every
  // completed user's list must equal the unbounded ANN answer — a correct
  // prefix of the ANN ranking, never a half-scored one.
  const auto history = testing::MakeLearnableDataset(16, 2000, 5, 53);
  auto rec = Recommender::Create(MakeRandomModel(16, 2000, 8, 53), history);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->EnableIvf({}).ok());

  std::vector<UserId> users(16);
  for (UserId u = 0; u < 16; ++u) users[static_cast<size_t>(u)] = u;
  QueryOptions ann;
  ann.ann = true;
  ann.num_threads = 1;
  auto unbounded = rec->RecommendBatch(users, 10, ann);
  ASSERT_TRUE(unbounded.ok());

  FaultInjector::Instance().Arm(FaultPoint::kServeSlowBlock,
                                {/*trigger_at_hit=*/1, /*max_fires=*/-1});
  QueryOptions bounded = ann;
  bounded.deadline = std::chrono::microseconds(4000);
  auto partial = rec->RecommendBatchPartial(users, 10, bounded);
  ASSERT_TRUE(partial.ok());
  for (size_t i = 0; i < users.size(); ++i) {
    if (!partial->complete[i]) {
      EXPECT_TRUE(partial->results[i].empty());
      continue;
    }
    ASSERT_EQ(partial->results[i].size(), (*unbounded)[i].size());
    for (size_t x = 0; x < partial->results[i].size(); ++x) {
      EXPECT_EQ(partial->results[i][x].item, (*unbounded)[i][x].item);
      EXPECT_EQ(partial->results[i][x].score, (*unbounded)[i][x].score);
    }
  }
}

TEST_F(IvfIndexTest, EmptyCatalogBuildsAnEmptyIndex) {
  FactorModel model(3, 0, 4);
  const IvfIndex index = IvfIndex::Build(model, {});
  EXPECT_EQ(index.num_items(), 0);
  EXPECT_EQ(index.num_clusters(), 0);
  EXPECT_TRUE(index.VerifyStructure("test").ok());
}

}  // namespace
}  // namespace clapf
