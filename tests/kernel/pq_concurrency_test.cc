// Concurrency drills for the quantized first-pass path: query threads
// streaming a slice's int8 codes while a writer republishes (code book +
// codes rebuilt and swapped with the index through the same RCU snapshot
// hop) must stay clean under ThreadSanitizer, with every reply either a
// valid pq answer or a typed serving outcome. Part of the `pq` ctest label —
// the TSan acceptance suite for the code-book hot-swap path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "clapf/model/ivf_index.h"
#include "clapf/recommender.h"
#include "clapf/serving/model_server.h"
#include "clapf/serving/publish_request.h"
#include "clapf/serving/sharded_server.h"
#include "clapf/util/random.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

FactorModel MakeRandomModel(int32_t num_users, int32_t num_items,
                            int32_t num_factors, uint64_t seed) {
  FactorModel model(num_users, num_items, num_factors);
  Rng rng(seed);
  model.InitGaussian(rng, 0.5);
  for (ItemId i = 0; i < num_items; ++i) {
    model.ItemBias(i) = rng.NextDouble() - 0.5;
  }
  return model;
}

TEST(PqConcurrencyTest, QueriesRaceRepublishCodeBookSwapCleanly) {
  // 4 reader threads run quantized-first-pass queries flat out while the
  // writer republishes perturbed candidates; most publishes take the
  // frozen-book incremental path, so readers continuously race code arrays
  // being copied item-by-item on the build thread. TSan is the real
  // assertion; on top of it every reply must be well-formed.
  const auto history = testing::MakeLearnableDataset(16, 600, 6, 211);
  ServerOptions options;
  options.num_threads = 2;
  options.ann = true;
  options.ivf.num_clusters = 10;
  options.ivf.default_nprobe = 5;
  options.ivf.pq = true;
  // The race is the thing being drilled; the measured composed gate would
  // only add noise (and CPU) to every stress publish.
  options.canary.ann_recall_floor = 0.0;
  ModelServer server(history, options);
  auto model = MakeRandomModel(16, 600, 8, 211);
  ASSERT_TRUE(server.PublishModel(model).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      QueryOptions pq;
      pq.ann = true;
      pq.pq = true;
      pq.ann_nprobe = 1 + t * 3;      // every thread probes a different width
      pq.rerank_budget = 16 + t * 48;  // and keeps a different survivor count
      UserId u = static_cast<UserId>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto got = server.Recommend(u, 10, pq);
        if (got.ok()) {
          ASSERT_LE(got->size(), 10u);
          answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Under publish pressure the only acceptable non-answers are the
          // typed serving outcomes, never a torn code read.
          ASSERT_TRUE(got.status().code() == StatusCode::kUnavailable ||
                      got.status().code() == StatusCode::kDeadlineExceeded)
              << got.status().ToString();
        }
        u = static_cast<UserId>((u + 1) % 16);
      }
    });
  }

  for (int round = 0; round < 8; ++round) {
    // Perturb a sliver of the catalog so most publishes take the
    // incremental frozen-book path — the copy-then-swap being drilled.
    for (ItemId i = 0; i < 600; i += 97) {
      model.ItemFactors(i)[0] += 0.01 * (round + 1);
    }
    ASSERT_TRUE(server.PublishModel(model).ok());
  }
  // On a single-core box the publish loop can outrun the readers; once
  // publishes quiesce every query succeeds, so this wait is bounded.
  while (answered.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(answered.load(), 0);
  EXPECT_EQ(server.version(), 9);
}

TEST(PqConcurrencyTest, ShardedQueriesRacePerShardCodeBookReloads) {
  // Same drill against the scatter-gather front end: single-shard pq
  // republishes race broadcast queries, so readers continuously cut chains
  // where some shards serve a fresh code book and others the old one.
  const auto history = testing::MakeLearnableDataset(16, 480, 6, 223);
  ServerOptions options;
  options.num_threads = 2;
  options.num_shards = 4;
  options.ann = true;
  options.ivf.num_clusters = 6;
  options.ivf.default_nprobe = 3;
  options.ivf.pq = true;
  options.canary.ann_recall_floor = 0.0;
  ShardedModelServer server(history, options);
  auto model = MakeRandomModel(16, 480, 8, 223);
  ASSERT_TRUE(server.PublishModel(model).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      QueryOptions pq;
      pq.ann = true;
      pq.pq = true;
      UserId u = static_cast<UserId>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto got = server.RecommendOne(u, 8, pq);
        if (got.ok()) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_TRUE(got.status().code() == StatusCode::kUnavailable ||
                      got.status().code() == StatusCode::kDeadlineExceeded)
              << got.status().ToString();
        }
        u = static_cast<UserId>((u + 1) % 16);
      }
    });
  }

  for (int round = 0; round < 6; ++round) {
    for (ItemId i = 0; i < 480; i += 61) {
      model.ItemFactors(i)[0] += 0.02 * (round + 1);
    }
    ASSERT_TRUE(server
                    .PublishModel(PublishRequest(model).WithShard(round % 4))
                    .ok());
  }
  // Same single-core guard as above: let at least one broadcast land.
  while (answered.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(answered.load(), 0);
}

}  // namespace
}  // namespace clapf
