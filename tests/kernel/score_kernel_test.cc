// Unit tests for the packed SIMD scoring path: PackedSnapshot layout and
// repack fidelity, the portable and AVX2 kernels, the fused score+top-k
// scan, and the packed-vs-exact agreement verifier. Part of the `kernel`
// ctest label, which also runs under the Sanitize and Tsan presets.
#include "clapf/model/score_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "clapf/model/factor_model.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/util/random.h"
#include "clapf/util/top_k.h"

namespace clapf {
namespace {

// Every test leaves kernel dispatch in its default (auto) state.
class ScoreKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearScoreKernelOverride(); }
};

FactorModel MakeRandomModel(int32_t num_users, int32_t num_items,
                            int32_t num_factors, bool use_item_bias,
                            uint64_t seed) {
  FactorModel model(num_users, num_items, num_factors, use_item_bias);
  Rng rng(seed);
  model.InitGaussian(rng, 0.5);
  if (use_item_bias) {
    for (ItemId i = 0; i < num_items; ++i) {
      model.ItemBias(i) = rng.NextDouble() - 0.5;
    }
  }
  return model;
}

double L1Terms(const FactorModel& model, UserId u, ItemId i) {
  auto uf = model.UserFactors(u);
  auto vf = model.ItemFactors(i);
  double l1 = model.use_item_bias() ? std::abs(model.ItemBias(i)) : 0.0;
  for (int32_t f = 0; f < model.num_factors(); ++f) {
    l1 += std::abs(uf[static_cast<size_t>(f)] * vf[static_cast<size_t>(f)]);
  }
  return l1;
}

TEST_F(ScoreKernelTest, PackedLayoutMatchesContract) {
  const auto model = MakeRandomModel(3, 10, 3, /*use_item_bias=*/true, 7);
  const PackedSnapshot snap = PackedSnapshot::Build(model);

  EXPECT_EQ(snap.num_items(), 10);
  EXPECT_EQ(snap.num_blocks(), 2);  // ceil(10 / 8)
  EXPECT_EQ(snap.block_stride(), static_cast<size_t>((3 + 1) * 8));
  EXPECT_TRUE(snap.use_item_bias());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(snap.block_data()) %
                kPackedAlignment,
            0u);

  for (ItemId i = 0; i < snap.num_items(); ++i) {
    const float* blk =
        snap.block_data() +
        static_cast<size_t>(i / kPackedBlockItems) * snap.block_stride();
    const int lane = i % kPackedBlockItems;
    EXPECT_EQ(blk[lane], static_cast<float>(model.ItemBias(i)))
        << "bias lane of item " << i;
    auto vf = model.ItemFactors(i);
    for (int32_t f = 0; f < 3; ++f) {
      EXPECT_EQ(blk[static_cast<size_t>(f + 1) * kPackedBlockItems + lane],
                static_cast<float>(vf[static_cast<size_t>(f)]))
          << "factor " << f << " of item " << i;
    }
  }
  // Tail pad lanes (items 10..15 of block 1) are zero in every strip.
  const float* tail = snap.block_data() + snap.block_stride();
  for (int lane = 10 % kPackedBlockItems; lane < kPackedBlockItems; ++lane) {
    for (int32_t strip = 0; strip < 4; ++strip) {
      EXPECT_EQ(tail[static_cast<size_t>(strip) * kPackedBlockItems + lane],
                0.0f);
    }
  }
}

TEST_F(ScoreKernelTest, BuildHandlesEmptyModel) {
  FactorModel model(0, 0, 4);
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  EXPECT_EQ(snap.num_blocks(), 0);
  EXPECT_EQ(snap.num_items(), 0);
  std::vector<double> scores;
  snap.ScoreItemRange(0, 0, 0, &scores);  // no-op, no crash
}

TEST_F(ScoreKernelTest, PortableAgreesWithExactWithinBound) {
  ForceScoreKernel(ScoreKernel::kPortable);
  for (const bool bias : {true, false}) {
    const auto model = MakeRandomModel(5, 101, 20, bias, 11);
    const PackedSnapshot snap = PackedSnapshot::Build(model);
    std::vector<double> exact, approx(101);
    for (UserId u = 0; u < model.num_users(); ++u) {
      model.ScoreAllItems(u, &exact);
      snap.ScoreItemRange(u, 0, 101, &approx);
      for (ItemId i = 0; i < 101; ++i) {
        const double bound =
            PackedScoreBound(model.num_factors(), L1Terms(model, u, i));
        EXPECT_LE(std::abs(exact[static_cast<size_t>(i)] -
                           approx[static_cast<size_t>(i)]),
                  bound)
            << "user " << u << " item " << i << " bias=" << bias;
      }
    }
  }
}

TEST_F(ScoreKernelTest, Avx2AgreesWithPortable) {
  if (!ScoreKernelSupported(ScoreKernel::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2/FMA";
  }
  const auto model = MakeRandomModel(4, 77, 16, /*use_item_bias=*/true, 3);
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  const int32_t nb = snap.num_blocks();
  std::vector<float> portable(static_cast<size_t>(nb) * kPackedBlockItems);
  std::vector<float> avx2(portable.size());
  for (UserId u = 0; u < model.num_users(); ++u) {
    ForceScoreKernel(ScoreKernel::kPortable);
    ScoreBlocks(snap, u, 0, nb, portable.data());
    ForceScoreKernel(ScoreKernel::kAvx2);
    ScoreBlocks(snap, u, 0, nb, avx2.data());
    for (size_t x = 0; x < portable.size(); ++x) {
      // FMA keeps the product unrounded, so the two kernels differ by at
      // most a few float32 ulps of the accumulated magnitude.
      EXPECT_NEAR(portable[x], avx2[x], 1e-4f) << "lane " << x;
    }
  }
}

TEST_F(ScoreKernelTest, Avx2AgreesWithExactWithinBound) {
  if (!ScoreKernelSupported(ScoreKernel::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2/FMA";
  }
  ForceScoreKernel(ScoreKernel::kAvx2);
  const auto model = MakeRandomModel(6, 130, 64, /*use_item_bias=*/true, 5);
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  std::vector<double> exact, approx(130);
  for (UserId u = 0; u < model.num_users(); ++u) {
    model.ScoreAllItems(u, &exact);
    snap.ScoreItemRange(u, 0, 130, &approx);
    for (ItemId i = 0; i < 130; ++i) {
      EXPECT_LE(std::abs(exact[static_cast<size_t>(i)] -
                         approx[static_cast<size_t>(i)]),
                PackedScoreBound(64, L1Terms(model, u, i)))
          << "user " << u << " item " << i;
    }
  }
}

TEST_F(ScoreKernelTest, ScoreItemRangeHandlesUnalignedBounds) {
  const auto model = MakeRandomModel(2, 50, 8, /*use_item_bias=*/true, 13);
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  std::vector<double> full(50), part(50, -1000.0);
  snap.ScoreItemRange(0, 0, 50, &full);
  snap.ScoreItemRange(0, 3, 13, &part);  // straddles a block boundary
  for (ItemId i = 3; i < 13; ++i) {
    EXPECT_EQ(part[static_cast<size_t>(i)], full[static_cast<size_t>(i)]);
  }
  // Outside the range is untouched.
  EXPECT_EQ(part[2], -1000.0);
  EXPECT_EQ(part[13], -1000.0);
}

TEST_F(ScoreKernelTest, FusedTopKMatchesScoreThenSelect) {
  const auto model = MakeRandomModel(3, 203, 16, /*use_item_bias=*/true, 17);
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  std::vector<bool> excluded(203, false);
  Rng rng(99);
  for (ItemId i = 0; i < 203; ++i) excluded[i] = rng.NextDouble() < 0.3;

  for (UserId u = 0; u < model.num_users(); ++u) {
    std::vector<double> scores(203);
    snap.ScoreItemRange(u, 0, 203, &scores);
    const auto want = SelectTopK(scores, excluded, 10);

    TopKAccumulator acc(10);
    // Feed in two chunks to exercise the block-aligned begin contract.
    ScoreBlocksTopK(snap, u, 0, 128, &excluded, &acc);
    ScoreBlocksTopK(snap, u, 128, 203, &excluded, &acc);
    const auto got = acc.Take();

    ASSERT_EQ(got.size(), want.size());
    for (size_t x = 0; x < want.size(); ++x) {
      EXPECT_EQ(got[x].item, want[x].item) << "rank " << x;
      EXPECT_EQ(got[x].score, want[x].score) << "rank " << x;
    }
  }
}

TEST_F(ScoreKernelTest, FusedTopKPreservesTieBreakOnEqualScores) {
  // All items share identical factors (and zero bias), so every packed score
  // is bit-identical: the early-reject must not starve the tie-break, and
  // the k smallest ids must win.
  FactorModel model(1, 40, 4, /*use_item_bias=*/false);
  for (int32_t f = 0; f < 4; ++f) model.UserFactors(0)[f] = 0.5;
  for (ItemId i = 0; i < 40; ++i) {
    for (int32_t f = 0; f < 4; ++f) model.ItemFactors(i)[f] = 0.25;
  }
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  TopKAccumulator acc(5);
  ScoreBlocksTopK(snap, 0, 0, 40, nullptr, &acc);
  const auto got = acc.Take();
  ASSERT_EQ(got.size(), 5u);
  for (int32_t x = 0; x < 5; ++x) EXPECT_EQ(got[static_cast<size_t>(x)].item, x);
}

TEST_F(ScoreKernelTest, FusedTopKNullExcludedMeansNoExclusion) {
  const auto model = MakeRandomModel(1, 30, 8, /*use_item_bias=*/true, 23);
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  std::vector<double> scores(30);
  snap.ScoreItemRange(0, 0, 30, &scores);
  TopKAccumulator acc(3);
  ScoreBlocksTopK(snap, 0, 0, 30, nullptr, &acc);
  const auto got = acc.Take();
  const auto want = SelectTopK(scores, {}, 3);
  ASSERT_EQ(got.size(), 3u);
  for (size_t x = 0; x < 3; ++x) EXPECT_EQ(got[x].item, want[x].item);
}

TEST_F(ScoreKernelTest, DispatchOverrideRoundTrips) {
  ForceScoreKernel(ScoreKernel::kPortable);
  EXPECT_EQ(ActiveScoreKernel(), ScoreKernel::kPortable);
  EXPECT_STREQ(ScoreKernelName(ActiveScoreKernel()), "portable");
  if (ScoreKernelSupported(ScoreKernel::kAvx2)) {
    ForceScoreKernel(ScoreKernel::kAvx2);
    EXPECT_EQ(ActiveScoreKernel(), ScoreKernel::kAvx2);
    EXPECT_STREQ(ScoreKernelName(ActiveScoreKernel()), "avx2");
  }
  ClearScoreKernelOverride();
  // Auto dispatch lands on a supported kernel.
  EXPECT_TRUE(ScoreKernelSupported(ActiveScoreKernel()));
}

TEST_F(ScoreKernelTest, VerifyPackedAgreementAcceptsFaithfulRepack) {
  const auto model = MakeRandomModel(9, 64, 12, /*use_item_bias=*/true, 29);
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  EXPECT_TRUE(VerifyPackedAgreement(model, snap, 9, "test").ok());
}

TEST_F(ScoreKernelTest, VerifyPackedAgreementCatchesCorruption) {
  const auto model = MakeRandomModel(9, 64, 12, /*use_item_bias=*/true, 31);
  PackedSnapshot snap = PackedSnapshot::Build(model);
  // Flip one factor lane far outside any rounding bound.
  snap.mutable_block_data()[kPackedBlockItems + 2] += 100.0f;
  const Status got = VerifyPackedAgreement(model, snap, 9, "drill");
  EXPECT_EQ(got.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(got.message().find("drill"), std::string::npos);
}

TEST_F(ScoreKernelTest, VerifyPackedAgreementRejectsDimensionMismatch) {
  const auto model = MakeRandomModel(4, 32, 8, /*use_item_bias=*/true, 37);
  const auto other = MakeRandomModel(4, 40, 8, /*use_item_bias=*/true, 37);
  const PackedSnapshot snap = PackedSnapshot::Build(other);
  EXPECT_EQ(VerifyPackedAgreement(model, snap, 4, "test").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace clapf
