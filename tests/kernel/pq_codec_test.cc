// Isolation tests for the quantized first-pass codec: per-lane round-trip
// error inside the book's half-step bound, bit-identical books and codes at
// any build thread count, degenerate catalogs (empty, sub-block, constant
// lane), portable-vs-AVX2 quantized kernel parity, and the smaller-local-id
// tie-break under the coarse codes' frequent score collisions. Part of the
// `pq` ctest label.
#include "clapf/model/pq_codec.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "clapf/model/factor_model.h"
#include "clapf/model/ivf_index.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/model/score_kernel.h"
#include "clapf/util/random.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

FactorModel MakeModel(int32_t num_users, int32_t num_items,
                      int32_t num_factors, uint64_t seed) {
  return testing::MakeClusteredItemModel(num_users, num_items, num_factors,
                                         /*num_centers=*/8, /*noise=*/0.1,
                                         seed);
}

TEST(PqCodecTest, RoundTripErrorStaysWithinHalfStep) {
  const FactorModel model = MakeModel(4, 500, 12, 7);
  const PackedSnapshot packed = PackedSnapshot::Build(model);
  const PqCodes codes =
      PqCodes::Encode(packed, PqCodes::TrainBook(packed, 1), 1);
  ASSERT_EQ(codes.num_items(), packed.num_items());
  const int32_t lanes = packed.num_factors() + 1;
  const float* floats = packed.block_data();
  for (ItemId i = 0; i < packed.num_items(); ++i) {
    const std::size_t block = static_cast<std::size_t>(i) / kPackedBlockItems;
    const std::size_t pos = static_cast<std::size_t>(i) % kPackedBlockItems;
    for (int32_t l = 0; l < lanes; ++l) {
      const float exact =
          floats[block * packed.block_stride() +
                 static_cast<std::size_t>(l) * kPackedBlockItems + pos];
      const float step = codes.book().scale[static_cast<size_t>(l)];
      // Nearest-code rounding: at most half a quantization step away, plus
      // a whisper of float slack for the affine arithmetic itself.
      EXPECT_LE(std::abs(codes.DecodeLane(i, l) - exact),
                step / 2.0f + 1e-5f)
          << "item " << i << " lane " << l;
    }
  }
}

TEST(PqCodecTest, BookAndCodesBitIdenticalAcrossBuildThreads) {
  const FactorModel model = MakeModel(4, 700, 16, 11);
  const PackedSnapshot packed = PackedSnapshot::Build(model);
  const PqCodeBook book1 = PqCodes::TrainBook(packed, 1);
  const PqCodeBook book4 = PqCodes::TrainBook(packed, 4);
  ASSERT_EQ(book1.num_lanes(), book4.num_lanes());
  EXPECT_EQ(std::memcmp(book1.scale.data(), book4.scale.data(),
                        book1.scale.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(book1.offset.data(), book4.offset.data(),
                        book1.offset.size() * sizeof(float)),
            0);
  const PqCodes codes1 = PqCodes::Encode(packed, book1, 1);
  const PqCodes codes4 = PqCodes::Encode(packed, book4, 4);
  ASSERT_EQ(codes1.num_blocks(), codes4.num_blocks());
  ASSERT_EQ(codes1.block_stride(), codes4.block_stride());
  EXPECT_EQ(std::memcmp(codes1.block_codes(), codes4.block_codes(),
                        static_cast<std::size_t>(codes1.num_blocks()) *
                            codes1.block_stride()),
            0);
}

TEST(PqCodecTest, EmptyCatalogEncodesToNothing) {
  const FactorModel model(3, 0, 4);
  const PackedSnapshot packed = PackedSnapshot::Build(model);
  const PqCodes codes =
      PqCodes::Encode(packed, PqCodes::TrainBook(packed, 1), 1);
  EXPECT_EQ(codes.num_items(), 0);
  EXPECT_EQ(codes.num_blocks(), 0);
  EXPECT_TRUE(codes.VerifyGeometry(packed, "empty").ok());
}

TEST(PqCodecTest, CatalogSmallerThanOneBlockRoundTrips) {
  // 5 items < kPackedBlockItems: one tail block whose pad lanes must never
  // leak into decoded values for the real items.
  const FactorModel model = MakeModel(2, 5, 6, 13);
  const PackedSnapshot packed = PackedSnapshot::Build(model);
  const PqCodes codes =
      PqCodes::Encode(packed, PqCodes::TrainBook(packed, 1), 1);
  EXPECT_EQ(codes.num_items(), 5);
  EXPECT_EQ(codes.num_blocks(), 1);
  for (ItemId i = 0; i < 5; ++i) {
    for (int32_t l = 0; l < packed.num_factors() + 1; ++l) {
      const float step = codes.book().scale[static_cast<size_t>(l)];
      const float exact =
          packed.block_data()[static_cast<std::size_t>(l) * kPackedBlockItems +
                              static_cast<std::size_t>(i)];
      EXPECT_LE(std::abs(codes.DecodeLane(i, l) - exact),
                step / 2.0f + 1e-5f);
    }
  }
}

TEST(PqCodecTest, ConstantLaneIsDegenerateAndDecodesExactly) {
  // Every item shares factor 0, so that lane's min == max: the book must
  // collapse it to scale 0 and reproduce the value bit-exactly.
  FactorModel model = MakeModel(2, 100, 4, 17);
  for (ItemId i = 0; i < 100; ++i) model.ItemFactors(i)[0] = 0.625;
  const PackedSnapshot packed = PackedSnapshot::Build(model);
  const PqCodes codes =
      PqCodes::Encode(packed, PqCodes::TrainBook(packed, 1), 1);
  // Lane 1 is factor 0 (lane 0 is the bias strip).
  EXPECT_EQ(codes.book().scale[1], 0.0f);
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_EQ(codes.DecodeLane(i, 1), 0.625f);
  }
}

TEST(PqCodecTest, QuantizedKernelPortableMatchesAvx2) {
  if (!ScoreKernelSupported(ScoreKernel::kAvx2)) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  const FactorModel model = MakeModel(6, 333, 16, 19);
  const PackedSnapshot packed = PackedSnapshot::Build(model);
  const PqCodes codes =
      PqCodes::Encode(packed, PqCodes::TrainBook(packed, 1), 1);
  std::vector<float> weights(static_cast<size_t>(packed.num_factors()) + 1);
  const float base = PqPrepareQuery(codes.book(), packed.user_factors(2),
                                    packed.num_factors(), weights.data());
  const int32_t blocks = codes.num_blocks();
  std::vector<float> portable(static_cast<size_t>(blocks) *
                              kPackedBlockItems);
  std::vector<float> avx2(portable.size());
  ForceScoreKernel(ScoreKernel::kPortable);
  PqScoreBlocks(codes.block_codes(), codes.block_stride(),
                packed.num_factors(), weights.data(), base, 0, blocks,
                portable.data());
  ForceScoreKernel(ScoreKernel::kAvx2);
  PqScoreBlocks(codes.block_codes(), codes.block_stride(),
                packed.num_factors(), weights.data(), base, 0, blocks,
                avx2.data());
  ClearScoreKernelOverride();
  for (size_t i = 0; i < portable.size(); ++i) {
    // Both kernels run the identical fma-per-lane recurrence over the same
    // int8 codes; only instruction selection differs, so agreement is tight.
    EXPECT_NEAR(portable[i], avx2[i], 1e-4f) << "slot " << i;
  }
}

TEST(PqCodecTest, QuantizedCollisionsBreakTiesTowardSmallerLocalIds) {
  // Every item identical: all quantized scores collide, so the first pass
  // must keep exactly the smallest local ids — the same deterministic
  // tie-break the exact kernels guarantee.
  FactorModel model(2, 64, 3);
  Rng rng(23);
  model.InitGaussian(rng, 0.3);
  for (ItemId i = 1; i < 64; ++i) {
    for (int32_t f = 0; f < 3; ++f) {
      model.ItemFactors(i)[f] = model.ItemFactors(0)[f];
    }
    model.ItemBias(i) = model.ItemBias(0);
  }
  IvfOptions options;
  options.num_clusters = 1;
  options.pq = true;
  const IvfIndex index = IvfIndex::Build(model, options);
  ASSERT_TRUE(index.has_pq());
  std::vector<IvfProbeRange> probes;
  index.SelectProbes(0, 1, 10, &probes, nullptr);
  std::vector<IvfProbeRange> rerank;
  int64_t survivors = 0;
  // Budget 20 < the 64-way tie: survivors must be locals 0..19, i.e. the
  // first ceil(20/8) = 3 blocks and nothing else.
  ASSERT_TRUE(index
                  .QuantizedShortlist(0, probes, /*rerank_budget=*/20,
                                      nullptr, std::nullopt, &rerank,
                                      &survivors)
                  .ok());
  EXPECT_EQ(survivors, 20);
  ASSERT_EQ(rerank.size(), 1u);
  EXPECT_EQ(rerank[0].begin, 0);
  EXPECT_EQ(rerank[0].end, 24);
}

TEST(PqCodecTest, BlockBoundsDominateEveryItemScoreUnderEitherKernel) {
  // The pruning contract: for any query — negative lane weights included —
  // a block's corner bound scored by PqScoreBoundBlocks is >= every item
  // score PqScoreBlocks produces inside that block, bit-for-bit, because
  // both run the same accumulation chain and IEEE rounding is monotone.
  // Checked under each supported kernel separately (the guarantee is
  // per-chain, and portable and AVX2 order their FMAs differently).
  const int32_t d = 12;
  const FactorModel model = MakeModel(6, 700, d, 31);
  const PackedSnapshot packed = PackedSnapshot::Build(model);
  const PqCodes codes =
      PqCodes::Encode(packed, PqCodes::TrainBook(packed, 1), 1);
  const int32_t lanes = d + 1;
  const std::size_t stride = codes.block_stride();
  Rng rng(77);
  for (const ScoreKernel kernel : {ScoreKernel::kPortable, ScoreKernel::kAvx2}) {
    if (!ScoreKernelSupported(kernel)) continue;
    ForceScoreKernel(kernel);
    for (int q = 0; q < 6; ++q) {
      // Signed user factors so both bound arrays get exercised.
      std::vector<float> uf(static_cast<size_t>(d));
      for (float& v : uf) v = static_cast<float>(rng.NextGaussian());
      std::vector<float> lane_weights(static_cast<size_t>(lanes));
      const float base =
          PqPrepareQuery(codes.book(), uf.data(), d, lane_weights.data());
      std::vector<const int8_t*> lane_src(static_cast<size_t>(lanes));
      for (int32_t l = 0; l < lanes; ++l) {
        lane_src[static_cast<size_t>(l)] =
            lane_weights[static_cast<size_t>(l)] >= 0.0f
                ? codes.bound_lane_max()
                : codes.bound_lane_min();
      }
      const int32_t nsb = codes.num_bound_superblocks();
      std::vector<float> bounds(static_cast<size_t>(nsb) *
                                kPackedBlockItems);
      PqScoreBoundBlocks(lane_src.data(), stride, d, lane_weights.data(),
                         base, 0, nsb, bounds.data());
      std::vector<float> scores(
          static_cast<size_t>(codes.num_blocks()) * kPackedBlockItems);
      PqScoreBlocks(codes.block_codes(), stride, d, lane_weights.data(),
                    base, 0, codes.num_blocks(), scores.data());
      for (ItemId i = 0; i < codes.num_items(); ++i) {
        EXPECT_GE(bounds[static_cast<size_t>(i) / kPackedBlockItems],
                  scores[static_cast<size_t>(i)])
            << "kernel " << ScoreKernelName(kernel) << " query " << q
            << " item " << i;
      }
    }
  }
  ClearScoreKernelOverride();
}

}  // namespace
}  // namespace clapf
