// Serving drills for the quantized first-pass (pq) path: publish-time
// composed-recall gating (a corrupted code book is refused with a typed
// error + flight event while the prior snapshot keeps serving), full-budget
// bit-identity with the plain float ANN path, exclusion / min_score /
// deadline / batch-partial semantics under pq, per-shard code books with
// independent gates, and the frozen-book incremental rebuild. Part of the
// `pq` ctest label.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "clapf/model/ivf_index.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/obs/metrics.h"
#include "clapf/recommender.h"
#include "clapf/serving/model_server.h"
#include "clapf/serving/publish_request.h"
#include "clapf/serving/sharded_server.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/random.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

class PqServingTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

FactorModel MakeServableModel(int32_t num_users, int32_t num_items,
                              int32_t num_factors, int32_t num_centers,
                              uint64_t seed) {
  return testing::MakeClusteredItemModel(num_users, num_items, num_factors,
                                         num_centers, /*noise=*/0.05, seed);
}

ServerOptions PqOptions() {
  ServerOptions options;
  options.num_threads = 1;
  options.ann = true;
  options.ivf.num_clusters = 8;
  options.ivf.default_nprobe = 4;
  options.ivf.pq = true;
  options.canary.ann_recall_users = 16;
  return options;
}

int64_t CounterValue(MetricsRegistry* metrics, const std::string& name) {
  return metrics->GetCounter(name)->Value();
}

bool HasCanaryRejectEvent(const FlightRecorder& recorder) {
  for (const FlightEvent& event : recorder.Snapshot()) {
    if (event.kind == FlightEventKind::kCanaryReject) return true;
  }
  return false;
}

TEST_F(PqServingTest, PublishGatesComposedPathAndServesPqWithMetrics) {
  const auto history = testing::MakeLearnableDataset(20, 400, 8, 121);
  ModelServer server(history, PqOptions());
  ASSERT_TRUE(
      server.PublishModel(MakeServableModel(20, 400, 16, 8, 121)).ok());

  MetricsRegistry* metrics = server.mutable_metrics();
  EXPECT_EQ(CounterValue(metrics, "ann.recall_gate_pass_total"), 1);

  QueryOptions pq;
  pq.ann = true;
  pq.pq = true;
  auto got = server.Recommend(0, 10, pq);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 10u);
  EXPECT_EQ(CounterValue(metrics, "ann.queries_total"), 1);
  EXPECT_EQ(CounterValue(metrics, "ann.pq_queries_total"), 1);
  EXPECT_EQ(CounterValue(metrics, "ann.pq_fallback_total"), 0);
  const HistogramSnapshot survivors =
      metrics->GetHistogram("ann.rerank_survivors", DrawDepthBuckets())
          ->Snapshot();
  EXPECT_EQ(survivors.count, 1);
  EXPECT_GT(survivors.sum, 0.0);
  // Survivors never exceed the shortlist the first pass scanned.
  const HistogramSnapshot shortlist =
      metrics->GetHistogram("ann.shortlist_size", DrawDepthBuckets())
          ->Snapshot();
  EXPECT_EQ(shortlist.count, 1);
  EXPECT_LE(survivors.sum, shortlist.sum);
}

TEST_F(PqServingTest, FullBudgetPqBitIdenticalToPlainAnn) {
  const auto history = testing::MakeLearnableDataset(16, 400, 8, 127);
  ModelServer server(history, PqOptions());
  ASSERT_TRUE(
      server.PublishModel(MakeServableModel(16, 400, 16, 8, 127)).ok());

  QueryOptions ann;
  ann.ann = true;
  QueryOptions pq = ann;
  pq.pq = true;
  pq.rerank_budget = 400;  // >= every possible shortlist: degenerate case
  for (UserId u = 0; u < 16; ++u) {
    auto want = server.Recommend(u, 10, ann);
    auto got = server.Recommend(u, 10, pq);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(want->size(), got->size()) << "user " << u;
    for (size_t x = 0; x < want->size(); ++x) {
      EXPECT_EQ((*want)[x].item, (*got)[x].item) << "user " << u;
      EXPECT_EQ((*want)[x].score, (*got)[x].score) << "user " << u;
    }
  }
}

TEST_F(PqServingTest, CanaryRefusesCorruptCodesAndKeepsPriorSnapshot) {
  const auto history = testing::MakeLearnableDataset(20, 400, 8, 131);
  ServerOptions options = PqOptions();
  options.ivf.default_rerank_budget = 16;
  ModelServer server(history, options);
  ASSERT_TRUE(
      server.PublishModel(MakeServableModel(20, 400, 16, 8, 131)).ok());
  ASSERT_EQ(server.version(), 1);

  // The second publish's code book is scrambled in flight. Geometry,
  // floats, and every structural check stay intact — only the measured
  // composed-recall gate can notice, and it must refuse with a typed error,
  // a flight event, and the prior version retained. (The budget of 16 is
  // deliberately small relative to the ~25 blocks the shortlist spans:
  // survivors re-rank as whole blocks, so a budget that blankets every
  // block degenerates to plain ANN and would mask the scrambled codes.)
  FaultInjector::Instance().Arm(FaultPoint::kAnnCorruptCodes, {});
  const Status rejected =
      server.PublishModel(MakeServableModel(20, 400, 16, 8, 132));
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.message().find("recall"), std::string::npos);
  EXPECT_EQ(server.version(), 1);
  EXPECT_FALSE(server.degraded());
  EXPECT_EQ(server.stats().canary_rejects, 1);
  EXPECT_TRUE(HasCanaryRejectEvent(server.flight_recorder()));
  EXPECT_EQ(
      CounterValue(server.mutable_metrics(), "ann.recall_gate_fail_total"),
      1);

  // The retained snapshot's (uncorrupted) codes keep serving pq queries.
  FaultInjector::Instance().Reset();
  QueryOptions pq;
  pq.ann = true;
  pq.pq = true;
  EXPECT_TRUE(server.Recommend(0, 10, pq).ok());
  EXPECT_EQ(
      CounterValue(server.mutable_metrics(), "ann.pq_queries_total"), 1);
}

TEST_F(PqServingTest, ExclusionsAndMinScoreHoldUnderPq) {
  const auto history = testing::MakeLearnableDataset(12, 300, 6, 137);
  auto rec = Recommender::Create(MakeServableModel(12, 300, 8, 8, 137),
                                 history);
  ASSERT_TRUE(rec.ok());
  IvfOptions ivf;
  ivf.num_clusters = 8;
  ivf.pq = true;
  ASSERT_TRUE(rec->EnableIvf(ivf, 12, 0.95).ok());

  QueryOptions ann;
  ann.ann = true;
  ann.exclude = {3, 57, 120, 250};
  ann.min_score = 0.1;
  QueryOptions pq = ann;
  pq.pq = true;
  pq.rerank_budget = 300;  // full budget: answers must match exactly
  for (UserId u = 0; u < 12; ++u) {
    auto want = rec->Recommend(u, 10, ann);
    auto got = rec->Recommend(u, 10, pq);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(want->size(), got->size()) << "user " << u;
    for (size_t x = 0; x < got->size(); ++x) {
      EXPECT_EQ((*want)[x].item, (*got)[x].item);
      EXPECT_EQ((*want)[x].score, (*got)[x].score);
      EXPECT_GE((*got)[x].score, 0.1);
      for (ItemId ex : pq.exclude) EXPECT_NE((*got)[x].item, ex);
    }
  }
}

TEST_F(PqServingTest, DeadlineExpiresInsideQuantizedScan) {
  const auto history = testing::MakeLearnableDataset(4, 3000, 5, 139);
  auto rec = Recommender::Create(MakeServableModel(4, 3000, 8, 8, 139),
                                 history);
  ASSERT_TRUE(rec.ok());
  IvfOptions ivf;
  ivf.pq = true;
  ASSERT_TRUE(rec->EnableIvf(ivf).ok());

  // Every quantized chunk stalls 2ms; a 1ms budget must expire during the
  // first pass, before any exact re-rank work runs.
  FaultInjector::Instance().Arm(FaultPoint::kServeSlowBlock,
                                {/*trigger_at_hit=*/1, /*max_fires=*/-1});
  QueryOptions pq;
  pq.ann = true;
  pq.pq = true;
  pq.deadline = std::chrono::microseconds(1000);
  auto got = rec->Recommend(0, 10, pq);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(got.status().message().find("pq"), std::string::npos);
}

TEST_F(PqServingTest, BatchPartialPrefixUnderPqMatchesUnboundedAnswers) {
  const auto history = testing::MakeLearnableDataset(16, 2000, 5, 149);
  auto rec = Recommender::Create(MakeServableModel(16, 2000, 8, 8, 149),
                                 history);
  ASSERT_TRUE(rec.ok());
  IvfOptions ivf;
  ivf.pq = true;
  ASSERT_TRUE(rec->EnableIvf(ivf).ok());

  std::vector<UserId> users(16);
  for (UserId u = 0; u < 16; ++u) users[static_cast<size_t>(u)] = u;
  QueryOptions pq;
  pq.ann = true;
  pq.pq = true;
  pq.num_threads = 1;
  auto unbounded = rec->RecommendBatch(users, 10, pq);
  ASSERT_TRUE(unbounded.ok());

  FaultInjector::Instance().Arm(FaultPoint::kServeSlowBlock,
                                {/*trigger_at_hit=*/1, /*max_fires=*/-1});
  QueryOptions bounded = pq;
  bounded.deadline = std::chrono::microseconds(4000);
  auto partial = rec->RecommendBatchPartial(users, 10, bounded);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->deadline_exceeded);
  for (size_t i = 0; i < users.size(); ++i) {
    if (!partial->complete[i]) {
      // Unfinished users hand back nothing, never a half-scored ranking.
      EXPECT_TRUE(partial->results[i].empty());
      continue;
    }
    ASSERT_EQ(partial->results[i].size(), (*unbounded)[i].size());
    for (size_t x = 0; x < partial->results[i].size(); ++x) {
      EXPECT_EQ(partial->results[i][x].item, (*unbounded)[i][x].item);
      EXPECT_EQ(partial->results[i][x].score, (*unbounded)[i][x].score);
    }
  }
}

TEST_F(PqServingTest, ShardedPublishGatesEachShardCodeBookIndependently) {
  const auto history = testing::MakeLearnableDataset(20, 800, 8, 151);
  ServerOptions options = PqOptions();
  options.num_shards = 4;
  options.ivf.num_clusters = 4;  // per-shard catalogs are 200 items
  options.ivf.default_nprobe = 2;
  // Small relative to the ~13 blocks each shard's shortlist spans, so a
  // scrambled code book actually degrades the composed path the gate
  // measures (survivors re-rank as whole blocks).
  options.ivf.default_rerank_budget = 16;
  ShardedModelServer server(history, options);
  auto model = MakeServableModel(20, 800, 16, 4, 151);
  ASSERT_TRUE(server.PublishModel(model).ok());
  EXPECT_EQ(server.shard_versions(), (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_EQ(
      CounterValue(server.mutable_metrics(), "ann.recall_gate_pass_total"),
      4);

  // Corrupt exactly the republished shard's code book in flight: its
  // composed gate refuses, its siblings' slices stay untouched.
  for (ItemId i : {ItemId{210}, ItemId{250}, ItemId{390}}) {
    model.ItemFactors(i)[0] += 1e-3;
  }
  FaultInjector::Instance().Arm(FaultPoint::kAnnCorruptCodes, {});
  const Status rejected =
      server.PublishModel(PublishRequest(model).WithShard(1));
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.message().find("recall"), std::string::npos);
  EXPECT_EQ(server.shard_versions(), (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_EQ(
      CounterValue(server.mutable_metrics(), "ann.recall_gate_fail_total"),
      1);
  FaultInjector::Instance().Reset();

  // Fault gone: the same candidate republishes cleanly through the
  // frozen-book incremental path.
  ASSERT_TRUE(server.PublishModel(PublishRequest(model).WithShard(1)).ok());
  EXPECT_EQ(server.shard_versions(), (std::vector<int64_t>{1, 2, 1, 1}));
}

TEST_F(PqServingTest, ShardedFullProbeFullBudgetPqMatchesMonolithicExact) {
  const auto history = testing::MakeLearnableDataset(16, 320, 8, 157);
  const auto model = MakeServableModel(16, 320, 8, 8, 157);

  ServerOptions mono_options;
  mono_options.num_threads = 1;
  ModelServer mono(history, mono_options);
  ASSERT_TRUE(mono.PublishModel(model).ok());

  ServerOptions sharded_options = PqOptions();
  sharded_options.num_shards = 4;
  sharded_options.ivf.num_clusters = 5;
  ShardedModelServer sharded(history, sharded_options);
  ASSERT_TRUE(sharded.PublishModel(model).ok());

  QueryOptions exact;
  QueryOptions pq;
  pq.ann = true;
  pq.pq = true;
  pq.ann_nprobe = 1 << 20;     // clamps to every cluster in every shard
  pq.rerank_budget = 1 << 20;  // every shortlisted block survives
  for (UserId u = 0; u < 16; ++u) {
    auto want = mono.Recommend(u, 12, exact);
    auto got = sharded.RecommendOne(u, 12, pq);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(want->size(), got->size());
    for (size_t x = 0; x < want->size(); ++x) {
      EXPECT_EQ((*want)[x].item, (*got)[x].item)
          << "user " << u << " rank " << x;
      EXPECT_EQ((*want)[x].score, (*got)[x].score);
    }
  }
}

TEST_F(PqServingTest, RebuildDirtyFreezesBookAndReencodesOnlyDirtyItems) {
  auto model = MakeServableModel(8, 300, 8, 8, 163);
  IvfOptions options;
  options.num_clusters = 8;
  options.pq = true;
  const IvfIndex before = IvfIndex::Build(model, options);
  ASSERT_TRUE(before.has_pq());

  const std::vector<ItemId> dirty = {5, 123, 280};
  for (ItemId i : dirty) model.ItemFactors(i)[0] += 1e-3;
  int64_t reassigned = 0;
  auto rebuilt = IvfIndex::RebuildDirty(before, model, options, &reassigned);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(reassigned, 3);
  ASSERT_TRUE(rebuilt->has_pq());

  // The book is frozen byte-for-byte across the incremental rebuild...
  const PqCodeBook& b0 = before.pq_codes().book();
  const PqCodeBook& b1 = rebuilt->pq_codes().book();
  ASSERT_EQ(b0.num_lanes(), b1.num_lanes());
  EXPECT_EQ(std::memcmp(b0.scale.data(), b1.scale.data(),
                        b0.scale.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(b0.offset.data(), b1.offset.data(),
                        b0.offset.size() * sizeof(float)),
            0);

  // ...so every clean item's codes decode to exactly the same values, bit
  // for bit, whatever local slot the permutations put it in.
  std::vector<ItemId> before_local(300), after_local(300);
  for (ItemId l = 0; l < 300; ++l) {
    before_local[static_cast<size_t>(before.ToGlobal(l))] = l;
    after_local[static_cast<size_t>(rebuilt->ToGlobal(l))] = l;
  }
  for (ItemId g = 0; g < 300; ++g) {
    if (g == 5 || g == 123 || g == 280) continue;
    for (int32_t lane = 0; lane < b0.num_lanes(); ++lane) {
      ASSERT_EQ(before.pq_codes().DecodeLane(
                    before_local[static_cast<size_t>(g)], lane),
                rebuilt->pq_codes().DecodeLane(
                    after_local[static_cast<size_t>(g)], lane))
          << "item " << g << " lane " << lane;
    }
  }

  // The rebuilt index still clears the composed gate against its model.
  const PackedSnapshot exact = PackedSnapshot::Build(model);
  EXPECT_TRUE(VerifyPqRecall(exact, *rebuilt, 8, 10, 0, 0, 0.95, "rebuild")
                  .ok());
}

}  // namespace
}  // namespace clapf
