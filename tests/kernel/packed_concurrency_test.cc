// Concurrency drills for packed serving — the TSan acceptance tests for the
// kernel label: many readers scoring one shared immutable snapshot, and
// queries over the packed fast path racing hot swaps that retire snapshots
// under them (the RCU refcount must keep each in-flight query's snapshot
// alive).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "clapf/model/packed_snapshot.h"
#include "clapf/model/score_kernel.h"
#include "clapf/recommender.h"
#include "clapf/serving/model_server.h"
#include "clapf/util/random.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

FactorModel MakeRandomModel(int32_t num_users, int32_t num_items,
                            int32_t num_factors, uint64_t seed) {
  FactorModel model(num_users, num_items, num_factors);
  Rng rng(seed);
  model.InitGaussian(rng, 0.5);
  for (ItemId i = 0; i < num_items; ++i) {
    model.ItemBias(i) = rng.NextDouble() - 0.5;
  }
  return model;
}

TEST(PackedConcurrencyTest, ManyReadersShareOneSnapshot) {
  const auto model = MakeRandomModel(16, 128, 16, 3);
  const PackedSnapshot snap = PackedSnapshot::Build(model);

  std::vector<double> want(128);
  snap.ScoreItemRange(0, 0, 128, &want);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&snap, &want, &mismatches, t] {
      std::vector<double> got(128);
      TopKAccumulator acc(5);
      for (int round = 0; round < 20; ++round) {
        const UserId u = (t + round) % 16;
        snap.ScoreItemRange(u, 0, 128, &got);
        if (u == 0 && got != want) mismatches.fetch_add(1);
        ScoreBlocksTopK(snap, u, 0, 128, nullptr, &acc);
        acc.Take();
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0) << "read-only scan saw unstable data";
}

TEST(PackedConcurrencyTest, QueriesRaceHotSwapsOnPackedPath) {
  const auto history = testing::MakeLearnableDataset(16, 64, 6, 7);
  ServerOptions options;
  options.num_threads = 2;
  options.canary.packed_agreement_users = 4;
  ModelServer server(history, options);
  ASSERT_TRUE(server.PublishModel(MakeRandomModel(16, 64, 12, 100)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&server, &stop, &failures, t] {
      int round = 0;
      while (!stop.load(std::memory_order_relaxed) || round < 10) {
        auto got = server.Recommend((t * 5 + round) % 16, 5);
        // Unavailable (admission shed) is a legal outcome under load; any
        // other failure means a query observed a broken snapshot.
        if (!got.ok() &&
            got.status().code() != StatusCode::kUnavailable) {
          failures.fetch_add(1);
        }
        ++round;
      }
    });
  }

  // Hot-swap a stream of fresh models while the readers hammer the server;
  // each publish rebuilds and re-gates a packed snapshot. Failures are
  // collected, not asserted, so the readers always get their stop signal.
  std::vector<Status> published;
  for (uint64_t version = 0; version < 6; ++version) {
    published.push_back(server.PublishModel(MakeRandomModel(16, 64, 12, 200 + version)));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  for (const Status& s : published) EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.version(), 7);
  EXPECT_FALSE(server.degraded());
}

TEST(PackedConcurrencyTest, BatchQueriesShareSnapshotAcrossPoolThreads) {
  const auto history = testing::MakeLearnableDataset(32, 64, 6, 11);
  auto rec = Recommender::Create(MakeRandomModel(32, 64, 12, 13), history);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->EnablePacked().ok());

  std::vector<UserId> users(32);
  for (UserId u = 0; u < 32; ++u) users[static_cast<size_t>(u)] = u;
  QueryOptions options;
  options.num_threads = 4;  // thread-pool shards share packed_ read-only
  auto batch = rec->RecommendBatch(users, 5, options);
  ASSERT_TRUE(batch.ok());

  QueryOptions serial;
  serial.num_threads = 1;
  auto want = rec->RecommendBatch(users, 5, serial);
  ASSERT_TRUE(want.ok());
  for (size_t i = 0; i < users.size(); ++i) {
    ASSERT_EQ((*batch)[i].size(), (*want)[i].size());
    for (size_t x = 0; x < (*want)[i].size(); ++x) {
      EXPECT_EQ((*batch)[i][x].item, (*want)[i][x].item);
      EXPECT_EQ((*batch)[i][x].score, (*want)[i][x].score);
    }
  }
}

}  // namespace
}  // namespace clapf
