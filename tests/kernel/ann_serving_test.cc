// Publish-gate drills for ANN serving: a desynced IvfIndex must be refused
// at publish time by the measured recall gate (typed refusal + flight-
// recorder event, prior snapshot keeps serving), incremental republishes
// must rebuild only dirty clusters, the sharded server must gate each
// shard's index independently (one corrupt shard never poisons its
// siblings), and full-probe sharded ANN answers must stay bit-identical to
// the monolithic exact scan. Part of the `ann` ctest label.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clapf/model/ivf_index.h"
#include "clapf/obs/metrics.h"
#include "clapf/recommender.h"
#include "clapf/serving/model_server.h"
#include "clapf/serving/publish_request.h"
#include "clapf/serving/sharded_server.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/random.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

class AnnServingTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

// Catalogs with directional structure (what the recall contract is stated
// on): items bundle around a handful of centers, as real catalogs do.
FactorModel MakeServableModel(int32_t num_users, int32_t num_items,
                              int32_t num_factors, int32_t num_centers,
                              uint64_t seed) {
  return testing::MakeClusteredItemModel(num_users, num_items, num_factors,
                                         num_centers, /*noise=*/0.05, seed);
}

ServerOptions AnnOptions() {
  ServerOptions options;
  options.num_threads = 1;
  options.ann = true;
  options.ivf.num_clusters = 8;
  options.ivf.default_nprobe = 4;
  options.canary.ann_recall_users = 16;
  return options;
}

int64_t CounterValue(MetricsRegistry* metrics, const std::string& name) {
  return metrics->GetCounter(name)->Value();
}

HistogramSnapshot HistValue(MetricsRegistry* metrics,
                            const std::string& name) {
  return metrics->GetHistogram(name, DrawDepthBuckets())->Snapshot();
}

bool HasCanaryRejectEvent(const FlightRecorder& recorder) {
  for (const FlightEvent& event : recorder.Snapshot()) {
    if (event.kind == FlightEventKind::kCanaryReject) return true;
  }
  return false;
}

TEST_F(AnnServingTest, PublishBuildsGatesAndServesAnn) {
  const auto history = testing::MakeLearnableDataset(20, 400, 8, 61);
  ModelServer server(history, AnnOptions());
  ASSERT_TRUE(server.PublishModel(MakeServableModel(20, 400, 16, 8, 61)).ok());

  MetricsRegistry* metrics = server.mutable_metrics();
  EXPECT_EQ(CounterValue(metrics, "ann.index_builds_total"), 1);
  EXPECT_EQ(CounterValue(metrics, "ann.recall_gate_pass_total"), 1);
  EXPECT_EQ(CounterValue(metrics, "ann.recall_gate_fail_total"), 0);

  QueryOptions ann;
  ann.ann = true;
  auto got = server.Recommend(0, 10, ann);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 10u);
  EXPECT_EQ(CounterValue(metrics, "ann.queries_total"), 1);
  EXPECT_GT(CounterValue(metrics, "ann.probes_total"), 0);
  // The shortlist depth lands in the histogram: one recording, and its sum
  // (total shortlisted items) is a strict subset of the catalog at the
  // default nprobe.
  const HistogramSnapshot shortlist = HistValue(metrics, "ann.shortlist_size");
  EXPECT_EQ(shortlist.count, 1);
  EXPECT_GT(shortlist.sum, 0.0);
  EXPECT_LT(shortlist.sum, 400.0);
}

TEST_F(AnnServingTest, FullProbeAnnServesExactAnswers) {
  const auto history = testing::MakeLearnableDataset(16, 300, 6, 67);
  ModelServer server(history, AnnOptions());
  ASSERT_TRUE(server.PublishModel(MakeServableModel(16, 300, 8, 8, 67)).ok());

  QueryOptions exact;  // packed full scan
  QueryOptions ann;
  ann.ann = true;
  ann.ann_nprobe = 8;  // every cluster: degenerates to the exact scan
  for (UserId u = 0; u < 16; ++u) {
    auto want = server.Recommend(u, 10, exact);
    auto got = server.Recommend(u, 10, ann);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(want->size(), got->size());
    for (size_t x = 0; x < want->size(); ++x) {
      EXPECT_EQ((*want)[x].item, (*got)[x].item) << "user " << u;
      EXPECT_EQ((*want)[x].score, (*got)[x].score);
    }
  }
}

TEST_F(AnnServingTest, CanaryRefusesDesyncedIndexAndKeepsPriorSnapshot) {
  const auto history = testing::MakeLearnableDataset(20, 400, 8, 71);
  ModelServer server(history, AnnOptions());
  ASSERT_TRUE(server.PublishModel(MakeServableModel(20, 400, 16, 8, 71)).ok());
  ASSERT_EQ(server.version(), 1);

  // The second publish's index is desynced in flight; the measured recall
  // gate must refuse it with a typed FailedPrecondition, record the reject
  // in the flight recorder, and keep version 1 serving.
  FaultInjector::Instance().Arm(FaultPoint::kAnnCorruptIndex, {});
  const Status rejected =
      server.PublishModel(MakeServableModel(20, 400, 16, 8, 72));
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.message().find("recall"), std::string::npos);
  EXPECT_EQ(server.version(), 1);
  EXPECT_FALSE(server.degraded());
  EXPECT_EQ(server.stats().canary_rejects, 1);
  EXPECT_TRUE(HasCanaryRejectEvent(server.flight_recorder()));
  EXPECT_EQ(CounterValue(server.mutable_metrics(),
                         "ann.recall_gate_fail_total"),
            1);

  // Queries keep working against the retained snapshot.
  QueryOptions ann;
  ann.ann = true;
  EXPECT_TRUE(server.Recommend(0, 10, ann).ok());
}

TEST_F(AnnServingTest, RepublishRebuildsIncrementallyReassigningDirtyItems) {
  const auto history = testing::MakeLearnableDataset(20, 400, 8, 73);
  ModelServer server(history, AnnOptions());
  auto model = MakeServableModel(20, 400, 16, 8, 73);
  ASSERT_TRUE(server.PublishModel(model).ok());

  // Perturb 5 items and republish: the online path, where full k-means per
  // publish would be unaffordable. Only the dirty items go back through
  // assignment.
  for (ItemId i : {ItemId{3}, ItemId{90}, ItemId{180}, ItemId{270},
                   ItemId{399}}) {
    model.ItemFactors(i)[0] += 1e-3;
  }
  ASSERT_TRUE(server.PublishModel(model).ok());
  EXPECT_EQ(server.version(), 2);

  MetricsRegistry* metrics = server.mutable_metrics();
  EXPECT_EQ(CounterValue(metrics, "ann.index_builds_total"), 1);
  EXPECT_EQ(CounterValue(metrics, "ann.index_rebuilds_incremental_total"),
            1);
  EXPECT_EQ(CounterValue(metrics, "ann.index_items_reassigned_total"), 5);
  EXPECT_EQ(CounterValue(metrics, "ann.recall_gate_pass_total"), 2);
}

TEST_F(AnnServingTest, AnnQueryWithoutIndexFallsBackToFullScan) {
  const auto history = testing::MakeLearnableDataset(10, 200, 6, 79);
  ServerOptions options;
  options.num_threads = 1;
  ASSERT_FALSE(options.ann);  // ANN serving off: no index is built
  ModelServer server(history, options);
  ASSERT_TRUE(server.PublishModel(MakeServableModel(10, 200, 8, 8, 79)).ok());

  QueryOptions exact;
  QueryOptions ann;
  ann.ann = true;  // requested but unservable: silent full-scan fallback
  auto want = server.Recommend(0, 10, exact);
  auto got = server.Recommend(0, 10, ann);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(want->size(), got->size());
  for (size_t x = 0; x < want->size(); ++x) {
    EXPECT_EQ((*want)[x].item, (*got)[x].item);
    EXPECT_EQ((*want)[x].score, (*got)[x].score);
  }
  EXPECT_EQ(CounterValue(server.mutable_metrics(), "ann.fallback_total"), 1);
  EXPECT_EQ(CounterValue(server.mutable_metrics(), "ann.queries_total"), 0);
}

TEST_F(AnnServingTest, ShardedPublishGatesEachShardIndexIndependently) {
  const auto history = testing::MakeLearnableDataset(20, 400, 8, 83);
  ServerOptions options = AnnOptions();
  options.num_shards = 4;
  options.ivf.num_clusters = 4;  // per-shard catalogs are 100 items
  options.ivf.default_nprobe = 2;
  ShardedModelServer server(history, options);
  auto model = MakeServableModel(20, 400, 16, 4, 83);
  ASSERT_TRUE(server.PublishModel(model).ok());
  EXPECT_EQ(server.shard_versions(),
            (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_EQ(CounterValue(server.mutable_metrics(), "ann.index_builds_total"),
            4);
  EXPECT_EQ(CounterValue(server.mutable_metrics(),
                         "ann.recall_gate_pass_total"),
            4);

  // Nudge a few of shard 1's items (tiny: CRCs flip, geometry unmoved —
  // the online republish shape) and corrupt exactly that shard's index in
  // flight: its gate refuses, its siblings' slices are untouched, and
  // per-shard isolation holds — every chain keeps version 1.
  for (ItemId i : {ItemId{110}, ItemId{150}, ItemId{190}}) {
    model.ItemFactors(i)[0] += 1e-3;
  }
  FaultInjector::Instance().Arm(FaultPoint::kAnnCorruptIndex, {});
  const Status rejected =
      server.PublishModel(PublishRequest(model).WithShard(1));
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.message().find("shard 1"), std::string::npos);
  EXPECT_EQ(server.shard_versions(),
            (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_EQ(CounterValue(server.mutable_metrics(),
                         "ann.recall_gate_fail_total"),
            1);
  FaultInjector::Instance().Reset();

  // With the fault gone the same candidate republishes cleanly (through
  // the incremental dirty path); the other shards still serve their
  // original slices.
  ASSERT_TRUE(server.PublishModel(PublishRequest(model).WithShard(1)).ok());
  EXPECT_EQ(server.shard_versions(),
            (std::vector<int64_t>{1, 2, 1, 1}));
}

TEST_F(AnnServingTest, ShardedFullProbeAnnMatchesMonolithicExactScan) {
  const auto history = testing::MakeLearnableDataset(16, 320, 8, 89);
  const auto model = MakeServableModel(16, 320, 8, 8, 89);

  ServerOptions mono_options;
  mono_options.num_threads = 1;
  ModelServer mono(history, mono_options);
  ASSERT_TRUE(mono.PublishModel(model).ok());

  ServerOptions sharded_options = AnnOptions();
  sharded_options.num_shards = 4;
  sharded_options.ivf.num_clusters = 5;
  ShardedModelServer sharded(history, sharded_options);
  ASSERT_TRUE(sharded.PublishModel(model).ok());

  QueryOptions exact;
  QueryOptions ann;
  ann.ann = true;
  ann.ann_nprobe = 1 << 20;  // clamps to every cluster in every shard
  for (UserId u = 0; u < 16; ++u) {
    auto want = mono.Recommend(u, 12, exact);
    auto got = sharded.RecommendOne(u, 12, ann);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(want->size(), got->size());
    for (size_t x = 0; x < want->size(); ++x) {
      EXPECT_EQ((*want)[x].item, (*got)[x].item)
          << "user " << u << " rank " << x;
      EXPECT_EQ((*want)[x].score, (*got)[x].score);
    }
  }
}

}  // namespace
}  // namespace clapf
