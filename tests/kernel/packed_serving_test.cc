// End-to-end tests for packed inference in the serving stack: Recommender
// fast-path parity with the exact double scan, the QueryOptions::use_packed
// opt-out, ModelServer's publish-time packed build + canary agreement gate,
// the Ranker::ScoreItemRange fallback counter, and range-vs-full-scan parity
// for every in-tree ranker.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "clapf/baselines/ease.h"
#include "clapf/baselines/item_knn.h"
#include "clapf/core/ranker.h"
#include "clapf/core/trainer_factory.h"
#include "clapf/eval/oracle.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/obs/metrics.h"
#include "clapf/recommender.h"
#include "clapf/serving/model_server.h"
#include "clapf/util/random.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

FactorModel MakeRandomModel(int32_t num_users, int32_t num_items,
                            int32_t num_factors, uint64_t seed) {
  FactorModel model(num_users, num_items, num_factors);
  Rng rng(seed);
  model.InitGaussian(rng, 0.5);
  for (ItemId i = 0; i < num_items; ++i) {
    model.ItemBias(i) = rng.NextDouble() - 0.5;
  }
  return model;
}

TEST(PackedRecommenderTest, PackedTopKMatchesExactOnGoldenFixture) {
  // Gaussian factors give well-separated scores, so the float32 repack must
  // reproduce the exact top-k (ids and order) for every user.
  const auto history = testing::MakeLearnableDataset(24, 60, 8, 5);
  auto rec = Recommender::Create(MakeRandomModel(24, 60, 16, 5), history);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->EnablePacked(/*verify_sample_users=*/24).ok());
  ASSERT_NE(rec->packed_snapshot(), nullptr);

  QueryOptions exact_opts;
  exact_opts.use_packed = false;
  for (UserId u = 0; u < 24; ++u) {
    auto exact = rec->Recommend(u, 10, exact_opts);
    auto packed = rec->Recommend(u, 10, {});
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(packed.ok());
    ASSERT_EQ(exact->size(), packed->size()) << "user " << u;
    for (size_t x = 0; x < exact->size(); ++x) {
      EXPECT_EQ((*exact)[x].item, (*packed)[x].item)
          << "user " << u << " rank " << x;
      EXPECT_NEAR((*exact)[x].score, (*packed)[x].score, 1e-4)
          << "user " << u << " rank " << x;
    }
  }
}

TEST(PackedRecommenderTest, UsePackedFalseStaysBitIdenticalToExactPath) {
  const auto history = testing::MakeLearnableDataset(10, 40, 6, 9);
  auto baseline = Recommender::Create(MakeRandomModel(10, 40, 8, 9), history);
  auto packed = Recommender::Create(MakeRandomModel(10, 40, 8, 9), history);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(packed->EnablePacked().ok());

  QueryOptions opts;
  opts.use_packed = false;
  for (UserId u = 0; u < 10; ++u) {
    auto want = baseline->Recommend(u, 7, {});  // no snapshot: exact anyway
    auto got = packed->Recommend(u, 7, opts);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(want->size(), got->size());
    for (size_t x = 0; x < want->size(); ++x) {
      EXPECT_EQ((*want)[x].item, (*got)[x].item);
      // Bit-identical, not merely close: the exact double path is untouched.
      EXPECT_EQ((*want)[x].score, (*got)[x].score);
    }
  }
}

TEST(PackedRecommenderTest, ExcludeAndMinScoreApplyOnPackedPath) {
  const auto history = testing::MakeLearnableDataset(8, 30, 5, 21);
  auto rec = Recommender::Create(MakeRandomModel(8, 30, 8, 21), history);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->EnablePacked().ok());

  QueryOptions opts;
  opts.exclude = {0, 1, 2, 3, 4};
  auto got = rec->Recommend(0, 30, opts);
  ASSERT_TRUE(got.ok());
  for (const ScoredItem& item : *got) {
    EXPECT_GT(item.item, 4) << "excluded item served";
    EXPECT_FALSE(history.IsObserved(0, item.item)) << "history item served";
  }

  QueryOptions floor;
  floor.min_score = 0.0;
  auto filtered = rec->Recommend(0, 30, floor);
  ASSERT_TRUE(filtered.ok());
  for (const ScoredItem& item : *filtered) EXPECT_GE(item.score, 0.0);
}

TEST(PackedServerTest, PublishBuildsGatesAndServesPackedSnapshot) {
  const auto history = testing::MakeLearnableDataset(20, 50, 8, 33);
  ServerOptions options;
  options.num_threads = 1;
  ASSERT_TRUE(options.packed);  // packed serving is the default
  ModelServer server(history, options);

  auto model = MakeRandomModel(20, 50, 16, 33);
  ASSERT_TRUE(server.PublishModel(model).ok());
  EXPECT_EQ(server.version(), 1);
  EXPECT_FALSE(server.degraded());

  // The served ranking equals the exact top-k: packed approximation must not
  // reorder well-separated scores.
  auto exact_rec = Recommender::Create(model, history);
  ASSERT_TRUE(exact_rec.ok());
  QueryOptions exact_opts;
  exact_opts.use_packed = false;
  for (UserId u = 0; u < 20; ++u) {
    auto served = server.Recommend(u, 5);
    auto want = exact_rec->Recommend(u, 5, exact_opts);
    ASSERT_TRUE(served.ok());
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(served->size(), want->size());
    for (size_t x = 0; x < want->size(); ++x) {
      EXPECT_EQ((*served)[x].item, (*want)[x].item) << "user " << u;
    }
  }
}

TEST(PackedServerTest, PackedOffServesExactPath) {
  const auto history = testing::MakeLearnableDataset(10, 30, 5, 41);
  ServerOptions options;
  options.num_threads = 1;
  options.packed = false;
  ModelServer server(history, options);
  ASSERT_TRUE(server.PublishModel(MakeRandomModel(10, 30, 8, 41)).ok());
  auto got = server.Recommend(2, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->empty());
}

TEST(PackedServerTest, CanaryStillRejectsCorruptCandidateWithPackedOn) {
  const auto history = testing::MakeLearnableDataset(10, 30, 5, 43);
  ServerOptions options;
  options.num_threads = 1;
  ModelServer server(history, options);
  auto bad = MakeRandomModel(10, 30, 8, 43);
  bad.mutable_user_factor_data()[3] = std::nan("");
  EXPECT_FALSE(server.PublishModel(std::move(bad)).ok());
  EXPECT_TRUE(server.degraded());
}

TEST(RangeFallbackTest, BaseScoreItemRangeBumpsCounter) {
  // A ranker that "forgets" the range override goes through the base-class
  // full rescan, which must report itself.
  class NoRangeRanker : public Ranker {
   public:
    void ScoreItems(UserId, std::vector<double>* scores) const override {
      scores->assign(4, 1.0);
    }
  };
  Counter* counter =
      MetricsRegistry::Default().GetCounter("ranker.range_fallback_total");
  const int64_t before = counter->Value();
  NoRangeRanker ranker;
  std::vector<double> scores(4, 0.0);
  ranker.ScoreItemRange(0, 1, 3, &scores);
  EXPECT_EQ(counter->Value(), before + 1);
}

// Every in-tree ranker must override ScoreItemRange with a real range
// kernel: the range result must match the full scan on [begin, end) and the
// fallback counter must not move.
TEST(RangeFallbackTest, EveryInTreeRankerOverridesScoreItemRange) {
  const auto train = testing::MakeLearnableDataset(12, 24, 6, 55);

  MethodConfig config;
  config.sgd.num_factors = 8;
  config.sgd.iterations = 500;
  config.climf.sgd.num_factors = 8;
  config.climf.epochs = 2;
  config.wmf.num_factors = 8;
  config.wmf.sweeps = 2;
  config.neumf.embedding_dim = 4;
  config.neumf.epochs = 1;
  config.neupr.embedding_dim = 4;
  config.neupr.iterations = 200;
  config.deepicf.embedding_dim = 4;
  config.deepicf.epochs = 1;

  std::vector<std::unique_ptr<Trainer>> rankers;
  for (MethodKind kind : AllMethodsWithExtensions()) {
    rankers.push_back(MakeTrainer(kind, config));
  }
  rankers.push_back(std::make_unique<EaseTrainer>(EaseOptions{}));
  rankers.push_back(std::make_unique<ItemKnnTrainer>(ItemKnnOptions{}));

  Counter* counter =
      MetricsRegistry::Default().GetCounter("ranker.range_fallback_total");
  for (auto& trainer : rankers) {
    ASSERT_TRUE(trainer->Train(train).ok()) << trainer->name();
    const int64_t before = counter->Value();
    std::vector<double> full;
    trainer->ScoreItems(3, &full);
    std::vector<double> part(full.size(), -1e300);
    trainer->ScoreItemRange(3, 5, 17, &part);
    EXPECT_EQ(counter->Value(), before)
        << trainer->name() << " fell back to the base full rescan";
    for (ItemId i = 5; i < 17; ++i) {
      EXPECT_DOUBLE_EQ(part[static_cast<size_t>(i)],
                       full[static_cast<size_t>(i)])
          << trainer->name() << " item " << i;
    }
  }
}

TEST(RangeFallbackTest, OracleRankerOverridesScoreItemRange) {
  SyntheticConfig config;
  config.num_users = 8;
  config.num_items = 20;
  config.num_interactions = 100;
  SyntheticGroundTruth truth;
  ASSERT_TRUE(GenerateSynthetic(config, &truth).ok());
  OracleRanker oracle(&truth);
  Counter* counter =
      MetricsRegistry::Default().GetCounter("ranker.range_fallback_total");
  const int64_t before = counter->Value();
  std::vector<double> full;
  oracle.ScoreItems(1, &full);
  std::vector<double> part(full.size(), 0.0);
  oracle.ScoreItemRange(1, 4, 15, &part);
  EXPECT_EQ(counter->Value(), before);
  for (ItemId i = 4; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(part[static_cast<size_t>(i)],
                     full[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace clapf
