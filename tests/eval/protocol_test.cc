#include "clapf/eval/protocol.h"

#include <gtest/gtest.h>

#include <cmath>

namespace clapf {
namespace {

EvalSummary MakeSummary(double base) {
  EvalSummary s;
  s.at_k.resize(2);
  s.at_k[0].k = 5;
  s.at_k[0].precision = base;
  s.at_k[0].recall = base / 2;
  s.at_k[0].f1 = base / 3;
  s.at_k[0].one_call = base / 4;
  s.at_k[0].ndcg = base / 5;
  s.at_k[1].k = 10;
  s.at_k[1].precision = base * 2;
  s.map = base;
  s.mrr = base * 3;
  s.auc = 0.5 + base / 10;
  s.users_evaluated = 10;
  return s;
}

TEST(MeanStdTest, FormatsWithPlusMinus) {
  MeanStd ms{0.4321, 0.0123};
  EXPECT_EQ(ms.ToString(3), "0.432±0.012");
  EXPECT_EQ(ms.ToString(2), "0.43±0.01");
}

TEST(AggregateTest, SingleRunHasZeroStd) {
  auto agg = Aggregate({MakeSummary(0.3)});
  EXPECT_EQ(agg.num_runs, 1);
  EXPECT_DOUBLE_EQ(agg.map.mean, 0.3);
  EXPECT_DOUBLE_EQ(agg.map.std, 0.0);
}

TEST(AggregateTest, MeanAndPopulationStd) {
  auto agg = Aggregate({MakeSummary(0.2), MakeSummary(0.4)});
  EXPECT_EQ(agg.num_runs, 2);
  EXPECT_DOUBLE_EQ(agg.map.mean, 0.3);
  EXPECT_NEAR(agg.map.std, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(agg.mrr.mean, 0.9);
  EXPECT_DOUBLE_EQ(agg.AtCut(5).precision.mean, 0.3);
  EXPECT_DOUBLE_EQ(agg.AtCut(10).precision.mean, 0.6);
}

TEST(AggregateTest, TrainSecondsAggregated) {
  auto agg = Aggregate({MakeSummary(0.1), MakeSummary(0.1)}, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(agg.train_seconds.mean, 15.0);
  EXPECT_DOUBLE_EQ(agg.train_seconds.std, 5.0);
}

TEST(AggregateTest, EmptyRunsGiveEmptyAggregate) {
  auto agg = Aggregate({});
  EXPECT_EQ(agg.num_runs, 0);
  EXPECT_TRUE(agg.at_k.empty());
}

TEST(AggregateTest, AllAtKFieldsAggregated) {
  auto agg = Aggregate({MakeSummary(0.3), MakeSummary(0.5)});
  const auto& at5 = agg.AtCut(5);
  EXPECT_DOUBLE_EQ(at5.recall.mean, 0.2);
  EXPECT_DOUBLE_EQ(at5.f1.mean, (0.1 + 0.5 / 3) / 2);
  EXPECT_DOUBLE_EQ(at5.one_call.mean, 0.1);
  EXPECT_DOUBLE_EQ(at5.ndcg.mean, 0.08);
}

TEST(AggregateDeathTest, MismatchedCutoffsAbort) {
  EvalSummary a = MakeSummary(0.1);
  EvalSummary b = MakeSummary(0.2);
  b.at_k.pop_back();
  EXPECT_DEATH(Aggregate({a, b}), "cutoff mismatch");
}

}  // namespace
}  // namespace clapf
