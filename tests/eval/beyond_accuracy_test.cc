#include "clapf/eval/beyond_accuracy.h"

#include <gtest/gtest.h>

#include "clapf/baselines/pop_rank.h"
#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

Dataset MediumData(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 120;
  cfg.num_interactions = 1200;
  cfg.seed = seed;
  return *GenerateSynthetic(cfg);
}

TEST(BeyondAccuracyTest, PopRankHasIdenticalListsAndLowCoverage) {
  Dataset data = MediumData(1);
  PopRankTrainer pop;
  ASSERT_TRUE(pop.Train(data).ok());
  BeyondAccuracy profile = ComputeBeyondAccuracy(data, pop, 10);

  // Every user gets (nearly) the same top-10, modulo history exclusions.
  EXPECT_GT(profile.inter_user_similarity, 0.2);
  // Coverage is bounded near k + typical history overlap, far below 100%.
  EXPECT_LT(profile.catalog_coverage, 0.5);
  EXPECT_GT(profile.exposure_gini, 0.7);
}

TEST(BeyondAccuracyTest, PersonalizedModelSpreadsExposure) {
  Dataset data = MediumData(2);
  PopRankTrainer pop;
  ASSERT_TRUE(pop.Train(data).ok());
  BeyondAccuracy pop_profile = ComputeBeyondAccuracy(data, pop, 10);

  // A random personalized model maximally spreads recommendations.
  FactorModel model(data.num_users(), data.num_items(), 4);
  Rng rng(3);
  model.InitGaussian(rng, 0.5);
  FactorModelRanker ranker(&model);
  BeyondAccuracy mf_profile = ComputeBeyondAccuracy(data, ranker, 10);

  EXPECT_GT(mf_profile.catalog_coverage, pop_profile.catalog_coverage);
  EXPECT_LT(mf_profile.inter_user_similarity,
            pop_profile.inter_user_similarity);
  EXPECT_LT(mf_profile.exposure_gini, pop_profile.exposure_gini);
  EXPECT_GT(mf_profile.novelty_bits, pop_profile.novelty_bits);
}

TEST(BeyondAccuracyTest, DeterministicGivenSeed) {
  Dataset data = MediumData(4);
  PopRankTrainer pop;
  ASSERT_TRUE(pop.Train(data).ok());
  BeyondAccuracy a = ComputeBeyondAccuracy(data, pop, 5, 100, 9);
  BeyondAccuracy b = ComputeBeyondAccuracy(data, pop, 5, 100, 9);
  EXPECT_DOUBLE_EQ(a.inter_user_similarity, b.inter_user_similarity);
  EXPECT_DOUBLE_EQ(a.novelty_bits, b.novelty_bits);
}

TEST(BeyondAccuracyTest, EmptyTrainingGivesZeros) {
  Dataset data = testing::MakeDataset(3, 5, {});
  FactorModel model(3, 5, 2);
  FactorModelRanker ranker(&model);
  BeyondAccuracy profile = ComputeBeyondAccuracy(data, ranker, 3);
  EXPECT_DOUBLE_EQ(profile.catalog_coverage, 0.0);
  EXPECT_DOUBLE_EQ(profile.novelty_bits, 0.0);
}

TEST(BeyondAccuracyTest, ToStringMentionsAllFields) {
  Dataset data = MediumData(5);
  PopRankTrainer pop;
  ASSERT_TRUE(pop.Train(data).ok());
  std::string s = ComputeBeyondAccuracy(data, pop, 5).ToString();
  EXPECT_NE(s.find("coverage@5"), std::string::npos);
  EXPECT_NE(s.find("novelty"), std::string::npos);
  EXPECT_NE(s.find("gini"), std::string::npos);
}

}  // namespace
}  // namespace clapf
