#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(ParallelEvaluatorTest, MatchesSerial) {
  SyntheticConfig cfg;
  cfg.num_users = 120;
  cfg.num_items = 150;
  cfg.num_interactions = 3000;
  cfg.seed = 77;
  Dataset data = *GenerateSynthetic(cfg);
  auto split = SplitRandom(data, 0.5, 78);

  FactorModel model(data.num_users(), data.num_items(), 6);
  Rng rng(5);
  model.InitGaussian(rng, 0.4);

  Evaluator evaluator(&split.train, &split.test);
  EvalSummary serial = evaluator.Evaluate(model, PaperCutoffs());
  for (int threads : {1, 2, 4, 7}) {
    FactorModelRanker ranker(&model);
    EvalSummary parallel =
        evaluator.EvaluateParallel(ranker, PaperCutoffs(), threads);
    EXPECT_EQ(parallel.users_evaluated, serial.users_evaluated)
        << threads << " threads";
    // Per-shard summation reorders the floating-point adds; results agree
    // to within accumulation error.
    EXPECT_NEAR(parallel.map, serial.map, 1e-12) << threads;
    EXPECT_NEAR(parallel.mrr, serial.mrr, 1e-12) << threads;
    EXPECT_NEAR(parallel.auc, serial.auc, 1e-12) << threads;
    for (size_t ki = 0; ki < serial.at_k.size(); ++ki) {
      EXPECT_NEAR(parallel.at_k[ki].precision, serial.at_k[ki].precision,
                  1e-12);
      EXPECT_NEAR(parallel.at_k[ki].ndcg, serial.at_k[ki].ndcg, 1e-12);
      EXPECT_NEAR(parallel.at_k[ki].recall, serial.at_k[ki].recall, 1e-12);
    }
  }
}

TEST(ParallelEvaluatorTest, MoreThreadsThanUsers) {
  Dataset train = testing::MakeDataset(2, 5, {{0, 0}, {1, 1}});
  Dataset test = testing::MakeDataset(2, 5, {{0, 2}, {1, 3}});
  FactorModel model(2, 5, 2);
  Rng rng(3);
  model.InitGaussian(rng, 0.3);
  Evaluator evaluator(&train, &test);
  FactorModelRanker ranker(&model);
  EvalSummary parallel = evaluator.EvaluateParallel(ranker, {3}, 16);
  EvalSummary serial = evaluator.Evaluate(model, {3});
  EXPECT_NEAR(parallel.map, serial.map, 1e-12);
  EXPECT_EQ(parallel.users_evaluated, 2);
}

}  // namespace
}  // namespace clapf
