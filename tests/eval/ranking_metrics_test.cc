#include "clapf/eval/ranking_metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "clapf/util/random.h"

namespace clapf {
namespace {

// Fixture data: ranking over 6 items, relevant = {2, 4}.
// Ranking (best first): 2, 0, 4, 1, 5, 3 → relevant at ranks 1 and 3.
struct Fixture {
  std::vector<ItemId> ranking{2, 0, 4, 1, 5, 3};
  std::vector<bool> relevant{false, false, true, false, true, false};
  RankedList list{&ranking, &relevant, 2};
};

TEST(PrecisionAtKTest, HandComputed) {
  Fixture f;
  EXPECT_DOUBLE_EQ(PrecisionAtK(f.list, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(f.list, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(f.list, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(f.list, 6), 2.0 / 6.0);
}

TEST(PrecisionAtKTest, KBeyondListUsesKDenominator) {
  Fixture f;
  EXPECT_DOUBLE_EQ(PrecisionAtK(f.list, 12), 2.0 / 12.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(f.list, 0), 0.0);
}

TEST(RecallAtKTest, HandComputed) {
  Fixture f;
  EXPECT_DOUBLE_EQ(RecallAtK(f.list, 1), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(f.list, 3), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(f.list, 6), 1.0);
}

TEST(F1AtKTest, HarmonicMean) {
  Fixture f;
  const double p = PrecisionAtK(f.list, 3);
  const double r = RecallAtK(f.list, 3);
  EXPECT_DOUBLE_EQ(F1AtK(f.list, 3), 2 * p * r / (p + r));
}

TEST(F1AtKTest, ZeroWhenNoHits) {
  std::vector<ItemId> ranking{0, 1};
  std::vector<bool> relevant{false, false, true};
  RankedList list{&ranking, &relevant, 1};
  EXPECT_DOUBLE_EQ(F1AtK(list, 2), 0.0);
}

TEST(OneCallAtKTest, DetectsFirstHit) {
  Fixture f;
  EXPECT_DOUBLE_EQ(OneCallAtK(f.list, 1), 1.0);
  std::vector<ItemId> ranking{0, 1, 2};
  std::vector<bool> relevant{false, false, true};
  RankedList list{&ranking, &relevant, 1};
  EXPECT_DOUBLE_EQ(OneCallAtK(list, 2), 0.0);
  EXPECT_DOUBLE_EQ(OneCallAtK(list, 3), 1.0);
}

TEST(NdcgAtKTest, PerfectRankingIsOne) {
  std::vector<ItemId> ranking{1, 2, 0, 3};
  std::vector<bool> relevant{false, true, true, false};
  RankedList list{&ranking, &relevant, 2};
  EXPECT_NEAR(NdcgAtK(list, 4), 1.0, 1e-12);
}

TEST(NdcgAtKTest, HandComputed) {
  Fixture f;
  // DCG@3 = 1/log2(2) + 1/log2(4) = 1 + 0.5; IDCG@3 = 1/log2(2) + 1/log2(3).
  const double dcg = 1.0 + 1.0 / std::log2(4.0);
  const double idcg = 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(f.list, 3), dcg / idcg, 1e-12);
}

TEST(NdcgAtKTest, WorstRankingLowest) {
  std::vector<ItemId> best{0, 1, 2, 3};
  std::vector<ItemId> worst{3, 2, 1, 0};
  std::vector<bool> relevant{true, false, false, false};
  RankedList best_list{&best, &relevant, 1};
  RankedList worst_list{&worst, &relevant, 1};
  EXPECT_GT(NdcgAtK(best_list, 4), NdcgAtK(worst_list, 4));
}

TEST(AveragePrecisionTest, HandComputed) {
  Fixture f;
  // Hits at rank 1 (prec 1/1) and rank 3 (prec 2/3); AP = (1 + 2/3)/2.
  EXPECT_NEAR(AveragePrecision(f.list), (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(AveragePrecisionTest, PerfectIsOne) {
  std::vector<ItemId> ranking{1, 0, 2};
  std::vector<bool> relevant{false, true, false};
  RankedList list{&ranking, &relevant, 1};
  EXPECT_DOUBLE_EQ(AveragePrecision(list), 1.0);
}

TEST(ReciprocalRankTest, HandComputed) {
  Fixture f;
  EXPECT_DOUBLE_EQ(ReciprocalRank(f.list), 1.0);
  std::vector<ItemId> ranking{0, 1, 2};
  std::vector<bool> relevant{false, false, true};
  RankedList list{&ranking, &relevant, 1};
  EXPECT_DOUBLE_EQ(ReciprocalRank(list), 1.0 / 3.0);
}

TEST(AucTest, PerfectAndWorst) {
  std::vector<ItemId> ranking{0, 1, 2, 3};
  std::vector<bool> relevant{true, true, false, false};
  RankedList perfect{&ranking, &relevant, 2};
  EXPECT_DOUBLE_EQ(Auc(perfect), 1.0);

  std::vector<ItemId> reversed{2, 3, 0, 1};
  RankedList worst{&reversed, &relevant, 2};
  EXPECT_DOUBLE_EQ(Auc(worst), 0.0);
}

TEST(AucTest, HandComputedMixed) {
  // Ranking: rel, irr, rel, irr → pairs: (r1 beats both irr) + (r2 beats 1
  // of 2) = 3 of 4.
  std::vector<ItemId> ranking{0, 2, 1, 3};
  std::vector<bool> relevant{true, true, false, false};
  RankedList list{&ranking, &relevant, 2};
  EXPECT_DOUBLE_EQ(Auc(list), 0.75);
}

TEST(MetricsTest, EmptyRelevantGivesZeros) {
  std::vector<ItemId> ranking{0, 1};
  std::vector<bool> relevant{false, false};
  RankedList list{&ranking, &relevant, 0};
  EXPECT_DOUBLE_EQ(RecallAtK(list, 2), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(list, 2), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision(list), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(list), 0.0);
  EXPECT_DOUBLE_EQ(Auc(list), 0.0);
}

// Agreement between the list-based metrics and the paper's definitional
// forms (Eqs. 5 and 8) on random rankings.
class DefinitionAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(DefinitionAgreementTest, ApAndRrMatchDefinitions) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const size_t m = 12;
  std::vector<ItemId> ranking(m);
  for (size_t i = 0; i < m; ++i) ranking[i] = static_cast<ItemId>(i);
  rng.Shuffle(ranking);
  std::vector<bool> relevant(m, false);
  size_t num_rel = 0;
  for (size_t i = 0; i < m; ++i) {
    if (rng.Bernoulli(0.3)) {
      relevant[i] = true;
      ++num_rel;
    }
  }
  if (num_rel == 0) {
    relevant[0] = true;
    num_rel = 1;
  }
  RankedList list{&ranking, &relevant, num_rel};

  // ranks[i] = 1-based position of item i in the ranking.
  std::vector<int> ranks(m);
  for (size_t pos = 0; pos < m; ++pos) {
    ranks[static_cast<size_t>(ranking[pos])] = static_cast<int>(pos) + 1;
  }

  EXPECT_NEAR(ReciprocalRank(list),
              ReciprocalRankFromDefinition(ranks, relevant), 1e-12);
  EXPECT_NEAR(AveragePrecision(list),
              AveragePrecisionFromDefinition(ranks, relevant), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefinitionAgreementTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace clapf
