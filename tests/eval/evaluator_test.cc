#include "clapf/eval/evaluator.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(EvaluatorTest, PerfectModelScoresPerfectly) {
  // 2 users, 4 items. Train: u0→0, u1→1. Test: u0→1, u1→2.
  Dataset train = testing::MakeDataset(2, 4, {{0, 0}, {1, 1}});
  Dataset test = testing::MakeDataset(2, 4, {{0, 1}, {1, 2}});
  // Give each user's test item the top score among candidates.
  FactorModel model = testing::MakeExactModel(
      {{0.0, 10.0, 1.0, 2.0}, {5.0, 0.0, 10.0, 1.0}});
  Evaluator eval(&train, &test);
  auto summary = eval.Evaluate(model, {1, 3});

  EXPECT_EQ(summary.users_evaluated, 2);
  EXPECT_DOUBLE_EQ(summary.AtK(1).precision, 1.0);
  EXPECT_DOUBLE_EQ(summary.AtK(1).recall, 1.0);
  EXPECT_DOUBLE_EQ(summary.AtK(1).ndcg, 1.0);
  EXPECT_DOUBLE_EQ(summary.AtK(1).one_call, 1.0);
  EXPECT_DOUBLE_EQ(summary.map, 1.0);
  EXPECT_DOUBLE_EQ(summary.mrr, 1.0);
  EXPECT_DOUBLE_EQ(summary.auc, 1.0);
}

TEST(EvaluatorTest, TrainItemsExcludedFromRanking) {
  // User 0 trained on item 0, which the model scores astronomically. If the
  // train item were ranked it would displace the test item from the top.
  Dataset train = testing::MakeDataset(1, 3, {{0, 0}});
  Dataset test = testing::MakeDataset(1, 3, {{0, 1}});
  FactorModel model = testing::MakeExactModel({{1000.0, 5.0, 1.0}});
  Evaluator eval(&train, &test);
  auto summary = eval.Evaluate(model, {1});
  EXPECT_DOUBLE_EQ(summary.AtK(1).precision, 1.0);
  EXPECT_DOUBLE_EQ(summary.mrr, 1.0);
}

TEST(EvaluatorTest, UsersWithoutTestItemsSkipped) {
  Dataset train = testing::MakeDataset(3, 4, {{0, 0}, {1, 1}, {2, 2}});
  Dataset test = testing::MakeDataset(3, 4, {{1, 3}});
  FactorModel model = testing::MakeExactModel(
      {{1.0, 2.0, 3.0, 4.0}, {1.0, 2.0, 3.0, 4.0}, {1.0, 2.0, 3.0, 4.0}});
  Evaluator eval(&train, &test);
  auto summary = eval.Evaluate(model, {2});
  EXPECT_EQ(summary.users_evaluated, 1);
}

TEST(EvaluatorTest, WorstModelScoresZeroAtSmallK) {
  // Test item has the lowest score among candidates.
  Dataset train = testing::MakeDataset(1, 5, {{0, 0}});
  Dataset test = testing::MakeDataset(1, 5, {{0, 4}});
  FactorModel model = testing::MakeExactModel({{0.0, 9.0, 8.0, 7.0, 1.0}});
  Evaluator eval(&train, &test);
  auto summary = eval.Evaluate(model, {1, 3});
  EXPECT_DOUBLE_EQ(summary.AtK(1).precision, 0.0);
  EXPECT_DOUBLE_EQ(summary.AtK(3).recall, 0.0);
  EXPECT_DOUBLE_EQ(summary.auc, 0.0);
  EXPECT_DOUBLE_EQ(summary.mrr, 1.0 / 4.0);  // 4 candidates, test item last
}

TEST(EvaluatorTest, MetricsAveragedOverUsers) {
  // User 0 perfect, user 1 worst (2 candidates each).
  Dataset train = testing::MakeDataset(2, 3, {{0, 0}, {1, 0}});
  Dataset test = testing::MakeDataset(2, 3, {{0, 1}, {1, 2}});
  FactorModel model =
      testing::MakeExactModel({{0.0, 9.0, 1.0}, {0.0, 9.0, 1.0}});
  Evaluator eval(&train, &test);
  auto summary = eval.Evaluate(model, {1});
  EXPECT_DOUBLE_EQ(summary.AtK(1).precision, 0.5);
  EXPECT_DOUBLE_EQ(summary.mrr, (1.0 + 0.5) / 2.0);
}

TEST(EvaluatorTest, RankerInterfaceWorks) {
  // A hand-rolled ranker that prefers higher item ids.
  class AscendingRanker : public Ranker {
   public:
    explicit AscendingRanker(int32_t m) : m_(m) {}
    void ScoreItems(UserId, std::vector<double>* scores) const override {
      scores->resize(static_cast<size_t>(m_));
      for (int32_t i = 0; i < m_; ++i) {
        (*scores)[static_cast<size_t>(i)] = i;
      }
    }

   private:
    int32_t m_;
  };

  Dataset train = testing::MakeDataset(1, 4, {{0, 0}});
  Dataset test = testing::MakeDataset(1, 4, {{0, 3}});
  Evaluator eval(&train, &test);
  AscendingRanker ranker(4);
  auto summary = eval.Evaluate(ranker, {1});
  EXPECT_DOUBLE_EQ(summary.AtK(1).precision, 1.0);
}

TEST(EvalSummaryTest, ToStringContainsHeadlineMetrics) {
  Dataset train = testing::MakeDataset(1, 3, {{0, 0}});
  Dataset test = testing::MakeDataset(1, 3, {{0, 1}});
  FactorModel model = testing::MakeExactModel({{0.0, 2.0, 1.0}});
  Evaluator eval(&train, &test);
  auto summary = eval.Evaluate(model, {1});
  std::string s = summary.ToString();
  EXPECT_NE(s.find("MAP="), std::string::npos);
  EXPECT_NE(s.find("MRR="), std::string::npos);
  EXPECT_NE(s.find("Prec@1="), std::string::npos);
}

TEST(EvaluatorTest, PaperCutoffsMatchFigure2) {
  EXPECT_EQ(PaperCutoffs(), (std::vector<int>{3, 5, 10, 15, 20}));
}

TEST(EvaluatorDeathTest, MismatchedDimensionsAbort) {
  Dataset train = testing::MakeDataset(2, 3, {{0, 0}});
  Dataset test = testing::MakeDataset(2, 4, {{0, 1}});
  EXPECT_DEATH(Evaluator(&train, &test), "Check failed");
}

}  // namespace
}  // namespace clapf
