#include "clapf/eval/sampled_evaluator.h"

#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(SampledEvaluatorTest, PerfectModelHitsTop1) {
  // Model ranks the test positive above everything.
  Dataset train = testing::MakeDataset(1, 20, {{0, 0}});
  Dataset test = testing::MakeDataset(1, 20, {{0, 5}});
  std::vector<std::vector<double>> scores(1, std::vector<double>(20, 0.0));
  scores[0][5] = 100.0;
  FactorModel model = testing::MakeExactModel(scores);
  SampledEvaluator evaluator(&train, &test, /*num_negatives=*/10, 1);
  FactorModelRanker ranker(&model);
  EvalSummary summary = evaluator.Evaluate(ranker, {1, 5});
  EXPECT_DOUBLE_EQ(summary.AtK(1).recall, 1.0);  // HitRate@1
  EXPECT_DOUBLE_EQ(summary.mrr, 1.0);
  EXPECT_DOUBLE_EQ(summary.auc, 1.0);
}

TEST(SampledEvaluatorTest, InflatesMetricsVsFullRanking) {
  // The key property the paper cites for not using this protocol: ranking
  // against 100 sampled negatives is easier than ranking the full catalog.
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 500;
  cfg.num_interactions = 2000;
  cfg.seed = 3;
  Dataset data = *GenerateSynthetic(cfg);
  auto split = SplitRandom(data, 0.5, 4);

  FactorModel model(data.num_users(), data.num_items(), 4);
  Rng rng(5);
  model.InitGaussian(rng, 0.3);

  Evaluator full(&split.train, &split.test);
  SampledEvaluator sampled(&split.train, &split.test, 20, 6);
  FactorModelRanker ranker(&model);
  EvalSummary full_summary = full.Evaluate(ranker, {5});
  EvalSummary sampled_summary = sampled.Evaluate(ranker, {5});
  EXPECT_GT(sampled_summary.mrr, full_summary.mrr);
  EXPECT_GT(sampled_summary.AtK(5).one_call, full_summary.AtK(5).one_call);
}

TEST(SampledEvaluatorTest, DeterministicGivenSeed) {
  SyntheticConfig cfg;
  cfg.num_users = 20;
  cfg.num_items = 80;
  cfg.num_interactions = 400;
  cfg.seed = 11;
  Dataset data = *GenerateSynthetic(cfg);
  auto split = SplitRandom(data, 0.5, 12);
  FactorModel model(data.num_users(), data.num_items(), 3);
  Rng rng(7);
  model.InitGaussian(rng, 0.3);
  FactorModelRanker ranker(&model);

  SampledEvaluator a(&split.train, &split.test, 15, 99);
  SampledEvaluator b(&split.train, &split.test, 15, 99);
  EXPECT_DOUBLE_EQ(a.Evaluate(ranker, {5}).mrr,
                   b.Evaluate(ranker, {5}).mrr);
}

TEST(SampledEvaluatorTest, SkipsUsersWithoutEnoughNegatives) {
  // 1 user, 5 items, 2 train + 2 test leaves 1 unobserved < 3 negatives.
  Dataset train = testing::MakeDataset(1, 5, {{0, 0}, {0, 1}});
  Dataset test = testing::MakeDataset(1, 5, {{0, 2}, {0, 3}});
  FactorModel model(1, 5, 2);
  SampledEvaluator evaluator(&train, &test, 3, 1);
  FactorModelRanker ranker(&model);
  EvalSummary summary = evaluator.Evaluate(ranker, {1});
  EXPECT_EQ(summary.users_evaluated, 0);
}

TEST(SampledEvaluatorDeathTest, RejectsZeroNegatives) {
  Dataset train = testing::MakeDataset(1, 5, {{0, 0}});
  Dataset test = testing::MakeDataset(1, 5, {{0, 1}});
  EXPECT_DEATH(SampledEvaluator(&train, &test, 0, 1), "Check failed");
}

}  // namespace
}  // namespace clapf
