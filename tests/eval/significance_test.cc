#include "clapf/eval/significance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clapf/util/random.h"

namespace clapf {
namespace {

TEST(NormalSurvivalTest, KnownValues) {
  EXPECT_NEAR(NormalSurvival(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalSurvival(1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalSurvival(-1.96), 0.975, 1e-3);
  EXPECT_LT(NormalSurvival(5.0), 1e-6);
}

TEST(PairedTTestTest, RejectsBadInput) {
  EXPECT_FALSE(PairedTTest({1.0}, {2.0}).ok());
  EXPECT_FALSE(PairedTTest({1.0, 2.0}, {1.0}).ok());
}

TEST(PairedTTestTest, ClearDifferenceIsSignificant) {
  // Five paired runs, consistent ~+0.05 advantage with small noise.
  std::vector<double> a{0.55, 0.56, 0.54, 0.55, 0.56};
  std::vector<double> b{0.50, 0.51, 0.49, 0.50, 0.51};
  auto result = PairedTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->mean_difference, 0.05, 1e-9);
  EXPECT_TRUE(result->significant_at_05);
  EXPECT_GT(result->t_statistic, 2.776);  // critical t at df=4
}

TEST(PairedTTestTest, NoiseIsNotSignificant) {
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 10; ++i) {
    double base = 0.5 + 0.05 * rng.NextGaussian();
    a.push_back(base + 0.001 * rng.NextGaussian());
    b.push_back(base + 0.001 * rng.NextGaussian());
  }
  auto result = PairedTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->significant_at_05);
}

TEST(PairedTTestTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a{0.4, 0.5, 0.6};
  auto result = PairedTTest(a, a);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->mean_difference, 0.0);
  EXPECT_FALSE(result->significant_at_05);
}

TEST(PairedTTestTest, ConstantNonzeroDifferenceIsSignificant) {
  std::vector<double> a{0.5, 0.6, 0.7};
  std::vector<double> b{0.4, 0.5, 0.6};
  auto result = PairedTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->significant_at_05);
  EXPECT_NEAR(result->p_value, 0.0, 1e-12);
}

TEST(PairedTTestTest, LargeSampleUsesNormalApprox) {
  std::vector<double> a, b;
  Rng rng(13);
  for (int i = 0; i < 64; ++i) {
    double base = rng.NextGaussian();
    a.push_back(base + 0.5 + 0.1 * rng.NextGaussian());
    b.push_back(base);
  }
  auto result = PairedTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->degrees_of_freedom, 63);
  EXPECT_TRUE(result->significant_at_05);
  EXPECT_LT(result->p_value, 0.001);
}

TEST(PairedComparisonTest, ToStringMentionsSignificance) {
  std::vector<double> a{0.55, 0.56, 0.54, 0.55, 0.56};
  std::vector<double> b{0.50, 0.51, 0.49, 0.50, 0.51};
  auto result = PairedTTest(a, b);
  ASSERT_TRUE(result.ok());
  std::string s = result->ToString();
  EXPECT_NE(s.find("significant"), std::string::npos);
  EXPECT_NE(s.find("t("), std::string::npos);
}

}  // namespace
}  // namespace clapf
