#include "clapf/eval/stratified.h"

#include <gtest/gtest.h>

#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(StratifiedTest, BucketsCoverAllEvaluableUsers) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 80;
  cfg.num_interactions = 1500;
  cfg.seed = 5;
  Dataset data = *GenerateSynthetic(cfg);
  auto split = SplitRandom(data, 0.5, 6);
  FactorModel model(data.num_users(), data.num_items(), 4);
  Rng rng(7);
  model.InitGaussian(rng, 0.3);
  FactorModelRanker ranker(&model);

  auto strata = EvaluateByActivity(split.train, split.test, ranker, {5}, 3);
  ASSERT_EQ(strata.size(), 3u);

  Evaluator full(&split.train, &split.test);
  int32_t total = 0;
  for (const auto& s : strata) total += s.summary.users_evaluated;
  EXPECT_EQ(total, full.Evaluate(ranker, {5}).users_evaluated);
}

TEST(StratifiedTest, ActivityRangesAscend) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 70;
  cfg.num_interactions = 1200;
  cfg.activity_sigma = 1.2;
  cfg.seed = 9;
  Dataset data = *GenerateSynthetic(cfg);
  auto split = SplitRandom(data, 0.5, 10);
  FactorModel model(data.num_users(), data.num_items(), 4);
  Rng rng(11);
  model.InitGaussian(rng, 0.3);
  FactorModelRanker ranker(&model);

  auto strata = EvaluateByActivity(split.train, split.test, ranker, {5}, 4);
  for (size_t s = 1; s < strata.size(); ++s) {
    EXPECT_GE(strata[s].min_activity, strata[s - 1].min_activity);
    EXPECT_GE(strata[s].max_activity, strata[s - 1].max_activity);
  }
}

TEST(StratifiedTest, SingleStratumEqualsFullEvaluation) {
  Dataset train = testing::MakeDataset(3, 6, {{0, 0}, {1, 1}, {2, 2}});
  Dataset test = testing::MakeDataset(3, 6, {{0, 3}, {1, 4}, {2, 5}});
  FactorModel model(3, 6, 2);
  Rng rng(13);
  model.InitGaussian(rng, 0.3);
  FactorModelRanker ranker(&model);

  auto strata = EvaluateByActivity(train, test, ranker, {3}, 1);
  ASSERT_EQ(strata.size(), 1u);
  Evaluator full(&train, &test);
  EvalSummary reference = full.Evaluate(ranker, {3});
  EXPECT_DOUBLE_EQ(strata[0].summary.map, reference.map);
  EXPECT_EQ(strata[0].summary.users_evaluated, reference.users_evaluated);
}

TEST(StratifiedTest, NoEvaluableUsersGivesEmpty) {
  Dataset train = testing::MakeDataset(2, 4, {{0, 0}});
  Dataset test = testing::MakeDataset(2, 4, {});
  FactorModel model(2, 4, 2);
  FactorModelRanker ranker(&model);
  auto strata = EvaluateByActivity(train, test, ranker, {3}, 2);
  EXPECT_TRUE(strata.empty());
}

TEST(StratifiedTest, LabelsCarryActivityBounds) {
  Dataset train = testing::MakeDataset(2, 5, {{0, 0}, {1, 1}, {1, 2}});
  Dataset test = testing::MakeDataset(2, 5, {{0, 3}, {1, 4}});
  FactorModel model(2, 5, 2);
  FactorModelRanker ranker(&model);
  auto strata = EvaluateByActivity(train, test, ranker, {3}, 2);
  ASSERT_EQ(strata.size(), 2u);
  EXPECT_EQ(strata[0].label, "activity[1,1]");
  EXPECT_EQ(strata[1].label, "activity[2,2]");
}

}  // namespace
}  // namespace clapf
