#include "clapf/model/model_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>

#include "clapf/util/fault_injection.h"
#include "clapf/util/fs.h"
#include "clapf/util/random.h"
#include "testing/fault_schedule.h"

namespace clapf {
namespace {

TEST(ModelIoTest, RoundTripPreservesEverything) {
  FactorModel model(7, 11, 4, /*use_item_bias=*/true);
  Rng rng(3);
  model.InitGaussian(rng, 0.3);
  for (ItemId i = 0; i < 11; ++i) model.ItemBias(i) = 0.1 * i;

  std::string path = ::testing::TempDir() + "model_roundtrip.clpf";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_users(), 7);
  EXPECT_EQ(loaded->num_items(), 11);
  EXPECT_EQ(loaded->num_factors(), 4);
  EXPECT_TRUE(loaded->use_item_bias());
  EXPECT_EQ(loaded->user_factor_data(), model.user_factor_data());
  EXPECT_EQ(loaded->item_factor_data(), model.item_factor_data());
  EXPECT_EQ(loaded->item_bias_data(), model.item_bias_data());
}

TEST(ModelIoTest, RoundTripWithoutBias) {
  FactorModel model(2, 3, 2, /*use_item_bias=*/false);
  Rng rng(5);
  model.InitGaussian(rng, 0.1);
  std::string path = ::testing::TempDir() + "model_nobias.clpf";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->use_item_bias());
  for (UserId u = 0; u < 2; ++u) {
    for (ItemId i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(loaded->Score(u, i), model.Score(u, i));
    }
  }
}

TEST(ModelIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadModel("/no/such/model.clpf").status().code(),
            StatusCode::kIoError);
}

TEST(ModelIoTest, BadMagicIsCorruption) {
  std::string path = ::testing::TempDir() + "bad_magic.clpf";
  std::ofstream(path) << "NOTAMODELFILE____________";
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kCorruption);
}

TEST(ModelIoTest, TruncatedFileIsCorruption) {
  FactorModel model(5, 5, 3);
  std::string full_path = ::testing::TempDir() + "full_model.clpf";
  ASSERT_TRUE(SaveModel(model, full_path).ok());

  // Copy only the first 40 bytes.
  std::ifstream in(full_path, std::ios::binary);
  std::vector<char> bytes(40);
  in.read(bytes.data(), 40);
  std::string trunc_path = ::testing::TempDir() + "trunc_model.clpf";
  std::ofstream out(trunc_path, std::ios::binary);
  out.write(bytes.data(), in.gcount());
  out.close();

  EXPECT_EQ(LoadModel(trunc_path).status().code(), StatusCode::kCorruption);
}

TEST(ModelIoTest, SaveToBadPathIsIoError) {
  FactorModel model(1, 1, 1);
  EXPECT_EQ(SaveModel(model, "/no-such-dir-xyz/m.clpf").code(),
            StatusCode::kIoError);
}

TEST(ModelIoTest, BitFlipInParametersIsCaughtByCrc) {
  FactorModel model(6, 9, 3);
  Rng rng(11);
  model.InitGaussian(rng, 0.2);
  std::string path = ::testing::TempDir() + "flipped_model.clpf";
  ASSERT_TRUE(SaveModel(model, path).ok());

  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string damaged = *contents;
  damaged[damaged.size() / 2] ^= 0x01;  // deep inside the parameter arrays
  ASSERT_TRUE(WriteStringToFile(path, damaged).ok());

  auto loaded = LoadModel(path);
  ASSERT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST(ModelIoTest, TruncationInsideParametersIsCorruption) {
  FactorModel model(6, 9, 3);
  std::string path = ::testing::TempDir() + "trunc_params.clpf";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // Drop only the trailing CRC: the parameters are all there, but a v2 file
  // without its checksum is a torn write.
  std::string torn = contents->substr(0, contents->size() - 4);
  ASSERT_TRUE(WriteStringToFile(path, torn).ok());
  auto loaded = LoadModel(path);
  ASSERT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("missing parameter checksum"),
            std::string::npos);
}

TEST(ModelIoTest, Version1FileWithoutCrcStillLoads) {
  FactorModel model(2, 3, 2, /*use_item_bias=*/true);
  Rng rng(4);
  model.InitGaussian(rng, 0.1);

  // Hand-craft a v1 image: same header and parameter layout, no trailing CRC.
  std::string path = ::testing::TempDir() + "v1_model.clpf";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write("CLPF", 4);
  const uint32_t version = 1;
  const int32_t users = 2, items = 3, factors = 2;
  const uint8_t bias = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&users), sizeof(users));
  out.write(reinterpret_cast<const char*>(&items), sizeof(items));
  out.write(reinterpret_cast<const char*>(&factors), sizeof(factors));
  out.write(reinterpret_cast<const char*>(&bias), sizeof(bias));
  auto write_doubles = [&out](const std::vector<double>& v) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(double)));
  };
  write_doubles(model.user_factor_data());
  write_doubles(model.item_factor_data());
  write_doubles(model.item_bias_data());
  out.close();

  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->user_factor_data(), model.user_factor_data());
  EXPECT_EQ(loaded->item_factor_data(), model.item_factor_data());
}

TEST(ModelIoTest, AtomicSaveRoundTrips) {
  FactorModel model(4, 5, 2);
  Rng rng(8);
  model.InitGaussian(rng, 0.3);
  std::string path = ::testing::TempDir() + "atomic_model.clpf";
  ASSERT_TRUE(SaveModelAtomic(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->user_factor_data(), model.user_factor_data());
}

TEST(ModelIoTest, InjectedShortWriteIsDetectedAtLoad) {
  FactorModel model(6, 9, 3);
  std::string path = ::testing::TempDir() + "short_model.clpf";
  {
    clapf::testing::ScopedFaultSchedule faults(
        {{FaultPoint::kModelWriteShort, {}}});
    ASSERT_TRUE(SaveModel(model, path).ok());  // write "succeeds", torn
  }
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kCorruption);
}

TEST(ModelIoTest, InjectedRenameFailurePreservesOldModel) {
  FactorModel old_model(3, 3, 2);
  Rng rng(2);
  old_model.InitGaussian(rng, 0.2);
  std::string path = ::testing::TempDir() + "rename_model.clpf";
  ASSERT_TRUE(SaveModelAtomic(old_model, path).ok());

  FactorModel new_model(3, 3, 2);
  {
    clapf::testing::ScopedFaultSchedule faults(
        {{FaultPoint::kModelRename, {}}});
    EXPECT_EQ(SaveModelAtomic(new_model, path).code(), StatusCode::kIoError);
  }
  // The published file still holds the previous model.
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->user_factor_data(), old_model.user_factor_data());
}

}  // namespace
}  // namespace clapf
