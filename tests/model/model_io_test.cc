#include "clapf/model/model_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "clapf/util/random.h"

namespace clapf {
namespace {

TEST(ModelIoTest, RoundTripPreservesEverything) {
  FactorModel model(7, 11, 4, /*use_item_bias=*/true);
  Rng rng(3);
  model.InitGaussian(rng, 0.3);
  for (ItemId i = 0; i < 11; ++i) model.ItemBias(i) = 0.1 * i;

  std::string path = ::testing::TempDir() + "model_roundtrip.clpf";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_users(), 7);
  EXPECT_EQ(loaded->num_items(), 11);
  EXPECT_EQ(loaded->num_factors(), 4);
  EXPECT_TRUE(loaded->use_item_bias());
  EXPECT_EQ(loaded->user_factor_data(), model.user_factor_data());
  EXPECT_EQ(loaded->item_factor_data(), model.item_factor_data());
  EXPECT_EQ(loaded->item_bias_data(), model.item_bias_data());
}

TEST(ModelIoTest, RoundTripWithoutBias) {
  FactorModel model(2, 3, 2, /*use_item_bias=*/false);
  Rng rng(5);
  model.InitGaussian(rng, 0.1);
  std::string path = ::testing::TempDir() + "model_nobias.clpf";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->use_item_bias());
  for (UserId u = 0; u < 2; ++u) {
    for (ItemId i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(loaded->Score(u, i), model.Score(u, i));
    }
  }
}

TEST(ModelIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadModel("/no/such/model.clpf").status().code(),
            StatusCode::kIoError);
}

TEST(ModelIoTest, BadMagicIsCorruption) {
  std::string path = ::testing::TempDir() + "bad_magic.clpf";
  std::ofstream(path) << "NOTAMODELFILE____________";
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kCorruption);
}

TEST(ModelIoTest, TruncatedFileIsCorruption) {
  FactorModel model(5, 5, 3);
  std::string full_path = ::testing::TempDir() + "full_model.clpf";
  ASSERT_TRUE(SaveModel(model, full_path).ok());

  // Copy only the first 40 bytes.
  std::ifstream in(full_path, std::ios::binary);
  std::vector<char> bytes(40);
  in.read(bytes.data(), 40);
  std::string trunc_path = ::testing::TempDir() + "trunc_model.clpf";
  std::ofstream out(trunc_path, std::ios::binary);
  out.write(bytes.data(), in.gcount());
  out.close();

  EXPECT_EQ(LoadModel(trunc_path).status().code(), StatusCode::kCorruption);
}

TEST(ModelIoTest, SaveToBadPathIsIoError) {
  FactorModel model(1, 1, 1);
  EXPECT_EQ(SaveModel(model, "/no-such-dir-xyz/m.clpf").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace clapf
