#include "clapf/model/factor_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(FactorModelTest, ZeroInitializedScoresAreZero) {
  FactorModel model(3, 4, 2);
  for (UserId u = 0; u < 3; ++u) {
    for (ItemId i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(model.Score(u, i), 0.0);
    }
  }
}

TEST(FactorModelTest, ScoreIsDotProductPlusBias) {
  FactorModel model(1, 1, 2);
  model.UserFactors(0)[0] = 2.0;
  model.UserFactors(0)[1] = -1.0;
  model.ItemFactors(0)[0] = 3.0;
  model.ItemFactors(0)[1] = 4.0;
  model.ItemBias(0) = 0.5;
  EXPECT_DOUBLE_EQ(model.Score(0, 0), 2.0 * 3.0 + (-1.0) * 4.0 + 0.5);
}

TEST(FactorModelTest, BiasDisabledIgnoresBias) {
  FactorModel model(1, 1, 1, /*use_item_bias=*/false);
  model.UserFactors(0)[0] = 1.0;
  model.ItemFactors(0)[0] = 1.0;
  model.ItemBias(0) = 100.0;
  EXPECT_DOUBLE_EQ(model.Score(0, 0), 1.0);
}

TEST(FactorModelTest, ScoreAllItemsMatchesScore) {
  FactorModel model(2, 5, 3);
  Rng rng(7);
  model.InitGaussian(rng, 0.5);
  std::vector<double> scores;
  model.ScoreAllItems(1, &scores);
  ASSERT_EQ(scores.size(), 5u);
  for (ItemId i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(scores[static_cast<size_t>(i)], model.Score(1, i));
  }
}

TEST(FactorModelTest, InitGaussianIsDeterministic) {
  FactorModel a(4, 4, 3), b(4, 4, 3);
  Rng ra(11), rb(11);
  a.InitGaussian(ra, 0.1);
  b.InitGaussian(rb, 0.1);
  EXPECT_EQ(a.user_factor_data(), b.user_factor_data());
  EXPECT_EQ(a.item_factor_data(), b.item_factor_data());
}

TEST(FactorModelTest, InitGaussianStddevScales) {
  FactorModel model(50, 50, 10);
  Rng rng(13);
  model.InitGaussian(rng, 0.01);
  double sum_sq = 0.0;
  for (double x : model.user_factor_data()) sum_sq += x * x;
  double std = std::sqrt(sum_sq / model.user_factor_data().size());
  EXPECT_NEAR(std, 0.01, 0.002);
}

TEST(FactorModelTest, InitUniformStaysInRange) {
  FactorModel model(10, 10, 5);
  Rng rng(17);
  model.InitUniform(rng, 0.2);
  for (double x : model.user_factor_data()) {
    EXPECT_GE(x, -0.2);
    EXPECT_LE(x, 0.2);
  }
}

TEST(FactorModelTest, TopKExcludesObservedItems) {
  // Exact score control: user 0 scores items 0..3 as 4,3,2,1.
  FactorModel model = testing::MakeExactModel({{4.0, 3.0, 2.0, 1.0}});
  Dataset observed = testing::MakeDataset(1, 4, {{0, 0}});
  auto top = model.TopKForUser(0, 2, &observed);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 1);  // item 0 excluded
  EXPECT_EQ(top[1].item, 2);
}

TEST(FactorModelTest, TopKWithoutExclusion) {
  FactorModel model = testing::MakeExactModel({{1.0, 9.0, 5.0}});
  auto top = model.TopKForUser(0, 2, nullptr);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 1);
  EXPECT_EQ(top[1].item, 2);
}

TEST(FactorModelTest, SquaredNormSumsAllParameters) {
  FactorModel model(1, 1, 1);
  model.UserFactors(0)[0] = 2.0;
  model.ItemFactors(0)[0] = 3.0;
  model.ItemBias(0) = 1.0;
  EXPECT_DOUBLE_EQ(model.SquaredNorm(), 4.0 + 9.0 + 1.0);
}

TEST(FactorModelTest, ExactModelHelperReproducesScores) {
  std::vector<std::vector<double>> scores{{0.5, -1.0, 2.0}, {3.0, 0.0, -0.5}};
  FactorModel model = testing::MakeExactModel(scores);
  for (UserId u = 0; u < 2; ++u) {
    for (ItemId i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(model.Score(u, i),
                       scores[static_cast<size_t>(u)][static_cast<size_t>(i)]);
    }
  }
}

}  // namespace
}  // namespace clapf
