// Header hygiene: every public header must be self-contained (Google style:
// "header files should be self-contained (compile on their own)"). Each is
// included here twice to also exercise the include guards. The umbrella
// header comes last so any missing transitive include in it surfaces too.

#include "clapf/baselines/bpr.h"          // NOLINT
#include "clapf/baselines/bpr.h"          // NOLINT
#include "clapf/baselines/climf.h"        // NOLINT
#include "clapf/baselines/climf.h"        // NOLINT
#include "clapf/baselines/deep_icf.h"     // NOLINT
#include "clapf/baselines/gbpr.h"         // NOLINT
#include "clapf/baselines/item_knn.h"     // NOLINT
#include "clapf/baselines/mpr.h"          // NOLINT
#include "clapf/baselines/neu_mf.h"       // NOLINT
#include "clapf/baselines/neu_pr.h"       // NOLINT
#include "clapf/baselines/pop_rank.h"     // NOLINT
#include "clapf/baselines/random_walk.h"  // NOLINT
#include "clapf/baselines/wmf.h"          // NOLINT
#include "clapf/core/checkpoint.h"        // NOLINT
#include "clapf/core/checkpoint.h"        // NOLINT
#include "clapf/core/clapf_trainer.h"     // NOLINT
#include "clapf/core/divergence_guard.h"  // NOLINT
#include "clapf/core/divergence_guard.h"  // NOLINT
#include "clapf/core/model_selection.h"   // NOLINT
#include "clapf/core/ranker.h"            // NOLINT
#include "clapf/core/ranker.h"            // NOLINT
#include "clapf/core/sgd_executor.h"      // NOLINT
#include "clapf/core/sgd_executor.h"      // NOLINT
#include "clapf/core/smoothing.h"         // NOLINT
#include "clapf/core/trainer.h"           // NOLINT
#include "clapf/core/trainer_factory.h"   // NOLINT
#include "clapf/data/dataset.h"           // NOLINT
#include "clapf/data/dataset_builder.h"   // NOLINT
#include "clapf/data/dataset_io.h"        // NOLINT
#include "clapf/data/loader.h"            // NOLINT
#include "clapf/data/split.h"             // NOLINT
#include "clapf/data/statistics.h"        // NOLINT
#include "clapf/data/synthetic.h"         // NOLINT
#include "clapf/eval/beyond_accuracy.h"   // NOLINT
#include "clapf/eval/evaluator.h"         // NOLINT
#include "clapf/eval/protocol.h"          // NOLINT
#include "clapf/eval/ranking_metrics.h"   // NOLINT
#include "clapf/eval/sampled_evaluator.h" // NOLINT
#include "clapf/eval/significance.h"      // NOLINT
#include "clapf/eval/stratified.h"        // NOLINT
#include "clapf/model/factor_model.h"     // NOLINT
#include "clapf/model/model_io.h"         // NOLINT
#include "clapf/model/packed_snapshot.h"  // NOLINT
#include "clapf/model/score_kernel.h"     // NOLINT
#include "clapf/recommender.h"            // NOLINT
#include "clapf/sampling/abs_sampler.h"   // NOLINT
#include "clapf/sampling/aobpr_sampler.h" // NOLINT
#include "clapf/sampling/dns_sampler.h"   // NOLINT
#include "clapf/sampling/dss_sampler.h"   // NOLINT
#include "clapf/sampling/geometric.h"     // NOLINT
#include "clapf/sampling/rank_list.h"     // NOLINT
#include "clapf/sampling/sampler.h"       // NOLINT
#include "clapf/sampling/uniform_sampler.h"  // NOLINT
#include "clapf/util/crc32.h"             // NOLINT
#include "clapf/util/crc32.h"             // NOLINT
#include "clapf/util/csv.h"               // NOLINT
#include "clapf/util/fault_injection.h"   // NOLINT
#include "clapf/util/fault_injection.h"   // NOLINT
#include "clapf/util/flags.h"             // NOLINT
#include "clapf/util/fs.h"                // NOLINT
#include "clapf/util/fs.h"                // NOLINT
#include "clapf/util/linalg.h"            // NOLINT
#include "clapf/util/logging.h"           // NOLINT
#include "clapf/util/math.h"              // NOLINT
#include "clapf/util/random.h"            // NOLINT
#include "clapf/util/status.h"            // NOLINT
#include "clapf/util/stopwatch.h"         // NOLINT
#include "clapf/util/string_util.h"       // NOLINT
#include "clapf/util/table_printer.h"     // NOLINT
#include "clapf/util/thread_pool.h"       // NOLINT
#include "clapf/util/top_k.h"             // NOLINT
#include "clapf/clapf.h"                  // NOLINT
#include "clapf/clapf.h"                  // NOLINT

#include <gtest/gtest.h>

namespace clapf {
namespace {

TEST(HeadersTest, AllPublicHeadersAreSelfContainedAndGuarded) {
  // Compiling this translation unit is the assertion.
  SUCCEED();
}

}  // namespace
}  // namespace clapf
