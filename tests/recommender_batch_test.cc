// Tests for the redesigned query surface: Recommend(u, k, QueryOptions),
// RecommendBatch, and the deterministic parallel evaluator that backs the
// serving-quality reports.

#include <gtest/gtest.h>

#include <vector>

#include "clapf/baselines/bpr.h"
#include "clapf/data/dataset_builder.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "clapf/recommender.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

using testing::MakeDataset;
using testing::MakeExactModel;

Recommender MakeExactRecommender() {
  // Scores: user 0 prefers ascending ids, user 1 descending, user 2 flat.
  FactorModel model = MakeExactModel(
      {{0.0, 1.0, 2.0, 3.0}, {3.0, 2.0, 1.0, 0.0}, {0.5, 0.5, 0.5, 0.5}});
  // User 0 has seen item 0; user 2 is cold.
  Dataset history = MakeDataset(3, 4, {{0, 0}, {1, 3}});
  return *Recommender::Create(std::move(model), std::move(history));
}

TEST(QueryOptionsTest, DefaultOptionsMatchClassicQuery) {
  Recommender rec = MakeExactRecommender();
  auto got = rec.Recommend(0, 2, QueryOptions{});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0].item, 3);
  EXPECT_EQ((*got)[1].item, 2);
}

TEST(QueryOptionsTest, ExcludeListSkipsItems) {
  Recommender rec = MakeExactRecommender();
  QueryOptions opts;
  opts.exclude = {3, 99, -1};  // out-of-range ids ignored
  auto got = rec.Recommend(0, 2, opts);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0].item, 2);
  EXPECT_EQ((*got)[1].item, 1);
}

TEST(QueryOptionsTest, MinScoreCutsTheTail) {
  Recommender rec = MakeExactRecommender();
  QueryOptions opts;
  opts.min_score = 2.5;
  auto got = rec.Recommend(0, 3, opts);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 1u);  // only item 3 (score 3.0) clears the floor
  EXPECT_EQ((*got)[0].item, 3);
}

TEST(QueryOptionsTest, ColdStartFallbackCanBeDisabled) {
  Recommender rec = MakeExactRecommender();
  // User 2 is cold: default options serve popularity...
  auto with = rec.Recommend(2, 2, QueryOptions{});
  ASSERT_TRUE(with.ok());
  EXPECT_FALSE(with->empty());
  // ...opting out returns empty instead.
  QueryOptions opts;
  opts.cold_start_fallback = false;
  auto without = rec.Recommend(2, 2, opts);
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(without->empty());
}

TEST(QueryOptionsTest, UnknownUserIsRejected) {
  Recommender rec = MakeExactRecommender();
  EXPECT_EQ(rec.Recommend(17, 2, QueryOptions{}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(RecommendBatchTest, MatchesPerUserQueriesExactly) {
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 60;
  cfg.num_interactions = 800;
  cfg.seed = 11;
  Dataset data = *GenerateSynthetic(cfg);

  BprOptions o;
  o.sgd.num_factors = 6;
  o.sgd.iterations = 4000;
  o.sgd.seed = 3;
  BprTrainer t(o);
  ASSERT_TRUE(t.Train(data).ok());
  Recommender rec =
      *Recommender::Create(FactorModel(*t.model()), std::move(data));

  std::vector<UserId> users;
  for (UserId u = 0; u < rec.num_users(); ++u) users.push_back(u);
  QueryOptions opts;
  opts.num_threads = 4;
  auto batch = rec.RecommendBatch(users, 5, opts);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    auto single = rec.Recommend(users[i], 5, opts);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batch)[i].size(), single->size()) << "user " << users[i];
    for (size_t r = 0; r < single->size(); ++r) {
      EXPECT_EQ((*batch)[i][r].item, (*single)[r].item);
      EXPECT_EQ((*batch)[i][r].score, (*single)[r].score);
    }
  }
}

TEST(RecommendBatchTest, OneBadIdFailsTheWholeBatchUpFront) {
  Recommender rec = MakeExactRecommender();
  std::vector<UserId> users = {0, 1, 42};
  auto got = rec.RecommendBatch(users, 2);
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(RecommendBatchTest, EmptyBatchIsFine) {
  Recommender rec = MakeExactRecommender();
  auto got = rec.RecommendBatch(std::vector<UserId>{}, 2);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(RecommendBatchTest, KBeyondCatalogIsClampedPerUser) {
  Recommender rec = MakeExactRecommender();
  std::vector<UserId> users = {0, 1, 2};
  auto got = rec.RecommendBatch(users, 1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[0].size(), 3u);  // user 0 has 1 history item of 4
  EXPECT_EQ((*got)[1].size(), 3u);
  EXPECT_EQ((*got)[2].size(), 4u);  // cold user ranks the whole catalog
}

TEST(RecommendBatchPartialTest, NoDeadlineMatchesRecommendBatch) {
  Recommender rec = MakeExactRecommender();
  std::vector<UserId> users = {0, 1, 2};
  auto full = rec.RecommendBatch(users, 2);
  auto partial = rec.RecommendBatchPartial(users, 2);
  ASSERT_TRUE(full.ok() && partial.ok());
  EXPECT_FALSE(partial->deadline_exceeded);
  EXPECT_EQ(partial->num_complete, users.size());
  ASSERT_EQ(partial->results.size(), full->size());
  for (size_t i = 0; i < users.size(); ++i) {
    EXPECT_NE(partial->complete[i], 0);
    ASSERT_EQ(partial->results[i].size(), (*full)[i].size());
    for (size_t r = 0; r < (*full)[i].size(); ++r) {
      EXPECT_EQ(partial->results[i][r].item, (*full)[i][r].item);
      EXPECT_EQ(partial->results[i][r].score, (*full)[i][r].score);
    }
  }
}

TEST(RecommendBatchPartialTest, BadIdStillFailsTheWholeCall) {
  Recommender rec = MakeExactRecommender();
  std::vector<UserId> users = {0, 42};
  EXPECT_EQ(rec.RecommendBatchPartial(users, 2).status().code(),
            StatusCode::kOutOfRange);
}

TEST(RecommendBatchPartialTest, GenerousDeadlineCompletesEveryUser) {
  Recommender rec = MakeExactRecommender();
  std::vector<UserId> users = {0, 1, 2};
  QueryOptions opts;
  opts.deadline = std::chrono::seconds(30);
  auto got = rec.RecommendBatchPartial(users, 2, opts);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->deadline_exceeded);
  EXPECT_EQ(got->num_complete, users.size());
}

TEST(EvaluatorDeterminismTest, ParallelResultIndependentOfThreadCount) {
  SyntheticConfig cfg;
  cfg.num_users = 300;  // > one 256-user block, so the reduction really runs
  cfg.num_items = 80;
  cfg.num_interactions = 3000;
  cfg.seed = 5;
  Dataset data = *GenerateSynthetic(cfg);

  BprOptions o;
  o.sgd.num_factors = 4;
  o.sgd.iterations = 2000;
  o.sgd.seed = 9;
  BprTrainer t(o);
  ASSERT_TRUE(t.Train(data).ok());

  Evaluator eval(&data, &data);
  FactorModelRanker ranker(t.model());
  const std::vector<int> ks = {3, 5, 10};
  EvalSummary one = eval.EvaluateParallel(ranker, ks, 1);
  EvalSummary eight = eval.EvaluateParallel(ranker, ks, 8);

  // The block partition and reduction order are fixed, so every accumulated
  // double must agree to the last bit across thread counts.
  EXPECT_EQ(one.users_evaluated, eight.users_evaluated);
  EXPECT_EQ(one.map, eight.map);
  EXPECT_EQ(one.mrr, eight.mrr);
  EXPECT_EQ(one.auc, eight.auc);
  ASSERT_EQ(one.at_k.size(), eight.at_k.size());
  for (size_t i = 0; i < one.at_k.size(); ++i) {
    EXPECT_EQ(one.at_k[i].precision, eight.at_k[i].precision);
    EXPECT_EQ(one.at_k[i].recall, eight.at_k[i].recall);
    EXPECT_EQ(one.at_k[i].f1, eight.at_k[i].f1);
    EXPECT_EQ(one.at_k[i].one_call, eight.at_k[i].one_call);
    EXPECT_EQ(one.at_k[i].ndcg, eight.at_k[i].ndcg);
  }
}

}  // namespace
}  // namespace clapf
