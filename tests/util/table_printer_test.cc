#include "clapf/util/table_printer.h"

#include <gtest/gtest.h>

#include <string>

namespace clapf {
namespace {

TEST(TablePrinterTest, EmptyTableRendersNothing) {
  TablePrinter table;
  EXPECT_EQ(table.ToString(), "");
}

TEST(TablePrinterTest, HeaderAndRowsAligned) {
  TablePrinter table;
  table.SetHeader({"Method", "MAP"});
  table.AddRow({"BPR", "0.247"});
  table.AddRow({"CLAPF-MAP", "0.294"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| Method    | MAP   |"), std::string::npos) << out;
  EXPECT_NE(out.find("| BPR       | 0.247 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| CLAPF-MAP | 0.294 |"), std::string::npos) << out;
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"1"});
  std::string out = table.ToString();
  // Every rendered line (rules and rows) has the same number of '|' cells.
  std::vector<size_t> pipe_counts;
  size_t line_start = 0;
  for (size_t i = 0; i <= out.size(); ++i) {
    if (i == out.size() || out[i] == '\n') {
      size_t pipes = 0;
      for (size_t j = line_start; j < i; ++j) {
        if (out[j] == '|') ++pipes;
      }
      if (pipes > 0) pipe_counts.push_back(pipes);
      line_start = i + 1;
    }
  }
  ASSERT_GE(pipe_counts.size(), 2u);
  for (size_t c : pipe_counts) EXPECT_EQ(c, pipe_counts[0]);
}

TEST(TablePrinterTest, SeparatorInsertsRule) {
  TablePrinter table;
  table.SetHeader({"x"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string out = table.ToString();
  // header rule + top rule + separator + bottom = 4 "+--+" lines.
  size_t rules = 0;
  for (size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos; ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter table;
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"a"});
  table.AddRow({"b"});
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace clapf
