#include "clapf/util/math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace clapf {
namespace {

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-15);
  EXPECT_NEAR(Sigmoid(-1.0), 1.0 - Sigmoid(1.0), 1e-15);
}

TEST(SigmoidTest, SymmetryIdentity) {
  for (double x : {-5.0, -0.3, 0.0, 0.7, 2.5, 10.0}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-12) << x;
  }
}

TEST(SigmoidTest, StableForExtremeInputs) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(Sigmoid(710.0)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-710.0)));
}

TEST(LogSigmoidTest, MatchesLogOfSigmoid) {
  for (double x : {-20.0, -3.0, -0.5, 0.0, 0.5, 3.0, 20.0}) {
    EXPECT_NEAR(LogSigmoid(x), std::log(Sigmoid(x)), 1e-10) << x;
  }
}

TEST(LogSigmoidTest, StableForExtremeNegatives) {
  // log σ(-1000) ≈ -1000; naive log(sigmoid) underflows to -inf.
  EXPECT_NEAR(LogSigmoid(-1000.0), -1000.0, 1e-9);
  EXPECT_TRUE(std::isfinite(LogSigmoid(-1e6)));
}

TEST(LogSigmoidGradTest, EqualsOneMinusSigmoid) {
  for (double x : {-4.0, -1.0, 0.0, 1.0, 4.0}) {
    EXPECT_NEAR(LogSigmoidGrad(x), 1.0 - Sigmoid(x), 1e-12) << x;
  }
}

TEST(LogSigmoidGradTest, MatchesNumericalDerivative) {
  const double h = 1e-6;
  for (double x : {-2.0, -0.1, 0.0, 0.3, 1.7}) {
    double numeric = (LogSigmoid(x + h) - LogSigmoid(x - h)) / (2 * h);
    EXPECT_NEAR(LogSigmoidGrad(x), numeric, 1e-6) << x;
  }
}

TEST(ClampTest, ClampsBothSides) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.3, 0.0, 1.0), 0.3);
}

}  // namespace
}  // namespace clapf
