#include "clapf/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace clapf {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(0, 257, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int64_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

}  // namespace
}  // namespace clapf
