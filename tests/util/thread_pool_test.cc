#include "clapf/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

namespace clapf {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(0, 257, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int64_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, TrySubmitRefusesPastMaxDepth) {
  ThreadPool pool(1);
  std::mutex gate;
  gate.lock();  // park the single worker on the first task
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.TrySubmit(
      [&gate, &ran] {
        std::lock_guard<std::mutex> hold(gate);
        ran.fetch_add(1);
      },
      /*max_depth=*/2));
  ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  // Two tasks in flight: a third at depth 2 must be refused, untouched.
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  EXPECT_EQ(pool.InFlight(), 2);

  gate.unlock();
  pool.Wait();
  EXPECT_EQ(ran.load(), 2);  // the refused task never ran
  EXPECT_EQ(pool.InFlight(), 0);

  // With the pool drained the same submission is admitted again.
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  pool.Wait();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, InFlightCountsPendingAndRunning) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.InFlight(), 0);
  std::mutex gate;
  gate.lock();
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&gate] { std::lock_guard<std::mutex> hold(gate); });
  }
  EXPECT_EQ(pool.InFlight(), 4);
  gate.unlock();
  pool.Wait();
  EXPECT_EQ(pool.InFlight(), 0);
}

}  // namespace
}  // namespace clapf
