#include "clapf/util/string_util.h"

#include <gtest/gtest.h>

namespace clapf {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(TrimTest, RemovesEdges) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("\t\n x y \r"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(ParseInt64Test, ValidValues) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("  9  "), 9);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-0.25"), -0.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 7 "), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("3.5z").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("clapf-map", "clapf"));
  EXPECT_FALSE(StartsWith("clapf", "clapf-map"));
  EXPECT_TRUE(EndsWith("data.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "data.csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("CLAPF-Map"), "clapf-map");
  EXPECT_EQ(ToLower("already"), "already");
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatDurationTest, Ranges) {
  EXPECT_EQ(FormatDuration(12.34), "12.34s");
  EXPECT_EQ(FormatDuration(61.5), "1:01.5");
  EXPECT_EQ(FormatDuration(3723.0), "1:02:03.0");
  EXPECT_EQ(FormatDuration(-1.0), "?");
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace clapf
