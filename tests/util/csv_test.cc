#include "clapf/util/csv.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, QuotedFieldWithDelimiter) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c", ','),
            (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsvLineTest, EscapedQuotes) {
  EXPECT_EQ(ParseCsvLine("\"he said \"\"hi\"\"\",x", ','),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST(ParseCsvLineTest, StripsCarriageReturn) {
  EXPECT_EQ(ParseCsvLine("a,b\r", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(CsvRoundTripTest, WriterThenReader) {
  std::string path = ::testing::TempDir() + "csv_roundtrip.csv";
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.WriteRow({"name", "value"}).ok());
  ASSERT_TRUE(writer.WriteRow({"with,comma", "with\"quote"}).ok());
  ASSERT_TRUE(writer.WriteRow({"multi\nline", "z"}).ok());
  ASSERT_TRUE(writer.Close().ok());

  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ((*rows)[1],
            (std::vector<std::string>{"with,comma", "with\"quote"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"multi\nline", "z"}));
}

TEST(CsvWriterTest, WriteBeforeOpenFails) {
  CsvWriter writer;
  EXPECT_EQ(writer.WriteRow({"a"}).code(), StatusCode::kFailedPrecondition);
}

TEST(CsvWriterTest, OpenBadPathFails) {
  CsvWriter writer;
  EXPECT_EQ(writer.Open("/nonexistent-dir-xyz/file.csv").code(),
            StatusCode::kIoError);
}

TEST(ReadCsvFileTest, MissingFileFails) {
  EXPECT_EQ(ReadCsvFile("/no/such/file.csv").status().code(),
            StatusCode::kIoError);
}

TEST(ReadCsvFileTest, SkipsBlankLines) {
  std::string path = testing::WriteTempFile("csv_blank.csv", "a,b\n\n\nc,d\n");
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(ReadCsvFileTest, TabDelimiter) {
  std::string path = testing::WriteTempFile("csv_tab.tsv", "1\t2\t3\n");
  auto rows = ReadCsvFile(path, '\t');
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"1", "2", "3"}));
}

}  // namespace
}  // namespace clapf
