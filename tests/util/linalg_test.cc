#include "clapf/util/linalg.h"

#include <gtest/gtest.h>

#include <vector>

#include "clapf/util/random.h"

namespace clapf {
namespace {

TEST(CholeskySolveTest, Solves1x1) {
  std::vector<double> a{4.0};
  std::vector<double> b{8.0};
  ASSERT_TRUE(CholeskySolveInPlace(a, b, 1).ok());
  EXPECT_NEAR(b[0], 2.0, 1e-12);
}

TEST(CholeskySolveTest, SolvesKnown2x2) {
  // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5].
  std::vector<double> a{4.0, 2.0, 2.0, 3.0};
  std::vector<double> b{10.0, 8.0};
  ASSERT_TRUE(CholeskySolveInPlace(a, b, 2).ok());
  EXPECT_NEAR(b[0], 1.75, 1e-10);
  EXPECT_NEAR(b[1], 1.5, 1e-10);
}

TEST(CholeskySolveTest, IdentitySolvesToRhs) {
  const int n = 5;
  std::vector<double> a(n * n, 0.0);
  for (int i = 0; i < n; ++i) a[static_cast<size_t>(i) * n + i] = 1.0;
  std::vector<double> b{1, 2, 3, 4, 5};
  ASSERT_TRUE(CholeskySolveInPlace(a, b, n).ok());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[static_cast<size_t>(i)], i + 1, 1e-12);
}

TEST(CholeskySolveTest, RejectsNonPositiveDefinite) {
  std::vector<double> a{1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  std::vector<double> b{1.0, 1.0};
  EXPECT_EQ(CholeskySolveInPlace(a, b, 2).code(),
            StatusCode::kFailedPrecondition);
}

// Property: for random SPD systems A = MᵀM + I, the residual ||Ax − b|| is
// tiny.
class CholeskyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyPropertyTest, ResidualIsSmall) {
  const int n = GetParam();
  Rng rng(1000 + n);
  std::vector<double> m(static_cast<size_t>(n) * n);
  for (auto& x : m) x = rng.NextGaussian();
  // A = MᵀM + I (SPD).
  std::vector<double> a(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = i == j ? 1.0 : 0.0;
      for (int k = 0; k < n; ++k) {
        s += m[static_cast<size_t>(k) * n + i] * m[static_cast<size_t>(k) * n + j];
      }
      a[static_cast<size_t>(i) * n + j] = s;
    }
  }
  std::vector<double> b(static_cast<size_t>(n));
  for (auto& x : b) x = rng.NextGaussian();

  std::vector<double> a_copy = a;
  std::vector<double> x = b;
  ASSERT_TRUE(CholeskySolveInPlace(a_copy, x, n).ok());

  for (int i = 0; i < n; ++i) {
    double r = -b[static_cast<size_t>(i)];
    for (int j = 0; j < n; ++j) {
      r += a[static_cast<size_t>(i) * n + j] * x[static_cast<size_t>(j)];
    }
    EXPECT_NEAR(r, 0.0, 1e-8) << "row " << i << " of n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 40));

class CholeskyInvertPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyInvertPropertyTest, ProductWithInverseIsIdentity) {
  const int n = GetParam();
  Rng rng(2000 + n);
  std::vector<double> m(static_cast<size_t>(n) * n);
  for (auto& x : m) x = rng.NextGaussian();
  // A = MᵀM + I (SPD).
  std::vector<double> a(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = i == j ? 1.0 : 0.0;
      for (int k = 0; k < n; ++k) {
        s += m[static_cast<size_t>(k) * n + i] *
             m[static_cast<size_t>(k) * n + j];
      }
      a[static_cast<size_t>(i) * n + j] = s;
    }
  }
  std::vector<double> inv = a;
  ASSERT_TRUE(CholeskyInvertInPlace(inv, n).ok());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int k = 0; k < n; ++k) {
        s += a[static_cast<size_t>(i) * n + k] *
             inv[static_cast<size_t>(k) * n + j];
      }
      EXPECT_NEAR(s, i == j ? 1.0 : 0.0, 1e-8) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CholeskyInvertPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 15, 31));

TEST(CholeskyInvertTest, RejectsIndefinite) {
  std::vector<double> a{1.0, 2.0, 2.0, 1.0};
  EXPECT_EQ(CholeskyInvertInPlace(a, 2).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AxpyTest, AddsScaledVector) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(DotTest, ComputesInnerProduct) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

}  // namespace
}  // namespace clapf
