#include "clapf/util/logging.h"

#include <gtest/gtest.h>

#include "clapf/util/status.h"

namespace clapf {
namespace {

TEST(LoggingTest, LogLevelRoundTrips) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(prev);
}

TEST(LoggingTest, LogBelowThresholdDoesNotCrash) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  CLAPF_LOG(Info) << "suppressed message " << 123;
  CLAPF_LOG(Warning) << "also suppressed";
  SetLogLevel(prev);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ CLAPF_CHECK(1 == 2) << "math broke"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(CLAPF_CHECK_OK(Status::Internal("boom")), "boom");
}

TEST(LoggingTest, CheckPassesSilently) {
  CLAPF_CHECK(2 + 2 == 4) << "never printed";
  CLAPF_CHECK_OK(Status::OK());
}

}  // namespace
}  // namespace clapf
