#include "clapf/util/top_k.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "clapf/util/random.h"

namespace clapf {
namespace {

TEST(TopKAccumulatorTest, ReturnsBestFirst) {
  TopKAccumulator acc(3);
  acc.Push(0, 1.0);
  acc.Push(1, 5.0);
  acc.Push(2, 3.0);
  acc.Push(3, 4.0);
  acc.Push(4, 2.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 1);
  EXPECT_EQ(top[1].item, 3);
  EXPECT_EQ(top[2].item, 2);
}

TEST(TopKAccumulatorTest, FewerThanKItems) {
  TopKAccumulator acc(10);
  acc.Push(7, 1.0);
  acc.Push(3, 2.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 3);
  EXPECT_EQ(top[1].item, 7);
}

TEST(TopKAccumulatorTest, TiesBrokenBySmallerItemId) {
  TopKAccumulator acc(2);
  acc.Push(9, 1.0);
  acc.Push(2, 1.0);
  acc.Push(5, 1.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 2);
  EXPECT_EQ(top[1].item, 5);
}

TEST(TopKAccumulatorTest, TakeEmptiesAccumulator) {
  TopKAccumulator acc(2);
  acc.Push(0, 1.0);
  acc.Take();
  EXPECT_EQ(acc.size(), 0u);
  auto again = acc.Take();
  EXPECT_TRUE(again.empty());
}

TEST(SelectTopKTest, RespectsExclusions) {
  std::vector<double> scores{0.9, 0.8, 0.7, 0.6};
  std::vector<bool> exclude{true, false, true, false};
  auto top = SelectTopK(scores, exclude, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 1);
  EXPECT_EQ(top[1].item, 3);
}

TEST(SelectTopKTest, EmptyExcludeMeansNone) {
  std::vector<double> scores{0.1, 0.9};
  auto top = SelectTopK(scores, {}, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 1);
}

// Property: for random inputs the accumulator matches a full sort.
class TopKPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(TopKPropertyTest, MatchesFullSort) {
  const auto [n, k] = GetParam();
  Rng rng(n * 31 + k);
  std::vector<double> scores(n);
  for (auto& s : scores) s = rng.NextDouble();

  TopKAccumulator acc(k);
  for (size_t i = 0; i < n; ++i) {
    acc.Push(static_cast<int32_t>(i), scores[i]);
  }
  auto got = acc.Take();

  std::vector<int32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int32_t>(i);
  std::sort(ids.begin(), ids.end(), [&](int32_t a, int32_t b) {
    if (scores[static_cast<size_t>(a)] != scores[static_cast<size_t>(b)]) {
      return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
    }
    return a < b;
  });

  ASSERT_EQ(got.size(), std::min(n, k));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, ids[i]) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopKPropertyTest,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(10, 3),
                      std::make_pair<size_t, size_t>(100, 10),
                      std::make_pair<size_t, size_t>(1000, 50),
                      std::make_pair<size_t, size_t>(5, 10),
                      std::make_pair<size_t, size_t>(257, 256)));

}  // namespace
}  // namespace clapf
