#include "clapf/util/top_k.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "clapf/core/ranker.h"
#include "clapf/util/random.h"

namespace clapf {
namespace {

TEST(TopKAccumulatorTest, ReturnsBestFirst) {
  TopKAccumulator acc(3);
  acc.Push(0, 1.0);
  acc.Push(1, 5.0);
  acc.Push(2, 3.0);
  acc.Push(3, 4.0);
  acc.Push(4, 2.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 1);
  EXPECT_EQ(top[1].item, 3);
  EXPECT_EQ(top[2].item, 2);
}

TEST(TopKAccumulatorTest, FewerThanKItems) {
  TopKAccumulator acc(10);
  acc.Push(7, 1.0);
  acc.Push(3, 2.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 3);
  EXPECT_EQ(top[1].item, 7);
}

TEST(TopKAccumulatorTest, TiesBrokenBySmallerItemId) {
  TopKAccumulator acc(2);
  acc.Push(9, 1.0);
  acc.Push(2, 1.0);
  acc.Push(5, 1.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 2);
  EXPECT_EQ(top[1].item, 5);
}

TEST(TopKAccumulatorTest, TakeEmptiesAccumulator) {
  TopKAccumulator acc(2);
  acc.Push(0, 1.0);
  acc.Take();
  EXPECT_EQ(acc.size(), 0u);
  auto again = acc.Take();
  EXPECT_TRUE(again.empty());
}

TEST(SelectTopKTest, RespectsExclusions) {
  std::vector<double> scores{0.9, 0.8, 0.7, 0.6};
  std::vector<bool> exclude{true, false, true, false};
  auto top = SelectTopK(scores, exclude, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 1);
  EXPECT_EQ(top[1].item, 3);
}

TEST(SelectTopKTest, EmptyExcludeMeansNone) {
  std::vector<double> scores{0.1, 0.9};
  auto top = SelectTopK(scores, {}, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 1);
}

// Property: for random inputs the accumulator matches a full sort.
class TopKPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(TopKPropertyTest, MatchesFullSort) {
  const auto [n, k] = GetParam();
  Rng rng(n * 31 + k);
  std::vector<double> scores(n);
  for (auto& s : scores) s = rng.NextDouble();

  TopKAccumulator acc(k);
  for (size_t i = 0; i < n; ++i) {
    acc.Push(static_cast<int32_t>(i), scores[i]);
  }
  auto got = acc.Take();

  std::vector<int32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int32_t>(i);
  std::sort(ids.begin(), ids.end(), [&](int32_t a, int32_t b) {
    if (scores[static_cast<size_t>(a)] != scores[static_cast<size_t>(b)]) {
      return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
    }
    return a < b;
  });

  ASSERT_EQ(got.size(), std::min(n, k));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, ids[i]) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopKPropertyTest,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(10, 3),
                      std::make_pair<size_t, size_t>(100, 10),
                      std::make_pair<size_t, size_t>(1000, 50),
                      std::make_pair<size_t, size_t>(5, 10),
                      std::make_pair<size_t, size_t>(257, 256)));

TEST(TopKAccumulatorTest, EqualScoresKeepSmallerIds) {
  // Five candidates share one score; with k = 3 the three smallest ids must
  // survive regardless of arrival order.
  TopKAccumulator acc(3);
  for (int32_t item : {4, 0, 3, 1, 2}) acc.Push(item, 7.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 0);
  EXPECT_EQ(top[1].item, 1);
  EXPECT_EQ(top[2].item, 2);
}

TEST(TopKAccumulatorTest, TieWithWorstKeptEvictsLargerId) {
  // The heap is full of score-1.0 items; a later candidate tying that score
  // with a *smaller* id must evict the largest kept id, while a larger id
  // must bounce off.
  TopKAccumulator acc(2);
  acc.Push(5, 1.0);
  acc.Push(7, 1.0);
  acc.Push(9, 1.0);  // larger id, same score: rejected
  acc.Push(2, 1.0);  // smaller id, same score: evicts 7
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 2);
  EXPECT_EQ(top[1].item, 5);
}

TEST(TopKAccumulatorTest, ThresholdTracksWorstKeptItem) {
  TopKAccumulator acc(2);
  EXPECT_FALSE(acc.full());
  acc.Push(0, 3.0);
  EXPECT_FALSE(acc.full());
  acc.Push(1, 5.0);
  ASSERT_TRUE(acc.full());
  EXPECT_DOUBLE_EQ(acc.threshold_score(), 3.0);
  acc.Push(2, 4.0);  // evicts the 3.0
  EXPECT_DOUBLE_EQ(acc.threshold_score(), 4.0);
}

TEST(ClampKTest, Edges) {
  EXPECT_EQ(ClampK(0, 100), 0u);         // k = 0 stays 0
  EXPECT_EQ(ClampK(500, 100), 100u);     // k beyond the catalog clamps
  EXPECT_EQ(ClampK(5, 0), 0u);           // empty catalog
  EXPECT_EQ(ClampK(5, -3), 0u);          // negative item count is not UB
  EXPECT_EQ(ClampK(5, 100), 5u);         // in-range k untouched
}

TEST(SelectTopKTest, AllExcludedYieldsEmpty) {
  std::vector<double> scores = {3.0, 1.0, 2.0};
  std::vector<bool> exclude(scores.size(), true);
  EXPECT_TRUE(SelectTopK(scores, exclude, 2).empty());
}

}  // namespace
}  // namespace clapf
