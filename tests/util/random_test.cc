#include "clapf/util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace clapf {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Uniform(bound), bound);
  }
}

TEST(RngTest, UniformRangeCoversAllValues) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformRange(-3, 4));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    mean += x;
  }
  mean /= n;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(17);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) hits += rng.Bernoulli(p) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02) << "p=" << p;
  }
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  Rng rng(19);
  const double p = 0.2;
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(p));
  // Mean of failures-before-success geometric is (1-p)/p = 4.
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity ~ 1/100!
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(50, 10);
    std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (uint64_t s : sample) EXPECT_LT(s, 50u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(8, 8);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
}

// Property sweep: Uniform(bound) hits both extremes over many draws for a
// range of bounds.
class RngUniformSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformSweep, HitsExtremes) {
  const uint64_t bound = GetParam();
  Rng rng(100 + bound);
  bool saw_zero = false, saw_max = false;
  for (int i = 0; i < 100000 && !(saw_zero && saw_max); ++i) {
    uint64_t x = rng.Uniform(bound);
    saw_zero |= x == 0;
    saw_max |= x == bound - 1;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_max);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformSweep,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

}  // namespace
}  // namespace clapf
