// Stopwatch contract: monotone non-negative readings, consistent units, and
// Reset() restarting from zero.

#include "clapf/util/stopwatch.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace clapf {
namespace {

TEST(StopwatchTest, ReadingsAreNonNegativeAndMonotone) {
  Stopwatch watch;
  const double a = watch.ElapsedSeconds();
  const double b = watch.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, UnitsAreConsistent) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Take the three readings as close together as possible; they can only
  // drift forward between calls, so each coarser unit bounds the finer one
  // from below.
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  const double micros = watch.ElapsedMicros();
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_GE(micros, millis);  // micros read later and is 1000x larger
  EXPECT_GE(seconds, 0.005);  // slept at least 5ms
  EXPECT_GE(micros, 5000.0);
}

TEST(StopwatchTest, MeasuresSleptInterval) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // steady_clock guarantees at least the requested sleep has elapsed; there
  // is no meaningful upper bound on a loaded machine.
  EXPECT_GE(watch.ElapsedMillis(), 10.0);
}

TEST(StopwatchTest, ResetRestartsFromZero) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Reset();
  // Immediately after Reset the elapsed time must be far below the 10ms
  // that accumulated before it.
  EXPECT_LT(watch.ElapsedMillis(), 10.0);
}

}  // namespace
}  // namespace clapf
