#include "clapf/util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace clapf {
namespace {

// Builds an argv array from string literals (argv[0] is the program name).
std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(FlagParserTest, ParsesAllTypesWithEquals) {
  int64_t iters = 10;
  double lr = 0.1;
  std::string name = "none";
  bool verbose = false;
  FlagParser parser;
  parser.AddInt("iters", &iters, "iterations");
  parser.AddDouble("lr", &lr, "learning rate");
  parser.AddString("name", &name, "run name");
  parser.AddBool("verbose", &verbose, "chatty");

  std::vector<std::string> storage{"prog", "--iters=500", "--lr=0.01",
                                   "--name=bench", "--verbose=true"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(iters, 500);
  EXPECT_DOUBLE_EQ(lr, 0.01);
  EXPECT_EQ(name, "bench");
  EXPECT_TRUE(verbose);
}

TEST(FlagParserTest, ParsesSpaceSeparatedValues) {
  int64_t n = 0;
  FlagParser parser;
  parser.AddInt("n", &n, "count");
  std::vector<std::string> storage{"prog", "--n", "7"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(n, 7);
}

TEST(FlagParserTest, BareBoolFlagSetsTrue) {
  bool flag = false;
  FlagParser parser;
  parser.AddBool("fast", &flag, "go fast");
  std::vector<std::string> storage{"prog", "--fast"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(flag);
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser parser;
  std::vector<std::string> storage{"prog", "--mystery=1"};
  auto argv = MakeArgv(storage);
  auto status = parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, BadIntValueIsError) {
  int64_t n = 0;
  FlagParser parser;
  parser.AddInt("n", &n, "count");
  std::vector<std::string> storage{"prog", "--n=abc"};
  auto argv = MakeArgv(storage);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, MissingValueIsError) {
  int64_t n = 0;
  FlagParser parser;
  parser.AddInt("n", &n, "count");
  std::vector<std::string> storage{"prog", "--n"};
  auto argv = MakeArgv(storage);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, CollectsPositionalArguments) {
  FlagParser parser;
  std::vector<std::string> storage{"prog", "input.csv", "output.csv"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(FlagParserTest, HelpReturnsFailedPrecondition) {
  FlagParser parser;
  std::vector<std::string> storage{"prog", "--help"};
  auto argv = MakeArgv(storage);
  EXPECT_EQ(parser.Parse(static_cast<int>(argv.size()), argv.data()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FlagParserTest, UsageListsFlagsAndDefaults) {
  int64_t n = 42;
  FlagParser parser;
  parser.AddInt("iterations", &n, "number of SGD steps");
  std::string usage = parser.Usage("prog");
  EXPECT_NE(usage.find("--iterations"), std::string::npos);
  EXPECT_NE(usage.find("42"), std::string::npos);
  EXPECT_NE(usage.find("number of SGD steps"), std::string::npos);
}

TEST(FlagParserTest, BoolRejectsGarbage) {
  bool b = false;
  FlagParser parser;
  parser.AddBool("b", &b, "flag");
  std::vector<std::string> storage{"prog", "--b=maybe"};
  auto argv = MakeArgv(storage);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

}  // namespace
}  // namespace clapf
