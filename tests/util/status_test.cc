#include "clapf/util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace clapf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad lambda");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad lambda");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad lambda");
}

TEST(StatusTest, EachFactoryMapsToItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusCodeTest, ToStringNamesAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

Status FailThrough() {
  CLAPF_RETURN_IF_ERROR(Status::IoError("disk on fire"));
  return Status::OK();
}

Status PassThrough() {
  CLAPF_RETURN_IF_ERROR(Status::OK());
  return Status::InvalidArgument("reached end");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kIoError);
  EXPECT_EQ(PassThrough().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace clapf
