#include "clapf/util/fs.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace clapf {
namespace {

TEST(FsTest, WriteAndReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "fs_roundtrip.txt";
  const std::string data("hello\0world", 11);  // embedded NUL survives
  ASSERT_TRUE(WriteStringToFile(path, data).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, data);
}

TEST(FsTest, ReadMissingFileIsIoError) {
  EXPECT_EQ(ReadFileToString("/no/such/fs_file").status().code(),
            StatusCode::kIoError);
}

TEST(FsTest, AtomicWritePublishesAndCleansTemp) {
  const std::string path = ::testing::TempDir() + "fs_atomic.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "payload").ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "payload");
  EXPECT_FALSE(PathExists(path + ".tmp"));
}

TEST(FsTest, AtomicWriteReplacesExistingFile) {
  const std::string path = ::testing::TempDir() + "fs_replace.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "new");
}

TEST(FsTest, CreateDirsIsIdempotent) {
  const std::string dir = ::testing::TempDir() + "fs_dirs/a/b/c";
  ASSERT_TRUE(CreateDirs(dir).ok());
  ASSERT_TRUE(CreateDirs(dir).ok());
  EXPECT_TRUE(PathExists(dir));
}

TEST(FsTest, RemoveFileIfExistsToleratesMissing) {
  const std::string path = ::testing::TempDir() + "fs_remove.txt";
  ASSERT_TRUE(WriteStringToFile(path, "x").ok());
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_FALSE(PathExists(path));
  EXPECT_TRUE(RemoveFileIfExists(path).ok());  // already gone: still OK
}

TEST(FsTest, ListDirReturnsSortedNames) {
  const std::string dir = ::testing::TempDir() + "fs_list";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(CreateDirs(dir).ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/b.txt", "").ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/a.txt", "").ok());
  auto names = ListDir(dir);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "a.txt");
  EXPECT_EQ((*names)[1], "b.txt");
}

TEST(FsTest, ListMissingDirIsIoError) {
  EXPECT_EQ(ListDir("/no/such/fs_dir").status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace clapf
