#include "clapf/util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace clapf {
namespace {

TEST(Crc32Test, MatchesKnownVectors) {
  // The canonical IEEE 802.3 check value.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, data.data(), 10);
  crc = Crc32Update(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(Crc32Finalize(crc), Crc32(data.data(), data.size()));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, 'a');
  const uint32_t clean = Crc32(data.data(), data.size());
  data[100] ^= 0x01;
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

TEST(Crc32Test, DetectsTruncation) {
  const std::string data(256, 'b');
  EXPECT_NE(Crc32(data.data(), data.size()), Crc32(data.data(), 128));
}

}  // namespace
}  // namespace clapf
