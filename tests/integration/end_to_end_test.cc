#include <gtest/gtest.h>

#include "clapf/clapf.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

// One learnable dataset shared across the pipeline tests (generated once).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig cfg;
    cfg.num_users = 80;
    cfg.num_items = 120;
    cfg.num_interactions = 3600;
    cfg.affinity_sharpness = 8.0;
    cfg.popularity_mix = 0.3;
    cfg.seed = 2024;
    split_ = new TrainTestSplit(
        SplitRandom(*GenerateSynthetic(cfg), 0.5, 2025));
  }
  static void TearDownTestSuite() {
    delete split_;
    split_ = nullptr;
  }

  static TrainTestSplit* split_;
};

TrainTestSplit* EndToEndTest::split_ = nullptr;

TEST_F(EndToEndTest, ClapfBeatsPopularityAndChance) {
  ClapfOptions opts;
  opts.sgd.num_factors = 8;
  opts.sgd.iterations = 40000;
  opts.sgd.learning_rate = 0.05;
  opts.sgd.seed = 1;
  opts.lambda = 0.4;
  ClapfTrainer clapf(opts);
  ASSERT_TRUE(clapf.Train(split_->train).ok());

  PopRankTrainer pop;
  ASSERT_TRUE(pop.Train(split_->train).ok());

  Evaluator eval(&split_->train, &split_->test);
  auto clapf_summary = eval.Evaluate(*clapf.model(), PaperCutoffs());
  auto pop_summary = eval.Evaluate(pop, PaperCutoffs());

  EXPECT_GT(clapf_summary.auc, 0.62);
  EXPECT_GT(clapf_summary.map, pop_summary.map);
  EXPECT_GT(clapf_summary.AtK(5).ndcg, pop_summary.AtK(5).ndcg);
}

TEST_F(EndToEndTest, ValidationSplitDrivesLambdaSelection) {
  // Mimic the paper's protocol: pick λ by NDCG@5 on a held-out validation
  // set, then confirm the chosen λ trains a usable model.
  auto holdout = HoldOutOnePerUser(split_->train, 99);
  Evaluator val_eval(&holdout.train, &holdout.validation);

  double best_lambda = -1.0;
  double best_ndcg = -1.0;
  for (double lambda : {0.0, 0.4, 0.8}) {
    ClapfOptions opts;
    opts.sgd.num_factors = 8;
    opts.sgd.iterations = 15000;
    opts.sgd.seed = 7;
    opts.lambda = lambda;
    ClapfTrainer trainer(opts);
    ASSERT_TRUE(trainer.Train(holdout.train).ok());
    double ndcg = val_eval.Evaluate(*trainer.model(), {5}).AtK(5).ndcg;
    if (ndcg > best_ndcg) {
      best_ndcg = ndcg;
      best_lambda = lambda;
    }
  }
  EXPECT_GE(best_lambda, 0.0);
  EXPECT_GT(best_ndcg, 0.0);
}

TEST_F(EndToEndTest, ModelRoundTripsThroughDiskWithIdenticalMetrics) {
  ClapfOptions opts;
  opts.sgd.num_factors = 8;
  opts.sgd.iterations = 10000;
  opts.sgd.seed = 3;
  ClapfTrainer trainer(opts);
  ASSERT_TRUE(trainer.Train(split_->train).ok());

  std::string path = ::testing::TempDir() + "e2e_model.clpf";
  ASSERT_TRUE(SaveModel(*trainer.model(), path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());

  Evaluator eval(&split_->train, &split_->test);
  auto before = eval.Evaluate(*trainer.model(), {5});
  auto after = eval.Evaluate(*loaded, {5});
  EXPECT_DOUBLE_EQ(before.map, after.map);
  EXPECT_DOUBLE_EQ(before.mrr, after.mrr);
  EXPECT_DOUBLE_EQ(before.AtK(5).ndcg, after.AtK(5).ndcg);
}

TEST_F(EndToEndTest, FactoryMethodsTrainAndEvaluate) {
  // Smoke every factory method end-to-end at tiny budgets.
  MethodConfig config;
  config.sgd.num_factors = 4;
  config.sgd.iterations = 2000;
  config.climf.sgd.num_factors = 4;
  config.climf.epochs = 2;
  config.wmf.num_factors = 4;
  config.wmf.sweeps = 2;
  config.neumf.embedding_dim = 4;
  config.neumf.epochs = 1;
  config.neupr.embedding_dim = 4;
  config.neupr.iterations = 2000;
  config.deepicf.embedding_dim = 4;
  config.deepicf.epochs = 1;
  config.random_walk.walk_length = 5;
  config.random_walk.reachable_threshold = 1;

  Evaluator eval(&split_->train, &split_->test);
  for (MethodKind kind : AllMethods()) {
    auto trainer = MakeTrainer(kind, config);
    ASSERT_TRUE(trainer->Train(split_->train).ok()) << MethodName(kind);
    auto summary = eval.Evaluate(*trainer, {5});
    EXPECT_GT(summary.users_evaluated, 0) << MethodName(kind);
    EXPECT_GE(summary.auc, 0.0) << MethodName(kind);
    EXPECT_LE(summary.auc, 1.0) << MethodName(kind);
  }
}

TEST_F(EndToEndTest, RepeatedProtocolAggregates) {
  std::vector<EvalSummary> runs;
  std::vector<double> times;
  for (uint64_t rep = 0; rep < 3; ++rep) {
    SyntheticConfig cfg;
    cfg.num_users = 40;
    cfg.num_items = 60;
    cfg.num_interactions = 1200;
    cfg.seed = 3000 + rep;
    auto split = SplitRandom(*GenerateSynthetic(cfg), 0.5, 3100 + rep);

    ClapfOptions opts;
    opts.sgd.num_factors = 4;
    opts.sgd.iterations = 8000;
    opts.sgd.seed = rep;
    ClapfTrainer trainer(opts);
    Stopwatch watch;
    ASSERT_TRUE(trainer.Train(split.train).ok());
    times.push_back(watch.ElapsedSeconds());

    Evaluator eval(&split.train, &split.test);
    runs.push_back(eval.Evaluate(*trainer.model(), {5}));
  }
  auto agg = Aggregate(runs, times);
  EXPECT_EQ(agg.num_runs, 3);
  EXPECT_GT(agg.auc.mean, 0.5);
  EXPECT_GE(agg.train_seconds.mean, 0.0);
}

}  // namespace
}  // namespace clapf
