// Cross-module property tests: randomized inputs, invariants that must hold
// regardless of the draw.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "clapf/clapf.h"
#include "clapf/util/csv.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

// --- CSV round trip survives arbitrary printable content. -----------------

class CsvFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CsvFuzzTest, RoundTripsRandomFields) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 5);
  const char alphabet[] = "abc,\"\n\r;| 123";
  std::vector<std::vector<std::string>> rows;
  for (int r = 0; r < 8; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < 4; ++c) {
      std::string field;
      const size_t len = rng.Uniform(10);
      for (size_t i = 0; i < len; ++i) {
        field += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
      }
      row.push_back(field);
    }
    rows.push_back(row);
  }

  std::string path = ::testing::TempDir() + "csv_fuzz_" +
                     std::to_string(GetParam()) + ".csv";
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (const auto& row : rows) ASSERT_TRUE(writer.WriteRow(row).ok());
  ASSERT_TRUE(writer.Close().ok());

  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ((*read)[r], rows[r]) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Range(0, 8));

// --- Dataset builder: CSR reconstruction equals the input pair set. -------

class DatasetBuilderFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetBuilderFuzzTest, CsrMatchesPairSet) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 7);
  const int32_t n = 1 + static_cast<int32_t>(rng.Uniform(20));
  const int32_t m = 1 + static_cast<int32_t>(rng.Uniform(30));
  std::set<std::pair<UserId, ItemId>> truth;
  DatasetBuilder builder(n, m);
  const int draws = static_cast<int>(rng.Uniform(200));
  for (int i = 0; i < draws; ++i) {
    UserId u = static_cast<UserId>(rng.Uniform(static_cast<uint64_t>(n)));
    ItemId item = static_cast<ItemId>(rng.Uniform(static_cast<uint64_t>(m)));
    truth.emplace(u, item);
    ASSERT_TRUE(builder.Add(u, item).ok());
  }
  Dataset ds = builder.Build();

  EXPECT_EQ(ds.num_interactions(), static_cast<int64_t>(truth.size()));
  for (UserId u = 0; u < n; ++u) {
    auto items = ds.ItemsOf(u);
    EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
    for (ItemId i : items) EXPECT_TRUE(truth.count({u, i}));
    for (ItemId i = 0; i < m; ++i) {
      EXPECT_EQ(ds.IsObserved(u, i), truth.count({u, i}) > 0)
          << "u=" << u << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetBuilderFuzzTest,
                         ::testing::Range(0, 10));

// --- Evaluator agrees with a brute-force reference implementation. --------

class EvaluatorCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorCrossCheckTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 41 + 3);
  const int32_t n = 6, m = 15;
  DatasetBuilder train_builder(n, m), test_builder(n, m);
  for (UserId u = 0; u < n; ++u) {
    for (ItemId i = 0; i < m; ++i) {
      double r = rng.NextDouble();
      if (r < 0.2) {
        CLAPF_CHECK_OK(train_builder.Add(u, i));
      } else if (r < 0.4) {
        CLAPF_CHECK_OK(test_builder.Add(u, i));
      }
    }
  }
  Dataset train = train_builder.Build();
  Dataset test = test_builder.Build();

  FactorModel model(n, m, 4);
  model.InitGaussian(rng, 0.7);

  Evaluator evaluator(&train, &test);
  EvalSummary got = evaluator.Evaluate(model, {3});

  // Brute force: per user, sort candidates, recompute Prec@3 and MRR.
  double prec_sum = 0.0, mrr_sum = 0.0;
  int users = 0;
  for (UserId u = 0; u < n; ++u) {
    if (test.NumItemsOf(u) == 0) continue;
    std::vector<std::pair<double, ItemId>> cand;
    for (ItemId i = 0; i < m; ++i) {
      if (!train.IsObserved(u, i)) cand.emplace_back(model.Score(u, i), i);
    }
    std::sort(cand.begin(), cand.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    int hits3 = 0;
    double rr = 0.0;
    for (size_t pos = 0; pos < cand.size(); ++pos) {
      const bool rel = test.IsObserved(u, cand[pos].second);
      if (rel && pos < 3) ++hits3;
      if (rel && rr == 0.0) rr = 1.0 / static_cast<double>(pos + 1);
    }
    prec_sum += hits3 / 3.0;
    mrr_sum += rr;
    ++users;
  }
  ASSERT_GT(users, 0);
  EXPECT_EQ(got.users_evaluated, users);
  EXPECT_NEAR(got.AtK(3).precision, prec_sum / users, 1e-12);
  EXPECT_NEAR(got.mrr, mrr_sum / users, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorCrossCheckTest,
                         ::testing::Range(0, 10));

// --- Model persistence is lossless for random models. ---------------------

class ModelIoFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelIoFuzzTest, RoundTripExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  const int32_t n = 1 + static_cast<int32_t>(rng.Uniform(12));
  const int32_t m = 1 + static_cast<int32_t>(rng.Uniform(12));
  const int32_t d = 1 + static_cast<int32_t>(rng.Uniform(8));
  FactorModel model(n, m, d, rng.Bernoulli(0.5));
  model.InitGaussian(rng, 1.0);
  for (ItemId i = 0; i < m; ++i) model.ItemBias(i) = rng.NextGaussian();

  std::string path = ::testing::TempDir() + "model_fuzz_" +
                     std::to_string(GetParam()) + ".clpf";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  for (UserId u = 0; u < n; ++u) {
    for (ItemId i = 0; i < m; ++i) {
      EXPECT_DOUBLE_EQ(loaded->Score(u, i), model.Score(u, i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelIoFuzzTest, ::testing::Range(0, 8));

// --- Splits: every observed pair lands in exactly one side. ---------------

class SplitFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitFuzzTest, PartitionInvariant) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 11);
  SyntheticConfig cfg;
  cfg.num_users = 10 + static_cast<int32_t>(rng.Uniform(30));
  cfg.num_items = 10 + static_cast<int32_t>(rng.Uniform(50));
  cfg.num_interactions =
      std::min<int64_t>(static_cast<int64_t>(cfg.num_users) * cfg.num_items,
                        100 + static_cast<int64_t>(rng.Uniform(400)));
  cfg.seed = rng.Next();
  Dataset data = *GenerateSynthetic(cfg);
  double fraction = 0.1 + 0.8 * rng.NextDouble();
  auto split = SplitRandom(data, fraction, rng.Next());

  EXPECT_EQ(split.train.num_interactions() + split.test.num_interactions(),
            data.num_interactions());
  for (UserId u = 0; u < data.num_users(); ++u) {
    for (ItemId i : data.ItemsOf(u)) {
      EXPECT_NE(split.train.IsObserved(u, i), split.test.IsObserved(u, i))
          << "pair must be in exactly one side";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitFuzzTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace clapf
