#include "clapf/data/synthetic.h"

#include "clapf/util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace clapf {
namespace {

TEST(SyntheticTest, ProducesRequestedShape) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 80;
  cfg.num_interactions = 1000;
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_users(), 50);
  EXPECT_EQ(ds->num_items(), 80);
  // Budget nudging should land exactly on target (duplicates removed could
  // shave a little, but pairs are distinct by construction).
  EXPECT_EQ(ds->num_interactions(), 1000);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 40;
  cfg.num_interactions = 300;
  cfg.seed = 123;
  auto a = GenerateSynthetic(cfg);
  auto b = GenerateSynthetic(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->flat_items(), b->flat_items());
  EXPECT_EQ(a->offsets(), b->offsets());

  cfg.seed = 124;
  auto c = GenerateSynthetic(cfg);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->flat_items(), c->flat_items());
}

TEST(SyntheticTest, RejectsImpossibleConfigs) {
  SyntheticConfig cfg;
  cfg.num_users = 2;
  cfg.num_items = 2;
  cfg.num_interactions = 10;  // > n*m
  EXPECT_FALSE(GenerateSynthetic(cfg).ok());

  cfg.num_interactions = 2;
  cfg.num_users = 0;
  EXPECT_FALSE(GenerateSynthetic(cfg).ok());

  cfg.num_users = 2;
  cfg.popularity_mix = 1.5;
  EXPECT_FALSE(GenerateSynthetic(cfg).ok());

  cfg.popularity_mix = 0.5;
  cfg.ground_truth_factors = 0;
  EXPECT_FALSE(GenerateSynthetic(cfg).ok());
}

TEST(SyntheticTest, FullDensityIsPossible) {
  SyntheticConfig cfg;
  cfg.num_users = 5;
  cfg.num_items = 6;
  cfg.num_interactions = 30;
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_interactions(), 30);
}

TEST(SyntheticTest, PopularityIsLongTailed) {
  SyntheticConfig cfg;
  cfg.num_users = 300;
  cfg.num_items = 200;
  cfg.num_interactions = 6000;
  cfg.popularity_mix = 0.8;  // emphasize popularity to measure the tail
  cfg.seed = 77;
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  auto pop = ds->ItemPopularity();
  std::sort(pop.begin(), pop.end(), std::greater<>());
  // Top 10% of items should hold a disproportionate share of interactions.
  int64_t total = 0, head = 0;
  for (size_t i = 0; i < pop.size(); ++i) {
    total += pop[i];
    if (i < pop.size() / 10) head += pop[i];
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.25);
}

TEST(SyntheticTest, UserActivityIsSkewed) {
  SyntheticConfig cfg;
  cfg.num_users = 200;
  cfg.num_items = 300;
  cfg.num_interactions = 4000;
  cfg.activity_sigma = 1.0;
  cfg.seed = 99;
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok());
  int32_t max_act = 0;
  for (UserId u = 0; u < ds->num_users(); ++u) {
    max_act = std::max(max_act, ds->NumItemsOf(u));
  }
  const double mean = static_cast<double>(ds->num_interactions()) /
                      static_cast<double>(ds->num_users());
  EXPECT_GT(max_act, 2.0 * mean);  // heavy-tailed activity
}

TEST(SyntheticTest, GroundTruthExportScoresItsOwnData) {
  SyntheticConfig cfg;
  cfg.num_users = 80;
  cfg.num_items = 150;
  cfg.num_interactions = 2400;
  cfg.popularity_mix = 0.2;
  cfg.affinity_sharpness = 3.0;
  cfg.ground_truth_factors = 3;
  cfg.seed = 555;
  SyntheticGroundTruth truth;
  auto data = GenerateSynthetic(cfg, &truth);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(truth.num_factors, 3);
  ASSERT_EQ(truth.user_factors.size(), 80u * 3u);
  ASSERT_EQ(truth.item_factors.size(), 150u * 3u);

  // The oracle (true affinity) must rank a user's observed items above
  // random unobserved ones far more often than chance.
  Rng rng(7);
  int correct = 0, total = 0;
  for (UserId u = 0; u < data->num_users(); ++u) {
    for (ItemId i : data->ItemsOf(u)) {
      ItemId j = static_cast<ItemId>(rng.Uniform(150));
      if (data->IsObserved(u, j)) continue;
      correct += truth.Affinity(u, i) > truth.Affinity(u, j) ? 1 : 0;
      ++total;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(correct) / total, 0.7);
}

TEST(SyntheticTest, GroundTruthIsDeterministic) {
  SyntheticConfig cfg;
  cfg.num_users = 10;
  cfg.num_items = 20;
  cfg.num_interactions = 50;
  cfg.seed = 31;
  SyntheticGroundTruth a, b;
  ASSERT_TRUE(GenerateSynthetic(cfg, &a).ok());
  ASSERT_TRUE(GenerateSynthetic(cfg, &b).ok());
  EXPECT_EQ(a.user_factors, b.user_factors);
  EXPECT_EQ(a.item_factors, b.item_factors);
}

TEST(SyntheticPresetTest, AllPresetsHaveDistinctNames) {
  std::set<std::string> names;
  for (DatasetPreset p : AllDatasetPresets()) names.insert(PresetName(p));
  EXPECT_EQ(names.size(), AllDatasetPresets().size());
}

TEST(SyntheticPresetTest, Ml100kMatchesTable1Shape) {
  SyntheticConfig cfg = PresetConfig(DatasetPreset::kMl100k);
  EXPECT_EQ(cfg.num_users, 943);
  EXPECT_EQ(cfg.num_items, 1682);
  EXPECT_EQ(cfg.num_interactions, 55375);
  // Density 3.49% as in Table 1.
  double density = static_cast<double>(cfg.num_interactions) /
                   (static_cast<double>(cfg.num_users) * cfg.num_items);
  EXPECT_NEAR(density, 0.0349, 0.0002);
}

TEST(SyntheticPresetTest, DensitiesMatchTable1) {
  // Paper Table 1 densities (train+test) per dataset.
  const std::pair<DatasetPreset, double> expected[] = {
      {DatasetPreset::kMl100k, 0.0349}, {DatasetPreset::kMl1m, 0.0241},
      {DatasetPreset::kUserTag, 0.0411}, {DatasetPreset::kMl20m, 0.0011},
      {DatasetPreset::kFlixter, 0.0002}, {DatasetPreset::kNetflix, 0.0023},
  };
  for (const auto& [preset, density] : expected) {
    SyntheticConfig cfg = PresetConfig(preset);
    double actual = static_cast<double>(cfg.num_interactions) /
                    (static_cast<double>(cfg.num_users) * cfg.num_items);
    EXPECT_NEAR(actual, density, density * 0.05) << PresetName(preset);
  }
}

TEST(SyntheticPresetTest, SeedOffsetChangesData) {
  SyntheticConfig a = PresetConfig(DatasetPreset::kMl100k, 0);
  SyntheticConfig b = PresetConfig(DatasetPreset::kMl100k, 1);
  EXPECT_NE(a.seed, b.seed);
}

TEST(SyntheticPresetTest, ParsePresetNameVariants) {
  EXPECT_TRUE(ParsePresetName("ML100K").ok());
  EXPECT_TRUE(ParsePresetName("ml100k-sim").ok());
  EXPECT_TRUE(ParsePresetName("Netflix").ok());
  EXPECT_EQ(*ParsePresetName("flixter"), DatasetPreset::kFlixter);
  EXPECT_FALSE(ParsePresetName("amazon").ok());
}

// Property sweep: every preset generates data of the declared shape (scaled
// presets only, to keep the suite fast).
class PresetGenerationTest : public ::testing::TestWithParam<DatasetPreset> {};

TEST_P(PresetGenerationTest, GeneratesDeclaredShape) {
  SyntheticConfig cfg = PresetConfig(GetParam());
  // Shrink for test speed while keeping proportions.
  cfg.num_interactions = std::min<int64_t>(cfg.num_interactions, 4000);
  auto ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_users(), cfg.num_users);
  EXPECT_EQ(ds->num_items(), cfg.num_items);
  EXPECT_NEAR(static_cast<double>(ds->num_interactions()),
              static_cast<double>(cfg.num_interactions),
              0.01 * static_cast<double>(cfg.num_interactions) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetGenerationTest,
                         ::testing::ValuesIn(AllDatasetPresets()),
                         [](const auto& info) {
                           std::string name = PresetName(info.param);
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out;
                         });

}  // namespace
}  // namespace clapf
