#include "clapf/data/statistics.h"

#include <gtest/gtest.h>

#include "clapf/data/synthetic.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(GiniCoefficientTest, UniformIsZero) {
  EXPECT_NEAR(GiniCoefficient({5.0, 5.0, 5.0, 5.0}), 0.0, 1e-12);
}

TEST(GiniCoefficientTest, SingleHolderApproachesOne) {
  // One holder of all mass among n: G = (n-1)/n.
  EXPECT_NEAR(GiniCoefficient({0.0, 0.0, 0.0, 10.0}), 0.75, 1e-12);
}

TEST(GiniCoefficientTest, KnownHandValue) {
  // {1, 3}: G = (2*(1*1 + 2*3)/(2*4)) - 3/2 = 14/8 - 1.5 = 0.25.
  EXPECT_NEAR(GiniCoefficient({1.0, 3.0}), 0.25, 1e-12);
}

TEST(GiniCoefficientTest, OrderInvariant) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({3.0, 1.0, 7.0}),
                   GiniCoefficient({7.0, 3.0, 1.0}));
}

TEST(GiniCoefficientTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0.0, 0.0}), 0.0);
}

TEST(ComputeStatsTest, CountsAndDensity) {
  Dataset ds = testing::MakeDataset(2, 4, {{0, 0}, {0, 1}, {1, 0}});
  DatasetStats stats = ComputeStats(ds);
  EXPECT_EQ(stats.num_users, 2);
  EXPECT_EQ(stats.num_items, 4);
  EXPECT_EQ(stats.num_interactions, 3);
  EXPECT_DOUBLE_EQ(stats.density, 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(stats.mean_user_activity, 1.5);
  EXPECT_DOUBLE_EQ(stats.max_user_activity, 2.0);
  EXPECT_DOUBLE_EQ(stats.max_item_popularity, 2.0);
}

TEST(ComputeStatsTest, SyntheticPresetIsLongTailed) {
  Dataset ds = *GenerateSynthetic(PresetConfig(DatasetPreset::kMl100k));
  DatasetStats stats = ComputeStats(ds);
  // The generator must reproduce a real catalog's skew: popular head and
  // heterogeneous users.
  EXPECT_GT(stats.item_popularity_gini, 0.3);
  EXPECT_GT(stats.user_activity_gini, 0.2);
  EXPECT_GT(stats.top10pct_item_share, 0.2);
}

TEST(ComputeStatsTest, ToStringMentionsEverything) {
  Dataset ds = testing::MakeDataset(2, 2, {{0, 0}});
  std::string s = ComputeStats(ds).ToString();
  EXPECT_NE(s.find("users: 2"), std::string::npos);
  EXPECT_NE(s.find("gini"), std::string::npos);
  EXPECT_NE(s.find("density"), std::string::npos);
}

}  // namespace
}  // namespace clapf
