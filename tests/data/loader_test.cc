#include "clapf/data/loader.h"

#include <gtest/gtest.h>

#include "clapf/util/fault_injection.h"
#include "testing/fault_schedule.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(LoaderTest, TabSeparatedWithThreshold) {
  // Only ratings > 3 survive binarization.
  std::string path = testing::WriteTempFile(
      "ml100k.data",
      "1\t10\t5\t881250949\n"
      "1\t20\t3\t881250950\n"  // dropped
      "2\t10\t4\t881250951\n"
      "2\t30\t1\t881250952\n");  // dropped
  LoadOptions opts;
  opts.format = FileFormat::kTabSeparated;
  auto ds = LoadInteractions(path, opts);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_users(), 2);
  // Only item 10 survives binarization, so a single dense item id exists.
  EXPECT_EQ(ds->num_items(), 1);
  EXPECT_EQ(ds->num_interactions(), 2);
}

TEST(LoaderTest, DoubleColonFormat) {
  std::string path = testing::WriteTempFile(
      "ml1m.dat",
      "1::1193::5::978300760\n"
      "1::661::3::978302109\n"
      "2::1193::4::978300275\n");
  LoadOptions opts;
  opts.format = FileFormat::kDoubleColon;
  auto ds = LoadInteractions(path, opts);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_interactions(), 2);
  EXPECT_EQ(ds->num_users(), 2);
  EXPECT_EQ(ds->num_items(), 1);  // only item 1193 survives
}

TEST(LoaderTest, CsvWithHeader) {
  std::string path = testing::WriteTempFile(
      "ml20m.csv",
      "userId,movieId,rating,timestamp\n"
      "1,2,3.5,1112486027\n"
      "1,29,5.0,1112484676\n");
  LoadOptions opts;
  opts.format = FileFormat::kCsv;
  opts.has_header = true;
  auto ds = LoadInteractions(path, opts);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_interactions(), 2);  // 3.5 > 3 and 5.0 > 3
}

TEST(LoaderTest, PairsFormatSkipsRatings) {
  std::string path = testing::WriteTempFile("pairs.txt",
                                            "0 5\n"
                                            "1 6\n"
                                            "1 5\n");
  LoadOptions opts;
  opts.format = FileFormat::kPairs;
  auto ds = LoadInteractions(path, opts);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_users(), 2);
  EXPECT_EQ(ds->num_items(), 2);
  EXPECT_EQ(ds->num_interactions(), 3);
}

TEST(LoaderTest, CustomThreshold) {
  std::string path = testing::WriteTempFile("thresh.tsv",
                                            "1\t1\t2\t0\n"
                                            "1\t2\t3\t0\n");
  LoadOptions opts;
  opts.rating_threshold = 1.0;
  auto ds = LoadInteractions(path, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_interactions(), 2);
}

TEST(LoaderTest, MissingFileIsIoError) {
  auto ds = LoadInteractions("/no/such/file.data", LoadOptions{});
  EXPECT_EQ(ds.status().code(), StatusCode::kIoError);
}

TEST(LoaderTest, TruncatedRecordIsCorruption) {
  std::string path = testing::WriteTempFile("bad.tsv", "1\t2\n");
  auto ds = LoadInteractions(path, LoadOptions{});
  EXPECT_EQ(ds.status().code(), StatusCode::kCorruption);
}

TEST(LoaderTest, NonNumericFieldIsError) {
  std::string path = testing::WriteTempFile("nan.tsv", "a\tb\t5\t0\n");
  auto ds = LoadInteractions(path, LoadOptions{});
  EXPECT_EQ(ds.status().code(), StatusCode::kCorruption);
}

TEST(LoaderTest, CorruptionCarriesLineNumber) {
  std::string path = testing::WriteTempFile("lineno.tsv",
                                            "1\t10\t5\t0\n"
                                            "2\t20\t4\t0\n"
                                            "oops\n");
  auto ds = LoadInteractions(path, LoadOptions{});
  ASSERT_EQ(ds.status().code(), StatusCode::kCorruption);
  EXPECT_NE(ds.status().message().find("line 3"), std::string::npos)
      << ds.status().ToString();
}

TEST(LoaderTest, MaxBadLinesToleratesAndSkips) {
  std::string path = testing::WriteTempFile("tolerate.tsv",
                                            "1\t10\t5\t0\n"
                                            "garbage\n"
                                            "2\t20\t4\t0\n"
                                            "3\tnot-an-id\t4\t0\n"
                                            "3\t30\t5\t0\n");
  LoadOptions opts;
  opts.max_bad_lines = 2;
  auto ds = LoadInteractions(path, opts);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_interactions(), 3);
  EXPECT_EQ(ds->num_users(), 3);
}

TEST(LoaderTest, BadLinesBeyondBudgetFailTheLoad) {
  std::string path = testing::WriteTempFile("over_budget.tsv",
                                            "garbage one\n"
                                            "1\t10\t5\t0\n"
                                            "garbage two\n");
  LoadOptions opts;
  opts.max_bad_lines = 1;
  auto ds = LoadInteractions(path, opts);
  ASSERT_EQ(ds.status().code(), StatusCode::kCorruption);
  // The second bad row (line 3) is the one that breaks the budget.
  EXPECT_NE(ds.status().message().find("line 3"), std::string::npos);
}

TEST(LoaderTest, InjectedBadLineIsCaught) {
  std::string path = testing::WriteTempFile("inject.tsv",
                                            "1\t10\t5\t0\n"
                                            "2\t20\t4\t0\n"
                                            "3\t30\t5\t0\n");
  clapf::testing::ScopedFaultSchedule faults(
      {{FaultPoint::kLoaderBadLine, {.trigger_at_hit = 2}}});
  auto ds = LoadInteractions(path, LoadOptions{});
  ASSERT_EQ(ds.status().code(), StatusCode::kCorruption);
  EXPECT_NE(ds.status().message().find("line 2"), std::string::npos);
}

TEST(LoaderTest, InjectedBadLineToleratedByBudget) {
  std::string path = testing::WriteTempFile("inject_ok.tsv",
                                            "1\t10\t5\t0\n"
                                            "2\t20\t4\t0\n"
                                            "3\t30\t5\t0\n");
  clapf::testing::ScopedFaultSchedule faults(
      {{FaultPoint::kLoaderBadLine, {.trigger_at_hit = 2}}});
  LoadOptions opts;
  opts.max_bad_lines = 1;
  auto ds = LoadInteractions(path, opts);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_interactions(), 2);  // the injected-bad row was skipped
}

TEST(LoaderTest, BlankLinesIgnored) {
  std::string path =
      testing::WriteTempFile("blank.tsv", "\n1\t1\t5\t0\n\n2\t1\t4\t0\n\n");
  auto ds = LoadInteractions(path, LoadOptions{});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_interactions(), 2);
}

TEST(SaveAsPairsTest, RoundTripsThroughPairsFormat) {
  Dataset original = testing::MakeDataset(3, 4, {{0, 1}, {1, 2}, {2, 3}});
  std::string path = ::testing::TempDir() + "saved_pairs.txt";
  ASSERT_TRUE(SaveAsPairs(original, path).ok());

  LoadOptions opts;
  opts.format = FileFormat::kPairs;
  auto loaded = LoadInteractions(path, opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_interactions(), original.num_interactions());
}

}  // namespace
}  // namespace clapf
