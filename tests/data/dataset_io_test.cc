#include "clapf/data/dataset_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "clapf/data/synthetic.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(DatasetIoTest, RoundTripSmall) {
  Dataset original = testing::MakeDataset(3, 5, {{0, 1}, {0, 4}, {2, 0}});
  std::string path = ::testing::TempDir() + "ds_roundtrip.clds";
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users(), 3);
  EXPECT_EQ(loaded->num_items(), 5);
  EXPECT_EQ(loaded->flat_items(), original.flat_items());
  EXPECT_EQ(loaded->offsets(), original.offsets());
}

TEST(DatasetIoTest, RoundTripSynthetic) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 90;
  cfg.num_interactions = 1500;
  cfg.seed = 9;
  Dataset original = *GenerateSynthetic(cfg);
  std::string path = ::testing::TempDir() + "ds_roundtrip2.clds";
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_interactions(), original.num_interactions());
  for (UserId u = 0; u < original.num_users(); ++u) {
    auto a = original.ItemsOf(u);
    auto b = loaded->ItemsOf(u);
    ASSERT_EQ(a.size(), b.size()) << "user " << u;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(DatasetIoTest, EmptyDatasetRoundTrips) {
  Dataset original = testing::MakeDataset(4, 4, {});
  std::string path = ::testing::TempDir() + "ds_empty.clds";
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_interactions(), 0);
  EXPECT_EQ(loaded->num_users(), 4);
}

TEST(DatasetIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadDataset("/no/such/data.clds").status().code(),
            StatusCode::kIoError);
}

TEST(DatasetIoTest, BadMagicIsCorruption) {
  std::string path = ::testing::TempDir() + "ds_bad_magic.clds";
  std::ofstream(path) << "NOTADATASET_____________________";
  EXPECT_EQ(LoadDataset(path).status().code(), StatusCode::kCorruption);
}

TEST(DatasetIoTest, TruncationIsCorruption) {
  Dataset original = testing::MakeDataset(5, 5, {{0, 1}, {1, 2}, {4, 4}});
  std::string full = ::testing::TempDir() + "ds_full.clds";
  ASSERT_TRUE(SaveDataset(original, full).ok());
  std::ifstream in(full, std::ios::binary);
  std::vector<char> bytes(30);
  in.read(bytes.data(), 30);
  std::string trunc = ::testing::TempDir() + "ds_trunc.clds";
  std::ofstream out(trunc, std::ios::binary);
  out.write(bytes.data(), in.gcount());
  out.close();
  EXPECT_EQ(LoadDataset(trunc).status().code(), StatusCode::kCorruption);
}

TEST(DatasetIoTest, SaveToBadPathIsIoError) {
  Dataset ds = testing::MakeDataset(1, 1, {});
  EXPECT_EQ(SaveDataset(ds, "/no-dir-xyz/x.clds").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace clapf
