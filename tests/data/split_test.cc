#include "clapf/data/split.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "clapf/data/synthetic.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

std::set<std::pair<UserId, ItemId>> PairsOf(const Dataset& ds) {
  std::set<std::pair<UserId, ItemId>> out;
  for (UserId u = 0; u < ds.num_users(); ++u) {
    for (ItemId i : ds.ItemsOf(u)) out.emplace(u, i);
  }
  return out;
}

Dataset SmallData() {
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 60;
  cfg.num_interactions = 600;
  cfg.seed = 9;
  return *GenerateSynthetic(cfg);
}

TEST(SplitRandomTest, PartitionIsDisjointAndComplete) {
  Dataset data = SmallData();
  auto split = SplitRandom(data, 0.5, 77);
  auto train = PairsOf(split.train);
  auto test = PairsOf(split.test);
  auto all = PairsOf(data);

  EXPECT_EQ(train.size() + test.size(), all.size());
  for (const auto& p : train) {
    EXPECT_TRUE(all.count(p));
    EXPECT_FALSE(test.count(p));
  }
  for (const auto& p : test) EXPECT_TRUE(all.count(p));
}

TEST(SplitRandomTest, PreservesDimensions) {
  Dataset data = SmallData();
  auto split = SplitRandom(data, 0.5, 1);
  EXPECT_EQ(split.train.num_users(), data.num_users());
  EXPECT_EQ(split.train.num_items(), data.num_items());
  EXPECT_EQ(split.test.num_users(), data.num_users());
  EXPECT_EQ(split.test.num_items(), data.num_items());
}

TEST(SplitRandomTest, FractionIsApproximate) {
  Dataset data = SmallData();
  auto split = SplitRandom(data, 0.5, 3);
  double frac = static_cast<double>(split.train.num_interactions()) /
                static_cast<double>(data.num_interactions());
  EXPECT_NEAR(frac, 0.5, 0.08);
}

TEST(SplitRandomTest, DeterministicGivenSeed) {
  Dataset data = SmallData();
  auto a = SplitRandom(data, 0.5, 42);
  auto b = SplitRandom(data, 0.5, 42);
  EXPECT_EQ(PairsOf(a.train), PairsOf(b.train));
  auto c = SplitRandom(data, 0.5, 43);
  EXPECT_NE(PairsOf(a.train), PairsOf(c.train));
}

TEST(SplitRandomTest, ExtremeFractions) {
  Dataset data = SmallData();
  auto all_train = SplitRandom(data, 1.0, 1);
  EXPECT_EQ(all_train.train.num_interactions(), data.num_interactions());
  EXPECT_EQ(all_train.test.num_interactions(), 0);
  auto all_test = SplitRandom(data, 0.0, 1);
  EXPECT_EQ(all_test.train.num_interactions(), 0);
  EXPECT_EQ(all_test.test.num_interactions(), data.num_interactions());
}

TEST(HoldOutOnePerUserTest, OnePairPerEligibleUser) {
  Dataset data = SmallData();
  auto holdout = HoldOutOnePerUser(data, 5);
  for (UserId u = 0; u < data.num_users(); ++u) {
    int32_t orig = data.NumItemsOf(u);
    int32_t val = holdout.validation.NumItemsOf(u);
    int32_t tr = holdout.train.NumItemsOf(u);
    if (orig >= 2) {
      EXPECT_EQ(val, 1) << "user " << u;
      EXPECT_EQ(tr, orig - 1);
    } else {
      EXPECT_EQ(val, 0) << "user " << u;
      EXPECT_EQ(tr, orig);
    }
  }
}

TEST(HoldOutOnePerUserTest, ValidationDisjointFromTrain) {
  Dataset data = SmallData();
  auto holdout = HoldOutOnePerUser(data, 5);
  auto train = PairsOf(holdout.train);
  auto val = PairsOf(holdout.validation);
  for (const auto& p : val) EXPECT_FALSE(train.count(p));
  EXPECT_EQ(train.size() + val.size(), PairsOf(data).size());
}

TEST(HoldOutOnePerUserTest, SingleItemUserKeepsItem) {
  Dataset data = testing::MakeDataset(2, 3, {{0, 1}, {1, 0}, {1, 2}});
  auto holdout = HoldOutOnePerUser(data, 1);
  EXPECT_EQ(holdout.train.NumItemsOf(0), 1);
  EXPECT_EQ(holdout.validation.NumItemsOf(0), 0);
  EXPECT_EQ(holdout.validation.NumItemsOf(1), 1);
}

}  // namespace
}  // namespace clapf
