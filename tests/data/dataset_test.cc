#include "clapf/data/dataset.h"

#include <gtest/gtest.h>

#include "clapf/data/dataset_builder.h"
#include "testing/test_util.h"

namespace clapf {
namespace {

TEST(DatasetBuilderTest, BuildsCsrLayout) {
  Dataset ds = testing::MakeDataset(3, 5, {{0, 1}, {0, 3}, {2, 4}, {2, 0}});
  EXPECT_EQ(ds.num_users(), 3);
  EXPECT_EQ(ds.num_items(), 5);
  EXPECT_EQ(ds.num_interactions(), 4);
  auto u0 = ds.ItemsOf(0);
  ASSERT_EQ(u0.size(), 2u);
  EXPECT_EQ(u0[0], 1);
  EXPECT_EQ(u0[1], 3);
  EXPECT_TRUE(ds.ItemsOf(1).empty());
  auto u2 = ds.ItemsOf(2);
  ASSERT_EQ(u2.size(), 2u);
  EXPECT_EQ(u2[0], 0);  // sorted
  EXPECT_EQ(u2[1], 4);
}

TEST(DatasetBuilderTest, DeduplicatesPairs) {
  Dataset ds = testing::MakeDataset(2, 2, {{0, 1}, {0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(ds.num_interactions(), 2);
  EXPECT_EQ(ds.NumItemsOf(0), 1);
}

TEST(DatasetBuilderTest, RejectsOutOfRange) {
  DatasetBuilder builder(2, 2);
  EXPECT_EQ(builder.Add(2, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(builder.Add(-1, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(builder.Add(0, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(builder.Add(0, -5).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(builder.Add(1, 1).ok());
}

TEST(DatasetBuilderTest, ReusableAfterBuild) {
  DatasetBuilder builder(1, 3);
  ASSERT_TRUE(builder.Add(0, 0).ok());
  Dataset first = builder.Build();
  EXPECT_EQ(first.num_interactions(), 1);
  ASSERT_TRUE(builder.Add(0, 1).ok());
  ASSERT_TRUE(builder.Add(0, 2).ok());
  Dataset second = builder.Build();
  EXPECT_EQ(second.num_interactions(), 2);
  EXPECT_FALSE(second.IsObserved(0, 0));
}

TEST(DatasetTest, IsObserved) {
  Dataset ds = testing::MakeDataset(2, 4, {{0, 0}, {0, 2}, {1, 3}});
  EXPECT_TRUE(ds.IsObserved(0, 0));
  EXPECT_TRUE(ds.IsObserved(0, 2));
  EXPECT_FALSE(ds.IsObserved(0, 1));
  EXPECT_FALSE(ds.IsObserved(0, 3));
  EXPECT_TRUE(ds.IsObserved(1, 3));
  EXPECT_FALSE(ds.IsObserved(1, 0));
}

TEST(DatasetTest, DensityMatchesDefinition) {
  Dataset ds = testing::MakeDataset(2, 5, {{0, 0}, {0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(ds.Density(), 3.0 / 10.0);
}

TEST(DatasetTest, EmptyDatasetDensityZero) {
  Dataset ds;
  EXPECT_DOUBLE_EQ(ds.Density(), 0.0);
  EXPECT_EQ(ds.num_interactions(), 0);
}

TEST(DatasetTest, ItemPopularityCountsUsers) {
  Dataset ds =
      testing::MakeDataset(3, 3, {{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 2}});
  auto pop = ds.ItemPopularity();
  ASSERT_EQ(pop.size(), 3u);
  EXPECT_EQ(pop[0], 3);
  EXPECT_EQ(pop[1], 1);
  EXPECT_EQ(pop[2], 1);
}

TEST(DatasetTest, NumActiveUsers) {
  Dataset ds = testing::MakeDataset(4, 3, {{0, 0}, {2, 1}});
  EXPECT_EQ(ds.NumActiveUsers(), 2);
}

TEST(DatasetTest, SummaryMentionsDimensions) {
  Dataset ds = testing::MakeDataset(2, 3, {{0, 0}});
  std::string s = ds.Summary();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("m=3"), std::string::npos);
  EXPECT_NE(s.find("|P|=1"), std::string::npos);
}

}  // namespace
}  // namespace clapf
