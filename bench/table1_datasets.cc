// Reproduces the paper's Table 1: dataset statistics after the 50/50
// train/test split — n, m, |P|, |P_te|, and density.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace clapf;
  using namespace clapf::bench;

  ExperimentSettings settings;
  if (Status s = ParseExperimentFlags(argc, argv, &settings); !s.ok()) {
    if (s.code() == StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto datasets =
      settings.datasets.empty() ? AllDatasetPresets() : settings.datasets;

  std::printf("=== Table 1: experimental dataset statistics ===\n");
  TablePrinter table;
  table.SetHeader({"Datasets", "n", "m", "P", "P_te", "(P+P_te)/n/m"});
  CsvSink csv(settings.output_csv);

  for (DatasetPreset preset : datasets) {
    Dataset data = MakeScaledDataset(preset, settings.scale, /*rep=*/0);
    TrainTestSplit split = SplitRandom(data, 0.5, /*seed=*/1);
    const double density = data.Density() * 100.0;
    std::vector<std::string> row{
        PresetName(preset),
        std::to_string(data.num_users()),
        std::to_string(data.num_items()),
        std::to_string(split.train.num_interactions()),
        std::to_string(split.test.num_interactions()),
        FormatDouble(density, 2) + "%"};
    table.AddRow(row);
    csv.Write({"dataset", "n", "m", "P", "P_te", "density_pct"},
              {PresetName(preset), std::to_string(data.num_users()),
               std::to_string(data.num_items()),
               std::to_string(split.train.num_interactions()),
               std::to_string(split.test.num_interactions()),
               FormatDouble(density, 4)});
  }
  table.Print(std::cout);
  return 0;
}
