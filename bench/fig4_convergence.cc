// Reproduces the paper's Fig. 4: learning convergence of CLAPF-MAP under the
// four sampling strategies (Uniform, Positive, Negative, DSS), tracked as
// test MAP against training iterations.
//
// Expected shape (paper): DSS converges fastest (especially early), Negative
// Sampling beats Positive Sampling, every adaptive sampler beats Uniform,
// and all curves flatten to a small band late in training.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "clapf/util/logging.h"
#include "clapf/core/clapf_trainer.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace clapf;
  using namespace clapf::bench;

  ExperimentSettings settings;
  settings.repeats = 1;
  if (Status s = ParseExperimentFlags(argc, argv, &settings); !s.ok()) {
    if (s.code() == StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto datasets =
      settings.datasets.empty() ? AllDatasetPresets() : settings.datasets;
  CsvSink csv(settings.output_csv);

  const std::vector<ClapfSamplerKind> samplers = {
      ClapfSamplerKind::kUniform, ClapfSamplerKind::kPositiveOnly,
      ClapfSamplerKind::kNegativeOnly, ClapfSamplerKind::kDss};
  const std::vector<std::string> sampler_names = {
      "Uniform", "PositiveSampling", "NegativeSampling", "DSS"};
  constexpr int kProbes = 10;

  std::printf("=== Fig. 4: CLAPF-MAP convergence by sampler ===\n");

  for (DatasetPreset preset : datasets) {
    std::printf("\n--- %s ---\n", PresetName(preset).c_str());
    Dataset data = MakeScaledDataset(preset, settings.scale, /*rep=*/0);
    TrainTestSplit split = SplitRandom(data, 0.5, 4000);
    Evaluator evaluator(&split.train, &split.test);
    // Short budget: sampler differences live in early convergence.
    const int64_t iterations =
        settings.iterations > 0 ? settings.iterations : 400000;
    const int64_t probe_every = std::max<int64_t>(iterations / kProbes, 1);

    std::vector<std::vector<double>> series(samplers.size());
    for (size_t s = 0; s < samplers.size(); ++s) {
      ClapfOptions options;
      options.variant = ClapfVariant::kMap;
      options.lambda = PaperLambda(preset, MethodKind::kClapfMap);
      options.sampler = samplers[s];
      options.sgd.num_factors = 20;
      options.sgd.learning_rate = 0.05;
      options.sgd.iterations = iterations;
      options.sgd.seed = 1;
      ClapfTrainer trainer(options);
      trainer.SetProbe(probe_every, [&](int64_t iter, const Trainer& t) {
        double map = evaluator.Evaluate(t, {5}).map;
        series[s].push_back(map);
        csv.Write({"dataset", "sampler", "iteration", "map"},
                  {PresetName(preset), sampler_names[s], std::to_string(iter),
                   FormatDouble(map, 4)});
      });
      CLAPF_CHECK_OK(trainer.Train(split.train));
      std::printf("  %-17s final test MAP %.4f\n", sampler_names[s].c_str(),
                  series[s].empty() ? 0.0 : series[s].back());
      std::fflush(stdout);
    }

    TablePrinter table;
    std::vector<std::string> header{"iteration"};
    for (const auto& n : sampler_names) header.push_back(n);
    table.SetHeader(header);
    for (size_t p = 0; p < series[0].size(); ++p) {
      std::vector<std::string> row{std::to_string(
          static_cast<long long>((p + 1) * probe_every))};
      for (const auto& s : series) {
        row.push_back(p < s.size() ? FormatDouble(s[p], 4) : "");
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  return 0;
}
