// Reproduces the paper's Fig. 3: sensitivity of CLAPF-MAP and CLAPF-MRR to
// the tradeoff parameter λ ∈ {0.0, 0.1, ..., 1.0}, reporting Prec@5,
// Recall@5, F1@5, NDCG@5, MAP, and MRR.
//
// Expected shape (paper): λ = 0 reduces both to BPR; intermediate λ beats
// both extremes; CLAPF-MAP responds gently to λ while CLAPF-MRR swings
// harder; λ = 1 (pure listwise) collapses on sparse data.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "clapf/util/logging.h"
#include "clapf/core/clapf_trainer.h"
#include "clapf/util/stopwatch.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace clapf;
  using namespace clapf::bench;

  ExperimentSettings settings;
  settings.repeats = 1;
  if (Status s = ParseExperimentFlags(argc, argv, &settings); !s.ok()) {
    if (s.code() == StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto datasets =
      settings.datasets.empty() ? AllDatasetPresets() : settings.datasets;
  CsvSink csv(settings.output_csv);

  std::printf("=== Fig. 3: CLAPF tradeoff-parameter sweep ===\n");

  for (DatasetPreset preset : datasets) {
    std::printf("\n--- %s ---\n", PresetName(preset).c_str());
    Dataset data = MakeScaledDataset(preset, settings.scale, /*rep=*/0);
    TrainTestSplit split = SplitRandom(data, 0.5, 3000);
    Evaluator evaluator(&split.train, &split.test);
    // Fixed default budget: the sweep compares λ values, not budgets.
    const int64_t iterations =
        settings.iterations > 0 ? settings.iterations : 800000;

    for (ClapfVariant variant : {ClapfVariant::kMap, ClapfVariant::kMrr}) {
      const char* variant_name =
          variant == ClapfVariant::kMap ? "CLAPF-MAP" : "CLAPF-MRR";
      TablePrinter table;
      table.SetHeader({"λ", "Prec@5", "Recall@5", "F1@5", "NDCG@5", "MAP",
                       "MRR"});
      for (int step = 0; step <= 10; ++step) {
        const double lambda = step / 10.0;
        ClapfOptions options;
        options.variant = variant;
        options.lambda = lambda;
        options.sgd.num_factors = 20;
        options.sgd.learning_rate = 0.05;
        options.sgd.iterations = iterations;
        options.sgd.seed = 1;
        ClapfTrainer trainer(options);
        CLAPF_CHECK_OK(trainer.Train(split.train));
        EvalSummary s = evaluator.Evaluate(*trainer.model(), {5});
        table.AddRow({FormatDouble(lambda, 1),
                      FormatDouble(s.AtK(5).precision, 3),
                      FormatDouble(s.AtK(5).recall, 3),
                      FormatDouble(s.AtK(5).f1, 3),
                      FormatDouble(s.AtK(5).ndcg, 3), FormatDouble(s.map, 3),
                      FormatDouble(s.mrr, 3)});
        csv.Write({"dataset", "variant", "lambda", "prec@5", "recall@5",
                   "f1@5", "ndcg@5", "map", "mrr"},
                  {PresetName(preset), variant_name, FormatDouble(lambda, 1),
                   FormatDouble(s.AtK(5).precision, 4),
                   FormatDouble(s.AtK(5).recall, 4),
                   FormatDouble(s.AtK(5).f1, 4),
                   FormatDouble(s.AtK(5).ndcg, 4), FormatDouble(s.map, 4),
                   FormatDouble(s.mrr, 4)});
        std::fflush(stdout);
      }
      std::printf("%s:\n", variant_name);
      table.Print(std::cout);
    }
  }
  return 0;
}
