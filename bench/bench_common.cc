#include "bench_common.h"

#include <algorithm>
#include <cmath>

#include "clapf/util/csv.h"
#include "clapf/util/logging.h"
#include "clapf/util/stopwatch.h"
#include "clapf/util/string_util.h"

namespace clapf {
namespace bench {

Status ParseExperimentFlags(int argc, char** argv,
                            ExperimentSettings* settings) {
  std::string datasets_arg, methods_arg;
  FlagParser parser;
  parser.AddDouble("scale", &settings->scale,
                   "multiplies preset users/interactions (0 < scale <= 4)");
  parser.AddInt("repeats", &settings->repeats,
                "independent experiment copies (paper: 5)");
  parser.AddInt("iterations", &settings->iterations,
                "SGD iterations for MF methods (0 = auto)");
  parser.AddString("datasets", &datasets_arg,
                   "comma-separated dataset presets (empty = all six)");
  parser.AddString("methods", &methods_arg,
                   "comma-separated method names (empty = binary default)");
  parser.AddString("csv", &settings->output_csv,
                   "optional CSV output path for the printed rows");
  parser.AddBool("tune_lambda", &settings->tune_lambda,
                 "tune CLAPF's λ by validation NDCG@5 (paper protocol); "
                 "false = use the paper's reported λ values");
  CLAPF_RETURN_IF_ERROR(parser.Parse(argc, argv));

  if (settings->scale <= 0.0 || settings->scale > 4.0) {
    return Status::InvalidArgument("--scale must be in (0, 4]");
  }
  if (settings->repeats < 1) {
    return Status::InvalidArgument("--repeats must be >= 1");
  }
  if (!datasets_arg.empty()) {
    for (const std::string& name : Split(datasets_arg, ',')) {
      auto preset = ParsePresetName(std::string(Trim(name)));
      if (!preset.ok()) return preset.status();
      settings->datasets.push_back(*preset);
    }
  }
  if (!methods_arg.empty()) {
    for (const std::string& name : Split(methods_arg, ',')) {
      auto method = ParseMethodName(std::string(Trim(name)));
      if (!method.ok()) return method.status();
      settings->methods.push_back(*method);
    }
  }
  return Status::OK();
}

double PaperLambda(DatasetPreset preset, MethodKind method) {
  const bool is_map = method == MethodKind::kClapfMap ||
                      method == MethodKind::kClapfPlusMap;
  const bool is_plus = method == MethodKind::kClapfPlusMap ||
                       method == MethodKind::kClapfPlusMrr;
  switch (preset) {
    case DatasetPreset::kMl100k:
      return is_map ? 0.4 : 0.2;
    case DatasetPreset::kMl1m:
      return is_map ? 0.4 : 0.8;
    case DatasetPreset::kUserTag:
      if (is_map) return 0.3;
      return is_plus ? 0.3 : 0.2;  // CLAPF+(λ=0.3)-MRR in Table 2
    case DatasetPreset::kMl20m:
      return is_map ? 0.3 : 0.9;
    case DatasetPreset::kFlixter:
      return is_map ? 0.3 : 0.2;
    case DatasetPreset::kNetflix:
      return is_map ? 0.3 : 0.2;
  }
  return 0.4;
}

int64_t AutoIterations(const Dataset& train) {
  // ~60 sampled triples per observed pair; the validation-driven tuning in
  // RunOnce picks the final budget from a grid around this scale.
  const int64_t by_size = 60 * train.num_interactions();
  return std::clamp<int64_t>(by_size, 400000, 4800000);
}

MethodConfig MakeMethodConfig(DatasetPreset preset, MethodKind method,
                              const Dataset& train, uint64_t seed,
                              int64_t iterations_override) {
  const int64_t iterations = iterations_override > 0
                                 ? iterations_override
                                 : AutoIterations(train);
  MethodConfig config;
  config.sgd.num_factors = 20;  // paper fixes d = 20
  config.sgd.learning_rate = 0.05;
  config.sgd.final_learning_rate_fraction = 0.05;
  config.sgd.reg_user = config.sgd.reg_item = config.sgd.reg_bias = 0.01;
  config.sgd.iterations = iterations;
  config.sgd.seed = seed;
  config.clapf_lambda = PaperLambda(preset, method);
  config.mpr_rho = 0.5;

  config.climf.sgd = config.sgd;
  config.climf.sgd.learning_rate = 0.05;
  config.climf.epochs = 8;

  config.wmf.num_factors = 20;
  config.wmf.alpha = 10.0;
  config.wmf.reg = 10.0;
  config.wmf.sweeps = 10;
  config.wmf.seed = seed;

  config.random_walk.walk_length = 10;
  config.random_walk.reachable_threshold = 2;

  config.neumf.embedding_dim = 8;
  config.neumf.epochs = 4;
  config.neumf.negatives_per_positive = 4;
  config.neumf.seed = seed;
  config.neupr.embedding_dim = 8;
  config.neupr.iterations = std::min<int64_t>(iterations, 200000);
  config.neupr.learning_rate = 0.001;
  config.neupr.seed = seed;
  config.deepicf.embedding_dim = 8;
  config.deepicf.epochs = 4;
  config.deepicf.seed = seed;
  return config;
}

Dataset MakeScaledDataset(DatasetPreset preset, double scale, uint64_t rep) {
  SyntheticConfig cfg = PresetConfig(preset, rep);
  if (scale != 1.0) {
    cfg.num_users = std::max<int32_t>(
        20, static_cast<int32_t>(std::llround(cfg.num_users * scale)));
    cfg.num_interactions = std::max<int64_t>(
        cfg.num_users,
        static_cast<int64_t>(std::llround(cfg.num_interactions * scale)));
    cfg.num_interactions = std::min<int64_t>(
        cfg.num_interactions,
        static_cast<int64_t>(cfg.num_users) * cfg.num_items);
  }
  auto ds = GenerateSynthetic(cfg);
  CLAPF_CHECK_OK(ds.status());
  return *std::move(ds);
}

bool IsClapfMethod(MethodKind method) {
  return method == MethodKind::kClapfMap || method == MethodKind::kClapfMrr ||
         method == MethodKind::kClapfPlusMap ||
         method == MethodKind::kClapfPlusMrr;
}

namespace {

// True for the MF-SGD methods whose (T, λ) budget is tuned on validation.
bool IsSgdMfMethod(MethodKind method) {
  return method == MethodKind::kBpr || method == MethodKind::kMpr ||
         IsClapfMethod(method);
}

// Validation NDCG@5 of `config` for `method` on the holdout split.
double ValidationNdcg(MethodKind method, const MethodConfig& config,
                      const TrainValidationSplit& holdout,
                      Evaluator& val_eval) {
  std::unique_ptr<Trainer> trainer = MakeTrainer(method, config);
  CLAPF_CHECK_OK(trainer->Train(holdout.train));
  return val_eval.Evaluate(*trainer, {5}).AtK(5).ndcg;
}

}  // namespace

double TuneLambdaOnValidation(MethodKind method, DatasetPreset preset,
                              const Dataset& train, uint64_t seed,
                              int64_t iterations_override) {
  TrainValidationSplit holdout = HoldOutOnePerUser(train, seed ^ 0x7a1u);
  if (holdout.validation.num_interactions() == 0) {
    return PaperLambda(preset, method);
  }
  Evaluator val_eval(&holdout.train, &holdout.validation);
  const int64_t iterations = iterations_override > 0
                                 ? iterations_override
                                 : AutoIterations(holdout.train);
  double best_lambda = 0.0;
  double best_ndcg = -1.0;
  for (double lambda : {0.0, 0.1, 0.2, 0.4, 0.8}) {
    MethodConfig config =
        MakeMethodConfig(preset, method, holdout.train, seed, iterations);
    config.clapf_lambda = lambda;
    const double ndcg = ValidationNdcg(method, config, holdout, val_eval);
    if (ndcg > best_ndcg) {
      best_ndcg = ndcg;
      best_lambda = lambda;
    }
  }
  return best_lambda;
}

RunResult RunOnce(MethodKind method, DatasetPreset preset,
                  const TrainTestSplit& split, const std::vector<int>& cutoffs,
                  uint64_t seed, int64_t iterations_override,
                  bool tune_lambda) {
  MethodConfig config =
      MakeMethodConfig(preset, method, split.train, seed, iterations_override);
  RunResult result;

  // The paper tunes per dataset on a one-pair-per-user validation split
  // (§6.3): the iteration budget T for the SGD methods (their grid is
  // T ∈ {1e3, 1e4, 1e5}), λ for CLAPF, and model knobs for WMF/CLiMF.
  if (IsSgdMfMethod(method) || method == MethodKind::kWmf ||
      method == MethodKind::kClimf) {
    TrainValidationSplit holdout = HoldOutOnePerUser(split.train, seed ^ 0x7a1u);
    if (holdout.validation.num_interactions() > 0) {
      Evaluator val_eval(&holdout.train, &holdout.validation);
      double best_ndcg = -1.0;
      MethodConfig best = config;
      if (IsSgdMfMethod(method)) {
        // Two-stage tuning, mirroring the paper's per-dataset selection at
        // a budget that fits one core: first the method's mixing knob
        // (CLAPF's λ / MPR's ρ) at the middle iteration budget, then the
        // budget T at the winning knob value.
        std::vector<int64_t> t_grid;
        if (iterations_override > 0) {
          t_grid = {iterations_override};
        } else {
          const int64_t pairs = holdout.train.num_interactions();
          auto clamp_t = [](int64_t t) {
            return std::clamp<int64_t>(t, 200000, 2400000);
          };
          t_grid = {clamp_t(16 * pairs), clamp_t(48 * pairs),
                    clamp_t(144 * pairs)};
          t_grid.erase(std::unique(t_grid.begin(), t_grid.end()),
                       t_grid.end());
        }
        std::vector<double> mix_grid{config.clapf_lambda};
        if (IsClapfMethod(method) && tune_lambda) {
          mix_grid = {0.0, 0.1, 0.2, 0.4};
        } else if (method == MethodKind::kMpr) {
          mix_grid = {0.5, 0.8, 1.0};
        } else if (!IsClapfMethod(method)) {
          mix_grid = {0.0};
        }

        auto apply_mix = [&](MethodConfig* candidate, double mix) {
          if (IsClapfMethod(method)) {
            candidate->clapf_lambda = mix;
          } else if (method == MethodKind::kMpr) {
            candidate->mpr_rho = mix;
          }
        };

        // Stage 1: mixing knob at the middle budget.
        const int64_t mid_t = t_grid[t_grid.size() / 2];
        double best_mix = mix_grid.front();
        double best_mix_ndcg = -1.0;
        for (double mix : mix_grid) {
          MethodConfig candidate = config;
          candidate.sgd.iterations = mid_t;
          apply_mix(&candidate, mix);
          const double ndcg =
              ValidationNdcg(method, candidate, holdout, val_eval);
          if (ndcg > best_mix_ndcg) {
            best_mix_ndcg = ndcg;
            best_mix = mix;
          }
        }
        // Stage 2: budget at the winning knob value.
        for (int64_t t : t_grid) {
          MethodConfig candidate = config;
          candidate.sgd.iterations = t;
          apply_mix(&candidate, best_mix);
          const double ndcg =
              t == mid_t ? best_mix_ndcg
                         : ValidationNdcg(method, candidate, holdout,
                                          val_eval);
          if (ndcg > best_ndcg) {
            best_ndcg = ndcg;
            best = candidate;
          }
        }
      } else if (method == MethodKind::kWmf) {
        for (double alpha : {10.0, 40.0}) {
          for (double reg : {1.0, 10.0}) {
            MethodConfig candidate = config;
            candidate.wmf.alpha = alpha;
            candidate.wmf.reg = reg;
            const double ndcg =
                ValidationNdcg(method, candidate, holdout, val_eval);
            if (ndcg > best_ndcg) {
              best_ndcg = ndcg;
              best = candidate;
            }
          }
        }
      } else {  // CLiMF
        for (int32_t epochs : {4, 8, 16}) {
          MethodConfig candidate = config;
          candidate.climf.epochs = epochs;
          const double ndcg =
              ValidationNdcg(method, candidate, holdout, val_eval);
          if (ndcg > best_ndcg) {
            best_ndcg = ndcg;
            best = candidate;
          }
        }
      }
      config = best;
    }
  }
  if (IsClapfMethod(method)) result.lambda = config.clapf_lambda;

  std::unique_ptr<Trainer> trainer = MakeTrainer(method, config);
  Stopwatch watch;
  CLAPF_CHECK_OK(trainer->Train(split.train));
  result.train_seconds = watch.ElapsedSeconds();
  Evaluator evaluator(&split.train, &split.test);
  result.summary = evaluator.Evaluate(*trainer, cutoffs);
  return result;
}

void CsvSink::Write(const std::vector<std::string>& header,
                    const std::vector<std::string>& row) {
  if (path_.empty()) return;
  if (!opened_) {
    CLAPF_CHECK_OK(writer_.Open(path_));
    CLAPF_CHECK_OK(writer_.WriteRow(header));
    opened_ = true;
  }
  CLAPF_CHECK_OK(writer_.WriteRow(row));
}

}  // namespace bench
}  // namespace clapf
