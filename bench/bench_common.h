#ifndef CLAPF_BENCH_BENCH_COMMON_H_
#define CLAPF_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/core/trainer_factory.h"
#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/eval/evaluator.h"
#include "clapf/eval/protocol.h"
#include "clapf/util/csv.h"
#include "clapf/util/flags.h"
#include "clapf/util/status.h"

namespace clapf {
namespace bench {

/// Common knobs for the table/figure reproduction binaries.
struct ExperimentSettings {
  /// Multiplies users and interactions of every preset (0 < scale <= 4).
  double scale = 1.0;
  /// Independent experiment copies (the paper uses 5).
  int64_t repeats = 2;
  /// SGD iterations for MF methods; 0 = auto from the training size.
  int64_t iterations = 0;
  /// Datasets to run; empty = all six presets.
  std::vector<DatasetPreset> datasets;
  /// Methods to run; empty = the binary's default set.
  std::vector<MethodKind> methods;
  /// Optional CSV dump of every row printed.
  std::string output_csv;
  /// Tune CLAPF's λ on a held-out validation split per run (the paper's
  /// §6.3 protocol: best NDCG@5 on validation). When false, the paper's
  /// reported λ values are used directly.
  bool tune_lambda = true;
};

/// Registers --scale/--repeats/--iterations/--datasets/--methods/--csv and
/// parses argv. `datasets`/`methods` take comma-separated names. On --help
/// prints usage and returns FailedPrecondition (caller exits 0).
Status ParseExperimentFlags(int argc, char** argv,
                            ExperimentSettings* settings);

/// The tuned tradeoff λ reported in the paper's Table 2 for each dataset and
/// CLAPF instantiation (the DSS "+" variants occasionally differ).
double PaperLambda(DatasetPreset preset, MethodKind method);

/// Auto iteration budget: ~30 sampled triples per observed training pair,
/// clamped to [60k, 500k] — comparable to the paper's T ∈ {1e3, 1e4, 1e5}.
int64_t AutoIterations(const Dataset& train);

/// Builds the per-method configuration used across all bench binaries:
/// d = 20 factors, γ = 0.05, regularization 0.01, paper-tuned λ, and scaled
/// epoch counts for the epoch-based methods.
MethodConfig MakeMethodConfig(DatasetPreset preset, MethodKind method,
                              const Dataset& train, uint64_t seed,
                              int64_t iterations_override);

/// Generates experiment copy `rep` of `preset` at `scale`.
Dataset MakeScaledDataset(DatasetPreset preset, double scale, uint64_t rep);

/// One trained-and-evaluated run.
struct RunResult {
  EvalSummary summary;
  double train_seconds = 0.0;
  /// λ actually used (tuned or paper value); < 0 for non-CLAPF methods.
  double lambda = -1.0;
};

/// Selects the CLAPF tradeoff λ for `method` by NDCG@5 on a one-pair-per-user
/// validation split of `train` (paper §6.3). λ = 0 (exact BPR) is in the
/// grid, so tuned CLAPF never falls below BPR except by validation noise.
double TuneLambdaOnValidation(MethodKind method, DatasetPreset preset,
                              const Dataset& train, uint64_t seed,
                              int64_t iterations_override);

/// Trains `method` on the split and evaluates at `cutoffs`. When
/// `tune_lambda` is set and the method is a CLAPF variant, λ is first tuned
/// on validation; otherwise the paper's Table 2 value is used.
RunResult RunOnce(MethodKind method, DatasetPreset preset,
                  const TrainTestSplit& split, const std::vector<int>& cutoffs,
                  uint64_t seed, int64_t iterations_override,
                  bool tune_lambda = false);

/// True for the four CLAPF rows of Table 2.
bool IsClapfMethod(MethodKind method);

/// Streams result rows to a CSV file when a path was given; silently inert
/// otherwise. The header is written on the first row.
class CsvSink {
 public:
  explicit CsvSink(const std::string& path) : path_(path) {}

  /// Writes `header` once, then the row.
  void Write(const std::vector<std::string>& header,
             const std::vector<std::string>& row);

 private:
  std::string path_;
  bool opened_ = false;
  CsvWriter writer_;
};

}  // namespace bench
}  // namespace clapf

#endif  // CLAPF_BENCH_BENCH_COMMON_H_
