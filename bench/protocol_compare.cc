// Evaluation-protocol comparison (the paper's §6.3 footnote): the paper
// ranks ALL unobserved items, explicitly rejecting the NCF-style protocol
// that ranks each positive against only 100 sampled negatives. This bench
// quantifies how much the sampled protocol inflates every metric, and shows
// the oracle ceiling of the synthetic substrate for context.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "clapf/eval/oracle.h"
#include "clapf/eval/sampled_evaluator.h"
#include "clapf/util/logging.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace clapf;
  using namespace clapf::bench;

  ExperimentSettings settings;
  if (Status s = ParseExperimentFlags(argc, argv, &settings); !s.ok()) {
    if (s.code() == StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const DatasetPreset preset = settings.datasets.empty()
                                   ? DatasetPreset::kMl100k
                                   : settings.datasets.front();

  SyntheticConfig config = PresetConfig(preset);
  SyntheticGroundTruth truth;
  auto data = GenerateSynthetic(config, &truth);
  CLAPF_CHECK_OK(data.status());
  TrainTestSplit split = SplitRandom(*data, 0.5, 8000);

  std::printf("=== Evaluation protocols on %s ===\n",
              PresetName(preset).c_str());

  // One tuned CLAPF-MAP model, plus the oracle for the ceiling.
  MethodConfig method_config = MakeMethodConfig(
      preset, MethodKind::kClapfMap, split.train, 1, 800000);
  auto trainer = MakeTrainer(MethodKind::kClapfMap, method_config);
  CLAPF_CHECK_OK(trainer->Train(split.train));
  OracleRanker oracle(&truth);

  Evaluator full(&split.train, &split.test);
  SampledEvaluator sampled100(&split.train, &split.test, 100, 9);

  TablePrinter table;
  table.SetHeader({"Ranker / protocol", "HR@5(=Recall@5)", "NDCG@5", "MRR",
                   "AUC"});
  auto add = [&](const char* label, const EvalSummary& s) {
    table.AddRow({label, FormatDouble(s.AtK(5).recall, 3),
                  FormatDouble(s.AtK(5).ndcg, 3), FormatDouble(s.mrr, 3),
                  FormatDouble(s.auc, 3)});
  };
  add("CLAPF-MAP, full ranking (paper)", full.Evaluate(*trainer, {5}));
  add("CLAPF-MAP, 100 sampled negatives (NCF)",
      sampled100.Evaluate(*trainer, {5}));
  add("oracle, full ranking", full.Evaluate(oracle, {5}));
  add("oracle, 100 sampled negatives", sampled100.Evaluate(oracle, {5}));
  table.Print(std::cout);
  std::printf(
      "The protocols are not interchangeable: a top-5 hit against 100\n"
      "sampled negatives is ~16x easier than against the full catalog\n"
      "(chance 5/101 vs 5/%d) — compare the HR@5 column — which is why the\n"
      "paper ranks every unobserved item. The oracle rows bound what any\n"
      "model can reach on this synthetic substrate.\n",
      data->num_items());
  return 0;
}
