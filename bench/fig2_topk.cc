// Reproduces the paper's Fig. 2: top-k recommendation performance — Recall@k
// and NDCG@k at k ∈ {3, 5, 10, 15, 20} for every method on every dataset.
//
// Expected shape (paper): the CLAPF curves sit above every baseline at all
// cutoffs, with the gap widest at small k.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace clapf;
  using namespace clapf::bench;

  ExperimentSettings settings;
  settings.repeats = 1;  // each point already averages hundreds of users
  if (Status s = ParseExperimentFlags(argc, argv, &settings); !s.ok()) {
    if (s.code() == StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto datasets =
      settings.datasets.empty() ? AllDatasetPresets() : settings.datasets;
  auto methods = settings.methods.empty() ? AllMethods() : settings.methods;
  const std::vector<int> ks = PaperCutoffs();
  CsvSink csv(settings.output_csv);

  std::printf("=== Fig. 2: top-k Recall@k and NDCG@k curves ===\n");

  for (DatasetPreset preset : datasets) {
    std::printf("\n--- %s ---\n", PresetName(preset).c_str());
    std::vector<TrainTestSplit> splits;
    for (int64_t rep = 0; rep < settings.repeats; ++rep) {
      Dataset data = MakeScaledDataset(preset, settings.scale,
                                       static_cast<uint64_t>(rep));
      splits.push_back(
          SplitRandom(data, 0.5, 2000 + static_cast<uint64_t>(rep)));
    }

    TablePrinter recall_table, ndcg_table;
    std::vector<std::string> header{"Method"};
    for (int k : ks) header.push_back("@" + std::to_string(k));
    recall_table.SetHeader(header);
    ndcg_table.SetHeader(header);

    for (MethodKind method : methods) {
      std::vector<EvalSummary> runs;
      for (int64_t rep = 0; rep < settings.repeats; ++rep) {
        runs.push_back(RunOnce(method, preset,
                               splits[static_cast<size_t>(rep)], ks,
                               static_cast<uint64_t>(rep) + 1,
                               settings.iterations, settings.tune_lambda)
                           .summary);
      }
      AggregateSummary agg = Aggregate(runs);
      std::vector<std::string> recall_row{MethodName(method)};
      std::vector<std::string> ndcg_row{MethodName(method)};
      for (int k : ks) {
        recall_row.push_back(FormatDouble(agg.AtCut(k).recall.mean, 3));
        ndcg_row.push_back(FormatDouble(agg.AtCut(k).ndcg.mean, 3));
        csv.Write({"dataset", "method", "k", "recall", "ndcg"},
                  {PresetName(preset), MethodName(method), std::to_string(k),
                   FormatDouble(agg.AtCut(k).recall.mean, 4),
                   FormatDouble(agg.AtCut(k).ndcg.mean, 4)});
      }
      recall_table.AddRow(recall_row);
      ndcg_table.AddRow(ndcg_row);
      std::fflush(stdout);
    }
    std::printf("Recall@k:\n");
    recall_table.Print(std::cout);
    std::printf("NDCG@k:\n");
    ndcg_table.Print(std::cout);
  }
  return 0;
}
