// Extension experiments beyond the paper's tables:
//   (a) the extension methods (GBPR, ItemKNN, CLAPF-NDCG) against the core
//       CLAPF/BPR rows on one dataset;
//   (b) paired significance of CLAPF-MAP vs BPR across repeated copies
//       (the mean±std convention of Table 2 made quantitative);
//   (c) an activity-stratified breakdown showing where the ranking methods
//       win (cold / medium / heavy users).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "clapf/baselines/item_knn.h"
#include "clapf/eval/significance.h"
#include "clapf/eval/stratified.h"
#include "clapf/util/logging.h"
#include "clapf/util/stopwatch.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace clapf;
  using namespace clapf::bench;

  ExperimentSettings settings;
  settings.repeats = 3;
  if (Status s = ParseExperimentFlags(argc, argv, &settings); !s.ok()) {
    if (s.code() == StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const DatasetPreset preset = settings.datasets.empty()
                                   ? DatasetPreset::kMl100k
                                   : settings.datasets.front();

  std::printf("=== Extension methods & analyses on %s ===\n",
              PresetName(preset).c_str());

  // (a) Method table including the extensions.
  {
    Dataset data = MakeScaledDataset(preset, settings.scale, 0);
    TrainTestSplit split = SplitRandom(data, 0.5, 7000);
    Evaluator evaluator(&split.train, &split.test);
    TablePrinter table;
    table.SetHeader({"Method", "Prec@5", "NDCG@5", "MAP", "MRR", "AUC",
                     "time"});

    const std::vector<MethodKind> methods = {
        MethodKind::kBpr, MethodKind::kGbpr, MethodKind::kClapfMap,
        MethodKind::kClapfNdcg};
    for (MethodKind method : methods) {
      RunResult result = RunOnce(method, preset, split, {5}, 1,
                                 settings.iterations, settings.tune_lambda);
      const auto& s = result.summary;
      table.AddRow({MethodName(method), FormatDouble(s.AtK(5).precision, 3),
                    FormatDouble(s.AtK(5).ndcg, 3), FormatDouble(s.map, 3),
                    FormatDouble(s.mrr, 3), FormatDouble(s.auc, 3),
                    FormatDuration(result.train_seconds)});
      std::fflush(stdout);
    }
    // ItemKNN is not in the factory's SGD family; run it directly.
    {
      ItemKnnTrainer knn{ItemKnnOptions{}};
      Stopwatch watch;
      CLAPF_CHECK_OK(knn.Train(split.train));
      EvalSummary s = evaluator.Evaluate(knn, {5});
      table.AddRow({knn.name(), FormatDouble(s.AtK(5).precision, 3),
                    FormatDouble(s.AtK(5).ndcg, 3), FormatDouble(s.map, 3),
                    FormatDouble(s.mrr, 3), FormatDouble(s.auc, 3),
                    FormatDuration(watch.ElapsedSeconds())});
    }
    std::printf("\n(a) extension methods:\n");
    table.Print(std::cout);
  }

  // (b) Paired significance: CLAPF-MAP vs BPR over repeated copies.
  {
    std::vector<double> clapf_ndcg, bpr_ndcg, clapf_map, bpr_map;
    for (int64_t rep = 0; rep < settings.repeats; ++rep) {
      Dataset data = MakeScaledDataset(preset, settings.scale,
                                       static_cast<uint64_t>(rep));
      TrainTestSplit split =
          SplitRandom(data, 0.5, 7100 + static_cast<uint64_t>(rep));
      RunResult clapf =
          RunOnce(MethodKind::kClapfMap, preset, split, {5},
                  static_cast<uint64_t>(rep) + 1, settings.iterations,
                  settings.tune_lambda);
      RunResult bpr = RunOnce(MethodKind::kBpr, preset, split, {5},
                              static_cast<uint64_t>(rep) + 1,
                              settings.iterations, settings.tune_lambda);
      clapf_ndcg.push_back(clapf.summary.AtK(5).ndcg);
      bpr_ndcg.push_back(bpr.summary.AtK(5).ndcg);
      clapf_map.push_back(clapf.summary.map);
      bpr_map.push_back(bpr.summary.map);
      std::fflush(stdout);
    }
    auto ndcg_cmp = PairedTTest(clapf_ndcg, bpr_ndcg);
    auto map_cmp = PairedTTest(clapf_map, bpr_map);
    std::printf("\n(b) CLAPF-MAP vs BPR over %lld paired copies:\n",
                static_cast<long long>(settings.repeats));
    if (ndcg_cmp.ok()) {
      std::printf("  NDCG@5: %s\n", ndcg_cmp->ToString().c_str());
    }
    if (map_cmp.ok()) {
      std::printf("  MAP:    %s\n", map_cmp->ToString().c_str());
    }
  }

  // (c) Activity-stratified breakdown for BPR vs CLAPF-MAP vs PopRank.
  {
    Dataset data = MakeScaledDataset(preset, settings.scale, 0);
    TrainTestSplit split = SplitRandom(data, 0.5, 7200);

    MethodConfig config = MakeMethodConfig(preset, MethodKind::kClapfMap,
                                           split.train, 1, 800000);
    auto clapf = MakeTrainer(MethodKind::kClapfMap, config);
    CLAPF_CHECK_OK(clapf->Train(split.train));
    auto bpr = MakeTrainer(MethodKind::kBpr, config);
    CLAPF_CHECK_OK(bpr->Train(split.train));
    auto pop = MakeTrainer(MethodKind::kPopRank, config);
    CLAPF_CHECK_OK(pop->Train(split.train));

    TablePrinter table;
    table.SetHeader({"Users (train activity)", "PopRank NDCG@5",
                     "BPR NDCG@5", "CLAPF-MAP NDCG@5"});
    auto pop_strata =
        EvaluateByActivity(split.train, split.test, *pop, {5}, 3);
    auto bpr_strata =
        EvaluateByActivity(split.train, split.test, *bpr, {5}, 3);
    auto clapf_strata =
        EvaluateByActivity(split.train, split.test, *clapf, {5}, 3);
    for (size_t s = 0; s < pop_strata.size(); ++s) {
      table.AddRow({pop_strata[s].label,
                    FormatDouble(pop_strata[s].summary.AtK(5).ndcg, 3),
                    FormatDouble(bpr_strata[s].summary.AtK(5).ndcg, 3),
                    FormatDouble(clapf_strata[s].summary.AtK(5).ndcg, 3)});
    }
    std::printf("\n(c) NDCG@5 by user-activity stratum:\n");
    table.Print(std::cout);
  }
  return 0;
}
