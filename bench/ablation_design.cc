// Ablation benches for the design choices DESIGN.md calls out:
//   (a) item bias on/off in the predictor f_ui = U_u·V_i (+ b_i),
//   (b) latent dimensionality d (paper fixes d = 20),
//   (c) DSS geometric tail fraction (oversampling aggressiveness),
//   (d) DSS rank-list refresh interval (staleness/cost tradeoff).
// Each ablation trains CLAPF-MAP on one dataset and reports test metrics
// plus training time.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "clapf/util/logging.h"
#include "clapf/core/clapf_trainer.h"
#include "clapf/util/stopwatch.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

namespace {

using namespace clapf;
using namespace clapf::bench;

struct Context {
  TrainTestSplit split;
  int64_t iterations;
};

EvalSummary TrainAndEval(const Context& ctx, const ClapfOptions& options,
                         double* seconds) {
  ClapfTrainer trainer(options);
  Stopwatch watch;
  CLAPF_CHECK_OK(trainer.Train(ctx.split.train));
  *seconds = watch.ElapsedSeconds();
  Evaluator evaluator(&ctx.split.train, &ctx.split.test);
  return evaluator.Evaluate(*trainer.model(), {5});
}

ClapfOptions BaseOptions(const Context& ctx) {
  ClapfOptions options;
  options.variant = ClapfVariant::kMap;
  options.lambda = 0.4;
  options.sgd.num_factors = 20;
  options.sgd.learning_rate = 0.05;
  options.sgd.iterations = ctx.iterations;
  options.sgd.seed = 1;
  return options;
}

void AddRow(TablePrinter& table, const std::string& label,
            const EvalSummary& s, double seconds) {
  table.AddRow({label, FormatDouble(s.AtK(5).precision, 3),
                FormatDouble(s.AtK(5).ndcg, 3), FormatDouble(s.map, 3),
                FormatDouble(s.mrr, 3), FormatDouble(s.auc, 3),
                FormatDuration(seconds)});
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentSettings settings;
  if (Status s = ParseExperimentFlags(argc, argv, &settings); !s.ok()) {
    if (s.code() == StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const DatasetPreset preset =
      settings.datasets.empty() ? DatasetPreset::kMl100k
                                : settings.datasets.front();

  Dataset data = MakeScaledDataset(preset, settings.scale, 0);
  Context ctx{SplitRandom(data, 0.5, 5000), 0};
  ctx.iterations = settings.iterations > 0 ? settings.iterations
                                           : AutoIterations(ctx.split.train);
  std::printf("=== Design ablations on %s (%s) ===\n",
              PresetName(preset).c_str(), data.Summary().c_str());

  const std::vector<std::string> header{"Config", "Prec@5", "NDCG@5",
                                        "MAP",    "MRR",    "AUC", "time"};
  double seconds = 0.0;

  {
    TablePrinter table;
    table.SetHeader(header);
    for (bool bias : {true, false}) {
      ClapfOptions options = BaseOptions(ctx);
      options.sgd.use_item_bias = bias;
      EvalSummary s = TrainAndEval(ctx, options, &seconds);
      AddRow(table, bias ? "item bias ON (paper)" : "item bias OFF", s,
             seconds);
    }
    std::printf("\n(a) item bias in the predictor:\n");
    table.Print(std::cout);
  }

  {
    TablePrinter table;
    table.SetHeader(header);
    for (int32_t d : {5, 10, 20, 40, 80}) {
      ClapfOptions options = BaseOptions(ctx);
      options.sgd.num_factors = d;
      EvalSummary s = TrainAndEval(ctx, options, &seconds);
      AddRow(table, "d = " + std::to_string(d) + (d == 20 ? " (paper)" : ""),
             s, seconds);
    }
    std::printf("\n(b) latent dimensionality:\n");
    table.Print(std::cout);
  }

  {
    TablePrinter table;
    table.SetHeader(header);
    for (double tail : {0.01, 0.05, 0.2, 0.5}) {
      ClapfOptions options = BaseOptions(ctx);
      options.sampler = ClapfSamplerKind::kDss;
      options.dss_tail_fraction = tail;
      EvalSummary s = TrainAndEval(ctx, options, &seconds);
      AddRow(table, "DSS tail fraction " + FormatDouble(tail, 2), s, seconds);
    }
    std::printf("\n(c) DSS oversampling aggressiveness:\n");
    table.Print(std::cout);
  }

  {
    TablePrinter table;
    table.SetHeader(header);
    for (int64_t refresh : {int64_t{500}, int64_t{5000}, int64_t{50000}}) {
      ClapfOptions options = BaseOptions(ctx);
      options.sampler = ClapfSamplerKind::kDss;
      options.dss_refresh_interval = refresh;
      EvalSummary s = TrainAndEval(ctx, options, &seconds);
      AddRow(table,
             "DSS refresh every " + std::to_string(refresh) + " draws", s,
             seconds);
    }
    std::printf("\n(d) DSS rank-list refresh interval:\n");
    table.Print(std::cout);
  }
  return 0;
}
