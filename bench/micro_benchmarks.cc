// Google-benchmark microbenchmarks for the per-operation costs the paper's
// complexity analysis (§4.3) talks about: sampler draws, single SGD steps,
// full-item scoring, and top-k selection.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "clapf/util/logging.h"

#include "clapf/baselines/bpr.h"
#include "clapf/core/clapf_trainer.h"
#include "clapf/core/divergence_guard.h"
#include "clapf/core/smoothing.h"
#include "clapf/data/split.h"
#include "clapf/data/synthetic.h"
#include "clapf/model/factor_model.h"
#include "clapf/model/ivf_index.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/model/score_kernel.h"
#include "clapf/obs/metrics.h"
#include "clapf/obs/trace_span.h"
#include "clapf/online/online_trainer.h"
#include "clapf/online/wal.h"
#include "clapf/recommender.h"
#include "clapf/sampling/dss_sampler.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/serving/model_server.h"
#include "clapf/serving/sharded_server.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/linalg.h"
#include "clapf/util/math.h"
#include "clapf/util/top_k.h"

namespace clapf {
namespace {

Dataset BenchData(int32_t users, int32_t items, int64_t pairs) {
  SyntheticConfig cfg;
  cfg.num_users = users;
  cfg.num_items = items;
  cfg.num_interactions = pairs;
  cfg.seed = 99;
  return *GenerateSynthetic(cfg);
}

void BM_Sigmoid(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = Sigmoid(x) - 0.4);
  }
}
BENCHMARK(BM_Sigmoid);

void BM_LogSigmoid(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = LogSigmoid(x) * 0.01);
  }
}
BENCHMARK(BM_LogSigmoid);

void BM_UniformTripleSample(benchmark::State& state) {
  static Dataset data = BenchData(500, 2000, 25000);
  UniformTripleSampler sampler(&data, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample());
  }
}
BENCHMARK(BM_UniformTripleSample);

void BM_DssTripleSample(benchmark::State& state) {
  static Dataset data = BenchData(500, 2000, 25000);
  static FactorModel model = [] {
    FactorModel m(500, 2000, 20);
    Rng rng(7);
    m.InitGaussian(rng, 0.1);
    return m;
  }();
  DssOptions options;
  DssSampler sampler(&data, &model, options, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample());
  }
}
BENCHMARK(BM_DssTripleSample);

// One CLAPF SGD iteration end-to-end (sample + gradient), the unit of the
// O(T·d) analysis, as a function of latent dimension d.
void BM_ClapfSgdIteration(benchmark::State& state) {
  const int32_t d = static_cast<int32_t>(state.range(0));
  static Dataset data = BenchData(500, 2000, 25000);
  TrainTestSplit split = SplitRandom(data, 0.5, 2);
  ClapfOptions options;
  options.sgd.num_factors = d;
  options.sgd.iterations = 1;  // warm start the model via a 1-step train
  ClapfTrainer trainer(options);
  CLAPF_CHECK_OK(trainer.Train(split.train));

  // Measure steady-state steps by re-training in chunks.
  for (auto _ : state) {
    state.PauseTiming();
    ClapfOptions opts = options;
    opts.sgd.iterations = 1000;
    ClapfTrainer chunk(opts);
    state.ResumeTiming();
    CLAPF_CHECK_OK(chunk.Train(split.train));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ClapfSgdIteration)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

// Divergence-guard overhead on the BPR hot loop: Arg(0) trains with the
// guard off, Arg(1) with kHalt monitoring at the default check interval.
// The acceptance bar is <5% per-iteration overhead between the two.
void BM_BprSgdIterationGuard(benchmark::State& state) {
  const bool guarded = state.range(0) != 0;
  static Dataset data = BenchData(500, 2000, 25000);
  BprOptions options;
  options.sgd.num_factors = 20;
  options.sgd.divergence.policy =
      guarded ? DivergencePolicy::kHalt : DivergencePolicy::kOff;
  for (auto _ : state) {
    state.PauseTiming();
    BprOptions opts = options;
    opts.sgd.iterations = 20000;
    BprTrainer chunk(opts);
    state.ResumeTiming();
    CLAPF_CHECK_OK(chunk.Train(data));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_BprSgdIterationGuard)->Arg(0)->Arg(1);

// Observability overhead on the BPR hot loop: Arg(0) trains with metrics
// off (null registry — the instrumentation branches are present but dead),
// Arg(1) with a live MetricsRegistry receiving update counts, sampled epoch
// loss, and epoch gauges. The acceptance bar is <=2% per-iteration overhead
// between the two rows (recorded in results/BENCH_obs.json).
void BM_BprSgdIterationObs(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  static Dataset data = BenchData(500, 2000, 25000);
  MetricsRegistry registry;
  BprOptions options;
  options.sgd.num_factors = 20;
  options.sgd.metrics = instrumented ? &registry : nullptr;
  for (auto _ : state) {
    state.PauseTiming();
    BprOptions opts = options;
    opts.sgd.iterations = 20000;
    BprTrainer chunk(opts);
    state.ResumeTiming();
    CLAPF_CHECK_OK(chunk.Train(data));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_BprSgdIterationObs)->Arg(0)->Arg(1);

// HogWild scaling of the BPR hot loop: the same 20k-iteration training
// chunk executed by 1/2/4/8 SGD workers. Real time is the comparable axis
// (CPU time sums across workers). On a single-core host the >1-thread rows
// mostly measure barrier overhead; on a multi-core host they are the 3×@8
// speedup trajectory the parallel engine targets.
void BM_BprSgdIterationParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  static Dataset data = BenchData(500, 2000, 25000);
  BprOptions options;
  options.sgd.num_factors = 20;
  options.sgd.num_threads = threads;
  for (auto _ : state) {
    state.PauseTiming();
    BprOptions opts = options;
    opts.sgd.iterations = 20000;
    BprTrainer chunk(opts);
    state.ResumeTiming();
    CLAPF_CHECK_OK(chunk.Train(data));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_BprSgdIterationParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Batched top-k serving over a whole user cohort, sharded across a pool.
// Second arg selects the scoring path: 0 = exact double scan, 1 = packed
// float32 fused kernel (the serving default). The packed/exact gap at equal
// thread count is the end-to-end speedup the packed snapshot buys
// (recorded in results/BENCH_scoring.json; target >=2x).
void BM_RecommendBatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool packed = state.range(1) != 0;
  static Dataset data = BenchData(500, 2000, 25000);
  static FactorModel model = [] {
    FactorModel m(500, 2000, 20);
    Rng rng(11);
    m.InitGaussian(rng, 0.1);
    return m;
  }();
  static Recommender rec = [] {
    Recommender r = *Recommender::Create(model, data);
    CLAPF_CHECK_OK(r.EnablePacked());
    return r;
  }();
  std::vector<UserId> users;
  for (UserId u = 0; u < 500; ++u) users.push_back(u);
  QueryOptions options;
  options.num_threads = threads;
  options.use_packed = packed;
  for (auto _ : state) {
    auto got = rec.RecommendBatch(users, 10, options);
    CLAPF_CHECK_OK(got.status());
    benchmark::DoNotOptimize(got->data());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_RecommendBatch)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->UseRealTime();

// Deadline-machinery overhead on the single-query path: Arg(0) serves with
// no deadline (one unbounded catalog scan), Arg(1) with a generous budget
// that never fires but makes the scorer poll the clock every
// kRankerBlockItems items. The gap between the two rows is the price of
// deadline enforcement — it should be a few percent at most.
void BM_RecommendDeadline(benchmark::State& state) {
  // Arg: 0 = no deadline, 1 = deadline armed, 2 = deadline armed + query
  // telemetry (per-query counter, latency TraceSpan), 3 = deadline armed +
  // packed fused kernel. The 1→2 gap is the observability cost on the
  // serving path; the budget is <=2% (recorded in results/BENCH_obs.json).
  // The 1→3 gap is the packed speedup on the deadline-polled single-query
  // path (recorded in results/BENCH_scoring.json).
  const int mode = static_cast<int>(state.range(0));
  static Dataset data = BenchData(500, 20000, 25000);
  static FactorModel model = [] {
    FactorModel m(500, 20000, 20);
    Rng rng(13);
    m.InitGaussian(rng, 0.1);
    return m;
  }();
  static Recommender rec = *Recommender::Create(model, data);
  static MetricsRegistry obs_registry;
  static Recommender obs_rec = [] {
    Recommender r = *Recommender::Create(model, data);
    r.SetMetrics(&obs_registry);
    return r;
  }();
  static Recommender packed_rec = [] {
    Recommender r = *Recommender::Create(model, data);
    CLAPF_CHECK_OK(r.EnablePacked());
    return r;
  }();
  Recommender& target =
      mode == 3 ? packed_rec : (mode == 2 ? obs_rec : rec);
  QueryOptions options;
  if (mode != 0) options.deadline = std::chrono::seconds(60);
  UserId u = 0;
  for (auto _ : state) {
    auto got = target.Recommend(u, 10, options);
    CLAPF_CHECK_OK(got.status());
    benchmark::DoNotOptimize(got->data());
    u = (u + 1) % 500;
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_RecommendDeadline)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Query latency while a writer hot-swaps models through the full canary
// gate as fast as it can. Measures the RCU read path under publish churn:
// the snapshot copy is a mutex held for nanoseconds, so per-query cost
// should sit on top of BM_RecommendBatch's per-user cost, not spike.
void BM_ModelSwapUnderLoad(benchmark::State& state) {
  static Dataset data = BenchData(500, 2000, 25000);
  ServerOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 1 << 20;  // never shed: this measures latency
  ModelServer server(data, options);
  FactorModel candidate(500, 2000, 20);
  Rng rng(17);
  candidate.InitGaussian(rng, 0.1);
  CLAPF_CHECK_OK(server.PublishModel(candidate));

  std::atomic<bool> stop{false};
  std::thread publisher([&server, &candidate, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      CLAPF_CHECK_OK(server.PublishModel(candidate));
    }
  });
  UserId u = 0;
  for (auto _ : state) {
    auto got = server.Recommend(u, 10);
    CLAPF_CHECK_OK(got.status());
    benchmark::DoNotOptimize(got->data());
    u = (u + 1) % 500;
  }
  stop.store(true);
  publisher.join();
  state.SetItemsProcessed(state.iterations());
  state.counters["publishes"] =
      static_cast<double>(server.stats().publishes);
}
BENCHMARK(BM_ModelSwapUnderLoad)->UseRealTime();

// Scatter-gather query cost as the shard count grows. Arg is the shard
// count (1 = monolithic layout inside the sharded server, scored inline).
// Answers are bit-identical across rows — the drill suite proves it — so
// this row isolates the pure fan-out overhead: per-shard heaps, the
// threshold broadcast, and the latch join against the scatter pool.
void BM_RecommendSharded(benchmark::State& state) {
  static Dataset data = BenchData(500, 2000, 25000);
  ServerOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 1 << 20;
  options.num_shards = static_cast<int32_t>(state.range(0));
  options.scatter_threads = 2;
  ShardedModelServer server(data, options);
  FactorModel candidate(500, 2000, 20);
  Rng rng(17);
  candidate.InitGaussian(rng, 0.1);
  CLAPF_CHECK_OK(server.PublishModel(candidate));
  UserId u = 0;
  for (auto _ : state) {
    auto got = server.RecommendOne(u, 10);
    CLAPF_CHECK_OK(got.status());
    benchmark::DoNotOptimize(got->data());
    u = (u + 1) % 500;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["shards"] =
      static_cast<double>(server.num_shards());
}
BENCHMARK(BM_RecommendSharded)->Arg(1)->Arg(4)->Arg(8);

// Incremental hot reload: the cost of publishing into ONE shard of an
// 8-shard catalog versus regating and repacking all of them. The per-shard
// row slices, gates, and repacks 1/8th of the items, so it should land
// near an 8th of the all-shard row — that gap is what makes targeted
// reloads cheap enough to run under load. Arg: 0 = one shard, 1 = all.
void BM_ShardPublish(benchmark::State& state) {
  static Dataset data = BenchData(500, 2000, 25000);
  ServerOptions options;
  options.num_threads = 2;
  options.num_shards = 8;
  ShardedModelServer server(data, options);
  FactorModel candidate(500, 2000, 20);
  Rng rng(17);
  candidate.InitGaussian(rng, 0.1);
  CLAPF_CHECK_OK(server.PublishModel(candidate));
  const bool all_shards = state.range(0) == 1;
  int32_t shard = 0;
  for (auto _ : state) {
    PublishRequest request(candidate);
    if (!all_shards) {
      request.shard = shard;
      shard = (shard + 1) % server.num_shards();
    }
    CLAPF_CHECK_OK(server.PublishModel(std::move(request)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardPublish)->Arg(0)->Arg(1);

// Cost of one governor control step (read metric deltas + p99 estimate +
// policy decision). This is what the ticker thread pays every interval_us —
// it must be microseconds, i.e. invisible next to a single query. Arg is
// the policy: 0 = performance, 1 = ondemand, 2 = schedutil.
void BM_GovernorTick(benchmark::State& state) {
  static Dataset data = BenchData(500, 2000, 25000);
  ServerOptions options;
  options.num_threads = 2;
  options.governor.policy = static_cast<GovernorPolicy>(state.range(0));
  options.governor.interval_us = 0;  // manual ticks: the benchmark drives
  ModelServer server(data, options);
  FactorModel candidate(500, 2000, 20);
  Rng rng(17);
  candidate.InitGaussian(rng, 0.1);
  CLAPF_CHECK_OK(server.PublishModel(candidate));
  // Seed the latency histogram so the p99 estimate has real buckets to walk.
  for (int i = 0; i < 64; ++i) {
    CLAPF_CHECK_OK(server.Recommend(i % 500, 10).status());
  }
  for (auto _ : state) {
    server.TickGovernor();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GovernorTick)->Arg(0)->Arg(1)->Arg(2);

// The acceptance comparison as a benchmark row: the governor test's overload
// drill, timed. Every admitted query is stalled past its deadline by an
// injected fault (kServeSlowBlock), served static (Arg 0, performance) vs
// adaptive (Arg 1, ondemand with a fast ticker). Throughput is not the
// point — the exported counters are: the adaptive policy clamps the
// admission bound and converts doomed queries into cheap typed sheds, so
// its miss_rate counter must sit below the static row's ~1.0 (recorded in
// results/BENCH_serving.json).
void BM_GovernorOverload(benchmark::State& state) {
  const bool adaptive = state.range(0) == 1;
  static Dataset data = BenchData(500, 2000, 25000);
  ServerOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 64;
  options.governor.policy =
      adaptive ? GovernorPolicy::kOndemand : GovernorPolicy::kPerformance;
  options.governor.interval_us = 500;
  options.governor.bounds.min_queue_depth = 2;
  ModelServer server(data, options);
  FactorModel candidate(500, 2000, 20);
  Rng rng(17);
  candidate.InitGaussian(rng, 0.1);
  CLAPF_CHECK_OK(server.PublishModel(candidate));

  // Every served query blocks 2ms against a 500us budget: a guaranteed
  // miss. The only way to a lower miss rate is shedding at admission. The
  // injector logs one warning per fire — thousands here — so mute it.
  const LogLevel saved_log_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  FaultInjector::Instance().Arm(FaultPoint::kServeSlowBlock,
                                {.trigger_at_hit = 1, .max_fires = -1});
  QueryOptions query;
  query.deadline = std::chrono::microseconds(500);
  std::atomic<bool> stop{false};
  // A background burst keeps the queue deeper than the clamped bound so the
  // governor has pressure to react to while the timed thread measures
  // per-call cost (admitted: ~2ms stall; shed: immediate Unavailable).
  std::vector<std::thread> burst;
  for (int c = 0; c < 4; ++c) {
    burst.emplace_back([&server, &stop, &query, c] {
      UserId u = 100 * (c + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)server.Recommend(u, 10, query);
        u = 100 * (c + 1) + (u + 1) % 100;
      }
    });
  }
  UserId u = 0;
  for (auto _ : state) {
    auto got = server.Recommend(u, 10, query);
    benchmark::DoNotOptimize(got.status());
    u = (u + 1) % 100;
  }
  stop.store(true);
  for (auto& t : burst) t.join();
  FaultInjector::Instance().Reset();
  SetLogLevel(saved_log_level);
  state.SetItemsProcessed(state.iterations());
  const ServingStatsSnapshot stats = server.stats();
  state.counters["miss_rate"] =
      stats.queries > 0 ? static_cast<double>(stats.deadline_exceeded) /
                              static_cast<double>(stats.queries)
                        : 0.0;
  state.counters["shed_rate"] =
      stats.queries > 0 ? static_cast<double>(stats.shed) /
                              static_cast<double>(stats.queries)
                        : 0.0;
  state.counters["governor_adjustments"] =
      static_cast<double>(server.governor().adjustments());
}
BENCHMARK(BM_GovernorOverload)->Arg(0)->Arg(1)->UseRealTime();

void BM_ScoreAllItems(benchmark::State& state) {
  const int32_t m = static_cast<int32_t>(state.range(0));
  FactorModel model(10, m, 20);
  Rng rng(3);
  model.InitGaussian(rng, 0.1);
  std::vector<double> scores;
  for (auto _ : state) {
    model.ScoreAllItems(0, &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ScoreAllItems)->Arg(1000)->Arg(10000)->Arg(50000);

// Full-catalog scoring for one user over 20k items, exact double path, at
// the small and large latent dimensions the packed speedup target is set
// for. Baseline row for the packed kernels below — items/s is the
// comparable axis (recorded in results/BENCH_scoring.json; target: packed
// >= 2x exact at both dims).
void BM_ScoreAllItemsExact(benchmark::State& state) {
  const int32_t d = static_cast<int32_t>(state.range(0));
  FactorModel model(10, 20000, d);
  Rng rng(3);
  model.InitGaussian(rng, 0.1);
  std::vector<double> scores;
  for (auto _ : state) {
    model.ScoreAllItems(0, &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ScoreAllItemsExact)->Arg(16)->Arg(64);

// Same full-catalog scan over the packed float32 snapshot with the kernel
// pinned (portable blocked loop vs the AVX2/FMA specialization), so the two
// rows isolate what auto-vectorization gets for free vs what explicit
// intrinsics add on top.
void PackedScoreAllItems(benchmark::State& state, ScoreKernel kernel) {
  if (!ScoreKernelSupported(kernel)) {
    state.SkipWithError("score kernel unsupported on this CPU");
    return;
  }
  const int32_t d = static_cast<int32_t>(state.range(0));
  FactorModel model(10, 20000, d);
  Rng rng(3);
  model.InitGaussian(rng, 0.1);
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  ForceScoreKernel(kernel);
  std::vector<double> scores(20000);
  for (auto _ : state) {
    snap.ScoreItemRange(0, 0, 20000, &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  ClearScoreKernelOverride();
  state.SetItemsProcessed(state.iterations() * 20000);
}

void BM_ScoreAllItemsPackedPortable(benchmark::State& state) {
  PackedScoreAllItems(state, ScoreKernel::kPortable);
}
BENCHMARK(BM_ScoreAllItemsPackedPortable)->Arg(16)->Arg(64);

void BM_ScoreAllItemsPackedAVX2(benchmark::State& state) {
  PackedScoreAllItems(state, ScoreKernel::kAvx2);
}
BENCHMARK(BM_ScoreAllItemsPackedAVX2)->Arg(16)->Arg(64);

// Fused packed score + top-k over the full catalog: one pass, no
// materialized score vector, threshold early-reject feeding the
// accumulator. Compare against BM_ScoreAllItemsExact + BM_TopKSelection
// (the two-phase exact pipeline it replaces on the serving hot path).
void BM_TopKFused(benchmark::State& state) {
  const int32_t d = static_cast<int32_t>(state.range(0));
  FactorModel model(10, 20000, d);
  Rng rng(3);
  model.InitGaussian(rng, 0.1);
  const PackedSnapshot snap = PackedSnapshot::Build(model);
  for (auto _ : state) {
    TopKAccumulator acc(10);
    ScoreBlocksTopK(snap, 0, 0, 20000, nullptr, &acc);
    auto top = acc.Take();
    benchmark::DoNotOptimize(top.data());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TopKFused)->Arg(16)->Arg(64);

void BM_TopKSelection(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> scores(m);
  for (auto& s : scores) s = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTopK(scores, {}, 20));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m));
}
BENCHMARK(BM_TopKSelection)->Arg(1000)->Arg(10000)->Arg(50000);

// ---- IVF retrieval over a 1M-item catalog -------------------------------
//
// The sub-linear serving claim (DESIGN §3j): IVF probe selection + exact
// fused re-rank of the shortlisted cluster blocks vs the fused full scan it
// replaces, with measured recall@10 reported next to every speedup so the
// two numbers can never be quoted apart. The catalog is clustered — items
// bundle around ~sqrt(n) directional centers, the regime real catalogs live
// in and the one the recall contract is stated on.

constexpr int32_t kAnnCatalogItems = 1000000;
constexpr int32_t kAnnUsers = 64;
constexpr int32_t kAnnFactors = 16;
constexpr int32_t kAnnClusters = 1024;
// Directional bundles in the catalog: far fewer than clusters (a bundle
// spans ~4 clusters), the way genres/categories relate to a fine coarse
// quantizer on a real catalog.
constexpr int32_t kAnnCenters = 256;

FactorModel ClusteredCatalog(int32_t num_users, int32_t num_items,
                             int32_t num_factors, int32_t num_centers,
                             uint64_t seed) {
  FactorModel model(num_users, num_items, num_factors);
  Rng rng(seed);
  std::vector<double> centers(static_cast<size_t>(num_centers) *
                              static_cast<size_t>(num_factors));
  for (double& c : centers) c = rng.NextGaussian() * 0.5;
  for (UserId u = 0; u < num_users; ++u) {
    auto uf = model.UserFactors(u);
    for (int32_t f = 0; f < num_factors; ++f) {
      uf[static_cast<size_t>(f)] = rng.NextGaussian() * 0.5;
    }
  }
  for (ItemId i = 0; i < num_items; ++i) {
    const double* center =
        centers.data() +
        static_cast<size_t>(i % num_centers) * static_cast<size_t>(num_factors);
    auto vf = model.ItemFactors(i);
    for (int32_t f = 0; f < num_factors; ++f) {
      vf[static_cast<size_t>(f)] =
          center[static_cast<size_t>(f)] + rng.NextGaussian() * 0.05;
    }
    model.ItemBias(i) = rng.NextGaussian() * 0.05;
  }
  return model;
}

struct AnnCorpus {
  FactorModel model;
  PackedSnapshot snap;
  IvfIndex ivf;
};

// Built once and shared by every ANN row (the 1M-item build is the
// expensive part; the queries being measured are microseconds).
const AnnCorpus& Ann1M() {
  static const AnnCorpus* corpus = [] {
    IvfOptions opt;
    opt.num_clusters = kAnnClusters;
    opt.default_nprobe = 16;
    // Codes ride along in the shared corpus so the pq rows below reuse the
    // one expensive 1M build; the plain ANN rows never touch them.
    opt.pq = true;
    FactorModel model = ClusteredCatalog(kAnnUsers, kAnnCatalogItems,
                                         kAnnFactors, kAnnCenters, 42);
    PackedSnapshot snap = PackedSnapshot::Build(model);
    IvfIndex ivf = IvfIndex::Build(model, opt);
    return new AnnCorpus{std::move(model), std::move(snap), std::move(ivf)};
  }();
  return *corpus;
}

// Arg = build_threads: the k-means assignment sweep, the cluster-ordered
// repack, and the code-book encode all fan out across the pool, and the
// index is bit-identical at any thread count (the determinism the pq codec
// tests pin down).
void BM_IvfBuild(benchmark::State& state) {
  const AnnCorpus& c = Ann1M();
  IvfOptions opt = c.ivf.options();
  opt.build_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    IvfIndex idx = IvfIndex::Build(c.model, opt);
    benchmark::DoNotOptimize(idx.num_clusters());
  }
  state.SetItemsProcessed(state.iterations() * kAnnCatalogItems);
}
BENCHMARK(BM_IvfBuild)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The baseline the ≥10× target is stated against: the fused exact top-10
// scan of all 1M packed items.
void BM_RecommendFullScan1M(benchmark::State& state) {
  const AnnCorpus& c = Ann1M();
  UserId u = 0;
  for (auto _ : state) {
    TopKAccumulator acc(10);
    ScoreBlocksTopK(c.snap, u, 0, kAnnCatalogItems, nullptr, &acc);
    auto top = acc.Take();
    benchmark::DoNotOptimize(top.data());
    u = static_cast<UserId>((u + 1) % kAnnUsers);
  }
  state.SetItemsProcessed(state.iterations() * kAnnCatalogItems);
}
BENCHMARK(BM_RecommendFullScan1M)->Unit(benchmark::kMillisecond);

// IVF probe selection + exact fused re-rank at nprobe ∈ {1, 4, 16} of 1024
// clusters. `recall_at_10` is measured against the exact scan for the same
// users the timing loop visits; `shortlist_items` is the mean number of
// candidates actually re-ranked per query.
void BM_RecommendAnn(benchmark::State& state) {
  const AnnCorpus& c = Ann1M();
  const int32_t nprobe = static_cast<int32_t>(state.range(0));
  std::vector<IvfProbeRange> probes;

  double recall_sum = 0.0;
  size_t shortlist_sum = 0;
  for (UserId u = 0; u < kAnnUsers; ++u) {
    TopKAccumulator exact(10);
    ScoreBlocksTopK(c.snap, u, 0, kAnnCatalogItems, nullptr, &exact);
    const auto want = exact.Take();
    c.ivf.SelectProbes(u, nprobe, 10, &probes, nullptr);
    shortlist_sum += IvfIndex::CoveredItems(probes);
    TopKAccumulator acc(10);
    for (const IvfProbeRange& range : probes) {
      ScoreBlocksTopKMapped(c.ivf.packed(), u, range.begin, range.end,
                            c.ivf.local_to_global_data(), nullptr, &acc);
    }
    const auto got = acc.Take();
    size_t hits = 0;
    for (const ScoredItem& w : want) {
      for (const ScoredItem& g : got) {
        if (g.item == w.item) {
          ++hits;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(hits) /
                  static_cast<double>(want.size());
  }
  state.counters["recall_at_10"] =
      recall_sum / static_cast<double>(kAnnUsers);
  state.counters["shortlist_items"] = static_cast<double>(
      shortlist_sum / static_cast<size_t>(kAnnUsers));

  UserId u = 0;
  for (auto _ : state) {
    c.ivf.SelectProbes(u, nprobe, 10, &probes, nullptr);
    TopKAccumulator acc(10);
    for (const IvfProbeRange& range : probes) {
      ScoreBlocksTopKMapped(c.ivf.packed(), u, range.begin, range.end,
                            c.ivf.local_to_global_data(), nullptr, &acc);
    }
    auto top = acc.Take();
    benchmark::DoNotOptimize(top.data());
    u = static_cast<UserId>((u + 1) % kAnnUsers);
  }
}
BENCHMARK(BM_RecommendAnn)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// The quantized first pass over the same probe ranges: int8 scan keeps the
// top `rerank_budget` (the publish default, 256) and only the blocks holding
// survivors reach the exact fused re-rank. `recall_at_10` is the COMPOSED
// path measured against the exact full scan — the number the publish gate
// holds at ≥0.95 — so the speedup over BM_RecommendAnn at the same nprobe
// can never be quoted without the recall it costs. `rerank_survivors` is the
// mean number of candidates the exact stage actually re-scores.
void BM_RecommendAnnPq(benchmark::State& state) {
  const AnnCorpus& c = Ann1M();
  const int32_t nprobe = static_cast<int32_t>(state.range(0));
  const size_t budget =
      static_cast<size_t>(c.ivf.default_rerank_budget());
  std::vector<IvfProbeRange> probes;
  std::vector<IvfProbeRange> rerank;

  double recall_sum = 0.0;
  size_t shortlist_sum = 0;
  int64_t survivor_sum = 0;
  for (UserId u = 0; u < kAnnUsers; ++u) {
    TopKAccumulator exact(10);
    ScoreBlocksTopK(c.snap, u, 0, kAnnCatalogItems, nullptr, &exact);
    const auto want = exact.Take();
    c.ivf.SelectProbes(u, nprobe, 10, &probes, nullptr);
    shortlist_sum += IvfIndex::CoveredItems(probes);
    int64_t survivors = 0;
    if (!c.ivf.QuantizedShortlist(u, probes, budget, nullptr, std::nullopt,
                                  &rerank, &survivors)
             .ok()) {
      state.SkipWithError("quantized shortlist failed");
      return;
    }
    survivor_sum += survivors;
    TopKAccumulator acc(10);
    for (const IvfProbeRange& range : rerank) {
      ScoreBlocksTopKMapped(c.ivf.packed(), u, range.begin, range.end,
                            c.ivf.local_to_global_data(), nullptr, &acc);
    }
    const auto got = acc.Take();
    size_t hits = 0;
    for (const ScoredItem& w : want) {
      for (const ScoredItem& g : got) {
        if (g.item == w.item) {
          ++hits;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(hits) /
                  static_cast<double>(want.size());
  }
  state.counters["recall_at_10"] =
      recall_sum / static_cast<double>(kAnnUsers);
  state.counters["shortlist_items"] = static_cast<double>(
      shortlist_sum / static_cast<size_t>(kAnnUsers));
  state.counters["rerank_survivors"] = static_cast<double>(
      survivor_sum / static_cast<int64_t>(kAnnUsers));

  UserId u = 0;
  for (auto _ : state) {
    c.ivf.SelectProbes(u, nprobe, 10, &probes, nullptr);
    int64_t survivors = 0;
    if (!c.ivf.QuantizedShortlist(u, probes, budget, nullptr, std::nullopt,
                                  &rerank, &survivors)
             .ok()) {
      state.SkipWithError("quantized shortlist failed");
      return;
    }
    TopKAccumulator acc(10);
    // Prefetch a few sparse survivor blocks ahead, like serving does.
    for (size_t ri = 0; ri < rerank.size(); ++ri) {
      if (ri + 3 < rerank.size()) c.ivf.PrefetchRange(rerank[ri + 3]);
      const IvfProbeRange& range = rerank[ri];
      ScoreBlocksTopKMapped(c.ivf.packed(), u, range.begin, range.end,
                            c.ivf.local_to_global_data(), nullptr, &acc);
    }
    auto top = acc.Take();
    benchmark::DoNotOptimize(top.data());
    u = static_cast<UserId>((u + 1) % kAnnUsers);
  }
}
BENCHMARK(BM_RecommendAnnPq)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_CholeskySolve(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<double> base(static_cast<size_t>(d) * d);
  for (auto& x : base) x = rng.NextGaussian();
  std::vector<double> a(static_cast<size_t>(d) * d);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        double s = i == j ? static_cast<double>(d) : 0.0;
        for (int k = 0; k < d; ++k) {
          s += base[static_cast<size_t>(k) * d + i] *
               base[static_cast<size_t>(k) * d + j];
        }
        a[static_cast<size_t>(i) * d + j] = s;
      }
    }
    std::vector<double> b(static_cast<size_t>(d), 1.0);
    state.ResumeTiming();
    CLAPF_CHECK_OK(CholeskySolveInPlace(a, b, d));
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(10)->Arg(20)->Arg(40);

// Raw cost of one sharded counter increment — the observability primitive
// every hot-path tally compiles down to.
void BM_MetricsCounterInc(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("bench.ops_total");
  for (auto _ : state) {
    c->Inc();
  }
  benchmark::DoNotOptimize(c->Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterInc);

// Raw cost of one histogram recording: bucket walk + sharded count + CAS add
// of the sum.
void BM_MetricsHistogramRecord(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("bench.latency_us", LatencyBucketsUs());
  double v = 1.0;
  for (auto _ : state) {
    h->Record(v);
    v = v < 4.0e6 ? v * 1.7 : 1.0;  // sweep the buckets
  }
  benchmark::DoNotOptimize(h->Snapshot().count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramRecord);

// Full TraceSpan lifecycle: stopwatch construction + clock read + histogram
// record at destruction. This is the per-query serving cost of latency
// tracing.
void BM_TraceSpanRoundTrip(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("bench.span_us", LatencyBucketsUs());
  for (auto _ : state) {
    TraceSpan span(h);
    benchmark::DoNotOptimize(&span);
  }
  benchmark::DoNotOptimize(h->Snapshot().count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanRoundTrip);

void BM_SmoothedApPerUser(benchmark::State& state) {
  static Dataset data = BenchData(100, 500, 5000);
  static FactorModel model = [] {
    FactorModel m(100, 500, 20);
    Rng rng(9);
    m.InitGaussian(rng, 0.1);
    return m;
  }();
  UserId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SmoothedAveragePrecision(model, data, u));
    u = (u + 1) % 100;
  }
}
BENCHMARK(BM_SmoothedApPerUser);

// --- Online lifecycle -------------------------------------------------------
// The ingest hot path: one CRC-framed WAL append, per fsync policy. Arg(0)
// never fsyncs (pure frame cost), Arg(1) fsyncs every append (the durable
// default — dominated by the disk), Arg(64) batches durability.
void BM_WalAppend(benchmark::State& state) {
  const std::string dir =
      "/tmp/clapf-bench-wal-append-" + std::to_string(state.range(0));
  std::filesystem::remove_all(dir);
  WalOptions options;
  options.dir = dir;
  options.fsync_every = state.range(0);
  auto wal = InteractionWal::Open(options);
  CLAPF_CHECK_OK(wal.status());
  int64_t p = 0;
  for (auto _ : state) {
    CLAPF_CHECK_OK((*wal)->Append(
        WalRecord{static_cast<UserId>(p % 100),
                  static_cast<ItemId>(p % 500)}));
    ++p;
  }
  state.SetItemsProcessed(state.iterations());
  (*wal).reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->Arg(64);

// Crash-recovery replay throughput over a multi-segment log: the startup
// cost of re-ingesting a day's records (CRC re-verified frame by frame).
void BM_WalReplay(benchmark::State& state) {
  const std::string dir = "/tmp/clapf-bench-wal-replay";
  std::filesystem::remove_all(dir);
  WalOptions options;
  options.dir = dir;
  options.fsync_every = 0;
  options.segment_bytes = 64 << 10;
  auto wal = InteractionWal::Open(options);
  CLAPF_CHECK_OK(wal.status());
  const int64_t records = state.range(0);
  for (int64_t p = 0; p < records; ++p) {
    CLAPF_CHECK_OK((*wal)->Append(
        WalRecord{static_cast<UserId>(p % 100),
                  static_cast<ItemId>(p % 500)}));
  }
  for (auto _ : state) {
    int64_t sum = 0;
    auto stats = (*wal)->Replay(0, [&](int64_t, const WalRecord& r) {
      sum += r.user + r.item;
    });
    CLAPF_CHECK_OK(stats.status());
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * records);
  (*wal).reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalReplay)->Arg(1000)->Arg(10000)->Arg(100000);

// One guarded online training increment (tail + reservoir mix) — the cost a
// deployment cycle pays before its canary-gated publish.
void BM_OnlineTrainIncrement(benchmark::State& state) {
  static Dataset bootstrap = BenchData(100, 500, 5000);
  OnlineTrainerOptions options;
  options.sgd.num_factors = 16;
  options.sgd.divergence.policy = DivergencePolicy::kHalt;
  options.reservoir_capacity = state.range(0);
  OnlineTrainer trainer(bootstrap, options);
  int64_t p = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 64; ++i, ++p) {
      trainer.Ingest(static_cast<UserId>(p % 100),
                     static_cast<ItemId>(p % 500));
    }
    state.ResumeTiming();
    CLAPF_CHECK_OK(trainer.TrainIncrement(seed++));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_OnlineTrainIncrement)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace clapf

BENCHMARK_MAIN();
