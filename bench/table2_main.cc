// Reproduces the paper's Table 2: Prec@5, Recall@5, F1@5, 1-call@5, NDCG@5,
// MAP, MRR, and training time for every method on every dataset, averaged
// over repeated experiment copies (mean±std).
//
// Expected shape (paper): CLAPF(+)-MAP/-MRR lead every ranking metric;
// CLAPF-MAP wins MAP, CLAPF-MRR wins MRR; CLiMF trails the pairwise methods
// and is far slower; CLAPF's time is comparable to BPR's.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "clapf/util/string_util.h"
#include "clapf/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace clapf;
  using namespace clapf::bench;

  ExperimentSettings settings;
  if (Status s = ParseExperimentFlags(argc, argv, &settings); !s.ok()) {
    if (s.code() == StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto datasets =
      settings.datasets.empty() ? AllDatasetPresets() : settings.datasets;
  auto methods = settings.methods.empty() ? AllMethods() : settings.methods;
  CsvSink csv(settings.output_csv);
  const std::vector<std::string> csv_header{
      "dataset", "method",  "prec@5", "recall@5", "f1@5",
      "1call@5", "ndcg@5",  "map",    "mrr",      "auc",
      "time_s",  "repeats"};

  std::printf(
      "=== Table 2: method comparison (mean±std over %lld copies) ===\n",
      static_cast<long long>(settings.repeats));

  for (DatasetPreset preset : datasets) {
    std::printf("\n--- %s ---\n", PresetName(preset).c_str());
    TablePrinter table;
    table.SetHeader({"Method", "Prec@5", "Recall@5", "F1@5", "1-call@5",
                     "NDCG@5", "MAP", "MRR", "AUC", "time"});

    // Generate the repeated copies once per dataset and share them across
    // methods so comparisons are paired.
    std::vector<TrainTestSplit> splits;
    for (int64_t rep = 0; rep < settings.repeats; ++rep) {
      Dataset data = MakeScaledDataset(preset, settings.scale,
                                       static_cast<uint64_t>(rep));
      splits.push_back(
          SplitRandom(data, 0.5, 1000 + static_cast<uint64_t>(rep)));
    }

    for (MethodKind method : methods) {
      std::vector<EvalSummary> runs;
      std::vector<double> times;
      double lambda_sum = 0.0;
      for (int64_t rep = 0; rep < settings.repeats; ++rep) {
        RunResult result =
            RunOnce(method, preset, splits[static_cast<size_t>(rep)], {5},
                    static_cast<uint64_t>(rep) + 1, settings.iterations,
                    settings.tune_lambda);
        runs.push_back(result.summary);
        times.push_back(result.train_seconds);
        lambda_sum += result.lambda;
      }
      AggregateSummary agg = Aggregate(runs, times);
      const auto& at5 = agg.AtCut(5);
      std::string label = MethodName(method);
      if (IsClapfMethod(method)) {
        label += " (λ̄=" +
                 FormatDouble(lambda_sum /
                                  static_cast<double>(settings.repeats),
                              2) +
                 ")";
      }
      table.AddRow({label, at5.precision.ToString(), at5.recall.ToString(),
                    at5.f1.ToString(), at5.one_call.ToString(),
                    at5.ndcg.ToString(), agg.map.ToString(),
                    agg.mrr.ToString(), agg.auc.ToString(),
                    FormatDuration(agg.train_seconds.mean)});
      csv.Write(csv_header,
                {PresetName(preset), MethodName(method),
                 FormatDouble(at5.precision.mean, 4),
                 FormatDouble(at5.recall.mean, 4),
                 FormatDouble(at5.f1.mean, 4),
                 FormatDouble(at5.one_call.mean, 4),
                 FormatDouble(at5.ndcg.mean, 4), FormatDouble(agg.map.mean, 4),
                 FormatDouble(agg.mrr.mean, 4), FormatDouble(agg.auc.mean, 4),
                 FormatDouble(agg.train_seconds.mean, 2),
                 std::to_string(settings.repeats)});
      std::fflush(stdout);
    }
    table.Print(std::cout);
  }
  return 0;
}
