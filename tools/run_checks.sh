#!/usr/bin/env bash
# Full verification ladder for the repo, from cheapest to most expensive:
#
#   1. default preset  — build everything, run the whole ctest suite
#   2. sanitize preset — ASan+UBSan on the fault-injection + serving drills
#   3. tsan preset     — ThreadSanitizer on the parallel + serving drills
#
# Usage:
#   tools/run_checks.sh            # the full ladder
#   tools/run_checks.sh default    # just one rung
#   tools/run_checks.sh sanitize
#   tools/run_checks.sh tsan
#
# Exits non-zero on the first failing rung. Each rung configures its own
# build directory (build/, build-sanitize/, build-tsan/) via CMake presets,
# so rungs never contaminate each other.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

run_default() {
  echo "=== [1/3] default preset: full build + full test suite ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${JOBS}"
  ctest --preset default
}

run_sanitize() {
  echo "=== [2/3] sanitize preset: ASan+UBSan fault-injection + serving ==="
  cmake --preset sanitize >/dev/null
  cmake --build --preset sanitize -j "${JOBS}"
  ctest --preset sanitize-faultinjection
  ctest --preset sanitize-serving
}

run_tsan() {
  echo "=== [3/3] tsan preset: ThreadSanitizer parallel + serving ==="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "${JOBS}"
  ctest --preset tsan-parallel
  ctest --preset tsan-serving
}

case "${STAGE}" in
  default)  run_default ;;
  sanitize) run_sanitize ;;
  tsan)     run_tsan ;;
  all)      run_default; run_sanitize; run_tsan ;;
  *)
    echo "unknown stage '${STAGE}' (want default|sanitize|tsan|all)" >&2
    exit 2
    ;;
esac

echo "=== all requested checks passed ==="
