#!/usr/bin/env bash
# Full verification ladder for the repo, from cheapest to most expensive:
#
#   1. default preset  — build everything, run the whole ctest suite
#   2. sanitize preset — ASan+UBSan on the fault-injection + serving + obs
#                        drills
#   3. tsan preset     — ThreadSanitizer on the parallel + serving + obs
#                        drills
#
# Usage:
#   tools/run_checks.sh            # the full ladder
#   tools/run_checks.sh default    # just one rung
#   tools/run_checks.sh sanitize
#   tools/run_checks.sh tsan
#
# Exits non-zero on the first failing rung. Each rung configures its own
# build directory (build/, build-sanitize/, build-tsan/) via CMake presets,
# so rungs never contaminate each other.
#
# Before any rung runs, the script cross-checks the ctest labels declared in
# tests/CMakeLists.txt against the list the ladder knows to run, and fails if
# a label exists that no rung would exercise — so a new test suite cannot be
# added and silently skipped by CI.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

# Every ctest label the ladder exercises. The default rung runs the entire
# unfiltered suite; the sanitizer rungs run the labels listed in their
# functions below. Add a new suite's label here AND to the right rung(s).
COVERED_LABELS="faultinjection parallel serving obs kernel governor shard online ann pq"

check_label_coverage() {
  local declared missing=""
  declared="$(sed -n 's/.*LABELS \([a-zA-Z0-9_-]*\).*/\1/p' \
      tests/CMakeLists.txt | sort -u)"
  for label in ${declared}; do
    case " ${COVERED_LABELS} " in
      *" ${label} "*) ;;
      *) missing="${missing} ${label}" ;;
    esac
  done
  if [[ -n "${missing}" ]]; then
    echo "error: ctest label(s) declared in tests/CMakeLists.txt but not" >&2
    echo "covered by the run_checks.sh ladder:${missing}" >&2
    echo "add them to COVERED_LABELS and to the appropriate rung(s)" >&2
    exit 1
  fi
}

run_default() {
  echo "=== [1/3] default preset: full build + full test suite ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "${JOBS}"
  ctest --preset default
}

run_sanitize() {
  echo "=== [2/3] sanitize preset: ASan+UBSan fault-injection + serving + obs + kernel + governor + shard + online + ann + pq ==="
  cmake --preset sanitize >/dev/null
  cmake --build --preset sanitize -j "${JOBS}"
  ctest --preset sanitize-faultinjection
  ctest --preset sanitize-serving
  ctest --preset sanitize-obs
  ctest --preset sanitize-kernel
  ctest --preset sanitize-governor
  ctest --preset sanitize-shard
  ctest --preset sanitize-online
  ctest --preset sanitize-ann
  ctest --preset sanitize-pq
}

run_tsan() {
  echo "=== [3/3] tsan preset: ThreadSanitizer parallel + serving + obs + kernel + governor + shard + online + ann + pq ==="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "${JOBS}"
  ctest --preset tsan-parallel
  ctest --preset tsan-serving
  ctest --preset tsan-obs
  ctest --preset tsan-kernel
  ctest --preset tsan-governor
  ctest --preset tsan-shard
  ctest --preset tsan-online
  ctest --preset tsan-ann
  ctest --preset tsan-pq
}

check_label_coverage

case "${STAGE}" in
  default)  run_default ;;
  sanitize) run_sanitize ;;
  tsan)     run_tsan ;;
  all)      run_default; run_sanitize; run_tsan ;;
  *)
    echo "unknown stage '${STAGE}' (want default|sanitize|tsan|all)" >&2
    exit 2
    ;;
esac

echo "=== all requested checks passed ==="
