#!/usr/bin/env python3
"""Diff two Google-Benchmark JSON result files and flag regressions.

Usage:
  tools/bench_delta.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Matches benchmark rows by their full "name" and compares per-iteration
real_time. A row whose candidate time exceeds the baseline by more than the
threshold (default 10%) is a regression; so is a drop of more than the
threshold in any extra counter that is better-when-larger (recall_at_10,
items_per_second). Rows present on only one side are reported but never
fail the run — benchmarks come and go across PRs.

Exit status: 0 when no regression crosses the threshold, 1 otherwise, 2 on
malformed input. Intended for eyeballing a before/after pair of
results/BENCH_scoring.json captures and as a cheap CI tripwire.
"""

import argparse
import json
import sys

# Counters where larger is better; everything else in a row is ignored.
GAIN_COUNTERS = ("recall_at_10", "items_per_second")


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_delta: cannot read {path}: {err}")
    rows = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count; keep the
        # plain iteration rows only.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        rows[bench["name"]] = bench
    if not rows:
        sys.exit(f"bench_delta: {path} contains no benchmark rows")
    return rows


def fmt_time(row):
    return f"{row['real_time']:.1f}{row.get('time_unit', 'ns')}"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative change that counts as a regression (default 0.10)",
    )
    args = parser.parse_args()
    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)

    regressions = []
    for name in sorted(base.keys() & cand.keys()):
        b, c = base[name], cand[name]
        if b.get("time_unit") != c.get("time_unit"):
            sys.exit(
                f"bench_delta: {name} changed time_unit "
                f"({b.get('time_unit')} -> {c.get('time_unit')}); "
                "re-capture both sides"
            )
        delta = (c["real_time"] - b["real_time"]) / b["real_time"]
        marker = ""
        if delta > args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append(name)
        print(
            f"{name}: {fmt_time(b)} -> {fmt_time(c)} "
            f"({delta:+.1%}){marker}"
        )
        for counter in GAIN_COUNTERS:
            if counter not in b or counter not in c or b[counter] == 0:
                continue
            drop = (b[counter] - c[counter]) / b[counter]
            if drop > args.threshold:
                regressions.append(f"{name}:{counter}")
                print(
                    f"{name}: {counter} {b[counter]:.4g} -> "
                    f"{c[counter]:.4g} ({-drop:+.1%})  <-- REGRESSION"
                )

    for name in sorted(base.keys() - cand.keys()):
        print(f"{name}: removed in candidate")
    for name in sorted(cand.keys() - base.keys()):
        print(f"{name}: new in candidate ({fmt_time(cand[name])})")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%}:",
            ", ".join(regressions),
        )
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
