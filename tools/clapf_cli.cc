// clapf_cli — command-line workflow for the CLAPF library on real data.
//
//   clapf_cli train     --input u.data --format tab --method CLAPF-MAP
//                       --model-out model.clpf --dataset-out data.clds
//   clapf_cli evaluate  --model model.clpf --dataset data.clds
//   clapf_cli recommend --model model.clpf --dataset data.clds --user 5 --k 10
//                       --ann --pq --rerank-budget 256
//   clapf_cli serve     --model model.clpf --dataset data.clds --users 1,5
//                       --deadline-us 5000 --queue-depth 32 --min-auc 0.6
//                       --metrics-out metrics.json --metrics-every 10
//                       --shards 4 --tenant acme --per-tenant-quota 8
//   clapf_cli online    --dataset u.data --format tab --wal-dir ./wal
//                       --checkpoint-dir ./ckpt --cycle-every 64
//                       --min-auc 0.6 --flight-dump flight.json
//   clapf_cli stats     --input u.data --format tab
//
// train/evaluate/recommend/serve accept --metrics-out <path> to dump their
// telemetry (counters, gauges, latency histograms) as JSON.
//
// Formats: tab (MovieLens 100K), colons (ML1M), csv (ML20M), pairs.

#include <cstdio>
#include <string>

#include "clapf/clapf.h"
#include "clapf/data/dataset_io.h"
#include "clapf/util/flags.h"
#include "clapf/util/string_util.h"

namespace {

using namespace clapf;

Result<FileFormat> ParseFormat(const std::string& name) {
  const std::string key = ToLower(name);
  if (key == "tab") return FileFormat::kTabSeparated;
  if (key == "colons") return FileFormat::kDoubleColon;
  if (key == "csv") return FileFormat::kCsv;
  if (key == "pairs") return FileFormat::kPairs;
  return Status::InvalidArgument("unknown format: " + name +
                                 " (want tab|colons|csv|pairs)");
}

Result<Dataset> LoadAnyDataset(const std::string& input,
                               const std::string& format, bool has_header) {
  if (EndsWith(input, ".clds")) return LoadDataset(input);
  auto fmt = ParseFormat(format);
  if (!fmt.ok()) return fmt.status();
  LoadOptions options;
  options.format = *fmt;
  options.has_header = has_header;
  return LoadInteractions(input, options);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Dumps `registry` as JSON to `path` when --metrics-out was given. A failed
// dump is reported but never fails the command: telemetry is best-effort.
void MaybeDumpMetrics(const MetricsRegistry& registry,
                      const std::string& path) {
  if (path.empty()) return;
  if (Status s = WriteMetricsJsonFile(registry, path); !s.ok()) {
    std::fprintf(stderr, "warning: metrics dump failed: %s\n",
                 s.ToString().c_str());
  } else {
    std::printf("metrics written to %s\n", path.c_str());
  }
}

int RunTrain(int argc, char** argv) {
  std::string input, format = "tab", method_name = "CLAPF-MAP";
  std::string model_out = "model.clpf", dataset_out, metrics_out;
  int64_t iterations = 500000;
  int64_t threads = 1;
  double lambda = 0.4;
  bool has_header = false;
  bool tune = false;
  FlagParser flags;
  flags.AddString("input", &input, "ratings file (.clds or text formats)");
  flags.AddString("format", &format, "tab|colons|csv|pairs");
  flags.AddBool("header", &has_header, "skip the first line of the input");
  flags.AddString("method", &method_name, "any Table-2 or extension method");
  flags.AddInt("iterations", &iterations, "SGD iterations");
  flags.AddInt("threads", &threads,
               "SGD workers (1 = serial/reproducible, >1 = HogWild)");
  flags.AddDouble("lambda", &lambda, "CLAPF tradeoff λ");
  flags.AddBool("tune", &tune, "select λ on a validation split first");
  flags.AddString("model-out", &model_out, "model output path");
  flags.AddString("dataset-out", &dataset_out,
                  "optional .clds cache of the parsed dataset");
  flags.AddString("metrics-out", &metrics_out,
                  "dump training metrics (epoch loss, update counts, sampler "
                  "stats) as JSON to this path");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : Fail(s);
  }
  if (input.empty()) return Fail(Status::InvalidArgument("--input required"));

  auto data = LoadAnyDataset(input, format, has_header);
  if (!data.ok()) return Fail(data.status());
  std::printf("loaded %s\n", data->Summary().c_str());
  if (!dataset_out.empty()) {
    if (Status s = SaveDataset(*data, dataset_out); !s.ok()) return Fail(s);
    std::printf("dataset cached to %s\n", dataset_out.c_str());
  }

  auto method = ParseMethodName(method_name);
  if (!method.ok()) return Fail(method.status());

  MetricsRegistry metrics;
  MethodConfig config;
  config.sgd.iterations = iterations;
  config.sgd.learning_rate = 0.05;
  config.sgd.final_learning_rate_fraction = 0.05;
  config.sgd.num_threads = static_cast<int>(threads);
  if (!metrics_out.empty()) config.sgd.metrics = &metrics;
  config.clapf_lambda = lambda;

  if (tune) {
    ClapfOptions base;
    base.sgd = config.sgd;
    auto pick = SelectLambda(*data, base, {0.0, 0.1, 0.2, 0.4, 0.8},
                             SelectionMetric::kNdcgAt5, /*seed=*/1);
    if (!pick.ok()) return Fail(pick.status());
    config.clapf_lambda = pick->best_options.lambda;
    std::printf("validation-selected λ = %.1f\n", config.clapf_lambda);
  }

  auto trainer = MakeTrainer(*method, config);
  Stopwatch watch;
  if (Status s = trainer->Train(*data); !s.ok()) return Fail(s);
  std::printf("trained %s in %s\n", trainer->name().c_str(),
              FormatDuration(watch.ElapsedSeconds()).c_str());
  MaybeDumpMetrics(metrics, metrics_out);

  // Only factor-model methods can be persisted.
  auto* mf = dynamic_cast<FactorModelTrainer*>(trainer.get());
  if (mf == nullptr) {
    std::printf("note: %s has no persistable factor model; skipping save\n",
                trainer->name().c_str());
    return 0;
  }
  if (Status s = SaveModel(*mf->model(), model_out); !s.ok()) return Fail(s);
  std::printf("model saved to %s\n", model_out.c_str());
  return 0;
}

int RunEvaluate(int argc, char** argv) {
  std::string model_path = "model.clpf", dataset_path, format = "tab";
  std::string metrics_out;
  double train_fraction = 0.5;
  int64_t seed = 42;
  bool has_header = false;
  FlagParser flags;
  flags.AddString("model", &model_path, "model path (.clpf)");
  flags.AddString("dataset", &dataset_path, "dataset (.clds or text)");
  flags.AddString("format", &format, "tab|colons|csv|pairs");
  flags.AddBool("header", &has_header, "skip the first line of the input");
  flags.AddDouble("train-fraction", &train_fraction,
                  "fraction treated as (excluded) training history");
  flags.AddInt("seed", &seed, "split seed — must match the training split");
  flags.AddString("metrics-out", &metrics_out,
                  "dump evaluation metrics as JSON to this path");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : Fail(s);
  }
  if (dataset_path.empty()) {
    return Fail(Status::InvalidArgument("--dataset required"));
  }

  auto data = LoadAnyDataset(dataset_path, format, has_header);
  if (!data.ok()) return Fail(data.status());
  auto model = LoadModel(model_path);
  if (!model.ok()) return Fail(model.status());
  if (model->num_users() != data->num_users() ||
      model->num_items() != data->num_items()) {
    return Fail(Status::InvalidArgument(
        "model and dataset dimensions disagree"));
  }

  auto split = SplitRandom(*data, train_fraction,
                           static_cast<uint64_t>(seed));
  MetricsRegistry metrics;
  Evaluator evaluator(&split.train, &split.test);
  if (!metrics_out.empty()) evaluator.SetMetrics(&metrics);
  EvalSummary summary = evaluator.Evaluate(*model, PaperCutoffs());
  std::printf("%s\n", summary.ToString().c_str());
  MaybeDumpMetrics(metrics, metrics_out);
  return 0;
}

int RunRecommend(int argc, char** argv) {
  std::string model_path = "model.clpf", dataset_path, format = "tab";
  std::string users_csv = "0", exclude_csv, metrics_out;
  int64_t k = 10, threads = 0, nprobe = 0, rerank_budget = 0;
  int64_t build_threads = 0;
  bool has_header = false, no_cold_fallback = false, packed = false;
  bool ann = false, pq = false;
  FlagParser flags;
  flags.AddString("model", &model_path, "model path (.clpf)");
  flags.AddString("dataset", &dataset_path,
                  "interaction history (.clds or text)");
  flags.AddString("format", &format, "tab|colons|csv|pairs");
  flags.AddBool("header", &has_header, "skip the first line of the input");
  flags.AddString("users", &users_csv,
                  "comma-separated dense user ids (a batched query)");
  flags.AddInt("k", &k, "list length");
  flags.AddString("exclude", &exclude_csv,
                  "comma-separated item ids to skip (business rules)");
  flags.AddBool("no-cold-fallback", &no_cold_fallback,
                "return empty lists for cold users instead of popularity");
  flags.AddInt("threads", &threads, "batch worker threads (0 = all cores)");
  flags.AddBool("packed", &packed,
                "score through the packed SIMD snapshot (verified against "
                "the exact model first); default is the exact double path");
  flags.AddBool("ann", &ann,
                "retrieve through the IVF shortlist with fused exact "
                "re-rank (implies --packed; the index must clear a measured "
                "recall@10 >= 0.95 check before it serves)");
  flags.AddInt("nprobe", &nprobe,
               "clusters probed per ANN query (0 = the index default; "
               "higher = better recall, more items scored)");
  flags.AddBool("pq", &pq,
                "quantized first-pass scoring inside the ANN shortlist: "
                "stream int8 codes, exact-re-rank only the top "
                "--rerank-budget survivors; the gate measures the composed "
                "path's recall (requires --ann)");
  flags.AddInt("rerank-budget", &rerank_budget,
               "survivors the quantized pass hands to the exact re-rank "
               "(0 = the index default; requires --pq)");
  flags.AddInt("build-threads", &build_threads,
               "worker threads for the IVF/code-book build (0 = the index "
               "default of 1; the index is identical at any count)");
  flags.AddString("metrics-out", &metrics_out,
                  "dump query metrics (latency histogram, counts) as JSON to "
                  "this path");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : Fail(s);
  }
  if (dataset_path.empty()) {
    return Fail(Status::InvalidArgument("--dataset required"));
  }
  if (pq && !ann) {
    return Fail(Status::InvalidArgument("--pq requires --ann"));
  }
  if (rerank_budget != 0 && !pq) {
    return Fail(Status::InvalidArgument("--rerank-budget requires --pq"));
  }
  if (build_threads != 0 && !ann) {
    return Fail(Status::InvalidArgument("--build-threads requires --ann"));
  }

  auto data = LoadAnyDataset(dataset_path, format, has_header);
  if (!data.ok()) return Fail(data.status());
  auto recommender = Recommender::Load(model_path, *std::move(data));
  if (!recommender.ok()) return Fail(recommender.status());
  if (packed || ann) {
    if (Status s = recommender->EnablePacked(/*verify_sample_users=*/16);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("packed scoring enabled (%s kernel)\n",
                ScoreKernelName(ActiveScoreKernel()));
  }
  if (ann) {
    IvfOptions ivf_options;
    ivf_options.pq = pq;
    if (build_threads > 0) {
      ivf_options.build_threads = static_cast<int>(build_threads);
    }
    // With --pq the 0.95 floor below gates the composed quantized+re-rank
    // path (EnableIvf switches checks when codes are present).
    if (Status s = recommender->EnableIvf(ivf_options,
                                          /*verify_sample_users=*/16,
                                          /*verify_recall_floor=*/0.95);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("ann enabled: %d clusters, default nprobe %d\n",
                recommender->ivf_index()->num_clusters(),
                recommender->ivf_index()->default_nprobe());
    if (pq) {
      std::printf("pq enabled: int8 codes, rerank budget %lld\n",
                  static_cast<long long>(
                      rerank_budget > 0
                          ? rerank_budget
                          : recommender->ivf_index()->default_rerank_budget()));
    }
  }
  MetricsRegistry metrics;
  if (!metrics_out.empty()) recommender->SetMetrics(&metrics);

  std::vector<UserId> users;
  for (const std::string& tok : Split(users_csv, ',')) {
    auto id = ParseInt64(Trim(tok));
    if (!id.ok()) return Fail(id.status());
    users.push_back(static_cast<UserId>(*id));
  }
  QueryOptions options;
  options.cold_start_fallback = !no_cold_fallback;
  options.num_threads = static_cast<int>(threads);
  options.ann = ann;
  options.ann_nprobe = static_cast<int32_t>(nprobe);
  options.pq = pq;
  options.rerank_budget = static_cast<int32_t>(rerank_budget);
  if (!exclude_csv.empty()) {
    for (const std::string& tok : Split(exclude_csv, ',')) {
      auto id = ParseInt64(Trim(tok));
      if (!id.ok()) return Fail(id.status());
      options.exclude.push_back(static_cast<ItemId>(*id));
    }
  }

  auto batch = recommender->RecommendBatch(users, static_cast<size_t>(k),
                                           options);
  if (!batch.ok()) return Fail(batch.status());
  for (size_t i = 0; i < users.size(); ++i) {
    std::printf("top-%lld for user %d:\n", static_cast<long long>(k),
                users[i]);
    for (const ScoredItem& item : (*batch)[i]) {
      std::printf("  item %-8d score %.4f\n", item.item, item.score);
    }
  }
  // Which path actually scored: a --pq request against an index without
  // codes silently serves plain ANN, so report from the index state rather
  // than echoing the flags.
  const bool served_pq = pq && recommender->ivf_index() != nullptr &&
                         recommender->ivf_index()->has_pq();
  std::printf("scoring path: %s\n",
              served_pq ? "ann+pq"
                        : (ann ? "ann" : (packed ? "packed" : "exact")));
  MaybeDumpMetrics(metrics, metrics_out);
  return 0;
}

// Reports which scoring path actually answered the replayed serve queries,
// read back from the serving counters rather than echoed from the flags —
// a --pq run whose index carries no codes serves plain ANN and says so.
void PrintScoringPath(MetricsRegistry* metrics, bool packed) {
  const int64_t pq_queries =
      metrics->GetCounter("ann.pq_queries_total")->Value();
  const int64_t ann_queries = metrics->GetCounter("ann.queries_total")->Value();
  std::printf("scoring path: %s\n",
              pq_queries > 0
                  ? "ann+pq"
                  : (ann_queries > 0 ? "ann" : (packed ? "packed" : "exact")));
}

int RunServe(int argc, char** argv) {
  std::string model_path = "model.clpf", dataset_path, format = "tab";
  std::string users_csv = "0", metrics_out;
  std::string governor_name = "performance", flight_dump;
  std::string tenant = std::string(kDefaultTenant);
  int64_t k = 10, threads = 2, queue_depth = 64, repeat = 1;
  int64_t deadline_us = 0, metrics_every = 0, governor_interval_ms = 50;
  int64_t shards = 1, per_tenant_quota = 0, nprobe = 0, rerank_budget = 0;
  int64_t build_threads = 0;
  double min_auc = 0.0, latency_target_ms = 5.0;
  bool has_header = false, packed = true, ann = false, pq = false;
  FlagParser flags;
  flags.AddString("model", &model_path, "candidate model path (.clpf)");
  flags.AddString("dataset", &dataset_path,
                  "interaction history (.clds or text)");
  flags.AddString("format", &format, "tab|colons|csv|pairs");
  flags.AddBool("header", &has_header, "skip the first line of the input");
  flags.AddString("users", &users_csv, "comma-separated dense user ids");
  flags.AddInt("k", &k, "list length");
  flags.AddInt("threads", &threads, "serving worker threads");
  flags.AddInt("queue-depth", &queue_depth,
               "admission bound: requests past this are shed (Unavailable)");
  flags.AddInt("deadline-us", &deadline_us,
               "per-query budget in microseconds (0 = unbounded)");
  flags.AddDouble("min-auc", &min_auc,
                  "canary sampled-AUC floor for the publish gate (0 = off)");
  flags.AddBool("packed", &packed,
                "serve through the packed SIMD fast path, gated by the "
                "canary agreement check (--packed=false for the exact "
                "double path)");
  flags.AddBool("ann", &ann,
                "serve through the IVF shortlist with fused exact re-rank; "
                "each publish builds the index and the canary gate refuses "
                "it below recall@10 0.95 (requires --packed)");
  flags.AddInt("nprobe", &nprobe,
               "clusters probed per ANN query (0 = the index default)");
  flags.AddBool("pq", &pq,
                "quantized first-pass scoring inside the ANN shortlist; "
                "publishes train the int8 code book alongside the index and "
                "the canary gate measures the composed quantized+re-rank "
                "recall (requires --ann)");
  flags.AddInt("rerank-budget", &rerank_budget,
               "survivors the quantized pass hands to the exact re-rank "
               "(0 = the index default; requires --pq)");
  flags.AddInt("build-threads", &build_threads,
               "worker threads for each publish's IVF/code-book build "
               "(0 = the index default of 1; requires --ann)");
  flags.AddInt("repeat", &repeat, "times to replay the query set");
  flags.AddString("metrics-out", &metrics_out,
                  "dump serving metrics (latency histograms, outcome "
                  "counters) as JSON to this path");
  flags.AddInt("metrics-every", &metrics_every,
               "refresh --metrics-out every N replay rounds as well as at "
               "exit (0 = exit only)");
  flags.AddString("governor", &governor_name,
                  "serving governor policy: performance (static, default), "
                  "ondemand (step on pressure, decay slowly), or schedutil "
                  "(track --latency-target-ms)");
  flags.AddInt("governor-interval-ms", &governor_interval_ms,
               "governor tick cadence in milliseconds");
  flags.AddDouble("latency-target-ms", &latency_target_ms,
                  "schedutil: p99 query-latency target in milliseconds");
  flags.AddString("flight-dump", &flight_dump,
                  "dump the incident flight recorder (JSON) to this path at "
                  "exit and on every breaker trip");
  flags.AddInt("shards", &shards,
               "catalog shards for scatter-gather serving (1 = monolithic "
               "server; answers are bit-identical either way)");
  flags.AddString("tenant", &tenant,
                  "tenant whose serving chain receives the publish and "
                  "answers the queries (implies the sharded server)");
  flags.AddInt("per-tenant-quota", &per_tenant_quota,
               "per-tenant in-flight admission budget (0 = global "
               "--queue-depth bound only; implies the sharded server)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : Fail(s);
  }
  if (dataset_path.empty()) {
    return Fail(Status::InvalidArgument("--dataset required"));
  }
  if (pq && !ann) {
    return Fail(Status::InvalidArgument("--pq requires --ann"));
  }
  if (rerank_budget != 0 && !pq) {
    return Fail(Status::InvalidArgument("--rerank-budget requires --pq"));
  }
  if (build_threads != 0 && !ann) {
    return Fail(Status::InvalidArgument("--build-threads requires --ann"));
  }

  auto data = LoadAnyDataset(dataset_path, format, has_header);
  if (!data.ok()) return Fail(data.status());

  auto policy = ParseGovernorPolicy(governor_name);
  if (!policy.ok()) return Fail(policy.status());

  ServerOptions server_options;
  server_options.num_threads = static_cast<int>(threads);
  server_options.max_queue_depth = queue_depth;
  server_options.canary.min_auc = min_auc;
  server_options.packed = packed;
  server_options.ann = ann;
  server_options.ivf.pq = pq;
  if (build_threads > 0) {
    server_options.ivf.build_threads = static_cast<int>(build_threads);
  }
  server_options.governor.policy = *policy;
  server_options.governor.interval_us = governor_interval_ms * 1000;
  server_options.governor.latency_target_ms = latency_target_ms;
  server_options.flight_dump_path = flight_dump;
  server_options.num_shards = static_cast<int32_t>(shards);
  server_options.per_tenant_quota = per_tenant_quota;

  std::vector<UserId> user_ids;
  for (const std::string& tok : Split(users_csv, ',')) {
    auto id = ParseInt64(Trim(tok));
    if (!id.ok()) return Fail(id.status());
    user_ids.push_back(static_cast<UserId>(*id));
  }
  QueryOptions query_options;
  query_options.deadline = std::chrono::microseconds(deadline_us);
  query_options.ann = ann;
  query_options.ann_nprobe = static_cast<int32_t>(nprobe);
  query_options.pq = pq;
  query_options.rerank_budget = static_cast<int32_t>(rerank_budget);

  // Sharded scatter-gather front end: same publish gate, same answers
  // (bit-identical to the monolithic path), plus per-shard hot reload,
  // tenant chains, and admission quotas.
  if (shards > 1 || tenant != kDefaultTenant || per_tenant_quota > 0) {
    ShardedModelServer server(*std::move(data), server_options);
    std::printf("sharded serving: %s tenant \"%s\"\n",
                server.shard_map().ToString().c_str(), tenant.c_str());
    if (Status s = server.PublishModel(
            PublishRequest(model_path).WithTenant(tenant));
        !s.ok()) {
      std::printf("publish rejected (%s); serving popularity fallback\n",
                  s.ToString().c_str());
    } else {
      std::printf("published model to %d shard(s) of tenant \"%s\"\n",
                  server.num_shards(), tenant.c_str());
    }
    for (int64_t round = 0; round < repeat; ++round) {
      for (UserId u : user_ids) {
        auto got = server.RecommendOne(u, static_cast<size_t>(k),
                                       query_options, tenant);
        if (!got.ok()) {
          std::printf("user %d: %s\n", u, got.status().ToString().c_str());
          continue;
        }
        std::printf("top-%lld for user %d:\n", static_cast<long long>(k), u);
        for (const ScoredItem& item : *got) {
          std::printf("  item %-8d score %.4f\n", item.item, item.score);
        }
      }
      if (metrics_every > 0 && (round + 1) % metrics_every == 0) {
        MaybeDumpMetrics(server.metrics(), metrics_out);
      }
    }
    PrintScoringPath(server.mutable_metrics(), packed);
    std::printf("serving stats:\n%s\n", server.stats().ToString().c_str());
    if (!flight_dump.empty()) {
      if (Status s = server.DumpFlightRecorder(flight_dump); !s.ok()) {
        std::printf("flight-recorder dump failed: %s\n",
                    s.ToString().c_str());
      } else {
        std::printf("flight recorder dumped to %s\n", flight_dump.c_str());
      }
    }
    MaybeDumpMetrics(server.metrics(), metrics_out);
    return 0;
  }

  ModelServer server(*std::move(data), server_options);
  if (*policy != GovernorPolicy::kPerformance) {
    std::printf("governor %s active (tick every %lld ms)\n",
                GovernorPolicyName(*policy),
                static_cast<long long>(governor_interval_ms));
  }

  // The candidate goes through the full canary gate; a rejection leaves the
  // server in degraded (popularity) mode rather than exiting.
  if (Status s = server.PublishModel(model_path); !s.ok()) {
    std::printf("publish rejected (%s); serving popularity fallback\n",
                s.ToString().c_str());
  } else {
    std::printf("published model v%lld\n",
                static_cast<long long>(server.version()));
  }

  for (int64_t round = 0; round < repeat; ++round) {
    for (UserId u : user_ids) {
      auto got = server.Recommend(u, static_cast<size_t>(k), query_options);
      if (!got.ok()) {
        std::printf("user %d: %s\n", u, got.status().ToString().c_str());
        continue;
      }
      std::printf("top-%lld for user %d:\n", static_cast<long long>(k), u);
      for (const ScoredItem& item : *got) {
        std::printf("  item %-8d score %.4f\n", item.item, item.score);
      }
    }
    // Periodic scrape point: each dump atomically replaces the file, so a
    // concurrent reader always sees a complete JSON document.
    if (metrics_every > 0 && (round + 1) % metrics_every == 0) {
      MaybeDumpMetrics(server.metrics(), metrics_out);
    }
  }
  PrintScoringPath(server.mutable_metrics(), packed);
  std::printf("serving stats: %s\n", server.stats().ToString().c_str());
  if (*policy != GovernorPolicy::kPerformance) {
    const GovernorKnobs knobs = server.governor().knobs();
    std::printf("governor: policy=%s ticks=%lld adjustments=%lld "
                "queue_depth=%lld deadline_budget_us=%lld force_packed=%d\n",
                GovernorPolicyName(*policy),
                static_cast<long long>(server.governor().ticks()),
                static_cast<long long>(server.governor().adjustments()),
                static_cast<long long>(knobs.max_queue_depth),
                static_cast<long long>(knobs.deadline_budget_us),
                knobs.force_packed ? 1 : 0);
  }
  if (!flight_dump.empty()) {
    // Exit dump complements the automatic on-trip dumps: the recorder's
    // final state lands on disk even for incident-free runs.
    if (Status s = server.DumpFlightRecorder(flight_dump); !s.ok()) {
      std::printf("flight-recorder dump failed: %s\n", s.ToString().c_str());
    } else {
      std::printf("flight recorder dumped to %s\n", flight_dump.c_str());
    }
  }
  MaybeDumpMetrics(server.metrics(), metrics_out);
  return 0;
}

int RunOnline(int argc, char** argv) {
  std::string dataset_path, format = "tab", metrics_out, flight_dump;
  std::string wal_dir = "online-wal", checkpoint_dir = "online-ckpt";
  std::string users_csv = "0";
  int64_t cycle_every = 64, epochs = 2, reservoir = 1024, factors = 16;
  int64_t seed = 1, fsync_every = 1, k = 10, threads = 1;
  double holdout = 0.2, min_auc = 0.0, learning_rate = 0.05;
  bool has_header = false;
  FlagParser flags;
  flags.AddString("dataset", &dataset_path,
                  "interaction history (.clds or text); a --holdout fraction "
                  "is replayed as the live arrival stream, the rest "
                  "bootstraps the online trainer");
  flags.AddString("format", &format, "tab|colons|csv|pairs");
  flags.AddBool("header", &has_header, "skip the first line of the input");
  flags.AddString("wal-dir", &wal_dir,
                  "interaction WAL directory (created if missing; an "
                  "existing log is recovered and resumed)");
  flags.AddString("checkpoint-dir", &checkpoint_dir,
                  "WAL-position⇄model checkpoint directory (empty disables "
                  "crash recovery of the trainer state)");
  flags.AddDouble("holdout", &holdout,
                  "fraction of the dataset replayed as live arrivals");
  flags.AddInt("cycle-every", &cycle_every,
               "arrivals between deployment cycles (train + checkpoint + "
               "canary-gated publish)");
  flags.AddInt("epochs", &epochs, "training passes per increment");
  flags.AddInt("reservoir", &reservoir,
               "historical interactions mixed into every increment");
  flags.AddInt("factors", &factors, "latent dimensionality of the model");
  flags.AddDouble("learning-rate", &learning_rate, "incremental SGD rate");
  flags.AddInt("threads", &threads,
               "SGD workers per increment (1 = bit-reproducible)");
  flags.AddInt("fsync-every", &fsync_every,
               "fsync the WAL every N appends (0 = never, 1 = every append)");
  flags.AddDouble("min-auc", &min_auc,
                  "canary sampled-AUC floor for every online publish "
                  "(0 = off)");
  flags.AddInt("seed", &seed, "seed for init, sampling, and the reservoir");
  flags.AddString("users", &users_csv,
                  "comma-separated user ids queried after the replay");
  flags.AddInt("k", &k, "list length for the post-replay queries");
  flags.AddString("metrics-out", &metrics_out,
                  "dump online + serving metrics as JSON to this path");
  flags.AddString("flight-dump", &flight_dump,
                  "dump the online flight recorder (wal-recovery, "
                  "online-publish, auc-regression-rollback events) here");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : Fail(s);
  }
  if (dataset_path.empty()) {
    return Fail(Status::InvalidArgument("--dataset required"));
  }

  auto data = LoadAnyDataset(dataset_path, format, has_header);
  if (!data.ok()) return Fail(data.status());
  std::printf("loaded %s\n", data->Summary().c_str());

  // The full dataset fixes the serving envelope; the split's train half
  // warm-starts the trainer and its test half becomes the arrival stream.
  TrainTestSplit split =
      SplitRandom(*data, 1.0 - holdout, static_cast<uint64_t>(seed));

  MetricsRegistry metrics;
  ServerOptions server_options;
  server_options.canary.min_auc = min_auc;
  ModelServer server(*std::move(data), server_options);

  DeployerOptions options;
  options.wal.dir = wal_dir;
  options.wal.fsync_every = fsync_every;
  options.checkpoint_dir = checkpoint_dir;
  options.min_increment_records = cycle_every;
  options.flight_dump_path = flight_dump;
  options.metrics = &metrics;
  options.trainer.epochs_per_increment = epochs;
  options.trainer.reservoir_capacity = reservoir;
  options.trainer.sgd.num_factors = static_cast<int32_t>(factors);
  options.trainer.sgd.learning_rate = learning_rate;
  options.trainer.sgd.seed = static_cast<uint64_t>(seed);
  options.trainer.sgd.num_threads = static_cast<int>(threads);
  options.trainer.sgd.divergence.policy = DivergencePolicy::kHalt;

  ContinuousDeployer deployer(&server, split.train, options);
  if (Status s = deployer.Start(); !s.ok()) return Fail(s);
  std::printf(
      "online lifecycle up: wal at %s (position %lld, %lld already "
      "trained)\n",
      wal_dir.c_str(), static_cast<long long>(deployer.wal_position()),
      static_cast<long long>(deployer.trained_position()));

  // Replay the held-out interactions as the live day: ingest (WAL +
  // trainer) and run a deployment cycle whenever enough records pend.
  int64_t arrivals = 0;
  for (UserId u = 0; u < split.test.num_users(); ++u) {
    for (ItemId i : split.test.ItemsOf(u)) {
      if (Status s = deployer.Ingest(u, i); !s.ok()) return Fail(s);
      ++arrivals;
      auto cycled = deployer.RunCycle();
      if (!cycled.ok()) return Fail(cycled.status());
    }
  }
  // Flush the partial tail through one final forced cycle.
  if (auto flushed = deployer.RunCycle(/*force=*/true); !flushed.ok()) {
    return Fail(flushed.status());
  }
  std::printf(
      "replayed %lld arrivals: %lld increments, model %dx%d, serving v%lld "
      "(trained through position %lld of %lld)\n",
      static_cast<long long>(arrivals),
      static_cast<long long>(deployer.trainer().increments()),
      deployer.trainer().num_users(), deployer.trainer().num_items(),
      static_cast<long long>(deployer.published_version()),
      static_cast<long long>(deployer.trained_position()),
      static_cast<long long>(deployer.wal_position()));

  for (const std::string& tok : Split(users_csv, ',')) {
    auto id = ParseInt64(Trim(tok));
    if (!id.ok()) return Fail(id.status());
    const UserId u = static_cast<UserId>(*id);
    auto got = server.Recommend(u, static_cast<size_t>(k));
    if (!got.ok()) {
      std::printf("user %d: %s\n", u, got.status().ToString().c_str());
      continue;
    }
    std::printf("top-%lld for user %d:\n", static_cast<long long>(k), u);
    for (const ScoredItem& item : *got) {
      std::printf("  item %-8d score %.4f\n", item.item, item.score);
    }
  }
  std::printf("serving stats: %s\n", server.stats().ToString().c_str());
  if (!flight_dump.empty()) {
    if (Status s = deployer.DumpFlightRecorder(flight_dump); !s.ok()) {
      std::printf("flight-recorder dump failed: %s\n", s.ToString().c_str());
    } else {
      std::printf("flight recorder dumped to %s\n", flight_dump.c_str());
    }
  }
  MaybeDumpMetrics(metrics, metrics_out);
  return 0;
}

int RunStats(int argc, char** argv) {
  std::string input, format = "tab";
  bool has_header = false;
  FlagParser flags;
  flags.AddString("input", &input, "ratings file (.clds or text formats)");
  flags.AddString("format", &format, "tab|colons|csv|pairs");
  flags.AddBool("header", &has_header, "skip the first line of the input");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    return s.code() == StatusCode::kFailedPrecondition ? 0 : Fail(s);
  }
  if (input.empty()) return Fail(Status::InvalidArgument("--input required"));
  auto data = LoadAnyDataset(input, format, has_header);
  if (!data.ok()) return Fail(data.status());
  std::printf("%s\n", ComputeStats(*data).ToString().c_str());
  return 0;
}

void PrintUsage() {
  std::fputs(
      "usage: clapf_cli <train|evaluate|recommend|serve|online|stats> "
      "[flags]\n"
      "run a subcommand with --help for its flags\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so FlagParser sees the subcommand's flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "train") return RunTrain(sub_argc, sub_argv);
  if (command == "evaluate") return RunEvaluate(sub_argc, sub_argv);
  if (command == "recommend") return RunRecommend(sub_argc, sub_argv);
  if (command == "serve") return RunServe(sub_argc, sub_argv);
  if (command == "online") return RunOnline(sub_argc, sub_argv);
  if (command == "stats") return RunStats(sub_argc, sub_argv);
  PrintUsage();
  return 1;
}
