#!/bin/bash
cd /root/repo
# wait for table2 to finish
while kill -0 8808 2>/dev/null; do sleep 5; done
./build/bench/table1_datasets --csv results/table1.csv > results/table1.txt 2>&1
./build/bench/fig3_lambda --csv results/fig3.csv > results/fig3.txt 2>&1
./build/bench/fig4_convergence --csv results/fig4.csv > results/fig4.txt 2>&1
./build/bench/ablation_design > results/ablation.txt 2>&1
./build/bench/micro_benchmarks --benchmark_min_time=0.1s > results/micro.txt 2>&1
./build/bench/fig2_topk --csv results/fig2.csv > results/fig2.txt 2>&1
echo DONE > results/all_done
