#!/bin/bash
# Assembles the authoritative bench_output.txt in `for b in build/bench/*`
# (alphabetical) order from the individually captured runs.
cd /root/repo
{
  echo "===== build/bench/ablation_design ====="
  cat results/ablation.txt
  echo
  echo "===== build/bench/extensions_bench ====="
  cat results/extensions.txt
  echo
  echo "===== build/bench/fig2_topk ====="
  cat results/fig2.txt
  echo
  echo "===== build/bench/fig3_lambda ====="
  cat results/fig3.txt
  echo
  echo "===== build/bench/fig4_convergence ====="
  cat results/fig4.txt
  echo
  echo "===== build/bench/micro_benchmarks ====="
  cat results/micro.txt
  echo
  echo "===== build/bench/protocol_compare ====="
  cat results/protocol_compare.txt
  echo
  echo "===== build/bench/table1_datasets ====="
  cat results/table1.txt
  echo
  echo "===== build/bench/table2_main ====="
  cat results/table2.txt
} > bench_output.txt
wc -l bench_output.txt
