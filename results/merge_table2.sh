#!/bin/bash
cd /root/repo/results
{
  sed '/^--- ML1M-sim ---$/,$d' table2_part1.txt
  echo "(ML100K-sim above ran with the exhaustive 12-point tuning grid;"
  echo " the datasets below use the equivalent two-stage grid — see"
  echo " bench/bench_common.cc.)"
  echo
  sed -n '/^--- ML1M-sim ---$/,$p' table2_part2.txt
} > table2.txt
wc -l table2.txt
