#ifndef CLAPF_DATA_SYNTHETIC_H_
#define CLAPF_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/util/status.h"

namespace clapf {

/// Configuration for the synthetic implicit-feedback generator that stands in
/// for the paper's six real datasets (see DESIGN.md §4). The generator draws
/// a latent-factor ground-truth preference model, mixes in Zipf item
/// popularity, gives users log-normally skewed activity, and emits a sparse
/// binary interaction matrix with the requested density.
struct SyntheticConfig {
  int32_t num_users = 1000;
  int32_t num_items = 1000;
  /// Target total number of observed pairs (train + test before splitting).
  int64_t num_interactions = 30000;
  /// Rank of the ground-truth preference model.
  int32_t ground_truth_factors = 8;
  /// Zipf exponent for item popularity (1.0 ≈ classic long tail).
  double popularity_exponent = 1.0;
  /// Weight of popularity vs personal affinity in [0, 1]; real recommender
  /// data mixes both.
  double popularity_mix = 0.4;
  /// Log-normal sigma of per-user activity skew (0 = uniform activity).
  double activity_sigma = 0.8;
  /// Softmax temperature over affinity scores; higher = peakier preferences.
  double affinity_sharpness = 2.0;
  /// Number of taste clusters users are drawn around (genre structure).
  /// 0 = fully i.i.d. user factors. Clustered tastes make personalization
  /// signal that global popularity cannot capture, as in real data.
  int32_t taste_clusters = 16;
  /// Relative deviation of a user's taste from their cluster centroid.
  double cluster_noise = 0.3;
  uint64_t seed = 42;

  /// Human-readable preset name, if created via DatasetPreset.
  std::string name = "synthetic";
};

/// The generator's latent ground truth, exportable for oracle evaluation:
/// the affinity score of (u, i) is the dot product of the factor rows.
struct SyntheticGroundTruth {
  int32_t num_factors = 0;
  std::vector<double> user_factors;  // num_users x num_factors, row-major
  std::vector<double> item_factors;  // num_items x num_factors, row-major

  /// Ground-truth affinity (popularity mixing excluded).
  double Affinity(UserId u, ItemId i) const;
};

/// Generates the dataset. Returns InvalidArgument for impossible configs
/// (e.g. more interactions than cells). When `ground_truth` is non-null it
/// receives the latent preference model the data was drawn from — the
/// upper bound any recommender can reach on this data.
Result<Dataset> GenerateSynthetic(const SyntheticConfig& config,
                                  SyntheticGroundTruth* ground_truth = nullptr);

/// Named presets mirroring the paper's Table 1 at a scale that runs on one
/// core. Each preset preserves the real dataset's density and mean user
/// activity; dimensions are scaled down (scale factor in DESIGN.md).
enum class DatasetPreset {
  kMl100k,   // 943 x 1682, density 3.49% (full scale)
  kMl1m,     // scaled MovieLens 1M shape, density 2.41%
  kUserTag,  // scaled UserTag shape, density 4.11%
  kMl20m,    // scaled MovieLens 20M shape, density 0.11%
  kFlixter,  // scaled Flixter shape, density 0.02%
  kNetflix,  // scaled Netflix shape, density 0.23%
};

/// All presets in Table 1 order.
std::vector<DatasetPreset> AllDatasetPresets();

/// Returns the generator config for `preset`, offset by `seed_offset` so
/// repeated experiment copies use independent data draws.
SyntheticConfig PresetConfig(DatasetPreset preset, uint64_t seed_offset = 0);

/// Preset display name ("ML100K-sim", ...).
std::string PresetName(DatasetPreset preset);

/// Parses a preset name (case-insensitive, with or without "-sim").
Result<DatasetPreset> ParsePresetName(const std::string& name);

}  // namespace clapf

#endif  // CLAPF_DATA_SYNTHETIC_H_
