#include "clapf/data/split.h"

#include <utility>
#include <vector>

#include "clapf/data/dataset_builder.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"

namespace clapf {

TrainTestSplit SplitRandom(const Dataset& dataset, double train_fraction,
                           uint64_t seed) {
  CLAPF_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0);
  Rng rng(seed);
  DatasetBuilder train_builder(dataset.num_users(), dataset.num_items());
  DatasetBuilder test_builder(dataset.num_users(), dataset.num_items());
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    for (ItemId i : dataset.ItemsOf(u)) {
      if (rng.Bernoulli(train_fraction)) {
        CLAPF_CHECK_OK(train_builder.Add(u, i));
      } else {
        CLAPF_CHECK_OK(test_builder.Add(u, i));
      }
    }
  }
  return TrainTestSplit{train_builder.Build(), test_builder.Build()};
}

TrainValidationSplit HoldOutOnePerUser(const Dataset& train, uint64_t seed) {
  Rng rng(seed);
  DatasetBuilder train_builder(train.num_users(), train.num_items());
  DatasetBuilder val_builder(train.num_users(), train.num_items());
  for (UserId u = 0; u < train.num_users(); ++u) {
    auto items = train.ItemsOf(u);
    if (items.size() < 2) {
      for (ItemId i : items) CLAPF_CHECK_OK(train_builder.Add(u, i));
      continue;
    }
    size_t held = static_cast<size_t>(rng.Uniform(items.size()));
    for (size_t idx = 0; idx < items.size(); ++idx) {
      if (idx == held) {
        CLAPF_CHECK_OK(val_builder.Add(u, items[idx]));
      } else {
        CLAPF_CHECK_OK(train_builder.Add(u, items[idx]));
      }
    }
  }
  return TrainValidationSplit{train_builder.Build(), val_builder.Build()};
}

}  // namespace clapf
