#ifndef CLAPF_DATA_STATISTICS_H_
#define CLAPF_DATA_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/data/dataset.h"

namespace clapf {

/// Distribution statistics of a dataset, used to verify that synthetic
/// substitutes match the real datasets' shape (DESIGN.md §4) and by the
/// Table 1 bench.
struct DatasetStats {
  int32_t num_users = 0;
  int32_t num_items = 0;
  int64_t num_interactions = 0;
  double density = 0.0;

  double mean_user_activity = 0.0;
  double max_user_activity = 0.0;
  /// Gini coefficient of per-user activity in [0, 1); 0 = uniform.
  double user_activity_gini = 0.0;

  double mean_item_popularity = 0.0;
  double max_item_popularity = 0.0;
  /// Gini coefficient of item popularity; long-tail catalogs are > ~0.4.
  double item_popularity_gini = 0.0;
  /// Share of interactions covered by the most popular 10% of items.
  double top10pct_item_share = 0.0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Computes all statistics in one pass over the dataset.
DatasetStats ComputeStats(const Dataset& dataset);

/// Gini coefficient of a non-negative value distribution (0 when empty or
/// all-zero). Order of `values` does not matter.
double GiniCoefficient(std::vector<double> values);

}  // namespace clapf

#endif  // CLAPF_DATA_STATISTICS_H_
