#ifndef CLAPF_DATA_DATASET_IO_H_
#define CLAPF_DATA_DATASET_IO_H_

#include <string>

#include "clapf/data/dataset.h"
#include "clapf/util/status.h"

namespace clapf {

/// Serializes `dataset` to a compact binary file (magic "CLDS", version,
/// dims, CSR offsets + items). Orders of magnitude faster to reload than
/// re-parsing text formats — useful for caching preprocessed datasets
/// between experiment runs.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Loads a dataset written by SaveDataset. Returns Corruption on bad
/// magic/version, inconsistent CSR structure, or truncation.
Result<Dataset> LoadDataset(const std::string& path);

}  // namespace clapf

#endif  // CLAPF_DATA_DATASET_IO_H_
