#include "clapf/data/dataset_builder.h"

#include <algorithm>
#include <string>

#include "clapf/util/logging.h"

namespace clapf {

DatasetBuilder::DatasetBuilder(int32_t num_users, int32_t num_items)
    : num_users_(num_users), num_items_(num_items) {
  CLAPF_CHECK(num_users >= 0);
  CLAPF_CHECK(num_items >= 0);
}

Status DatasetBuilder::Add(UserId u, ItemId i) {
  if (u < 0 || u >= num_users_) {
    return Status::OutOfRange("user id " + std::to_string(u) +
                              " outside [0, " + std::to_string(num_users_) +
                              ")");
  }
  if (i < 0 || i >= num_items_) {
    return Status::OutOfRange("item id " + std::to_string(i) +
                              " outside [0, " + std::to_string(num_items_) +
                              ")");
  }
  pairs_.emplace_back(u, i);
  return Status::OK();
}

Status DatasetBuilder::AddAll(
    const std::vector<std::pair<UserId, ItemId>>& pairs) {
  for (const auto& [u, i] : pairs) CLAPF_RETURN_IF_ERROR(Add(u, i));
  return Status::OK();
}

Dataset DatasetBuilder::Build() {
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());

  Dataset ds;
  ds.num_users_ = num_users_;
  ds.num_items_ = num_items_;
  ds.offsets_.assign(static_cast<size_t>(num_users_) + 1, 0);
  ds.items_.reserve(pairs_.size());
  for (const auto& [u, i] : pairs_) {
    ++ds.offsets_[static_cast<size_t>(u) + 1];
    ds.items_.push_back(i);
  }
  for (size_t u = 1; u < ds.offsets_.size(); ++u) {
    ds.offsets_[u] += ds.offsets_[u - 1];
  }
  pairs_.clear();
  return ds;
}

}  // namespace clapf
