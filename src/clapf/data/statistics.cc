#include "clapf/data/statistics.h"

#include <algorithm>
#include <sstream>

#include "clapf/util/string_util.h"

namespace clapf {

double GiniCoefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double total = 0.0;
  double weighted = 0.0;
  const double n = static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    total += values[i];
    weighted += (static_cast<double>(i) + 1.0) * values[i];
  }
  if (total <= 0.0) return 0.0;
  // G = (2 Σ i·x_(i) / (n Σ x)) − (n+1)/n.
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_users = dataset.num_users();
  stats.num_items = dataset.num_items();
  stats.num_interactions = dataset.num_interactions();
  stats.density = dataset.Density();

  std::vector<double> activity(static_cast<size_t>(dataset.num_users()));
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    activity[static_cast<size_t>(u)] =
        static_cast<double>(dataset.NumItemsOf(u));
    stats.max_user_activity =
        std::max(stats.max_user_activity, activity[static_cast<size_t>(u)]);
  }
  if (dataset.num_users() > 0) {
    stats.mean_user_activity = static_cast<double>(stats.num_interactions) /
                               static_cast<double>(dataset.num_users());
  }
  stats.user_activity_gini = GiniCoefficient(activity);

  auto counts = dataset.ItemPopularity();
  std::vector<double> popularity(counts.begin(), counts.end());
  for (double p : popularity) {
    stats.max_item_popularity = std::max(stats.max_item_popularity, p);
  }
  if (dataset.num_items() > 0) {
    stats.mean_item_popularity = static_cast<double>(stats.num_interactions) /
                                 static_cast<double>(dataset.num_items());
  }
  stats.item_popularity_gini = GiniCoefficient(popularity);

  std::sort(popularity.begin(), popularity.end(), std::greater<>());
  const size_t head = popularity.size() / 10;
  double head_sum = 0.0;
  for (size_t i = 0; i < head; ++i) head_sum += popularity[i];
  if (stats.num_interactions > 0) {
    stats.top10pct_item_share =
        head_sum / static_cast<double>(stats.num_interactions);
  }
  return stats;
}

std::string DatasetStats::ToString() const {
  std::ostringstream os;
  os << "users: " << num_users << "  items: " << num_items
     << "  interactions: " << num_interactions
     << "  density: " << FormatDouble(density * 100.0, 3) << "%\n"
     << "user activity: mean " << FormatDouble(mean_user_activity, 1)
     << ", max " << FormatDouble(max_user_activity, 0) << ", gini "
     << FormatDouble(user_activity_gini, 3) << "\n"
     << "item popularity: mean " << FormatDouble(mean_item_popularity, 1)
     << ", max " << FormatDouble(max_item_popularity, 0) << ", gini "
     << FormatDouble(item_popularity_gini, 3) << ", top-10% share "
     << FormatDouble(top10pct_item_share * 100.0, 1) << "%";
  return os.str();
}

}  // namespace clapf
