#include "clapf/data/dataset_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "clapf/data/dataset_builder.h"

namespace clapf {

namespace {

constexpr char kMagic[4] = {'C', 'L', 'D', 'S'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, dataset.num_users());
  WritePod(out, dataset.num_items());
  const int64_t nnz = dataset.num_interactions();
  WritePod(out, nnz);
  const auto& offsets = dataset.offsets();
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(int64_t)));
  const auto& items = dataset.flat_items();
  out.write(reinterpret_cast<const char*>(items.data()),
            static_cast<std::streamsize>(items.size() * sizeof(ItemId)));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::Corruption("unsupported dataset version in " + path);
  }
  int32_t num_users = 0, num_items = 0;
  int64_t nnz = 0;
  if (!ReadPod(in, &num_users) || !ReadPod(in, &num_items) ||
      !ReadPod(in, &nnz)) {
    return Status::Corruption("truncated header in " + path);
  }
  if (num_users < 0 || num_items < 0 || nnz < 0) {
    return Status::Corruption("invalid dimensions in " + path);
  }

  std::vector<int64_t> offsets(static_cast<size_t>(num_users) + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(int64_t)));
  if (!in) return Status::Corruption("truncated offsets in " + path);
  if (offsets.front() != 0 || offsets.back() != nnz) {
    return Status::Corruption("inconsistent CSR offsets in " + path);
  }
  for (size_t u = 1; u < offsets.size(); ++u) {
    if (offsets[u] < offsets[u - 1]) {
      return Status::Corruption("non-monotonic CSR offsets in " + path);
    }
  }
  std::vector<ItemId> items(static_cast<size_t>(nnz));
  in.read(reinterpret_cast<char*>(items.data()),
          static_cast<std::streamsize>(items.size() * sizeof(ItemId)));
  if (!in) return Status::Corruption("truncated items in " + path);

  DatasetBuilder builder(num_users, num_items);
  for (int32_t u = 0; u < num_users; ++u) {
    for (int64_t p = offsets[static_cast<size_t>(u)];
         p < offsets[static_cast<size_t>(u) + 1]; ++p) {
      CLAPF_RETURN_IF_ERROR(builder.Add(u, items[static_cast<size_t>(p)]));
    }
  }
  return builder.Build();
}

}  // namespace clapf
