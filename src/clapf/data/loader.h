#ifndef CLAPF_DATA_LOADER_H_
#define CLAPF_DATA_LOADER_H_

#include <string>

#include "clapf/data/dataset.h"
#include "clapf/util/status.h"

namespace clapf {

/// On-disk layout of a ratings/interactions file.
enum class FileFormat {
  /// "user<TAB>item<TAB>rating<TAB>timestamp" — MovieLens 100K u.data.
  kTabSeparated,
  /// "user::item::rating::timestamp" — MovieLens 1M ratings.dat.
  kDoubleColon,
  /// "user,item,rating[,timestamp]" with optional header — MovieLens 20M.
  kCsv,
  /// "user<WS>item" pairs only, already implicit.
  kPairs,
};

/// Options controlling how raw ratings become implicit feedback.
struct LoadOptions {
  FileFormat format = FileFormat::kTabSeparated;
  /// Ratings strictly greater than this are kept as positive feedback
  /// (the paper keeps ratings > 3). Ignored for kPairs.
  double rating_threshold = 3.0;
  /// Skip the first line (CSV header).
  bool has_header = false;
  /// Malformed rows tolerated before the load fails. Each tolerated row is
  /// skipped with a warning; row `max_bad_lines + 1` turns the load into
  /// `Status::Corruption` carrying the offending line number. 0 (the
  /// default) fails on the first bad row.
  int64_t max_bad_lines = 0;
};

/// Loads an interactions file and binarizes it per `options`. Raw user/item
/// ids are remapped to dense indices in first-seen order; the mapping is not
/// retained (ranking experiments only need the dense matrix). Malformed rows
/// (wrong field count, unparsable ids or ratings) produce
/// `Status::Corruption` with the 1-based line number unless covered by
/// `options.max_bad_lines`.
Result<Dataset> LoadInteractions(const std::string& path,
                                 const LoadOptions& options);

/// Writes `dataset` as "user<TAB>item" pairs so external tools can consume it.
Status SaveAsPairs(const Dataset& dataset, const std::string& path);

}  // namespace clapf

#endif  // CLAPF_DATA_LOADER_H_
