#include "clapf/data/dataset.h"

#include <algorithm>
#include <sstream>

#include "clapf/util/logging.h"
#include "clapf/util/string_util.h"

namespace clapf {

double Dataset::Density() const {
  if (num_users_ == 0 || num_items_ == 0) return 0.0;
  return static_cast<double>(num_interactions()) /
         (static_cast<double>(num_users_) * static_cast<double>(num_items_));
}

bool Dataset::IsObserved(UserId u, ItemId i) const {
  auto items = ItemsOf(u);
  return std::binary_search(items.begin(), items.end(), i);
}

int32_t Dataset::NumActiveUsers() const {
  int32_t active = 0;
  for (UserId u = 0; u < num_users_; ++u) {
    if (NumItemsOf(u) > 0) ++active;
  }
  return active;
}

std::vector<int64_t> Dataset::ItemPopularity() const {
  std::vector<int64_t> pop(num_items_, 0);
  for (ItemId i : items_) ++pop[i];
  return pop;
}

Dataset Dataset::SliceItemRange(const Dataset& data, ItemId begin,
                                ItemId end) {
  CLAPF_CHECK(begin >= 0 && begin <= end && end <= data.num_items_);
  Dataset out;
  out.num_users_ = data.num_users_;
  out.num_items_ = end - begin;
  out.offsets_.assign(1, 0);
  out.offsets_.reserve(static_cast<size_t>(data.num_users_) + 1);
  for (UserId u = 0; u < data.num_users_; ++u) {
    auto items = data.ItemsOf(u);
    // Items are sorted per user, so the slice is one contiguous subrange.
    auto lo = std::lower_bound(items.begin(), items.end(), begin);
    auto hi = std::lower_bound(items.begin(), items.end(), end);
    for (auto it = lo; it != hi; ++it) {
      out.items_.push_back(*it - begin);
    }
    out.offsets_.push_back(static_cast<int64_t>(out.items_.size()));
  }
  return out;
}

std::string Dataset::Summary() const {
  std::ostringstream os;
  os << "Dataset(n=" << num_users_ << ", m=" << num_items_
     << ", |P|=" << num_interactions()
     << ", density=" << FormatDouble(Density() * 100.0, 3) << "%)";
  return os.str();
}

}  // namespace clapf
