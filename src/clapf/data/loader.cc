#include "clapf/data/loader.h"

#include <fstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clapf/data/dataset_builder.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/string_util.h"

namespace clapf {

namespace {

// Splits one record into fields according to the file format.
Result<std::vector<std::string>> SplitRecord(const std::string& line,
                                             FileFormat format) {
  switch (format) {
    case FileFormat::kTabSeparated:
      return Split(line, '\t');
    case FileFormat::kDoubleColon: {
      std::vector<std::string> fields;
      size_t start = 0;
      while (true) {
        size_t pos = line.find("::", start);
        if (pos == std::string::npos) {
          fields.emplace_back(line.substr(start));
          break;
        }
        fields.emplace_back(line.substr(start, pos - start));
        start = pos + 2;
      }
      return fields;
    }
    case FileFormat::kCsv:
      return Split(line, ',');
    case FileFormat::kPairs:
      return SplitWhitespace(line);
  }
  return Status::InvalidArgument("unknown file format");
}

}  // namespace

Result<Dataset> LoadInteractions(const std::string& path,
                                 const LoadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  std::unordered_map<int64_t, UserId> user_map;
  std::unordered_map<int64_t, ItemId> item_map;
  std::vector<std::pair<UserId, ItemId>> pairs;

  FaultInjector& faults = FaultInjector::Instance();

  std::string line;
  bool first = true;
  int64_t line_no = 0;
  int64_t bad_lines = 0;
  // Every malformed row funnels through here: tolerated rows (up to
  // `max_bad_lines`) are skipped with a warning, the next one fails the
  // whole load with a line-numbered Corruption status.
  auto bad_line = [&](const std::string& what) -> Status {
    Status corrupt = Status::Corruption("line " + std::to_string(line_no) +
                                        " in " + path + ": " + what);
    if (bad_lines < options.max_bad_lines) {
      ++bad_lines;
      CLAPF_LOG(Warning) << "skipping malformed row (" << bad_lines << "/"
                         << options.max_bad_lines
                         << " tolerated): " << corrupt.message();
      return Status::OK();
    }
    return corrupt;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (first && options.has_header) {
      first = false;
      continue;
    }
    first = false;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;

    if (faults.armed() && faults.ShouldFire(FaultPoint::kLoaderBadLine)) {
      CLAPF_RETURN_IF_ERROR(bad_line("injected malformed row"));
      continue;
    }

    auto fields = SplitRecord(std::string(trimmed), options.format);
    if (!fields.ok()) return fields.status();
    size_t required = options.format == FileFormat::kPairs ? 2 : 3;
    if (fields->size() < required) {
      CLAPF_RETURN_IF_ERROR(bad_line("expected at least " +
                                     std::to_string(required) + " fields"));
      continue;
    }

    auto raw_user = ParseInt64((*fields)[0]);
    auto raw_item = ParseInt64((*fields)[1]);
    if (!raw_user.ok()) {
      CLAPF_RETURN_IF_ERROR(
          bad_line("bad user id: " + raw_user.status().message()));
      continue;
    }
    if (!raw_item.ok()) {
      CLAPF_RETURN_IF_ERROR(
          bad_line("bad item id: " + raw_item.status().message()));
      continue;
    }

    if (options.format != FileFormat::kPairs) {
      auto rating = ParseDouble((*fields)[2]);
      if (!rating.ok()) {
        CLAPF_RETURN_IF_ERROR(
            bad_line("bad rating: " + rating.status().message()));
        continue;
      }
      // The paper keeps only ratings > threshold as positive feedback.
      if (*rating <= options.rating_threshold) continue;
    }

    auto [uit, u_inserted] = user_map.try_emplace(
        *raw_user, static_cast<UserId>(user_map.size()));
    auto [iit, i_inserted] = item_map.try_emplace(
        *raw_item, static_cast<ItemId>(item_map.size()));
    (void)u_inserted;
    (void)i_inserted;
    pairs.emplace_back(uit->second, iit->second);
  }

  DatasetBuilder builder(static_cast<int32_t>(user_map.size()),
                         static_cast<int32_t>(item_map.size()));
  CLAPF_RETURN_IF_ERROR(builder.AddAll(pairs));
  return builder.Build();
}

Status SaveAsPairs(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    for (ItemId i : dataset.ItemsOf(u)) {
      out << u << '\t' << i << '\n';
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace clapf
