#ifndef CLAPF_DATA_SPLIT_H_
#define CLAPF_DATA_SPLIT_H_

#include <cstdint>

#include "clapf/data/dataset.h"

namespace clapf {

/// A train/test partition of a dataset's observed pairs. Both halves share
/// the original matrix dimensions so item/user ids stay aligned.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Randomly assigns each observed pair to train with probability
/// `train_fraction`, the rest to test — the paper's protocol ("randomly split
/// half of the observed user-item pairs as training data, the rest as test").
/// Deterministic given `seed`.
TrainTestSplit SplitRandom(const Dataset& dataset, double train_fraction,
                           uint64_t seed);

/// A train/validation partition where validation holds exactly one pair per
/// user (the paper: "randomly take one user-item pair for each user from the
/// training data to construct a validation set"). Users with fewer than two
/// training items contribute nothing to validation (they keep their items for
/// training).
struct TrainValidationSplit {
  Dataset train;
  Dataset validation;
};

/// Extracts the leave-one-out validation split. Deterministic given `seed`.
TrainValidationSplit HoldOutOnePerUser(const Dataset& train, uint64_t seed);

}  // namespace clapf

#endif  // CLAPF_DATA_SPLIT_H_
