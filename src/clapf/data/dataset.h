#ifndef CLAPF_DATA_DATASET_H_
#define CLAPF_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace clapf {

/// User and item ids are dense 32-bit indices in [0, NumUsers()/NumItems()).
using UserId = int32_t;
using ItemId = int32_t;

/// Immutable implicit-feedback interaction store in CSR layout: for each user
/// the sorted list of observed (positive) items. This is the binary relevance
/// matrix Y of the paper; Y_ui = 1 iff `i` appears in ItemsOf(u).
///
/// Construction goes through DatasetBuilder (deduplicates, sorts, validates).
class Dataset {
 public:
  /// Empty dataset with fixed dimensions; used by DatasetBuilder.
  Dataset() = default;

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }

  /// Total number of observed user-item pairs (|P| in the paper's Table 1).
  int64_t num_interactions() const {
    return static_cast<int64_t>(items_.size());
  }

  /// Fraction of the n×m matrix that is observed.
  double Density() const;

  /// Sorted observed items of user `u` (the set I_u^+). The span is valid as
  /// long as the Dataset is alive.
  std::span<const ItemId> ItemsOf(UserId u) const {
    return std::span<const ItemId>(items_.data() + offsets_[u],
                                   items_.data() + offsets_[u + 1]);
  }

  /// |I_u^+|, the user's activity n_u^+.
  int32_t NumItemsOf(UserId u) const {
    return static_cast<int32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// True iff (u, i) is an observed interaction. O(log |I_u^+|).
  bool IsObserved(UserId u, ItemId i) const;

  /// Number of users with at least one observed item.
  int32_t NumActiveUsers() const;

  /// Item popularity counts: result[i] = number of users who interacted
  /// with item i.
  std::vector<int64_t> ItemPopularity() const;

  /// Flat (user, item) pair view, grouped by user; pair p belongs to the user
  /// whose offset range contains p.
  const std::vector<ItemId>& flat_items() const { return items_; }
  const std::vector<int64_t>& offsets() const { return offsets_; }

  /// One-line summary for logs: "Dataset(n=..., m=..., |P|=..., density=..)".
  std::string Summary() const;

  /// Copy of `data` restricted to the item range [begin, end): every user is
  /// kept, items outside the range are dropped, and surviving item ids are
  /// renumbered to [0, end - begin). Because each user's items are stored
  /// sorted, slicing preserves per-user order, so a contiguous catalog
  /// partition reassembles to exactly the original dataset. This is the
  /// history projection behind per-shard serving state.
  static Dataset SliceItemRange(const Dataset& data, ItemId begin, ItemId end);

 private:
  friend class DatasetBuilder;

  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  std::vector<int64_t> offsets_;  // size num_users_ + 1
  std::vector<ItemId> items_;     // sorted within each user range
};

}  // namespace clapf

#endif  // CLAPF_DATA_DATASET_H_
