#include "clapf/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "clapf/data/dataset_builder.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"
#include "clapf/util/string_util.h"

namespace clapf {

namespace {

// Samples one index from the categorical distribution whose inclusive prefix
// sums are `cdf` (unnormalized); `total` is cdf.back().
size_t SampleFromCdf(const std::vector<double>& cdf, double total, Rng& rng) {
  double r = rng.NextDouble() * total;
  auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
  if (it == cdf.end()) return cdf.size() - 1;
  return static_cast<size_t>(it - cdf.begin());
}

}  // namespace

double SyntheticGroundTruth::Affinity(UserId u, ItemId i) const {
  const double* uf = &user_factors[static_cast<size_t>(u) * num_factors];
  const double* vf = &item_factors[static_cast<size_t>(i) * num_factors];
  double s = 0.0;
  for (int32_t f = 0; f < num_factors; ++f) s += uf[f] * vf[f];
  return s;
}

Result<Dataset> GenerateSynthetic(const SyntheticConfig& config,
                                  SyntheticGroundTruth* ground_truth) {
  const int64_t n = config.num_users;
  const int64_t m = config.num_items;
  if (n <= 0 || m <= 0) {
    return Status::InvalidArgument("dimensions must be positive");
  }
  if (config.num_interactions < 0 || config.num_interactions > n * m) {
    return Status::InvalidArgument("num_interactions must be in [0, n*m]");
  }
  if (config.ground_truth_factors <= 0) {
    return Status::InvalidArgument("ground_truth_factors must be positive");
  }
  if (config.popularity_mix < 0.0 || config.popularity_mix > 1.0) {
    return Status::InvalidArgument("popularity_mix must be in [0, 1]");
  }

  Rng rng(config.seed);
  const int32_t d = config.ground_truth_factors;
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));

  // Ground-truth latent preference model. With taste clusters, users are
  // noisy copies of one of `taste_clusters` centroids — the genre structure
  // that separates personalized models from popularity ranking.
  std::vector<double> user_factors(static_cast<size_t>(n) * d);
  std::vector<double> item_factors(static_cast<size_t>(m) * d);
  if (config.taste_clusters > 0) {
    std::vector<double> centroids(
        static_cast<size_t>(config.taste_clusters) * d);
    for (double& x : centroids) x = rng.NextGaussian() * inv_sqrt_d;
    for (int64_t u = 0; u < n; ++u) {
      const size_t c = static_cast<size_t>(
          rng.Uniform(static_cast<uint64_t>(config.taste_clusters)));
      for (int32_t f = 0; f < d; ++f) {
        user_factors[static_cast<size_t>(u) * d + f] =
            centroids[c * d + f] +
            config.cluster_noise * rng.NextGaussian() * inv_sqrt_d;
      }
    }
  } else {
    for (double& x : user_factors) x = rng.NextGaussian() * inv_sqrt_d;
  }
  for (double& x : item_factors) x = rng.NextGaussian() * inv_sqrt_d;

  // Long-tail item popularity: Zipf over a random permutation of items so
  // popularity is independent of item id.
  std::vector<int32_t> perm(static_cast<size_t>(m));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  std::vector<double> popularity(static_cast<size_t>(m));
  double pop_sum = 0.0;
  for (size_t rank = 0; rank < perm.size(); ++rank) {
    double w = std::pow(static_cast<double>(rank + 1),
                        -config.popularity_exponent);
    popularity[static_cast<size_t>(perm[rank])] = w;
    pop_sum += w;
  }
  for (double& w : popularity) w /= pop_sum;

  // Per-user activity budget with log-normal skew, scaled to hit the target
  // interaction count.
  std::vector<double> activity(static_cast<size_t>(n));
  double act_sum = 0.0;
  for (double& a : activity) {
    a = std::exp(rng.NextGaussian() * config.activity_sigma);
    act_sum += a;
  }
  std::vector<int64_t> budget(static_cast<size_t>(n));
  int64_t assigned = 0;
  for (size_t u = 0; u < activity.size(); ++u) {
    int64_t k = std::llround(activity[u] / act_sum *
                             static_cast<double>(config.num_interactions));
    k = std::clamp<int64_t>(k, config.num_interactions > 0 ? 1 : 0, m);
    budget[u] = k;
    assigned += k;
  }
  // Nudge budgets until the total matches the target.
  size_t cursor = 0;
  while (assigned != config.num_interactions && n > 0) {
    size_t u = cursor++ % static_cast<size_t>(n);
    if (assigned < config.num_interactions && budget[u] < m) {
      ++budget[u];
      ++assigned;
    } else if (assigned > config.num_interactions && budget[u] > 1) {
      --budget[u];
      --assigned;
    }
    if (cursor > static_cast<size_t>(4 * n * std::max<int64_t>(m, 1))) break;
  }

  DatasetBuilder builder(config.num_users, config.num_items);
  std::vector<double> cdf(static_cast<size_t>(m));
  std::vector<double> affinity(static_cast<size_t>(m));
  std::vector<bool> taken(static_cast<size_t>(m));

  for (int64_t u = 0; u < n; ++u) {
    if (budget[static_cast<size_t>(u)] == 0) continue;
    // Personal affinity distribution: softmax of the ground-truth scores,
    // standardized per user so affinity_sharpness directly sets the logit
    // spread (and hence how concentrated the user's taste is).
    const double* uf = &user_factors[static_cast<size_t>(u) * d];
    double mean = 0.0;
    double sq = 0.0;
    for (int64_t i = 0; i < m; ++i) {
      const double* vf = &item_factors[static_cast<size_t>(i) * d];
      double s = 0.0;
      for (int32_t f = 0; f < d; ++f) s += uf[f] * vf[f];
      affinity[static_cast<size_t>(i)] = s;
      mean += s;
      sq += s * s;
    }
    mean /= static_cast<double>(m);
    const double stddev =
        std::sqrt(std::max(sq / static_cast<double>(m) - mean * mean, 1e-12));
    double max_score = -1e300;
    for (int64_t i = 0; i < m; ++i) {
      double z = config.affinity_sharpness *
                 (affinity[static_cast<size_t>(i)] - mean) / stddev;
      affinity[static_cast<size_t>(i)] = z;
      max_score = std::max(max_score, z);
    }
    double soft_sum = 0.0;
    for (int64_t i = 0; i < m; ++i) {
      affinity[static_cast<size_t>(i)] =
          std::exp(affinity[static_cast<size_t>(i)] - max_score);
      soft_sum += affinity[static_cast<size_t>(i)];
    }
    // Mixture of popularity and personal taste, as inclusive prefix sums.
    double total = 0.0;
    for (int64_t i = 0; i < m; ++i) {
      double p = config.popularity_mix * popularity[static_cast<size_t>(i)] +
                 (1.0 - config.popularity_mix) *
                     affinity[static_cast<size_t>(i)] / soft_sum;
      total += p;
      cdf[static_cast<size_t>(i)] = total;
    }

    std::fill(taken.begin(), taken.end(), false);
    int64_t want = budget[static_cast<size_t>(u)];
    int64_t got = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = 50 * want + 100;
    while (got < want && attempts < max_attempts) {
      ++attempts;
      size_t i = SampleFromCdf(cdf, total, rng);
      if (taken[i]) continue;
      taken[i] = true;
      CLAPF_CHECK_OK(builder.Add(static_cast<UserId>(u),
                                 static_cast<ItemId>(i)));
      ++got;
    }
    // Rejection stalled (tiny item pools): fill with uniform unseen items.
    while (got < want) {
      size_t i = static_cast<size_t>(rng.Uniform(static_cast<uint64_t>(m)));
      if (taken[i]) continue;
      taken[i] = true;
      CLAPF_CHECK_OK(builder.Add(static_cast<UserId>(u),
                                 static_cast<ItemId>(i)));
      ++got;
    }
  }

  if (ground_truth != nullptr) {
    ground_truth->num_factors = d;
    ground_truth->user_factors = std::move(user_factors);
    ground_truth->item_factors = std::move(item_factors);
  }
  return builder.Build();
}

std::vector<DatasetPreset> AllDatasetPresets() {
  return {DatasetPreset::kMl100k, DatasetPreset::kMl1m,
          DatasetPreset::kUserTag, DatasetPreset::kMl20m,
          DatasetPreset::kFlixter, DatasetPreset::kNetflix};
}

SyntheticConfig PresetConfig(DatasetPreset preset, uint64_t seed_offset) {
  SyntheticConfig c;
  switch (preset) {
    case DatasetPreset::kMl100k:
      // Full scale: 943 x 1682, |P|+|P_te| = 55,375, density 3.49%.
      c = {.num_users = 943, .num_items = 1682, .num_interactions = 55375,
           .seed = 100};
      c.name = "ML100K-sim";
      break;
    case DatasetPreset::kMl1m:
      // Real: 6040 x 3952, density 2.41%, ~95 items/user. Users scaled to
      // 1000; density and mean activity preserved.
      c = {.num_users = 1000, .num_items = 3952, .num_interactions = 95240,
           .seed = 200};
      c.name = "ML1M-sim";
      break;
    case DatasetPreset::kUserTag:
      // Real: 3000 users x 2000 tags, density 4.11%, ~82 tags/user. Users
      // scaled to 800.
      c = {.num_users = 800, .num_items = 2000, .num_interactions = 65700,
           .seed = 300};
      c.name = "UserTag-sim";
      break;
    case DatasetPreset::kMl20m:
      // Real (after the paper's subsampling): density 0.11%, ~8.4 items/user.
      c = {.num_users = 1500, .num_items = 7627, .num_interactions = 12572,
           .seed = 400};
      c.name = "ML20M-sim";
      break;
    case DatasetPreset::kFlixter:
      // Real: density 0.02%, ~4.3 items/user — extreme sparsity preserved.
      c = {.num_users = 1200, .num_items = 21574, .num_interactions = 5181,
           .seed = 500};
      c.name = "Flixter-sim";
      break;
    case DatasetPreset::kNetflix:
      // Real: density 0.23%, ~19 items/user.
      c = {.num_users = 1500, .num_items = 8251, .num_interactions = 28473,
           .seed = 600};
      c.name = "Netflix-sim";
      break;
  }
  // Calibrated so the method ordering of the paper's Table 2 is resolvable:
  // a low-rank ground truth concentrates co-support, making personalization
  // learnable from each user's modest history (see DESIGN.md §4); popularity
  // contributes but does not dominate the head.
  c.ground_truth_factors = 3;
  c.popularity_mix = 0.3;
  c.affinity_sharpness = 3.0;
  c.taste_clusters = 0;
  c.seed += seed_offset;
  return c;
}

std::string PresetName(DatasetPreset preset) {
  return PresetConfig(preset).name;
}

Result<DatasetPreset> ParsePresetName(const std::string& name) {
  std::string key = ToLower(name);
  auto strip = [&](const std::string& suffix) {
    if (EndsWith(key, suffix)) key = key.substr(0, key.size() - suffix.size());
  };
  strip("-sim");
  for (DatasetPreset p : AllDatasetPresets()) {
    std::string candidate = ToLower(PresetName(p));
    if (EndsWith(candidate, "-sim")) {
      candidate = candidate.substr(0, candidate.size() - 4);
    }
    if (candidate == key) return p;
  }
  return Status::NotFound("unknown dataset preset: " + name);
}

}  // namespace clapf
