#ifndef CLAPF_DATA_DATASET_BUILDER_H_
#define CLAPF_DATA_DATASET_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/util/status.h"

namespace clapf {

/// Accumulates (user, item) interactions and freezes them into a Dataset.
/// Duplicates are collapsed; ids must already be dense indices within the
/// declared dimensions.
class DatasetBuilder {
 public:
  /// Declares the matrix dimensions; pairs outside them are rejected.
  DatasetBuilder(int32_t num_users, int32_t num_items);

  /// Adds one observed interaction. Returns InvalidArgument when (u, i) is
  /// out of the declared range.
  Status Add(UserId u, ItemId i);

  /// Adds many pairs; stops at the first invalid one.
  Status AddAll(const std::vector<std::pair<UserId, ItemId>>& pairs);

  int64_t num_added() const { return static_cast<int64_t>(pairs_.size()); }

  /// Sorts, deduplicates, and produces the immutable Dataset. The builder is
  /// left empty and can be reused.
  Dataset Build();

 private:
  int32_t num_users_;
  int32_t num_items_;
  std::vector<std::pair<UserId, ItemId>> pairs_;
};

}  // namespace clapf

#endif  // CLAPF_DATA_DATASET_BUILDER_H_
