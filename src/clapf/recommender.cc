#include "clapf/recommender.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>

#include "clapf/core/ranker.h"
#include "clapf/model/model_io.h"
#include "clapf/model/score_kernel.h"
#include "clapf/obs/trace_span.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/thread_pool.h"

namespace clapf {

namespace {

// How long an injected kServeSlowBlock stall parks the scoring loop. Long
// enough that a sub-millisecond test deadline deterministically expires.
constexpr std::chrono::milliseconds kSlowBlockStall(2);

using Clock = std::chrono::steady_clock;

std::optional<Clock::time_point> DeadlineFrom(const QueryOptions& options) {
  if (options.deadline <= std::chrono::microseconds::zero()) {
    return std::nullopt;
  }
  return Clock::now() + options.deadline;
}

// Per-thread query scratch. Reusing the buffers across queries (and across
// users within a batch shard) removes the per-query resize allocation from
// the serving hot path; after the first query on a thread the only O(m) work
// left outside scoring is the excluded-bitmap reset.
struct QueryArena {
  std::vector<double> scores;
  std::vector<bool> excluded;
};

QueryArena& LocalArena() {
  thread_local QueryArena arena;
  return arena;
}

// Results are sorted best-to-worst, so the floor cuts a suffix.
void ApplyMinScore(const std::optional<double>& floor,
                   std::vector<ScoredItem>* top) {
  if (!floor) return;
  auto first_below =
      std::find_if(top->begin(), top->end(),
                   [&](const ScoredItem& s) { return s.score < *floor; });
  top->erase(first_below, top->end());
}

}  // namespace

Recommender::Recommender(FactorModel model, Dataset history)
    : model_(std::move(model)), history_(std::move(history)) {
  auto counts = history_.ItemPopularity();
  popularity_.assign(counts.begin(), counts.end());
}

Result<Recommender> Recommender::Create(FactorModel model, Dataset history) {
  if (model.num_users() != history.num_users() ||
      model.num_items() != history.num_items()) {
    return Status::InvalidArgument(
        "model and history dimensions disagree: model " +
        std::to_string(model.num_users()) + "x" +
        std::to_string(model.num_items()) + ", history " +
        std::to_string(history.num_users()) + "x" +
        std::to_string(history.num_items()));
  }
  return Recommender(std::move(model), std::move(history));
}

Result<Recommender> Recommender::Load(const std::string& model_path,
                                      Dataset history) {
  auto model = LoadModel(model_path);
  if (!model.ok()) return model.status();
  return Create(*std::move(model), std::move(history));
}

Result<std::vector<ScoredItem>> Recommender::RecommendOne(
    UserId u, size_t k, const QueryOptions& options,
    const std::optional<Clock::time_point>& deadline,
    std::vector<double>* score_buf, std::vector<bool>* excluded) const {
  k = ClampK(k, model_.num_items());
  if (k == 0) return std::vector<ScoredItem>{};

  const bool cold = history_.NumItemsOf(u) == 0;
  if (cold && !options.cold_start_fallback) return std::vector<ScoredItem>{};

  excluded->assign(static_cast<size_t>(model_.num_items()), false);
  for (ItemId i : history_.ItemsOf(u)) {
    (*excluded)[static_cast<size_t>(i)] = true;
  }
  for (ItemId i : options.exclude) {
    if (i >= 0 && i < model_.num_items()) {
      (*excluded)[static_cast<size_t>(i)] = true;
    }
  }

  // ANN fast path: probe-list selection over the IVF index, then the exact
  // fused kernel re-ranks only the shortlisted cluster ranges — sub-linear
  // in the catalog. min_items inflates the widening floor by everything the
  // scan may skip (history + explicit excludes), so the shortlist can always
  // fill k slots and the result count matches the full scan's. Chunked like
  // the packed path below, with the same per-chunk fault injection and
  // deadline polling.
  if (!cold && options.ann && options.use_packed && ivf_ != nullptr &&
      ivf_->num_items() == model_.num_items()) {
    const IvfIndex& ivf = *ivf_;
    FaultInjector& faults = FaultInjector::Instance();
    thread_local std::vector<IvfProbeRange> probes;
    const size_t min_items =
        k + static_cast<size_t>(history_.NumItemsOf(u)) +
        options.exclude.size();
    int32_t probes_used = 0;
    ivf.SelectProbes(u, options.ann_nprobe, min_items, &probes, &probes_used);
    if (ann_queries_metric_ != nullptr) {
      ann_queries_metric_->Inc();
      ann_probes_metric_->Inc(probes_used);
      ann_shortlist_hist_->Record(
          static_cast<double>(IvfIndex::CoveredItems(probes)));
    }

    // Quantized first pass (pq): stream the int8 codes over the shortlist,
    // keep the top rerank_budget survivors, and narrow the exact re-rank
    // below to just the blocks holding them. Exclusions are applied during
    // the quantized scan (they never consume budget); min_score, deadline,
    // and the smaller-id tie-break all live in the exact re-rank, which is
    // the same fused mapped kernel as the plain ANN path.
    const bool pq = options.pq && ivf.has_pq();
    thread_local std::vector<IvfProbeRange> rerank_ranges;
    const std::vector<IvfProbeRange>* scan_ranges = &probes;
    if (pq) {
      size_t budget = options.rerank_budget > 0
                          ? static_cast<size_t>(options.rerank_budget)
                          : static_cast<size_t>(std::max<int32_t>(
                                1, ivf.default_rerank_budget()));
      budget = std::max(budget, k);
      int64_t survivors = 0;
      Status first = ivf.QuantizedShortlist(u, probes, budget, excluded,
                                            deadline, &rerank_ranges,
                                            &survivors);
      if (!first.ok()) return first;
      if (ann_pq_queries_metric_ != nullptr) {
        ann_pq_queries_metric_->Inc();
        ann_rerank_hist_->Record(static_cast<double>(survivors));
      }
      scan_ranges = &rerank_ranges;
    } else if (options.pq && ann_pq_fallback_metric_ != nullptr) {
      // pq requested but the index carries no codes — plain ANN serves.
      ann_pq_fallback_metric_->Inc();
    }

    TopKAccumulator acc(k);
    ItemId scanned = 0;
    for (size_t ri = 0; ri < scan_ranges->size(); ++ri) {
      // Sparse pq re-rank ranges each start on a cold block; prefetching a
      // few ranges ahead overlaps those misses with scoring. (Plain ANN's
      // handful of huge ranges is unaffected.)
      if (ri + 3 < scan_ranges->size()) {
        ivf.PrefetchRange((*scan_ranges)[ri + 3]);
      }
      const IvfProbeRange& r = (*scan_ranges)[ri];
      for (ItemId lo = r.begin; lo < r.end; lo += kRankerBlockItems) {
        const ItemId hi = std::min<ItemId>(r.end, lo + kRankerBlockItems);
        if (faults.armed() && faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
          std::this_thread::sleep_for(kSlowBlockStall);
        }
        ScoreBlocksTopKMapped(ivf.packed(), u, lo, hi,
                              ivf.local_to_global_data(), excluded, &acc);
        scanned += hi - lo;
        if (deadline && Clock::now() > *deadline) {
          return Status::DeadlineExceeded(
              "ann query for user " + std::to_string(u) +
              " expired after scoring " + std::to_string(scanned) +
              " shortlisted items");
        }
      }
    }
    std::vector<ScoredItem> top = acc.Take();
    ApplyMinScore(options.min_score, &top);
    return top;
  }
  if (!cold && options.ann && options.use_packed &&
      ann_fallback_metric_ != nullptr) {
    // ANN requested but no (usable) index — serve the full scan instead.
    ann_fallback_metric_->Inc();
  }

  // Packed fast path: fused score + top-k over the SIMD snapshot. Never
  // materializes the score vector — each kRankerBlockItems chunk is scored
  // blockwise into the accumulator with threshold early-reject. Mirrors the
  // exact path's fault-injection and deadline polling per chunk, so serving
  // resilience behaves identically in both modes.
  if (!cold && options.use_packed && packed_ != nullptr) {
    const PackedSnapshot& packed = *packed_;
    FaultInjector& faults = FaultInjector::Instance();
    TopKAccumulator acc(k);
    for (ItemId lo = 0; lo < packed.num_items(); lo += kRankerBlockItems) {
      const ItemId hi =
          std::min<ItemId>(packed.num_items(), lo + kRankerBlockItems);
      if (faults.armed() && faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
        std::this_thread::sleep_for(kSlowBlockStall);
      }
      ScoreBlocksTopK(packed, u, lo, hi, excluded, &acc);
      if (deadline && Clock::now() > *deadline) {
        return Status::DeadlineExceeded(
            "query for user " + std::to_string(u) + " expired after scoring " +
            std::to_string(hi) + "/" + std::to_string(packed.num_items()) +
            " items");
      }
    }
    std::vector<ScoredItem> top = acc.Take();
    ApplyMinScore(options.min_score, &top);
    return top;
  }

  // Cold-start: rank by popularity straight from the shared table, no copy
  // (and no per-block deadline polling — there is no scoring work to bound).
  const std::vector<double>* scores = &popularity_;
  if (!cold) {
    score_buf->resize(static_cast<size_t>(model_.num_items()));
    FaultInjector& faults = FaultInjector::Instance();
    for (ItemId lo = 0; lo < model_.num_items(); lo += kRankerBlockItems) {
      const ItemId hi =
          std::min<ItemId>(model_.num_items(), lo + kRankerBlockItems);
      if (faults.armed() &&
          faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
        std::this_thread::sleep_for(kSlowBlockStall);
      }
      model_.ScoreItemRange(u, lo, hi, score_buf);
      if (deadline && Clock::now() > *deadline) {
        return Status::DeadlineExceeded(
            "query for user " + std::to_string(u) + " expired after scoring " +
            std::to_string(hi) + "/" + std::to_string(model_.num_items()) +
            " items");
      }
    }
    scores = score_buf;
  }
  std::vector<ScoredItem> top = SelectTopK(*scores, *excluded, k);
  ApplyMinScore(options.min_score, &top);
  return top;
}

Status Recommender::EnablePacked(int32_t verify_sample_users) {
  auto packed = std::make_shared<PackedSnapshot>(PackedSnapshot::Build(model_));
  if (verify_sample_users > 0) {
    Status agree = VerifyPackedAgreement(model_, *packed, verify_sample_users,
                                         "EnablePacked");
    if (!agree.ok()) return agree;
  }
  packed_ = std::move(packed);
  return Status::OK();
}

void Recommender::AdoptPacked(std::shared_ptr<const PackedSnapshot> packed) {
  packed_ = std::move(packed);
}

Status Recommender::EnableIvf(const IvfOptions& options,
                              int32_t verify_sample_users,
                              double verify_recall_floor, size_t recall_k) {
  if (packed_ == nullptr) {
    Status base = EnablePacked(0);
    if (!base.ok()) return base;
  }
  auto ivf = std::make_shared<IvfIndex>(IvfIndex::Build(model_, options));
  if (verify_sample_users > 0) {
    Status bind = VerifyIvfBinding(model_, *ivf, "EnableIvf");
    if (!bind.ok()) return bind;
    if (verify_recall_floor > 0.0) {
      // With pq on, gate the *composed* quantized+re-rank path — the one
      // that will actually serve — instead of the probe-only recall.
      Status recall =
          options.pq
              ? VerifyPqRecall(*packed_, *ivf, verify_sample_users, recall_k,
                               /*nprobe=*/0, /*rerank_budget=*/0,
                               verify_recall_floor, "EnableIvf")
              : VerifyIvfRecall(*packed_, *ivf, verify_sample_users, recall_k,
                                /*nprobe=*/0, verify_recall_floor,
                                "EnableIvf");
      if (!recall.ok()) return recall;
    }
  }
  ivf_ = std::move(ivf);
  return Status::OK();
}

void Recommender::AdoptIvf(std::shared_ptr<const IvfIndex> ivf) {
  ivf_ = std::move(ivf);
}

void Recommender::SetMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    queries_metric_ = nullptr;
    deadline_metric_ = nullptr;
    latency_metric_ = nullptr;
    ann_queries_metric_ = nullptr;
    ann_probes_metric_ = nullptr;
    ann_fallback_metric_ = nullptr;
    ann_pq_queries_metric_ = nullptr;
    ann_pq_fallback_metric_ = nullptr;
    ann_shortlist_hist_ = nullptr;
    ann_rerank_hist_ = nullptr;
    return;
  }
  queries_metric_ = registry->GetCounter("ranker.queries_total");
  deadline_metric_ = registry->GetCounter("ranker.deadline_exceeded_total");
  latency_metric_ =
      registry->GetHistogram("ranker.query.latency_us", LatencyBucketsUs());
  ann_queries_metric_ = registry->GetCounter("ann.queries_total");
  ann_probes_metric_ = registry->GetCounter("ann.probes_total");
  ann_fallback_metric_ = registry->GetCounter("ann.fallback_total");
  ann_pq_queries_metric_ = registry->GetCounter("ann.pq_queries_total");
  ann_pq_fallback_metric_ = registry->GetCounter("ann.pq_fallback_total");
  ann_shortlist_hist_ =
      registry->GetHistogram("ann.shortlist_size", DrawDepthBuckets());
  ann_rerank_hist_ =
      registry->GetHistogram("ann.rerank_survivors", DrawDepthBuckets());
}

Result<std::vector<ScoredItem>> Recommender::Recommend(
    UserId u, size_t k, const QueryOptions& options) const {
  if (u < 0 || u >= model_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  if (queries_metric_ != nullptr) queries_metric_->Inc();
  TraceSpan span(latency_metric_);
  QueryArena& arena = LocalArena();
  auto out = RecommendOne(u, k, options, DeadlineFrom(options), &arena.scores,
                          &arena.excluded);
  span.Stop();
  if (deadline_metric_ != nullptr &&
      out.status().code() == StatusCode::kDeadlineExceeded) {
    deadline_metric_->Inc();
  }
  return out;
}

Result<BatchReply> Recommender::RecommendBatchPartial(
    std::span<const UserId> users, size_t k,
    const QueryOptions& options) const {
  // Validate the whole batch before doing any scoring work so a bad id
  // cannot leave a half-filled result.
  for (UserId u : users) {
    if (u < 0 || u >= model_.num_users()) {
      return Status::OutOfRange("unknown user id " + std::to_string(u));
    }
  }
  BatchReply reply;
  reply.results.resize(users.size());
  reply.complete.assign(users.size(), 0);
  if (users.empty()) return reply;

  // One absolute deadline for the whole batch; an expiry seen by any shard
  // stops the others at their next user boundary.
  const std::optional<Clock::time_point> deadline = DeadlineFrom(options);
  std::atomic<bool> expired{false};

  auto run_range = [&](size_t lo, size_t hi, std::vector<double>* score_buf,
                       std::vector<bool>* excluded) {
    for (size_t i = lo; i < hi; ++i) {
      if (expired.load(std::memory_order_relaxed)) return;
      auto one =
          RecommendOne(users[i], k, options, deadline, score_buf, excluded);
      if (!one.ok()) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      reply.results[i] = *std::move(one);
      reply.complete[i] = 1;
    }
  };

  int threads = options.num_threads > 0
                    ? options.num_threads
                    : static_cast<int>(
                          std::max(1u, std::thread::hardware_concurrency()));
  threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), users.size()));

  if (threads == 1) {
    QueryArena& arena = LocalArena();
    run_range(0, users.size(), &arena.scores, &arena.excluded);
  } else {
    // Contiguous shards, one task per thread; each task uses its thread's
    // arena and writes disjoint result slots, so no synchronization beyond
    // the pool's completion barrier (and the shared expiry flag) is needed.
    ThreadPool pool(threads);
    const size_t shard = (users.size() + static_cast<size_t>(threads) - 1) /
                         static_cast<size_t>(threads);
    for (int t = 0; t < threads; ++t) {
      const size_t lo = static_cast<size_t>(t) * shard;
      const size_t hi = std::min(users.size(), lo + shard);
      if (lo >= hi) break;
      pool.Submit([&run_range, lo, hi] {
        QueryArena& arena = LocalArena();
        run_range(lo, hi, &arena.scores, &arena.excluded);
      });
    }
    pool.Wait();
  }

  for (uint8_t c : reply.complete) reply.num_complete += c;
  reply.deadline_exceeded = reply.num_complete < users.size();
  if (queries_metric_ != nullptr) {
    queries_metric_->Inc(static_cast<int64_t>(users.size()));
    if (reply.deadline_exceeded && deadline_metric_ != nullptr) {
      deadline_metric_->Inc();
    }
  }
  return reply;
}

Result<std::vector<std::vector<ScoredItem>>> Recommender::RecommendBatch(
    std::span<const UserId> users, size_t k,
    const QueryOptions& options) const {
  auto reply = RecommendBatchPartial(users, k, options);
  if (!reply.ok()) return reply.status();
  if (reply->deadline_exceeded) {
    return Status::DeadlineExceeded(
        "batch expired after " + std::to_string(reply->num_complete) + "/" +
        std::to_string(users.size()) + " users");
  }
  return std::move(reply->results);
}

Result<double> Recommender::Score(UserId u, ItemId i) const {
  if (u < 0 || u >= model_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  if (i < 0 || i >= model_.num_items()) {
    return Status::OutOfRange("unknown item id " + std::to_string(i));
  }
  return model_.Score(u, i);
}

Status Recommender::Save(const std::string& model_path) const {
  // Atomic publish: a crash mid-save can never leave a torn model file where
  // a serving process would pick it up.
  return SaveModelAtomic(model_, model_path);
}

}  // namespace clapf
