#include "clapf/recommender.h"

#include <string>
#include <utility>

#include "clapf/model/model_io.h"

namespace clapf {

Recommender::Recommender(FactorModel model, Dataset history)
    : model_(std::move(model)), history_(std::move(history)) {
  auto counts = history_.ItemPopularity();
  popularity_.assign(counts.begin(), counts.end());
}

Result<Recommender> Recommender::Create(FactorModel model, Dataset history) {
  if (model.num_users() != history.num_users() ||
      model.num_items() != history.num_items()) {
    return Status::InvalidArgument(
        "model and history dimensions disagree: model " +
        std::to_string(model.num_users()) + "x" +
        std::to_string(model.num_items()) + ", history " +
        std::to_string(history.num_users()) + "x" +
        std::to_string(history.num_items()));
  }
  return Recommender(std::move(model), std::move(history));
}

Result<Recommender> Recommender::Load(const std::string& model_path,
                                      Dataset history) {
  auto model = LoadModel(model_path);
  if (!model.ok()) return model.status();
  return Create(*std::move(model), std::move(history));
}

Result<std::vector<ScoredItem>> Recommender::Recommend(UserId u,
                                                       size_t k) const {
  return RecommendFiltered(u, k, {});
}

Result<std::vector<ScoredItem>> Recommender::RecommendFiltered(
    UserId u, size_t k, const std::vector<ItemId>& exclude) const {
  if (u < 0 || u >= model_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  if (k == 0) return std::vector<ScoredItem>{};

  std::vector<bool> excluded(static_cast<size_t>(model_.num_items()), false);
  for (ItemId i : history_.ItemsOf(u)) excluded[static_cast<size_t>(i)] = true;
  for (ItemId i : exclude) {
    if (i >= 0 && i < model_.num_items()) {
      excluded[static_cast<size_t>(i)] = true;
    }
  }

  const bool cold = history_.NumItemsOf(u) == 0;
  std::vector<double> scores;
  if (cold) {
    scores = popularity_;  // cold-start: popularity fallback
  } else {
    model_.ScoreAllItems(u, &scores);
  }
  return SelectTopK(scores, excluded, k);
}

Result<double> Recommender::Score(UserId u, ItemId i) const {
  if (u < 0 || u >= model_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  if (i < 0 || i >= model_.num_items()) {
    return Status::OutOfRange("unknown item id " + std::to_string(i));
  }
  return model_.Score(u, i);
}

Status Recommender::Save(const std::string& model_path) const {
  // Atomic publish: a crash mid-save can never leave a torn model file where
  // a serving process would pick it up.
  return SaveModelAtomic(model_, model_path);
}

}  // namespace clapf
