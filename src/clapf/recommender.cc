#include "clapf/recommender.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "clapf/model/model_io.h"
#include "clapf/util/thread_pool.h"

namespace clapf {

Recommender::Recommender(FactorModel model, Dataset history)
    : model_(std::move(model)), history_(std::move(history)) {
  auto counts = history_.ItemPopularity();
  popularity_.assign(counts.begin(), counts.end());
}

Result<Recommender> Recommender::Create(FactorModel model, Dataset history) {
  if (model.num_users() != history.num_users() ||
      model.num_items() != history.num_items()) {
    return Status::InvalidArgument(
        "model and history dimensions disagree: model " +
        std::to_string(model.num_users()) + "x" +
        std::to_string(model.num_items()) + ", history " +
        std::to_string(history.num_users()) + "x" +
        std::to_string(history.num_items()));
  }
  return Recommender(std::move(model), std::move(history));
}

Result<Recommender> Recommender::Load(const std::string& model_path,
                                      Dataset history) {
  auto model = LoadModel(model_path);
  if (!model.ok()) return model.status();
  return Create(*std::move(model), std::move(history));
}

std::vector<ScoredItem> Recommender::RecommendOne(
    UserId u, size_t k, const QueryOptions& options,
    std::vector<double>* score_buf, std::vector<bool>* excluded) const {
  if (k == 0) return {};

  const bool cold = history_.NumItemsOf(u) == 0;
  if (cold && !options.cold_start_fallback) return {};

  excluded->assign(static_cast<size_t>(model_.num_items()), false);
  for (ItemId i : history_.ItemsOf(u)) {
    (*excluded)[static_cast<size_t>(i)] = true;
  }
  for (ItemId i : options.exclude) {
    if (i >= 0 && i < model_.num_items()) {
      (*excluded)[static_cast<size_t>(i)] = true;
    }
  }

  // Cold-start: rank by popularity straight from the shared table, no copy.
  const std::vector<double>* scores = &popularity_;
  if (!cold) {
    model_.ScoreAllItems(u, score_buf);
    scores = score_buf;
  }
  std::vector<ScoredItem> top = SelectTopK(*scores, *excluded, k);
  if (options.min_score) {
    // Results are sorted best-to-worst, so the floor cuts a suffix.
    auto first_below = std::find_if(
        top.begin(), top.end(),
        [&](const ScoredItem& s) { return s.score < *options.min_score; });
    top.erase(first_below, top.end());
  }
  return top;
}

Result<std::vector<ScoredItem>> Recommender::Recommend(
    UserId u, size_t k, const QueryOptions& options) const {
  if (u < 0 || u >= model_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  std::vector<double> score_buf;
  std::vector<bool> excluded;
  return RecommendOne(u, k, options, &score_buf, &excluded);
}

Result<std::vector<std::vector<ScoredItem>>> Recommender::RecommendBatch(
    std::span<const UserId> users, size_t k,
    const QueryOptions& options) const {
  // Validate the whole batch before doing any scoring work so a bad id
  // cannot leave a half-filled result.
  for (UserId u : users) {
    if (u < 0 || u >= model_.num_users()) {
      return Status::OutOfRange("unknown user id " + std::to_string(u));
    }
  }
  std::vector<std::vector<ScoredItem>> results(users.size());
  if (users.empty()) return results;

  int threads = options.num_threads > 0
                    ? options.num_threads
                    : static_cast<int>(
                          std::max(1u, std::thread::hardware_concurrency()));
  threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), users.size()));

  if (threads == 1) {
    std::vector<double> score_buf;
    std::vector<bool> excluded;
    for (size_t i = 0; i < users.size(); ++i) {
      results[i] = RecommendOne(users[i], k, options, &score_buf, &excluded);
    }
    return results;
  }

  // Contiguous shards, one task per thread; each task owns its scratch
  // buffers and writes disjoint result slots, so no synchronization beyond
  // the pool's completion barrier is needed.
  ThreadPool pool(threads);
  const size_t shard =
      (users.size() + static_cast<size_t>(threads) - 1) /
      static_cast<size_t>(threads);
  for (int t = 0; t < threads; ++t) {
    const size_t lo = static_cast<size_t>(t) * shard;
    const size_t hi = std::min(users.size(), lo + shard);
    if (lo >= hi) break;
    pool.Submit([this, &users, &results, &options, k, lo, hi] {
      std::vector<double> score_buf;
      std::vector<bool> excluded;
      for (size_t i = lo; i < hi; ++i) {
        results[i] = RecommendOne(users[i], k, options, &score_buf, &excluded);
      }
    });
  }
  pool.Wait();
  return results;
}

Result<double> Recommender::Score(UserId u, ItemId i) const {
  if (u < 0 || u >= model_.num_users()) {
    return Status::OutOfRange("unknown user id " + std::to_string(u));
  }
  if (i < 0 || i >= model_.num_items()) {
    return Status::OutOfRange("unknown item id " + std::to_string(i));
  }
  return model_.Score(u, i);
}

Status Recommender::Save(const std::string& model_path) const {
  // Atomic publish: a crash mid-save can never leave a torn model file where
  // a serving process would pick it up.
  return SaveModelAtomic(model_, model_path);
}

}  // namespace clapf
