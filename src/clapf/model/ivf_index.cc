#include "clapf/model/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <utility>

#include "clapf/model/score_kernel.h"
#include "clapf/util/crc32.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"
#include "clapf/util/thread_pool.h"
#include "clapf/util/top_k.h"

namespace clapf {
namespace {

// CRC32 of one item's source parameters (factor doubles + bias double).
// Bitwise, so any training update — however small — flags the item dirty.
uint32_t ItemCrc(const FactorModel& model, ItemId i) {
  auto vf = model.ItemFactors(i);
  uint32_t c = Crc32Init();
  c = Crc32Update(c, vf.data(), vf.size() * sizeof(double));
  if (model.use_item_bias()) {
    const double b = model.ItemBias(i);
    c = Crc32Update(c, &b, sizeof(b));
  }
  return Crc32Finalize(c);
}

// Squared un-augmented norm b_i² + ‖v_i‖² of item i.
double ItemNorm2(const FactorModel& model, ItemId i) {
  auto vf = model.ItemFactors(i);
  double n2 = 0.0;
  for (double v : vf) n2 += v * v;
  if (model.use_item_bias()) {
    const double b = model.ItemBias(i);
    n2 += b * b;
  }
  return n2;
}

// Writes item i's norm-augmented vector [b, v.., residual] into out[0..ad).
// The residual sqrt(M² − n2) is clamped at zero: items that outgrow the M
// the index was built against (online catalog growth) still get a valid
// direction, just without the equal-norm guarantee — the recall gate is the
// backstop for any drift this causes.
void AugmentItem(const FactorModel& model, ItemId i, double m2, double* out) {
  const int32_t d = model.num_factors();
  out[0] = model.use_item_bias() ? model.ItemBias(i) : 0.0;
  auto vf = model.ItemFactors(i);
  for (int32_t f = 0; f < d; ++f) out[1 + f] = vf[static_cast<size_t>(f)];
  const double n2 = ItemNorm2(model, i);
  out[d + 1] = std::sqrt(std::max(0.0, m2 - n2));
}

// argmin_c ‖x − c‖² over float centroids, computed as
// argmin_c (‖c‖²/2 − x·c) with precomputed half-norms; ties break to the
// smaller cluster id. Purely a function of (x, centroids) — thread-safe and
// order-independent, which is what keeps parallel assignment deterministic.
int32_t NearestCentroid(const double* x, const std::vector<float>& centroids,
                        const std::vector<double>& half_norms, int32_t k,
                        int32_t ad) {
  int32_t best = 0;
  double best_v = std::numeric_limits<double>::infinity();
  for (int32_t c = 0; c < k; ++c) {
    const float* cen = centroids.data() + static_cast<size_t>(c) * ad;
    double dot = 0.0;
    for (int32_t f = 0; f < ad; ++f) {
      dot += x[f] * static_cast<double>(cen[f]);
    }
    const double v = half_norms[static_cast<size_t>(c)] - dot;
    if (v < best_v) {
      best_v = v;
      best = c;
    }
  }
  return best;
}

std::vector<double> CentroidHalfNorms(const std::vector<float>& centroids,
                                      int32_t k, int32_t ad) {
  std::vector<double> half(static_cast<size_t>(k), 0.0);
  for (int32_t c = 0; c < k; ++c) {
    const float* cen = centroids.data() + static_cast<size_t>(c) * ad;
    double n2 = 0.0;
    for (int32_t f = 0; f < ad; ++f) {
      n2 += static_cast<double>(cen[f]) * static_cast<double>(cen[f]);
    }
    half[static_cast<size_t>(c)] = 0.5 * n2;
  }
  return half;
}

// Runs fn(i) for i in [0, n), across `threads` workers when > 1. fn must be
// order-independent with disjoint writes.
void ForEachItem(int64_t n, int threads,
                 const std::function<void(int64_t)>& fn) {
  if (threads > 1 && n > 1) {
    ThreadPool pool(threads);
    pool.ParallelFor(0, n, fn);
  } else {
    for (int64_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

IvfIndex IvfIndex::Build(const FactorModel& model, const IvfOptions& options) {
  IvfIndex idx;
  idx.options_ = options;
  idx.num_items_ = model.num_items();
  idx.num_factors_ = model.num_factors();
  idx.use_item_bias_ = model.use_item_bias();

  const int32_t n = idx.num_items_;
  const int32_t d = idx.num_factors_;
  const int32_t ad = d + 2;

  if (n == 0) {
    idx.num_clusters_ = 0;
    idx.cluster_begin_.assign(1, 0);
    idx.packed_ = PackedSnapshot::Build(model);
    return idx;
  }

  int32_t k = options.num_clusters > 0
                  ? options.num_clusters
                  : static_cast<int32_t>(
                        std::ceil(std::sqrt(static_cast<double>(n))));
  k = std::max(1, std::min(k, n));
  idx.num_clusters_ = k;

  // Lift the catalog into the augmented space once.
  double m2 = 0.0;
  for (ItemId i = 0; i < n; ++i) m2 = std::max(m2, ItemNorm2(model, i));
  idx.aug_m2_ = m2;
  std::vector<double> aug(static_cast<size_t>(n) * ad);
  ForEachItem(n, options.build_threads, [&](int64_t i) {
    AugmentItem(model, static_cast<ItemId>(i), m2,
                aug.data() + static_cast<size_t>(i) * ad);
  });

  // Deterministic strided training sample.
  const int32_t max_train = std::max(1, options.max_train_points);
  const int32_t stride = std::max(1, n / std::min(max_train, n));
  std::vector<int32_t> sample;
  sample.reserve(static_cast<size_t>(n / stride) + 1);
  for (ItemId i = 0; i < n; i += stride) sample.push_back(i);

  // Seeded init: k distinct sample points in shuffled order (cycled when the
  // sample is smaller than k — the duplicates converge apart or end up as
  // empty clusters, both handled below).
  std::vector<int32_t> init = sample;
  Rng rng(options.seed);
  rng.Shuffle(init);
  std::vector<double> centroids(static_cast<size_t>(k) * ad);
  for (int32_t c = 0; c < k; ++c) {
    const int32_t src = init[static_cast<size_t>(c) % init.size()];
    std::memcpy(centroids.data() + static_cast<size_t>(c) * ad,
                aug.data() + static_cast<size_t>(src) * ad,
                sizeof(double) * static_cast<size_t>(ad));
  }

  // Lloyd iterations over the sample. Assignment is parallel (disjoint
  // writes, shared read-only centroids); the centroid update accumulates
  // serially in sample order — so the result is bit-identical for any
  // build_threads.
  std::vector<float> centroids_f(static_cast<size_t>(k) * ad);
  std::vector<int32_t> sample_assign(sample.size());
  std::vector<double> sums(static_cast<size_t>(k) * ad);
  std::vector<int64_t> counts(static_cast<size_t>(k));
  for (int32_t iter = 0; iter < std::max(0, options.kmeans_iterations);
       ++iter) {
    for (size_t x = 0; x < centroids.size(); ++x) {
      centroids_f[x] = static_cast<float>(centroids[x]);
    }
    const std::vector<double> half = CentroidHalfNorms(centroids_f, k, ad);
    ForEachItem(static_cast<int64_t>(sample.size()), options.build_threads,
                [&](int64_t s) {
                  sample_assign[static_cast<size_t>(s)] = NearestCentroid(
                      aug.data() +
                          static_cast<size_t>(sample[static_cast<size_t>(s)]) *
                              ad,
                      centroids_f, half, k, ad);
                });
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t s = 0; s < sample.size(); ++s) {
      const int32_t c = sample_assign[s];
      const double* x = aug.data() + static_cast<size_t>(sample[s]) * ad;
      double* dst = sums.data() + static_cast<size_t>(c) * ad;
      for (int32_t f = 0; f < ad; ++f) dst[f] += x[f];
      ++counts[static_cast<size_t>(c)];
    }
    for (int32_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep previous
      const double inv = 1.0 / static_cast<double>(counts[static_cast<size_t>(c)]);
      double* dst = centroids.data() + static_cast<size_t>(c) * ad;
      const double* src = sums.data() + static_cast<size_t>(c) * ad;
      for (int32_t f = 0; f < ad; ++f) dst[f] = src[f] * inv;
    }
  }

  // Freeze centroids as float32 *before* the final full assignment, so a
  // later RebuildDirty — which only has the float centroids — assigns dirty
  // items with exactly the arithmetic used here.
  for (size_t x = 0; x < centroids.size(); ++x) {
    centroids_f[x] = static_cast<float>(centroids[x]);
  }
  idx.centroids_ = centroids_f;

  idx.assignment_.resize(static_cast<size_t>(n));
  const std::vector<double> half = CentroidHalfNorms(idx.centroids_, k, ad);
  ForEachItem(n, options.build_threads, [&](int64_t i) {
    idx.assignment_[static_cast<size_t>(i)] =
        NearestCentroid(aug.data() + static_cast<size_t>(i) * ad,
                        idx.centroids_, half, k, ad);
  });

  idx.item_crc_.resize(static_cast<size_t>(n));
  ForEachItem(n, options.build_threads, [&](int64_t i) {
    idx.item_crc_[static_cast<size_t>(i)] =
        ItemCrc(model, static_cast<ItemId>(i));
  });

  idx.FinishLayout(model);
  return idx;
}

void IvfIndex::FinishLayout(const FactorModel& model) {
  const int32_t n = num_items_;
  const int32_t k = num_clusters_;
  // Counting sort of items by cluster; within a cluster, ascending global id
  // (stable by construction) — fully deterministic layout.
  cluster_begin_.assign(static_cast<size_t>(k) + 1, 0);
  for (ItemId i = 0; i < n; ++i) {
    ++cluster_begin_[static_cast<size_t>(assignment_[static_cast<size_t>(i)]) +
                     1];
  }
  for (int32_t c = 0; c < k; ++c) {
    cluster_begin_[static_cast<size_t>(c) + 1] +=
        cluster_begin_[static_cast<size_t>(c)];
  }
  local_to_global_.resize(static_cast<size_t>(n));
  global_to_local_.resize(static_cast<size_t>(n));
  std::vector<int32_t> cursor(cluster_begin_.begin(), cluster_begin_.end() - 1);
  for (ItemId i = 0; i < n; ++i) {
    const int32_t local =
        cursor[static_cast<size_t>(assignment_[static_cast<size_t>(i)])]++;
    local_to_global_[static_cast<size_t>(local)] = i;
    global_to_local_[static_cast<size_t>(i)] = local;
  }
  packed_ = PackedSnapshot::Build(model, local_to_global_.data());
}

Result<IvfIndex> IvfIndex::RebuildDirty(const IvfIndex& previous,
                                        const FactorModel& model,
                                        const IvfOptions& options,
                                        int64_t* items_reassigned) {
  if (!options.CompatibleWith(previous.options_)) {
    return Status::InvalidArgument(
        "ivf rebuild: options incompatible with the previous build");
  }
  if (model.num_factors() != previous.num_factors_ ||
      model.use_item_bias() != previous.use_item_bias_) {
    return Status::InvalidArgument(
        "ivf rebuild: model shape changed (factors/bias) since the previous "
        "build");
  }
  if (model.num_items() < previous.num_items_) {
    return Status::InvalidArgument("ivf rebuild: catalog shrank from " +
                                   std::to_string(previous.num_items_) +
                                   " to " +
                                   std::to_string(model.num_items()) +
                                   " items");
  }
  if (previous.num_clusters_ == 0) {
    return Status::InvalidArgument(
        "ivf rebuild: previous index has no clusters");
  }

  IvfIndex idx;
  idx.options_ = options;
  idx.num_items_ = model.num_items();
  idx.num_factors_ = previous.num_factors_;
  idx.num_clusters_ = previous.num_clusters_;
  idx.use_item_bias_ = previous.use_item_bias_;
  idx.aug_m2_ = previous.aug_m2_;
  idx.centroids_ = previous.centroids_;

  const int32_t n = idx.num_items_;
  const int32_t ad = idx.num_factors_ + 2;
  idx.assignment_.resize(static_cast<size_t>(n));
  idx.item_crc_.resize(static_cast<size_t>(n));

  // Dirty detection + reassignment in one parallel pass: an item whose
  // parameter bytes are unchanged keeps its previous cluster untouched; a
  // changed (or newly grown) item is re-routed to its nearest frozen
  // centroid. No k-means re-training — that is the entire saving.
  const std::vector<double> half =
      CentroidHalfNorms(idx.centroids_, idx.num_clusters_, ad);
  std::vector<uint8_t> dirty(static_cast<size_t>(n), 0);
  ForEachItem(n, options.build_threads, [&](int64_t i) {
    const uint32_t crc = ItemCrc(model, static_cast<ItemId>(i));
    idx.item_crc_[static_cast<size_t>(i)] = crc;
    if (i < previous.num_items_ &&
        crc == previous.item_crc_[static_cast<size_t>(i)]) {
      idx.assignment_[static_cast<size_t>(i)] =
          previous.assignment_[static_cast<size_t>(i)];
      return;
    }
    dirty[static_cast<size_t>(i)] = 1;
    std::vector<double> x(static_cast<size_t>(ad));
    AugmentItem(model, static_cast<ItemId>(i), idx.aug_m2_, x.data());
    idx.assignment_[static_cast<size_t>(i)] =
        NearestCentroid(x.data(), idx.centroids_, half, idx.num_clusters_, ad);
  });
  if (items_reassigned != nullptr) {
    *items_reassigned = static_cast<int64_t>(
        std::count(dirty.begin(), dirty.end(), uint8_t{1}));
  }

  idx.FinishLayout(model);
  return idx;
}

void IvfIndex::SelectProbes(UserId u, int32_t nprobe, size_t min_items,
                            std::vector<IvfProbeRange>* ranges,
                            int32_t* probes_used) const {
  ranges->clear();
  if (probes_used != nullptr) *probes_used = 0;
  if (num_clusters_ == 0 || num_items_ == 0) return;

  if (nprobe <= 0) nprobe = options_.default_nprobe;
  nprobe = std::max(1, std::min(nprobe, num_clusters_));

  // Rank clusters by centroid relevance to the augmented query [1, u, 0]:
  // s_c = c[0]·1 + Σ_f u_f·c[1+f] (the residual coordinate multiplies the
  // query's 0 and drops out). Ties break to the smaller cluster id so the
  // probe order — and therefore the whole ANN result — is deterministic.
  const float* uf = packed_.user_factors(u);
  const int32_t d = num_factors_;
  const int32_t ad = d + 2;
  std::vector<std::pair<double, int32_t>> ranked(
      static_cast<size_t>(num_clusters_));
  for (int32_t c = 0; c < num_clusters_; ++c) {
    const float* cen = centroids_.data() + static_cast<size_t>(c) * ad;
    double s = static_cast<double>(cen[0]);
    for (int32_t f = 0; f < d; ++f) {
      s += static_cast<double>(uf[f]) * static_cast<double>(cen[1 + f]);
    }
    ranked[static_cast<size_t>(c)] = {s, c};
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<double, int32_t>& a,
               const std::pair<double, int32_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });

  // Take the top nprobe clusters, widening past nprobe while fewer than
  // min_items real items are covered — the guarantee that a k-item query
  // can always fill its slots (net of exclusions handled by the caller
  // inflating min_items). Worst case this degrades to the full catalog,
  // i.e. the exact scan.
  std::vector<int32_t> chosen;
  size_t covered = 0;
  for (const auto& [score, c] : ranked) {
    (void)score;
    if (static_cast<int32_t>(chosen.size()) >= nprobe &&
        covered >= min_items) {
      break;
    }
    chosen.push_back(c);
    covered += static_cast<size_t>(ClusterSize(c));
  }
  if (probes_used != nullptr) {
    *probes_used = static_cast<int32_t>(chosen.size());
  }

  // Emit the chosen clusters as local ranges with block-aligned begins
  // (rounding down may annex the tail of a neighboring cluster's block —
  // those extra candidates are scored exactly, so they only help), then
  // merge overlaps so no block is ever scored twice (a double Push would
  // duplicate an item in the accumulator).
  ranges->reserve(chosen.size());
  for (int32_t c : chosen) {
    ItemId begin = cluster_begin_[static_cast<size_t>(c)];
    const ItemId end = cluster_begin_[static_cast<size_t>(c) + 1];
    if (begin == end) continue;  // empty cluster
    begin -= begin % kPackedBlockItems;
    ranges->push_back({begin, end});
  }
  std::sort(ranges->begin(), ranges->end(),
            [](const IvfProbeRange& a, const IvfProbeRange& b) {
              return a.begin < b.begin;
            });
  size_t out = 0;
  for (size_t r = 0; r < ranges->size(); ++r) {
    if (out > 0 && (*ranges)[r].begin <= (*ranges)[out - 1].end) {
      (*ranges)[out - 1].end =
          std::max((*ranges)[out - 1].end, (*ranges)[r].end);
    } else {
      (*ranges)[out++] = (*ranges)[r];
    }
  }
  ranges->resize(out);
}

size_t IvfIndex::CoveredItems(const std::vector<IvfProbeRange>& ranges) {
  size_t n = 0;
  for (const IvfProbeRange& r : ranges) {
    n += static_cast<size_t>(r.end - r.begin);
  }
  return n;
}

size_t IvfIndex::memory_bytes() const {
  return packed_.memory_bytes() + centroids_.size() * sizeof(float) +
         (assignment_.size() + local_to_global_.size() +
          global_to_local_.size()) *
             sizeof(int32_t) +
         cluster_begin_.size() * sizeof(int32_t) +
         item_crc_.size() * sizeof(uint32_t);
}

Status IvfIndex::VerifyStructure(const std::string& context) const {
  const size_t n = static_cast<size_t>(num_items_);
  if (assignment_.size() != n || local_to_global_.size() != n ||
      global_to_local_.size() != n || item_crc_.size() != n ||
      cluster_begin_.size() != static_cast<size_t>(num_clusters_) + 1) {
    return Status::Corruption(context + ": ivf index table sizes inconsistent");
  }
  if (packed_.num_items() != num_items_ ||
      packed_.num_factors() != num_factors_) {
    return Status::Corruption(context +
                              ": ivf packed snapshot dimensions disagree");
  }
  if (cluster_begin_.front() != 0 ||
      cluster_begin_.back() != num_items_) {
    return Status::Corruption(context + ": ivf cluster offsets do not cover "
                                        "the catalog");
  }
  for (size_t c = 1; c < cluster_begin_.size(); ++c) {
    if (cluster_begin_[c] < cluster_begin_[c - 1]) {
      return Status::Corruption(context + ": ivf cluster offsets not "
                                          "monotone");
    }
  }
  std::vector<bool> seen(n, false);
  for (size_t l = 0; l < n; ++l) {
    const int32_t g = local_to_global_[l];
    if (g < 0 || static_cast<size_t>(g) >= n || seen[static_cast<size_t>(g)]) {
      return Status::Corruption(context +
                                ": ivf permutation is not a bijection");
    }
    seen[static_cast<size_t>(g)] = true;
  }
  for (size_t i = 0; i < n; ++i) {
    const int32_t c = assignment_[i];
    if (c < 0 || c >= num_clusters_) {
      return Status::Corruption(context + ": ivf assignment out of range");
    }
  }
  return Status::OK();
}

void IvfIndex::DesyncForTesting() {
  if (local_to_global_.size() < 2) return;
  std::reverse(local_to_global_.begin(), local_to_global_.end());
  for (size_t l = 0; l < local_to_global_.size(); ++l) {
    global_to_local_[static_cast<size_t>(local_to_global_[l])] =
        static_cast<int32_t>(l);
  }
}

Status VerifyIvfBinding(const FactorModel& model, const IvfIndex& index,
                        const std::string& context) {
  if (model.num_items() != index.num_items() ||
      model.num_factors() != index.num_factors()) {
    return Status::FailedPrecondition(
        context + ": ivf index dimensions disagree with the model (index " +
        std::to_string(index.num_items()) + "x" +
        std::to_string(index.num_factors()) + ", model " +
        std::to_string(model.num_items()) + "x" +
        std::to_string(model.num_factors()) + ")");
  }
  Status structure = index.VerifyStructure(context);
  if (!structure.ok()) return structure;
  for (ItemId i = 0; i < model.num_items(); ++i) {
    if (ItemCrc(model, i) != index.item_crcs()[static_cast<size_t>(i)]) {
      return Status::FailedPrecondition(
          context + ": ivf index is stale — item " + std::to_string(i) +
          "'s parameters changed since the index was built");
    }
  }
  return Status::OK();
}

double MeasureIvfRecall(const PackedSnapshot& exact, const IvfIndex& index,
                        int32_t sample_users, size_t k, int32_t nprobe) {
  if (exact.num_items() != index.num_items() ||
      exact.num_users() != index.packed().num_users()) {
    return 0.0;
  }
  const int32_t n = exact.num_items();
  const int32_t num_users = exact.num_users();
  if (n == 0 || num_users == 0 || sample_users <= 0) return 1.0;
  k = std::min(k, static_cast<size_t>(n));
  if (k == 0) return 1.0;

  const int32_t stride =
      std::max(1, num_users / std::min(sample_users, num_users));
  std::vector<IvfProbeRange> ranges;
  double recall_sum = 0.0;
  int32_t users = 0;
  for (UserId u = 0; u < num_users; u += stride) {
    TopKAccumulator truth_acc(k);
    ScoreBlocksTopK(exact, u, 0, n, nullptr, &truth_acc);
    const std::vector<ScoredItem> truth = truth_acc.Take();

    index.SelectProbes(u, nprobe, k, &ranges, nullptr);
    TopKAccumulator ann_acc(k);
    for (const IvfProbeRange& r : ranges) {
      ScoreBlocksTopKMapped(index.packed(), u, r.begin, r.end,
                            index.local_to_global_data(), nullptr, &ann_acc);
    }
    const std::vector<ScoredItem> ann = ann_acc.Take();

    std::vector<int32_t> truth_ids, ann_ids;
    truth_ids.reserve(truth.size());
    ann_ids.reserve(ann.size());
    for (const ScoredItem& s : truth) truth_ids.push_back(s.item);
    for (const ScoredItem& s : ann) ann_ids.push_back(s.item);
    std::sort(truth_ids.begin(), truth_ids.end());
    std::sort(ann_ids.begin(), ann_ids.end());
    std::vector<int32_t> both;
    std::set_intersection(truth_ids.begin(), truth_ids.end(), ann_ids.begin(),
                          ann_ids.end(), std::back_inserter(both));
    recall_sum += static_cast<double>(both.size()) /
                  static_cast<double>(truth.size());
    ++users;
  }
  return users > 0 ? recall_sum / users : 1.0;
}

Status VerifyIvfRecall(const PackedSnapshot& exact, const IvfIndex& index,
                       int32_t sample_users, size_t k, int32_t nprobe,
                       double floor, const std::string& context) {
  if (exact.num_items() != index.num_items()) {
    return Status::FailedPrecondition(
        context + ": ivf recall probe dimensions disagree (exact " +
        std::to_string(exact.num_items()) + " items, index " +
        std::to_string(index.num_items()) + ")");
  }
  const double recall = MeasureIvfRecall(exact, index, sample_users, k, nprobe);
  if (recall < floor) {
    return Status::FailedPrecondition(
        context + ": ivf measured recall@" + std::to_string(k) + " = " +
        std::to_string(recall) + " at nprobe=" + std::to_string(nprobe) +
        " below the contract floor " + std::to_string(floor));
  }
  return Status::OK();
}

}  // namespace clapf
