#include "clapf/model/ivf_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <utility>

#include <thread>

#include "clapf/model/score_kernel.h"
#include "clapf/util/crc32.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/random.h"
#include "clapf/util/thread_pool.h"
#include "clapf/util/top_k.h"

namespace clapf {
namespace {

// CRC32 of one item's source parameters (factor doubles + bias double).
// Bitwise, so any training update — however small — flags the item dirty.
uint32_t ItemCrc(const FactorModel& model, ItemId i) {
  auto vf = model.ItemFactors(i);
  uint32_t c = Crc32Init();
  c = Crc32Update(c, vf.data(), vf.size() * sizeof(double));
  if (model.use_item_bias()) {
    const double b = model.ItemBias(i);
    c = Crc32Update(c, &b, sizeof(b));
  }
  return Crc32Finalize(c);
}

// Squared un-augmented norm b_i² + ‖v_i‖² of item i.
double ItemNorm2(const FactorModel& model, ItemId i) {
  auto vf = model.ItemFactors(i);
  double n2 = 0.0;
  for (double v : vf) n2 += v * v;
  if (model.use_item_bias()) {
    const double b = model.ItemBias(i);
    n2 += b * b;
  }
  return n2;
}

// Writes item i's norm-augmented vector [b, v.., residual] into out[0..ad).
// The residual sqrt(M² − n2) is clamped at zero: items that outgrow the M
// the index was built against (online catalog growth) still get a valid
// direction, just without the equal-norm guarantee — the recall gate is the
// backstop for any drift this causes.
void AugmentItem(const FactorModel& model, ItemId i, double m2, double* out) {
  const int32_t d = model.num_factors();
  out[0] = model.use_item_bias() ? model.ItemBias(i) : 0.0;
  auto vf = model.ItemFactors(i);
  for (int32_t f = 0; f < d; ++f) out[1 + f] = vf[static_cast<size_t>(f)];
  const double n2 = ItemNorm2(model, i);
  out[d + 1] = std::sqrt(std::max(0.0, m2 - n2));
}

// argmin_c ‖x − c‖² over float centroids, computed as
// argmin_c (‖c‖²/2 − x·c) with precomputed half-norms; ties break to the
// smaller cluster id. Purely a function of (x, centroids) — thread-safe and
// order-independent, which is what keeps parallel assignment deterministic.
int32_t NearestCentroid(const double* x, const std::vector<float>& centroids,
                        const std::vector<double>& half_norms, int32_t k,
                        int32_t ad) {
  int32_t best = 0;
  double best_v = std::numeric_limits<double>::infinity();
  for (int32_t c = 0; c < k; ++c) {
    const float* cen = centroids.data() + static_cast<size_t>(c) * ad;
    double dot = 0.0;
    for (int32_t f = 0; f < ad; ++f) {
      dot += x[f] * static_cast<double>(cen[f]);
    }
    const double v = half_norms[static_cast<size_t>(c)] - dot;
    if (v < best_v) {
      best_v = v;
      best = c;
    }
  }
  return best;
}

std::vector<double> CentroidHalfNorms(const std::vector<float>& centroids,
                                      int32_t k, int32_t ad) {
  std::vector<double> half(static_cast<size_t>(k), 0.0);
  for (int32_t c = 0; c < k; ++c) {
    const float* cen = centroids.data() + static_cast<size_t>(c) * ad;
    double n2 = 0.0;
    for (int32_t f = 0; f < ad; ++f) {
      n2 += static_cast<double>(cen[f]) * static_cast<double>(cen[f]);
    }
    half[static_cast<size_t>(c)] = 0.5 * n2;
  }
  return half;
}

// Runs fn(i) for i in [0, n), across `threads` workers when > 1. fn must be
// order-independent with disjoint writes.
void ForEachItem(int64_t n, int threads,
                 const std::function<void(int64_t)>& fn) {
  if (threads > 1 && n > 1) {
    ThreadPool pool(threads);
    pool.ParallelFor(0, n, fn);
  } else {
    for (int64_t i = 0; i < n; ++i) fn(i);
  }
}

// Items per deadline/fault poll in the quantized first pass — matches the
// serving scan loops' kRankerBlockItems granularity (kept local so the
// model layer does not depend on core/).
constexpr ItemId kPqScanChunkItems = 1024;

// Matches the serving loops' injected kServeSlowBlock stall so pq deadline
// drills exercise the same timing fault.
constexpr std::chrono::milliseconds kPqSlowBlockStall(2);

// The k-th largest of keys[0..n) (1 <= k <= n), by MSB-first radix
// selection with no data-dependent branches in the scan loops. This is the
// shortlist's compaction selector: quickselect (std::nth_element) runs its
// partition branches on fresh per-query data, where they mispredict ~50%
// and cost 3-5x what reused-input microbenchmarks suggest; histogram
// counting and predicated gathers don't care what the data looks like.
// Each level pins one more key byte — histogram the current byte, walk
// buckets from the top until the k-th key's bucket is found, then gather
// that bucket and recurse into the next byte. PqPackCandidate keys are
// unique, so the candidate set collapses to one key within a few levels on
// real score distributions (the early exits below).
uint64_t PqRadixSelect(const uint64_t* keys, size_t n, size_t k) {
  static thread_local std::vector<uint64_t> buf_a, buf_b;
  buf_a.assign(keys, keys + n);
  buf_b.resize(n);
  uint64_t* cur = buf_a.data();
  uint64_t* nxt = buf_b.data();
  size_t cnt = n;
  for (int shift = 56; shift >= 0; shift -= 8) {
    if (cnt == 1) return cur[0];
    if (cnt == k) {
      // Every remaining key ranks at or above position k: the k-th largest
      // is their minimum.
      uint64_t m = cur[0];
      for (size_t i = 1; i < cnt; ++i) m = std::min(m, cur[i]);
      return m;
    }
    uint32_t hist[256] = {0};
    for (size_t i = 0; i < cnt; ++i) {
      ++hist[(cur[i] >> shift) & 0xffu];
    }
    size_t above = 0;
    uint64_t byte = 255;
    for (;; --byte) {
      if (above + hist[byte] >= k) break;
      above += hist[byte];
    }
    k -= above;
    size_t w = 0;
    for (size_t i = 0; i < cnt; ++i) {
      const uint64_t key = cur[i];
      nxt[w] = key;
      w += static_cast<size_t>(((key >> shift) & 0xffu) == byte);
    }
    cnt = w;
    std::swap(cur, nxt);
  }
  return cur[0];  // all 8 bytes pinned: the survivors are all equal
}

}  // namespace

IvfIndex IvfIndex::Build(const FactorModel& model, const IvfOptions& options) {
  IvfIndex idx;
  idx.options_ = options;
  idx.num_items_ = model.num_items();
  idx.num_factors_ = model.num_factors();
  idx.use_item_bias_ = model.use_item_bias();

  const int32_t n = idx.num_items_;
  const int32_t d = idx.num_factors_;
  const int32_t ad = d + 2;

  if (n == 0) {
    idx.num_clusters_ = 0;
    idx.cluster_begin_.assign(1, 0);
    idx.packed_ = PackedSnapshot::Build(model);
    if (options.pq) {
      idx.pq_ = PqCodes::Encode(idx.packed_,
                                PqCodes::TrainBook(idx.packed_, 1), 1);
    }
    return idx;
  }

  int32_t k = options.num_clusters > 0
                  ? options.num_clusters
                  : static_cast<int32_t>(
                        std::ceil(std::sqrt(static_cast<double>(n))));
  k = std::max(1, std::min(k, n));
  idx.num_clusters_ = k;

  // Lift the catalog into the augmented space once.
  double m2 = 0.0;
  for (ItemId i = 0; i < n; ++i) m2 = std::max(m2, ItemNorm2(model, i));
  idx.aug_m2_ = m2;
  std::vector<double> aug(static_cast<size_t>(n) * ad);
  ForEachItem(n, options.build_threads, [&](int64_t i) {
    AugmentItem(model, static_cast<ItemId>(i), m2,
                aug.data() + static_cast<size_t>(i) * ad);
  });

  // Deterministic strided training sample.
  const int32_t max_train = std::max(1, options.max_train_points);
  const int32_t stride = std::max(1, n / std::min(max_train, n));
  std::vector<int32_t> sample;
  sample.reserve(static_cast<size_t>(n / stride) + 1);
  for (ItemId i = 0; i < n; i += stride) sample.push_back(i);

  // Seeded init: k distinct sample points in shuffled order (cycled when the
  // sample is smaller than k — the duplicates converge apart or end up as
  // empty clusters, both handled below).
  std::vector<int32_t> init = sample;
  Rng rng(options.seed);
  rng.Shuffle(init);
  std::vector<double> centroids(static_cast<size_t>(k) * ad);
  for (int32_t c = 0; c < k; ++c) {
    const int32_t src = init[static_cast<size_t>(c) % init.size()];
    std::memcpy(centroids.data() + static_cast<size_t>(c) * ad,
                aug.data() + static_cast<size_t>(src) * ad,
                sizeof(double) * static_cast<size_t>(ad));
  }

  // Lloyd iterations over the sample. Assignment is parallel (disjoint
  // writes, shared read-only centroids); the centroid update accumulates
  // serially in sample order — so the result is bit-identical for any
  // build_threads.
  std::vector<float> centroids_f(static_cast<size_t>(k) * ad);
  std::vector<int32_t> sample_assign(sample.size());
  std::vector<double> sums(static_cast<size_t>(k) * ad);
  std::vector<int64_t> counts(static_cast<size_t>(k));
  for (int32_t iter = 0; iter < std::max(0, options.kmeans_iterations);
       ++iter) {
    for (size_t x = 0; x < centroids.size(); ++x) {
      centroids_f[x] = static_cast<float>(centroids[x]);
    }
    const std::vector<double> half = CentroidHalfNorms(centroids_f, k, ad);
    ForEachItem(static_cast<int64_t>(sample.size()), options.build_threads,
                [&](int64_t s) {
                  sample_assign[static_cast<size_t>(s)] = NearestCentroid(
                      aug.data() +
                          static_cast<size_t>(sample[static_cast<size_t>(s)]) *
                              ad,
                      centroids_f, half, k, ad);
                });
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t s = 0; s < sample.size(); ++s) {
      const int32_t c = sample_assign[s];
      const double* x = aug.data() + static_cast<size_t>(sample[s]) * ad;
      double* dst = sums.data() + static_cast<size_t>(c) * ad;
      for (int32_t f = 0; f < ad; ++f) dst[f] += x[f];
      ++counts[static_cast<size_t>(c)];
    }
    for (int32_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep previous
      const double inv = 1.0 / static_cast<double>(counts[static_cast<size_t>(c)]);
      double* dst = centroids.data() + static_cast<size_t>(c) * ad;
      const double* src = sums.data() + static_cast<size_t>(c) * ad;
      for (int32_t f = 0; f < ad; ++f) dst[f] = src[f] * inv;
    }
  }

  // Freeze centroids as float32 *before* the final full assignment, so a
  // later RebuildDirty — which only has the float centroids — assigns dirty
  // items with exactly the arithmetic used here.
  for (size_t x = 0; x < centroids.size(); ++x) {
    centroids_f[x] = static_cast<float>(centroids[x]);
  }
  idx.centroids_ = centroids_f;

  idx.assignment_.resize(static_cast<size_t>(n));
  const std::vector<double> half = CentroidHalfNorms(idx.centroids_, k, ad);
  ForEachItem(n, options.build_threads, [&](int64_t i) {
    idx.assignment_[static_cast<size_t>(i)] =
        NearestCentroid(aug.data() + static_cast<size_t>(i) * ad,
                        idx.centroids_, half, k, ad);
  });

  idx.item_crc_.resize(static_cast<size_t>(n));
  ForEachItem(n, options.build_threads, [&](int64_t i) {
    idx.item_crc_[static_cast<size_t>(i)] =
        ItemCrc(model, static_cast<ItemId>(i));
  });

  idx.FinishLayout(model);
  // Full build trains a fresh code book from the permuted floats and
  // encodes every item. Deterministic for any build_threads (min/max
  // reductions + disjoint per-item encodes), like the rest of the build.
  if (options.pq) {
    idx.pq_ = PqCodes::Encode(
        idx.packed_, PqCodes::TrainBook(idx.packed_, options.build_threads),
        options.build_threads);
  }
  return idx;
}

void IvfIndex::FinishLayout(const FactorModel& model) {
  const int32_t n = num_items_;
  const int32_t k = num_clusters_;
  // Counting sort of items by cluster; within a cluster, ascending global id
  // (stable by construction) — fully deterministic layout.
  cluster_begin_.assign(static_cast<size_t>(k) + 1, 0);
  for (ItemId i = 0; i < n; ++i) {
    ++cluster_begin_[static_cast<size_t>(assignment_[static_cast<size_t>(i)]) +
                     1];
  }
  for (int32_t c = 0; c < k; ++c) {
    cluster_begin_[static_cast<size_t>(c) + 1] +=
        cluster_begin_[static_cast<size_t>(c)];
  }
  local_to_global_.resize(static_cast<size_t>(n));
  global_to_local_.resize(static_cast<size_t>(n));
  std::vector<int32_t> cursor(cluster_begin_.begin(), cluster_begin_.end() - 1);
  for (ItemId i = 0; i < n; ++i) {
    const int32_t local =
        cursor[static_cast<size_t>(assignment_[static_cast<size_t>(i)])]++;
    local_to_global_[static_cast<size_t>(local)] = i;
    global_to_local_[static_cast<size_t>(i)] = local;
  }
  packed_ = PackedSnapshot::Build(model, local_to_global_.data());
}

Result<IvfIndex> IvfIndex::RebuildDirty(const IvfIndex& previous,
                                        const FactorModel& model,
                                        const IvfOptions& options,
                                        int64_t* items_reassigned) {
  if (!options.CompatibleWith(previous.options_)) {
    return Status::InvalidArgument(
        "ivf rebuild: options incompatible with the previous build");
  }
  if (model.num_factors() != previous.num_factors_ ||
      model.use_item_bias() != previous.use_item_bias_) {
    return Status::InvalidArgument(
        "ivf rebuild: model shape changed (factors/bias) since the previous "
        "build");
  }
  if (model.num_items() < previous.num_items_) {
    return Status::InvalidArgument("ivf rebuild: catalog shrank from " +
                                   std::to_string(previous.num_items_) +
                                   " to " +
                                   std::to_string(model.num_items()) +
                                   " items");
  }
  if (previous.num_clusters_ == 0) {
    return Status::InvalidArgument(
        "ivf rebuild: previous index has no clusters");
  }

  IvfIndex idx;
  idx.options_ = options;
  idx.num_items_ = model.num_items();
  idx.num_factors_ = previous.num_factors_;
  idx.num_clusters_ = previous.num_clusters_;
  idx.use_item_bias_ = previous.use_item_bias_;
  idx.aug_m2_ = previous.aug_m2_;
  idx.centroids_ = previous.centroids_;

  const int32_t n = idx.num_items_;
  const int32_t ad = idx.num_factors_ + 2;
  idx.assignment_.resize(static_cast<size_t>(n));
  idx.item_crc_.resize(static_cast<size_t>(n));

  // Dirty detection + reassignment in one parallel pass: an item whose
  // parameter bytes are unchanged keeps its previous cluster untouched; a
  // changed (or newly grown) item is re-routed to its nearest frozen
  // centroid. No k-means re-training — that is the entire saving.
  const std::vector<double> half =
      CentroidHalfNorms(idx.centroids_, idx.num_clusters_, ad);
  std::vector<uint8_t> dirty(static_cast<size_t>(n), 0);
  ForEachItem(n, options.build_threads, [&](int64_t i) {
    const uint32_t crc = ItemCrc(model, static_cast<ItemId>(i));
    idx.item_crc_[static_cast<size_t>(i)] = crc;
    if (i < previous.num_items_ &&
        crc == previous.item_crc_[static_cast<size_t>(i)]) {
      idx.assignment_[static_cast<size_t>(i)] =
          previous.assignment_[static_cast<size_t>(i)];
      return;
    }
    dirty[static_cast<size_t>(i)] = 1;
    std::vector<double> x(static_cast<size_t>(ad));
    AugmentItem(model, static_cast<ItemId>(i), idx.aug_m2_, x.data());
    idx.assignment_[static_cast<size_t>(i)] =
        NearestCentroid(x.data(), idx.centroids_, half, idx.num_clusters_, ad);
  });
  if (items_reassigned != nullptr) {
    *items_reassigned = static_cast<int64_t>(
        std::count(dirty.begin(), dirty.end(), uint8_t{1}));
  }

  idx.FinishLayout(model);
  // Incremental code refresh against the FROZEN book: clean items' codes are
  // copied byte-for-byte from the previous index (through both permutations)
  // and only dirty items run the quantizer. The book never retrains here —
  // a majority-dirty republish already falls back to a full Build at the
  // caller, which is where the book (like the centroids) gets refreshed.
  // New items can land outside the frozen book's range and clamp; the
  // measured composed-recall gate is the backstop for that drift.
  if (options.pq) {
    if (previous.has_pq()) {
      idx.pq_ = PqCodes::Allocate(idx.packed_, previous.pq_.book());
      ForEachItem(n, options.build_threads, [&](int64_t local) {
        const ItemId g = idx.local_to_global_[static_cast<size_t>(local)];
        if (g < previous.num_items_ && dirty[static_cast<size_t>(g)] == 0) {
          idx.pq_.CopyItemFrom(
              previous.pq_, previous.global_to_local_[static_cast<size_t>(g)],
              static_cast<ItemId>(local));
        } else {
          idx.pq_.EncodeItem(idx.packed_, static_cast<ItemId>(local));
        }
      });
      idx.pq_.RecomputeBlockBounds(options.build_threads);
    } else {
      idx.pq_ = PqCodes::Encode(
          idx.packed_, PqCodes::TrainBook(idx.packed_, options.build_threads),
          options.build_threads);
    }
  }
  return idx;
}

void IvfIndex::SelectProbes(UserId u, int32_t nprobe, size_t min_items,
                            std::vector<IvfProbeRange>* ranges,
                            int32_t* probes_used) const {
  ranges->clear();
  if (probes_used != nullptr) *probes_used = 0;
  if (num_clusters_ == 0 || num_items_ == 0) return;

  if (nprobe <= 0) nprobe = options_.default_nprobe;
  nprobe = std::max(1, std::min(nprobe, num_clusters_));

  // Rank clusters by centroid relevance to the augmented query [1, u, 0]:
  // s_c = c[0]·1 + Σ_f u_f·c[1+f] (the residual coordinate multiplies the
  // query's 0 and drops out). Ties break to the smaller cluster id so the
  // probe order — and therefore the whole ANN result — is deterministic.
  const float* uf = packed_.user_factors(u);
  const int32_t d = num_factors_;
  const int32_t ad = d + 2;
  thread_local std::vector<std::pair<double, int32_t>> ranked;
  ranked.resize(static_cast<size_t>(num_clusters_));
  // Four clusters in flight: each cluster's sum is a serial double-add
  // chain (latency-bound), but clusters are independent, so interleaving
  // them hides the add latency without changing any cluster's summation
  // order — scores stay bit-identical to the one-at-a-time loop, and so
  // does every probe selection downstream.
  int32_t c = 0;
  for (; c + 4 <= num_clusters_; c += 4) {
    const float* c0 = centroids_.data() + static_cast<size_t>(c) * ad;
    const float* c1 = c0 + ad;
    const float* c2 = c1 + ad;
    const float* c3 = c2 + ad;
    double s0 = static_cast<double>(c0[0]);
    double s1 = static_cast<double>(c1[0]);
    double s2 = static_cast<double>(c2[0]);
    double s3 = static_cast<double>(c3[0]);
    for (int32_t f = 0; f < d; ++f) {
      const double w = static_cast<double>(uf[f]);
      s0 += w * static_cast<double>(c0[1 + f]);
      s1 += w * static_cast<double>(c1[1 + f]);
      s2 += w * static_cast<double>(c2[1 + f]);
      s3 += w * static_cast<double>(c3[1 + f]);
    }
    ranked[static_cast<size_t>(c)] = {s0, c};
    ranked[static_cast<size_t>(c) + 1] = {s1, c + 1};
    ranked[static_cast<size_t>(c) + 2] = {s2, c + 2};
    ranked[static_cast<size_t>(c) + 3] = {s3, c + 3};
  }
  for (; c < num_clusters_; ++c) {
    const float* cen = centroids_.data() + static_cast<size_t>(c) * ad;
    double s = static_cast<double>(cen[0]);
    for (int32_t f = 0; f < d; ++f) {
      s += static_cast<double>(uf[f]) * static_cast<double>(cen[1 + f]);
    }
    ranked[static_cast<size_t>(c)] = {s, c};
  }
  const auto better = [](const std::pair<double, int32_t>& a,
                         const std::pair<double, int32_t>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };

  // Take the top nprobe clusters, widening past nprobe while fewer than
  // min_items real items are covered — the guarantee that a k-item query
  // can always fill its slots (net of exclusions handled by the caller
  // inflating min_items). Worst case this degrades to the full catalog,
  // i.e. the exact scan. The take-loop almost always consumes just the top
  // nprobe clusters, so only a geometrically growing prefix is ordered
  // (partial_sort) instead of fully sorting every cluster per query — the
  // full sort dominated ANN query latency at serving cluster counts. The
  // comparator is a strict total order (score, then id), so the selected
  // prefix is identical no matter how much of the tail stays unordered.
  thread_local std::vector<int32_t> chosen;
  size_t covered = 0;
  int32_t prefix = std::min(num_clusters_, std::max(nprobe, 1));
  for (;;) {
    std::partial_sort(ranked.begin(), ranked.begin() + prefix, ranked.end(),
                      better);
    chosen.clear();
    covered = 0;
    for (int32_t i = 0; i < prefix; ++i) {
      if (static_cast<int32_t>(chosen.size()) >= nprobe &&
          covered >= min_items) {
        break;
      }
      chosen.push_back(ranked[static_cast<size_t>(i)].second);
      covered += static_cast<size_t>(ClusterSize(chosen.back()));
    }
    if ((static_cast<int32_t>(chosen.size()) >= nprobe &&
         covered >= min_items) ||
        prefix == num_clusters_) {
      break;
    }
    prefix = std::min(num_clusters_, prefix * 4);
  }
  if (probes_used != nullptr) {
    *probes_used = static_cast<int32_t>(chosen.size());
  }

  // Emit the chosen clusters as local ranges with block-aligned begins
  // (rounding down may annex the tail of a neighboring cluster's block —
  // those extra candidates are scored exactly, so they only help), then
  // merge overlaps so no block is ever scored twice (a double Push would
  // duplicate an item in the accumulator).
  ranges->reserve(chosen.size());
  for (int32_t c : chosen) {
    ItemId begin = cluster_begin_[static_cast<size_t>(c)];
    const ItemId end = cluster_begin_[static_cast<size_t>(c) + 1];
    if (begin == end) continue;  // empty cluster
    begin -= begin % kPackedBlockItems;
    ranges->push_back({begin, end});
  }
  std::sort(ranges->begin(), ranges->end(),
            [](const IvfProbeRange& a, const IvfProbeRange& b) {
              return a.begin < b.begin;
            });
  size_t out = 0;
  for (size_t r = 0; r < ranges->size(); ++r) {
    if (out > 0 && (*ranges)[r].begin <= (*ranges)[out - 1].end) {
      (*ranges)[out - 1].end =
          std::max((*ranges)[out - 1].end, (*ranges)[r].end);
    } else {
      (*ranges)[out++] = (*ranges)[r];
    }
  }
  ranges->resize(out);
}

size_t IvfIndex::CoveredItems(const std::vector<IvfProbeRange>& ranges) {
  size_t n = 0;
  for (const IvfProbeRange& r : ranges) {
    n += static_cast<size_t>(r.end - r.begin);
  }
  return n;
}

Status IvfIndex::QuantizedShortlist(
    UserId u, const std::vector<IvfProbeRange>& probes, size_t rerank_budget,
    const std::vector<bool>* excluded,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    std::vector<IvfProbeRange>* rerank_ranges, int64_t* survivors) const {
  rerank_ranges->clear();
  if (survivors != nullptr) *survivors = 0;
  CLAPF_CHECK(has_pq());
  if (probes.empty() || rerank_budget == 0) return Status::OK();

  // Per-query affine terms: lane_weights[l] multiplies the raw code, base
  // seeds every accumulator (see PqPrepareQuery).
  const int32_t d = num_factors_;
  thread_local std::vector<float> lane_weights;
  lane_weights.resize(static_cast<size_t>(d) + 1);
  const float base = PqPrepareQuery(pq_.book(), packed_.user_factors(u), d,
                                    lane_weights.data());

  // First pass: stream the codes over the probe ranges, keeping the top
  // `rerank_budget` candidates by quantized score under their LOCAL ids
  // (smaller local id on ties). Candidates live as packed uint64 keys end
  // to end (see PqPackCandidate) and selection is buffered instead of
  // heaped: the fused collect kernel appends keys at or above the current
  // bar, and the buffer is compacted whenever it fills. That is O(1)
  // amortized per scanned item — a streaming binary heap paid O(log
  // budget) per winning push and dominated the whole quantized stage at
  // serving budgets. The key order is the same (score desc, local asc)
  // total order the heap used, so the surviving SET is identical.
  // Strictly-below-the-bar candidates can never enter the kept set; ties
  // at the bar may still win on the smaller-id tie-break, so the kernel
  // keeps them for the compaction to cut.
  thread_local std::vector<uint64_t> cand;
  cand.clear();
  // Compact at a few multiples of the budget: large enough to amortize the
  // selection, small enough to stay cache-resident.
  const size_t cap =
      std::max<size_t>(rerank_budget * 4, static_cast<size_t>(1024));
  float bar = -std::numeric_limits<float>::infinity();
  // Compaction: radix-select the budget-th best key, then keep the keys at
  // or above it with one predicated pass. Keys are unique, so "at or
  // above the budget-th largest" is exactly the budget best — no
  // tie-trimming step, and neither pass has a data-dependent branch.
  const auto compact = [&] {
    const uint64_t bar_key =
        PqRadixSelect(cand.data(), cand.size(), rerank_budget);
    size_t w = 0;
    for (size_t i = 0; i < cand.size(); ++i) {
      const uint64_t k = cand[i];
      cand[w] = k;
      w += static_cast<size_t>(k >= bar_key);
    }
    cand.resize(w);
    bar = PqCandidateScore(bar_key);
  };
  // Excluded items must never consume budget, and the kernel is blind to
  // exclusions — so with exclusions in play each window collects into a
  // side scratch that is filtered while appending. The common no-exclusions
  // query collects straight into `cand`.
  thread_local std::vector<uint64_t> window_scratch;

  // Split the probe ranges into per-CLUSTER scan units, cut at
  // block-aligned boundaries (align-down of each interior cluster begin —
  // consecutive units share the cut, so the units tile the ranges exactly:
  // nothing is scanned twice, nothing is missed), and scan them
  // most-relevant first by centroid score — the same relevance
  // SelectProbes ranked clusters by. The final bar is almost always set by
  // the best cluster's items, so visiting it first collapses the candidate
  // volume every later unit emits AND hands the block-bound pruning below
  // a near-final bar for the rest of the scan. Unit granularity matters:
  // on clustered catalogs neighboring clusters sit adjacent in local id
  // order, so SelectProbes often merges most probes into one huge range —
  // ordering whole ranges degenerates to id-order scanning, which left the
  // bar loose for most of the scan and tripled first-pass cost. Scan order
  // cannot change the surviving set — selection is exact — only how much
  // the collect pass over-collects.
  struct ScanUnit {
    double score;
    ItemId lo;
    ItemId hi;
  };
  thread_local std::vector<ScanUnit> scan_order;
  scan_order.clear();
  const float* uf = packed_.user_factors(u);
  const int32_t ad = d + 2;
  for (const IvfProbeRange& r : probes) {
    CLAPF_CHECK(r.begin % kPackedBlockItems == 0);
    // First cluster whose range reaches past r.begin (block-aligned begins
    // may annex the tail of a neighboring cluster's block — its unit
    // collapses to empty below and the annexed items land in the first
    // chosen cluster's unit).
    int32_t c = static_cast<int32_t>(
        std::upper_bound(cluster_begin_.begin(), cluster_begin_.end(),
                         r.begin) -
        cluster_begin_.begin() - 1);
    c = std::max(c, 0);
    ItemId lo = r.begin;
    for (; c < num_clusters_ &&
           cluster_begin_[static_cast<size_t>(c)] < r.end;
         ++c) {
      const ItemId c_end = cluster_begin_[static_cast<size_t>(c) + 1];
      const ItemId hi =
          c_end >= r.end ? r.end
                         : std::max(lo, c_end - c_end % kPackedBlockItems);
      if (hi > lo) {
        const float* cen = centroids_.data() + static_cast<size_t>(c) * ad;
        double s = static_cast<double>(cen[0]);
        for (int32_t f = 0; f < d; ++f) {
          s += static_cast<double>(uf[f]) * static_cast<double>(cen[1 + f]);
        }
        scan_order.push_back({s, lo, hi});
        lo = hi;
      }
    }
  }
  std::sort(scan_order.begin(), scan_order.end(),
            [](const ScanUnit& a, const ScanUnit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.lo < b.lo;
            });
  FaultInjector& faults = FaultInjector::Instance();
  ItemId scanned = 0;
  Status scan_status = Status::OK();
  // Collects LOCAL items [lo, hi) — lo block-aligned — with no polling:
  // just the fused kernel, the exclusion filter, and the budget compaction.
  // Callers own the deadline/fault polls; the bound-pruned path below calls
  // this once per surviving run, and per-run clock reads were measurably
  // eating what the pruning saved.
  const auto collect_raw = [&](ItemId lo, ItemId hi) {
    if (excluded == nullptr) {
      PqScoreCollect(pq_.block_codes(), pq_.block_stride(), d,
                     lane_weights.data(), base, lo, hi, bar, &cand);
    } else {
      window_scratch.clear();
      PqScoreCollect(pq_.block_codes(), pq_.block_stride(), d,
                     lane_weights.data(), base, lo, hi, bar,
                     &window_scratch);
      for (const uint64_t k : window_scratch) {
        if ((*excluded)[static_cast<size_t>(
                local_to_global_[static_cast<size_t>(
                    PqCandidateLocal(k))])]) {
          continue;
        }
        cand.push_back(k);
      }
    }
    while (cand.size() >= cap && cand.size() > rerank_budget) compact();
    scanned += hi - lo;
  };
  // True when the deadline fired (scan_status then carries the error).
  const auto deadline_hit = [&] {
    if (!deadline || std::chrono::steady_clock::now() <= *deadline) {
      return false;
    }
    scan_status = Status::DeadlineExceeded(
        "pq query for user " + std::to_string(u) + " expired after scanning " +
        std::to_string(scanned) + " quantized candidates");
    return true;
  };
  // Windowed variant for un-bounded spans: deadline/fault polls every
  // kPqScanChunkItems, matching the serving scan loops' poll granularity.
  const auto collect_span = [&](ItemId span_lo, ItemId span_hi) {
    for (ItemId lo = span_lo; lo < span_hi;) {
      const ItemId hi = std::min<ItemId>(
          span_hi, (lo / kPqScanChunkItems + 1) * kPqScanChunkItems);
      if (faults.armed() && faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
        std::this_thread::sleep_for(kPqSlowBlockStall);
      }
      collect_raw(lo, hi);
      if (deadline_hit()) return false;
      lo = hi;
    }
    return true;
  };

  // Per-block upper-bound pruning (see PqCodes::bound_lane_max): once a
  // bar exists, each unit's corner blocks — per-lane extrema picked by the
  // query's lane-weight signs, 8 real blocks summarized per kernel block —
  // are scored through the SAME accumulation chain as real items
  // (PqScoreBoundBlocks reads each lane straight from the max or min
  // array, so there is no blend pass). IEEE rounding is monotone, so a
  // corner score is ≥ every kernel score inside its block bit-for-bit, and
  // a block whose corner score is strictly below the bar cannot contain a
  // survivor (ties at the bar keep the block). Surviving blocks merge into
  // runs so the collect kernel still streams contiguous spans, with the
  // next-but-one run prefetched while the current one is scored — short
  // scattered runs restart the hardware prefetcher's stride detection and
  // were costing back most of what the pruning saved. On the clustered
  // bench catalog the best-cluster-first bar prunes roughly half of all
  // probed blocks at nprobe 16; the bound pass itself touches 2 bytes per
  // lane per block — a quarter of the code bytes it saves rescanning.
  const int32_t lanes = d + 1;
  const std::size_t stride = pq_.block_stride();
  thread_local std::vector<const int8_t*> lane_base;
  lane_base.resize(static_cast<size_t>(lanes));
  for (int32_t l = 0; l < lanes; ++l) {
    lane_base[static_cast<size_t>(l)] =
        lane_weights[static_cast<size_t>(l)] >= 0.0f ? pq_.bound_lane_max()
                                                     : pq_.bound_lane_min();
  }
  thread_local std::vector<float> bound_scores;
  thread_local std::vector<IvfProbeRange> runs;
  const auto prefetch_run = [&](const IvfProbeRange& pr) {
    const char* p = reinterpret_cast<const char*>(
        pq_.block_codes() +
        static_cast<std::size_t>(pr.begin / kPackedBlockItems) * stride);
    const std::size_t bytes = std::min<std::size_t>(
        4096, static_cast<std::size_t>(
                  (pr.end - pr.begin + kPackedBlockItems - 1) /
                  kPackedBlockItems) *
                  stride);
    for (std::size_t off = 0; off < bytes; off += 64) {
      __builtin_prefetch(p + off, 0, 3);
    }
  };

  for (const ScanUnit& unit : scan_order) {
    if (bar == -std::numeric_limits<float>::infinity()) {
      // No bar yet (before the first compaction): bounds cannot prune, so
      // skip straight to the scan.
      if (!collect_span(unit.lo, unit.hi)) return scan_status;
      continue;
    }
    const int32_t b0 = unit.lo / kPackedBlockItems;
    const int32_t b1 = (unit.hi + kPackedBlockItems - 1) / kPackedBlockItems;
    const int32_t sb0 = b0 / kPackedBlockItems;
    const int32_t nsb =
        (b1 + kPackedBlockItems - 1) / kPackedBlockItems - sb0;
    bound_scores.resize(static_cast<std::size_t>(nsb) * kPackedBlockItems);
    PqScoreBoundBlocks(lane_base.data(), stride, d, lane_weights.data(), base,
                       sb0, nsb, bound_scores.data());
    if (faults.armed() && faults.ShouldFire(FaultPoint::kServeSlowBlock)) {
      std::this_thread::sleep_for(kPqSlowBlockStall);
    }
    runs.clear();
    int32_t run_b = -1;
    for (int32_t b = b0; b <= b1; ++b) {
      const bool keep =
          b < b1 &&
          bound_scores[static_cast<std::size_t>(b - sb0 * kPackedBlockItems)] >=
              bar;
      if (keep) {
        if (run_b < 0) run_b = b;
        continue;
      }
      if (run_b >= 0) {
        runs.push_back({run_b * kPackedBlockItems,
                        std::min<ItemId>(unit.hi, b * kPackedBlockItems)});
        run_b = -1;
      }
    }
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i + 2 < runs.size()) prefetch_run(runs[i + 2]);
      collect_raw(runs[i].begin, runs[i].end);
    }
    if (deadline_hit()) return scan_status;
  }
  if (cand.size() > rerank_budget) compact();

  // Survivors → merged block runs, clamped inside the probe ranges so the
  // re-rank never scores an item the plain ANN scan would not have (the
  // bit-identity contract at rerank_budget ≥ shortlist). Each survivor's
  // block lies in exactly one probe range: range begins are block-aligned
  // and SelectProbes merges ranges that touch, so a block never straddles
  // two of them.
  if (survivors != nullptr) *survivors = static_cast<int64_t>(cand.size());
  if (cand.empty()) return Status::OK();
  thread_local std::vector<ItemId> locals;
  locals.clear();
  locals.reserve(cand.size());
  for (const uint64_t k : cand) locals.push_back(PqCandidateLocal(k));
  std::sort(locals.begin(), locals.end());

  size_t p = 0;  // index into `probes`, advanced in lockstep with `locals`
  int32_t run_lo = -1, run_hi = -1;  // current run of consecutive blocks
  const auto flush = [&](ItemId range_end) {
    if (run_lo < 0) return;
    rerank_ranges->push_back(
        {run_lo * kPackedBlockItems,
         std::min<ItemId>(range_end, run_hi * kPackedBlockItems)});
    run_lo = run_hi = -1;
  };
  for (ItemId local : locals) {
    while (p < probes.size() && local >= probes[p].end) {
      flush(probes[p].end);
      ++p;
    }
    CLAPF_CHECK(p < probes.size() && local >= probes[p].begin);
    const int32_t b = local / kPackedBlockItems;
    if (run_lo < 0) {
      run_lo = b;
      run_hi = b + 1;
    } else if (b < run_hi) {
      // same block as the previous survivor
    } else if (b == run_hi) {
      run_hi = b + 1;
    } else {
      flush(probes[p].end);
      run_lo = b;
      run_hi = b + 1;
    }
  }
  if (p < probes.size()) flush(probes[p].end);
  return Status::OK();
}

size_t IvfIndex::memory_bytes() const {
  return packed_.memory_bytes() + pq_.memory_bytes() +
         centroids_.size() * sizeof(float) +
         (assignment_.size() + local_to_global_.size() +
          global_to_local_.size()) *
             sizeof(int32_t) +
         cluster_begin_.size() * sizeof(int32_t) +
         item_crc_.size() * sizeof(uint32_t);
}

Status IvfIndex::VerifyStructure(const std::string& context) const {
  const size_t n = static_cast<size_t>(num_items_);
  if (assignment_.size() != n || local_to_global_.size() != n ||
      global_to_local_.size() != n || item_crc_.size() != n ||
      cluster_begin_.size() != static_cast<size_t>(num_clusters_) + 1) {
    return Status::Corruption(context + ": ivf index table sizes inconsistent");
  }
  if (packed_.num_items() != num_items_ ||
      packed_.num_factors() != num_factors_) {
    return Status::Corruption(context +
                              ": ivf packed snapshot dimensions disagree");
  }
  if (cluster_begin_.front() != 0 ||
      cluster_begin_.back() != num_items_) {
    return Status::Corruption(context + ": ivf cluster offsets do not cover "
                                        "the catalog");
  }
  for (size_t c = 1; c < cluster_begin_.size(); ++c) {
    if (cluster_begin_[c] < cluster_begin_[c - 1]) {
      return Status::Corruption(context + ": ivf cluster offsets not "
                                          "monotone");
    }
  }
  std::vector<bool> seen(n, false);
  for (size_t l = 0; l < n; ++l) {
    const int32_t g = local_to_global_[l];
    if (g < 0 || static_cast<size_t>(g) >= n || seen[static_cast<size_t>(g)]) {
      return Status::Corruption(context +
                                ": ivf permutation is not a bijection");
    }
    seen[static_cast<size_t>(g)] = true;
  }
  for (size_t i = 0; i < n; ++i) {
    const int32_t c = assignment_[i];
    if (c < 0 || c >= num_clusters_) {
      return Status::Corruption(context + ": ivf assignment out of range");
    }
  }
  if (options_.pq) {
    Status pq = pq_.VerifyGeometry(packed_, context);
    if (!pq.ok()) return pq;
  }
  return Status::OK();
}

void IvfIndex::DesyncForTesting() {
  if (local_to_global_.size() < 2) return;
  std::reverse(local_to_global_.begin(), local_to_global_.end());
  for (size_t l = 0; l < local_to_global_.size(); ++l) {
    global_to_local_[static_cast<size_t>(local_to_global_[l])] =
        static_cast<int32_t>(l);
  }
}

Status VerifyIvfBinding(const FactorModel& model, const IvfIndex& index,
                        const std::string& context) {
  if (model.num_items() != index.num_items() ||
      model.num_factors() != index.num_factors()) {
    return Status::FailedPrecondition(
        context + ": ivf index dimensions disagree with the model (index " +
        std::to_string(index.num_items()) + "x" +
        std::to_string(index.num_factors()) + ", model " +
        std::to_string(model.num_items()) + "x" +
        std::to_string(model.num_factors()) + ")");
  }
  Status structure = index.VerifyStructure(context);
  if (!structure.ok()) return structure;
  for (ItemId i = 0; i < model.num_items(); ++i) {
    if (ItemCrc(model, i) != index.item_crcs()[static_cast<size_t>(i)]) {
      return Status::FailedPrecondition(
          context + ": ivf index is stale — item " + std::to_string(i) +
          "'s parameters changed since the index was built");
    }
  }
  return Status::OK();
}

double MeasureIvfRecall(const PackedSnapshot& exact, const IvfIndex& index,
                        int32_t sample_users, size_t k, int32_t nprobe) {
  if (exact.num_items() != index.num_items() ||
      exact.num_users() != index.packed().num_users()) {
    return 0.0;
  }
  const int32_t n = exact.num_items();
  const int32_t num_users = exact.num_users();
  if (n == 0 || num_users == 0 || sample_users <= 0) return 1.0;
  k = std::min(k, static_cast<size_t>(n));
  if (k == 0) return 1.0;

  const int32_t stride =
      std::max(1, num_users / std::min(sample_users, num_users));
  std::vector<IvfProbeRange> ranges;
  double recall_sum = 0.0;
  int32_t users = 0;
  for (UserId u = 0; u < num_users; u += stride) {
    TopKAccumulator truth_acc(k);
    ScoreBlocksTopK(exact, u, 0, n, nullptr, &truth_acc);
    const std::vector<ScoredItem> truth = truth_acc.Take();

    index.SelectProbes(u, nprobe, k, &ranges, nullptr);
    TopKAccumulator ann_acc(k);
    for (const IvfProbeRange& r : ranges) {
      ScoreBlocksTopKMapped(index.packed(), u, r.begin, r.end,
                            index.local_to_global_data(), nullptr, &ann_acc);
    }
    const std::vector<ScoredItem> ann = ann_acc.Take();

    std::vector<int32_t> truth_ids, ann_ids;
    truth_ids.reserve(truth.size());
    ann_ids.reserve(ann.size());
    for (const ScoredItem& s : truth) truth_ids.push_back(s.item);
    for (const ScoredItem& s : ann) ann_ids.push_back(s.item);
    std::sort(truth_ids.begin(), truth_ids.end());
    std::sort(ann_ids.begin(), ann_ids.end());
    std::vector<int32_t> both;
    std::set_intersection(truth_ids.begin(), truth_ids.end(), ann_ids.begin(),
                          ann_ids.end(), std::back_inserter(both));
    recall_sum += static_cast<double>(both.size()) /
                  static_cast<double>(truth.size());
    ++users;
  }
  return users > 0 ? recall_sum / users : 1.0;
}

Status VerifyIvfRecall(const PackedSnapshot& exact, const IvfIndex& index,
                       int32_t sample_users, size_t k, int32_t nprobe,
                       double floor, const std::string& context) {
  if (exact.num_items() != index.num_items()) {
    return Status::FailedPrecondition(
        context + ": ivf recall probe dimensions disagree (exact " +
        std::to_string(exact.num_items()) + " items, index " +
        std::to_string(index.num_items()) + ")");
  }
  const double recall = MeasureIvfRecall(exact, index, sample_users, k, nprobe);
  if (recall < floor) {
    return Status::FailedPrecondition(
        context + ": ivf measured recall@" + std::to_string(k) + " = " +
        std::to_string(recall) + " at nprobe=" + std::to_string(nprobe) +
        " below the contract floor " + std::to_string(floor));
  }
  return Status::OK();
}

double MeasurePqRecall(const PackedSnapshot& exact, const IvfIndex& index,
                       int32_t sample_users, size_t k, int32_t nprobe,
                       size_t rerank_budget) {
  if (!index.has_pq()) return 0.0;
  if (exact.num_items() != index.num_items() ||
      exact.num_users() != index.packed().num_users()) {
    return 0.0;
  }
  const int32_t n = exact.num_items();
  const int32_t num_users = exact.num_users();
  if (n == 0 || num_users == 0 || sample_users <= 0) return 1.0;
  k = std::min(k, static_cast<size_t>(n));
  if (k == 0) return 1.0;
  if (rerank_budget == 0) {
    rerank_budget = static_cast<size_t>(
        std::max<int32_t>(1, index.default_rerank_budget()));
  }
  rerank_budget = std::max(rerank_budget, k);

  const int32_t stride =
      std::max(1, num_users / std::min(sample_users, num_users));
  std::vector<IvfProbeRange> probes, rerank;
  double recall_sum = 0.0;
  int32_t users = 0;
  for (UserId u = 0; u < num_users; u += stride) {
    TopKAccumulator truth_acc(k);
    ScoreBlocksTopK(exact, u, 0, n, nullptr, &truth_acc);
    const std::vector<ScoredItem> truth = truth_acc.Take();

    // The composed serving path verbatim: probes → quantized first pass →
    // exact fused re-rank of the surviving blocks.
    index.SelectProbes(u, nprobe, k, &probes, nullptr);
    Status first = index.QuantizedShortlist(u, probes, rerank_budget,
                                            /*excluded=*/nullptr,
                                            /*deadline=*/std::nullopt,
                                            &rerank, /*survivors=*/nullptr);
    CLAPF_CHECK(first.ok());  // no deadline passed, so expiry is impossible
    TopKAccumulator pq_acc(k);
    for (const IvfProbeRange& r : rerank) {
      ScoreBlocksTopKMapped(index.packed(), u, r.begin, r.end,
                            index.local_to_global_data(), nullptr, &pq_acc);
    }
    const std::vector<ScoredItem> got = pq_acc.Take();

    std::vector<int32_t> truth_ids, got_ids;
    truth_ids.reserve(truth.size());
    got_ids.reserve(got.size());
    for (const ScoredItem& s : truth) truth_ids.push_back(s.item);
    for (const ScoredItem& s : got) got_ids.push_back(s.item);
    std::sort(truth_ids.begin(), truth_ids.end());
    std::sort(got_ids.begin(), got_ids.end());
    std::vector<int32_t> both;
    std::set_intersection(truth_ids.begin(), truth_ids.end(), got_ids.begin(),
                          got_ids.end(), std::back_inserter(both));
    recall_sum += static_cast<double>(both.size()) /
                  static_cast<double>(truth.size());
    ++users;
  }
  return users > 0 ? recall_sum / users : 1.0;
}

Status VerifyPqRecall(const PackedSnapshot& exact, const IvfIndex& index,
                      int32_t sample_users, size_t k, int32_t nprobe,
                      size_t rerank_budget, double floor,
                      const std::string& context) {
  if (!index.has_pq()) {
    return Status::FailedPrecondition(
        context + ": ivf pq recall gate requires a code book but the index "
                  "carries none (or it is desynced from the catalog)");
  }
  if (exact.num_items() != index.num_items()) {
    return Status::FailedPrecondition(
        context + ": ivf pq recall probe dimensions disagree (exact " +
        std::to_string(exact.num_items()) + " items, index " +
        std::to_string(index.num_items()) + ")");
  }
  const double recall =
      MeasurePqRecall(exact, index, sample_users, k, nprobe, rerank_budget);
  if (recall < floor) {
    return Status::FailedPrecondition(
        context + ": ivf pq composed measured recall@" + std::to_string(k) +
        " = " + std::to_string(recall) + " at nprobe=" +
        std::to_string(nprobe) + " below the contract floor " +
        std::to_string(floor));
  }
  return Status::OK();
}

}  // namespace clapf
