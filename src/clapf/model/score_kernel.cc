#include "clapf/model/score_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "clapf/util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define CLAPF_SCORE_KERNEL_X86 1
#endif

namespace clapf {
namespace {

using KernelFn = void (*)(const float* user, int32_t num_factors,
                          const float* blocks, std::size_t stride,
                          int32_t num_blocks, float* out);

// Branch-free blocked kernel: each block's accumulators start from the bias
// lane (zeros when the model has no bias — layout, not a branch, handles it)
// and the factor loop walks contiguous 8-float strips. The 8 lanes are
// split into two 4-wide halves so SSE2-level auto-vectorization maps each
// half onto one vector register without peeling.
void ScoreBlocksPortable(const float* user, int32_t num_factors,
                         const float* blocks, std::size_t stride,
                         int32_t num_blocks, float* out) {
  for (int32_t b = 0; b < num_blocks; ++b) {
    const float* blk = blocks + static_cast<std::size_t>(b) * stride;
    float lo[4], hi[4];
    for (int l = 0; l < 4; ++l) {
      lo[l] = blk[l];
      hi[l] = blk[4 + l];
    }
    for (int32_t f = 0; f < num_factors; ++f) {
      const float uf = user[f];
      const float* strip =
          blk + static_cast<std::size_t>(f + 1) * kPackedBlockItems;
      for (int l = 0; l < 4; ++l) lo[l] += uf * strip[l];
      for (int l = 0; l < 4; ++l) hi[l] += uf * strip[4 + l];
    }
    float* dst = out + static_cast<std::size_t>(b) * kPackedBlockItems;
    for (int l = 0; l < 4; ++l) {
      dst[l] = lo[l];
      dst[4 + l] = hi[l];
    }
  }
}

#ifdef CLAPF_SCORE_KERNEL_X86
// AVX2/FMA specialization: one 256-bit register scores a whole block, and
// two blocks run interleaved so the FMA chains of one hide the latency of
// the other. Compiled with a target attribute so the rest of the binary
// stays baseline x86-64; only runtime dispatch can reach it.
__attribute__((target("avx2,fma"))) void ScoreBlocksAvx2(
    const float* user, int32_t num_factors, const float* blocks,
    std::size_t stride, int32_t num_blocks, float* out) {
  int32_t b = 0;
  for (; b + 1 < num_blocks; b += 2) {
    const float* b0 = blocks + static_cast<std::size_t>(b) * stride;
    const float* b1 = b0 + stride;
    __m256 acc0 = _mm256_load_ps(b0);  // bias lanes
    __m256 acc1 = _mm256_load_ps(b1);
    for (int32_t f = 0; f < num_factors; ++f) {
      const __m256 uf = _mm256_set1_ps(user[f]);
      const std::size_t off = static_cast<std::size_t>(f + 1) *
                              kPackedBlockItems;
      acc0 = _mm256_fmadd_ps(uf, _mm256_load_ps(b0 + off), acc0);
      acc1 = _mm256_fmadd_ps(uf, _mm256_load_ps(b1 + off), acc1);
    }
    _mm256_storeu_ps(out + static_cast<std::size_t>(b) * kPackedBlockItems,
                     acc0);
    _mm256_storeu_ps(
        out + static_cast<std::size_t>(b + 1) * kPackedBlockItems, acc1);
  }
  if (b < num_blocks) {
    const float* blk = blocks + static_cast<std::size_t>(b) * stride;
    __m256 acc = _mm256_load_ps(blk);
    for (int32_t f = 0; f < num_factors; ++f) {
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(user[f]),
          _mm256_load_ps(blk + static_cast<std::size_t>(f + 1) *
                                   kPackedBlockItems),
          acc);
    }
    _mm256_storeu_ps(out + static_cast<std::size_t>(b) * kPackedBlockItems,
                     acc);
  }
}
#endif  // CLAPF_SCORE_KERNEL_X86

using PqKernelFn = void (*)(const int8_t* codes, std::size_t stride,
                            int32_t num_factors, const float* lane_weights,
                            float base, int32_t num_blocks, float* out);

// Portable quantized kernel: same blocked shape as the float kernel, with
// each int8 code widened to float and scaled by the per-query lane weight.
// The per-query constant `base` seeds every accumulator so quantized scores
// land on the exact-score axis (uniform shift — never changes the ranking).
void PqScoreBlocksPortable(const int8_t* codes, std::size_t stride,
                           int32_t num_factors, const float* lane_weights,
                           float base, int32_t num_blocks, float* out) {
  const int32_t lanes = num_factors + 1;
  for (int32_t b = 0; b < num_blocks; ++b) {
    const int8_t* blk = codes + static_cast<std::size_t>(b) * stride;
    float lo[4], hi[4];
    for (int l = 0; l < 4; ++l) {
      lo[l] = base;
      hi[l] = base;
    }
    for (int32_t f = 0; f < lanes; ++f) {
      const float w = lane_weights[f];
      const int8_t* strip =
          blk + static_cast<std::size_t>(f) * kPackedBlockItems;
      for (int l = 0; l < 4; ++l) lo[l] += w * static_cast<float>(strip[l]);
      for (int l = 0; l < 4; ++l) {
        hi[l] += w * static_cast<float>(strip[4 + l]);
      }
    }
    float* dst = out + static_cast<std::size_t>(b) * kPackedBlockItems;
    for (int l = 0; l < 4; ++l) {
      dst[l] = lo[l];
      dst[4 + l] = hi[l];
    }
  }
}

#ifdef CLAPF_SCORE_KERNEL_X86
// AVX2/FMA quantized kernel: one 64-bit load brings in a whole block's lane
// strip, sign-extends to epi32, converts to floats, and FMAs against the
// broadcast lane weight — 8 items per instruction at a quarter of the float
// kernel's memory traffic. Two blocks interleave to hide FMA latency, like
// the float kernel.
__attribute__((target("avx2,fma"))) void PqScoreBlocksAvx2(
    const int8_t* codes, std::size_t stride, int32_t num_factors,
    const float* lane_weights, float base, int32_t num_blocks, float* out) {
  const int32_t lanes = num_factors + 1;
  const __m256 vbase = _mm256_set1_ps(base);
  int32_t b = 0;
  for (; b + 1 < num_blocks; b += 2) {
    const int8_t* b0 = codes + static_cast<std::size_t>(b) * stride;
    const int8_t* b1 = b0 + stride;
    __m256 acc0 = vbase;
    __m256 acc1 = vbase;
    for (int32_t f = 0; f < lanes; ++f) {
      const __m256 w = _mm256_set1_ps(lane_weights[f]);
      const std::size_t off = static_cast<std::size_t>(f) * kPackedBlockItems;
      const __m256 c0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0 + off))));
      const __m256 c1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b1 + off))));
      acc0 = _mm256_fmadd_ps(w, c0, acc0);
      acc1 = _mm256_fmadd_ps(w, c1, acc1);
    }
    _mm256_storeu_ps(out + static_cast<std::size_t>(b) * kPackedBlockItems,
                     acc0);
    _mm256_storeu_ps(
        out + static_cast<std::size_t>(b + 1) * kPackedBlockItems, acc1);
  }
  if (b < num_blocks) {
    const int8_t* blk = codes + static_cast<std::size_t>(b) * stride;
    __m256 acc = vbase;
    for (int32_t f = 0; f < lanes; ++f) {
      const __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              blk + static_cast<std::size_t>(f) * kPackedBlockItems))));
      acc = _mm256_fmadd_ps(_mm256_set1_ps(lane_weights[f]), c, acc);
    }
    _mm256_storeu_ps(out + static_cast<std::size_t>(b) * kPackedBlockItems,
                     acc);
  }
}
#endif  // CLAPF_SCORE_KERNEL_X86

using PqBoundFn = void (*)(const int8_t* const* lane_src, std::size_t stride,
                           int32_t num_factors, const float* lane_weights,
                           float base, int32_t num_blocks, float* out);

// Portable bound kernel: PqScoreBlocksPortable with each lane strip read
// from its own source array. The accumulation chain per output slot is
// identical, which is what makes the result a bit-exact corner bound.
void PqScoreBoundBlocksPortable(const int8_t* const* lane_src,
                                std::size_t stride, int32_t num_factors,
                                const float* lane_weights, float base,
                                int32_t num_blocks, float* out) {
  const int32_t lanes = num_factors + 1;
  for (int32_t b = 0; b < num_blocks; ++b) {
    float lo[4], hi[4];
    for (int l = 0; l < 4; ++l) {
      lo[l] = base;
      hi[l] = base;
    }
    for (int32_t f = 0; f < lanes; ++f) {
      const float w = lane_weights[f];
      const int8_t* strip = lane_src[f] +
                            static_cast<std::size_t>(b) * stride +
                            static_cast<std::size_t>(f) * kPackedBlockItems;
      for (int l = 0; l < 4; ++l) lo[l] += w * static_cast<float>(strip[l]);
      for (int l = 0; l < 4; ++l) {
        hi[l] += w * static_cast<float>(strip[4 + l]);
      }
    }
    float* dst = out + static_cast<std::size_t>(b) * kPackedBlockItems;
    for (int l = 0; l < 4; ++l) {
      dst[l] = lo[l];
      dst[4 + l] = hi[l];
    }
  }
}

#ifdef CLAPF_SCORE_KERNEL_X86
// AVX2/FMA bound kernel: PqScoreBlocksAvx2's recurrence with per-lane
// source arrays; same two-block interleave, same chain, bit-equal outputs.
__attribute__((target("avx2,fma"))) void PqScoreBoundBlocksAvx2(
    const int8_t* const* lane_src, std::size_t stride, int32_t num_factors,
    const float* lane_weights, float base, int32_t num_blocks, float* out) {
  const int32_t lanes = num_factors + 1;
  const __m256 vbase = _mm256_set1_ps(base);
  int32_t b = 0;
  for (; b + 1 < num_blocks; b += 2) {
    const std::size_t off0 = static_cast<std::size_t>(b) * stride;
    __m256 acc0 = vbase;
    __m256 acc1 = vbase;
    for (int32_t f = 0; f < lanes; ++f) {
      const __m256 w = _mm256_set1_ps(lane_weights[f]);
      const int8_t* strip = lane_src[f] + off0 +
                            static_cast<std::size_t>(f) * kPackedBlockItems;
      const __m256 c0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(strip))));
      const __m256 c1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(
              reinterpret_cast<const __m128i*>(strip + stride))));
      acc0 = _mm256_fmadd_ps(w, c0, acc0);
      acc1 = _mm256_fmadd_ps(w, c1, acc1);
    }
    _mm256_storeu_ps(out + static_cast<std::size_t>(b) * kPackedBlockItems,
                     acc0);
    _mm256_storeu_ps(
        out + static_cast<std::size_t>(b + 1) * kPackedBlockItems, acc1);
  }
  if (b < num_blocks) {
    __m256 acc = vbase;
    for (int32_t f = 0; f < lanes; ++f) {
      const __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              lane_src[f] + static_cast<std::size_t>(b) * stride +
              static_cast<std::size_t>(f) * kPackedBlockItems))));
      acc = _mm256_fmadd_ps(_mm256_set1_ps(lane_weights[f]), c, acc);
    }
    _mm256_storeu_ps(out + static_cast<std::size_t>(b) * kPackedBlockItems,
                     acc);
  }
}
#endif  // CLAPF_SCORE_KERNEL_X86

PqBoundFn PqBoundFor(ScoreKernel kernel) {
#ifdef CLAPF_SCORE_KERNEL_X86
  if (kernel == ScoreKernel::kAvx2) return PqScoreBoundBlocksAvx2;
#else
  CLAPF_CHECK(kernel != ScoreKernel::kAvx2);
#endif
  return PqScoreBoundBlocksPortable;
}

using PqCollectFn = void (*)(const int8_t* codes, std::size_t stride,
                             int32_t num_factors, const float* lane_weights,
                             float base, ItemId begin, ItemId end, float bar,
                             std::vector<uint64_t>* out);

// Lane mask for a (possibly partial) tail block starting at id0: pad slots
// past `end` must never be emitted, whatever their pad codes score.
uint32_t PqKeepMask(ItemId id0, ItemId end) {
  const ItemId n = end - id0;
  return n >= kPackedBlockItems ? 0xffu
                                : ((1u << static_cast<uint32_t>(n)) - 1u);
}

// Portable fused scan+filter: score one block at a time through the
// portable quantized kernel, then append the slots at or above the bar.
void PqCollectPortable(const int8_t* codes, std::size_t stride,
                       int32_t num_factors, const float* lane_weights,
                       float base, ItemId begin, ItemId end, float bar,
                       std::vector<uint64_t>* out) {
  float tmp[kPackedBlockItems];
  const int32_t first_block = begin / kPackedBlockItems;
  const int32_t last_block = (end - 1) / kPackedBlockItems;
  for (int32_t b = first_block; b <= last_block; ++b) {
    PqScoreBlocksPortable(codes + static_cast<std::size_t>(b) * stride,
                          stride, num_factors, lane_weights, base, 1, tmp);
    const ItemId id0 = b * kPackedBlockItems;
    const ItemId hi = std::min<ItemId>(end, id0 + kPackedBlockItems);
    for (ItemId i = id0; i < hi; ++i) {
      const float s = tmp[i - id0];
      if (s >= bar) out->push_back(PqPackCandidate(s, i));
    }
  }
}

#ifdef CLAPF_SCORE_KERNEL_X86
// Appends the masked-in lanes of one scored block that reach the bar. The
// compare and movemask happen on the accumulator register; the store to
// `tmp` is only paid when at least one lane passes — with a converged bar
// almost every block exits on `mask == 0`.
__attribute__((target("avx2,fma"))) inline void PqEmitAbove(
    __m256 scores, __m256 vbar, ItemId id0, uint32_t keep_mask,
    std::vector<uint64_t>* out) {
  uint32_t mask = static_cast<uint32_t>(_mm256_movemask_ps(
                      _mm256_cmp_ps(scores, vbar, _CMP_GE_OQ))) &
                  keep_mask;
  if (mask == 0) return;
  alignas(32) float tmp[kPackedBlockItems];
  _mm256_store_ps(tmp, scores);
  while (mask != 0) {
    const int j = __builtin_ctz(mask);
    mask &= mask - 1;
    out->push_back(PqPackCandidate(tmp[j], id0 + j));
  }
}

// AVX2 fused scan+filter: the same two-block-interleaved int8 recurrence as
// PqScoreBlocksAvx2, but scores never leave registers unless they pass the
// bar.
__attribute__((target("avx2,fma"))) void PqCollectAvx2(
    const int8_t* codes, std::size_t stride, int32_t num_factors,
    const float* lane_weights, float base, ItemId begin, ItemId end,
    float bar, std::vector<uint64_t>* out) {
  const int32_t lanes = num_factors + 1;
  const __m256 vbase = _mm256_set1_ps(base);
  const __m256 vbar = _mm256_set1_ps(bar);
  const int32_t first_block = begin / kPackedBlockItems;
  const int32_t last_block = (end - 1) / kPackedBlockItems;
  int32_t b = first_block;
  for (; b + 1 <= last_block; b += 2) {
    const int8_t* b0 = codes + static_cast<std::size_t>(b) * stride;
    const int8_t* b1 = b0 + stride;
    __m256 acc0 = vbase;
    __m256 acc1 = vbase;
    for (int32_t f = 0; f < lanes; ++f) {
      const __m256 w = _mm256_set1_ps(lane_weights[f]);
      const std::size_t off = static_cast<std::size_t>(f) * kPackedBlockItems;
      const __m256 c0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0 + off))));
      const __m256 c1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b1 + off))));
      acc0 = _mm256_fmadd_ps(w, c0, acc0);
      acc1 = _mm256_fmadd_ps(w, c1, acc1);
    }
    PqEmitAbove(acc0, vbar, b * kPackedBlockItems,
                PqKeepMask(b * kPackedBlockItems, end), out);
    PqEmitAbove(acc1, vbar, (b + 1) * kPackedBlockItems,
                PqKeepMask((b + 1) * kPackedBlockItems, end), out);
  }
  if (b <= last_block) {
    const int8_t* blk = codes + static_cast<std::size_t>(b) * stride;
    __m256 acc = vbase;
    for (int32_t f = 0; f < lanes; ++f) {
      const __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              blk + static_cast<std::size_t>(f) * kPackedBlockItems))));
      acc = _mm256_fmadd_ps(_mm256_set1_ps(lane_weights[f]), c, acc);
    }
    PqEmitAbove(acc, vbar, b * kPackedBlockItems,
                PqKeepMask(b * kPackedBlockItems, end), out);
  }
}
#endif  // CLAPF_SCORE_KERNEL_X86

PqCollectFn PqCollectFor(ScoreKernel kernel) {
#ifdef CLAPF_SCORE_KERNEL_X86
  if (kernel == ScoreKernel::kAvx2) return PqCollectAvx2;
#else
  CLAPF_CHECK(kernel != ScoreKernel::kAvx2);
#endif
  return PqCollectPortable;
}

bool CpuHasAvx2Fma() {
#ifdef CLAPF_SCORE_KERNEL_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// -1 = auto dispatch; otherwise the forced ScoreKernel value.
std::atomic<int> g_forced_kernel{-1};

KernelFn KernelFor(ScoreKernel kernel) {
#ifdef CLAPF_SCORE_KERNEL_X86
  if (kernel == ScoreKernel::kAvx2) return ScoreBlocksAvx2;
#else
  CLAPF_CHECK(kernel != ScoreKernel::kAvx2);
#endif
  return ScoreBlocksPortable;
}

PqKernelFn PqKernelFor(ScoreKernel kernel) {
#ifdef CLAPF_SCORE_KERNEL_X86
  if (kernel == ScoreKernel::kAvx2) return PqScoreBlocksAvx2;
#else
  CLAPF_CHECK(kernel != ScoreKernel::kAvx2);
#endif
  return PqScoreBlocksPortable;
}

}  // namespace

const char* ScoreKernelName(ScoreKernel kernel) {
  switch (kernel) {
    case ScoreKernel::kPortable:
      return "portable";
    case ScoreKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ScoreKernelSupported(ScoreKernel kernel) {
  return kernel == ScoreKernel::kPortable || CpuHasAvx2Fma();
}

ScoreKernel ActiveScoreKernel() {
  const int forced = g_forced_kernel.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<ScoreKernel>(forced);
  return CpuHasAvx2Fma() ? ScoreKernel::kAvx2 : ScoreKernel::kPortable;
}

void ForceScoreKernel(ScoreKernel kernel) {
  CLAPF_CHECK(ScoreKernelSupported(kernel))
      << "cannot force unsupported score kernel " << ScoreKernelName(kernel);
  g_forced_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

void ClearScoreKernelOverride() {
  g_forced_kernel.store(-1, std::memory_order_relaxed);
}

void ScoreBlocks(const PackedSnapshot& snap, UserId u, int32_t first_block,
                 int32_t num_blocks, float* out) {
  CLAPF_CHECK(first_block >= 0 && num_blocks >= 0 &&
              first_block + num_blocks <= snap.num_blocks());
  const float* user = snap.user_factors(u);
  const float* blocks =
      snap.block_data() +
      static_cast<std::size_t>(first_block) * snap.block_stride();
  KernelFor(ActiveScoreKernel())(user, snap.num_factors(), blocks,
                                 snap.block_stride(), num_blocks, out);
}

void ScoreBlocksTopK(const PackedSnapshot& snap, UserId u, ItemId begin,
                     ItemId end, const std::vector<bool>* excluded,
                     TopKAccumulator* acc, double reject_below) {
  CLAPF_CHECK(begin >= 0 && begin <= end && end <= snap.num_items());
  CLAPF_CHECK(begin % kPackedBlockItems == 0);
  if (begin == end) return;

  // Score a cache-resident chunk of blocks, then run the scalar filter
  // (exclusions + threshold early-reject) over it. The reject test uses
  // strict less-than: a score tying the current threshold must still go
  // through Push so the smaller-item-id tie-break is applied exactly.
  constexpr int32_t kChunkBlocks = 64;
  float buf[kChunkBlocks * kPackedBlockItems];

  const int32_t last_block = (end - 1) / kPackedBlockItems;
  for (int32_t b = begin / kPackedBlockItems; b <= last_block;
       b += kChunkBlocks) {
    const int32_t nblocks = std::min(kChunkBlocks, last_block - b + 1);
    ScoreBlocks(snap, u, b, nblocks, buf);
    const ItemId lo = b * kPackedBlockItems;
    const ItemId hi =
        std::min<ItemId>(end, lo + nblocks * kPackedBlockItems);
    for (ItemId i = lo; i < hi; ++i) {
      if (excluded != nullptr && (*excluded)[static_cast<std::size_t>(i)]) {
        continue;
      }
      const double s = static_cast<double>(buf[i - lo]);
      if (s < reject_below) continue;
      if (acc->full() && s < acc->threshold_score()) continue;
      acc->Push(i, s);
    }
  }
}

void PqScoreBlocks(const int8_t* codes, std::size_t code_stride,
                   int32_t num_factors, const float* lane_weights, float base,
                   int32_t first_block, int32_t num_blocks, float* out) {
  CLAPF_CHECK(first_block >= 0 && num_blocks >= 0);
  PqKernelFor(ActiveScoreKernel())(
      codes + static_cast<std::size_t>(first_block) * code_stride,
      code_stride, num_factors, lane_weights, base, num_blocks, out);
}

void PqScoreBoundBlocks(const int8_t* const* lane_src,
                        std::size_t code_stride, int32_t num_factors,
                        const float* lane_weights, float base,
                        int32_t first_block, int32_t num_blocks, float* out) {
  CLAPF_CHECK(first_block >= 0 && num_blocks >= 0);
  // Offset each lane pointer by the first block once; the kernels index
  // from block 0 of whatever they are handed.
  constexpr int32_t kMaxStackLanes = 257;
  const int32_t lanes = num_factors + 1;
  CLAPF_CHECK(lanes <= kMaxStackLanes);
  const int8_t* shifted[kMaxStackLanes];
  for (int32_t l = 0; l < lanes; ++l) {
    shifted[l] =
        lane_src[l] + static_cast<std::size_t>(first_block) * code_stride;
  }
  PqBoundFor(ActiveScoreKernel())(shifted, code_stride, num_factors,
                                  lane_weights, base, num_blocks, out);
}

void PqScoreCollect(const int8_t* codes, std::size_t code_stride,
                    int32_t num_factors, const float* lane_weights,
                    float base, ItemId begin, ItemId end, float bar,
                    std::vector<uint64_t>* out) {
  CLAPF_CHECK(begin >= 0 && begin <= end);
  CLAPF_CHECK(begin % kPackedBlockItems == 0);
  if (begin == end) return;
  PqCollectFor(ActiveScoreKernel())(codes, code_stride, num_factors,
                                    lane_weights, base, begin, end, bar, out);
}

void ScoreBlocksTopKMapped(const PackedSnapshot& snap, UserId u, ItemId begin,
                           ItemId end, const int32_t* local_to_global,
                           const std::vector<bool>* excluded,
                           TopKAccumulator* acc, double reject_below) {
  CLAPF_CHECK(begin >= 0 && begin <= end && end <= snap.num_items());
  CLAPF_CHECK(begin % kPackedBlockItems == 0);
  if (begin == end) return;

  constexpr int32_t kChunkBlocks = 64;
  float buf[kChunkBlocks * kPackedBlockItems];

  const int32_t last_block = (end - 1) / kPackedBlockItems;
  for (int32_t b = begin / kPackedBlockItems; b <= last_block;
       b += kChunkBlocks) {
    const int32_t nblocks = std::min(kChunkBlocks, last_block - b + 1);
    ScoreBlocks(snap, u, b, nblocks, buf);
    const ItemId lo = b * kPackedBlockItems;
    const ItemId hi =
        std::min<ItemId>(end, lo + nblocks * kPackedBlockItems);
    for (ItemId i = lo; i < hi; ++i) {
      const ItemId g = local_to_global[static_cast<std::size_t>(i)];
      if (excluded != nullptr && (*excluded)[static_cast<std::size_t>(g)]) {
        continue;
      }
      const double s = static_cast<double>(buf[i - lo]);
      if (s < reject_below) continue;
      if (acc->full() && s < acc->threshold_score()) continue;
      acc->Push(g, s);
    }
  }
}

}  // namespace clapf
