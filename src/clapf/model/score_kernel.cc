#include "clapf/model/score_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "clapf/util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define CLAPF_SCORE_KERNEL_X86 1
#endif

namespace clapf {
namespace {

using KernelFn = void (*)(const float* user, int32_t num_factors,
                          const float* blocks, std::size_t stride,
                          int32_t num_blocks, float* out);

// Branch-free blocked kernel: each block's accumulators start from the bias
// lane (zeros when the model has no bias — layout, not a branch, handles it)
// and the factor loop walks contiguous 8-float strips. The 8 lanes are
// split into two 4-wide halves so SSE2-level auto-vectorization maps each
// half onto one vector register without peeling.
void ScoreBlocksPortable(const float* user, int32_t num_factors,
                         const float* blocks, std::size_t stride,
                         int32_t num_blocks, float* out) {
  for (int32_t b = 0; b < num_blocks; ++b) {
    const float* blk = blocks + static_cast<std::size_t>(b) * stride;
    float lo[4], hi[4];
    for (int l = 0; l < 4; ++l) {
      lo[l] = blk[l];
      hi[l] = blk[4 + l];
    }
    for (int32_t f = 0; f < num_factors; ++f) {
      const float uf = user[f];
      const float* strip =
          blk + static_cast<std::size_t>(f + 1) * kPackedBlockItems;
      for (int l = 0; l < 4; ++l) lo[l] += uf * strip[l];
      for (int l = 0; l < 4; ++l) hi[l] += uf * strip[4 + l];
    }
    float* dst = out + static_cast<std::size_t>(b) * kPackedBlockItems;
    for (int l = 0; l < 4; ++l) {
      dst[l] = lo[l];
      dst[4 + l] = hi[l];
    }
  }
}

#ifdef CLAPF_SCORE_KERNEL_X86
// AVX2/FMA specialization: one 256-bit register scores a whole block, and
// two blocks run interleaved so the FMA chains of one hide the latency of
// the other. Compiled with a target attribute so the rest of the binary
// stays baseline x86-64; only runtime dispatch can reach it.
__attribute__((target("avx2,fma"))) void ScoreBlocksAvx2(
    const float* user, int32_t num_factors, const float* blocks,
    std::size_t stride, int32_t num_blocks, float* out) {
  int32_t b = 0;
  for (; b + 1 < num_blocks; b += 2) {
    const float* b0 = blocks + static_cast<std::size_t>(b) * stride;
    const float* b1 = b0 + stride;
    __m256 acc0 = _mm256_load_ps(b0);  // bias lanes
    __m256 acc1 = _mm256_load_ps(b1);
    for (int32_t f = 0; f < num_factors; ++f) {
      const __m256 uf = _mm256_set1_ps(user[f]);
      const std::size_t off = static_cast<std::size_t>(f + 1) *
                              kPackedBlockItems;
      acc0 = _mm256_fmadd_ps(uf, _mm256_load_ps(b0 + off), acc0);
      acc1 = _mm256_fmadd_ps(uf, _mm256_load_ps(b1 + off), acc1);
    }
    _mm256_storeu_ps(out + static_cast<std::size_t>(b) * kPackedBlockItems,
                     acc0);
    _mm256_storeu_ps(
        out + static_cast<std::size_t>(b + 1) * kPackedBlockItems, acc1);
  }
  if (b < num_blocks) {
    const float* blk = blocks + static_cast<std::size_t>(b) * stride;
    __m256 acc = _mm256_load_ps(blk);
    for (int32_t f = 0; f < num_factors; ++f) {
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(user[f]),
          _mm256_load_ps(blk + static_cast<std::size_t>(f + 1) *
                                   kPackedBlockItems),
          acc);
    }
    _mm256_storeu_ps(out + static_cast<std::size_t>(b) * kPackedBlockItems,
                     acc);
  }
}
#endif  // CLAPF_SCORE_KERNEL_X86

bool CpuHasAvx2Fma() {
#ifdef CLAPF_SCORE_KERNEL_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// -1 = auto dispatch; otherwise the forced ScoreKernel value.
std::atomic<int> g_forced_kernel{-1};

KernelFn KernelFor(ScoreKernel kernel) {
#ifdef CLAPF_SCORE_KERNEL_X86
  if (kernel == ScoreKernel::kAvx2) return ScoreBlocksAvx2;
#else
  CLAPF_CHECK(kernel != ScoreKernel::kAvx2);
#endif
  return ScoreBlocksPortable;
}

}  // namespace

const char* ScoreKernelName(ScoreKernel kernel) {
  switch (kernel) {
    case ScoreKernel::kPortable:
      return "portable";
    case ScoreKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ScoreKernelSupported(ScoreKernel kernel) {
  return kernel == ScoreKernel::kPortable || CpuHasAvx2Fma();
}

ScoreKernel ActiveScoreKernel() {
  const int forced = g_forced_kernel.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<ScoreKernel>(forced);
  return CpuHasAvx2Fma() ? ScoreKernel::kAvx2 : ScoreKernel::kPortable;
}

void ForceScoreKernel(ScoreKernel kernel) {
  CLAPF_CHECK(ScoreKernelSupported(kernel))
      << "cannot force unsupported score kernel " << ScoreKernelName(kernel);
  g_forced_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

void ClearScoreKernelOverride() {
  g_forced_kernel.store(-1, std::memory_order_relaxed);
}

void ScoreBlocks(const PackedSnapshot& snap, UserId u, int32_t first_block,
                 int32_t num_blocks, float* out) {
  CLAPF_CHECK(first_block >= 0 && num_blocks >= 0 &&
              first_block + num_blocks <= snap.num_blocks());
  const float* user = snap.user_factors(u);
  const float* blocks =
      snap.block_data() +
      static_cast<std::size_t>(first_block) * snap.block_stride();
  KernelFor(ActiveScoreKernel())(user, snap.num_factors(), blocks,
                                 snap.block_stride(), num_blocks, out);
}

void ScoreBlocksTopK(const PackedSnapshot& snap, UserId u, ItemId begin,
                     ItemId end, const std::vector<bool>* excluded,
                     TopKAccumulator* acc, double reject_below) {
  CLAPF_CHECK(begin >= 0 && begin <= end && end <= snap.num_items());
  CLAPF_CHECK(begin % kPackedBlockItems == 0);
  if (begin == end) return;

  // Score a cache-resident chunk of blocks, then run the scalar filter
  // (exclusions + threshold early-reject) over it. The reject test uses
  // strict less-than: a score tying the current threshold must still go
  // through Push so the smaller-item-id tie-break is applied exactly.
  constexpr int32_t kChunkBlocks = 64;
  float buf[kChunkBlocks * kPackedBlockItems];

  const int32_t last_block = (end - 1) / kPackedBlockItems;
  for (int32_t b = begin / kPackedBlockItems; b <= last_block;
       b += kChunkBlocks) {
    const int32_t nblocks = std::min(kChunkBlocks, last_block - b + 1);
    ScoreBlocks(snap, u, b, nblocks, buf);
    const ItemId lo = b * kPackedBlockItems;
    const ItemId hi =
        std::min<ItemId>(end, lo + nblocks * kPackedBlockItems);
    for (ItemId i = lo; i < hi; ++i) {
      if (excluded != nullptr && (*excluded)[static_cast<std::size_t>(i)]) {
        continue;
      }
      const double s = static_cast<double>(buf[i - lo]);
      if (s < reject_below) continue;
      if (acc->full() && s < acc->threshold_score()) continue;
      acc->Push(i, s);
    }
  }
}

void ScoreBlocksTopKMapped(const PackedSnapshot& snap, UserId u, ItemId begin,
                           ItemId end, const int32_t* local_to_global,
                           const std::vector<bool>* excluded,
                           TopKAccumulator* acc, double reject_below) {
  CLAPF_CHECK(begin >= 0 && begin <= end && end <= snap.num_items());
  CLAPF_CHECK(begin % kPackedBlockItems == 0);
  if (begin == end) return;

  constexpr int32_t kChunkBlocks = 64;
  float buf[kChunkBlocks * kPackedBlockItems];

  const int32_t last_block = (end - 1) / kPackedBlockItems;
  for (int32_t b = begin / kPackedBlockItems; b <= last_block;
       b += kChunkBlocks) {
    const int32_t nblocks = std::min(kChunkBlocks, last_block - b + 1);
    ScoreBlocks(snap, u, b, nblocks, buf);
    const ItemId lo = b * kPackedBlockItems;
    const ItemId hi =
        std::min<ItemId>(end, lo + nblocks * kPackedBlockItems);
    for (ItemId i = lo; i < hi; ++i) {
      const ItemId g = local_to_global[static_cast<std::size_t>(i)];
      if (excluded != nullptr && (*excluded)[static_cast<std::size_t>(g)]) {
        continue;
      }
      const double s = static_cast<double>(buf[i - lo]);
      if (s < reject_below) continue;
      if (acc->full() && s < acc->threshold_score()) continue;
      acc->Push(g, s);
    }
  }
}

}  // namespace clapf
