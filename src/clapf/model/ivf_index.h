#ifndef CLAPF_MODEL_IVF_INDEX_H_
#define CLAPF_MODEL_IVF_INDEX_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "clapf/model/factor_model.h"
#include "clapf/model/packed_snapshot.h"
#include "clapf/model/pq_codec.h"
#include "clapf/util/status.h"

namespace clapf {

/// Build-time knobs for IvfIndex. The index is a pure function of
/// (model parameter bytes, IvfOptions): equal inputs produce a bit-identical
/// index regardless of build_threads, which is what makes online
/// dirty-cluster rebuilds reproducible.
struct IvfOptions {
  /// Coarse clusters. 0 (default) = ceil(sqrt(num_items)), always clamped to
  /// [1, num_items].
  int32_t num_clusters = 0;
  /// Lloyd iterations over the training sample.
  int32_t kmeans_iterations = 8;
  /// k-means trains on at most this many evenly strided items; the final
  /// assignment pass still visits every item. Keeps a 1M-item build seconds,
  /// not minutes, at no measurable recall cost.
  int32_t max_train_points = 65536;
  /// Seed for centroid initialization.
  uint64_t seed = 1;
  /// Probe-list width used when a query leaves QueryOptions::ann_nprobe at 0.
  int32_t default_nprobe = 8;
  /// Threads for the assignment passes (1 = serial). Never changes the
  /// result: assignments are computed independently per item and centroid
  /// updates are accumulated serially in item order.
  int build_threads = 1;
  /// Build the per-lane int8 code book + codes alongside the repack so
  /// queries can opt into the quantized first-pass path
  /// (QueryOptions::pq). Build cost is one extra O(n·d) pass; query-time
  /// the codes stream at a quarter of the float bandwidth.
  bool pq = false;
  /// Survivor count the quantized first pass keeps for the exact re-rank
  /// when a query leaves QueryOptions::rerank_budget at 0. On clustered
  /// catalogs ~10x k is already at full composed recall (the bench catalog
  /// measures recall@10 = 1.0 at 128) and the scattered re-rank is what a
  /// bigger budget inflates; the composed recall gate measures the
  /// consequence of whatever is configured here.
  int32_t default_rerank_budget = 128;

  /// True when two option sets build structurally compatible indexes — the
  /// precondition for RebuildDirty reusing a previous index's centroids
  /// (and, with pq on, its frozen code book).
  bool CompatibleWith(const IvfOptions& other) const {
    return num_clusters == other.num_clusters &&
           kmeans_iterations == other.kmeans_iterations &&
           max_train_points == other.max_train_points && seed == other.seed &&
           pq == other.pq;
  }
};

/// A contiguous, block-aligned-begin span of *local* item ids inside
/// IvfIndex::packed(), ready to feed the fused kernel.
struct IvfProbeRange {
  ItemId begin = 0;  // multiple of kPackedBlockItems
  ItemId end = 0;
};

/// IVF-style coarse index over the item factors for approximate
/// maximum-inner-product search (MIPS):
///
///   1. Every item vector [b_i, v_i] is lifted into a norm-augmented space
///      x_i = [b_i, v_i, sqrt(M² − b_i² − ‖v_i‖²)] with M the max augmented
///      norm over the catalog, so all x_i share norm M and k-means under
///      plain L2 clusters by *direction* — the standard MIPS→cosine
///      reduction. A query scores as q = [1, u, 0]: q·x_i = f_ui exactly.
///   2. k-means (trained on a deterministic strided sample, then one full
///      assignment pass) partitions the catalog into coarse clusters.
///   3. The catalog is *re-packed in cluster order*: the index owns its own
///      PackedSnapshot whose local item ids are a permutation of the global
///      ids with every cluster occupying one contiguous local range. A
///      probe list is therefore a handful of block-aligned ranges that the
///      exact fused ScoreBlocksTopK kernel re-ranks directly — the
///      approximation lives *only* in which clusters are probed; every
///      scored candidate gets its exact packed score.
///
/// The index binds itself to the source model with a per-item CRC of the
/// item parameters: VerifyIvfBinding detects a stale or desynced index at
/// publish time, and RebuildDirty uses the same CRCs to reassign only the
/// items whose parameters actually changed (frozen centroids), which is the
/// online incremental-publish path.
///
/// Immutable after Build and safe to share read-only across query threads.
class IvfIndex {
 public:
  /// Full build: k-means + cluster-ordered repack. One pass of O(n·k·d/8)
  /// training work plus an O(n·d) repack; queries never allocate.
  static IvfIndex Build(const FactorModel& model, const IvfOptions& options);

  /// Incremental rebuild for online publishes: keeps `previous`'s centroids,
  /// reassigns only the items whose parameter bytes changed (detected via
  /// the stored per-item CRCs; catalog growth counts as changed), then
  /// re-packs. `options` must be CompatibleWith the previous build's (query
  /// knobs like default_nprobe may differ and take effect immediately).
  /// `items_reassigned` (optional) reports how many items moved through the
  /// assignment step. Returns InvalidArgument on incompatible options, a
  /// different factor count / bias mode, or a shrunken catalog — callers
  /// fall back to a full Build.
  static Result<IvfIndex> RebuildDirty(const IvfIndex& previous,
                                       const FactorModel& model,
                                       const IvfOptions& options,
                                       int64_t* items_reassigned);

  int32_t num_items() const { return num_items_; }
  int32_t num_factors() const { return num_factors_; }
  int32_t num_clusters() const { return num_clusters_; }
  const IvfOptions& options() const { return options_; }
  int32_t default_nprobe() const { return options_.default_nprobe; }

  /// The cluster-ordered packed snapshot probe ranges index into. Same users
  /// and the same per-item float parameters as a snapshot of the source
  /// model — only the item order differs — so re-ranked scores are
  /// bit-identical to the full packed scan's.
  const PackedSnapshot& packed() const { return packed_; }

  /// Global item id of local id `local` in packed().
  ItemId ToGlobal(ItemId local) const {
    return local_to_global_[static_cast<size_t>(local)];
  }
  /// Raw local→global table for the fused mapped kernel.
  const int32_t* local_to_global_data() const { return local_to_global_.data(); }

  /// Hints the prefetcher at the packed lanes and id-map entries of `r`'s
  /// first block. Re-rank ranges are mostly single sparse blocks scattered
  /// across a DRAM-resident repack, so each range starts with a demand miss
  /// unless the loop prefetches a few ranges ahead — pure hint, no
  /// behavioral effect.
  void PrefetchRange(const IvfProbeRange& r) const {
    const std::size_t b =
        static_cast<std::size_t>(r.begin) / kPackedBlockItems;
    const char* lanes = reinterpret_cast<const char*>(
        packed_.block_data() + b * packed_.block_stride());
    const std::size_t bytes = packed_.block_stride() * sizeof(float);
    for (std::size_t off = 0; off < bytes; off += 64) {
      __builtin_prefetch(lanes + off, 0, 1);
    }
    __builtin_prefetch(local_to_global_.data() + r.begin, 0, 1);
  }

  /// Cluster of global item `i` / number of (real) items in cluster `c`.
  int32_t ClusterOf(ItemId i) const {
    return assignment_[static_cast<size_t>(i)];
  }
  int32_t ClusterSize(int32_t c) const {
    return cluster_begin_[static_cast<size_t>(c) + 1] -
           cluster_begin_[static_cast<size_t>(c)];
  }

  /// Selects the probe list for user `u`: ranks clusters by centroid inner
  /// product with the augmented query and keeps the top `nprobe` (clamped to
  /// [1, num_clusters]), widening past `nprobe` until at least `min_items`
  /// real items are covered (or the whole catalog is) — the guarantee that a
  /// query can always fill k slots net of exclusions. Emits merged,
  /// begin-block-aligned local ranges sorted ascending; `probes_used`
  /// (optional) reports the widened probe count. Ranges may round down onto
  /// a neighboring cluster's tail block: those extra candidates are scored
  /// exactly too, so they can only improve recall.
  void SelectProbes(UserId u, int32_t nprobe, size_t min_items,
                    std::vector<IvfProbeRange>* ranges,
                    int32_t* probes_used) const;

  /// Real (non-pad) items covered by `ranges`.
  static size_t CoveredItems(const std::vector<IvfProbeRange>& ranges);

  /// True when this index carries servable quantized codes (built with
  /// IvfOptions::pq and matching the catalog).
  bool has_pq() const {
    return options_.pq && pq_.num_items() == num_items_;
  }
  /// The block-aligned codes + frozen book, meaningful only when has_pq().
  const PqCodes& pq_codes() const { return pq_; }
  int32_t default_rerank_budget() const {
    return options_.default_rerank_budget;
  }

  /// The quantized first pass of the pq serving path: streams the int8 codes
  /// over `probes` (block-aligned ranges from SelectProbes), keeps the top
  /// `rerank_budget` non-excluded candidates by quantized score (smaller
  /// LOCAL id on ties — deterministic under the coarse codes' frequent
  /// collisions), and emits the blocks holding the survivors as merged
  /// block-aligned `rerank_ranges` clamped inside `probes` — ready for the
  /// exact fused ScoreBlocksTopKMapped re-rank, and never covering an item
  /// the plain ANN scan would not have scored (which is what makes
  /// rerank_budget ≥ shortlist bit-identical to the float ANN path).
  /// `excluded` (nullable) is indexed by global id; excluded items never
  /// consume budget. `survivors` (optional) reports how many candidates made
  /// the cut. Polls `deadline` (and the kServeSlowBlock fault) per scanned
  /// chunk like the serving scan loops; expiry returns DeadlineExceeded.
  Status QuantizedShortlist(
      UserId u, const std::vector<IvfProbeRange>& probes, size_t rerank_budget,
      const std::vector<bool>* excluded,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      std::vector<IvfProbeRange>* rerank_ranges, int64_t* survivors) const;

  /// Test/fault hook for kAnnCorruptCodes: scrambles the code bytes while
  /// the floats, book, and geometry stay intact — caught only by the
  /// measured composed-recall gate.
  void CorruptPqForTesting() { pq_.CorruptForTesting(options_.seed); }

  /// Per-item source-parameter CRCs (see class comment): the binding proof
  /// VerifyIvfBinding checks and RebuildDirty's dirty detector.
  const std::vector<uint32_t>& item_crcs() const { return item_crc_; }

  /// Total index bytes: permuted snapshot + centroids + tables.
  size_t memory_bytes() const;

  /// Internal-consistency check: permutation bijection, monotone cluster
  /// offsets covering [0, num_items), assignments in range, packed dims
  /// matching. Corruption(context: ...) on violation.
  Status VerifyStructure(const std::string& context) const;

  /// Test/fault hook: reverses the local→global mapping (still a bijection,
  /// so VerifyStructure alone cannot tell) WITHOUT re-packing — the
  /// canonical "cluster assignments desynced from V" corruption that the
  /// publish-time recall gate must catch. No-op below 2 items.
  void DesyncForTesting();

 private:
  IvfIndex() = default;

  /// Shared tail of Build/RebuildDirty: counting-sorts `assignment_` into the
  /// cluster-ordered permutation and re-packs the catalog in that order.
  void FinishLayout(const FactorModel& model);

  /// Augmented-space centroid data, num_clusters × (num_factors + 2).
  std::vector<float> centroids_;
  /// Per-global-item cluster id.
  std::vector<int32_t> assignment_;
  /// Local-id offsets: cluster c = locals [cluster_begin_[c], cluster_begin_[c+1]).
  std::vector<int32_t> cluster_begin_;
  /// Permutation tables between packed() local ids and global ids.
  std::vector<int32_t> local_to_global_;
  std::vector<int32_t> global_to_local_;
  /// CRC32 of each item's source parameters (factors + bias doubles):
  /// binding proof and dirty detector.
  std::vector<uint32_t> item_crc_;
  /// Max squared augmented norm M² the residual dimension was built against.
  double aug_m2_ = 0.0;
  PackedSnapshot packed_;
  /// Quantized first-pass codes over packed_'s local order (empty unless
  /// options_.pq): trained at full build, frozen-book re-encoded on
  /// RebuildDirty.
  PqCodes pq_;
  IvfOptions options_;
  int32_t num_items_ = 0;
  int32_t num_factors_ = 0;
  int32_t num_clusters_ = 0;
  bool use_item_bias_ = false;
};

/// Publish-time binding check: `index` must have been built from exactly
/// `model`'s current item parameters (per-item CRCs and dimensions must all
/// match) and pass VerifyStructure. FailedPrecondition naming the first
/// divergent item on a stale/desynced index. This is the cheap, exact half
/// of the ANN canary gate; `context` names the candidate in errors.
Status VerifyIvfBinding(const FactorModel& model, const IvfIndex& index,
                        const std::string& context);

/// Measured recall@k of the probe path at `nprobe` against the exact fused
/// full scan over `exact` (the *base-order* snapshot of the same model — an
/// independent ground truth, so a desynced permutation scores low instead of
/// agreeing with itself). Averages |ann ∩ exact| / k over up to
/// `sample_users` evenly spaced users. Returns 1.0 for an empty catalog.
double MeasureIvfRecall(const PackedSnapshot& exact, const IvfIndex& index,
                        int32_t sample_users, size_t k, int32_t nprobe);

/// The measured half of the ANN canary gate: FailedPrecondition (with the
/// measured value in the message) when MeasureIvfRecall falls below `floor`.
Status VerifyIvfRecall(const PackedSnapshot& exact, const IvfIndex& index,
                       int32_t sample_users, size_t k, int32_t nprobe,
                       double floor, const std::string& context);

/// Measured recall@k of the *composed* quantized+re-rank path — quantized
/// first pass at `rerank_budget` (0 = the index default) over the probes at
/// `nprobe`, then the exact fused re-rank of the survivors — against the
/// exact full scan over `exact` (base-order snapshot: independent ground
/// truth). This is the serving path verbatim, so a corrupted or desynced
/// code book scores low here even though every structural check passes.
/// Returns 0.0 when the index carries no servable codes.
double MeasurePqRecall(const PackedSnapshot& exact, const IvfIndex& index,
                       int32_t sample_users, size_t k, int32_t nprobe,
                       size_t rerank_budget);

/// The measured composed-recall gate for pq-enabled indexes: the same
/// contract floor as VerifyIvfRecall, applied to the quantized+re-rank path
/// that will actually serve. FailedPrecondition (with the measured value)
/// below `floor`, or when the index has no servable codes at all.
Status VerifyPqRecall(const PackedSnapshot& exact, const IvfIndex& index,
                      int32_t sample_users, size_t k, int32_t nprobe,
                      size_t rerank_budget, double floor,
                      const std::string& context);

}  // namespace clapf

#endif  // CLAPF_MODEL_IVF_INDEX_H_
