#ifndef CLAPF_MODEL_PQ_CODEC_H_
#define CLAPF_MODEL_PQ_CODEC_H_

#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "clapf/model/packed_snapshot.h"
#include "clapf/util/status.h"

namespace clapf {

/// Per-lane affine code book for the quantized first-pass score path. Lane 0
/// is the bias strip and lanes 1..d are the factor strips of the packed
/// block layout; a stored code q ∈ [-127, 127] dequantizes as
///
///   x̂ = offset[l] + scale[l] · q
///
/// with scale = (max − min) / 254 and offset = min + 127·scale taken from the
/// per-lane min/max over the *real* items of the snapshot the codes were
/// trained on. A degenerate lane (max == min, e.g. the bias strip of a
/// bias-less model) gets scale 0 and dequantizes exactly. The book is frozen
/// across incremental rebuilds: dirty items re-encode against it, which is
/// what keeps clean items' codes bit-identical publish over publish.
///
/// Why per-lane scalar int8 rather than per-subspace PQ: at serving factor
/// counts (d ≤ 64) a code book lookup table per subspace costs more bytes
/// per scanned item than the 1-byte-per-lane scalar codes, and on the
/// clustered 1M-item bench the scalar codes already push the composed
/// recall@10 past the 0.95 contract at a 4× bandwidth reduction — the LUT
/// machinery buys nothing the gate can measure. The "pq" surface name covers
/// the compressed first-pass feature, whichever codec backs it.
struct PqCodeBook {
  std::vector<float> scale;
  std::vector<float> offset;

  /// Lanes covered (num_factors + 1, lane 0 = bias), 0 when untrained.
  int32_t num_lanes() const { return static_cast<int32_t>(scale.size()); }
};

/// Block-aligned int8 codes mirroring a PackedSnapshot's geometry: blocks of
/// kPackedBlockItems items in SoA order with one byte per (lane, item) —
///
///   block b (items [8b, 8b+8), stride (d+1)·8 bytes):
///     [ 8 bias codes ][ 8 f0 codes ] ... [ 8 f_{d-1} codes ]
///
/// — so a probe range is one contiguous streamed scan at a quarter of the
/// float32 bandwidth, with the same 64-byte block alignment the float
/// kernels rely on. Pad lanes of the tail block encode as code 0 and are
/// never consumed (every scan bounds against num_items). Immutable after
/// Encode and safe to share read-only across query threads; IvfIndex owns
/// one per index, built right after the cluster-ordered repack so codes and
/// permuted floats describe the same local item order.
class PqCodes {
 public:
  PqCodes() = default;
  PqCodes(PqCodes&&) = default;
  PqCodes& operator=(PqCodes&&) = default;
  PqCodes(const PqCodes& other) { CopyFrom(other); }
  PqCodes& operator=(const PqCodes& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Trains the per-lane affine book from `packed` (one pass, per-lane
  /// min/max over real items). Deterministic for any `threads`: lanes are
  /// reduced independently and min/max is order-independent.
  static PqCodeBook TrainBook(const PackedSnapshot& packed, int threads);

  /// Allocates codes matching `packed`'s geometry under `book` and encodes
  /// every item. Bit-identical for any `threads` (disjoint per-item writes
  /// of a pure per-item function).
  static PqCodes Encode(const PackedSnapshot& packed, PqCodeBook book,
                        int threads);

  /// Allocates zeroed codes matching `packed`'s geometry under a frozen
  /// `book` without encoding — the incremental-rebuild substrate: callers
  /// CopyItemFrom clean items and EncodeItem only the dirty ones.
  static PqCodes Allocate(const PackedSnapshot& packed, PqCodeBook book);

  int32_t num_items() const { return num_items_; }
  int32_t num_factors() const { return num_factors_; }
  int32_t num_blocks() const { return num_blocks_; }

  /// Bytes per block: (num_factors + 1) * kPackedBlockItems.
  std::size_t block_stride() const { return block_stride_; }

  /// The aligned code array, num_blocks() * block_stride() bytes.
  const int8_t* block_codes() const { return codes_.get(); }

  const PqCodeBook& book() const { return book_; }

  /// Bound superblocks covering the blocks: one "bounds block" per
  /// kPackedBlockItems real blocks, ceil(num_blocks / kPackedBlockItems).
  int32_t num_bound_superblocks() const {
    return (num_blocks_ + kPackedBlockItems - 1) / kPackedBlockItems;
  }

  /// Per-BLOCK per-lane code extrema stored with the codes' own SoA block
  /// geometry, one level up —
  ///
  ///   superblock sb, lane strip l, slot j  =  extremum over lane l of the
  ///   8 codes of real block sb·kPackedBlockItems + j
  ///
  /// — so a query upper-bounds 8 real blocks with ONE kernel block: blend
  /// the max/min strips slot-wise by lane-weight sign into a "corner" block
  /// (the code vector the query would score best within the blocks' code
  /// boxes) and run it through the SAME PqScoreBlocks arithmetic as real
  /// items. IEEE rounding is monotone, so each corner score is ≥ every
  /// kernel score of its block's items bit-for-bit, never just
  /// approximately — a block whose corner score is strictly below the
  /// shortlist bar cannot contain a survivor. Allocate seeds the loosest
  /// valid extrema (±127), so codes written after Allocate stay correct
  /// even before RecomputeBlockBounds tightens them; slots for blocks past
  /// num_blocks() become 0 after recompute and are never consumed (every
  /// scan bounds against the real block count).
  const int8_t* bound_lane_min() const { return bound_lane_min_.data(); }
  const int8_t* bound_lane_max() const { return bound_lane_max_.data(); }

  /// Recomputes every block's per-lane extrema from the stored codes (pad
  /// lanes included — they encode 0, which can only loosen a bound).
  /// Deterministic for any `threads`: superblocks are disjoint. Call after
  /// a batch of EncodeItem/CopyItemFrom writes (Encode calls it itself).
  void RecomputeBlockBounds(int threads);

  /// Re-encodes local item `local` from `packed` against the stored book.
  void EncodeItem(const PackedSnapshot& packed, ItemId local);

  /// Copies local item `from_local`'s codes out of `from` (which must share
  /// this codec's factor count) into slot `to_local`.
  void CopyItemFrom(const PqCodes& from, ItemId from_local, ItemId to_local);

  /// Dequantized value of (local item, lane); lane 0 is the bias.
  float DecodeLane(ItemId local, int32_t lane) const;

  /// Geometry check against the snapshot the codes claim to mirror:
  /// Corruption(context: ...) when items/factors/blocks/stride or the book's
  /// lane count disagree. Byte-level corruption is invisible here by design —
  /// the measured composed-recall gate is what catches it.
  Status VerifyGeometry(const PackedSnapshot& packed,
                        const std::string& context) const;

  /// Test/fault hook: deterministically scrambles every code byte WITHOUT
  /// touching the book or geometry — the "code book desynced from the
  /// floats" corruption that only the measured composed-recall gate can
  /// catch. Never use on codes that are concurrently served.
  void CorruptForTesting(uint64_t seed);

  /// Total code + book + block-bound bytes.
  std::size_t memory_bytes() const {
    return static_cast<std::size_t>(num_blocks_) * block_stride_ +
           book_.scale.size() * sizeof(float) * 2 +
           bound_lane_min_.size() + bound_lane_max_.size();
  }

 private:
  struct AlignedDeleter {
    void operator()(int8_t* p) const {
      ::operator delete[](p, std::align_val_t(kPackedAlignment));
    }
  };
  using AlignedCodes = std::unique_ptr<int8_t[], AlignedDeleter>;

  void CopyFrom(const PqCodes& other);

  PqCodeBook book_;
  AlignedCodes codes_;
  std::vector<int8_t> bound_lane_min_;
  std::vector<int8_t> bound_lane_max_;
  int32_t num_items_ = 0;
  int32_t num_factors_ = 0;
  int32_t num_blocks_ = 0;
  std::size_t block_stride_ = 0;
};

/// Prepares one query against `book`: fills `lane_weights[0..num_lanes)`
/// with the per-lane code multipliers (scale for the bias lane, u_f·scale
/// for factor lanes) and returns the per-query constant Σ_l w_l·offset[l]
/// that every item's quantized score starts from — uniform across items, so
/// it never changes the first-pass ranking, but keeping it makes quantized
/// scores comparable to exact ones for diagnostics.
float PqPrepareQuery(const PqCodeBook& book, const float* user_factors,
                     int32_t num_factors, float* lane_weights);

}  // namespace clapf

#endif  // CLAPF_MODEL_PQ_CODEC_H_
