#include "clapf/model/pq_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "clapf/util/logging.h"
#include "clapf/util/thread_pool.h"

namespace clapf {
namespace {

// Runs fn(i) for i in [0, n) across `threads` workers when > 1. fn must be
// order-independent with disjoint writes (same contract as IvfIndex's
// builder loops).
void ForEach(int64_t n, int threads, const std::function<void(int64_t)>& fn) {
  if (threads > 1 && n > 1) {
    ThreadPool pool(threads);
    pool.ParallelFor(0, n, fn);
  } else {
    for (int64_t i = 0; i < n; ++i) fn(i);
  }
}

int8_t EncodeValue(float x, float scale, float offset) {
  if (scale == 0.0f) return 0;
  const float q = std::nearbyint((x - offset) / scale);
  return static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, q)));
}

}  // namespace

PqCodeBook PqCodes::TrainBook(const PackedSnapshot& packed, int threads) {
  const int32_t lanes = packed.num_factors() + 1;
  PqCodeBook book;
  book.scale.assign(static_cast<size_t>(lanes), 0.0f);
  book.offset.assign(static_cast<size_t>(lanes), 0.0f);
  const int32_t n = packed.num_items();
  if (n == 0) return book;

  // Per-lane min/max over real items only: pad lanes of the tail block are
  // zero-filled and would otherwise widen (or pinch) the range for nothing.
  // One task per lane; min/max is associative so the split is free of
  // ordering effects and the book is bit-identical for any thread count.
  const float* blocks = packed.block_data();
  const std::size_t stride = packed.block_stride();
  ForEach(lanes, threads, [&](int64_t lane) {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (int32_t b = 0; b < packed.num_blocks(); ++b) {
      const float* strip = blocks + static_cast<std::size_t>(b) * stride +
                           static_cast<std::size_t>(lane) * kPackedBlockItems;
      const int32_t real =
          std::min<int32_t>(kPackedBlockItems, n - b * kPackedBlockItems);
      for (int32_t j = 0; j < real; ++j) {
        lo = std::min(lo, strip[j]);
        hi = std::max(hi, strip[j]);
      }
    }
    const float scale = (hi - lo) / 254.0f;
    book.scale[static_cast<size_t>(lane)] = scale;
    book.offset[static_cast<size_t>(lane)] =
        scale == 0.0f ? lo : lo + 127.0f * scale;
  });
  return book;
}

PqCodes PqCodes::Allocate(const PackedSnapshot& packed, PqCodeBook book) {
  PqCodes codes;
  codes.book_ = std::move(book);
  codes.num_items_ = packed.num_items();
  codes.num_factors_ = packed.num_factors();
  codes.num_blocks_ = packed.num_blocks();
  codes.block_stride_ = static_cast<std::size_t>(codes.num_factors_ + 1) *
                        kPackedBlockItems;
  CLAPF_CHECK(codes.book_.num_lanes() == codes.num_factors_ + 1);
  const std::size_t total =
      static_cast<std::size_t>(codes.num_blocks_) * codes.block_stride_;
  if (total > 0) {
    codes.codes_.reset(static_cast<int8_t*>(::operator new[](
        total, std::align_val_t(kPackedAlignment))));
    std::memset(codes.codes_.get(), 0, total);
  }
  // Loosest valid extrema: a bound built from ±127 can never prune a block
  // wrongly, so codes written after Allocate stay correct even before
  // RecomputeBlockBounds tightens them.
  const std::size_t bound_n =
      static_cast<std::size_t>(codes.num_bound_superblocks()) *
      codes.block_stride_;
  codes.bound_lane_min_.assign(bound_n, static_cast<int8_t>(-127));
  codes.bound_lane_max_.assign(bound_n, static_cast<int8_t>(127));
  return codes;
}

PqCodes PqCodes::Encode(const PackedSnapshot& packed, PqCodeBook book,
                        int threads) {
  PqCodes codes = Allocate(packed, std::move(book));
  ForEach(codes.num_items_, threads, [&](int64_t local) {
    codes.EncodeItem(packed, static_cast<ItemId>(local));
  });
  codes.RecomputeBlockBounds(threads);
  return codes;
}

void PqCodes::RecomputeBlockBounds(int threads) {
  const int32_t lanes = num_factors_ + 1;
  ForEach(num_bound_superblocks(), threads, [&](int64_t sb) {
    int8_t* mins = bound_lane_min_.data() +
                   static_cast<std::size_t>(sb) * block_stride_;
    int8_t* maxs = bound_lane_max_.data() +
                   static_cast<std::size_t>(sb) * block_stride_;
    for (int32_t j = 0; j < kPackedBlockItems; ++j) {
      const int32_t b = static_cast<int32_t>(sb) * kPackedBlockItems + j;
      if (b >= num_blocks_) {
        // Slot for a block past the catalog: zero, never consumed.
        for (int32_t l = 0; l < lanes; ++l) {
          mins[l * kPackedBlockItems + j] = 0;
          maxs[l * kPackedBlockItems + j] = 0;
        }
        continue;
      }
      const int8_t* blk =
          codes_.get() + static_cast<std::size_t>(b) * block_stride_;
      for (int32_t l = 0; l < lanes; ++l) {
        const int8_t* strip = blk + static_cast<std::size_t>(l) *
                                        kPackedBlockItems;
        int8_t lo = strip[0], hi = strip[0];
        for (int32_t i = 1; i < kPackedBlockItems; ++i) {
          lo = std::min(lo, strip[i]);
          hi = std::max(hi, strip[i]);
        }
        mins[l * kPackedBlockItems + j] = lo;
        maxs[l * kPackedBlockItems + j] = hi;
      }
    }
  });
}

void PqCodes::EncodeItem(const PackedSnapshot& packed, ItemId local) {
  const int32_t b = local / kPackedBlockItems;
  const int32_t j = local % kPackedBlockItems;
  const float* src = packed.block_data() +
                     static_cast<std::size_t>(b) * packed.block_stride();
  int8_t* dst = codes_.get() + static_cast<std::size_t>(b) * block_stride_;
  const int32_t lanes = num_factors_ + 1;
  for (int32_t l = 0; l < lanes; ++l) {
    dst[static_cast<std::size_t>(l) * kPackedBlockItems + j] =
        EncodeValue(src[static_cast<std::size_t>(l) * kPackedBlockItems + j],
                    book_.scale[static_cast<size_t>(l)],
                    book_.offset[static_cast<size_t>(l)]);
  }
}

void PqCodes::CopyItemFrom(const PqCodes& from, ItemId from_local,
                           ItemId to_local) {
  CLAPF_CHECK(from.num_factors_ == num_factors_);
  const int8_t* src =
      from.codes_.get() +
      static_cast<std::size_t>(from_local / kPackedBlockItems) *
          from.block_stride_;
  int8_t* dst = codes_.get() +
                static_cast<std::size_t>(to_local / kPackedBlockItems) *
                    block_stride_;
  const int32_t sj = from_local % kPackedBlockItems;
  const int32_t dj = to_local % kPackedBlockItems;
  const int32_t lanes = num_factors_ + 1;
  for (int32_t l = 0; l < lanes; ++l) {
    dst[static_cast<std::size_t>(l) * kPackedBlockItems + dj] =
        src[static_cast<std::size_t>(l) * kPackedBlockItems + sj];
  }
}

float PqCodes::DecodeLane(ItemId local, int32_t lane) const {
  const int8_t code =
      codes_[static_cast<std::size_t>(local / kPackedBlockItems) *
                 block_stride_ +
             static_cast<std::size_t>(lane) * kPackedBlockItems +
             local % kPackedBlockItems];
  return book_.offset[static_cast<size_t>(lane)] +
         book_.scale[static_cast<size_t>(lane)] * static_cast<float>(code);
}

Status PqCodes::VerifyGeometry(const PackedSnapshot& packed,
                               const std::string& context) const {
  if (num_items_ != packed.num_items() ||
      num_factors_ != packed.num_factors() ||
      num_blocks_ != packed.num_blocks() ||
      block_stride_ != static_cast<std::size_t>(num_factors_ + 1) *
                           kPackedBlockItems) {
    return Status::Corruption(context +
                              ": pq code geometry disagrees with the packed "
                              "snapshot");
  }
  if (book_.num_lanes() != num_factors_ + 1 ||
      book_.offset.size() != book_.scale.size()) {
    return Status::Corruption(context + ": pq code book lane count broken");
  }
  if (num_blocks_ > 0 && codes_ == nullptr) {
    return Status::Corruption(context + ": pq code storage missing");
  }
  return Status::OK();
}

void PqCodes::CorruptForTesting(uint64_t seed) {
  const std::size_t total =
      static_cast<std::size_t>(num_blocks_) * block_stride_;
  uint64_t state = seed | 1;
  for (std::size_t i = 0; i < total; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    codes_[i] = static_cast<int8_t>(codes_[i] ^
                                    static_cast<int8_t>(state >> 57));
  }
}

void PqCodes::CopyFrom(const PqCodes& other) {
  book_ = other.book_;
  bound_lane_min_ = other.bound_lane_min_;
  bound_lane_max_ = other.bound_lane_max_;
  num_items_ = other.num_items_;
  num_factors_ = other.num_factors_;
  num_blocks_ = other.num_blocks_;
  block_stride_ = other.block_stride_;
  const std::size_t total =
      static_cast<std::size_t>(num_blocks_) * block_stride_;
  if (total > 0 && other.codes_ != nullptr) {
    codes_.reset(static_cast<int8_t*>(::operator new[](
        total, std::align_val_t(kPackedAlignment))));
    std::memcpy(codes_.get(), other.codes_.get(), total);
  } else {
    codes_.reset();
  }
}

float PqPrepareQuery(const PqCodeBook& book, const float* user_factors,
                     int32_t num_factors, float* lane_weights) {
  lane_weights[0] = book.scale[0];
  float base = book.offset[0];
  for (int32_t f = 0; f < num_factors; ++f) {
    lane_weights[1 + f] = user_factors[f] * book.scale[static_cast<size_t>(1 + f)];
    base += user_factors[f] * book.offset[static_cast<size_t>(1 + f)];
  }
  return base;
}

}  // namespace clapf
