#ifndef CLAPF_MODEL_PACKED_SNAPSHOT_H_
#define CLAPF_MODEL_PACKED_SNAPSHOT_H_

#include <cfloat>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "clapf/model/factor_model.h"
#include "clapf/util/status.h"

namespace clapf {

/// Items per packed block. Eight float32 lanes fill one AVX2 register, and a
/// (bias + factor) strip of 8 floats is exactly half a cache line, so block
/// rows never straddle lines once the base pointer is 64-byte aligned.
inline constexpr int32_t kPackedBlockItems = 8;

/// Alignment of the packed factor storage: one cache line, which also
/// satisfies the 32-byte alignment the AVX2 kernel's aligned loads want.
inline constexpr std::size_t kPackedAlignment = 64;

/// Worst-case |packed − exact| score gap for one (user, item) prediction,
/// given the L1 mass of its terms `l1 = Σ_f |u_f·v_f| + |b_i|`. Derivation:
/// converting each double input to float32 loses ≤ ε₃₂ relative per factor
/// (2ε₃₂ per product), and the blocked kernel accumulates the d+1 terms
/// sequentially per lane, losing ≤ (d+1)·ε₃₂·l1 more; the +1.0 floor absorbs
/// denormal/underflow noise near zero. This is the *documented exactness
/// contract* for the packed path: agreement tests and the serving canary
/// gate both enforce it.
inline double PackedScoreBound(int32_t num_factors, double l1_terms) {
  return (static_cast<double>(num_factors) + 8.0) *
         static_cast<double>(FLT_EPSILON) * (l1_terms + 1.0);
}

/// Immutable float32 repack of a FactorModel's parameters for the serving
/// hot path. Item parameters are laid out in 64-byte-aligned blocks of
/// kPackedBlockItems items in SoA (factor-major) order with the bias folded
/// in as lane 0 of every block:
///
///   block b  (items [8b, 8b+8), stride (d+1)·8 floats):
///     [ b_i .. 8 biases .. ][ f0 .. 8 lanes .. ][ f1 ... ] ... [ f_{d-1} ]
///
/// so the kernel scores 8 items with d fused multiply-adds on contiguous
/// strips — no per-item branch, no gather, no double→float conversion at
/// query time. The tail block is zero-padded: a pad lane scores 0.0 and is
/// never emitted because every entry point bounds-checks against
/// num_items(). User factors are stored as a row-major float32 matrix.
///
/// The snapshot is a point-in-time copy: it does NOT observe later training
/// updates to the source model, and it is safe to share read-only across any
/// number of query threads (serving rebuilds one per publish). Scores served
/// from it are approximate within PackedScoreBound(); the exact double path
/// in FactorModel is untouched.
class PackedSnapshot {
 public:
  /// Repacks `model` (one full pass over its parameters, no allocation on
  /// any later query).
  static PackedSnapshot Build(const FactorModel& model);

  /// As above, but lane `local` of the item block array holds the parameters
  /// of global item `item_perm[local]`: a reordered repack straight from the
  /// double model, without materializing a permuted copy of it. `item_perm`
  /// must be a permutation of [0, num_items); nullptr means identity.
  /// IvfIndex uses this to lay the catalog out in cluster order.
  static PackedSnapshot Build(const FactorModel& model,
                              const int32_t* item_perm);

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int32_t num_factors() const { return num_factors_; }
  bool use_item_bias() const { return use_item_bias_; }

  /// Number of item blocks, i.e. ceil(num_items / kPackedBlockItems).
  int32_t num_blocks() const { return num_blocks_; }

  /// Floats per block: (num_factors + 1) * kPackedBlockItems.
  std::size_t block_stride() const { return block_stride_; }

  /// The aligned block array, num_blocks() * block_stride() floats.
  const float* block_data() const { return blocks_.get(); }

  /// Row of `num_factors` float32 user factors for `u`.
  const float* user_factors(UserId u) const {
    return users_.get() + static_cast<std::size_t>(u) * num_factors_;
  }

  /// Total packed parameter bytes (capacity planning / logging).
  std::size_t memory_bytes() const {
    return (static_cast<std::size_t>(num_blocks_) * block_stride_ +
            static_cast<std::size_t>(num_users_) * num_factors_) *
           sizeof(float);
  }

  /// Scores items [begin, end) into (*scores)[begin..end) (widened to
  /// double); `scores` must already be sized to num_items(). Drop-in for
  /// FactorModel::ScoreItemRange on the packed data — used by the packed
  /// FactorModelRanker mode (canary probe, evaluators).
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const;

  /// Mutable view of the block array, exposed so tests and fault drills can
  /// corrupt a packed snapshot deliberately. Never use on a snapshot that is
  /// concurrently served.
  float* mutable_block_data() { return blocks_.get(); }

 private:
  // IvfIndex embeds a (cluster-ordered) snapshot by value and so needs the
  // default state before its own Build assigns the real one.
  friend class IvfIndex;

  struct AlignedDeleter {
    void operator()(float* p) const {
      ::operator delete[](p, std::align_val_t(kPackedAlignment));
    }
  };
  using AlignedFloats = std::unique_ptr<float[], AlignedDeleter>;

  static AlignedFloats AllocAligned(std::size_t n);

  PackedSnapshot() = default;

  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  int32_t num_factors_ = 0;
  bool use_item_bias_ = false;
  int32_t num_blocks_ = 0;
  std::size_t block_stride_ = 0;
  AlignedFloats blocks_;
  AlignedFloats users_;
};

/// Verifies the packed repack against the exact double model on up to
/// `sample_users` evenly spaced users (every item, every sampled user):
/// each |Δscore| must stay within PackedScoreBound(). Returns
/// FailedPrecondition naming the worst (user, item) on violation. This is
/// the packed half of the serving canary gate; `context` names the
/// candidate in errors.
Status VerifyPackedAgreement(const FactorModel& model,
                             const PackedSnapshot& packed,
                             int32_t sample_users, const std::string& context);

}  // namespace clapf

#endif  // CLAPF_MODEL_PACKED_SNAPSHOT_H_
