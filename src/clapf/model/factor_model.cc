#include "clapf/model/factor_model.h"

#include <algorithm>
#include <cmath>

#include "clapf/util/logging.h"

namespace clapf {

FactorModel::FactorModel(int32_t num_users, int32_t num_items,
                         int32_t num_factors, bool use_item_bias)
    : num_users_(num_users),
      num_items_(num_items),
      num_factors_(num_factors),
      use_item_bias_(use_item_bias),
      user_factors_(static_cast<size_t>(num_users) * num_factors, 0.0),
      item_factors_(static_cast<size_t>(num_items) * num_factors, 0.0),
      item_bias_(static_cast<size_t>(num_items), 0.0) {
  CLAPF_CHECK(num_users >= 0);
  CLAPF_CHECK(num_items >= 0);
  CLAPF_CHECK(num_factors > 0);
}

void FactorModel::ExpandTo(int32_t new_users, int32_t new_items, Rng& rng,
                           double stddev) {
  CLAPF_CHECK(new_users >= num_users_);
  CLAPF_CHECK(new_items >= num_items_);
  const size_t d = static_cast<size_t>(num_factors_);
  const size_t old_user_doubles = user_factors_.size();
  const size_t old_item_doubles = item_factors_.size();
  user_factors_.resize(static_cast<size_t>(new_users) * d, 0.0);
  item_factors_.resize(static_cast<size_t>(new_items) * d, 0.0);
  item_bias_.resize(static_cast<size_t>(new_items), 0.0);
  if (stddev > 0.0) {
    for (size_t i = old_user_doubles; i < user_factors_.size(); ++i) {
      user_factors_[i] = rng.NextGaussian() * stddev;
    }
    for (size_t i = old_item_doubles; i < item_factors_.size(); ++i) {
      item_factors_[i] = rng.NextGaussian() * stddev;
    }
  }
  num_users_ = new_users;
  num_items_ = new_items;
}

void FactorModel::InitGaussian(Rng& rng, double stddev) {
  for (double& x : user_factors_) x = rng.NextGaussian() * stddev;
  for (double& x : item_factors_) x = rng.NextGaussian() * stddev;
  std::fill(item_bias_.begin(), item_bias_.end(), 0.0);
}

void FactorModel::InitUniform(Rng& rng, double range) {
  for (double& x : user_factors_) x = (rng.NextDouble() * 2.0 - 1.0) * range;
  for (double& x : item_factors_) x = (rng.NextDouble() * 2.0 - 1.0) * range;
  std::fill(item_bias_.begin(), item_bias_.end(), 0.0);
}

double FactorModel::Score(UserId u, ItemId i) const {
  const double* uf = &user_factors_[static_cast<size_t>(u) * num_factors_];
  const double* vf = &item_factors_[static_cast<size_t>(i) * num_factors_];
  double s = use_item_bias_ ? item_bias_[static_cast<size_t>(i)] : 0.0;
  for (int32_t f = 0; f < num_factors_; ++f) s += uf[f] * vf[f];
  return s;
}

void FactorModel::ScoreAllItems(UserId u, std::vector<double>* scores) const {
  scores->resize(static_cast<size_t>(num_items_));
  ScoreItemRange(u, 0, num_items_, scores);
}

void FactorModel::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                                 std::vector<double>* scores) const {
  CLAPF_CHECK(scores->size() == static_cast<size_t>(num_items_));
  CLAPF_CHECK(begin >= 0 && begin <= end && end <= num_items_);
  const double* uf = &user_factors_[static_cast<size_t>(u) * num_factors_];
  // The bias test is hoisted out of the scan: one branch selects a loop
  // body instead of every item paying it, so both bodies auto-vectorize.
  // The arithmetic (bias first, then factor products in order) is unchanged,
  // keeping scores bit-identical to the pre-hoist loop.
  if (use_item_bias_) {
    for (int32_t i = begin; i < end; ++i) {
      const double* vf = &item_factors_[static_cast<size_t>(i) * num_factors_];
      double s = item_bias_[static_cast<size_t>(i)];
      for (int32_t f = 0; f < num_factors_; ++f) s += uf[f] * vf[f];
      (*scores)[static_cast<size_t>(i)] = s;
    }
  } else {
    for (int32_t i = begin; i < end; ++i) {
      const double* vf = &item_factors_[static_cast<size_t>(i) * num_factors_];
      double s = 0.0;
      for (int32_t f = 0; f < num_factors_; ++f) s += uf[f] * vf[f];
      (*scores)[static_cast<size_t>(i)] = s;
    }
  }
}

bool FactorModel::AllFinite() const {
  for (double x : user_factors_) {
    if (!std::isfinite(x)) return false;
  }
  for (double x : item_factors_) {
    if (!std::isfinite(x)) return false;
  }
  for (double x : item_bias_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::vector<ScoredItem> FactorModel::TopKForUser(UserId u, size_t k,
                                                 const Dataset* exclude) const {
  TopKAccumulator acc(k);
  const double* uf = &user_factors_[static_cast<size_t>(u) * num_factors_];
  auto observed = exclude != nullptr ? exclude->ItemsOf(u)
                                     : std::span<const ItemId>();
  // The bias branch is hoisted out of the scan (one instantiation per case)
  // so the inner product auto-vectorizes; scores are bit-identical to the
  // pre-hoist per-item-branch loop.
  auto scan = [&](const auto& bias_of) {
    size_t next_observed = 0;
    for (int32_t i = 0; i < num_items_; ++i) {
      // `observed` is sorted, so a single forward cursor skips exclusions.
      if (next_observed < observed.size() && observed[next_observed] == i) {
        ++next_observed;
        continue;
      }
      const double* vf = &item_factors_[static_cast<size_t>(i) * num_factors_];
      double s = bias_of(i);
      for (int32_t f = 0; f < num_factors_; ++f) s += uf[f] * vf[f];
      acc.Push(i, s);
    }
  };
  if (use_item_bias_) {
    scan([&](int32_t i) { return item_bias_[static_cast<size_t>(i)]; });
  } else {
    scan([](int32_t) { return 0.0; });
  }
  return acc.Take();
}

double FactorModel::SquaredNorm() const {
  double total = 0.0;
  for (double x : user_factors_) total += x * x;
  for (double x : item_factors_) total += x * x;
  for (double x : item_bias_) total += x * x;
  return total;
}

FactorModel FactorModel::SliceItems(ItemId begin, ItemId end) const {
  CLAPF_CHECK(begin >= 0 && begin <= end && end <= num_items_);
  FactorModel out(num_users_, end - begin, num_factors_, use_item_bias_);
  out.user_factors_ = user_factors_;
  std::copy(item_factors_.begin() +
                static_cast<size_t>(begin) * num_factors_,
            item_factors_.begin() + static_cast<size_t>(end) * num_factors_,
            out.item_factors_.begin());
  std::copy(item_bias_.begin() + static_cast<size_t>(begin),
            item_bias_.begin() + static_cast<size_t>(end),
            out.item_bias_.begin());
  return out;
}

}  // namespace clapf
