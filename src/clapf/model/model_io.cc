#include "clapf/model/model_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace clapf {

namespace {

constexpr char kMagic[4] = {'C', 'L', 'P', 'F'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteDoubles(std::ofstream& out, const std::vector<double>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

bool ReadDoubles(std::ifstream& in, size_t count, double* dst) {
  in.read(reinterpret_cast<char*>(dst),
          static_cast<std::streamsize>(count * sizeof(double)));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveModel(const FactorModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, model.num_users());
  WritePod(out, model.num_items());
  WritePod(out, model.num_factors());
  uint8_t bias = model.use_item_bias() ? 1 : 0;
  WritePod(out, bias);
  WriteDoubles(out, model.user_factor_data());
  WriteDoubles(out, model.item_factor_data());
  WriteDoubles(out, model.item_bias_data());
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<FactorModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::Corruption("unsupported model version in " + path);
  }
  int32_t num_users = 0, num_items = 0, num_factors = 0;
  uint8_t bias = 0;
  if (!ReadPod(in, &num_users) || !ReadPod(in, &num_items) ||
      !ReadPod(in, &num_factors) || !ReadPod(in, &bias)) {
    return Status::Corruption("truncated header in " + path);
  }
  if (num_users < 0 || num_items < 0 || num_factors <= 0) {
    return Status::Corruption("invalid dimensions in " + path);
  }

  FactorModel model(num_users, num_items, num_factors, bias != 0);
  const size_t uf = static_cast<size_t>(num_users) * num_factors;
  const size_t vf = static_cast<size_t>(num_items) * num_factors;
  std::vector<double> buf(uf);
  if (!ReadDoubles(in, uf, buf.data())) {
    return Status::Corruption("truncated user factors in " + path);
  }
  for (int32_t u = 0; u < num_users; ++u) {
    auto dst = model.UserFactors(u);
    std::memcpy(dst.data(), &buf[static_cast<size_t>(u) * num_factors],
                sizeof(double) * static_cast<size_t>(num_factors));
  }
  buf.resize(vf);
  if (!ReadDoubles(in, vf, buf.data())) {
    return Status::Corruption("truncated item factors in " + path);
  }
  for (int32_t i = 0; i < num_items; ++i) {
    auto dst = model.ItemFactors(i);
    std::memcpy(dst.data(), &buf[static_cast<size_t>(i) * num_factors],
                sizeof(double) * static_cast<size_t>(num_factors));
  }
  buf.resize(static_cast<size_t>(num_items));
  if (!ReadDoubles(in, static_cast<size_t>(num_items), buf.data())) {
    return Status::Corruption("truncated item biases in " + path);
  }
  for (int32_t i = 0; i < num_items; ++i) model.ItemBias(i) = buf[i];
  return model;
}

}  // namespace clapf
