#include "clapf/model/model_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "clapf/util/crc32.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/fs.h"

namespace clapf {

namespace {

constexpr char kMagic[4] = {'C', 'L', 'P', 'F'};
// v1: header + raw parameter arrays. v2 appends a CRC-32 over the parameter
// bytes. Readers accept both.
constexpr uint32_t kVersionNoCrc = 1;
constexpr uint32_t kVersion = 2;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// Writes the array and folds its bytes into the running CRC state.
void WriteDoubles(std::ostream& out, const std::vector<double>& v,
                  uint32_t* crc) {
  const size_t nbytes = v.size() * sizeof(double);
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(nbytes));
  *crc = Crc32Update(*crc, v.data(), nbytes);
}

bool ReadDoubles(std::istream& in, size_t count, double* dst, uint32_t* crc) {
  const size_t nbytes = count * sizeof(double);
  in.read(reinterpret_cast<char*>(dst),
          static_cast<std::streamsize>(nbytes));
  if (!in) return false;
  *crc = Crc32Update(*crc, dst, nbytes);
  return true;
}

// Serializes to a string so payload-level fault injection (short write, bit
// flip) can mutate the image before it reaches disk.
Result<std::string> SerializeModel(const FactorModel& model) {
  std::ostringstream out(std::ios::binary);
  CLAPF_RETURN_IF_ERROR(SaveModelToStream(model, out));
  std::string payload = std::move(out).str();
  FaultInjector& faults = FaultInjector::Instance();
  if (faults.armed()) faults.MutateModelPayload(&payload);
  return payload;
}

}  // namespace

Status SaveModelToStream(const FactorModel& model, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, model.num_users());
  WritePod(out, model.num_items());
  WritePod(out, model.num_factors());
  uint8_t bias = model.use_item_bias() ? 1 : 0;
  WritePod(out, bias);
  uint32_t crc = Crc32Init();
  WriteDoubles(out, model.user_factor_data(), &crc);
  WriteDoubles(out, model.item_factor_data(), &crc);
  WriteDoubles(out, model.item_bias_data(), &crc);
  WritePod(out, Crc32Finalize(crc));
  if (!out) return Status::IoError("model serialization failed");
  return Status::OK();
}

Result<FactorModel> LoadModelFromStream(std::istream& in,
                                        const std::string& context) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + context);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) ||
      (version != kVersion && version != kVersionNoCrc)) {
    return Status::Corruption("unsupported model version in " + context);
  }
  int32_t num_users = 0, num_items = 0, num_factors = 0;
  uint8_t bias = 0;
  if (!ReadPod(in, &num_users) || !ReadPod(in, &num_items) ||
      !ReadPod(in, &num_factors) || !ReadPod(in, &bias)) {
    return Status::Corruption("truncated header in " + context);
  }
  if (num_users < 0 || num_items < 0 || num_factors <= 0) {
    return Status::Corruption("invalid dimensions in " + context);
  }

  FactorModel model(num_users, num_items, num_factors, bias != 0);
  const size_t uf = static_cast<size_t>(num_users) * num_factors;
  const size_t vf = static_cast<size_t>(num_items) * num_factors;
  uint32_t crc = Crc32Init();
  std::vector<double> buf(uf);
  if (!ReadDoubles(in, uf, buf.data(), &crc)) {
    return Status::Corruption("truncated user factors in " + context);
  }
  for (int32_t u = 0; u < num_users; ++u) {
    auto dst = model.UserFactors(u);
    std::memcpy(dst.data(), &buf[static_cast<size_t>(u) * num_factors],
                sizeof(double) * static_cast<size_t>(num_factors));
  }
  buf.resize(vf);
  if (!ReadDoubles(in, vf, buf.data(), &crc)) {
    return Status::Corruption("truncated item factors in " + context);
  }
  for (int32_t i = 0; i < num_items; ++i) {
    auto dst = model.ItemFactors(i);
    std::memcpy(dst.data(), &buf[static_cast<size_t>(i) * num_factors],
                sizeof(double) * static_cast<size_t>(num_factors));
  }
  buf.resize(static_cast<size_t>(num_items));
  if (!ReadDoubles(in, static_cast<size_t>(num_items), buf.data(), &crc)) {
    return Status::Corruption("truncated item biases in " + context);
  }
  for (int32_t i = 0; i < num_items; ++i) model.ItemBias(i) = buf[i];

  if (version >= kVersion) {
    uint32_t stored = 0;
    if (!ReadPod(in, &stored)) {
      return Status::Corruption("missing parameter checksum in " + context);
    }
    if (stored != Crc32Finalize(crc)) {
      return Status::Corruption("parameter checksum mismatch in " + context);
    }
  }
  return model;
}

Status SaveModel(const FactorModel& model, const std::string& path) {
  auto payload = SerializeModel(model);
  if (!payload.ok()) return payload.status();
  return WriteStringToFile(path, *payload);
}

Status SaveModelAtomic(const FactorModel& model, const std::string& path) {
  auto payload = SerializeModel(model);
  if (!payload.ok()) return payload.status();
  return WriteFileAtomic(path, *payload, FaultPoint::kModelRename);
}

Result<FactorModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  return LoadModelFromStream(in, path);
}

Status VerifyModelIntegrity(const FactorModel& model,
                            const std::string& context) {
  if (!model.AllFinite()) {
    return Status::Corruption("non-finite parameter in " + context);
  }
  // Deliberately bypasses SerializeModel: fault injection targets the disk
  // path, not the gate that is supposed to catch its damage.
  std::stringstream image(std::ios::in | std::ios::out | std::ios::binary);
  CLAPF_RETURN_IF_ERROR(SaveModelToStream(model, image));
  auto reloaded = LoadModelFromStream(image, context);
  if (!reloaded.ok()) return reloaded.status();
  if (reloaded->num_users() != model.num_users() ||
      reloaded->num_items() != model.num_items() ||
      reloaded->num_factors() != model.num_factors()) {
    return Status::Corruption("round-trip dimension mismatch in " + context);
  }
  return Status::OK();
}

}  // namespace clapf
