#ifndef CLAPF_MODEL_FACTOR_MODEL_H_
#define CLAPF_MODEL_FACTOR_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/util/random.h"
#include "clapf/util/top_k.h"

namespace clapf {

/// Matrix-factorization predictor f_ui = U_u · V_i + b_i (paper §3.1): a
/// latent vector per user and item plus an item bias. This is the model
/// learned by BPR, MPR, CLiMF, WMF, and CLAPF.
class FactorModel {
 public:
  /// Allocates a model with all parameters zero.
  FactorModel(int32_t num_users, int32_t num_items, int32_t num_factors,
              bool use_item_bias = true);

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int32_t num_factors() const { return num_factors_; }
  bool use_item_bias() const { return use_item_bias_; }

  /// Draws all factors from N(0, stddev²); biases start at zero. This is the
  /// standard small-Gaussian initialization used by the paper's code release.
  void InitGaussian(Rng& rng, double stddev = 0.01);

  /// Draws all factors from U(-range, range); biases zero.
  void InitUniform(Rng& rng, double range = 0.01);

  /// Predicted relevance score f_ui.
  double Score(UserId u, ItemId i) const;

  /// Fills `scores` (resized to num_items) with f_ui for every item.
  void ScoreAllItems(UserId u, std::vector<double>* scores) const;

  /// Scores only the half-open item range [begin, end) into
  /// (*scores)[begin..end); `scores` must already be sized to num_items.
  /// Serving uses this to poll deadlines between blocks instead of running
  /// one unbounded full-catalog scan.
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const;

  /// True iff every parameter (factors and biases) is finite — the cheap
  /// half of the serving canary gate.
  bool AllFinite() const;

  /// Top-k items for `u` by score, excluding the user's observed items in
  /// `exclude` (pass nullptr to rank everything).
  std::vector<ScoredItem> TopKForUser(UserId u, size_t k,
                                      const Dataset* exclude) const;

  /// Mutable views of the parameter blocks (contiguous, length num_factors).
  std::span<double> UserFactors(UserId u) {
    return {&user_factors_[static_cast<size_t>(u) * num_factors_],
            static_cast<size_t>(num_factors_)};
  }
  std::span<const double> UserFactors(UserId u) const {
    return {&user_factors_[static_cast<size_t>(u) * num_factors_],
            static_cast<size_t>(num_factors_)};
  }
  std::span<double> ItemFactors(ItemId i) {
    return {&item_factors_[static_cast<size_t>(i) * num_factors_],
            static_cast<size_t>(num_factors_)};
  }
  std::span<const double> ItemFactors(ItemId i) const {
    return {&item_factors_[static_cast<size_t>(i) * num_factors_],
            static_cast<size_t>(num_factors_)};
  }
  double& ItemBias(ItemId i) { return item_bias_[static_cast<size_t>(i)]; }
  double ItemBias(ItemId i) const { return item_bias_[static_cast<size_t>(i)]; }

  /// Raw parameter storage, exposed for serialization and tests.
  const std::vector<double>& user_factor_data() const { return user_factors_; }
  const std::vector<double>& item_factor_data() const { return item_factors_; }
  const std::vector<double>& item_bias_data() const { return item_bias_; }

  /// Mutable raw storage, exposed for checkpoint restore and the divergence
  /// guard's rollback path. Callers must not resize these vectors.
  std::vector<double>& mutable_user_factor_data() { return user_factors_; }
  std::vector<double>& mutable_item_factor_data() { return item_factors_; }
  std::vector<double>& mutable_item_bias_data() { return item_bias_; }

  /// Squared L2 norm of all parameters (regularization diagnostics).
  double SquaredNorm() const;

  /// Grows the model in place to `new_users` x `new_items` (each must be >=
  /// the current dimension). Existing parameters are bit-preserved; the new
  /// user rows are drawn first, then the new item rows (factor order within
  /// a row), from N(0, stddev²) — zeros when stddev <= 0, consuming no rng
  /// draws. New item biases start at zero. This is the online-ingest path's
  /// on-the-fly allocation of unseen user/item ids: given the same rng state
  /// and target dimensions the expansion is bit-deterministic, which the
  /// crash-resume handshake relies on.
  void ExpandTo(int32_t new_users, int32_t new_items, Rng& rng,
                double stddev = 0.01);

  /// Copy of this model restricted to items [begin, end): user factors are
  /// kept whole, item factors/biases are copied for the range and renumbered
  /// to [0, end - begin). A score f_ui depends only on u's and i's own
  /// parameters, so the slice predicts bit-identical doubles for its items —
  /// the invariant per-shard serving snapshots are built on.
  FactorModel SliceItems(ItemId begin, ItemId end) const;

 private:
  int32_t num_users_;
  int32_t num_items_;
  int32_t num_factors_;
  bool use_item_bias_;
  std::vector<double> user_factors_;  // num_users x num_factors, row-major
  std::vector<double> item_factors_;  // num_items x num_factors, row-major
  std::vector<double> item_bias_;     // num_items (zeros when bias disabled)
};

}  // namespace clapf

#endif  // CLAPF_MODEL_FACTOR_MODEL_H_
