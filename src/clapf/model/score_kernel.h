#ifndef CLAPF_MODEL_SCORE_KERNEL_H_
#define CLAPF_MODEL_SCORE_KERNEL_H_

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "clapf/model/packed_snapshot.h"
#include "clapf/util/top_k.h"

namespace clapf {

/// The scoring kernels a PackedSnapshot can be scanned with. kPortable is a
/// branch-free blocked loop every compiler auto-vectorizes; kAvx2 is an
/// explicit AVX2/FMA specialization selected by runtime CPU dispatch (with
/// kPortable as the fallback, so the same binary runs on any x86-64 and on
/// non-x86 hosts).
enum class ScoreKernel : int {
  kPortable = 0,
  kAvx2 = 1,
};

/// Printable kernel name ("portable" / "avx2") for logs and bench rows.
const char* ScoreKernelName(ScoreKernel kernel);

/// True when this CPU can execute `kernel`.
bool ScoreKernelSupported(ScoreKernel kernel);

/// The kernel the next ScoreBlocks call will run: the forced override when
/// one is set, else the best supported kernel for this CPU.
ScoreKernel ActiveScoreKernel();

/// Forces every subsequent kernel call onto `kernel` (tests and the
/// portable-vs-AVX2 bench rows). Forcing an unsupported kernel aborts.
void ForceScoreKernel(ScoreKernel kernel);

/// Returns to runtime CPU dispatch.
void ClearScoreKernelOverride();

/// Scores `num_blocks` consecutive item blocks of `snap` starting at
/// `first_block` for user `u`, writing kPackedBlockItems floats per block to
/// `out` (no alignment requirement on `out`). Pad lanes of the tail block
/// score 0.0; callers bound what they consume by snap.num_items().
void ScoreBlocks(const PackedSnapshot& snap, UserId u, int32_t first_block,
                 int32_t num_blocks, float* out);

/// Fused score + top-k over items [begin, end): scores one block at a time
/// and feeds `acc`, skipping items flagged in `excluded` (pass nullptr to
/// exclude nothing) and early-rejecting any score strictly below the
/// accumulator's current threshold so most items never touch the heap.
/// Ties with the threshold still go through Push, preserving the
/// smaller-item-id tie-break exactly. `begin` must be block-aligned
/// (begin % kPackedBlockItems == 0); serving's kRankerBlockItems chunks are.
///
/// `reject_below` extends the early-reject bar beyond the local heap: any
/// score strictly below it is also skipped. Sharded scatter-gather passes
/// the broadcast threshold here — the max of every shard's full-heap
/// threshold, which can only ever be <= the global k-th best score, so
/// cross-shard rejection never drops a true global top-k item and ties at
/// the bar still reach Push for the id tie-break. The default (-inf)
/// disables it.
void ScoreBlocksTopK(const PackedSnapshot& snap, UserId u, ItemId begin,
                     ItemId end, const std::vector<bool>* excluded,
                     TopKAccumulator* acc,
                     double reject_below =
                         -std::numeric_limits<double>::infinity());

/// Quantized analogue of ScoreBlocks over block-aligned int8 codes (PqCodes
/// layout: blocks of kPackedBlockItems items, SoA, `code_stride` bytes per
/// block). Every lane code dequantizes through the per-query affine terms
/// the caller prepared with PqPrepareQuery: lane_weights[l] multiplies the
/// raw code and `base` (the per-query constant) seeds each accumulator, so
/// out[i] ≈ the exact packed score within the code book's quantization
/// error. Runs under the same runtime kernel dispatch (portable / AVX2) as
/// the float kernels. Pad lanes score `base` plus zero-code terms; callers
/// bound what they consume by the item count.
void PqScoreBlocks(const int8_t* codes, std::size_t code_stride,
                   int32_t num_factors, const float* lane_weights, float base,
                   int32_t first_block, int32_t num_blocks, float* out);

/// A quantized-scan survivor packed into one sortable uint64. The high word
/// is the first-pass score's bits remapped so unsigned integer order equals
/// float order (sign bit flipped for non-negatives, all bits complemented
/// for negatives, -0.0 normalized onto +0.0); the low word is the bitwise
/// NOT of the LOCAL (permuted) id. A bigger key is a better candidate under
/// (score desc, local-id asc), every key is unique (locals are), and key
/// compares are single branchless 64-bit compares — which is what keeps the
/// shortlist's selection passes off the branch predictor on fresh per-query
/// data, where comparator branches mispredict ~50%.
inline uint64_t PqPackCandidate(float score, ItemId local) {
  uint32_t u = std::bit_cast<uint32_t>(score);
  if (u == 0x80000000u) u = 0;  // -0.0 ranks with +0.0
  u = (u & 0x80000000u) ? ~u : (u | 0x80000000u);
  return (static_cast<uint64_t>(u) << 32) |
         static_cast<uint32_t>(~static_cast<uint32_t>(local));
}

/// The score a key was packed from (exact, apart from -0.0 → +0.0).
inline float PqCandidateScore(uint64_t key) {
  uint32_t u = static_cast<uint32_t>(key >> 32);
  u = (u & 0x80000000u) ? (u & 0x7fffffffu) : ~u;
  return std::bit_cast<float>(u);
}

/// The LOCAL id a key was packed from.
inline ItemId PqCandidateLocal(uint64_t key) {
  return static_cast<ItemId>(~static_cast<uint32_t>(key));
}

/// Fused quantized scan + bar filter over LOCAL items [begin, end): scores
/// the covering code blocks like PqScoreBlocks and appends every item whose
/// score is >= `bar` to `out` as a PqPackCandidate key (appends — the
/// caller owns clearing), in ascending local-id order. This is the hot
/// inner loop of the pq first pass: under AVX2 the compare happens on the
/// 8-score accumulator register and a movemask skips fully-below-bar blocks
/// without ever storing scores, so the per-item cost of a converged bar is
/// a fraction of a nanosecond. Pass -inf to collect everything (the
/// caller's state before the first budget compaction establishes a bar).
/// Ties at the bar are appended — the caller's budget cut owns the
/// smaller-local-id tie-break. `begin` must be block-aligned; pad lanes of
/// a tail block are never emitted.
void PqScoreCollect(const int8_t* codes, std::size_t code_stride,
                    int32_t num_factors, const float* lane_weights,
                    float base, ItemId begin, ItemId end, float bar,
                    std::vector<uint64_t>* out);

/// PqScoreBlocks with per-LANE source arrays: lane l of block b is read
/// from lane_src[l] + b·code_stride + l·kPackedBlockItems instead of one
/// shared code array. This is the block-bound scoring pass: the caller
/// points every lane at whichever of the codec's bound_lane_max /
/// bound_lane_min arrays its lane weight's sign makes the upper-bound
/// corner (max for w ≥ 0, min for w < 0), and the kernel runs the EXACT
/// accumulation chain of PqScoreBlocks over that virtual corner block — so
/// by monotonicity of IEEE rounding each output is a bit-for-bit upper
/// bound of every item score in the summarized block, with no blend pass
/// and no margin term. lane_src must hold num_factors + 1 pointers.
void PqScoreBoundBlocks(const int8_t* const* lane_src,
                        std::size_t code_stride, int32_t num_factors,
                        const float* lane_weights, float base,
                        int32_t first_block, int32_t num_blocks, float* out);

/// ScoreBlocksTopK over a *permuted* snapshot: `snap` holds items in some
/// local order (e.g. IvfIndex's cluster order) and `local_to_global[i]` is
/// the global id of local item i. Candidates are pushed under their GLOBAL
/// id — so the accumulator's smaller-id tie-break and any caller-side result
/// handling see exactly the ids a scan of the base-order snapshot would
/// produce — and `excluded` (nullable) is indexed by global id, so callers
/// reuse the one global exclusion bitmap they already build. Same alignment
/// precondition, early-reject, and `reject_below` semantics as the unmapped
/// kernel; per-lane scores are bit-identical to the base-order scan because
/// a packed score depends only on the item's own lane data.
void ScoreBlocksTopKMapped(const PackedSnapshot& snap, UserId u, ItemId begin,
                           ItemId end, const int32_t* local_to_global,
                           const std::vector<bool>* excluded,
                           TopKAccumulator* acc,
                           double reject_below =
                               -std::numeric_limits<double>::infinity());

}  // namespace clapf

#endif  // CLAPF_MODEL_SCORE_KERNEL_H_
