#ifndef CLAPF_MODEL_SCORE_KERNEL_H_
#define CLAPF_MODEL_SCORE_KERNEL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "clapf/model/packed_snapshot.h"
#include "clapf/util/top_k.h"

namespace clapf {

/// The scoring kernels a PackedSnapshot can be scanned with. kPortable is a
/// branch-free blocked loop every compiler auto-vectorizes; kAvx2 is an
/// explicit AVX2/FMA specialization selected by runtime CPU dispatch (with
/// kPortable as the fallback, so the same binary runs on any x86-64 and on
/// non-x86 hosts).
enum class ScoreKernel : int {
  kPortable = 0,
  kAvx2 = 1,
};

/// Printable kernel name ("portable" / "avx2") for logs and bench rows.
const char* ScoreKernelName(ScoreKernel kernel);

/// True when this CPU can execute `kernel`.
bool ScoreKernelSupported(ScoreKernel kernel);

/// The kernel the next ScoreBlocks call will run: the forced override when
/// one is set, else the best supported kernel for this CPU.
ScoreKernel ActiveScoreKernel();

/// Forces every subsequent kernel call onto `kernel` (tests and the
/// portable-vs-AVX2 bench rows). Forcing an unsupported kernel aborts.
void ForceScoreKernel(ScoreKernel kernel);

/// Returns to runtime CPU dispatch.
void ClearScoreKernelOverride();

/// Scores `num_blocks` consecutive item blocks of `snap` starting at
/// `first_block` for user `u`, writing kPackedBlockItems floats per block to
/// `out` (no alignment requirement on `out`). Pad lanes of the tail block
/// score 0.0; callers bound what they consume by snap.num_items().
void ScoreBlocks(const PackedSnapshot& snap, UserId u, int32_t first_block,
                 int32_t num_blocks, float* out);

/// Fused score + top-k over items [begin, end): scores one block at a time
/// and feeds `acc`, skipping items flagged in `excluded` (pass nullptr to
/// exclude nothing) and early-rejecting any score strictly below the
/// accumulator's current threshold so most items never touch the heap.
/// Ties with the threshold still go through Push, preserving the
/// smaller-item-id tie-break exactly. `begin` must be block-aligned
/// (begin % kPackedBlockItems == 0); serving's kRankerBlockItems chunks are.
///
/// `reject_below` extends the early-reject bar beyond the local heap: any
/// score strictly below it is also skipped. Sharded scatter-gather passes
/// the broadcast threshold here — the max of every shard's full-heap
/// threshold, which can only ever be <= the global k-th best score, so
/// cross-shard rejection never drops a true global top-k item and ties at
/// the bar still reach Push for the id tie-break. The default (-inf)
/// disables it.
void ScoreBlocksTopK(const PackedSnapshot& snap, UserId u, ItemId begin,
                     ItemId end, const std::vector<bool>* excluded,
                     TopKAccumulator* acc,
                     double reject_below =
                         -std::numeric_limits<double>::infinity());

/// ScoreBlocksTopK over a *permuted* snapshot: `snap` holds items in some
/// local order (e.g. IvfIndex's cluster order) and `local_to_global[i]` is
/// the global id of local item i. Candidates are pushed under their GLOBAL
/// id — so the accumulator's smaller-id tie-break and any caller-side result
/// handling see exactly the ids a scan of the base-order snapshot would
/// produce — and `excluded` (nullable) is indexed by global id, so callers
/// reuse the one global exclusion bitmap they already build. Same alignment
/// precondition, early-reject, and `reject_below` semantics as the unmapped
/// kernel; per-lane scores are bit-identical to the base-order scan because
/// a packed score depends only on the item's own lane data.
void ScoreBlocksTopKMapped(const PackedSnapshot& snap, UserId u, ItemId begin,
                           ItemId end, const int32_t* local_to_global,
                           const std::vector<bool>* excluded,
                           TopKAccumulator* acc,
                           double reject_below =
                               -std::numeric_limits<double>::infinity());

}  // namespace clapf

#endif  // CLAPF_MODEL_SCORE_KERNEL_H_
