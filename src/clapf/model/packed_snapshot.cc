#include "clapf/model/packed_snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "clapf/model/score_kernel.h"
#include "clapf/util/logging.h"

namespace clapf {

PackedSnapshot::AlignedFloats PackedSnapshot::AllocAligned(std::size_t n) {
  // Never allocate zero bytes: a model with no users/items still gets a
  // valid (unused) pointer so the accessors stay branch-free.
  const std::size_t bytes = std::max<std::size_t>(n, 1) * sizeof(float);
  return AlignedFloats(static_cast<float*>(
      ::operator new[](bytes, std::align_val_t(kPackedAlignment))));
}

PackedSnapshot PackedSnapshot::Build(const FactorModel& model) {
  return Build(model, nullptr);
}

PackedSnapshot PackedSnapshot::Build(const FactorModel& model,
                                     const int32_t* item_perm) {
  PackedSnapshot snap;
  snap.num_users_ = model.num_users();
  snap.num_items_ = model.num_items();
  snap.num_factors_ = model.num_factors();
  snap.use_item_bias_ = model.use_item_bias();
  snap.num_blocks_ =
      (model.num_items() + kPackedBlockItems - 1) / kPackedBlockItems;
  snap.block_stride_ =
      static_cast<std::size_t>(model.num_factors() + 1) * kPackedBlockItems;

  snap.blocks_ = AllocAligned(static_cast<std::size_t>(snap.num_blocks_) *
                              snap.block_stride_);
  snap.users_ = AllocAligned(static_cast<std::size_t>(snap.num_users_) *
                             snap.num_factors_);

  // Zero everything first so tail-block pad lanes score exactly 0.0 and the
  // bias lane is correct when the model has biases disabled.
  std::memset(snap.blocks_.get(), 0,
              static_cast<std::size_t>(snap.num_blocks_) * snap.block_stride_ *
                  sizeof(float));

  const int32_t d = snap.num_factors_;
  for (ItemId i = 0; i < snap.num_items_; ++i) {
    const ItemId src = item_perm != nullptr ? item_perm[i] : i;
    const int32_t block = i / kPackedBlockItems;
    const int32_t lane = i % kPackedBlockItems;
    float* blk = snap.blocks_.get() +
                 static_cast<std::size_t>(block) * snap.block_stride_;
    if (snap.use_item_bias_) {
      blk[lane] = static_cast<float>(model.ItemBias(src));
    }
    auto vf = model.ItemFactors(src);
    for (int32_t f = 0; f < d; ++f) {
      blk[static_cast<std::size_t>(f + 1) * kPackedBlockItems + lane] =
          static_cast<float>(vf[static_cast<std::size_t>(f)]);
    }
  }

  const std::vector<double>& uf = model.user_factor_data();
  float* users = snap.users_.get();
  for (std::size_t x = 0; x < uf.size(); ++x) {
    users[x] = static_cast<float>(uf[x]);
  }
  return snap;
}

void PackedSnapshot::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                                    std::vector<double>* scores) const {
  CLAPF_CHECK(scores->size() == static_cast<std::size_t>(num_items_));
  CLAPF_CHECK(begin >= 0 && begin <= end && end <= num_items_);
  if (begin == end) return;

  // Score whole covering blocks into a bounded stack buffer, then widen just
  // the requested sub-range. Chunking keeps the buffer cache-resident for
  // arbitrarily large ranges.
  constexpr int32_t kChunkBlocks = 64;
  float buf[kChunkBlocks * kPackedBlockItems];

  const int32_t first_block = begin / kPackedBlockItems;
  const int32_t last_block = (end - 1) / kPackedBlockItems;
  for (int32_t b = first_block; b <= last_block; b += kChunkBlocks) {
    const int32_t nblocks = std::min(kChunkBlocks, last_block - b + 1);
    ScoreBlocks(*this, u, b, nblocks, buf);
    const ItemId chunk_begin =
        std::max(begin, b * kPackedBlockItems);
    const ItemId chunk_end =
        std::min(end, (b + nblocks) * kPackedBlockItems);
    for (ItemId i = chunk_begin; i < chunk_end; ++i) {
      (*scores)[static_cast<std::size_t>(i)] =
          static_cast<double>(buf[i - b * kPackedBlockItems]);
    }
  }
}

Status VerifyPackedAgreement(const FactorModel& model,
                             const PackedSnapshot& packed,
                             int32_t sample_users,
                             const std::string& context) {
  if (model.num_users() != packed.num_users() ||
      model.num_items() != packed.num_items() ||
      model.num_factors() != packed.num_factors()) {
    return Status::FailedPrecondition(
        context + ": packed snapshot dimensions disagree with the model");
  }
  if (model.num_users() == 0 || model.num_items() == 0 || sample_users <= 0) {
    return Status::OK();
  }

  const int32_t d = model.num_factors();
  const int32_t stride =
      std::max(1, model.num_users() / std::min(sample_users,
                                               model.num_users()));
  std::vector<double> exact(static_cast<std::size_t>(model.num_items()));
  std::vector<double> approx(static_cast<std::size_t>(model.num_items()));
  for (UserId u = 0; u < model.num_users(); u += stride) {
    model.ScoreAllItems(u, &exact);
    packed.ScoreItemRange(u, 0, model.num_items(), &approx);
    auto uf = model.UserFactors(u);
    for (ItemId i = 0; i < model.num_items(); ++i) {
      const double delta =
          std::abs(exact[static_cast<std::size_t>(i)] -
                   approx[static_cast<std::size_t>(i)]);
      // The bound needs the L1 term mass, one extra pass over the factors;
      // only pay it for scores that look suspicious at all.
      if (delta == 0.0) continue;
      auto vf = model.ItemFactors(i);
      double l1 = model.use_item_bias() ? std::abs(model.ItemBias(i)) : 0.0;
      for (int32_t f = 0; f < d; ++f) {
        l1 += std::abs(uf[static_cast<std::size_t>(f)] *
                       vf[static_cast<std::size_t>(f)]);
      }
      if (delta > PackedScoreBound(d, l1)) {
        return Status::FailedPrecondition(
            context + ": packed score for user " + std::to_string(u) +
            " item " + std::to_string(i) + " off by " +
            std::to_string(delta) + " (bound " +
            std::to_string(PackedScoreBound(d, l1)) + ")");
      }
    }
  }
  return Status::OK();
}

}  // namespace clapf
