#ifndef CLAPF_MODEL_MODEL_IO_H_
#define CLAPF_MODEL_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "clapf/model/factor_model.h"
#include "clapf/util/status.h"

namespace clapf {

/// Model file format: magic "CLPF", little-endian version + dims header, raw
/// parameter arrays, and (since v2) a trailing CRC-32 over the parameter
/// bytes so torn writes and bit flips are detected at load time. v1 files
/// (no CRC) are still readable.

/// Serializes `model` to `out`; the stream should be binary.
Status SaveModelToStream(const FactorModel& model, std::ostream& out);

/// Deserializes a model from `in`. `context` names the source (e.g. a file
/// path) for error messages. Returns Corruption on bad magic/version, a
/// truncated stream, or a CRC mismatch.
Result<FactorModel> LoadModelFromStream(std::istream& in,
                                        const std::string& context);

/// Serializes `model` to `path` (plain write; not crash-safe — a crash
/// mid-write leaves a torn file, which LoadModel will reject via CRC).
Status SaveModel(const FactorModel& model, const std::string& path);

/// Crash-safe save: writes to `path + ".tmp"`, fsyncs, and atomically renames
/// over `path`, so readers never observe a partially written model.
Status SaveModelAtomic(const FactorModel& model, const std::string& path);

/// Loads a model previously written by SaveModel/SaveModelAtomic. Returns
/// Corruption on a bad magic/version, a truncated file, or a CRC mismatch.
Result<FactorModel> LoadModel(const std::string& path);

/// Integrity check for an in-memory candidate model, used by the serving
/// canary gate before a hot swap: rejects non-finite parameters
/// (Corruption), then round-trips the model through the v2 wire format —
/// serialize, reparse, CRC verify — so the exact bytes a publish would pin
/// are proven readable. `context` names the candidate for error messages.
Status VerifyModelIntegrity(const FactorModel& model,
                            const std::string& context);

}  // namespace clapf

#endif  // CLAPF_MODEL_MODEL_IO_H_
