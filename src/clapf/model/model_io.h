#ifndef CLAPF_MODEL_MODEL_IO_H_
#define CLAPF_MODEL_MODEL_IO_H_

#include <string>

#include "clapf/model/factor_model.h"
#include "clapf/util/status.h"

namespace clapf {

/// Serializes `model` to `path` in a little-endian binary format:
/// magic "CLPF", version, dims, then the raw parameter arrays.
Status SaveModel(const FactorModel& model, const std::string& path);

/// Loads a model previously written by SaveModel. Returns Corruption on a
/// bad magic/version or a truncated file.
Result<FactorModel> LoadModel(const std::string& path);

}  // namespace clapf

#endif  // CLAPF_MODEL_MODEL_IO_H_
