#include "clapf/baselines/pop_rank.h"

#include <algorithm>

namespace clapf {

Status PopRankTrainer::Train(const Dataset& train) {
  auto counts = train.ItemPopularity();
  popularity_.assign(counts.begin(), counts.end());
  return Status::OK();
}

void PopRankTrainer::ScoreItems(UserId /*u*/,
                                std::vector<double>* scores) const {
  *scores = popularity_;
}

void PopRankTrainer::ScoreItemRange(UserId /*u*/, ItemId begin, ItemId end,
                                    std::vector<double>* scores) const {
  std::copy(popularity_.begin() + begin, popularity_.begin() + end,
            scores->begin() + begin);
}

}  // namespace clapf
