#include "clapf/baselines/pop_rank.h"

namespace clapf {

Status PopRankTrainer::Train(const Dataset& train) {
  auto counts = train.ItemPopularity();
  popularity_.assign(counts.begin(), counts.end());
  return Status::OK();
}

void PopRankTrainer::ScoreItems(UserId /*u*/,
                                std::vector<double>* scores) const {
  *scores = popularity_;
}

}  // namespace clapf
