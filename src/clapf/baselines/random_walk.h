#ifndef CLAPF_BASELINES_RANDOM_WALK_H_
#define CLAPF_BASELINES_RANDOM_WALK_H_

#include <string>
#include <vector>

#include "clapf/core/trainer.h"

namespace clapf {

struct RandomWalkOptions {
  /// Number of user→item→user propagation rounds (the paper searches the
  /// walk length in {20, 40, 60, 80}; each round is two hops).
  int32_t walk_length = 20;
  /// Restart probability back to the source user each round.
  double restart_probability = 0.15;
  /// Minimum co-interaction count for a user-user edge to be reachable
  /// (the paper's reachability threshold, searched in {2, 5, 10, 20}).
  int32_t reachable_threshold = 2;
};

/// Random-walk baseline: estimates a user's preference for an item as the
/// walk-probability-weighted average of reachable users' preferences,
/// propagated over the user-item bipartite graph with restarts.
class RandomWalkTrainer : public Trainer {
 public:
  explicit RandomWalkTrainer(const RandomWalkOptions& options);

  Status Train(const Dataset& train) override;
  std::string name() const override { return "RandomWalk"; }

  void ScoreItems(UserId u, std::vector<double>* scores) const override;

  /// The walk is inherently whole-catalog (one propagation yields every
  /// item's mass at once), so the range form runs the full walk into a
  /// scratch vector and copies out [begin, end). Still worth overriding: it
  /// keeps the fallback counter meaningful and the copy is O(end − begin).
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override;

 private:
  RandomWalkOptions options_;
  const Dataset* train_ = nullptr;  // borrowed during/after Train
  // users_of_item_[i] = training users of item i (the reverse adjacency).
  std::vector<std::vector<UserId>> users_of_item_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_RANDOM_WALK_H_
