#include "clapf/baselines/bpr.h"

#include <memory>
#include <utility>

#include "clapf/core/sgd_executor.h"
#include "clapf/sampling/aobpr_sampler.h"
#include "clapf/sampling/dns_sampler.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

namespace {

// One BPR SGD step under an access policy. The PlainAccess instantiation
// reproduces the pre-executor serial loop bit-for-bit; RelaxedAccess is the
// HogWild kernel.
template <typename Access>
class BprWorker final : public SgdWorker {
 public:
  BprWorker(FactorModel* model, const SgdOptions& sgd,
            std::unique_ptr<PairSampler> sampler)
      : model_(model),
        sampler_(std::move(sampler)),
        reg_u_(sgd.reg_user),
        reg_v_(sgd.reg_item),
        reg_b_(sgd.reg_bias),
        d_(sgd.num_factors),
        bias_(sgd.use_item_bias) {}

  double PrepareStep() override {
    p_ = sampler_->Sample();
    return ScoreWith<Access>(*model_, p_.u, p_.i) -
           ScoreWith<Access>(*model_, p_.u, p_.j);
  }

  void ApplyStep(double lr, double margin) override {
    const double g = Sigmoid(-margin);
    auto uu = model_->UserFactors(p_.u);
    auto vi = model_->ItemFactors(p_.i);
    auto vj = model_->ItemFactors(p_.j);
    for (int32_t f = 0; f < d_; ++f) {
      const double u_old = Access::Load(uu[f]);
      const double vi_f = Access::Load(vi[f]);
      const double vj_f = Access::Load(vj[f]);
      Access::Store(uu[f], u_old + lr * (g * (vi_f - vj_f) - reg_u_ * u_old));
      Access::Store(vi[f], vi_f + lr * (g * u_old - reg_v_ * vi_f));
      Access::Store(vj[f], vj_f + lr * (-g * u_old - reg_v_ * vj_f));
    }
    if (bias_) {
      double& bi = model_->ItemBias(p_.i);
      double& bj = model_->ItemBias(p_.j);
      const double bi_old = Access::Load(bi);
      const double bj_old = Access::Load(bj);
      Access::Store(bi, bi_old + lr * (g - reg_b_ * bi_old));
      Access::Store(bj, bj_old + lr * (-g - reg_b_ * bj_old));
    }
  }

 private:
  FactorModel* model_;
  std::unique_ptr<PairSampler> sampler_;
  const double reg_u_, reg_v_, reg_b_;
  const int32_t d_;
  const bool bias_;
  PairSample p_;
};

}  // namespace

BprTrainer::BprTrainer(const BprOptions& options) : options_(options) {}

std::string BprTrainer::name() const {
  switch (options_.sampler) {
    case PairSamplerKind::kUniform:
      return "BPR";
    case PairSamplerKind::kDns:
      return "BPR-DNS";
    case PairSamplerKind::kAobpr:
      return "AoBPR";
  }
  return "BPR";
}

std::unique_ptr<PairSampler> BprTrainer::MakeSampler(const Dataset& train,
                                                     uint64_t seed) const {
  switch (options_.sampler) {
    case PairSamplerKind::kUniform:
      return std::make_unique<UniformPairSampler>(&train, seed);
    case PairSamplerKind::kDns:
      return std::make_unique<DnsPairSampler>(&train, model_.get(),
                                              options_.dns_candidates, seed);
    case PairSamplerKind::kAobpr: {
      AobprPairSampler::Options opts;
      opts.tail_fraction = options_.aobpr_tail_fraction;
      opts.metrics = options_.sgd.metrics;
      return std::make_unique<AobprPairSampler>(&train, model_.get(), opts,
                                                seed);
    }
  }
  return nullptr;
}

Status BprTrainer::Train(const Dataset& train) {
  if (options_.sgd.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  if (TrainableUsers(train).empty()) {
    return Status::FailedPrecondition(
        "no user has both observed and unobserved items");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  SgdExecutorConfig config;
  config.num_threads = options_.sgd.num_threads;
  config.iterations = options_.sgd.iterations;
  config.learning_rate = options_.sgd.learning_rate;
  config.final_learning_rate_fraction =
      options_.sgd.final_learning_rate_fraction;
  config.divergence = options_.sgd.divergence;
  config.metrics = options_.sgd.metrics;
  config.epoch_iterations = static_cast<int64_t>(train.num_interactions());

  const uint64_t base_seed = options_.sgd.seed ^ 0x5eedu;
  auto factory = [&](int w, int n) -> std::unique_ptr<SgdWorker> {
    // Per-worker sampler instance with an independent stream. The adaptive
    // samplers (DNS/AoBPR) additionally read the evolving model on every
    // draw; in parallel mode those reads are plain loads racing the HogWild
    // stores — benign for sampling quality, but not TSan-clean, so the tsan
    // preset exercises the uniform sampler.
    auto sampler = MakeSampler(train, WorkerSeed(base_seed, w));
    if (n == 1) {
      return std::make_unique<BprWorker<PlainAccess>>(model_.get(),
                                                      options_.sgd,
                                                      std::move(sampler));
    }
    return std::make_unique<BprWorker<RelaxedAccess>>(model_.get(),
                                                      options_.sgd,
                                                      std::move(sampler));
  };

  SgdExecutor::ProbeFn probe;
  if (probe_installed()) probe = [this](int64_t it) { MaybeProbe(it); };
  return SgdExecutor::Run(config, model_.get(), factory, probe);
}

}  // namespace clapf
