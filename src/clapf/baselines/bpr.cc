#include "clapf/baselines/bpr.h"

#include <limits>

#include "clapf/core/divergence_guard.h"
#include "clapf/sampling/aobpr_sampler.h"
#include "clapf/sampling/dns_sampler.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

BprTrainer::BprTrainer(const BprOptions& options) : options_(options) {}

std::string BprTrainer::name() const {
  switch (options_.sampler) {
    case PairSamplerKind::kUniform:
      return "BPR";
    case PairSamplerKind::kDns:
      return "BPR-DNS";
    case PairSamplerKind::kAobpr:
      return "AoBPR";
  }
  return "BPR";
}

std::unique_ptr<PairSampler> BprTrainer::MakeSampler(
    const Dataset& train) const {
  const uint64_t seed = options_.sgd.seed ^ 0x5eedu;
  switch (options_.sampler) {
    case PairSamplerKind::kUniform:
      return std::make_unique<UniformPairSampler>(&train, seed);
    case PairSamplerKind::kDns:
      return std::make_unique<DnsPairSampler>(&train, model_.get(),
                                              options_.dns_candidates, seed);
    case PairSamplerKind::kAobpr: {
      AobprPairSampler::Options opts;
      opts.tail_fraction = options_.aobpr_tail_fraction;
      return std::make_unique<AobprPairSampler>(&train, model_.get(), opts,
                                                seed);
    }
  }
  return nullptr;
}

Status BprTrainer::Train(const Dataset& train) {
  if (options_.sgd.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  if (TrainableUsers(train).empty()) {
    return Status::FailedPrecondition(
        "no user has both observed and unobserved items");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  std::unique_ptr<PairSampler> sampler = MakeSampler(train);

  const double lr0 = options_.sgd.learning_rate;
  const double lr1 = lr0 * options_.sgd.final_learning_rate_fraction;
  const double total = static_cast<double>(options_.sgd.iterations);
  const double reg_u = options_.sgd.reg_user;
  const double reg_v = options_.sgd.reg_item;
  const double reg_b = options_.sgd.reg_bias;
  const int32_t d = options_.sgd.num_factors;
  const bool bias = options_.sgd.use_item_bias;

  DivergenceGuard guard(options_.sgd.divergence, model_.get());
  FaultInjector& faults = FaultInjector::Instance();

  for (int64_t it = 1; it <= options_.sgd.iterations; ++it) {
    const double lr =
        (lr0 + (lr1 - lr0) * (static_cast<double>(it - 1) / total)) *
        guard.lr_scale();
    const PairSample p = sampler->Sample();
    double margin = model_->Score(p.u, p.i) - model_->Score(p.u, p.j);
    if (faults.armed() && faults.ShouldFire(FaultPoint::kSgdStepNan)) {
      margin = std::numeric_limits<double>::quiet_NaN();
    }
    switch (guard.Observe(it, margin)) {
      case DivergenceGuard::Action::kHalt:
        return guard.status();
      case DivergenceGuard::Action::kSkipUpdate:
        continue;
      case DivergenceGuard::Action::kProceed:
        break;
    }
    const double g = Sigmoid(-margin);

    auto uu = model_->UserFactors(p.u);
    auto vi = model_->ItemFactors(p.i);
    auto vj = model_->ItemFactors(p.j);
    for (int32_t f = 0; f < d; ++f) {
      const double u_old = uu[f];
      uu[f] += lr * (g * (vi[f] - vj[f]) - reg_u * uu[f]);
      vi[f] += lr * (g * u_old - reg_v * vi[f]);
      vj[f] += lr * (-g * u_old - reg_v * vj[f]);
    }
    if (bias) {
      double& bi = model_->ItemBias(p.i);
      double& bj = model_->ItemBias(p.j);
      bi += lr * (g - reg_b * bi);
      bj += lr * (-g - reg_b * bj);
    }
    MaybeProbe(it);
  }
  return Status::OK();
}

}  // namespace clapf
