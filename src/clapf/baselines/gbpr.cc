#include "clapf/baselines/gbpr.h"

#include <algorithm>

#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

GbprTrainer::GbprTrainer(const GbprOptions& options) : options_(options) {}

Status GbprTrainer::Train(const Dataset& train) {
  if (options_.rho < 0.0 || options_.rho > 1.0) {
    return Status::InvalidArgument("rho must be in [0, 1]");
  }
  if (options_.group_size < 1) {
    return Status::InvalidArgument("group_size must be >= 1");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  if (TrainableUsers(train).empty()) {
    return Status::FailedPrecondition(
        "no user has both observed and unobserved items");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  // Inverted index: consumers of each item, for group sampling.
  std::vector<std::vector<UserId>> users_of_item(
      static_cast<size_t>(train.num_items()));
  for (UserId u = 0; u < train.num_users(); ++u) {
    for (ItemId i : train.ItemsOf(u)) {
      users_of_item[static_cast<size_t>(i)].push_back(u);
    }
  }

  UniformPairSampler sampler(&train, options_.sgd.seed ^ 0x5eedu);
  Rng group_rng(options_.sgd.seed ^ 0x9b9u);

  const double rho = options_.rho;
  const double lr0 = options_.sgd.learning_rate;
  const double lr1 = lr0 * options_.sgd.final_learning_rate_fraction;
  const double total = static_cast<double>(options_.sgd.iterations);
  const double reg_u = options_.sgd.reg_user;
  const double reg_v = options_.sgd.reg_item;
  const double reg_b = options_.sgd.reg_bias;
  const int32_t d = options_.sgd.num_factors;
  const bool bias = options_.sgd.use_item_bias;

  std::vector<UserId> group;
  std::vector<double> group_mean(static_cast<size_t>(d));

  for (int64_t it = 1; it <= options_.sgd.iterations; ++it) {
    const double lr =
        lr0 + (lr1 - lr0) * (static_cast<double>(it - 1) / total);
    const PairSample p = sampler.Sample();

    // Sample the group from the consumers of i (always contains u).
    const auto& consumers = users_of_item[static_cast<size_t>(p.i)];
    group.clear();
    group.push_back(p.u);
    for (int32_t s = 1;
         s < options_.group_size && consumers.size() > 1 && s < 16; ++s) {
      UserId w = consumers[group_rng.Uniform(consumers.size())];
      if (w != p.u) group.push_back(w);
    }

    // Group preference on i: mean of group members' scores.
    double group_score = 0.0;
    std::fill(group_mean.begin(), group_mean.end(), 0.0);
    for (UserId w : group) {
      group_score += model_->Score(w, p.i);
      auto wf = model_->UserFactors(w);
      for (int32_t f = 0; f < d; ++f) group_mean[static_cast<size_t>(f)] += wf[f];
    }
    const double inv_g = 1.0 / static_cast<double>(group.size());
    group_score *= inv_g;
    for (double& x : group_mean) x *= inv_g;

    const double f_ui = model_->Score(p.u, p.i);
    const double f_uj = model_->Score(p.u, p.j);
    const double margin = rho * group_score + (1.0 - rho) * f_ui - f_uj;
    const double g = Sigmoid(-margin);

    auto vi = model_->ItemFactors(p.i);
    auto vj = model_->ItemFactors(p.j);
    auto uu = model_->UserFactors(p.u);

    // d margin / dV_i = ρ·mean(U_w) + (1−ρ)U_u ; dV_j = −U_u.
    // d margin / dU_u = (ρ/|G| + (1−ρ))·V_i − V_j (u is in the group);
    // d margin / dU_w = (ρ/|G|)·V_i for the other members.
    std::vector<double> u_old(uu.begin(), uu.end());
    for (int32_t f = 0; f < d; ++f) {
      const double dvi =
          rho * group_mean[static_cast<size_t>(f)] + (1.0 - rho) * u_old[f];
      const double du =
          (rho * inv_g + (1.0 - rho)) * vi[f] - vj[f];
      uu[f] += lr * (g * du - reg_u * uu[f]);
      vi[f] += lr * (g * dvi - reg_v * vi[f]);
      vj[f] += lr * (-g * u_old[f] - reg_v * vj[f]);
    }
    for (size_t gi = 1; gi < group.size(); ++gi) {
      auto wf = model_->UserFactors(group[gi]);
      for (int32_t f = 0; f < d; ++f) {
        wf[f] += lr * (g * rho * inv_g * vi[f] - reg_u * wf[f]);
      }
    }
    if (bias) {
      double& bi = model_->ItemBias(p.i);
      double& bj = model_->ItemBias(p.j);
      bi += lr * (g - reg_b * bi);
      bj += lr * (-g - reg_b * bj);
    }
    MaybeProbe(it);
  }
  return Status::OK();
}

}  // namespace clapf
