#ifndef CLAPF_BASELINES_BPR_H_
#define CLAPF_BASELINES_BPR_H_

#include <memory>
#include <string>

#include "clapf/core/trainer.h"
#include "clapf/sampling/sampler.h"

namespace clapf {

/// Negative sampler choices for BPR.
enum class PairSamplerKind { kUniform, kDns, kAobpr };

struct BprOptions {
  SgdOptions sgd;
  PairSamplerKind sampler = PairSamplerKind::kUniform;
  /// Candidate pool size for DNS.
  int32_t dns_candidates = 5;
  /// Geometric head mass for AoBPR.
  double aobpr_tail_fraction = 0.2;
};

/// Bayesian Personalized Ranking (Rendle et al., UAI 2009; paper Eq. 3):
/// SGD on pairs (u, i, j), ascending ln σ(f_ui − f_uj) with L2
/// regularization. The seminal pairwise baseline; CLAPF with λ = 0 recovers
/// this objective.
class BprTrainer : public FactorModelTrainer {
 public:
  explicit BprTrainer(const BprOptions& options);

  Status Train(const Dataset& train) override;
  std::string name() const override;

  const BprOptions& options() const { return options_; }

 private:
  /// Builds one sampler instance seeded with `seed`. Parallel training calls
  /// this once per worker so each worker owns an independent sample stream;
  /// the adaptive samplers (DNS/AoBPR) then rank against the shared model
  /// with unsynchronized reads (HogWild-benign, not TSan-clean).
  std::unique_ptr<PairSampler> MakeSampler(const Dataset& train,
                                           uint64_t seed) const;

  BprOptions options_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_BPR_H_
