#include "clapf/baselines/neu_pr.h"

#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

NeuPrTrainer::NeuPrTrainer(const NeuPrOptions& options) : options_(options) {}

double NeuPrTrainer::ForwardScore(UserId u, ItemId i) const {
  const int32_t e = options_.embedding_dim;
  auto mu = user_emb_->Row(u);
  auto mi = item_emb_->Row(i);
  concat_in_.resize(static_cast<size_t>(2 * e));
  for (int32_t f = 0; f < e; ++f) concat_in_[static_cast<size_t>(f)] = mu[f];
  for (int32_t f = 0; f < e; ++f) {
    concat_in_[static_cast<size_t>(e + f)] = mi[f];
  }
  return tower_->Forward(concat_in_)[0];
}

void NeuPrTrainer::BackwardFor(UserId u, ItemId i, double dscore) {
  const int32_t e = options_.embedding_dim;
  // Restore the layer caches for this input, then backprop.
  ForwardScore(u, i);
  std::vector<double> concat_grad =
      tower_->BackwardAndStep(std::span<const double>(&dscore, 1));
  user_emb_->ApplyGradient(
      u, std::span<const double>(concat_grad.data(), static_cast<size_t>(e)));
  item_emb_->ApplyGradient(
      i, std::span<const double>(concat_grad.data() + e,
                                 static_cast<size_t>(e)));
}

Status NeuPrTrainer::Train(const Dataset& train) {
  if (options_.embedding_dim <= 0) {
    return Status::InvalidArgument("embedding_dim must be positive");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  if (TrainableUsers(train).empty()) {
    return Status::FailedPrecondition(
        "no user has both observed and unobserved items");
  }

  const int32_t e = options_.embedding_dim;
  AdamConfig adam;
  adam.learning_rate = options_.learning_rate;
  user_emb_ = std::make_unique<Embedding>(train.num_users(), e, adam);
  item_emb_ = std::make_unique<Embedding>(train.num_items(), e, adam);
  const int32_t half = std::max(1, e / 2);
  tower_ = std::make_unique<Mlp>(
      std::vector<int32_t>{2 * e, 2 * e, e, half, 1}, Activation::kRelu,
      Activation::kIdentity, adam);

  Rng rng(options_.seed);
  user_emb_->Init(rng, options_.init_stddev);
  item_emb_->Init(rng, options_.init_stddev);
  tower_->Init(rng);

  UniformPairSampler sampler(&train, options_.seed ^ 0x5eedu);

  for (int64_t it = 1; it <= options_.iterations; ++it) {
    const PairSample p = sampler.Sample();
    const double si = ForwardScore(p.u, p.i);
    const double sj = ForwardScore(p.u, p.j);
    // Minimize −ln σ(si − sj): d/dsi = −σ(sj − si), d/dsj = +σ(sj − si).
    const double g = Sigmoid(sj - si);
    BackwardFor(p.u, p.i, -g);
    BackwardFor(p.u, p.j, g);
    MaybeProbe(it);
  }
  return Status::OK();
}

void NeuPrTrainer::ScoreItems(UserId u, std::vector<double>* scores) const {
  CLAPF_CHECK(user_emb_ != nullptr) << "Train() must run before ScoreItems()";
  scores->resize(static_cast<size_t>(item_emb_->rows()));
  ScoreItemRange(u, 0, item_emb_->rows(), scores);
}

void NeuPrTrainer::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                                  std::vector<double>* scores) const {
  CLAPF_CHECK(user_emb_ != nullptr)
      << "Train() must run before ScoreItemRange()";
  for (ItemId i = begin; i < end; ++i) {
    (*scores)[static_cast<size_t>(i)] = ForwardScore(u, i);
  }
}

}  // namespace clapf
