#ifndef CLAPF_BASELINES_CLIMF_H_
#define CLAPF_BASELINES_CLIMF_H_

#include <string>

#include "clapf/core/trainer.h"

namespace clapf {

struct ClimfOptions {
  SgdOptions sgd;
  /// Number of full passes over all users. CLiMF's per-user update is
  /// O(|I_u⁺|²·d), so its cost is measured in epochs, not sampled
  /// iterations — exactly why the paper reports it as slow.
  int32_t epochs = 20;
};

/// Collaborative Less-is-More Filtering (Shi et al., RecSys 2012; paper
/// Eq. 7): maximizes the lower bound of the smoothed Mean Reciprocal Rank
///   Σ_{i∈I⁺} ln σ(f_ui) + Σ_{i,k∈I⁺,k≠i} ln σ(f_ui − f_uk)
/// by gradient ascent over each user's observed items. A listwise method:
/// it never touches unobserved items during training, the limitation CLAPF
/// is designed to remove.
class ClimfTrainer : public FactorModelTrainer {
 public:
  explicit ClimfTrainer(const ClimfOptions& options);

  Status Train(const Dataset& train) override;
  std::string name() const override { return "CLiMF"; }

 private:
  ClimfOptions options_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_CLIMF_H_
