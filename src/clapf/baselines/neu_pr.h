#ifndef CLAPF_BASELINES_NEU_PR_H_
#define CLAPF_BASELINES_NEU_PR_H_

#include <memory>
#include <string>
#include <vector>

#include "clapf/core/trainer.h"
#include "clapf/nn/embedding.h"
#include "clapf/nn/mlp.h"

namespace clapf {

struct NeuPrOptions {
  int32_t embedding_dim = 8;
  double learning_rate = 0.002;
  /// SGD iterations over sampled (u, i, j) pairs.
  int64_t iterations = 100000;
  double init_stddev = 0.1;
  uint64_t seed = 1;
};

/// Neural Personalized Ranking (after Song et al., CIKM 2018's neural
/// collaborative ranking): user/item embeddings feed a shared MLP tower that
/// scores s_ui; training maximizes the pairwise probability
/// ln σ(s_ui − s_uj) over observed/unobserved pairs — BPR's criterion with a
/// deep scorer.
class NeuPrTrainer : public Trainer {
 public:
  explicit NeuPrTrainer(const NeuPrOptions& options);

  Status Train(const Dataset& train) override;
  std::string name() const override { return "NeuPR"; }

  void ScoreItems(UserId u, std::vector<double>* scores) const override;

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override;

 private:
  double ForwardScore(UserId u, ItemId i) const;
  /// Re-runs the forward for (u, i) and backprops d(loss)/d(score) = dscore.
  void BackwardFor(UserId u, ItemId i, double dscore);

  NeuPrOptions options_;
  std::unique_ptr<Embedding> user_emb_, item_emb_;
  std::unique_ptr<Mlp> tower_;
  mutable std::vector<double> concat_in_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_NEU_PR_H_
