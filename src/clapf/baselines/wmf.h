#ifndef CLAPF_BASELINES_WMF_H_
#define CLAPF_BASELINES_WMF_H_

#include <string>

#include "clapf/core/trainer.h"

namespace clapf {

struct WmfOptions {
  /// Latent dimensionality.
  int32_t num_factors = 20;
  /// Confidence weight: observed cells get confidence 1 + alpha, unobserved
  /// cells confidence 1 (Hu, Koren & Volinsky 2008). The paper searches this
  /// in {10, 20, 40, 100}.
  double alpha = 40.0;
  /// L2 regularization.
  double reg = 0.01;
  /// Alternating least squares sweeps.
  int32_t sweeps = 10;
  double init_stddev = 0.01;
  uint64_t seed = 1;
  /// Numerical-health monitoring, checked once per ALS sweep. Because ALS is
  /// deterministic (re-solving a sweep reproduces the same divergence),
  /// kRollback restores the last healthy factors and then halts instead of
  /// retrying; kClamp clamps and keeps sweeping.
  DivergenceOptions divergence;
};

/// Weighted Matrix Factorization (Hu et al., ICDM 2008) — the paper's
/// pointwise baseline: treats implicit feedback as absolute preferences and
/// minimizes the confidence-weighted square loss
///   Σ_{u,i} c_ui (p_ui − U_u·V_i)² + reg(||U||² + ||V||²)
/// by exact alternating least squares with the (C − I) sparse trick.
class WmfTrainer : public FactorModelTrainer {
 public:
  explicit WmfTrainer(const WmfOptions& options);

  Status Train(const Dataset& train) override;
  std::string name() const override { return "WMF"; }

 private:
  WmfOptions options_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_WMF_H_
