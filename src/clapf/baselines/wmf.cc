#include "clapf/baselines/wmf.h"

#include <vector>

#include "clapf/util/linalg.h"
#include "clapf/util/logging.h"

namespace clapf {

namespace {

// gram = Xᵀ X for the row-major factor block with `rows` rows of length d.
void ComputeGram(const std::vector<double>& x, int64_t rows, int32_t d,
                 std::vector<double>* gram) {
  gram->assign(static_cast<size_t>(d) * d, 0.0);
  for (int64_t r = 0; r < rows; ++r) {
    const double* row = &x[static_cast<size_t>(r) * d];
    for (int32_t a = 0; a < d; ++a) {
      for (int32_t b = a; b < d; ++b) {
        (*gram)[static_cast<size_t>(a) * d + b] += row[a] * row[b];
      }
    }
  }
  for (int32_t a = 0; a < d; ++a) {
    for (int32_t b = 0; b < a; ++b) {
      (*gram)[static_cast<size_t>(a) * d + b] =
          (*gram)[static_cast<size_t>(b) * d + a];
    }
  }
}

}  // namespace

WmfTrainer::WmfTrainer(const WmfOptions& options) : options_(options) {}

Status WmfTrainer::Train(const Dataset& train) {
  if (options_.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (options_.sweeps < 0) {
    return Status::InvalidArgument("sweeps must be >= 0");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }

  const int32_t n = train.num_users();
  const int32_t m = train.num_items();
  const int32_t d = options_.num_factors;
  const double alpha = options_.alpha;
  const double reg = options_.reg;

  // WMF has no item bias; the ALS solution absorbs popularity into factors.
  model_ = std::make_unique<FactorModel>(n, m, d, /*use_item_bias=*/false);
  Rng init_rng(options_.seed);
  model_->InitGaussian(init_rng, options_.init_stddev);

  // Inverted index: users per item, for the item-side sweep.
  std::vector<std::vector<UserId>> users_of_item(static_cast<size_t>(m));
  for (UserId u = 0; u < n; ++u) {
    for (ItemId i : train.ItemsOf(u)) {
      users_of_item[static_cast<size_t>(i)].push_back(u);
    }
  }

  // Mutable copies of the factor blocks (FactorModel spans are per-row).
  std::vector<double> uf(static_cast<size_t>(n) * d);
  std::vector<double> vf(static_cast<size_t>(m) * d);
  for (UserId u = 0; u < n; ++u) {
    auto span = model_->UserFactors(u);
    std::copy(span.begin(), span.end(), &uf[static_cast<size_t>(u) * d]);
  }
  for (ItemId i = 0; i < m; ++i) {
    auto span = model_->ItemFactors(i);
    std::copy(span.begin(), span.end(), &vf[static_cast<size_t>(i) * d]);
  }

  std::vector<double> gram;
  std::vector<double> a(static_cast<size_t>(d) * d);
  std::vector<double> b(static_cast<size_t>(d));

  for (int32_t sweep = 0; sweep < options_.sweeps; ++sweep) {
    // User side: solve (VᵀV + α Σ v vᵀ + reg I) x = (1+α) Σ v.
    ComputeGram(vf, m, d, &gram);
    for (UserId u = 0; u < n; ++u) {
      auto items = train.ItemsOf(u);
      if (items.empty()) continue;
      a = gram;
      std::fill(b.begin(), b.end(), 0.0);
      for (ItemId i : items) {
        const double* v = &vf[static_cast<size_t>(i) * d];
        for (int32_t p = 0; p < d; ++p) {
          for (int32_t q = 0; q < d; ++q) {
            a[static_cast<size_t>(p) * d + q] += alpha * v[p] * v[q];
          }
          b[static_cast<size_t>(p)] += (1.0 + alpha) * v[p];
        }
      }
      for (int32_t p = 0; p < d; ++p) {
        a[static_cast<size_t>(p) * d + p] += reg;
      }
      CLAPF_RETURN_IF_ERROR(CholeskySolveInPlace(a, b, d));
      std::copy(b.begin(), b.end(), &uf[static_cast<size_t>(u) * d]);
    }

    // Item side, symmetric.
    ComputeGram(uf, n, d, &gram);
    for (ItemId i = 0; i < m; ++i) {
      const auto& users = users_of_item[static_cast<size_t>(i)];
      if (users.empty()) continue;
      a = gram;
      std::fill(b.begin(), b.end(), 0.0);
      for (UserId u : users) {
        const double* x = &uf[static_cast<size_t>(u) * d];
        for (int32_t p = 0; p < d; ++p) {
          for (int32_t q = 0; q < d; ++q) {
            a[static_cast<size_t>(p) * d + q] += alpha * x[p] * x[q];
          }
          b[static_cast<size_t>(p)] += (1.0 + alpha) * x[p];
        }
      }
      for (int32_t p = 0; p < d; ++p) {
        a[static_cast<size_t>(p) * d + p] += reg;
      }
      CLAPF_RETURN_IF_ERROR(CholeskySolveInPlace(a, b, d));
      std::copy(b.begin(), b.end(), &vf[static_cast<size_t>(i) * d]);
    }

    MaybeProbe(sweep + 1);
  }

  // Publish the solved factors back into the model.
  for (UserId u = 0; u < n; ++u) {
    auto span = model_->UserFactors(u);
    std::copy(&uf[static_cast<size_t>(u) * d],
              &uf[static_cast<size_t>(u) * d] + d, span.begin());
  }
  for (ItemId i = 0; i < m; ++i) {
    auto span = model_->ItemFactors(i);
    std::copy(&vf[static_cast<size_t>(i) * d],
              &vf[static_cast<size_t>(i) * d] + d, span.begin());
  }
  return Status::OK();
}

}  // namespace clapf
