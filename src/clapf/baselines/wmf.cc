#include "clapf/baselines/wmf.h"

#include <cmath>
#include <limits>
#include <vector>

#include "clapf/core/divergence_guard.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/linalg.h"
#include "clapf/util/logging.h"

namespace clapf {

namespace {

// gram = Xᵀ X for the row-major factor block with `rows` rows of length d.
void ComputeGram(const std::vector<double>& x, int64_t rows, int32_t d,
                 std::vector<double>* gram) {
  gram->assign(static_cast<size_t>(d) * d, 0.0);
  for (int64_t r = 0; r < rows; ++r) {
    const double* row = &x[static_cast<size_t>(r) * d];
    for (int32_t a = 0; a < d; ++a) {
      for (int32_t b = a; b < d; ++b) {
        (*gram)[static_cast<size_t>(a) * d + b] += row[a] * row[b];
      }
    }
  }
  for (int32_t a = 0; a < d; ++a) {
    for (int32_t b = 0; b < a; ++b) {
      (*gram)[static_cast<size_t>(a) * d + b] =
          (*gram)[static_cast<size_t>(b) * d + a];
    }
  }
}

}  // namespace

WmfTrainer::WmfTrainer(const WmfOptions& options) : options_(options) {}

Status WmfTrainer::Train(const Dataset& train) {
  if (options_.num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (options_.sweeps < 0) {
    return Status::InvalidArgument("sweeps must be >= 0");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }

  const int32_t n = train.num_users();
  const int32_t m = train.num_items();
  const int32_t d = options_.num_factors;
  const double alpha = options_.alpha;
  const double reg = options_.reg;

  // WMF has no item bias; the ALS solution absorbs popularity into factors.
  model_ = std::make_unique<FactorModel>(n, m, d, /*use_item_bias=*/false);
  Rng init_rng(options_.seed);
  model_->InitGaussian(init_rng, options_.init_stddev);

  // Inverted index: users per item, for the item-side sweep.
  std::vector<std::vector<UserId>> users_of_item(static_cast<size_t>(m));
  for (UserId u = 0; u < n; ++u) {
    for (ItemId i : train.ItemsOf(u)) {
      users_of_item[static_cast<size_t>(i)].push_back(u);
    }
  }

  // Mutable copies of the factor blocks (FactorModel spans are per-row).
  // `publish` pushes the working blocks into the model — the canonical
  // storage the guard snapshots/restores — and `unpublish` pulls them back
  // out after a restore or clamp.
  std::vector<double> uf(static_cast<size_t>(n) * d);
  std::vector<double> vf(static_cast<size_t>(m) * d);
  auto publish = [&] {
    for (UserId u = 0; u < n; ++u) {
      auto span = model_->UserFactors(u);
      std::copy(&uf[static_cast<size_t>(u) * d],
                &uf[static_cast<size_t>(u) * d] + d, span.begin());
    }
    for (ItemId i = 0; i < m; ++i) {
      auto span = model_->ItemFactors(i);
      std::copy(&vf[static_cast<size_t>(i) * d],
                &vf[static_cast<size_t>(i) * d] + d, span.begin());
    }
  };
  auto unpublish = [&] {
    for (UserId u = 0; u < n; ++u) {
      auto span = model_->UserFactors(u);
      std::copy(span.begin(), span.end(), &uf[static_cast<size_t>(u) * d]);
    }
    for (ItemId i = 0; i < m; ++i) {
      auto span = model_->ItemFactors(i);
      std::copy(span.begin(), span.end(), &vf[static_cast<size_t>(i) * d]);
    }
  };
  unpublish();

  std::vector<double> gram;
  std::vector<double> a(static_cast<size_t>(d) * d);
  std::vector<double> b(static_cast<size_t>(d));

  // Every sweep is a full-model update, so scan and (under kRollback)
  // re-snapshot on every health check rather than on an iteration interval.
  DivergenceOptions guard_options = options_.divergence;
  guard_options.check_interval = 1;
  DivergenceGuard guard(guard_options, model_.get());
  FaultInjector& faults = FaultInjector::Instance();

  for (int32_t sweep = 0; sweep < options_.sweeps; ++sweep) {
    // User side: solve (VᵀV + α Σ v vᵀ + reg I) x = (1+α) Σ v.
    ComputeGram(vf, m, d, &gram);
    for (UserId u = 0; u < n; ++u) {
      auto items = train.ItemsOf(u);
      if (items.empty()) continue;
      a = gram;
      std::fill(b.begin(), b.end(), 0.0);
      for (ItemId i : items) {
        const double* v = &vf[static_cast<size_t>(i) * d];
        for (int32_t p = 0; p < d; ++p) {
          for (int32_t q = 0; q < d; ++q) {
            a[static_cast<size_t>(p) * d + q] += alpha * v[p] * v[q];
          }
          b[static_cast<size_t>(p)] += (1.0 + alpha) * v[p];
        }
      }
      for (int32_t p = 0; p < d; ++p) {
        a[static_cast<size_t>(p) * d + p] += reg;
      }
      CLAPF_RETURN_IF_ERROR(CholeskySolveInPlace(a, b, d));
      std::copy(b.begin(), b.end(), &uf[static_cast<size_t>(u) * d]);
    }

    // Item side, symmetric.
    ComputeGram(uf, n, d, &gram);
    for (ItemId i = 0; i < m; ++i) {
      const auto& users = users_of_item[static_cast<size_t>(i)];
      if (users.empty()) continue;
      a = gram;
      std::fill(b.begin(), b.end(), 0.0);
      for (UserId u : users) {
        const double* x = &uf[static_cast<size_t>(u) * d];
        for (int32_t p = 0; p < d; ++p) {
          for (int32_t q = 0; q < d; ++q) {
            a[static_cast<size_t>(p) * d + q] += alpha * x[p] * x[q];
          }
          b[static_cast<size_t>(p)] += (1.0 + alpha) * x[p];
        }
      }
      for (int32_t p = 0; p < d; ++p) {
        a[static_cast<size_t>(p) * d + p] += reg;
      }
      CLAPF_RETURN_IF_ERROR(CholeskySolveInPlace(a, b, d));
      std::copy(b.begin(), b.end(), &vf[static_cast<size_t>(i) * d]);
    }

    // Publish the sweep's factors, then check numerical health. The value
    // handed to the guard is the largest-magnitude entry (NaN sticks), so a
    // blow-up trips the cheap check and the guard's full scan backs it up.
    publish();
    double health = 0.0;
    for (const std::vector<double>* block : {&uf, &vf}) {
      for (double v : *block) {
        if (!(std::fabs(v) <= std::fabs(health))) health = v;
      }
    }
    if (faults.armed() && faults.ShouldFire(FaultPoint::kSgdStepNan)) {
      health = std::numeric_limits<double>::quiet_NaN();
    }
    switch (guard.Observe(sweep + 1, health)) {
      case DivergenceGuard::Action::kHalt:
        return guard.status();
      case DivergenceGuard::Action::kSkipUpdate:
        if (options_.divergence.policy == DivergencePolicy::kRollback) {
          // ALS is deterministic: re-solving the sweep would reproduce the
          // same divergence, so keep the restored healthy factors and stop.
          return Status::Internal(
              "WMF diverged at sweep " + std::to_string(sweep + 1) +
              "; model restored to last healthy factors");
        }
        unpublish();  // kClamp: continue sweeping from the clamped factors.
        continue;
      case DivergenceGuard::Action::kProceed:
        break;
    }

    MaybeProbe(sweep + 1);
  }

  return Status::OK();
}

}  // namespace clapf
