#ifndef CLAPF_BASELINES_POP_RANK_H_
#define CLAPF_BASELINES_POP_RANK_H_

#include <string>
#include <vector>

#include "clapf/core/trainer.h"

namespace clapf {

/// Popularity ranking: scores every item by its training interaction count,
/// identically for all users — the paper's non-personalized baseline.
class PopRankTrainer : public Trainer {
 public:
  PopRankTrainer() = default;

  Status Train(const Dataset& train) override;
  std::string name() const override { return "PopRank"; }

  void ScoreItems(UserId u, std::vector<double>* scores) const override;

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override;

  /// Item popularity counts learned from training data.
  const std::vector<double>& popularity() const { return popularity_; }

 private:
  std::vector<double> popularity_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_POP_RANK_H_
