#include "clapf/baselines/random_walk.h"

#include <algorithm>

#include "clapf/util/logging.h"

namespace clapf {

RandomWalkTrainer::RandomWalkTrainer(const RandomWalkOptions& options)
    : options_(options) {}

Status RandomWalkTrainer::Train(const Dataset& train) {
  if (options_.walk_length <= 0) {
    return Status::InvalidArgument("walk_length must be positive");
  }
  if (options_.restart_probability < 0.0 ||
      options_.restart_probability >= 1.0) {
    return Status::InvalidArgument("restart_probability must be in [0, 1)");
  }
  // The walk reads the training graph lazily at scoring time; the dataset
  // must outlive this trainer.
  train_ = &train;
  users_of_item_.assign(static_cast<size_t>(train.num_items()), {});
  for (UserId u = 0; u < train.num_users(); ++u) {
    for (ItemId i : train.ItemsOf(u)) {
      users_of_item_[static_cast<size_t>(i)].push_back(u);
    }
  }
  return Status::OK();
}

void RandomWalkTrainer::ScoreItems(UserId u,
                                   std::vector<double>* scores) const {
  CLAPF_CHECK(train_ != nullptr) << "Train() must run before ScoreItems()";
  const int32_t n = train_->num_users();
  const int32_t m = train_->num_items();
  scores->assign(static_cast<size_t>(m), 0.0);

  // Personalized walk over users: each round hops user → item → user, with
  // restart mass back at the source. Items below the reachability threshold
  // do not create user-user edges.
  std::vector<double> p(static_cast<size_t>(n), 0.0);
  std::vector<double> item_mass(static_cast<size_t>(m), 0.0);
  std::vector<double> next(static_cast<size_t>(n), 0.0);
  p[static_cast<size_t>(u)] = 1.0;

  const int32_t rounds = options_.walk_length;
  for (int32_t round = 0; round < rounds; ++round) {
    std::fill(item_mass.begin(), item_mass.end(), 0.0);
    for (UserId v = 0; v < n; ++v) {
      const double mass = p[static_cast<size_t>(v)];
      if (mass <= 0.0) continue;
      auto items = train_->ItemsOf(v);
      if (items.empty()) continue;
      const double share = mass / static_cast<double>(items.size());
      for (ItemId i : items) item_mass[static_cast<size_t>(i)] += share;
    }
    std::fill(next.begin(), next.end(), 0.0);
    double propagated = 0.0;
    for (ItemId i = 0; i < m; ++i) {
      const double mass = item_mass[static_cast<size_t>(i)];
      if (mass <= 0.0) continue;
      const auto& users = users_of_item_[static_cast<size_t>(i)];
      if (static_cast<int32_t>(users.size()) < options_.reachable_threshold) {
        continue;  // too weak an edge to be "reachable"
      }
      const double share = mass / static_cast<double>(users.size());
      for (UserId v : users) {
        next[static_cast<size_t>(v)] += share;
        propagated += share;
      }
    }
    const double restart = options_.restart_probability;
    if (propagated > 0.0) {
      for (UserId v = 0; v < n; ++v) {
        p[static_cast<size_t>(v)] =
            (1.0 - restart) * next[static_cast<size_t>(v)] / propagated;
      }
      p[static_cast<size_t>(u)] += restart;
    } else {
      std::fill(p.begin(), p.end(), 0.0);
      p[static_cast<size_t>(u)] = 1.0;
      break;
    }
  }

  // Preference estimate: walk-probability-weighted average of reachable
  // users' observed preferences.
  for (UserId v = 0; v < n; ++v) {
    const double weight = p[static_cast<size_t>(v)];
    if (weight <= 0.0 || v == u) continue;
    for (ItemId i : train_->ItemsOf(v)) {
      (*scores)[static_cast<size_t>(i)] += weight;
    }
  }
}

void RandomWalkTrainer::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                                       std::vector<double>* scores) const {
  // One propagation yields the whole catalog; run it into scratch and copy
  // the requested slice (see header comment).
  std::vector<double> full;
  ScoreItems(u, &full);
  std::copy(full.begin() + begin, full.begin() + end, scores->begin() + begin);
}

}  // namespace clapf
