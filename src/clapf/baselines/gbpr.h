#ifndef CLAPF_BASELINES_GBPR_H_
#define CLAPF_BASELINES_GBPR_H_

#include <string>
#include <vector>

#include "clapf/core/trainer.h"

namespace clapf {

struct GbprOptions {
  SgdOptions sgd;
  /// Weight of the group preference vs the individual's (ρ in GBPR).
  double rho = 0.6;
  /// Users sampled into the group (including u itself when too few other
  /// consumers of i exist).
  int32_t group_size = 3;
};

/// Group Bayesian Personalized Ranking (Pan & Chen, IJCAI 2013), cited by
/// the paper (§2.1) as the method relaxing BPR's user-independence
/// assumption: the positive side of the pairwise comparison blends the
/// user's own score with the mean score of a sampled group G of users who
/// also consumed item i,
///   margin = ρ·(1/|G| Σ_{w∈G} f_wi) + (1−ρ)·f_ui − f_uj,
/// and the SGD step updates every group member.
class GbprTrainer : public FactorModelTrainer {
 public:
  explicit GbprTrainer(const GbprOptions& options);

  Status Train(const Dataset& train) override;
  std::string name() const override { return "GBPR"; }

 private:
  GbprOptions options_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_GBPR_H_
