#include "clapf/baselines/item_knn.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "clapf/util/logging.h"

namespace clapf {

ItemKnnTrainer::ItemKnnTrainer(const ItemKnnOptions& options)
    : options_(options) {}

Status ItemKnnTrainer::Train(const Dataset& train) {
  if (options_.neighbors < 0) {
    return Status::InvalidArgument("neighbors must be >= 0");
  }
  if (options_.shrinkage < 0.0) {
    return Status::InvalidArgument("shrinkage must be >= 0");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  train_ = &train;

  const int32_t m = train.num_items();
  auto popularity = train.ItemPopularity();

  // Co-occurrence counts via per-user item pairs.
  std::vector<std::unordered_map<ItemId, int32_t>> cooc(
      static_cast<size_t>(m));
  for (UserId u = 0; u < train.num_users(); ++u) {
    auto items = train.ItemsOf(u);
    for (size_t a = 0; a < items.size(); ++a) {
      for (size_t b = a + 1; b < items.size(); ++b) {
        // Store each unordered pair once under the smaller id.
        ++cooc[static_cast<size_t>(items[a])][items[b]];
      }
    }
  }

  neighbors_.assign(static_cast<size_t>(m), {});
  for (ItemId i = 0; i < m; ++i) {
    for (const auto& [j, count] : cooc[static_cast<size_t>(i)]) {
      const double denom =
          std::sqrt(static_cast<double>(popularity[static_cast<size_t>(i)])) *
              std::sqrt(
                  static_cast<double>(popularity[static_cast<size_t>(j)])) +
          options_.shrinkage;
      if (denom <= 0.0) continue;
      const double sim = static_cast<double>(count) / denom;
      neighbors_[static_cast<size_t>(i)].emplace_back(j, sim);
      neighbors_[static_cast<size_t>(j)].emplace_back(i, sim);
    }
  }

  for (auto& list : neighbors_) {
    std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (options_.neighbors > 0 &&
        static_cast<int32_t>(list.size()) > options_.neighbors) {
      list.resize(static_cast<size_t>(options_.neighbors));
    }
  }
  return Status::OK();
}

void ItemKnnTrainer::ScoreItems(UserId u, std::vector<double>* scores) const {
  CLAPF_CHECK(train_ != nullptr) << "Train() must run before ScoreItems()";
  scores->assign(static_cast<size_t>(train_->num_items()), 0.0);
  // Accumulate similarity mass from the user's history into each
  // neighbouring item.
  for (ItemId j : train_->ItemsOf(u)) {
    for (const auto& [i, sim] : neighbors_[static_cast<size_t>(j)]) {
      (*scores)[static_cast<size_t>(i)] += sim;
    }
  }
}

void ItemKnnTrainer::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                                    std::vector<double>* scores) const {
  CLAPF_CHECK(train_ != nullptr) << "Train() must run before ScoreItemRange()";
  std::fill(scores->begin() + begin, scores->begin() + end, 0.0);
  // Same scatter as the full scan, restricted to targets inside the range.
  for (ItemId j : train_->ItemsOf(u)) {
    for (const auto& [i, sim] : neighbors_[static_cast<size_t>(j)]) {
      if (i >= begin && i < end) {
        (*scores)[static_cast<size_t>(i)] += sim;
      }
    }
  }
}

}  // namespace clapf
