#ifndef CLAPF_BASELINES_MPR_H_
#define CLAPF_BASELINES_MPR_H_

#include <string>

#include "clapf/core/trainer.h"

namespace clapf {

struct MprOptions {
  SgdOptions sgd;
  /// Tradeoff ρ between the two pairwise criteria, tuned on validation in
  /// the paper.
  double rho = 0.5;
};

/// Multiple Pairwise Ranking (Yu et al., CIKM 2018): relaxes BPR's single
/// pairwise assumption by fusing multiple pairwise criteria in one logistic
/// objective. The original uses auxiliary view data to grade the item sets;
/// with pure implicit feedback (no view signal, as in this reproduction) the
/// multiple criteria become two independent positive>negative pairs per
/// step:
///   ln σ( ρ(f_ui − f_uj) + (1−ρ)(f_ui' − f_uj') ),
/// with i, i' observed and j, j' unobserved. This preserves MPR's structure
/// (a λ-fused multi-pair logistic margin, the template CLAPF §4.2 cites) and
/// its behaviour of coupling gradients across several items per step.
class MprTrainer : public FactorModelTrainer {
 public:
  explicit MprTrainer(const MprOptions& options);

  Status Train(const Dataset& train) override;
  std::string name() const override { return "MPR"; }

 private:
  MprOptions options_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_MPR_H_
