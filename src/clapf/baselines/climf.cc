#include "clapf/baselines/climf.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "clapf/core/sgd_executor.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

namespace {

// One CLiMF per-user update under an access policy. Workers stride over the
// shared list of active users (those with ≥ 1 observed item), so N workers
// partition each epoch without coordination and the serial worker (stride 1)
// visits users in exactly the original ascending order. PlainAccess
// reproduces the pre-executor loop bit-for-bit.
template <typename Access>
class ClimfWorker final : public SgdWorker {
 public:
  ClimfWorker(FactorModel* model, const ClimfOptions& options,
              const Dataset* train, const std::vector<UserId>* active,
              int worker, int num_workers)
      : model_(model),
        train_(train),
        active_(active),
        cursor_(static_cast<size_t>(worker)),
        stride_(static_cast<size_t>(num_workers)),
        reg_u_(options.sgd.reg_user),
        reg_v_(options.sgd.reg_item),
        reg_b_(options.sgd.reg_bias),
        d_(options.sgd.num_factors),
        bias_(options.sgd.use_item_bias),
        user_grad_(static_cast<size_t>(options.sgd.num_factors)) {}

  double PrepareStep() override {
    u_ = (*active_)[cursor_];
    cursor_ += stride_;
    if (cursor_ >= active_->size()) cursor_ -= active_->size();

    auto items = train_->ItemsOf(u_);
    const size_t n_u = items.size();
    scores_.resize(n_u);
    double worst_score = 0.0;
    for (size_t a = 0; a < n_u; ++a) {
      scores_[a] = ScoreWith<Access>(*model_, u_, items[a]);
      if (!(std::fabs(scores_[a]) <= std::fabs(worst_score))) {
        worst_score = scores_[a];  // largest magnitude; NaN sticks
      }
    }
    // The largest-magnitude score is this step's health margin: one guard
    // observation per user update (CLiMF's unit of SGD work).
    return worst_score;
  }

  void ApplyStep(double lr, double /*margin*/) override {
    auto items = train_->ItemsOf(u_);
    const size_t n_u = items.size();
    // ∂L/∂f_ua = σ(−f_ua) + Σ_{k≠a} [σ(f_uk − f_ua) − σ(f_ua − f_uk)]
    // for the Eq. (7) lower bound — the listwise coupling among all of the
    // user's observed items. The whole per-user objective is scaled by
    // 1/n_u (the constant the paper's own derivation drops) so the
    // gradient magnitude does not grow with the user's activity; without
    // it the U↔V updates compound and the factors diverge.
    const double inv_n = 1.0 / static_cast<double>(n_u);
    dL_df_.assign(n_u, 0.0);
    for (size_t a = 0; a < n_u; ++a) {
      dL_df_[a] = Sigmoid(-scores_[a]);
      for (size_t k = 0; k < n_u; ++k) {
        if (k == a) continue;
        dL_df_[a] += Sigmoid(scores_[k] - scores_[a]) -
                     Sigmoid(scores_[a] - scores_[k]);
      }
      dL_df_[a] *= inv_n;
    }

    auto uu = model_->UserFactors(u_);
    user_snapshot_.resize(static_cast<size_t>(d_));
    for (int32_t f = 0; f < d_; ++f) {
      user_snapshot_[f] = Access::Load(uu[f]);
    }
    std::fill(user_grad_.begin(), user_grad_.end(), 0.0);
    for (size_t a = 0; a < n_u; ++a) {
      auto va = model_->ItemFactors(items[a]);
      for (int32_t f = 0; f < d_; ++f) {
        user_grad_[f] += dL_df_[a] * Access::Load(va[f]);
      }
    }
    // Item updates use the pre-update user vector.
    for (size_t a = 0; a < n_u; ++a) {
      auto va = model_->ItemFactors(items[a]);
      for (int32_t f = 0; f < d_; ++f) {
        const double va_f = Access::Load(va[f]);
        Access::Store(va[f], va_f + lr * (dL_df_[a] * user_snapshot_[f] -
                                          reg_v_ * va_f));
      }
      if (bias_) {
        double& ba = model_->ItemBias(items[a]);
        const double ba_old = Access::Load(ba);
        Access::Store(ba, ba_old + lr * (dL_df_[a] - reg_b_ * ba_old));
      }
    }
    for (int32_t f = 0; f < d_; ++f) {
      const double u_f = user_snapshot_[f];
      Access::Store(uu[f], u_f + lr * (user_grad_[f] - reg_u_ * u_f));
    }
  }

 private:
  FactorModel* model_;
  const Dataset* train_;
  const std::vector<UserId>* active_;
  size_t cursor_;
  const size_t stride_;
  const double reg_u_, reg_v_, reg_b_;
  const int32_t d_;
  const bool bias_;
  std::vector<double> scores_;
  std::vector<double> dL_df_;  // per observed item: ∂L/∂f_ua
  std::vector<double> user_grad_;
  std::vector<double> user_snapshot_;
  UserId u_ = 0;
};

}  // namespace

ClimfTrainer::ClimfTrainer(const ClimfOptions& options) : options_(options) {}

Status ClimfTrainer::Train(const Dataset& train) {
  if (options_.epochs < 0) {
    return Status::InvalidArgument("epochs must be >= 0");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  std::vector<UserId> active;
  for (UserId u = 0; u < train.num_users(); ++u) {
    if (train.NumItemsOf(u) > 0) active.push_back(u);
  }
  if (active.empty()) return Status::OK();

  SgdExecutorConfig config;
  config.num_threads = options_.sgd.num_threads;
  // CLiMF is epoch-based: one executor iteration = one per-user update.
  config.iterations = static_cast<int64_t>(options_.epochs) *
                      static_cast<int64_t>(active.size());
  config.learning_rate = options_.sgd.learning_rate;
  // CLiMF historically trains at a constant rate; keep the decay factor at
  // exactly 1 so the serial path stays bit-identical.
  config.final_learning_rate_fraction = 1.0;
  config.divergence = options_.sgd.divergence;
  config.metrics = options_.sgd.metrics;
  // CLiMF's natural epoch is one sweep over the active users.
  config.epoch_iterations = static_cast<int64_t>(active.size());

  auto factory = [&](int w, int n) -> std::unique_ptr<SgdWorker> {
    if (n == 1) {
      return std::make_unique<ClimfWorker<PlainAccess>>(
          model_.get(), options_, &train, &active, w, n);
    }
    return std::make_unique<ClimfWorker<RelaxedAccess>>(
        model_.get(), options_, &train, &active, w, n);
  };

  SgdExecutor::ProbeFn probe;
  if (probe_installed()) probe = [this](int64_t it) { MaybeProbe(it); };
  return SgdExecutor::Run(config, model_.get(), factory, probe);
}

}  // namespace clapf
