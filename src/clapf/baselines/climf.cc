#include "clapf/baselines/climf.h"

#include <cmath>
#include <limits>
#include <vector>

#include "clapf/core/divergence_guard.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

ClimfTrainer::ClimfTrainer(const ClimfOptions& options) : options_(options) {}

Status ClimfTrainer::Train(const Dataset& train) {
  if (options_.epochs < 0) {
    return Status::InvalidArgument("epochs must be >= 0");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  const double base_lr = options_.sgd.learning_rate;
  const double reg_u = options_.sgd.reg_user;
  const double reg_v = options_.sgd.reg_item;
  const double reg_b = options_.sgd.reg_bias;
  const int32_t d = options_.sgd.num_factors;
  const bool bias = options_.sgd.use_item_bias;

  std::vector<double> scores;
  std::vector<double> dL_df;       // per observed item: ∂L/∂f_ua
  std::vector<double> user_grad(static_cast<size_t>(d));

  DivergenceGuard guard(options_.sgd.divergence, model_.get());
  FaultInjector& faults = FaultInjector::Instance();

  int64_t iteration = 0;
  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (UserId u = 0; u < train.num_users(); ++u) {
      auto items = train.ItemsOf(u);
      if (items.empty()) continue;
      const size_t n_u = items.size();
      ++iteration;

      scores.resize(n_u);
      double worst_score = 0.0;
      for (size_t a = 0; a < n_u; ++a) {
        scores[a] = model_->Score(u, items[a]);
        if (!(std::fabs(scores[a]) <= std::fabs(worst_score))) {
          worst_score = scores[a];  // largest magnitude; NaN sticks
        }
      }
      if (faults.armed() && faults.ShouldFire(FaultPoint::kSgdStepNan)) {
        worst_score = std::numeric_limits<double>::quiet_NaN();
      }
      // One health observation per user update (CLiMF's unit of SGD work).
      switch (guard.Observe(iteration, worst_score)) {
        case DivergenceGuard::Action::kHalt:
          return guard.status();
        case DivergenceGuard::Action::kSkipUpdate:
          continue;
        case DivergenceGuard::Action::kProceed:
          break;
      }

      const double lr = base_lr * guard.lr_scale();
      // ∂L/∂f_ua = σ(−f_ua) + Σ_{k≠a} [σ(f_uk − f_ua) − σ(f_ua − f_uk)]
      // for the Eq. (7) lower bound — the listwise coupling among all of the
      // user's observed items. The whole per-user objective is scaled by
      // 1/n_u (the constant the paper's own derivation drops) so the
      // gradient magnitude does not grow with the user's activity; without
      // it the U↔V updates compound and the factors diverge.
      const double inv_n = 1.0 / static_cast<double>(n_u);
      dL_df.assign(n_u, 0.0);
      for (size_t a = 0; a < n_u; ++a) {
        dL_df[a] = Sigmoid(-scores[a]);
        for (size_t k = 0; k < n_u; ++k) {
          if (k == a) continue;
          dL_df[a] += Sigmoid(scores[k] - scores[a]) -
                      Sigmoid(scores[a] - scores[k]);
        }
        dL_df[a] *= inv_n;
      }

      auto uu = model_->UserFactors(u);
      std::fill(user_grad.begin(), user_grad.end(), 0.0);
      for (size_t a = 0; a < n_u; ++a) {
        auto va = model_->ItemFactors(items[a]);
        for (int32_t f = 0; f < d; ++f) user_grad[f] += dL_df[a] * va[f];
      }
      // Item updates use the pre-update user vector.
      for (size_t a = 0; a < n_u; ++a) {
        auto va = model_->ItemFactors(items[a]);
        for (int32_t f = 0; f < d; ++f) {
          va[f] += lr * (dL_df[a] * uu[f] - reg_v * va[f]);
        }
        if (bias) {
          double& ba = model_->ItemBias(items[a]);
          ba += lr * (dL_df[a] - reg_b * ba);
        }
      }
      for (int32_t f = 0; f < d; ++f) {
        uu[f] += lr * (user_grad[f] - reg_u * uu[f]);
      }

      MaybeProbe(iteration);
    }
  }
  return Status::OK();
}

}  // namespace clapf
