#include "clapf/baselines/mpr.h"

#include <limits>

#include "clapf/core/divergence_guard.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/fault_injection.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

MprTrainer::MprTrainer(const MprOptions& options) : options_(options) {}

Status MprTrainer::Train(const Dataset& train) {
  if (options_.rho < 0.0 || options_.rho > 1.0) {
    return Status::InvalidArgument("rho must be in [0, 1]");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  if (TrainableUsers(train).empty()) {
    return Status::FailedPrecondition(
        "no user has both observed and unobserved items");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  UniformPairSampler sampler(&train, options_.sgd.seed ^ 0x5eedu);
  Rng pair_rng(options_.sgd.seed ^ 0xa11ce5u);

  const double rho = options_.rho;
  const double lr0 = options_.sgd.learning_rate;
  const double lr1 = lr0 * options_.sgd.final_learning_rate_fraction;
  const double total = static_cast<double>(options_.sgd.iterations);
  const double reg_u = options_.sgd.reg_user;
  const double reg_v = options_.sgd.reg_item;
  const double reg_b = options_.sgd.reg_bias;
  const int32_t d = options_.sgd.num_factors;
  const bool bias = options_.sgd.use_item_bias;

  std::vector<double> user_snapshot(static_cast<size_t>(d));

  DivergenceGuard guard(options_.sgd.divergence, model_.get());
  FaultInjector& faults = FaultInjector::Instance();

  for (int64_t it = 1; it <= options_.sgd.iterations; ++it) {
    const double lr =
        (lr0 + (lr1 - lr0) * (static_cast<double>(it - 1) / total)) *
        guard.lr_scale();
    const PairSample p1 = sampler.Sample();
    // The second pairwise criterion is drawn for the same user so the two
    // margins fuse in one per-user objective.
    PairSample p2;
    p2.u = p1.u;
    auto items = train.ItemsOf(p1.u);
    p2.i = items[pair_rng.Uniform(items.size())];
    p2.j = SampleUnobservedUniform(train, p2.u, pair_rng);

    const double m1 = model_->Score(p1.u, p1.i) - model_->Score(p1.u, p1.j);
    const double m2 = model_->Score(p2.u, p2.i) - model_->Score(p2.u, p2.j);
    double margin = rho * m1 + (1.0 - rho) * m2;
    if (faults.armed() && faults.ShouldFire(FaultPoint::kSgdStepNan)) {
      margin = std::numeric_limits<double>::quiet_NaN();
    }
    switch (guard.Observe(it, margin)) {
      case DivergenceGuard::Action::kHalt:
        return guard.status();
      case DivergenceGuard::Action::kSkipUpdate:
        continue;
      case DivergenceGuard::Action::kProceed:
        break;
    }
    const double g = Sigmoid(-margin);

    auto uu = model_->UserFactors(p1.u);
    for (int32_t f = 0; f < d; ++f) user_snapshot[f] = uu[f];

    auto apply_pair = [&](const PairSample& p, double weight) {
      auto vi = model_->ItemFactors(p.i);
      auto vj = model_->ItemFactors(p.j);
      for (int32_t f = 0; f < d; ++f) {
        vi[f] += lr * (g * weight * user_snapshot[f] - reg_v * vi[f]);
        vj[f] += lr * (-g * weight * user_snapshot[f] - reg_v * vj[f]);
      }
      if (bias) {
        double& bi = model_->ItemBias(p.i);
        double& bj = model_->ItemBias(p.j);
        bi += lr * (g * weight - reg_b * bi);
        bj += lr * (-g * weight - reg_b * bj);
      }
    };

    for (int32_t f = 0; f < d; ++f) {
      const double grad_u =
          rho * (model_->ItemFactors(p1.i)[f] - model_->ItemFactors(p1.j)[f]) +
          (1.0 - rho) *
              (model_->ItemFactors(p2.i)[f] - model_->ItemFactors(p2.j)[f]);
      uu[f] += lr * (g * grad_u - reg_u * uu[f]);
    }
    apply_pair(p1, rho);
    apply_pair(p2, 1.0 - rho);

    MaybeProbe(it);
  }
  return Status::OK();
}

}  // namespace clapf
