#include "clapf/baselines/mpr.h"

#include <memory>

#include "clapf/core/sgd_executor.h"
#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

namespace {

// One MPR SGD step under an access policy. PlainAccess reproduces the
// pre-executor serial loop bit-for-bit.
template <typename Access>
class MprWorker final : public SgdWorker {
 public:
  MprWorker(FactorModel* model, const MprOptions& options,
            const Dataset* train, uint64_t sampler_seed, uint64_t pair_seed)
      : model_(model),
        train_(train),
        sampler_(train, sampler_seed),
        pair_rng_(pair_seed),
        rho_(options.rho),
        reg_u_(options.sgd.reg_user),
        reg_v_(options.sgd.reg_item),
        reg_b_(options.sgd.reg_bias),
        d_(options.sgd.num_factors),
        bias_(options.sgd.use_item_bias),
        user_snapshot_(static_cast<size_t>(options.sgd.num_factors)) {}

  double PrepareStep() override {
    p1_ = sampler_.Sample();
    // The second pairwise criterion is drawn for the same user so the two
    // margins fuse in one per-user objective.
    p2_.u = p1_.u;
    auto items = train_->ItemsOf(p1_.u);
    p2_.i = items[pair_rng_.Uniform(items.size())];
    p2_.j = SampleUnobservedUniform(*train_, p2_.u, pair_rng_);

    const double m1 = ScoreWith<Access>(*model_, p1_.u, p1_.i) -
                      ScoreWith<Access>(*model_, p1_.u, p1_.j);
    const double m2 = ScoreWith<Access>(*model_, p2_.u, p2_.i) -
                      ScoreWith<Access>(*model_, p2_.u, p2_.j);
    return rho_ * m1 + (1.0 - rho_) * m2;
  }

  void ApplyStep(double lr, double margin) override {
    const double g = Sigmoid(-margin);

    auto uu = model_->UserFactors(p1_.u);
    for (int32_t f = 0; f < d_; ++f) user_snapshot_[f] = Access::Load(uu[f]);

    auto vi1 = model_->ItemFactors(p1_.i);
    auto vj1 = model_->ItemFactors(p1_.j);
    auto vi2 = model_->ItemFactors(p2_.i);
    auto vj2 = model_->ItemFactors(p2_.j);
    for (int32_t f = 0; f < d_; ++f) {
      const double grad_u =
          rho_ * (Access::Load(vi1[f]) - Access::Load(vj1[f])) +
          (1.0 - rho_) * (Access::Load(vi2[f]) - Access::Load(vj2[f]));
      const double u_f = user_snapshot_[f];
      Access::Store(uu[f], u_f + lr * (g * grad_u - reg_u_ * u_f));
    }
    ApplyPair(p1_, rho_, lr, g);
    ApplyPair(p2_, 1.0 - rho_, lr, g);
  }

 private:
  void ApplyPair(const PairSample& p, double weight, double lr, double g) {
    auto vi = model_->ItemFactors(p.i);
    auto vj = model_->ItemFactors(p.j);
    for (int32_t f = 0; f < d_; ++f) {
      // Item factors are re-loaded here (not snapshotted) so the p1/p2
      // collision semantics match the original loop: when the two pairs
      // share an item, the second application sees the first one's update.
      const double vi_f = Access::Load(vi[f]);
      const double vj_f = Access::Load(vj[f]);
      Access::Store(vi[f], vi_f + lr * (g * weight * user_snapshot_[f] -
                                        reg_v_ * vi_f));
      Access::Store(vj[f], vj_f + lr * (-g * weight * user_snapshot_[f] -
                                        reg_v_ * vj_f));
    }
    if (bias_) {
      double& bi = model_->ItemBias(p.i);
      double& bj = model_->ItemBias(p.j);
      const double bi_old = Access::Load(bi);
      const double bj_old = Access::Load(bj);
      Access::Store(bi, bi_old + lr * (g * weight - reg_b_ * bi_old));
      Access::Store(bj, bj_old + lr * (-g * weight - reg_b_ * bj_old));
    }
  }

  FactorModel* model_;
  const Dataset* train_;
  UniformPairSampler sampler_;
  Rng pair_rng_;
  const double rho_;
  const double reg_u_, reg_v_, reg_b_;
  const int32_t d_;
  const bool bias_;
  std::vector<double> user_snapshot_;
  PairSample p1_, p2_;
};

}  // namespace

MprTrainer::MprTrainer(const MprOptions& options) : options_(options) {}

Status MprTrainer::Train(const Dataset& train) {
  if (options_.rho < 0.0 || options_.rho > 1.0) {
    return Status::InvalidArgument("rho must be in [0, 1]");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  if (TrainableUsers(train).empty()) {
    return Status::FailedPrecondition(
        "no user has both observed and unobserved items");
  }

  Rng init_rng(options_.sgd.seed);
  model_ = std::make_unique<FactorModel>(
      train.num_users(), train.num_items(), options_.sgd.num_factors,
      options_.sgd.use_item_bias);
  model_->InitGaussian(init_rng, options_.sgd.init_stddev);

  SgdExecutorConfig config;
  config.num_threads = options_.sgd.num_threads;
  config.iterations = options_.sgd.iterations;
  config.learning_rate = options_.sgd.learning_rate;
  config.final_learning_rate_fraction =
      options_.sgd.final_learning_rate_fraction;
  config.divergence = options_.sgd.divergence;
  config.metrics = options_.sgd.metrics;
  config.epoch_iterations = static_cast<int64_t>(train.num_interactions());

  const uint64_t sampler_base = options_.sgd.seed ^ 0x5eedu;
  const uint64_t pair_base = options_.sgd.seed ^ 0xa11ce5u;
  auto factory = [&](int w, int n) -> std::unique_ptr<SgdWorker> {
    if (n == 1) {
      return std::make_unique<MprWorker<PlainAccess>>(
          model_.get(), options_, &train, WorkerSeed(sampler_base, w),
          WorkerSeed(pair_base, w));
    }
    return std::make_unique<MprWorker<RelaxedAccess>>(
        model_.get(), options_, &train, WorkerSeed(sampler_base, w),
        WorkerSeed(pair_base, w));
  };

  SgdExecutor::ProbeFn probe;
  if (probe_installed()) probe = [this](int64_t it) { MaybeProbe(it); };
  return SgdExecutor::Run(config, model_.get(), factory, probe);
}

}  // namespace clapf
