#ifndef CLAPF_BASELINES_NEU_MF_H_
#define CLAPF_BASELINES_NEU_MF_H_

#include <memory>
#include <string>
#include <vector>

#include "clapf/core/trainer.h"
#include "clapf/nn/dense_layer.h"
#include "clapf/nn/embedding.h"
#include "clapf/nn/mlp.h"

namespace clapf {

struct NeuMfOptions {
  /// Predictive embedding size (paper searches {4, 8, 16, 32}).
  int32_t embedding_dim = 8;
  double learning_rate = 0.002;
  /// Full passes over the positive pairs.
  int32_t epochs = 10;
  /// Uniformly sampled negatives per positive (NCF's pointwise protocol).
  int32_t negatives_per_positive = 4;
  double init_stddev = 0.1;
  uint64_t seed = 1;
};

/// Neural Matrix Factorization (He et al., WWW 2017): the advanced NCF
/// instantiation fusing a GMF branch (element-wise product of user/item
/// embeddings) with an MLP branch (concatenated separate embeddings through
/// a 4-layer tower), joined by a final linear layer and trained pointwise
/// with the log loss over sampled negatives.
class NeuMfTrainer : public Trainer {
 public:
  explicit NeuMfTrainer(const NeuMfOptions& options);

  Status Train(const Dataset& train) override;
  std::string name() const override { return "NeuMF"; }

  void ScoreItems(UserId u, std::vector<double>* scores) const override;

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override;

 private:
  /// Forward pass for one (u, i); fills the concat buffer used by backprop.
  double ForwardLogit(UserId u, ItemId i);

  NeuMfOptions options_;
  std::unique_ptr<Embedding> gmf_user_, gmf_item_;
  std::unique_ptr<Embedding> mlp_user_, mlp_item_;
  std::unique_ptr<Mlp> tower_;
  std::unique_ptr<DenseLayer> head_;  // concat(GMF, tower out) -> 1 logit
  // Scratch buffers (single-threaded training/inference).
  mutable std::vector<double> concat_in_;   // MLP tower input
  mutable std::vector<double> head_in_;     // head input
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_NEU_MF_H_
