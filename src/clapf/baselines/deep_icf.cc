#include "clapf/baselines/deep_icf.h"

#include <cmath>

#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

DeepIcfTrainer::DeepIcfTrainer(const DeepIcfOptions& options)
    : options_(options) {}

Status DeepIcfTrainer::Train(const Dataset& train) {
  if (options_.embedding_dim <= 0) {
    return Status::InvalidArgument("embedding_dim must be positive");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }

  train_ = &train;
  const int32_t e = options_.embedding_dim;
  AdamConfig adam;
  adam.learning_rate = options_.learning_rate;
  history_emb_ = std::make_unique<Embedding>(train.num_items(), e, adam);
  target_emb_ = std::make_unique<Embedding>(train.num_items(), e, adam);
  const int32_t half = std::max(1, e / 2);
  tower_ = std::make_unique<Mlp>(std::vector<int32_t>{e, e, half, 1},
                                 Activation::kTanh, Activation::kIdentity,
                                 adam);

  Rng rng(options_.seed);
  history_emb_->Init(rng, options_.init_stddev);
  target_emb_->Init(rng, options_.init_stddev);
  tower_->Init(rng);

  std::vector<double> hist_sum(static_cast<size_t>(e));
  std::vector<double> pooled(static_cast<size_t>(e));
  std::vector<double> q_grad(static_cast<size_t>(e));
  std::vector<double> p_grad(static_cast<size_t>(e));
  int64_t iteration = 0;

  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (UserId u = 0; u < train.num_users(); ++u) {
      auto items = train.ItemsOf(u);
      if (items.empty() || train.NumItemsOf(u) >= train.num_items()) continue;

      for (ItemId pos : items) {
        for (int32_t s = 0; s <= options_.negatives_per_positive; ++s) {
          const bool positive = s == 0;
          const ItemId i =
              positive ? pos : SampleUnobservedUniform(train, u, rng);
          const double y = positive ? 1.0 : 0.0;

          // History excludes the target itself (leave-one-out pooling).
          std::fill(hist_sum.begin(), hist_sum.end(), 0.0);
          int32_t hist_count = 0;
          for (ItemId k : items) {
            if (k == i) continue;
            auto pk = history_emb_->Row(k);
            for (int32_t f = 0; f < e; ++f) {
              hist_sum[static_cast<size_t>(f)] += pk[f];
            }
            ++hist_count;
          }
          if (hist_count == 0) continue;
          const double norm =
              1.0 / std::pow(static_cast<double>(hist_count),
                             options_.pooling_alpha);

          auto qi = target_emb_->Row(i);
          for (int32_t f = 0; f < e; ++f) {
            pooled[static_cast<size_t>(f)] =
                norm * hist_sum[static_cast<size_t>(f)] * qi[f];
          }

          const double logit = tower_->Forward(pooled)[0];
          const double dlogit = Sigmoid(logit) - y;
          std::vector<double> pooled_grad =
              tower_->BackwardAndStep(std::span<const double>(&dlogit, 1));

          // dL/dq_i = pooled_grad ⊙ (norm * hist_sum).
          for (int32_t f = 0; f < e; ++f) {
            q_grad[static_cast<size_t>(f)] =
                pooled_grad[static_cast<size_t>(f)] * norm *
                hist_sum[static_cast<size_t>(f)];
          }
          target_emb_->ApplyGradient(i, q_grad);
          // dL/dp_k = pooled_grad ⊙ (norm * q_i) for every history item.
          for (int32_t f = 0; f < e; ++f) {
            p_grad[static_cast<size_t>(f)] =
                pooled_grad[static_cast<size_t>(f)] * norm * qi[f];
          }
          for (ItemId k : items) {
            if (k == i) continue;
            history_emb_->ApplyGradient(k, p_grad);
          }
        }
      }
      MaybeProbe(++iteration);
    }
  }
  return Status::OK();
}

void DeepIcfTrainer::ScoreItems(UserId u, std::vector<double>* scores) const {
  CLAPF_CHECK(train_ != nullptr) << "Train() must run before ScoreItems()";
  scores->assign(static_cast<size_t>(target_emb_->rows()), 0.0);
  ScoreItemRange(u, 0, target_emb_->rows(), scores);
}

void DeepIcfTrainer::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                                    std::vector<double>* scores) const {
  CLAPF_CHECK(train_ != nullptr) << "Train() must run before ScoreItemRange()";
  const int32_t e = options_.embedding_dim;

  auto items = train_->ItemsOf(u);
  // Precompute the user's history sum; per candidate we subtract the
  // target's own embedding when it is part of the history. O(|history|·e),
  // noise next to the per-candidate tower forward even for one block.
  std::vector<double> hist_sum(static_cast<size_t>(e), 0.0);
  for (ItemId k : items) {
    auto pk = history_emb_->Row(k);
    for (int32_t f = 0; f < e; ++f) {
      hist_sum[static_cast<size_t>(f)] += pk[f];
    }
  }
  pooled_.resize(static_cast<size_t>(e));

  for (ItemId i = begin; i < end; ++i) {
    const bool in_history = train_->IsObserved(u, i);
    const int32_t hist_count =
        static_cast<int32_t>(items.size()) - (in_history ? 1 : 0);
    if (hist_count <= 0) {
      (*scores)[static_cast<size_t>(i)] = 0.0;
      continue;
    }
    const double norm = 1.0 / std::pow(static_cast<double>(hist_count),
                                       options_.pooling_alpha);
    auto qi = target_emb_->Row(i);
    auto pi = history_emb_->Row(i);
    for (int32_t f = 0; f < e; ++f) {
      double h = hist_sum[static_cast<size_t>(f)];
      if (in_history) h -= pi[f];
      pooled_[static_cast<size_t>(f)] = norm * h * qi[f];
    }
    (*scores)[static_cast<size_t>(i)] = tower_->Forward(pooled_)[0];
  }
}

}  // namespace clapf
