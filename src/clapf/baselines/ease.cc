#include "clapf/baselines/ease.h"

#include <algorithm>
#include <string>

#include "clapf/util/linalg.h"
#include "clapf/util/logging.h"

namespace clapf {

EaseTrainer::EaseTrainer(const EaseOptions& options) : options_(options) {}

Status EaseTrainer::Train(const Dataset& train) {
  if (options_.l2 <= 0.0) {
    return Status::InvalidArgument("l2 must be positive");
  }
  if (train.num_items() > options_.max_items) {
    return Status::FailedPrecondition(
        "EASE inverts an m x m Gram matrix; m = " +
        std::to_string(train.num_items()) + " exceeds max_items = " +
        std::to_string(options_.max_items));
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }
  train_ = &train;
  num_items_ = train.num_items();
  const int32_t m = num_items_;

  // Gram matrix G = XᵀX (co-occurrence counts; diagonal = popularity).
  std::vector<double> g(static_cast<size_t>(m) * m, 0.0);
  for (UserId u = 0; u < train.num_users(); ++u) {
    auto items = train.ItemsOf(u);
    for (size_t a = 0; a < items.size(); ++a) {
      for (size_t b = 0; b < items.size(); ++b) {
        ++g[static_cast<size_t>(items[a]) * m + items[b]];
      }
    }
  }
  for (int32_t i = 0; i < m; ++i) {
    g[static_cast<size_t>(i) * m + i] += options_.l2;
  }

  // P = G⁻¹; B = I − P·diagMat(1 ⊘ diag(P)) with diag(B) forced to zero.
  CLAPF_RETURN_IF_ERROR(CholeskyInvertInPlace(g, m));
  b_.assign(static_cast<size_t>(m) * m, 0.0);
  for (int32_t j = 0; j < m; ++j) {
    const double pjj = g[static_cast<size_t>(j) * m + j];
    CLAPF_CHECK(pjj > 0.0);
    for (int32_t i = 0; i < m; ++i) {
      if (i == j) continue;
      b_[static_cast<size_t>(i) * m + j] =
          -g[static_cast<size_t>(i) * m + j] / pjj;
    }
  }
  return Status::OK();
}

void EaseTrainer::ScoreItems(UserId u, std::vector<double>* scores) const {
  CLAPF_CHECK(train_ != nullptr) << "Train() must run before ScoreItems()";
  scores->assign(static_cast<size_t>(num_items_), 0.0);
  // s(u, ·) = x_u · B: sum the rows of B for the user's history.
  for (ItemId i : train_->ItemsOf(u)) {
    const double* row = &b_[static_cast<size_t>(i) * num_items_];
    for (int32_t j = 0; j < num_items_; ++j) {
      (*scores)[static_cast<size_t>(j)] += row[j];
    }
  }
}

void EaseTrainer::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                                 std::vector<double>* scores) const {
  CLAPF_CHECK(train_ != nullptr) << "Train() must run before ScoreItemRange()";
  std::fill(scores->begin() + begin, scores->begin() + end, 0.0);
  for (ItemId i : train_->ItemsOf(u)) {
    const double* row = &b_[static_cast<size_t>(i) * num_items_];
    for (int32_t j = begin; j < end; ++j) {
      (*scores)[static_cast<size_t>(j)] += row[j];
    }
  }
}

}  // namespace clapf
