#ifndef CLAPF_BASELINES_ITEM_KNN_H_
#define CLAPF_BASELINES_ITEM_KNN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clapf/core/trainer.h"

namespace clapf {

struct ItemKnnOptions {
  /// Neighbours kept per item (0 = keep all similarities).
  int32_t neighbors = 50;
  /// Shrinkage added to the similarity denominator; damps similarities
  /// estimated from few co-occurrences.
  double shrinkage = 10.0;
};

/// Item-based k-nearest-neighbour CF with cosine similarity over the binary
/// interaction matrix — the classic memory-based top-N recommender
/// (Deshpande & Karypis 2004, the paper's reference [18]). Not part of the
/// paper's Table 2; included as an extension baseline because it is the
/// standard non-latent comparator for implicit top-N tasks.
///
/// sim(i, j) = |U_i ∩ U_j| / (sqrt(|U_i|)·sqrt(|U_j|) + shrinkage);
/// score(u, i) = Σ_{j ∈ I_u⁺} sim(i, j).
class ItemKnnTrainer : public Trainer {
 public:
  explicit ItemKnnTrainer(const ItemKnnOptions& options);

  /// Builds the truncated item-item similarity lists. O(Σ_u n_u²) time.
  Status Train(const Dataset& train) override;
  std::string name() const override { return "ItemKNN"; }

  void ScoreItems(UserId u, std::vector<double>* scores) const override;

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override;

  /// The kept neighbours of `i` (sorted by similarity desc), for tests.
  const std::vector<std::pair<ItemId, double>>& NeighborsOf(ItemId i) const {
    return neighbors_[static_cast<size_t>(i)];
  }

 private:
  ItemKnnOptions options_;
  const Dataset* train_ = nullptr;  // borrowed; must outlive the trainer
  std::vector<std::vector<std::pair<ItemId, double>>> neighbors_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_ITEM_KNN_H_
