#include "clapf/baselines/neu_mf.h"

#include <cmath>

#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"
#include "clapf/util/math.h"

namespace clapf {

NeuMfTrainer::NeuMfTrainer(const NeuMfOptions& options) : options_(options) {}

double NeuMfTrainer::ForwardLogit(UserId u, ItemId i) {
  const int32_t e = options_.embedding_dim;
  auto pu = gmf_user_->Row(u);
  auto qi = gmf_item_->Row(i);
  auto mu = mlp_user_->Row(u);
  auto mi = mlp_item_->Row(i);

  concat_in_.resize(static_cast<size_t>(2 * e));
  for (int32_t f = 0; f < e; ++f) concat_in_[static_cast<size_t>(f)] = mu[f];
  for (int32_t f = 0; f < e; ++f) {
    concat_in_[static_cast<size_t>(e + f)] = mi[f];
  }
  auto tower_out = tower_->Forward(concat_in_);

  head_in_.resize(static_cast<size_t>(e) + tower_out.size());
  for (int32_t f = 0; f < e; ++f) {
    head_in_[static_cast<size_t>(f)] = pu[f] * qi[f];  // GMF branch
  }
  for (size_t f = 0; f < tower_out.size(); ++f) {
    head_in_[static_cast<size_t>(e) + f] = tower_out[f];
  }
  return head_->Forward(head_in_)[0];
}

Status NeuMfTrainer::Train(const Dataset& train) {
  if (options_.embedding_dim <= 0) {
    return Status::InvalidArgument("embedding_dim must be positive");
  }
  if (options_.epochs < 0) {
    return Status::InvalidArgument("epochs must be >= 0");
  }
  if (train.num_interactions() == 0) {
    return Status::FailedPrecondition("training data is empty");
  }

  const int32_t e = options_.embedding_dim;
  AdamConfig adam;
  adam.learning_rate = options_.learning_rate;

  gmf_user_ = std::make_unique<Embedding>(train.num_users(), e, adam);
  gmf_item_ = std::make_unique<Embedding>(train.num_items(), e, adam);
  mlp_user_ = std::make_unique<Embedding>(train.num_users(), e, adam);
  mlp_item_ = std::make_unique<Embedding>(train.num_items(), e, adam);
  // NCF's 4-layer tower on top of the 2e concat: 2e → 2e → e → e/2.
  const int32_t half = std::max(1, e / 2);
  tower_ = std::make_unique<Mlp>(std::vector<int32_t>{2 * e, 2 * e, e, half},
                                 Activation::kRelu, Activation::kRelu, adam);
  head_ = std::make_unique<DenseLayer>(e + half, 1, Activation::kIdentity,
                                       adam);

  Rng rng(options_.seed);
  gmf_user_->Init(rng, options_.init_stddev);
  gmf_item_->Init(rng, options_.init_stddev);
  mlp_user_->Init(rng, options_.init_stddev);
  mlp_item_->Init(rng, options_.init_stddev);
  tower_->Init(rng);
  head_->Init(rng);

  std::vector<double> grad_e(static_cast<size_t>(e));
  int64_t iteration = 0;

  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (UserId u = 0; u < train.num_users(); ++u) {
      auto items = train.ItemsOf(u);
      if (items.empty() || train.NumItemsOf(u) >= train.num_items()) continue;
      for (ItemId pos : items) {
        for (int32_t s = 0; s <= options_.negatives_per_positive; ++s) {
          const bool positive = s == 0;
          const ItemId i =
              positive ? pos : SampleUnobservedUniform(train, u, rng);
          const double y = positive ? 1.0 : 0.0;
          const double logit = ForwardLogit(u, i);
          // Binary cross-entropy over σ(logit): dL/dlogit = σ(logit) − y.
          const double dlogit = Sigmoid(logit) - y;

          std::vector<double> head_grad =
              head_->BackwardAndStep(std::span<const double>(&dlogit, 1));
          // GMF branch gradient.
          auto pu = gmf_user_->Row(u);
          auto qi = gmf_item_->Row(i);
          for (int32_t f = 0; f < e; ++f) {
            grad_e[static_cast<size_t>(f)] =
                head_grad[static_cast<size_t>(f)] * qi[f];
          }
          std::vector<double> qi_grad(static_cast<size_t>(e));
          for (int32_t f = 0; f < e; ++f) {
            qi_grad[static_cast<size_t>(f)] =
                head_grad[static_cast<size_t>(f)] * pu[f];
          }
          gmf_user_->ApplyGradient(u, grad_e);
          gmf_item_->ApplyGradient(i, qi_grad);
          // MLP branch gradient through the tower into the embeddings.
          std::vector<double> tower_grad(head_grad.begin() + e,
                                         head_grad.end());
          std::vector<double> concat_grad =
              tower_->BackwardAndStep(tower_grad);
          mlp_user_->ApplyGradient(
              u, std::span<const double>(concat_grad.data(),
                                         static_cast<size_t>(e)));
          mlp_item_->ApplyGradient(
              i, std::span<const double>(concat_grad.data() + e,
                                         static_cast<size_t>(e)));
        }
      }
      MaybeProbe(++iteration);
    }
  }
  return Status::OK();
}

void NeuMfTrainer::ScoreItems(UserId u, std::vector<double>* scores) const {
  CLAPF_CHECK(gmf_user_ != nullptr) << "Train() must run before ScoreItems()";
  scores->resize(static_cast<size_t>(gmf_item_->rows()));
  ScoreItemRange(u, 0, gmf_item_->rows(), scores);
}

void NeuMfTrainer::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                                  std::vector<double>* scores) const {
  CLAPF_CHECK(gmf_user_ != nullptr)
      << "Train() must run before ScoreItemRange()";
  // const_cast-free: unique_ptr gives non-const access to the pointee, and
  // Forward only mutates scratch caches, not learned parameters.
  for (ItemId i = begin; i < end; ++i) {
    const int32_t e = options_.embedding_dim;
    auto pu = gmf_user_->Row(u);
    auto qi = gmf_item_->Row(i);
    auto mu = mlp_user_->Row(u);
    auto mi = mlp_item_->Row(i);
    concat_in_.resize(static_cast<size_t>(2 * e));
    for (int32_t f = 0; f < e; ++f) concat_in_[static_cast<size_t>(f)] = mu[f];
    for (int32_t f = 0; f < e; ++f) {
      concat_in_[static_cast<size_t>(e + f)] = mi[f];
    }
    auto tower_out = tower_->Forward(concat_in_);
    head_in_.resize(static_cast<size_t>(e) + tower_out.size());
    for (int32_t f = 0; f < e; ++f) {
      head_in_[static_cast<size_t>(f)] = pu[f] * qi[f];
    }
    for (size_t f = 0; f < tower_out.size(); ++f) {
      head_in_[static_cast<size_t>(e) + f] = tower_out[f];
    }
    (*scores)[static_cast<size_t>(i)] = head_->Forward(head_in_)[0];
  }
}

}  // namespace clapf
