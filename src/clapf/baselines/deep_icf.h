#ifndef CLAPF_BASELINES_DEEP_ICF_H_
#define CLAPF_BASELINES_DEEP_ICF_H_

#include <memory>
#include <string>
#include <vector>

#include "clapf/core/trainer.h"
#include "clapf/nn/embedding.h"
#include "clapf/nn/mlp.h"

namespace clapf {

struct DeepIcfOptions {
  int32_t embedding_dim = 8;
  /// Smoothing exponent on the history size (DeepICF's 1/|I_u|^alpha pooling).
  double pooling_alpha = 0.5;
  double learning_rate = 0.002;
  int32_t epochs = 10;
  int32_t negatives_per_positive = 4;
  double init_stddev = 0.1;
  uint64_t seed = 1;
};

/// Deep Item-based Collaborative Filtering (Xue et al., TOIS 2019) — the
/// paper's pointwise neural baseline: the prediction for (u, i) pools the
/// element-wise interactions between the target item's embedding and the
/// embeddings of the user's historical items,
///   z_ui = (1/|I_u\{i}|^α) Σ_{k∈I_u\{i}} p_k ⊙ q_i,
/// then feeds z through an MLP to a logit, trained with the log loss over
/// sampled negatives.
class DeepIcfTrainer : public Trainer {
 public:
  explicit DeepIcfTrainer(const DeepIcfOptions& options);

  Status Train(const Dataset& train) override;
  std::string name() const override { return "DeepICF"; }

  void ScoreItems(UserId u, std::vector<double>* scores) const override;

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override;

 private:
  DeepIcfOptions options_;
  const Dataset* train_ = nullptr;  // borrowed; must outlive the trainer
  std::unique_ptr<Embedding> history_emb_;  // p_k
  std::unique_ptr<Embedding> target_emb_;   // q_i
  std::unique_ptr<Mlp> tower_;
  mutable std::vector<double> pooled_;
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_DEEP_ICF_H_
