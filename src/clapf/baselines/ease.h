#ifndef CLAPF_BASELINES_EASE_H_
#define CLAPF_BASELINES_EASE_H_

#include <string>
#include <vector>

#include "clapf/core/trainer.h"

namespace clapf {

struct EaseOptions {
  /// L2 regularization of the item-item regression; the only EASE knob.
  double l2 = 100.0;
  /// Safety cap: the closed form inverts an m×m Gram matrix (O(m³) time,
  /// O(m²) memory); training fails cleanly above this item count.
  int32_t max_items = 4000;
};

/// EASE — Embarrassingly Shallow Autoencoder (Steck, WWW 2019), an
/// extension baseline: the closed-form item-item linear model
///   B = I − P·diagMat(1 ⊘ diag(P)),  P = (XᵀX + λI)⁻¹,  diag(B) = 0,
/// scored as  s(u, ·) = x_u · B.  State of the art among linear models on
/// implicit feedback and a useful non-latent counterpoint to the paper's
/// MF methods.
class EaseTrainer : public Trainer {
 public:
  explicit EaseTrainer(const EaseOptions& options);

  /// Solves the closed form. Returns FailedPrecondition when the item count
  /// exceeds max_items.
  Status Train(const Dataset& train) override;
  std::string name() const override { return "EASE"; }

  void ScoreItems(UserId u, std::vector<double>* scores) const override;

  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      std::vector<double>* scores) const override;

  /// Learned item-item weight B[i*m + j], for tests.
  double Weight(ItemId i, ItemId j) const {
    return b_[static_cast<size_t>(i) * num_items_ + j];
  }

 private:
  EaseOptions options_;
  const Dataset* train_ = nullptr;  // borrowed; must outlive the trainer
  int32_t num_items_ = 0;
  std::vector<double> b_;  // m x m, row-major, zero diagonal
};

}  // namespace clapf

#endif  // CLAPF_BASELINES_EASE_H_
