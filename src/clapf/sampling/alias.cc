#include "clapf/sampling/alias.h"

#include <vector>

#include "clapf/util/logging.h"

namespace clapf {

AliasTable::AliasTable(const std::vector<double>& weights) {
  CLAPF_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    CLAPF_CHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  CLAPF_CHECK(total > 0.0) << "all weights are zero";

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scale to mean 1 and split into under-/over-full buckets.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) probability_[i] = 1.0;
  for (uint32_t i : small) probability_[i] = 1.0;  // numerical leftovers
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t bucket = static_cast<size_t>(rng.Uniform(probability_.size()));
  return rng.NextDouble() < probability_[bucket] ? bucket : alias_[bucket];
}

double AliasTable::ProbabilityOf(size_t i) const {
  const double n = static_cast<double>(probability_.size());
  double p = probability_[i] / n;
  for (size_t b = 0; b < probability_.size(); ++b) {
    if (alias_[b] == i && probability_[b] < 1.0) {
      p += (1.0 - probability_[b]) / n;
    }
  }
  return p;
}

}  // namespace clapf
