#include "clapf/sampling/uniform_sampler.h"

#include "clapf/util/logging.h"

namespace clapf {

ItemId SampleUnobservedUniform(const Dataset& dataset, UserId u, Rng& rng) {
  const int32_t m = dataset.num_items();
  CLAPF_DCHECK(dataset.NumItemsOf(u) < m);
  while (true) {
    ItemId j = static_cast<ItemId>(rng.Uniform(static_cast<uint64_t>(m)));
    if (!dataset.IsObserved(u, j)) return j;
  }
}

std::vector<UserId> TrainableUsers(const Dataset& dataset) {
  std::vector<UserId> users;
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    int32_t count = dataset.NumItemsOf(u);
    if (count > 0 && count < dataset.num_items()) users.push_back(u);
  }
  return users;
}

UniformTripleSampler::UniformTripleSampler(const Dataset* dataset,
                                           uint64_t seed)
    : dataset_(dataset), rng_(seed), active_users_(TrainableUsers(*dataset)) {
  CLAPF_CHECK(dataset != nullptr);
  CLAPF_CHECK(!active_users_.empty())
      << "dataset has no user trainable by pairwise methods";
}

Triple UniformTripleSampler::Sample() {
  Triple t;
  t.u = active_users_[rng_.Uniform(active_users_.size())];
  auto items = dataset_->ItemsOf(t.u);
  t.i = items[rng_.Uniform(items.size())];
  t.k = items[rng_.Uniform(items.size())];
  t.j = SampleUnobservedUniform(*dataset_, t.u, rng_);
  return t;
}

UniformPairSampler::UniformPairSampler(const Dataset* dataset, uint64_t seed)
    : dataset_(dataset), rng_(seed), active_users_(TrainableUsers(*dataset)) {
  CLAPF_CHECK(dataset != nullptr);
  CLAPF_CHECK(!active_users_.empty());
}

PairSample UniformPairSampler::Sample() {
  PairSample p;
  p.u = active_users_[rng_.Uniform(active_users_.size())];
  auto items = dataset_->ItemsOf(p.u);
  p.i = items[rng_.Uniform(items.size())];
  p.j = SampleUnobservedUniform(*dataset_, p.u, rng_);
  return p;
}

}  // namespace clapf
