#ifndef CLAPF_SAMPLING_GEOMETRIC_H_
#define CLAPF_SAMPLING_GEOMETRIC_H_

#include <cstddef>

#include "clapf/util/random.h"

namespace clapf {

/// Geometric sampling over ranked positions, as used by DSS/AoBPR: position 0
/// (the head of the list) is most likely, with probability decaying
/// geometrically down the list. The success probability is chosen so that the
/// distribution's mass concentrates on roughly the first `tail_fraction *
/// size` positions. Draws outside [0, size) are re-drawn (truncated
/// geometric), so every position has non-zero probability.
class GeometricRankSampler {
 public:
  /// `tail_fraction` in (0, 1]; smaller = more head-heavy.
  explicit GeometricRankSampler(double tail_fraction = 0.1);

  /// Samples a position in [0, size); `size` must be >= 1.
  size_t Sample(size_t size, Rng& rng) const;

  double tail_fraction() const { return tail_fraction_; }

 private:
  double tail_fraction_;
};

}  // namespace clapf

#endif  // CLAPF_SAMPLING_GEOMETRIC_H_
