#ifndef CLAPF_SAMPLING_RANK_LIST_H_
#define CLAPF_SAMPLING_RANK_LIST_H_

#include <cstdint>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"

namespace clapf {

/// Per-factor item rankings used by DSS and AoBPR (paper §5.1, Step 2):
/// for each latent factor q, all items sorted descending by their factor
/// value V_{i,q}. Rebuilding is O(d · m log m), so callers refresh only every
/// `refresh_interval` draws (the paper resets every log(m)-scaled period).
class FactorRankList {
 public:
  /// `model` must outlive this object.
  explicit FactorRankList(const FactorModel* model);

  /// Rebuilds every factor's ranking from the model's current item factors.
  void Refresh();

  /// Item at `position` in factor `q`'s descending ranking. If `reversed`,
  /// reads the list bottom-up (equivalent to ascending order).
  ItemId ItemAt(int32_t q, size_t position, bool reversed) const;

  int32_t num_factors() const { return model_->num_factors(); }
  int32_t num_items() const { return model_->num_items(); }

  /// Number of Refresh() calls so far (diagnostics/tests).
  int64_t refresh_count() const { return refresh_count_; }

 private:
  const FactorModel* model_;
  // rankings_[q] holds item ids sorted by V_{.,q} descending.
  std::vector<std::vector<ItemId>> rankings_;
  int64_t refresh_count_ = 0;
};

}  // namespace clapf

#endif  // CLAPF_SAMPLING_RANK_LIST_H_
