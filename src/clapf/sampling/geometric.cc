#include "clapf/sampling/geometric.h"

#include <algorithm>
#include <cmath>

#include "clapf/util/logging.h"

namespace clapf {

GeometricRankSampler::GeometricRankSampler(double tail_fraction)
    : tail_fraction_(tail_fraction) {
  CLAPF_CHECK(tail_fraction > 0.0 && tail_fraction <= 1.0);
}

size_t GeometricRankSampler::Sample(size_t size, Rng& rng) const {
  CLAPF_CHECK(size >= 1);
  if (size == 1) return 0;
  // Success probability so the mean (1-p)/p lands around tail_fraction*size.
  double mean = std::max(1.0, tail_fraction_ * static_cast<double>(size));
  double p = 1.0 / (mean + 1.0);
  for (int attempt = 0; attempt < 64; ++attempt) {
    uint64_t draw = rng.Geometric(p);
    if (draw < size) return static_cast<size_t>(draw);
  }
  // Truncation fallback (p extremely small relative to size).
  return static_cast<size_t>(rng.Uniform(size));
}

}  // namespace clapf
