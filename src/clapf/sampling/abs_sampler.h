#ifndef CLAPF_SAMPLING_ABS_SAMPLER_H_
#define CLAPF_SAMPLING_ABS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/sampling/sampler.h"
#include "clapf/util/random.h"

namespace clapf {

/// Alpha-Beta Sampling for pairwise ranking (after Cheng et al., ICDM 2019,
/// cited by the paper in §2.1): the negative j is drawn from a mixture of
/// the two signals adaptive samplers use —
///  * with probability `alpha`, score-adaptively (the best-scored of a small
///    uniform candidate pool, DNS-style: items the model currently
///    over-ranks);
///  * with probability `beta`, popularity-weighted (items with much
///    evidence of being consumable that this user skipped);
///  * otherwise uniformly.
/// Requires alpha + beta <= 1.
class AbsPairSampler : public PairSampler {
 public:
  struct Options {
    double alpha = 0.5;
    double beta = 0.3;
    /// Candidate pool size for the score-adaptive branch.
    int32_t candidates = 5;
  };

  /// `dataset` and `model` must outlive the sampler.
  AbsPairSampler(const Dataset* dataset, const FactorModel* model,
                 const Options& options, uint64_t seed);

  PairSample Sample() override;
  const char* name() const override { return "ABS"; }

 private:
  ItemId SampleByPopularity(UserId u);

  const Dataset* dataset_;
  const FactorModel* model_;
  Options options_;
  Rng rng_;
  std::vector<UserId> active_users_;
  // Inclusive prefix sums of item popularity, for O(log m) weighted draws.
  std::vector<double> popularity_cdf_;
  double popularity_total_ = 0.0;
};

}  // namespace clapf

#endif  // CLAPF_SAMPLING_ABS_SAMPLER_H_
