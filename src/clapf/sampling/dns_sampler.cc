#include "clapf/sampling/dns_sampler.h"

#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"

namespace clapf {

DnsPairSampler::DnsPairSampler(const Dataset* dataset,
                               const FactorModel* model, int32_t candidates,
                               uint64_t seed)
    : dataset_(dataset),
      model_(model),
      candidates_(candidates),
      rng_(seed),
      active_users_(TrainableUsers(*dataset)) {
  CLAPF_CHECK(dataset != nullptr && model != nullptr);
  CLAPF_CHECK(candidates >= 1);
  CLAPF_CHECK(!active_users_.empty());
}

PairSample DnsPairSampler::Sample() {
  PairSample p;
  p.u = active_users_[rng_.Uniform(active_users_.size())];
  auto items = dataset_->ItemsOf(p.u);
  p.i = items[rng_.Uniform(items.size())];

  ItemId best = SampleUnobservedUniform(*dataset_, p.u, rng_);
  double best_score = model_->Score(p.u, best);
  for (int32_t c = 1; c < candidates_; ++c) {
    ItemId j = SampleUnobservedUniform(*dataset_, p.u, rng_);
    double s = model_->Score(p.u, j);
    if (s > best_score) {
      best = j;
      best_score = s;
    }
  }
  p.j = best;
  return p;
}

}  // namespace clapf
