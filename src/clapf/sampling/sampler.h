#ifndef CLAPF_SAMPLING_SAMPLER_H_
#define CLAPF_SAMPLING_SAMPLER_H_

#include "clapf/data/dataset.h"

namespace clapf {

/// One CLAPF training case (paper §4.3): user u, an observed item i, a second
/// observed item k (the listwise companion), and an unobserved item j (the
/// pairwise negative).
struct Triple {
  UserId u = 0;
  ItemId i = 0;
  ItemId k = 0;
  ItemId j = 0;
};

/// One BPR-style training case: user u prefers observed i over unobserved j.
struct PairSample {
  UserId u = 0;
  ItemId i = 0;
  ItemId j = 0;
};

/// Draws CLAPF triples. Implementations own their RNG so a sampler is a
/// deterministic stream given its construction seed. Adaptive samplers read
/// the evolving model they were constructed with on every draw.
class TripleSampler {
 public:
  virtual ~TripleSampler() = default;

  /// Draws the next training triple.
  virtual Triple Sample() = 0;

  /// Human-readable name for logs/benchmarks.
  virtual const char* name() const = 0;
};

/// Draws BPR pairs; same contract as TripleSampler.
class PairSampler {
 public:
  virtual ~PairSampler() = default;

  virtual PairSample Sample() = 0;
  virtual const char* name() const = 0;
};

}  // namespace clapf

#endif  // CLAPF_SAMPLING_SAMPLER_H_
