#ifndef CLAPF_SAMPLING_AOBPR_SAMPLER_H_
#define CLAPF_SAMPLING_AOBPR_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/obs/metrics.h"
#include "clapf/sampling/geometric.h"
#include "clapf/sampling/rank_list.h"
#include "clapf/sampling/sampler.h"
#include "clapf/util/random.h"

namespace clapf {

/// Adaptive Oversampling for BPR (Rendle & Freudenthaler, WSDM 2014): the
/// negative j is drawn geometrically from the head of a factor-ranked item
/// list oriented by sgn(U_{u,q}) — the single-sided ancestor of DSS.
class AobprPairSampler : public PairSampler {
 public:
  struct Options {
    double tail_fraction = 0.2;
    /// Draws between rank-list rebuilds; 0 = auto (same rule as DSS).
    int64_t refresh_interval = 0;
    /// Telemetry sink; null disables sampler metrics. Emits
    /// sampler.aobpr.draws_total, sampler.aobpr.rebuilds_total,
    /// sampler.aobpr.uniform_fallbacks_total, and the
    /// sampler.aobpr.negative_draw_depth histogram. Not owned.
    MetricsRegistry* metrics = nullptr;
  };

  AobprPairSampler(const Dataset* dataset, const FactorModel* model,
                   const Options& options, uint64_t seed);

  PairSample Sample() override;
  const char* name() const override { return "AoBPR"; }

 private:
  const Dataset* dataset_;
  const FactorModel* model_;
  Options options_;
  Rng rng_;
  std::vector<UserId> active_users_;
  FactorRankList rank_list_;
  GeometricRankSampler geometric_;
  int64_t draws_since_refresh_ = 0;
  int64_t refresh_interval_ = 0;
  // Telemetry handles (null when options_.metrics is null).
  Counter* draws_metric_ = nullptr;
  Counter* rebuilds_metric_ = nullptr;
  Counter* fallbacks_metric_ = nullptr;
  Histogram* depth_metric_ = nullptr;
};

}  // namespace clapf

#endif  // CLAPF_SAMPLING_AOBPR_SAMPLER_H_
