#ifndef CLAPF_SAMPLING_DNS_SAMPLER_H_
#define CLAPF_SAMPLING_DNS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "clapf/data/dataset.h"
#include "clapf/model/factor_model.h"
#include "clapf/sampling/sampler.h"
#include "clapf/util/random.h"

namespace clapf {

/// Dynamic Negative Sampling (Zhang et al., SIGIR 2013): draws `candidates`
/// unobserved items uniformly and keeps the one the current model scores
/// highest — the hardest negative in the candidate pool. Referenced by the
/// paper as one of the adaptive samplers DSS builds on.
class DnsPairSampler : public PairSampler {
 public:
  /// `dataset` and `model` must outlive the sampler; `candidates` >= 1.
  DnsPairSampler(const Dataset* dataset, const FactorModel* model,
                 int32_t candidates, uint64_t seed);

  PairSample Sample() override;
  const char* name() const override { return "DNS"; }

 private:
  const Dataset* dataset_;
  const FactorModel* model_;
  int32_t candidates_;
  Rng rng_;
  std::vector<UserId> active_users_;
};

}  // namespace clapf

#endif  // CLAPF_SAMPLING_DNS_SAMPLER_H_
