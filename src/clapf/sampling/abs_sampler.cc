#include "clapf/sampling/abs_sampler.h"

#include <algorithm>

#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"

namespace clapf {

AbsPairSampler::AbsPairSampler(const Dataset* dataset,
                               const FactorModel* model,
                               const Options& options, uint64_t seed)
    : dataset_(dataset),
      model_(model),
      options_(options),
      rng_(seed),
      active_users_(TrainableUsers(*dataset)) {
  CLAPF_CHECK(dataset != nullptr && model != nullptr);
  CLAPF_CHECK(options.alpha >= 0.0 && options.beta >= 0.0);
  CLAPF_CHECK(options.alpha + options.beta <= 1.0);
  CLAPF_CHECK(options.candidates >= 1);
  CLAPF_CHECK(!active_users_.empty());

  auto counts = dataset->ItemPopularity();
  popularity_cdf_.resize(counts.size());
  double total = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    // +1 smoothing keeps never-consumed items reachable.
    total += static_cast<double>(counts[i]) + 1.0;
    popularity_cdf_[i] = total;
  }
  popularity_total_ = total;
}

ItemId AbsPairSampler::SampleByPopularity(UserId u) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double r = rng_.NextDouble() * popularity_total_;
    auto it =
        std::lower_bound(popularity_cdf_.begin(), popularity_cdf_.end(), r);
    ItemId j = static_cast<ItemId>(it - popularity_cdf_.begin());
    if (j >= dataset_->num_items()) j = dataset_->num_items() - 1;
    if (!dataset_->IsObserved(u, j)) return j;
  }
  return SampleUnobservedUniform(*dataset_, u, rng_);
}

PairSample AbsPairSampler::Sample() {
  PairSample p;
  p.u = active_users_[rng_.Uniform(active_users_.size())];
  auto items = dataset_->ItemsOf(p.u);
  p.i = items[rng_.Uniform(items.size())];

  const double branch = rng_.NextDouble();
  if (branch < options_.alpha) {
    // Score-adaptive branch: hardest of a small uniform pool.
    ItemId best = SampleUnobservedUniform(*dataset_, p.u, rng_);
    double best_score = model_->Score(p.u, best);
    for (int32_t c = 1; c < options_.candidates; ++c) {
      ItemId j = SampleUnobservedUniform(*dataset_, p.u, rng_);
      double s = model_->Score(p.u, j);
      if (s > best_score) {
        best = j;
        best_score = s;
      }
    }
    p.j = best;
  } else if (branch < options_.alpha + options_.beta) {
    p.j = SampleByPopularity(p.u);
  } else {
    p.j = SampleUnobservedUniform(*dataset_, p.u, rng_);
  }
  return p;
}

}  // namespace clapf
