#include "clapf/sampling/rank_list.h"

#include <algorithm>
#include <numeric>

#include "clapf/util/logging.h"

namespace clapf {

FactorRankList::FactorRankList(const FactorModel* model) : model_(model) {
  CLAPF_CHECK(model != nullptr);
  rankings_.resize(static_cast<size_t>(model->num_factors()));
  Refresh();
}

void FactorRankList::Refresh() {
  const int32_t m = model_->num_items();
  for (int32_t q = 0; q < model_->num_factors(); ++q) {
    auto& ranking = rankings_[static_cast<size_t>(q)];
    ranking.resize(static_cast<size_t>(m));
    std::iota(ranking.begin(), ranking.end(), 0);
    std::sort(ranking.begin(), ranking.end(), [&](ItemId a, ItemId b) {
      double va = model_->ItemFactors(a)[static_cast<size_t>(q)];
      double vb = model_->ItemFactors(b)[static_cast<size_t>(q)];
      if (va != vb) return va > vb;
      return a < b;
    });
  }
  ++refresh_count_;
}

ItemId FactorRankList::ItemAt(int32_t q, size_t position, bool reversed) const {
  const auto& ranking = rankings_[static_cast<size_t>(q)];
  CLAPF_DCHECK(position < ranking.size());
  return reversed ? ranking[ranking.size() - 1 - position] : ranking[position];
}

}  // namespace clapf
