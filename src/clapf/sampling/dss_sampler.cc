#include "clapf/sampling/dss_sampler.h"

#include <algorithm>
#include <cmath>

#include "clapf/sampling/uniform_sampler.h"
#include "clapf/util/logging.h"

namespace clapf {

DssSampler::DssSampler(const Dataset* dataset, const FactorModel* model,
                       const DssOptions& options, uint64_t seed)
    : dataset_(dataset),
      model_(model),
      options_(options),
      rng_(seed),
      active_users_(TrainableUsers(*dataset)),
      rank_list_(model),
      geometric_(options.tail_fraction) {
  CLAPF_CHECK(dataset != nullptr && model != nullptr);
  CLAPF_CHECK(dataset->num_items() == model->num_items());
  CLAPF_CHECK(!active_users_.empty());
  if (options_.refresh_interval > 0) {
    refresh_interval_ = options_.refresh_interval;
  } else {
    const double m = static_cast<double>(std::max(dataset->num_items(), 2));
    refresh_interval_ = static_cast<int64_t>(
        std::max(256.0, m * std::ceil(std::log2(m)) / 8.0));
  }
  if (options_.metrics != nullptr) {
    draws_metric_ = options_.metrics->GetCounter("sampler.dss.draws_total");
    rebuilds_metric_ =
        options_.metrics->GetCounter("sampler.dss.rebuilds_total");
    fallbacks_metric_ =
        options_.metrics->GetCounter("sampler.dss.uniform_fallbacks_total");
    depth_metric_ = options_.metrics->GetHistogram(
        "sampler.dss.negative_draw_depth", DrawDepthBuckets());
  }
}

const char* DssSampler::name() const {
  if (options_.adaptive_positive && options_.adaptive_negative) return "DSS";
  if (options_.adaptive_positive) return "PositiveSampling";
  if (options_.adaptive_negative) return "NegativeSampling";
  return "Uniform(DSS-degenerate)";
}

void DssSampler::MaybeRefresh() {
  if (++draws_since_refresh_ >= refresh_interval_) {
    rank_list_.Refresh();
    draws_since_refresh_ = 0;
    if (rebuilds_metric_ != nullptr) rebuilds_metric_->Inc();
  }
}

ItemId DssSampler::SampleObservedAdaptive(UserId u, int32_t q, bool reversed,
                                          bool from_top) {
  auto items = dataset_->ItemsOf(u);
  if (items.size() == 1) return items[0];
  scratch_.clear();
  scratch_.reserve(items.size());
  for (ItemId i : items) {
    double v = model_->ItemFactors(i)[static_cast<size_t>(q)];
    scratch_.emplace_back(reversed ? -v : v, i);
  }
  size_t pos = geometric_.Sample(scratch_.size(), rng_);
  // from_top: pos-th largest value; otherwise pos-th smallest.
  size_t nth = from_top ? pos : scratch_.size() - 1 - pos;
  std::nth_element(
      scratch_.begin(), scratch_.begin() + static_cast<ptrdiff_t>(nth),
      scratch_.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
  return scratch_[nth].second;
}

ItemId DssSampler::SampleUnobservedAdaptive(UserId u, int32_t q,
                                            bool reversed) {
  const size_t m = static_cast<size_t>(dataset_->num_items());
  // Geometric draws concentrate near the head; observed hits are rejected.
  for (int attempt = 0; attempt < 64; ++attempt) {
    size_t pos = geometric_.Sample(m, rng_);
    ItemId j = rank_list_.ItemAt(q, pos, reversed);
    if (!dataset_->IsObserved(u, j)) {
      if (depth_metric_ != nullptr) {
        depth_metric_->Record(static_cast<double>(pos + 1));
      }
      return j;
    }
  }
  if (fallbacks_metric_ != nullptr) fallbacks_metric_->Inc();
  return SampleUnobservedUniform(*dataset_, u, rng_);
}

Triple DssSampler::Sample() {
  MaybeRefresh();
  if (draws_metric_ != nullptr) draws_metric_->Inc();

  Triple t;
  t.u = active_users_[rng_.Uniform(active_users_.size())];
  auto items = dataset_->ItemsOf(t.u);
  t.i = items[rng_.Uniform(items.size())];

  // Step (2)-(3): random factor q, orientation from sgn(U_{u,q}).
  const int32_t q =
      static_cast<int32_t>(rng_.Uniform(
          static_cast<uint64_t>(model_->num_factors())));
  const bool reversed =
      model_->UserFactors(t.u)[static_cast<size_t>(q)] < 0.0;

  // Step (4): CLAPF-MAP wants a low-scored companion k (small f_uk makes the
  // listwise margin f_uk - f_ui informative); CLAPF-MRR wants a high-scored
  // one. The negative j is oversampled from the head in both variants.
  const bool k_from_top = options_.variant != ClapfVariant::kMap;
  if (options_.adaptive_positive) {
    t.k = SampleObservedAdaptive(t.u, q, reversed, k_from_top);
  } else {
    t.k = items[rng_.Uniform(items.size())];
  }
  if (options_.adaptive_negative) {
    t.j = SampleUnobservedAdaptive(t.u, q, reversed);
  } else {
    t.j = SampleUnobservedUniform(*dataset_, t.u, rng_);
  }
  return t;
}

}  // namespace clapf
